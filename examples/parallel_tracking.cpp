// Static vs dynamic load balancing on the message-passing runtime, plus
// the projection to cluster scale (paper section II).
//
// The thread runtime demonstrates the two protocols end to end (all paths
// tracked exactly once, per-rank busy times); the measured per-path
// durations then drive the discrete-event simulator to show what both
// policies would do on 1..128 CPUs.

#include <cstdio>
#include <iostream>

#include "homotopy/start_total_degree.hpp"
#include "sched/session.hpp"
#include "simcluster/speedup.hpp"
#include "systems/cyclic.hpp"

int main() {
  using namespace pph;

  // Workload: cyclic-5, 120 paths with a divergent tail.
  util::Prng rng(99);
  const poly::PolySystem target = systems::cyclic(5);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;

  std::printf("workload: cyclic 5-roots, %zu paths\n\n", starts.size());

  const auto st = sched::run_paths(
      workload, 4, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  std::printf("static  (4 ranks): %zu paths, %zu converged, %zu diverged; busy seconds:",
              st.paths.size(), st.converged, st.diverged);
  for (const double b : st.rank_busy_seconds) std::printf(" %.3f", b);
  std::printf("\n");

  const auto dy = sched::run_paths(
      workload, 4, sched::SessionOptions().with_policy(sched::Policy::kFCFS));
  std::printf("dynamic (1 master + 3 slaves): %zu paths, %zu converged; busy seconds:",
              dy.paths.size(), dy.converged);
  for (const double b : dy.rank_busy_seconds) std::printf(" %.3f", b);
  std::printf("\n\n");

  // Project the measured durations to cluster scale.
  std::vector<double> durations;
  for (const auto& tp : dy.paths) durations.push_back(tp.seconds);
  // Laptop paths are sub-millisecond; communication costs are scaled to
  // match (the Table I bench models the paper's 1 GHz cluster instead).
  simcluster::CommModel comm;
  comm.dispatch_overhead = 2e-6;
  comm.message_latency = 1e-6;
  const auto study = simcluster::run_speedup_study(durations, {1, 2, 4, 8, 16, 32}, comm,
                                                   simcluster::SimAssignment::kBlock);
  std::cout << simcluster::to_table(
                   study, "Projected speedups from the measured cyclic-5 path durations")
                   .to_string();
  std::printf(
      "\nThe divergent-path tail makes static assignment lag as soon as several\n"
      "paths share a CPU -- the effect the paper measures on the real cluster\n"
      "(Table I).  With only 120 jobs the projection becomes boundary-dominated\n"
      "beyond ~8 CPUs; bench_table1_cyclic runs the full 35,940-job model.\n");
  return 0;
}
