// Quickstart: the smallest interesting Pieri problem.
//
// Four general 2-planes in C^4 are met nontrivially by exactly two
// 2-planes -- the classical q = 0, m = p = 2 Schubert problem, which in
// control terms asks for all static output feedback laws placing four
// closed-loop poles of a 2-input, 2-output machine.
//
// This example builds a random instance, solves it with the Pieri
// homotopy, and verifies both solutions.
//
// It is the README's documented entry point and runs in CTest as the
// `quickstart_smoke` test, so it must keep exiting 0.

#include <cstdio>

#include "schubert/pieri_solver.hpp"

int main() {
  using namespace pph;
  const schubert::PieriProblem problem{/*m=*/2, /*p=*/2, /*q=*/0};

  std::printf("Pieri quickstart: m=%zu inputs, p=%zu outputs, degree q=%zu\n", problem.m,
              problem.p, problem.q);
  std::printf("conditions n = mp + q(m+p) = %zu\n", problem.condition_count());

  // The combinatorial root count, before any numerics.
  schubert::PatternPoset poset(problem);
  std::printf("combinatorial root count d(%zu,%zu,%zu) = %llu\n", problem.m, problem.p,
              problem.q, static_cast<unsigned long long>(poset.root_count()));

  // Random input: n general m-planes and interpolation points.
  util::Prng rng(/*seed=*/2004);
  const schubert::PieriInput input = schubert::random_pieri_input(problem, rng);

  // Solve.
  const schubert::PieriSolveSummary summary = schubert::solve_pieri(input);
  std::printf("tracked %llu paths over %zu levels in %.3f s\n",
              static_cast<unsigned long long>(summary.total_jobs), summary.levels.size(),
              summary.seconds);
  std::printf("solutions: %zu (verified %zu, distinct %zu, max residual %.2e)\n",
              summary.solutions.size(), summary.verified, summary.distinct,
              summary.max_residual);

  for (std::size_t i = 0; i < summary.solutions.size(); ++i) {
    const auto& map = summary.solutions[i];
    std::printf("\nsolution %zu (pattern %s):\n%s", i + 1,
                map.chart().pattern().to_string().c_str(), map.to_string().c_str());
    std::printf("worst condition residual: %.2e\n", map.max_residual(input.conditions));
  }
  return summary.complete() ? 0 : 1;
}
