// The general-purpose homotopy kernel on the paper's academic benchmark.
//
// Solves the cyclic n-roots system with a total-degree start system
// (n = 5 by default: 120 paths, exactly 70 finite roots, 50 paths diverge
// to infinity).  Set PPH_CYCLIC_N=6 for the 720-path instance (156 roots).

#include <cstdio>
#include <cstdlib>

#include "homotopy/solver.hpp"
#include "systems/cyclic.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pph;
  std::size_t n = 5;
  if (const char* env = std::getenv("PPH_CYCLIC_N")) n = std::strtoul(env, nullptr, 10);

  const poly::PolySystem sys = systems::cyclic(n);
  std::printf("cyclic %zu-roots: %zu equations, total degree %llu\n", n, sys.size(),
              static_cast<unsigned long long>(sys.total_degree()));

  util::WallTimer timer;
  const homotopy::SolveSummary summary = homotopy::solve_total_degree(sys);
  const double seconds = timer.seconds();

  std::printf("tracked %llu paths in %.2f s (%.1f ms/path)\n",
              static_cast<unsigned long long>(summary.path_count), seconds,
              1000.0 * seconds / static_cast<double>(summary.path_count));
  std::printf("finite roots: %zu distinct (%zu converged, %zu diverged, %zu failed)\n",
              summary.solutions.size(), summary.converged, summary.diverged, summary.failed);
  if (const auto known = systems::cyclic_known_root_count(n)) {
    std::printf("known root count: %llu -> %s\n", static_cast<unsigned long long>(known),
                summary.solutions.size() == known ? "MATCH" : "MISMATCH");
  }

  // Residual quality of the roots.
  double worst = 0.0;
  for (const auto& x : summary.solutions) worst = std::max(worst, sys.residual(x));
  std::printf("worst root residual: %.2e\n", worst);

  // Path-cost spread: the reason the paper needs dynamic load balancing.
  std::printf("path seconds: median %.4f, p95 %.4f, max %.4f (cv %.2f)\n",
              util::median(summary.path_seconds), util::percentile(summary.path_seconds, 95.0),
              util::percentile(summary.path_seconds, 100.0),
              util::coefficient_of_variation(summary.path_seconds));
  return 0;
}
