// Solving a user-defined polynomial system from text, comparing the
// total-degree and multi-homogeneous homotopies.
//
// The system is an eigenvalue-style problem in (lambda; x1, x2, x3):
// bilinear in the two variable groups, so the 2-homogeneous Bezout number
// (3 paths) is far below the total degree (8 paths) -- grouping variables
// is how homotopy software avoids tracking paths that must diverge.

#include <cstdio>

#include "homotopy/solver.hpp"
#include "homotopy/start_multihomogeneous.hpp"
#include "poly/parse.hpp"

int main() {
  using namespace pph;

  // Variables: x0 = lambda, x1..x3 = eigenvector components.
  const std::size_t nvars = 4;
  const auto sys = poly::parse_system(
      "0.8*x1 + 0.3*x2 - 0.2*x3 - x0*x1;"
      "0.1*x1 + 0.9*x2 + 0.4*x3 - x0*x2;"
      "0.5*x1 - 0.3*x2 + 0.6*x3 - x0*x3;"
      "x1 + 2*x2 - x3 - 1",
      nvars);
  std::printf("parsed %zu equations in %zu variables\n", sys.size(), sys.nvars());
  std::printf("total degree (single group): %llu paths\n",
              static_cast<unsigned long long>(sys.total_degree()));

  // Group lambda separately from the eigenvector.
  const homotopy::VariablePartition partition{0, 1, 1, 1};
  std::printf("2-homogeneous Bezout number (lambda | x): %llu paths\n\n",
              static_cast<unsigned long long>(
                  homotopy::multihomogeneous_bezout(sys, partition)));

  const auto td = homotopy::solve_total_degree(sys);
  std::printf("total-degree homotopy: %llu paths -> %zu solutions, %zu diverged\n",
              static_cast<unsigned long long>(td.path_count), td.solutions.size(),
              td.diverged);

  const auto mh = homotopy::solve_multihomogeneous(sys, partition);
  std::printf("2-homogeneous homotopy: %llu paths -> %zu solutions, %zu diverged\n\n",
              static_cast<unsigned long long>(mh.path_count), mh.solutions.size(),
              mh.diverged);

  std::printf("eigenvalues (the lambda component of each solution):\n");
  for (const auto& s : mh.solutions) {
    std::printf("  lambda = %+.6f %+.6fi   (residual %.1e)\n", s[0].real(), s[0].imag(),
                sys.residual(s));
  }
  std::printf("\nSame finite solution set, %llu fewer wasted paths.\n",
              static_cast<unsigned long long>(td.path_count - mh.path_count));
  return (td.solutions.size() == mh.solutions.size()) ? 0 : 1;
}
