// A ten-second solve service (DESIGN.md section 10): requests arrive as a
// Poisson stream, the serve() loop admits and dispatches them as they come
// due, and a deadline closes the door -- late requests are shed, everything
// admitted drains to completion before the session returns.
//
// The offered rate is chosen so the trace outlives the deadline slightly:
// the run demonstrates arrival gating, admit->report latency percentiles
// (LatencySink), graceful shedding, and the zero-loss drain guarantee.

#include <cstdio>

#include "homotopy/start_total_degree.hpp"
#include "sched/arrival.hpp"
#include "sched/session.hpp"
#include "sched/stream_source.hpp"
#include "systems/cyclic.hpp"

int main() {
  using namespace pph;

  // Request pool: the 120 cyclic-5 start solutions.
  util::Prng rng(99);
  const poly::PolySystem target = systems::cyclic(5);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;

  // Poisson arrivals at 10 req/s: ~12 seconds of traffic against a
  // 10-second service deadline, so the tail is shed on shutdown.
  const double rate = 10.0;
  const double deadline = 10.0;
  sched::PoissonArrivals arrivals(rate);
  util::Prng trace_rng(7);
  const auto trace = sched::arrival_times(arrivals, trace_rng, starts.size());
  std::printf("solve service: %zu requests, Poisson %.0f req/s (trace spans %.1f s),\n"
              "               deadline %.0f s, 1 master + 3 workers\n\n",
              starts.size(), rate, trace.back(), deadline);

  sched::VectorJobSource inner(workload);
  sched::StreamJobSource stream(inner, trace);
  sched::InMemoryReportSink mem;
  sched::LatencySink lat(mem);
  stream.set_admit_observer([&](sched::JobId id) { lat.admit(id); });

  sched::Session session(stream, lat,
                         sched::SessionOptions()
                             .with_serve_deadline(deadline)
                             .with_name("solve_service"));
  const auto stats = session.serve(4);
  const auto report = mem.report(stats);

  const auto& sv = stats.service;
  std::printf("served %.1f s of wall time\n", stats.wall_seconds);
  std::printf("  arrivals %zu, admitted %zu, shed at deadline %zu, completed %zu (%s)\n",
              sv.arrivals, sv.admitted, sv.shed, sv.completed,
              sv.drained() ? "drained: zero loss" : "LOST WORK");
  std::printf("  tracked: %zu converged, %zu diverged\n", report.converged, report.diverged);
  std::printf("  queue: max depth %zu, time-weighted avg %.2f\n", sv.max_queue_depth,
              sv.avg_queue_depth);
  std::printf("  sojourn  (admit->consume): p50 %.2f ms, p99 %.2f ms\n",
              sv.sojourn.p50() * 1e3, sv.sojourn.p99() * 1e3);
  std::printf("  latency  (admit->report):  p50 %.2f ms, p99 %.2f ms\n",
              lat.latencies().p50() * 1e3, lat.latencies().p99() * 1e3);
  std::printf(
      "\nAt 10 req/s the three workers are far under capacity: the queue stays\n"
      "shallow and sojourn tracks pure service time.  bench_solve_service sweeps\n"
      "the offered rate across the measured capacity to find the knee.\n");
  return sv.drained() ? 0 : 1;
}
