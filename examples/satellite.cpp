// Static output feedback for a satellite-like plant.
//
// The paper's companion work (Verschelde & Wang, MTNS 2002) applies pole
// placement to satellite trajectory control.  This example uses a small
// rigid-body-style model: two coupled double integrators (4 states) with
// two torque inputs and two blended angle+rate sensors, m = p = 2, q = 0.
// The Pieri count says exactly two static output feedback laws place any
// four (generic) prescribed closed-loop poles.
//
// To demonstrate the full loop we start from a designed reference gain F0,
// compute its closed-loop poles, prescribe exactly those poles, and ask the
// solver for ALL gains achieving them: it returns F0 itself plus the second
// law the geometry guarantees.

#include <cmath>
#include <cstdio>

#include "schubert/pole_placement.hpp"

int main() {
  using namespace pph;
  using linalg::CMatrix;
  using linalg::Complex;

  const schubert::PieriProblem problem{2, 2, 0};

  // x = (theta1, omega1, theta2, omega2).  The axes are NOT identical:
  // distinct cross couplings, actuator effectiveness and sensor blends.
  // (A perfectly symmetric model has a discrete symmetry that makes the
  // pole placement map rank-deficient at every symmetric gain -- a
  // genuinely singular Schubert problem.  Physical satellites are
  // asymmetric, and so is this model.)
  const double k12 = 0.15, k21 = 0.23;   // cross couplings
  const double b1 = 1.0, b2 = 0.85;      // actuator gains
  const double tau1 = 0.5, tau2 = 0.35;  // sensor rate blends
  schubert::Plant plant;
  plant.a = CMatrix(4, 4);
  plant.a(0, 1) = Complex{1.0, 0.0};
  plant.a(2, 3) = Complex{1.0, 0.0};
  plant.a(1, 2) = Complex{k12, 0.0};
  plant.a(3, 0) = Complex{-k21, 0.0};
  plant.b = CMatrix(4, 2);
  plant.b(1, 0) = Complex{b1, 0.0};
  plant.b(3, 1) = Complex{b2, 0.0};
  plant.c = CMatrix(2, 4);
  plant.c(0, 0) = Complex{1.0, 0.0};
  plant.c(0, 1) = Complex{tau1, 0.0};
  plant.c(1, 2) = Complex{1.0, 0.0};
  plant.c(1, 3) = Complex{tau2, 0.0};

  // Reference design: a stabilizing PD-like gain.
  CMatrix f0(2, 2);
  f0(0, 0) = Complex{-2.0, 0.0};
  f0(0, 1) = Complex{0.3, 0.0};
  f0(1, 0) = Complex{-0.4, 0.0};
  f0(1, 1) = Complex{-1.5, 0.0};

  const auto poles = schubert::closed_loop_poles_static(plant, f0);
  std::printf("satellite attitude model: 4 states, 2 torques, 2 blended sensors\n");
  std::printf("closed-loop poles of the reference gain F0:\n");
  for (const auto s : poles) std::printf("  %+.4f %+.4fi\n", s.real(), s.imag());

  const auto summary = schubert::solve_pole_placement(problem, plant, poles);
  std::printf("\n%zu static output feedback laws place these poles (expected %llu)\n",
              summary.laws.size(),
              static_cast<unsigned long long>(summary.pieri.expected_count));

  for (std::size_t i = 0; i < summary.laws.size(); ++i) {
    const auto& sol = summary.laws[i];
    const auto check = schubert::verify_pole_placement(sol, plant, poles);
    const auto comp = schubert::extract_compensator(sol, problem.m);
    const CMatrix f = comp.feedback(Complex{0.0, 0.0});
    std::printf("\nlaw %zu (%s, pole residual %.2e): u = F y with F =\n", i + 1,
                check.real_feedback ? "REAL" : "complex", check.max_pole_residual);
    double dist_f0 = 0.0;
    for (std::size_t r = 0; r < f.rows(); ++r) {
      std::printf("  [");
      for (std::size_t c = 0; c < f.cols(); ++c) {
        std::printf(" %+.4f%+.4fi", f(r, c).real(), f(r, c).imag());
        dist_f0 = std::max(dist_f0, std::abs(f(r, c) - f0(r, c)));
      }
      std::printf(" ]\n");
    }
    if (dist_f0 < 1e-6) std::printf("  -> recovered the reference design F0\n");
  }
  std::printf("\nThe two laws are the two points of the classical Schubert problem\n"
              "sigma_1^4 on G(2,4); one of them is the reference design.\n");
  return summary.complete() ? 0 : 1;
}
