// Dynamic output feedback design (the paper's title application).
//
// A 2-input, 2-output plant with 7 states is controlled by a compensator
// with q = 1 internal state; the closed loop has n = mp + q(m+p) = 8 poles.
// Prescribing all 8 pole locations yields a Pieri problem with exactly
// d(2,2,1) = 8 feedback laws.  The example computes all of them, extracts
// the compensators F(s) = Y(s) Z(s)^{-1}, verifies the closed-loop
// characteristic polynomial vanishes at every prescribed pole, and reports
// which laws are real (realizable in hardware).

#include <cstdio>

#include "schubert/pole_placement.hpp"

int main() {
  using namespace pph;
  using linalg::Complex;

  const schubert::PieriProblem problem{/*m=*/2, /*p=*/2, /*q=*/1};
  util::Prng rng(/*seed=*/814);  // MTNS'02 satellite-control companion paper date

  // A random (generic) plant with n - q = 7 states.
  const schubert::Plant plant = schubert::random_plant(problem, rng);
  std::printf("plant: %zu states, %zu inputs, %zu outputs\n", plant.states(), plant.inputs(),
              plant.outputs());

  // Prescribe a conjugate-closed, strictly stable pole set.
  std::vector<Complex> poles;
  while (poles.size() + 2 <= problem.condition_count()) {
    const double a = 0.6 + 1.8 * rng.uniform();
    const double b = 0.4 + 1.2 * rng.uniform();
    poles.push_back(Complex{-a, b});
    poles.push_back(Complex{-a, -b});
  }
  std::printf("prescribed closed-loop poles:\n");
  for (const auto s : poles) std::printf("  %+.4f %+.4fi\n", s.real(), s.imag());

  // Solve the Pieri problem built from the plant's planes at the poles.
  const auto summary = schubert::solve_pole_placement(problem, plant, poles);
  std::printf("\n%zu feedback laws found (expected %llu), %llu paths tracked in %.2f s\n",
              summary.laws.size(),
              static_cast<unsigned long long>(summary.pieri.expected_count),
              static_cast<unsigned long long>(summary.pieri.total_jobs),
              summary.pieri.seconds);

  std::size_t real_laws = 0;
  for (std::size_t i = 0; i < summary.laws.size(); ++i) {
    const auto& sol = summary.laws[i];
    const auto check = schubert::verify_pole_placement(sol, plant, poles);
    const auto comp = schubert::extract_compensator(sol, problem.m);
    const Complex f00 = comp.feedback(Complex{0.0, 0.0})(0, 0);
    std::printf(
        "law %zu: char-poly degree %zu, pole residual %.2e, condition residual %.2e, "
        "%s, F(0)[0,0] = %+.3f%+.3fi\n",
        i + 1, check.char_poly_degree, check.max_pole_residual, check.max_condition_residual,
        check.real_feedback ? "REAL" : "complex", f00.real(), f00.imag());
    if (check.real_feedback) ++real_laws;
  }
  std::printf("\n%zu of %zu laws are real.\n", real_laws, summary.laws.size());
  std::printf("(With conjugate-closed pole data the complex laws pair up; rerunning with\n"
              " another seed changes how many laws happen to be real.)\n");
  return summary.complete() ? 0 : 1;
}
