// Checkpoint/resume for scheduler sessions end to end (DESIGN.md section 7):
// a session streams every tracked path to a JSONL result store, so a killed
// run can be resumed -- the restarted session loads the completed indices
// and only tracks the remainder, and the assembled report is bit-identical
// to an uninterrupted run.
//
// Modes (also the CI resume-smoke driver):
//   session_resume --store S --crash-after N   run until N records are
//       stored, then hard-exit with code 7 (std::_Exit: no footer, no
//       destructors -- models `kill -9` mid-run, deterministically);
//   session_resume --store S                   resume whatever S holds and
//       run to completion;
//   session_resume --store S --verify          resume, then check the
//       report is bit-identical to a straight in-memory run (exit 0 iff so).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "homotopy/start_total_degree.hpp"
#include "sched/result_store.hpp"
#include "systems/cyclic.hpp"

namespace {

/// Forwards to the store, then hard-exits once `crash_after` records are
/// durable: the flush-per-record checkpoint property is exactly what makes
/// this recoverable.
class CrashSink final : public pph::sched::ResultSink {
 public:
  CrashSink(pph::sched::JsonlStoreSink& store, std::size_t crash_after)
      : store_(store), crash_after_(crash_after) {}
  void accept(const pph::sched::TrackedPath& tp) override {
    store_.accept(tp);
    if (++accepted_ >= crash_after_) {
      std::printf("crash threshold reached: hard-exiting with %zu records stored\n",
                  accepted_);
      std::fflush(stdout);
      std::_Exit(7);
    }
  }
  void finish() override { store_.finish(); }

 private:
  pph::sched::JsonlStoreSink& store_;
  std::size_t crash_after_;
  std::size_t accepted_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pph;
  std::string store_path = "session_resume_store.jsonl";
  std::size_t crash_after = 0;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_path = argv[++i];
    } else if (std::strcmp(argv[i], "--crash-after") == 0 && i + 1 < argc) {
      crash_after = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr, "usage: %s [--store PATH] [--crash-after N] [--verify]\n",
                   argv[0]);
      return 2;
    }
  }

  // The scheduler test workload: cyclic-5 total-degree homotopy, 120 paths.
  util::Prng rng(1234);
  const auto target = systems::cyclic(5);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;

  if (crash_after > 0) {
    sched::JsonlStoreSink store(store_path, /*resume=*/true);
    sched::VectorJobSource source(workload);
    source.skip_completed(store.restored_ids());
    std::printf("running toward a crash after %zu records (store: %s, %zu restored)\n",
                crash_after, store_path.c_str(), store.restored().size());
    CrashSink sink(store, crash_after);
    sched::Session session(source, sink,
                           sched::SessionOptions().with_name("session_resume"));
    session.run(4);
    std::printf("session completed before the crash threshold; store is complete\n");
    return 0;
  }

  const auto out = sched::run_with_store(workload, 4, store_path);
  std::printf("store %s: restored %zu records, tracked %zu, complete: %s\n",
              store_path.c_str(), out.restored, out.stats.accepted,
              out.completed ? "yes" : "NO");
  if (!out.completed) return 1;
  if (!verify) return 0;

  const auto straight = sched::run_paths(workload, 4);
  const bool identical = sched::identical_path_results(straight, out.report);
  std::printf("resumed report bit-identical to a straight run: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
