// Checkpoint/resume for scheduler sessions end to end (DESIGN.md section 7):
// a session streams every tracked path to a JSONL result store, so a killed
// run can be resumed -- the restarted session loads the completed indices
// and only tracks the remainder, and the assembled report is bit-identical
// to an uninterrupted run.
//
// Modes (also the CI resume-smoke driver):
//   session_resume --store S --crash-after N   run until N records are
//       stored, then hard-exit with code 7 (std::_Exit: no footer, no
//       destructors -- models `kill -9` mid-run, deterministically);
//   session_resume --store S                   resume whatever S holds and
//       run to completion;
//   session_resume --store S --resume-into T   read the completed ids from
//       S (a path or a 'store-*.jsonl' glob; S is never written), track
//       only the remainder into a FRESH store at T -- the shards then form
//       one logical store for store::MultiStoreReader / pph_store;
//   ... --verify                               additionally check the run
//       against a straight in-memory run, re-assembling the report through
//       the store/ query subsystem (StoreReader requires the footer-indexed
//       path on a finished store; exit 0 iff bit-identical).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "homotopy/start_total_degree.hpp"
#include "sched/api.hpp"
#include "sched/result_store.hpp"
#include "store/store_reader.hpp"
#include "systems/cyclic.hpp"

namespace {

/// Forwards to the store, then hard-exits once `crash_after` records are
/// durable: the flush-per-record checkpoint property is exactly what makes
/// this recoverable.
class CrashSink final : public pph::sched::ResultSink {
 public:
  CrashSink(pph::sched::JsonlStoreSink& store, std::size_t crash_after)
      : store_(store), crash_after_(crash_after) {}
  void accept(const pph::sched::TrackedPath& tp) override {
    store_.accept(tp);
    if (++accepted_ >= crash_after_) {
      std::printf("crash threshold reached: hard-exiting with %zu records stored\n",
                  accepted_);
      std::fflush(stdout);
      std::_Exit(7);
    }
  }
  void finish() override { store_.finish(); }

 private:
  pph::sched::JsonlStoreSink& store_;
  std::size_t crash_after_;
  std::size_t accepted_ = 0;
};

/// Re-assemble the legacy report THROUGH the query subsystem: every shard
/// read lazily, cross-shard JobId duplicates resolved first-wins, paths
/// sorted by index.  This is the read path pph_store uses, so verifying
/// against it exercises reader + codec end to end.
pph::sched::ParallelRunReport report_from_store(const pph::store::MultiStoreReader& ms) {
  pph::sched::ParallelRunReport report;
  report.paths.reserve(ms.size());
  std::vector<bool> seen;
  ms.for_each([&](const pph::store::RecordView& view, std::size_t) {
    pph::sched::TrackedPath tp = view.full();
    if (tp.index >= seen.size()) seen.resize(tp.index + 1, false);
    if (seen[tp.index]) return;  // first shard holding an id wins
    seen[tp.index] = true;
    report.paths.push_back(std::move(tp));
  });
  std::sort(report.paths.begin(), report.paths.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  report.tally();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pph;
  std::string store_path = "session_resume_store.jsonl";
  std::string resume_into;
  std::size_t crash_after = 0;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume-into") == 0 && i + 1 < argc) {
      resume_into = argv[++i];
    } else if (std::strcmp(argv[i], "--crash-after") == 0 && i + 1 < argc) {
      crash_after = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--store PATH|GLOB] [--crash-after N]"
                   " [--resume-into PATH] [--verify]\n",
                   argv[0]);
      return 2;
    }
  }

  // The scheduler test workload: cyclic-5 total-degree homotopy, 120 paths.
  util::Prng rng(1234);
  const auto target = systems::cyclic(5);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;

  if (crash_after > 0) {
    sched::JsonlStoreSink store(store_path, /*resume=*/true);
    sched::VectorJobSource source(workload);
    source.skip_completed(store.restored_ids());
    std::printf("running toward a crash after %zu records (store: %s, %zu restored)\n",
                crash_after, store_path.c_str(), store.restored().size());
    CrashSink sink(store, crash_after);
    sched::Session session(source, sink,
                           sched::SessionOptions().with_name("session_resume"));
    session.run(4);
    std::printf("session completed before the crash threshold; store is complete\n");
    return 0;
  }

  if (!resume_into.empty()) {
    // Shard mode: the prior store(s) stay read-only; the remainder lands in
    // a fresh shard.  Completed ids come through the reader, not the sink's
    // restore path -- the killed shard has no footer, so this also covers
    // the scan fallback.
    const auto prior_paths = store::expand_store_paths({store_path});
    const store::MultiStoreReader prior(prior_paths);
    std::unordered_set<sched::JobId> done;
    for (std::size_t k = 0; k < prior.shard_count(); ++k) {
      const store::StoreReader& s = prior.shard(k);
      for (std::size_t i = 0; i < s.size(); ++i) done.insert(s.id_at(i));
    }
    std::printf("resuming into %s: %zu prior shard(s), %zu completed ids\n",
                resume_into.c_str(), prior.shard_count(), done.size());

    store::StoreMeta meta;
    meta.policy = sched::policy_name(sched::SessionOptions{}.policy);
    meta.ranks = 4;
    sched::JsonlStoreSink fresh(resume_into, /*resume=*/false, meta);
    sched::VectorJobSource source(workload);
    source.skip_completed(done);
    sched::Session session(source, fresh,
                           sched::SessionOptions().with_name("session_resume"));
    session.run(4);
    fresh.finish();

    const std::size_t total = done.size() + fresh.stored_count();
    std::printf("shard %s: %zu new records (%zu total, complete: %s)\n",
                resume_into.c_str(), fresh.stored_count(), total,
                total >= workload.size() ? "yes" : "NO");
    if (total < workload.size()) return 1;
    if (!verify) return 0;

    // Verify through the query subsystem: both shards as one logical store.
    std::vector<std::string> all_paths = prior_paths;
    all_paths.push_back(resume_into);
    const store::MultiStoreReader combined(all_paths);
    const store::StoreReader fresh_reader(resume_into);
    if (!fresh_reader.indexed()) {
      std::printf("fresh shard %s is not footer-indexed after finish()\n",
                  resume_into.c_str());
      return 1;
    }
    const auto assembled = report_from_store(combined);
    const auto straight = sched::run_paths(workload, 4);
    const bool identical = sched::identical_path_results(straight, assembled);
    std::printf("sharded store re-assembles bit-identical to a straight run: %s\n",
                identical ? "yes" : "NO");
    return identical ? 0 : 1;
  }

  const auto out = sched::run_with_store(workload, 4, store_path);
  std::printf("store %s: restored %zu records, tracked %zu, complete: %s\n",
              store_path.c_str(), out.restored, out.stats.accepted,
              out.completed ? "yes" : "NO");
  if (!out.completed) return 1;
  if (!verify) return 0;

  // The session ran finish(), so the store must come back footer-indexed;
  // re-assemble the report through the reader and require bit-identity
  // against both the in-memory report and a straight run.
  const store::MultiStoreReader reader({store_path});
  if (!reader.shard(0).indexed()) {
    std::printf("store %s is not footer-indexed after finish()\n", store_path.c_str());
    return 1;
  }
  const auto assembled = report_from_store(reader);
  const auto straight = sched::run_paths(workload, 4);
  const bool identical = sched::identical_path_results(straight, out.report) &&
                         sched::identical_path_results(straight, assembled);
  std::printf("resumed + store-assembled reports bit-identical to a straight run: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
