// Micro-benchmarks (google-benchmark) of the numerical kernels: polynomial
// evaluation and Jacobians (interpreted vs compiled tape), LU, cofactor
// matrices, Newton correction, full path tracking, and Pieri condition
// evaluation.  These identify where the per-path time of the headline
// experiments goes and pin the compiled engine's speedup per commit.
//
// Set PPH_BENCH_JSON=<path> to additionally write the results as JSON
// (google-benchmark's machine-readable format) for the BENCH_*.json perf
// trajectory; CI's bench-smoke job uploads that file per commit.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "homotopy/solver.hpp"
#include "linalg/lu.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "systems/cyclic.hpp"

namespace {

using namespace pph;
using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

CVector random_point(util::Prng& rng, std::size_t n) {
  CVector x(n);
  for (auto& v : x) v = rng.normal_complex();
  return x;
}

void BM_PolySystemEvaluate(benchmark::State& state) {
  const auto sys = systems::cyclic(static_cast<std::size_t>(state.range(0)));
  util::Prng rng(1);
  const CVector x = random_point(rng, sys.nvars());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.evaluate(x));
  }
}
BENCHMARK(BM_PolySystemEvaluate)->Arg(5)->Arg(7)->Arg(9);

void BM_PolySystemJacobian(benchmark::State& state) {
  const auto sys = systems::cyclic(static_cast<std::size_t>(state.range(0)));
  util::Prng rng(2);
  const CVector x = random_point(rng, sys.nvars());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.evaluate_with_jacobian(x));
  }
}
BENCHMARK(BM_PolySystemJacobian)->Arg(5)->Arg(7);

// ---- interpreted vs compiled homotopy evaluation --------------------------
//
// The pair below is THE headline comparison of the evaluation engine: the
// same ConvexHomotopy evaluated through the interpreted Polynomial walk
// versus the compiled straight-line tape (fused H + dH/dx + dH/dt,
// allocation-free).  Arg is the cyclic-n system size.

homotopy::ConvexHomotopy make_convex_homotopy(std::size_t n, std::uint64_t seed) {
  const auto sys = systems::cyclic(n);
  util::Prng rng(seed);
  homotopy::TotalDegreeStart start(sys, rng);
  return homotopy::ConvexHomotopy(start.system(), sys, rng.unit_complex());
}

void BM_HomotopyEvalJacInterpreted(benchmark::State& state) {
  const auto h = make_convex_homotopy(static_cast<std::size_t>(state.range(0)), 11);
  util::Prng rng(12);
  const CVector x = random_point(rng, h.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate_with_jacobian(x, 0.37));
    benchmark::DoNotOptimize(h.derivative_t(x, 0.37));
  }
}
BENCHMARK(BM_HomotopyEvalJacInterpreted)->Arg(5)->Arg(6)->Arg(7);

void BM_HomotopyEvalJacCompiled(benchmark::State& state) {
  const auto h = make_convex_homotopy(static_cast<std::size_t>(state.range(0)), 11);
  util::Prng rng(12);
  const CVector x = random_point(rng, h.dimension());
  auto ws = h.make_workspace();
  CVector hv, ht;
  CMatrix jac;
  for (auto _ : state) {
    h.evaluate_fused(x, 0.37, ws.get(), hv, jac, ht);
    benchmark::DoNotOptimize(hv.data());
    benchmark::DoNotOptimize(jac.data());
    benchmark::DoNotOptimize(ht.data());
  }
}
BENCHMARK(BM_HomotopyEvalJacCompiled)->Arg(5)->Arg(6)->Arg(7);

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Prng rng(3);
  CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal_complex();
  const CVector b = random_point(rng, n);
  for (auto _ : state) {
    linalg::LU lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuFactorSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_CofactorMatrix(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Prng rng(4);
  CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal_complex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(schubert::cofactor_matrix(a));
  }
}
BENCHMARK(BM_CofactorMatrix)->Arg(4)->Arg(6)->Arg(8);

void BM_NewtonCorrection(benchmark::State& state) {
  const auto sys = systems::cyclic(5);
  util::Prng rng(5);
  homotopy::TotalDegreeStart start(sys, rng);
  homotopy::ConvexHomotopy h(start.system(), sys, rng.unit_complex());
  const CVector x0 = start.solution(0);
  for (auto _ : state) {
    CVector x = x0;
    benchmark::DoNotOptimize(homotopy::correct(h, x, 0.02, homotopy::CorrectorOptions{}));
  }
}
BENCHMARK(BM_NewtonCorrection);

// Steady-state corrector cost with a reused workspace — the per-iteration
// cost the schedulers actually pay inside track_path.
void BM_NewtonCorrectionWorkspace(benchmark::State& state) {
  const auto sys = systems::cyclic(5);
  util::Prng rng(5);
  homotopy::TotalDegreeStart start(sys, rng);
  homotopy::ConvexHomotopy h(start.system(), sys, rng.unit_complex());
  const CVector x0 = start.solution(0);
  homotopy::TrackerWorkspace ws(h);
  CVector x = x0;
  for (auto _ : state) {
    x = x0;
    benchmark::DoNotOptimize(homotopy::correct(h, x, 0.02, homotopy::CorrectorOptions{}, ws));
  }
}
BENCHMARK(BM_NewtonCorrectionWorkspace);

void BM_FullPathCyclic5(benchmark::State& state) {
  const auto sys = systems::cyclic(5);
  util::Prng rng(6);
  homotopy::TotalDegreeStart start(sys, rng);
  homotopy::ConvexHomotopy h(start.system(), sys, rng.unit_complex());
  const CVector x0 = start.solution(1);
  homotopy::TrackerWorkspace ws(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(homotopy::track_path(h, x0, {}, ws));
  }
}
BENCHMARK(BM_FullPathCyclic5);

void BM_PieriConditionEval(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(7);
  const auto input = schubert::random_pieri_input(pb, rng);
  const schubert::Pattern root = schubert::Pattern::root(pb);
  schubert::PatternChart chart(root);
  CVector coords = random_point(rng, chart.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(schubert::evaluate_condition(
        chart, coords, input.conditions[0].plane, input.conditions[0].point,
        Complex{1.0, 0.0}));
  }
}
BENCHMARK(BM_PieriConditionEval);

void BM_PieriEdgeJacobian(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(8);
  const auto input = schubert::random_pieri_input(pb, rng);
  const schubert::Pattern root = schubert::Pattern::root(pb);
  schubert::PatternChart chart(root);
  std::vector<schubert::PlaneCondition> fixed(input.conditions.begin(),
                                              input.conditions.end() - 1);
  schubert::PieriEdgeHomotopy h(chart, fixed, input.conditions.back(), rng.unit_complex());
  const CVector x = random_point(rng, chart.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate_with_jacobian(x, 0.5));
  }
}
BENCHMARK(BM_PieriEdgeJacobian);

// ---- interpreted vs compiled Pieri edge evaluation ------------------------
//
// The Pieri analogue of the BM_HomotopyEvalJac* pair (DESIGN.md section 8):
// the same root-level edge homotopy of the Table III instance, evaluated
// through the interpreted bordered-determinant walk (cofactor matrix per
// condition per call) versus the compiled edge tape's fused pass with per-t
// cached coefficients.

schubert::PieriEdgeHomotopy make_pieri_edge(const schubert::PieriInput& input) {
  const schubert::Pattern root = schubert::Pattern::root(input.problem);
  schubert::PatternChart chart(root);
  util::Prng rng(9);
  std::vector<schubert::PlaneCondition> fixed(input.conditions.begin(),
                                              input.conditions.end() - 1);
  return schubert::PieriEdgeHomotopy(chart, fixed, input.conditions.back(), rng.unit_complex(),
                                     0.7 * rng.unit_complex(), 0.7 * rng.unit_complex());
}

void BM_PieriEdgeFusedInterpreted(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(9);
  const auto input = schubert::random_pieri_input(pb, rng);
  const auto h = make_pieri_edge(input);
  const CVector x = random_point(rng, h.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate_with_jacobian(x, 0.37));
    benchmark::DoNotOptimize(h.derivative_t(x, 0.37));
  }
}
BENCHMARK(BM_PieriEdgeFusedInterpreted);

void BM_PieriEdgeFusedCompiled(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(9);
  const auto input = schubert::random_pieri_input(pb, rng);
  const auto h = make_pieri_edge(input);
  const CVector x = random_point(rng, h.dimension());
  auto ws = h.make_workspace();
  CVector hv, ht;
  CMatrix jac;
  for (auto _ : state) {
    h.evaluate_fused(x, 0.37, ws.get(), hv, jac, ht);
    benchmark::DoNotOptimize(hv.data());
    benchmark::DoNotOptimize(jac.data());
    benchmark::DoNotOptimize(ht.data());
  }
}
BENCHMARK(BM_PieriEdgeFusedCompiled);

}  // namespace

// Custom main: honour PPH_BENCH_JSON=<path> by forwarding the path to
// google-benchmark's JSON file output (in addition to the console table).
int main(int argc, char** argv) {
  std::vector<std::string> extra;
  if (const char* path = std::getenv("PPH_BENCH_JSON")) {
    extra.push_back(std::string("--benchmark_out=") + path);
    extra.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args(argv, argv + argc);
  for (auto& s : extra) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
