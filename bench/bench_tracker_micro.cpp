// Micro-benchmarks (google-benchmark) of the numerical kernels: polynomial
// evaluation and Jacobians, LU, cofactor matrices, Newton correction, full
// path tracking, and Pieri condition evaluation.  These identify where the
// per-path time of the headline experiments goes.

#include <benchmark/benchmark.h>

#include "homotopy/solver.hpp"
#include "linalg/lu.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "systems/cyclic.hpp"

namespace {

using namespace pph;
using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

CVector random_point(util::Prng& rng, std::size_t n) {
  CVector x(n);
  for (auto& v : x) v = rng.normal_complex();
  return x;
}

void BM_PolySystemEvaluate(benchmark::State& state) {
  const auto sys = systems::cyclic(static_cast<std::size_t>(state.range(0)));
  util::Prng rng(1);
  const CVector x = random_point(rng, sys.nvars());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.evaluate(x));
  }
}
BENCHMARK(BM_PolySystemEvaluate)->Arg(5)->Arg(7)->Arg(9);

void BM_PolySystemJacobian(benchmark::State& state) {
  const auto sys = systems::cyclic(static_cast<std::size_t>(state.range(0)));
  util::Prng rng(2);
  const CVector x = random_point(rng, sys.nvars());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.evaluate_with_jacobian(x));
  }
}
BENCHMARK(BM_PolySystemJacobian)->Arg(5)->Arg(7);

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Prng rng(3);
  CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal_complex();
  const CVector b = random_point(rng, n);
  for (auto _ : state) {
    linalg::LU lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuFactorSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_CofactorMatrix(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Prng rng(4);
  CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal_complex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(schubert::cofactor_matrix(a));
  }
}
BENCHMARK(BM_CofactorMatrix)->Arg(4)->Arg(6)->Arg(8);

void BM_NewtonCorrection(benchmark::State& state) {
  const auto sys = systems::cyclic(5);
  util::Prng rng(5);
  homotopy::TotalDegreeStart start(sys, rng);
  homotopy::ConvexHomotopy h(start.system(), sys, rng.unit_complex());
  const CVector x0 = start.solution(0);
  for (auto _ : state) {
    CVector x = x0;
    benchmark::DoNotOptimize(homotopy::correct(h, x, 0.02, homotopy::CorrectorOptions{}));
  }
}
BENCHMARK(BM_NewtonCorrection);

void BM_FullPathCyclic5(benchmark::State& state) {
  const auto sys = systems::cyclic(5);
  util::Prng rng(6);
  homotopy::TotalDegreeStart start(sys, rng);
  homotopy::ConvexHomotopy h(start.system(), sys, rng.unit_complex());
  const CVector x0 = start.solution(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(homotopy::track_path(h, x0));
  }
}
BENCHMARK(BM_FullPathCyclic5);

void BM_PieriConditionEval(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(7);
  const auto input = schubert::random_pieri_input(pb, rng);
  const schubert::Pattern root = schubert::Pattern::root(pb);
  schubert::PatternChart chart(root);
  CVector coords = random_point(rng, chart.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(schubert::evaluate_condition(
        chart, coords, input.conditions[0].plane, input.conditions[0].point,
        Complex{1.0, 0.0}));
  }
}
BENCHMARK(BM_PieriConditionEval);

void BM_PieriEdgeJacobian(benchmark::State& state) {
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(8);
  const auto input = schubert::random_pieri_input(pb, rng);
  const schubert::Pattern root = schubert::Pattern::root(pb);
  schubert::PatternChart chart(root);
  std::vector<schubert::PlaneCondition> fixed(input.conditions.begin(),
                                              input.conditions.end() - 1);
  schubert::PieriEdgeHomotopy h(chart, fixed, input.conditions.back(), rng.unit_complex());
  const CVector x = random_point(rng, chart.dimension());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate_with_jacobian(x, 0.5));
  }
}
BENCHMARK(BM_PieriEdgeJacobian);

}  // namespace

BENCHMARK_MAIN();
