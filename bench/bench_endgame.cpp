// The rescue tier and root-count certification end to end (DESIGN.md
// section 9): replay the historically path-losing (2,2,4) seeds with the
// rescue tier off and on, certify both runs against the exact chain count
// (512), and report the measured rescue rate and wall-clock overhead.
//
// With rescue OFF most of these seeds lose paths to mid-path jumps and
// interior near-singular points and fail certification -- the pre-rescue
// Table IV footnote.  With rescue ON every seed must reach the full
// certified root count; any rescue-on certification failure makes the
// binary exit non-zero, which the CI smoke job relies on.
//
// Set PPH_BENCH_ENDGAME_TINY=1 for a seconds-scale run (CI smoke): the
// sweep drops to (2,2,2).  Set PPH_BENCH_JSON=<path> to also write the
// measured rows -- including per-seed rescue rates and certificates -- as
// JSON (the perf-trajectory format committed under docs/bench/).  The
// cumulative budget is PPH_BENCH_BUDGET_SECONDS (default 420); seeds out
// of budget print N/A and are not counted against certification.

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "schubert/pieri_solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

bool tiny_mode() {
  const char* v = std::getenv("PPH_BENCH_ENDGAME_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// One measured row of the JSON perf trajectory.
struct JsonRow {
  std::string name;
  double wall_seconds = 0.0;
  std::uint64_t rescue_retracks = 0;
  double rescue_rate = 0.0;  // retracks per tree edge
  bool certified = false;
};

void write_bench_json(const std::string& path, const std::vector<JsonRow>& rows, bool tiny,
                      double overhead, bool all_certified) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "PPH_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  out << "{\n  \"context\": {\n"
      << "    \"bench\": \"bench_endgame\",\n"
      << "    \"date\": \"" << stamp << "\",\n"
      << "    \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "    \"rescue_wall_overhead\": " << overhead << ",\n"
      << "    \"all_rescue_on_runs_certified\": " << (all_certified ? "true" : "false")
      << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_seconds\": " << r.wall_seconds
        << ", \"rescue_retracks\": " << r.rescue_retracks
        << ", \"rescue_rate\": " << r.rescue_rate
        << ", \"certified\": " << (r.certified ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote JSON trajectory point: %s\n", path.c_str());
}

}  // namespace

int main() {
  using namespace pph;
  const bool tiny = tiny_mode();
  if (tiny) std::printf("(tiny mode: PPH_BENCH_ENDGAME_TINY set)\n\n");

  double budget = 420.0;
  if (const char* env = std::getenv("PPH_BENCH_BUDGET_SECONDS")) {
    budget = std::strtod(env, nullptr);
  }

  const schubert::PieriProblem pb =
      tiny ? schubert::PieriProblem{2, 2, 2} : schubert::PieriProblem{2, 2, 4};
  const std::vector<std::uint64_t> seeds = tiny ? std::vector<std::uint64_t>{1, 2, 3}
                                                : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6};

  util::Table t("rescue tier on the path-losing (" + std::to_string(pb.m) + "," +
                std::to_string(pb.p) + "," + std::to_string(pb.q) +
                ") seeds: solutions found / certificate / rescue ledger");
  t.set_header({"seed", "mode", "sols", "fail", "retracks", "rate", "time(s)", "certificate"});

  util::WallTimer clock;
  std::vector<JsonRow> json_rows;
  double off_total = 0.0, on_total = 0.0;
  std::size_t measured_pairs = 0;
  bool all_certified = true;

  for (const std::uint64_t seed : seeds) {
    util::Prng rng(seed);
    const auto input = schubert::random_pieri_input(pb, rng);

    // Two solves per seed; budget check up front so a seed is either
    // measured in both modes or skipped in both (the overhead ratio needs
    // matched pairs).
    if (clock.seconds() + 2.5 * (measured_pairs ? (off_total + on_total) / measured_pairs : 0.0) >
        budget) {
      t.add_row({std::to_string(seed), "both", util::Table::na(), util::Table::na(),
                 util::Table::na(), util::Table::na(), util::Table::na(), "out of budget"});
      continue;
    }

    for (const bool rescue : {false, true}) {
      schubert::PieriSolverOptions opts;
      opts.rescue = rescue;
      util::WallTimer timer;
      const auto summary = schubert::solve_pieri(input, opts);
      const double wall = timer.seconds();
      const auto cert = schubert::certify_pieri(input, summary);
      const double rate = summary.total_jobs
                              ? static_cast<double>(summary.rescue_retracks) /
                                    static_cast<double>(summary.total_jobs)
                              : 0.0;
      (rescue ? on_total : off_total) += wall;
      if (rescue && !cert.ok()) all_certified = false;
      char rate_buf[32], time_buf[32];
      std::snprintf(rate_buf, sizeof rate_buf, "%.4f", rate);
      std::snprintf(time_buf, sizeof time_buf, "%.1f", wall);
      t.add_row({std::to_string(seed), rescue ? "rescue" : "plain",
                 std::to_string(summary.solutions.size()), std::to_string(summary.failures),
                 std::to_string(summary.rescue_retracks), rate_buf, time_buf,
                 cert.ok() ? "certified" : "FAILED"});
      json_rows.push_back({std::string("pieri_") + (rescue ? "rescue" : "plain") + "_seed" +
                               std::to_string(seed),
                           wall, summary.rescue_retracks, rate, cert.ok()});
    }
    ++measured_pairs;
  }

  const double overhead = off_total > 0.0 ? on_total / off_total : 0.0;
  std::cout << t.to_string();
  std::printf(
      "\nrescue-on vs rescue-off wall ratio over %zu seed pairs: %.2fx\n"
      "(targeted re-tracks replace whole-instance retries, so the rescue tier is\n"
      " usually FASTER on lossy seeds while recovering the full certified count)\n",
      measured_pairs, overhead);

  if (const char* json_path = std::getenv("PPH_BENCH_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    write_bench_json(json_path, json_rows, tiny, overhead, all_certified);
  }

  if (!all_certified) {
    std::fprintf(stderr, "FAIL: a rescue-on solve did not certify the full root count\n");
    return 1;
  }
  std::printf("all rescue-on solves certified\n");
  return 0;
}
