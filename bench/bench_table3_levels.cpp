// Regenerates the paper's Table III: number of paths and CPU time per
// level of the Pieri tree for m = 3, p = 2, q = 1 (252 paths, 11 levels).
//
// This is a REAL run of the Pieri solver on a random instance of the same
// size.  The per-level path counts are exact combinatorial quantities and
// must match the paper's 1 2 3 5 8 13 21 34 55 55 55; the timing column
// reproduces the paper's observation that "the jobs closest to the root are
// the smallest ... almost half of the time is spent at the last level".
// See EXPERIMENTS.md for paper-vs-measured.

#include <cstdio>
#include <iostream>

#include "schubert/pieri_solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace pph;
  const schubert::PieriProblem pb{3, 2, 1};

  schubert::PatternPoset poset(pb);
  const auto expected_jobs = poset.jobs_per_level();

  const auto summary = schubert::solve_random_pieri(pb, /*seed=*/2004);

  util::Table t(
      "TABLE III -- paths and times per level, m=3 p=2 q=1\n"
      "(paper: 1 2 3 5 8 13 21 34 55 55 55 paths, 252 total, 38s350ms on a 2.4GHz PC)");
  t.set_header({"level", "#paths", "paper #paths", "time", "share"});
  double total_seconds = 0.0;
  for (const auto& lvl : summary.levels) total_seconds += lvl.seconds;
  for (std::size_t i = 0; i < summary.levels.size(); ++i) {
    const auto& lvl = summary.levels[i];
    char time_buf[32];
    std::snprintf(time_buf, sizeof time_buf, "%.0f ms", 1000.0 * lvl.seconds);
    char share_buf[32];
    std::snprintf(share_buf, sizeof share_buf, "%4.1f%%", 100.0 * lvl.seconds / total_seconds);
    t.add_row({util::Table::cell(lvl.level), util::Table::cell(static_cast<std::size_t>(lvl.jobs)),
               util::Table::cell(static_cast<std::size_t>(expected_jobs[i])), time_buf,
               share_buf});
  }
  char total_buf[64];
  std::snprintf(total_buf, sizeof total_buf, "%.2f s", total_seconds);
  t.add_row({"Total", util::Table::cell(static_cast<std::size_t>(summary.total_jobs)),
             util::Table::cell(static_cast<std::size_t>(poset.total_jobs())), total_buf,
             "100%"});
  std::cout << t.to_string();

  const double last_share =
      summary.levels.back().seconds / total_seconds;
  std::printf("\nlast level time share: %.0f%% (paper: \"almost half\")\n",
              100.0 * last_share);
  std::printf("solutions %zu / expected %llu, verified %zu, max residual %.2e\n",
              summary.solutions.size(),
              static_cast<unsigned long long>(summary.expected_count), summary.verified,
              summary.max_residual);
  return summary.complete() ? 0 : 1;
}
