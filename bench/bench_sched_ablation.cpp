// Ablation study of the load-balancing design choices (DESIGN.md section 3):
//   1. static assignment order: block vs cyclic interleave, as a function
//      of how clustered the divergent paths are;
//   2. dynamic balancing sensitivity to master dispatch overhead;
//   3. dynamic balancing sensitivity to message latency;
//   3b. the policy spectrum: static / guided / batch+steal / per-job;
//   4. the thread runtime protocols on a real workload, feeding measured
//      per-path durations back through the simulator;
//   5. batched work stealing vs per-job dynamic dispatch on the thread
//      runtime under injected message latency (the run_batch tentpole
//      claim: batch throughput >= dynamic at >= 1 ms latency, with
//      identical path results across all three schedulers);
//   6. the Pieri tree scheduler under both session policies (FCFS vs
//      BatchSteal, DESIGN.md section 7): level batches must cut master
//      dispatches while producing the identical solution set.
//
// Set PPH_BENCH_ABLATION_TINY=1 for a seconds-scale run (CI smoke): the
// real-tracking studies drop to cyclic-5 / (m,p,q)=(2,2,1) and the latency
// grid shrinks.  Set PPH_BENCH_JSON=<path> to also write the measured rows
// as JSON (the perf-trajectory format committed under docs/bench/).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "homotopy/start_total_degree.hpp"
#include "sched/pieri_scheduler.hpp"
#include "sched/session.hpp"
#include "simcluster/speedup.hpp"
#include "systems/cyclic.hpp"
#include "util/table.hpp"

namespace {

bool tiny_mode() {
  const char* v = std::getenv("PPH_BENCH_ABLATION_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// One measured row of the JSON perf trajectory.
struct JsonRow {
  std::string name;
  double wall_seconds = 0.0;
  double throughput = 0.0;  // paths (or jobs) per second
  std::size_t dispatches = 0;
  std::size_t steals = 0;
};

void write_bench_json(const std::string& path, const std::vector<JsonRow>& rows,
                      bool tiny, bool all_identical) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "PPH_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  out << "{\n  \"context\": {\n"
      << "    \"bench\": \"bench_sched_ablation\",\n"
      << "    \"date\": \"" << stamp << "\",\n"
      << "    \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "    \"identical_path_results_everywhere\": " << (all_identical ? "true" : "false")
      << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_seconds\": " << r.wall_seconds
        << ", \"throughput_per_second\": " << r.throughput
        << ", \"dispatches\": " << r.dispatches << ", \"steals\": " << r.steals << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote JSON trajectory point: %s\n", path.c_str());
}

}  // namespace

int main() {
  using namespace pph;
  const bool tiny = tiny_mode();
  if (tiny) std::printf("(tiny mode: PPH_BENCH_ABLATION_TINY set)\n\n");

  // ---- 1. block vs cyclic static assignment ---------------------------------
  {
    util::Table t("ABLATION 1 -- static assignment order (cyclic10 model, 64 CPUs)");
    t.set_header({"divergent clustering", "block makespan (min)", "cyclic makespan (min)"});
    for (const std::size_t cluster : {std::size_t{1}, std::size_t{16}, std::size_t{64},
                                      std::size_t{250}}) {
      util::Prng rng(1);
      auto model = simcluster::cyclic10_model();
      model.cluster_size = cluster;  // longer contiguous divergent runs
      const auto durations = simcluster::synthesize(model, rng);
      const auto block = simcluster::simulate_static(durations, 64,
                                                     simcluster::SimAssignment::kBlock);
      const auto cyc = simcluster::simulate_static(durations, 64,
                                                   simcluster::SimAssignment::kCyclic);
      char label[32];
      std::snprintf(label, sizeof label, "runs of %zu", cluster);
      t.add_row({label, util::Table::cell(block.makespan / 60.0, 2),
                 util::Table::cell(cyc.makespan / 60.0, 2)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 2/3. dynamic sensitivity to communication costs ----------------------
  {
    util::Prng rng(2);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    util::Table t("ABLATION 2 -- dynamic balancing vs master dispatch overhead (128 CPUs)");
    t.set_header({"dispatch overhead (ms)", "latency (ms)", "makespan (min)", "speedup"});
    double total = 0.0;
    for (const double d : durations) total += d;
    for (const double overhead_ms : {0.0, 2.0, 4.0, 8.0, 16.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = overhead_ms / 1000.0;
      comm.message_latency = 0.002;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({util::Table::cell(overhead_ms, 1), "2.0",
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    for (const double latency_ms : {10.0, 50.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = 0.004;
      comm.message_latency = latency_ms / 1000.0;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({"4.0", util::Table::cell(latency_ms, 1),
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 3b. policy spectrum: static / guided / batch+steal / per-job ----------
  {
    util::Prng rng(5);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    double total = 0.0;
    for (const double d : durations) total += d;
    simcluster::CommModel comm;
    comm.dispatch_overhead = 0.001;
    comm.message_latency = 0.002;
    util::Table t("ABLATION 3 -- policy spectrum at 128 CPUs (cyclic10 model)");
    t.set_header({"policy", "makespan (min)", "speedup", "dispatches", "steals"});
    const auto st = simcluster::simulate_static(durations, 128,
                                                simcluster::SimAssignment::kBlock);
    t.add_row({"static block", util::Table::cell(st.makespan / 60.0, 2),
               util::Table::cell(total / st.makespan, 1), "0", "0"});
    const auto stc = simcluster::simulate_static(durations, 128,
                                                 simcluster::SimAssignment::kCyclic);
    t.add_row({"static cyclic", util::Table::cell(stc.makespan / 60.0, 2),
               util::Table::cell(total / stc.makespan, 1), "0", "0"});
    for (const double factor : {1.0, 2.0, 4.0}) {
      const auto g = simcluster::simulate_guided(durations, 128, comm, factor);
      char label[32];
      std::snprintf(label, sizeof label, "guided f=%.0f", factor);
      t.add_row({label, util::Table::cell(g.makespan / 60.0, 2),
                 util::Table::cell(total / g.makespan, 1),
                 util::Table::cell(static_cast<double>(g.dispatches), 0), "0"});
    }
    const auto bs = simcluster::simulate_batch_steal(durations, 128, comm);
    t.add_row({"batch+steal f=2", util::Table::cell(bs.makespan / 60.0, 2),
               util::Table::cell(total / bs.makespan, 1),
               util::Table::cell(static_cast<double>(bs.dispatches), 0),
               util::Table::cell(static_cast<double>(bs.steals), 0)});
    const auto dy = simcluster::simulate_dynamic(durations, 128, comm);
    t.add_row({"dynamic per-job", util::Table::cell(dy.makespan / 60.0, 2),
               util::Table::cell(total / dy.makespan, 1),
               util::Table::cell(static_cast<double>(dy.dispatches), 0), "0"});
    std::cout << t.to_string() << "\n";
  }

  // ---- 4. real thread-runtime protocols on cyclic-n -------------------------
  // The tracked workload: cyclic-6 (720 paths), or cyclic-5 in tiny mode.
  const int cyclic_n = tiny ? 5 : 6;
  util::Prng rng(3);
  const auto target = systems::cyclic(cyclic_n);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;
  // Any scheduler disagreement anywhere makes the binary exit non-zero
  // (the CI smoke job relies on this).
  bool all_identical = true;
  {
    std::printf("ABLATION 4 -- thread runtime on cyclic-%d (real tracking)\n", cyclic_n);
    const auto st = sched::run_paths(workload, 4,
                                     sched::SessionOptions().with_policy(sched::Policy::kStatic));
    const auto dy = sched::run_paths(workload, 4);
    const auto ba = sched::run_paths(workload, 4,
                                     sched::SessionOptions().with_policy(sched::Policy::kBatchSteal));
    const bool same = sched::identical_path_results(st, dy) && sched::identical_path_results(st, ba);
    all_identical = all_identical && same;
    std::printf(
        "  %zu paths; static: %zu conv %zu div; all three schedulers identical: %s\n",
        starts.size(), st.converged, st.diverged, same ? "yes" : "NO");
    std::printf("  dispatches: dynamic %zu, batch %zu; batch steals %zu\n", dy.dispatches,
                ba.dispatches, ba.steals);

    // Feed the real measured durations back into the simulator.
    std::vector<double> durations;
    for (const auto& tp : dy.paths) durations.push_back(tp.seconds);
    // Scale communication to the sub-millisecond laptop path costs.
    simcluster::CommModel comm;
    comm.dispatch_overhead = 2e-6;
    comm.message_latency = 1e-6;
    const auto study = simcluster::run_speedup_study(durations, {2, 4, 8, 16, 32}, comm,
                                                     simcluster::SimAssignment::kBlock);
    std::cout << simcluster::to_table(study,
                                      "  projected speedups from measured cyclic durations")
                     .to_string()
              << "\n";
  }

  // ---- 5. batch+steal vs per-job dynamic under injected latency --------------
  std::vector<JsonRow> json_rows;
  {
    util::Table t("ABLATION 5 -- run_batch vs run_dynamic under injected latency "
                  "(4 ranks, real tracking)");
    t.set_header({"latency (ms)", "dynamic wall (s)", "batch wall (s)",
                  "dynamic paths/s", "batch paths/s", "batch wins", "identical"});
    std::vector<double> latencies_ms{0.0, 1.0};
    if (!tiny) latencies_ms.push_back(5.0);
    bool batch_wins_at_latency = true;
    for (const double ms : latencies_ms) {
      const auto dy = sched::run_paths(
          workload, 4, sched::SessionOptions().with_latency(ms / 1000.0));
      const auto ba = sched::run_paths(workload, 4,
                                       sched::SessionOptions()
                                           .with_policy(sched::Policy::kBatchSteal)
                                           .with_latency(ms / 1000.0));
      const double n = static_cast<double>(starts.size());
      const double tput_dy = n / dy.wall_seconds;
      const double tput_ba = n / ba.wall_seconds;
      const bool same = sched::identical_path_results(dy, ba);
      all_identical = all_identical && same;
      const bool wins = tput_ba >= tput_dy;
      if (ms >= 1.0 && !wins) batch_wins_at_latency = false;
      t.add_row({util::Table::cell(ms, 1), util::Table::cell(dy.wall_seconds, 2),
                 util::Table::cell(ba.wall_seconds, 2), util::Table::cell(tput_dy, 1),
                 util::Table::cell(tput_ba, 1), wins ? "yes" : "no", same ? "yes" : "NO"});
      char name[64];
      std::snprintf(name, sizeof name, "dynamic_latency_%.0fms", ms);
      json_rows.push_back({name, dy.wall_seconds, tput_dy, dy.dispatches, dy.steals});
      std::snprintf(name, sizeof name, "batch_latency_%.0fms", ms);
      json_rows.push_back({name, ba.wall_seconds, tput_ba, ba.dispatches, ba.steals});
    }
    std::cout << t.to_string();
    std::printf("  batch >= dynamic throughput at latency >= 1 ms: %s\n",
                batch_wins_at_latency ? "yes" : "NO");
  }

  // ---- 6. the Pieri tree under both session policies --------------------------
  // The same tree expansion (PieriTreeJobSource) rides the per-job FCFS
  // protocol and the BatchSteal policy (level batches + brokered steals):
  // dispatch counts drop, the solution set must not change by a bit.
  {
    const schubert::PieriProblem pb = tiny ? schubert::PieriProblem{2, 2, 1}
                                           : schubert::PieriProblem{3, 2, 1};
    util::Prng prng(2004);
    const auto input = schubert::random_pieri_input(pb, prng);
    std::printf("ABLATION 6 -- Pieri tree sessions, m=%zu p=%zu q=%zu (4 ranks)\n",
                pb.m, pb.p, pb.q);
    util::Table t("  FCFS vs BatchSteal over the same virtual Pieri tree");
    t.set_header({"policy", "wall (s)", "jobs", "dispatches", "steals", "complete"});
    sched::ParallelPieriReport reports[2];
    for (int k = 0; k < 2; ++k) {
      sched::ParallelPieriOptions opts;
      opts.policy = k == 0 ? sched::Policy::kFCFS : sched::Policy::kBatchSteal;
      reports[k] = sched::run_pieri(input, 4, opts);
      const auto& r = reports[k];
      t.add_row({sched::policy_name(opts.policy), util::Table::cell(r.wall_seconds, 2),
                 util::Table::cell(static_cast<std::size_t>(r.total_jobs)),
                 util::Table::cell(r.dispatches), util::Table::cell(r.steals),
                 r.complete() ? "yes" : "NO"});
      json_rows.push_back({k == 0 ? "pieri_fcfs" : "pieri_batch_steal", r.wall_seconds,
                           static_cast<double>(r.total_jobs) / r.wall_seconds,
                           r.dispatches, r.steals});
    }
    const bool same_solutions = reports[0].complete() && reports[1].complete() &&
                                sched::canonical_solution_set(reports[0].solutions) ==
                                    sched::canonical_solution_set(reports[1].solutions);
    all_identical = all_identical && same_solutions;
    std::cout << t.to_string();
    std::printf("  identical solution sets across Pieri policies: %s\n",
                same_solutions ? "yes" : "NO");
  }

  std::printf("\nidentical results across schedulers/policies everywhere: %s\n",
              all_identical ? "yes" : "NO");
  if (const char* json_path = std::getenv("PPH_BENCH_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    write_bench_json(json_path, json_rows, tiny, all_identical);
  }
  return all_identical ? 0 : 1;
}
