// Ablation study of the load-balancing design choices (DESIGN.md section 3):
//   1. static assignment order: block vs cyclic interleave, as a function
//      of how clustered the divergent paths are;
//   2. dynamic balancing sensitivity to master dispatch overhead;
//   3. dynamic balancing sensitivity to message latency;
//   3b. the policy spectrum: static / guided / batch+steal / per-job;
//   4. the thread runtime protocols on a real workload, feeding measured
//      per-path durations back through the simulator;
//   5. batched work stealing vs per-job dynamic dispatch on the thread
//      runtime under injected message latency (the run_batch tentpole
//      claim: batch throughput >= dynamic at >= 1 ms latency, with
//      identical path results across all three schedulers).
//
// Set PPH_BENCH_ABLATION_TINY=1 for a seconds-scale run (CI smoke): the
// real-tracking studies drop to cyclic-5 and the latency grid shrinks.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "homotopy/start_total_degree.hpp"
#include "sched/batch_scheduler.hpp"
#include "sched/dynamic_scheduler.hpp"
#include "sched/static_scheduler.hpp"
#include "simcluster/speedup.hpp"
#include "systems/cyclic.hpp"
#include "util/table.hpp"

namespace {

bool tiny_mode() {
  const char* v = std::getenv("PPH_BENCH_ABLATION_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

int main() {
  using namespace pph;
  const bool tiny = tiny_mode();
  if (tiny) std::printf("(tiny mode: PPH_BENCH_ABLATION_TINY set)\n\n");

  // ---- 1. block vs cyclic static assignment ---------------------------------
  {
    util::Table t("ABLATION 1 -- static assignment order (cyclic10 model, 64 CPUs)");
    t.set_header({"divergent clustering", "block makespan (min)", "cyclic makespan (min)"});
    for (const std::size_t cluster : {std::size_t{1}, std::size_t{16}, std::size_t{64},
                                      std::size_t{250}}) {
      util::Prng rng(1);
      auto model = simcluster::cyclic10_model();
      model.cluster_size = cluster;  // longer contiguous divergent runs
      const auto durations = simcluster::synthesize(model, rng);
      const auto block = simcluster::simulate_static(durations, 64,
                                                     simcluster::SimAssignment::kBlock);
      const auto cyc = simcluster::simulate_static(durations, 64,
                                                   simcluster::SimAssignment::kCyclic);
      char label[32];
      std::snprintf(label, sizeof label, "runs of %zu", cluster);
      t.add_row({label, util::Table::cell(block.makespan / 60.0, 2),
                 util::Table::cell(cyc.makespan / 60.0, 2)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 2/3. dynamic sensitivity to communication costs ----------------------
  {
    util::Prng rng(2);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    util::Table t("ABLATION 2 -- dynamic balancing vs master dispatch overhead (128 CPUs)");
    t.set_header({"dispatch overhead (ms)", "latency (ms)", "makespan (min)", "speedup"});
    double total = 0.0;
    for (const double d : durations) total += d;
    for (const double overhead_ms : {0.0, 2.0, 4.0, 8.0, 16.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = overhead_ms / 1000.0;
      comm.message_latency = 0.002;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({util::Table::cell(overhead_ms, 1), "2.0",
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    for (const double latency_ms : {10.0, 50.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = 0.004;
      comm.message_latency = latency_ms / 1000.0;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({"4.0", util::Table::cell(latency_ms, 1),
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 3b. policy spectrum: static / guided / batch+steal / per-job ----------
  {
    util::Prng rng(5);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    double total = 0.0;
    for (const double d : durations) total += d;
    simcluster::CommModel comm;
    comm.dispatch_overhead = 0.001;
    comm.message_latency = 0.002;
    util::Table t("ABLATION 3 -- policy spectrum at 128 CPUs (cyclic10 model)");
    t.set_header({"policy", "makespan (min)", "speedup", "dispatches", "steals"});
    const auto st = simcluster::simulate_static(durations, 128,
                                                simcluster::SimAssignment::kBlock);
    t.add_row({"static block", util::Table::cell(st.makespan / 60.0, 2),
               util::Table::cell(total / st.makespan, 1), "0", "0"});
    const auto stc = simcluster::simulate_static(durations, 128,
                                                 simcluster::SimAssignment::kCyclic);
    t.add_row({"static cyclic", util::Table::cell(stc.makespan / 60.0, 2),
               util::Table::cell(total / stc.makespan, 1), "0", "0"});
    for (const double factor : {1.0, 2.0, 4.0}) {
      const auto g = simcluster::simulate_guided(durations, 128, comm, factor);
      char label[32];
      std::snprintf(label, sizeof label, "guided f=%.0f", factor);
      t.add_row({label, util::Table::cell(g.makespan / 60.0, 2),
                 util::Table::cell(total / g.makespan, 1),
                 util::Table::cell(static_cast<double>(g.dispatches), 0), "0"});
    }
    const auto bs = simcluster::simulate_batch_steal(durations, 128, comm);
    t.add_row({"batch+steal f=2", util::Table::cell(bs.makespan / 60.0, 2),
               util::Table::cell(total / bs.makespan, 1),
               util::Table::cell(static_cast<double>(bs.dispatches), 0),
               util::Table::cell(static_cast<double>(bs.steals), 0)});
    const auto dy = simcluster::simulate_dynamic(durations, 128, comm);
    t.add_row({"dynamic per-job", util::Table::cell(dy.makespan / 60.0, 2),
               util::Table::cell(total / dy.makespan, 1),
               util::Table::cell(static_cast<double>(dy.dispatches), 0), "0"});
    std::cout << t.to_string() << "\n";
  }

  // ---- 4. real thread-runtime protocols on cyclic-n -------------------------
  // The tracked workload: cyclic-6 (720 paths), or cyclic-5 in tiny mode.
  const int cyclic_n = tiny ? 5 : 6;
  util::Prng rng(3);
  const auto target = systems::cyclic(cyclic_n);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;
  // Any scheduler disagreement anywhere makes the binary exit non-zero
  // (the CI smoke job relies on this).
  bool all_identical = true;
  {
    std::printf("ABLATION 4 -- thread runtime on cyclic-%d (real tracking)\n", cyclic_n);
    const auto st = sched::run_static(workload, 4);
    const auto dy = sched::run_dynamic(workload, 4);
    const auto ba = sched::run_batch(workload, 4);
    const bool same = sched::identical_path_results(st, dy) && sched::identical_path_results(st, ba);
    all_identical = all_identical && same;
    std::printf(
        "  %zu paths; static: %zu conv %zu div; all three schedulers identical: %s\n",
        starts.size(), st.converged, st.diverged, same ? "yes" : "NO");
    std::printf("  dispatches: dynamic %zu, batch %zu; batch steals %zu\n", dy.dispatches,
                ba.dispatches, ba.steals);

    // Feed the real measured durations back into the simulator.
    std::vector<double> durations;
    for (const auto& tp : dy.paths) durations.push_back(tp.seconds);
    // Scale communication to the sub-millisecond laptop path costs.
    simcluster::CommModel comm;
    comm.dispatch_overhead = 2e-6;
    comm.message_latency = 1e-6;
    const auto study = simcluster::run_speedup_study(durations, {2, 4, 8, 16, 32}, comm,
                                                     simcluster::SimAssignment::kBlock);
    std::cout << simcluster::to_table(study,
                                      "  projected speedups from measured cyclic durations")
                     .to_string()
              << "\n";
  }

  // ---- 5. batch+steal vs per-job dynamic under injected latency --------------
  {
    util::Table t("ABLATION 5 -- run_batch vs run_dynamic under injected latency "
                  "(4 ranks, real tracking)");
    t.set_header({"latency (ms)", "dynamic wall (s)", "batch wall (s)",
                  "dynamic paths/s", "batch paths/s", "batch wins", "identical"});
    std::vector<double> latencies_ms{0.0, 1.0};
    if (!tiny) latencies_ms.push_back(5.0);
    bool batch_wins_at_latency = true;
    for (const double ms : latencies_ms) {
      sched::DynamicOptions dopts;
      dopts.injected_latency = ms / 1000.0;
      const auto dy = sched::run_dynamic(workload, 4, dopts);
      sched::BatchOptions bopts;
      bopts.injected_latency = ms / 1000.0;
      const auto ba = sched::run_batch(workload, 4, bopts);
      const double n = static_cast<double>(starts.size());
      const double tput_dy = n / dy.wall_seconds;
      const double tput_ba = n / ba.wall_seconds;
      const bool same = sched::identical_path_results(dy, ba);
      all_identical = all_identical && same;
      const bool wins = tput_ba >= tput_dy;
      if (ms >= 1.0 && !wins) batch_wins_at_latency = false;
      t.add_row({util::Table::cell(ms, 1), util::Table::cell(dy.wall_seconds, 2),
                 util::Table::cell(ba.wall_seconds, 2), util::Table::cell(tput_dy, 1),
                 util::Table::cell(tput_ba, 1), wins ? "yes" : "no", same ? "yes" : "NO"});
    }
    std::cout << t.to_string();
    std::printf("  batch >= dynamic throughput at latency >= 1 ms: %s\n",
                batch_wins_at_latency ? "yes" : "NO");
    std::printf("  identical path results across schedulers everywhere: %s\n",
                all_identical ? "yes" : "NO");
  }
  return all_identical ? 0 : 1;
}
