// Ablation study of the load-balancing design choices (DESIGN.md section 3):
//   1. static assignment order: block vs cyclic interleave, as a function
//      of how clustered the divergent paths are;
//   2. dynamic balancing sensitivity to master dispatch overhead;
//   3. dynamic balancing sensitivity to message latency;
//   4. the thread runtime protocols on a real workload (cyclic-6),
//      feeding its measured per-path durations back through the simulator.

#include <cstdio>
#include <iostream>

#include "homotopy/start_total_degree.hpp"
#include "sched/dynamic_scheduler.hpp"
#include "sched/static_scheduler.hpp"
#include "simcluster/speedup.hpp"
#include "systems/cyclic.hpp"
#include "util/table.hpp"

int main() {
  using namespace pph;

  // ---- 1. block vs cyclic static assignment ---------------------------------
  {
    util::Table t("ABLATION 1 -- static assignment order (cyclic10 model, 64 CPUs)");
    t.set_header({"divergent clustering", "block makespan (min)", "cyclic makespan (min)"});
    for (const std::size_t cluster : {std::size_t{1}, std::size_t{16}, std::size_t{64},
                                      std::size_t{250}}) {
      util::Prng rng(1);
      auto model = simcluster::cyclic10_model();
      model.cluster_size = cluster;  // longer contiguous divergent runs
      const auto durations = simcluster::synthesize(model, rng);
      const auto block = simcluster::simulate_static(durations, 64,
                                                     simcluster::SimAssignment::kBlock);
      const auto cyc = simcluster::simulate_static(durations, 64,
                                                   simcluster::SimAssignment::kCyclic);
      char label[32];
      std::snprintf(label, sizeof label, "runs of %zu", cluster);
      t.add_row({label, util::Table::cell(block.makespan / 60.0, 2),
                 util::Table::cell(cyc.makespan / 60.0, 2)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 2/3. dynamic sensitivity to communication costs ----------------------
  {
    util::Prng rng(2);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    util::Table t("ABLATION 2 -- dynamic balancing vs master dispatch overhead (128 CPUs)");
    t.set_header({"dispatch overhead (ms)", "latency (ms)", "makespan (min)", "speedup"});
    double total = 0.0;
    for (const double d : durations) total += d;
    for (const double overhead_ms : {0.0, 2.0, 4.0, 8.0, 16.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = overhead_ms / 1000.0;
      comm.message_latency = 0.002;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({util::Table::cell(overhead_ms, 1), "2.0",
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    for (const double latency_ms : {10.0, 50.0}) {
      simcluster::CommModel comm;
      comm.dispatch_overhead = 0.004;
      comm.message_latency = latency_ms / 1000.0;
      const auto out = simcluster::simulate_dynamic(durations, 128, comm);
      t.add_row({"4.0", util::Table::cell(latency_ms, 1),
                 util::Table::cell(out.makespan / 60.0, 2),
                 util::Table::cell(total / out.makespan, 1)});
    }
    std::cout << t.to_string() << "\n";
  }

  // ---- 3b. policy spectrum: static / guided / per-job dynamic ----------------
  {
    util::Prng rng(5);
    const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
    double total = 0.0;
    for (const double d : durations) total += d;
    simcluster::CommModel comm;
    comm.dispatch_overhead = 0.001;
    comm.message_latency = 0.002;
    util::Table t("ABLATION 3 -- policy spectrum at 128 CPUs (cyclic10 model)");
    t.set_header({"policy", "makespan (min)", "speedup", "dispatches"});
    const auto st = simcluster::simulate_static(durations, 128,
                                                simcluster::SimAssignment::kBlock);
    t.add_row({"static block", util::Table::cell(st.makespan / 60.0, 2),
               util::Table::cell(total / st.makespan, 1), "0"});
    const auto stc = simcluster::simulate_static(durations, 128,
                                                 simcluster::SimAssignment::kCyclic);
    t.add_row({"static cyclic", util::Table::cell(stc.makespan / 60.0, 2),
               util::Table::cell(total / stc.makespan, 1), "0"});
    for (const double factor : {1.0, 2.0, 4.0}) {
      const auto g = simcluster::simulate_guided(durations, 128, comm, factor);
      char label[32];
      std::snprintf(label, sizeof label, "guided f=%.0f", factor);
      t.add_row({label, util::Table::cell(g.makespan / 60.0, 2),
                 util::Table::cell(total / g.makespan, 1),
                 util::Table::cell(g.master_busy / comm.dispatch_overhead, 0)});
    }
    const auto dy = simcluster::simulate_dynamic(durations, 128, comm);
    t.add_row({"dynamic per-job", util::Table::cell(dy.makespan / 60.0, 2),
               util::Table::cell(total / dy.makespan, 1),
               util::Table::cell(dy.master_busy / comm.dispatch_overhead, 0)});
    std::cout << t.to_string() << "\n";
  }

  // ---- 4. real thread-runtime protocols on cyclic-6 -------------------------
  {
    std::printf("ABLATION 4 -- thread runtime on cyclic-6 (real tracking)\n");
    util::Prng rng(3);
    const auto target = systems::cyclic(6);
    const homotopy::TotalDegreeStart start(target, rng);
    const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
    const auto starts = start.all_solutions();
    sched::PathWorkload workload;
    workload.homotopy = &h;
    workload.starts = &starts;

    const auto st = sched::run_static(workload, 4);
    const auto dy = sched::run_dynamic(workload, 4);
    std::printf("  %zu paths; static: %zu conv %zu div; dynamic agrees: %s\n", starts.size(),
                st.converged, st.diverged,
                (st.converged == dy.converged && st.diverged == dy.diverged) ? "yes" : "NO");

    // Feed the real measured durations back into the simulator.
    std::vector<double> durations;
    for (const auto& tp : dy.paths) durations.push_back(tp.seconds);
    // Scale communication to the sub-millisecond laptop path costs.
    simcluster::CommModel comm;
    comm.dispatch_overhead = 2e-6;
    comm.message_latency = 1e-6;
    const auto study = simcluster::run_speedup_study(durations, {2, 4, 8, 16, 32}, comm,
                                                     simcluster::SimAssignment::kBlock);
    std::cout << simcluster::to_table(study,
                                      "  projected speedups from measured cyclic-6 durations")
                     .to_string();
  }
  return 0;
}
