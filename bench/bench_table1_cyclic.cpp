// Regenerates the paper's Table I and Figure 1: static vs dynamic load
// balancing for the cyclic 10-roots problem on 1..128 CPUs.
//
// Two stages.  (1) Calibration: the tracker really solves a smaller cyclic
// instance (n = 5 by default, PPH_BENCH_CYCLIC_N=6/7 for larger) and we
// report the measured per-path cost distribution -- the same heavy
// divergent tail the paper describes.  (2) Projection: the discrete-event
// simulator replays both balancing policies over 35,940 jobs drawn from
// the calibrated cyclic-10 workload model, for the paper's CPU counts.
// Absolute times are model-calibrated to the paper's 480 sequential CPU
// minutes; the reproduction claim is the SHAPE (dynamic beats static, the
// gap widens with CPUs).  See EXPERIMENTS.md for paper-vs-measured.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "homotopy/solver.hpp"
#include "simcluster/speedup.hpp"
#include "systems/cyclic.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pph;

  std::size_t n = 5;
  if (const char* env = std::getenv("PPH_BENCH_CYCLIC_N")) n = std::strtoul(env, nullptr, 10);

  // ---- stage 1: real tracking of a laptop-scale instance -------------------
  std::printf("== calibration: real solve of cyclic %zu-roots ==\n", n);
  const auto sys = systems::cyclic(n);
  const auto summary = homotopy::solve_total_degree(sys);
  std::printf("paths %llu, roots %zu, diverged %zu; per-path seconds: median %.4f p95 %.4f "
              "max %.4f cv %.2f\n\n",
              static_cast<unsigned long long>(summary.path_count), summary.solutions.size(),
              summary.diverged, util::median(summary.path_seconds),
              util::percentile(summary.path_seconds, 95.0),
              util::percentile(summary.path_seconds, 100.0),
              util::coefficient_of_variation(summary.path_seconds));

  // ---- stage 2: cluster projection ------------------------------------------
  util::Prng rng(20040415);
  const auto durations = simcluster::synthesize(simcluster::cyclic10_model(), rng);
  simcluster::CommModel comm;
  comm.dispatch_overhead = 0.001;  // master service time per job (seconds)
  comm.message_latency = 0.002;

  const auto study = simcluster::run_speedup_study(durations, {1, 8, 16, 32, 64, 128}, comm,
                                                   simcluster::SimAssignment::kBlock);
  std::cout << simcluster::to_table(
      study,
      "TABLE I -- speedups of static and dynamic load balancing, cyclic 10-roots\n"
      "(simulated cluster; times in user CPU minutes; paper: static 6.4/13.2/25.3/46.9/73.3,\n"
      " dynamic 7.2/15.2/30.7/60.5/112.9, improvement 11.75%..35.11%)").to_string();

  std::printf("\n");
  std::cout << simcluster::to_figure_series(
      study, "FIG 1 -- speedup comparison (static / dynamic / optimal)");
  return 0;
}
