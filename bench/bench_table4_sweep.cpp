// Regenerates the paper's Table IV: number of solutions and solve times for
// the (m,p) x q grid of Pieri problems.
//
// The #solutions column is exact (poset chain counts) for every cell,
// including the ones the paper marks N/A for its PC.  The time column is a
// real solve of a random instance, attempted only while the cumulative
// budget (PPH_BENCH_BUDGET_SECONDS, default 120) lasts; remaining cells
// print N/A exactly like the paper's upper-triangular layout.
//
// Note on (3,3,2): the chain count (and quantum Grassmannian degree) is
// 174,762; the paper's printed "17462" is missing a digit (all 15 other
// cells match exactly).  See EXPERIMENTS.md for paper-vs-measured.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "schubert/pieri_solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace pph;

  double budget = 120.0;
  if (const char* env = std::getenv("PPH_BENCH_BUDGET_SECONDS")) {
    budget = std::strtod(env, nullptr);
  }

  struct Row {
    std::size_t m, p;
  };
  const Row rows[] = {{2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4}};
  // One notch wider than the paper's grid (q <= 3): the compiled Pieri
  // edge tape (DESIGN.md section 8) made per-edge tracking ~25x cheaper,
  // so the q=4 column is now reachable within the default budget for the
  // small (m,p) rows.  #solutions stays exact for every cell regardless.
  // (2,2,4) used to print '!' (deep levels lost a few paths to jumping);
  // the rescue tier (DESIGN.md section 9) recovers them -- bench_endgame
  // replays those seeds with certification.  See EXPERIMENTS.md.
  const std::size_t qmax = 4;

  util::Table t(
      "TABLE IV -- Pieri problems: #solutions (exact) and solve seconds (this machine)\n"
      "(paper roots: (2,2): 2/8/32/128; (3,2): 5/55/610/6765; (3,3): 42/2730/174762*;\n"
      " (4,3): 462/135660; (4,4): 24024; * printed as 17462 in the paper)");
  std::vector<std::string> header{"m", "p"};
  for (std::size_t q = 0; q <= qmax; ++q) {
    header.push_back("q=" + std::to_string(q) + " #sols");
    header.push_back("time(s)");
  }
  t.set_header(header);

  util::WallTimer clock;
  for (const auto& row : rows) {
    std::vector<std::string> cells{std::to_string(row.m), std::to_string(row.p)};
    for (std::size_t q = 0; q <= qmax; ++q) {
      const schubert::PieriProblem pb{row.m, row.p, q};
      schubert::PatternPoset poset(pb);
      const auto count = poset.root_count();
      cells.push_back(std::to_string(count));
      // Crude cost predictor from the job count and condition sizes keeps
      // the sweep inside the budget without wasted partial solves
      // (recalibrated for the compiled edge tape: ~2-6e-6 s per unit
      // measured on (3,2,1) / (4,3,0) / (3,2,2); the margin leans high so
      // a mispredicted cell cannot blow the budget).
      const double predicted =
          6.0e-6 * static_cast<double>(poset.total_jobs()) *
          static_cast<double>(pb.condition_count()) *
          static_cast<double>(pb.space_dim() * pb.space_dim());
      if (clock.seconds() + predicted < budget) {
        util::WallTimer cell_timer;
        const auto summary = schubert::solve_random_pieri(pb, /*seed=*/1);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f%s", cell_timer.seconds(),
                      summary.complete() ? "" : "!");
        cells.push_back(buf);
      } else {
        cells.push_back(util::Table::na());
      }
    }
    t.add_row(cells);
  }
  std::cout << t.to_string();
  std::printf("\nbudget %.0f s used %.1f s; '!' marks an incomplete solve; N/A: out of budget\n"
              "(paper solved up to (4,3,1)=135660 on 64-256 cluster CPUs, N/A on its PC too)\n",
              budget, clock.seconds());
  return 0;
}
