// Result-store query subsystem under load (DESIGN.md section 12): write a
// synthetic 100k-record store, then measure
//
//   - open cost: footer-indexed open vs the streaming-scan fallback (the
//     indexed open parses header + footer only -- O(footer));
//   - random access: per-record cost of footer-indexed record(i) probes at
//     two store sizes -- flat per-access cost is the O(1) evidence;
//   - summary scan: the legacy whole-store reparse (load_result_store
//     materializes every endpoint) vs store::scan with lazy RecordView
//     decode at 1/2/4/8 threads -- the headline speedup;
//   - global dedup at 1 vs 4 threads.
//
// Correctness gates (exit non-zero on disagreement): every scan variant
// must produce the same counts as the full reparse, and dedup counts must
// not depend on the thread count.
//
// Set PPH_BENCH_STORE_TINY=1 for a seconds-scale run (CI smoke, 2k
// records).  Set PPH_BENCH_JSON=<path> to write the measured rows as JSON
// (the perf-trajectory format committed under docs/bench/).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sched/result_store.hpp"
#include "store/analytics.hpp"
#include "store/store_reader.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace pph;

bool tiny_mode() {
  const char* v = std::getenv("PPH_BENCH_STORE_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct JsonRow {
  std::string name;
  double wall_seconds = 0.0;
  std::size_t records = 0;
  double per_access_us = 0.0;   // random-access rows only
  double speedup = 0.0;         // scan rows: vs the full-reparse tally
};

void write_bench_json(const std::string& path, const std::vector<JsonRow>& rows,
                      bool tiny, bool gates_passed) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "PPH_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  out << "{\n  \"context\": {\n"
      << "    \"bench\": \"bench_store_scan\",\n"
      << "    \"date\": \"" << stamp << "\",\n"
      << "    \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "    \"gates_passed\": " << (gates_passed ? "true" : "false") << "\n  },\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_seconds\": " << r.wall_seconds
        << ", \"records\": " << r.records << ", \"per_access_us\": " << r.per_access_us
        << ", \"speedup_vs_reparse\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote JSON trajectory point: %s\n", path.c_str());
}

/// Synthesize a store of `n` records with dim-5 endpoints: ~90% converged
/// (tight residuals), ~5% diverged (NaN/huge endpoints), ~5% failed.
void synthesize_store(const std::string& path, std::size_t n, util::Prng& rng) {
  std::remove(path.c_str());
  store::StoreMeta meta;
  meta.policy = "bench";
  meta.ranks = 1;
  meta.seed = 20260808;
  sched::JsonlStoreSink sink(path, /*resume=*/false, meta);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TrackedPath tp;
    tp.index = i;
    tp.worker = static_cast<int>(rng.uniform_index(8)) + 1;
    tp.seconds = rng.uniform(1e-4, 5e-2);
    tp.level = static_cast<std::uint32_t>(rng.uniform_index(6));
    const std::uint64_t kind = rng.uniform_index(100);
    if (kind < 90) {
      tp.result.status = homotopy::PathStatus::kConverged;
      tp.result.t_reached = 1.0;
      tp.result.residual = std::pow(10.0, rng.uniform(-15.0, -9.0));
    } else if (kind < 95) {
      tp.result.status = homotopy::PathStatus::kDiverged;
      tp.result.t_reached = rng.uniform(0.5, 1.0);
      tp.result.residual = std::pow(10.0, rng.uniform(2.0, 8.0));
    } else {
      tp.result.status = homotopy::PathStatus::kFailed;
      tp.result.t_reached = rng.uniform(0.0, 1.0);
      tp.result.residual = std::pow(10.0, rng.uniform(-8.0, 0.0));
    }
    tp.result.last_step = rng.uniform(1e-6, 0.2);
    tp.result.steps = 50 + rng.uniform_index(400);
    tp.result.rejections = rng.uniform_index(30);
    tp.result.newton_iterations = 100 + rng.uniform_index(2000);
    tp.result.rescued = kind >= 90 && kind < 92;
    tp.result.rescue_attempts = tp.result.rescued ? 1 : 0;
    tp.result.x.reserve(5);
    const double scale = tp.result.status == homotopy::PathStatus::kDiverged ? 1e9 : 2.0;
    for (int k = 0; k < 5; ++k) {
      tp.result.x.emplace_back(rng.uniform(-scale, scale), rng.uniform(-scale, scale));
    }
    sink.accept(tp);
  }
  sink.finish();
}

/// The legacy access pattern: reparse the whole store (decoding every
/// endpoint) and tally -- what analytics cost before the reader existed.
store::analytics::StoreSummary reparse_tally(const std::string& path) {
  const auto load = sched::load_result_store(path);
  store::analytics::StoreSummary s;
  for (const auto& tp : load.records) {
    store::RecordFields f;
    f.id = tp.index;
    f.worker = tp.worker;
    f.seconds = tp.seconds;
    f.status = tp.result.status;
    f.residual = tp.result.residual;
    f.steps = tp.result.steps;
    f.rejections = tp.result.rejections;
    f.newton_iterations = tp.result.newton_iterations;
    f.rescue_attempts = tp.result.rescue_attempts;
    f.rescued = tp.result.rescued;
    f.level = tp.level;
    s.add(f);
  }
  return s;
}

bool same_counts(const store::analytics::StoreSummary& a,
                 const store::analytics::StoreSummary& b) {
  return a.records == b.records && a.converged == b.converged &&
         a.diverged == b.diverged && a.failed == b.failed && a.rescued == b.rescued &&
         a.steps == b.steps && a.rejections == b.rejections &&
         a.newton_iterations == b.newton_iterations;
}

}  // namespace

int main() {
  const bool tiny = tiny_mode();
  const std::size_t kRecords = tiny ? 2'000 : 100'000;
  const std::size_t kSmall = kRecords / 10;
  const std::size_t kProbes = tiny ? 2'000 : 10'000;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pph_bench_store").string();
  std::filesystem::create_directories(dir);
  const std::string big_path = dir + "/store_big.jsonl";
  const std::string small_path = dir + "/store_small.jsonl";

  util::Prng rng(20260808);
  std::printf("synthesizing %zu + %zu records...\n", kRecords, kSmall);
  synthesize_store(big_path, kRecords, rng);
  synthesize_store(small_path, kSmall, rng);

  std::vector<JsonRow> rows;
  util::Table table("store scan bench (" + std::to_string(kRecords) + " records)");
  table.set_header({"experiment", "seconds", "per-access us", "speedup vs reparse"});
  bool gates_passed = true;

  // ---- open cost: indexed vs scan fallback ---------------------------------
  util::WallTimer timer;
  store::StoreReader indexed(big_path);
  const double open_indexed = timer.seconds();
  if (!indexed.indexed() || indexed.size() != kRecords) {
    std::fprintf(stderr, "FAIL: footer index did not load\n");
    return 1;
  }
  // Force the scan fallback by reopening a footerless copy.
  const std::string nofooter = dir + "/store_nofooter.jsonl";
  {
    std::filesystem::copy_file(big_path, nofooter,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(nofooter, indexed.append_offset());
  }
  timer.reset();
  store::StoreReader fallback(nofooter);
  const double open_scan = timer.seconds();
  if (fallback.indexed() || fallback.size() != kRecords) {
    std::fprintf(stderr, "FAIL: scan fallback lost records\n");
    return 1;
  }
  rows.push_back({"open_indexed", open_indexed, kRecords, 0.0, 0.0});
  rows.push_back({"open_scan_fallback", open_scan, kRecords, 0.0, 0.0});
  table.add_row({"open (footer index)", util::Table::cell(open_indexed, 4),
                 util::Table::na(), util::Table::na()});
  table.add_row({"open (scan fallback)", util::Table::cell(open_scan, 4),
                 util::Table::na(), util::Table::na()});

  // ---- O(1) random access: per-probe cost must not scale with N ------------
  const store::StoreReader small_reader(small_path);
  double checksum = 0.0;
  const auto probe = [&](const store::StoreReader& reader, std::size_t probes) {
    util::Prng prng(7);
    util::WallTimer t;
    for (std::size_t k = 0; k < probes; ++k) {
      const std::size_t i = prng.uniform_index(reader.size());
      checksum += reader.record(i).fields().seconds;
    }
    return t.seconds();
  };
  const double big_probe = probe(indexed, kProbes);
  const double small_probe = probe(small_reader, kProbes);
  const double big_us = 1e6 * big_probe / static_cast<double>(kProbes);
  const double small_us = 1e6 * small_probe / static_cast<double>(kProbes);
  rows.push_back({"random_access_big", big_probe, kRecords, big_us, 0.0});
  rows.push_back({"random_access_small", small_probe, kSmall, small_us, 0.0});
  table.add_row({"random access (N)", util::Table::cell(big_probe, 4),
                 util::Table::cell(big_us, 3), util::Table::na()});
  table.add_row({"random access (N/10)", util::Table::cell(small_probe, 4),
                 util::Table::cell(small_us, 3), util::Table::na()});

  // ---- summary: full reparse vs lazy parallel scan -------------------------
  timer.reset();
  const auto reparse = reparse_tally(big_path);
  const double reparse_seconds = timer.seconds();
  rows.push_back({"summary_full_reparse", reparse_seconds, kRecords, 0.0, 1.0});
  table.add_row({"summary: full reparse", util::Table::cell(reparse_seconds, 4),
                 util::Table::na(), util::Table::cell_ratio(1.0)});

  for (const int threads : {1, 2, 4, 8}) {
    timer.reset();
    const auto s = store::analytics::summarize(indexed, threads);
    const double seconds = timer.seconds();
    const double speedup = seconds > 0.0 ? reparse_seconds / seconds : 0.0;
    if (!same_counts(s, reparse)) {
      std::fprintf(stderr, "FAIL: scan(threads=%d) disagrees with the full reparse\n",
                   threads);
      gates_passed = false;
    }
    rows.push_back({"summary_scan_t" + std::to_string(threads), seconds, kRecords, 0.0,
                    speedup});
    table.add_row({"summary: scan x" + std::to_string(threads),
                   util::Table::cell(seconds, 4), util::Table::na(),
                   util::Table::cell_ratio(speedup)});
  }

  // ---- dedup: thread-count independence ------------------------------------
  timer.reset();
  const auto dedup1 = store::analytics::dedup(indexed, 1e-8, 1);
  const double dedup1_seconds = timer.seconds();
  timer.reset();
  const auto dedup4 = store::analytics::dedup(indexed, 1e-8, 4);
  const double dedup4_seconds = timer.seconds();
  if (dedup1.unique_ids != dedup4.unique_ids ||
      dedup1.distinct_solutions != dedup4.distinct_solutions ||
      dedup1.converged != dedup4.converged) {
    std::fprintf(stderr, "FAIL: dedup counts depend on the thread count\n");
    gates_passed = false;
  }
  rows.push_back({"dedup_t1", dedup1_seconds, kRecords, 0.0, 0.0});
  rows.push_back({"dedup_t4", dedup4_seconds, kRecords, 0.0, 0.0});
  table.add_row({"dedup x1", util::Table::cell(dedup1_seconds, 4), util::Table::na(),
                 util::Table::na()});
  table.add_row({"dedup x4", util::Table::cell(dedup4_seconds, 4), util::Table::na(),
                 util::Table::na()});

  table.print(std::cout);
  std::printf("(checksum %g; distinct solutions %zu of %zu converged)\n", checksum,
              dedup1.distinct_solutions, dedup1.converged);

  if (const char* json = std::getenv("PPH_BENCH_JSON")) {
    write_bench_json(json, rows, tiny, gates_passed);
  }
  if (!gates_passed) return 1;
  std::printf("all scan/dedup agreement gates passed\n");
  return 0;
}
