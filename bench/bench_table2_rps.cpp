// Regenerates the paper's Table II and Figure 2: static vs dynamic load
// balancing for the RPS mechanism-design problem (9,216 linear-product
// paths, >8,000 divergent at near-uniform cost).
//
// Stage 1 really solves the small RPS-like instance (generic quadratic
// target, linear-product start with the same 9x overshoot) to exhibit the
// divergence-dominated workload; stage 2 replays the paper-scale workload
// model through the cluster simulator.  The paper's point -- dynamic
// balancing gains little when the divergent paths dominate uniformly --
// is the shape to reproduce.  See EXPERIMENTS.md for paper-vs-measured and
// DESIGN.md section 5 for the synthetic substitution.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "homotopy/solver.hpp"
#include "simcluster/speedup.hpp"
#include "systems/rps_synthetic.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pph;

  std::size_t k = 3;
  if (const char* env = std::getenv("PPH_BENCH_RPS_K")) k = std::strtoul(env, nullptr, 10);

  std::printf("== calibration: real solve of the RPS-like instance (k=%zu) ==\n", k);
  util::Prng rng(7);
  const auto target = systems::rps_like_target(k, rng);
  const auto structure = systems::rps_like_structure(k);
  const auto summary = homotopy::solve_linear_product(target, structure);
  std::printf("paths %llu, finite roots %zu, diverged %zu (%.0f%%); per-path seconds: "
              "median %.4f cv %.2f\n",
              static_cast<unsigned long long>(summary.path_count), summary.solutions.size(),
              summary.diverged,
              100.0 * static_cast<double>(summary.diverged) /
                  static_cast<double>(summary.path_count),
              util::median(summary.path_seconds),
              util::coefficient_of_variation(summary.path_seconds));
  std::printf("paper-scale structure: %llu paths, mixed volume %llu\n\n",
              static_cast<unsigned long long>(
                  systems::rps_like_structure(systems::kRpsPaperSize).combination_count()),
              static_cast<unsigned long long>(systems::kRpsPaperMixedVolume));

  util::Prng mrng(814);
  const auto durations = simcluster::synthesize(simcluster::rps_model(), mrng);
  simcluster::CommModel comm;
  comm.dispatch_overhead = 0.004;
  comm.message_latency = 0.002;
  const auto study = simcluster::run_speedup_study(durations, {8, 16, 32, 64, 128}, comm,
                                                   simcluster::SimAssignment::kBlock);
  std::cout << simcluster::to_table(
      study,
      "TABLE II -- static vs dynamic balancing, RPS mechanism design\n"
      "(simulated cluster; paper: static speedups 7.5/15.9/32.9/62.5/124.0,\n"
      " dynamic 8.0/16.9/32.4/65.5/141.4, improvement -1.5%..12.4%)").to_string();

  std::printf("\n");
  std::cout << simcluster::to_figure_series(
      study, "FIG 2 -- speedup comparison for the mechanical application");
  return 0;
}
