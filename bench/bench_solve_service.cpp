// Solve-service throughput study (DESIGN.md section 10): drive the serve()
// loop with modeled arrival traffic and sweep the offered rate across the
// measured service capacity.
//
//   1. drain the workload once to measure per-path service times and the
//      cluster's empirical capacity mu = requests / drain wall time (robust
//      to an oversubscribed host, where workers/mean_service would
//      overstate what the machine can actually sustain);
//   2. for each arrival process (Poisson, slotted Bernoulli, bursty on-off)
//      sweep offered rates {0.5, 0.8, 1.1} x mu: achieved req/s, p50/p99
//      sojourn, queue depth -- a service is "sustainable" at a rate when it
//      achieves >= 95% of the offered load;
//   3. replay every trace through the discrete-event twin
//      (simcluster::simulate_service) with the measured service times: the
//      modeled sojourn percentiles land next to the measured ones (the
//      model assumes truly parallel workers, so on an oversubscribed host
//      it undercuts the measured queueing delay).
//
// The streamed result set must stay bit-identical to the drained run at
// every rate -- any mismatch makes the binary exit non-zero (the CI smoke
// job relies on this).
//
// Set PPH_BENCH_SERVICE_TINY=1 for a seconds-scale run (CI smoke): the
// workload drops to cyclic-5 and the on-off process is skipped.  Set
// PPH_BENCH_JSON=<path> to also write the measured rows as JSON (the
// perf-trajectory format committed under docs/bench/).
//
// Reliability additions (DESIGN.md section 13):
//   - every serve run is audited against the request-conservation identity
//     (completed + expired + shed + dropped + quarantined == requests);
//     any violation makes the binary exit non-zero;
//   - a p99-vs-deadline sweep at 0.9 x mu: per-request deadlines tighten
//     from none down to a quarter of the healthy p99 sojourn, recording
//     the completed/expired split and the surviving tail latency;
//   - a brownout burst row: the whole pool arrives at t=0 through depth
//     watermarks, recording the level transitions and door sheds.
// Set PPH_BENCH_RELIABILITY_SMOKE=1 for the CI reliability smoke: ONLY a
// tiny Poisson run at 1.2 x mu with one injected silent worker death and a
// tight deadline -- the run must leave zero unaccounted requests.

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "homotopy/start_total_degree.hpp"
#include "sched/arrival.hpp"
#include "sched/session.hpp"
#include "sched/stream_source.hpp"
#include "simcluster/service_sim.hpp"
#include "systems/cyclic.hpp"
#include "util/table.hpp"

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool tiny_mode() { return env_flag("PPH_BENCH_SERVICE_TINY"); }
bool reliability_smoke_mode() { return env_flag("PPH_BENCH_RELIABILITY_SMOKE"); }

/// One measured serve-loop row of the JSON perf trajectory.
struct JsonRow {
  std::string name;
  double offered_per_s = 0.0;
  double achieved_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double sim_p99_ms = 0.0;
  bool sustainable = false;
  // Reliability columns (DESIGN.md section 13); deadline_ms < 0 = none.
  double deadline_ms = -1.0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t cancelled = 0;
  std::size_t retried = 0;
  std::size_t shed = 0;
  std::size_t brownout_transitions = 0;
};

void write_bench_json(const std::string& path, const std::vector<JsonRow>& rows,
                      bool tiny, bool all_identical, bool all_accounted) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "PPH_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  out << "{\n  \"context\": {\n"
      << "    \"bench\": \"bench_solve_service\",\n"
      << "    \"date\": \"" << stamp << "\",\n"
      << "    \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "    \"reliability_smoke\": " << (reliability_smoke_mode() ? "true" : "false")
      << ",\n"
      << "    \"streamed_identical_to_drained_everywhere\": "
      << (all_identical ? "true" : "false") << ",\n"
      << "    \"every_request_accounted_everywhere\": "
      << (all_accounted ? "true" : "false") << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"offered_per_second\": " << r.offered_per_s
        << ", \"achieved_per_second\": " << r.achieved_per_s
        << ", \"sojourn_p50_ms\": " << r.p50_ms << ", \"sojourn_p99_ms\": " << r.p99_ms
        << ", \"sim_sojourn_p99_ms\": " << r.sim_p99_ms << ", \"deadline_ms\": ";
    if (r.deadline_ms >= 0.0) {
      out << r.deadline_ms;
    } else {
      out << "null";
    }
    out << ", \"completed\": " << r.completed << ", \"expired\": " << r.expired
        << ", \"cancelled\": " << r.cancelled << ", \"retried\": " << r.retried
        << ", \"shed\": " << r.shed
        << ", \"brownout_transitions\": " << r.brownout_transitions
        << ", \"sustainable\": " << (r.sustainable ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote JSON trajectory point: %s\n", path.c_str());
}

}  // namespace

int main() {
  using namespace pph;
  const bool smoke = reliability_smoke_mode();
  const bool tiny = tiny_mode() || smoke;
  if (tiny && !smoke) std::printf("(tiny mode: PPH_BENCH_SERVICE_TINY set)\n\n");
  if (smoke) std::printf("(reliability smoke: PPH_BENCH_RELIABILITY_SMOKE set)\n\n");

  // ---- workload + measured capacity ----------------------------------------
  const int cyclic_n = tiny ? 5 : 6;
  const int ranks = 4;  // rank 0 = master, 3 tracking workers
  const std::size_t workers = static_cast<std::size_t>(ranks - 1);
  util::Prng rng(3);
  const auto target = systems::cyclic(cyclic_n);
  const homotopy::TotalDegreeStart start(target, rng);
  const homotopy::ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const auto starts = start.all_solutions();
  sched::PathWorkload workload;
  workload.homotopy = &h;
  workload.starts = &starts;
  const std::size_t n = starts.size();

  const auto drained = sched::run_paths(workload, ranks);
  std::vector<double> service_seconds(n, 0.0);
  double total_service = 0.0;
  for (const auto& tp : drained.paths) {
    service_seconds[tp.index] = tp.seconds;
    total_service += tp.seconds;
  }
  const double mean_service = total_service / static_cast<double>(n);
  const double mu = static_cast<double>(n) / drained.wall_seconds;  // capacity req/s
  std::printf("workload: cyclic-%d, %zu requests, %d ranks (%zu workers)\n", cyclic_n, n,
              ranks, workers);
  std::printf("measured mean service %.3f ms, drain wall %.2f s -> capacity mu = %.0f req/s\n\n",
              mean_service * 1e3, drained.wall_seconds, mu);

  std::vector<JsonRow> json_rows;
  bool all_identical = true;
  bool all_accounted = true;
  // The request-conservation identity (DESIGN.md section 13): every request
  // ends in exactly one terminal bucket.  Any violation fails the binary.
  const auto account = [&](const char* label, const sched::SessionStats& stats) {
    const bool ok = stats.service.terminal_requests() == n;
    if (!ok) {
      std::fprintf(stderr,
                   "ACCOUNTING IDENTITY VIOLATION [%s]: completed %zu + expired %zu + "
                   "shed %zu + dropped %zu + quarantined %zu != %zu requests\n",
                   label, stats.service.completed, stats.service.expired,
                   stats.service.shed, stats.service.dropped, stats.service.quarantined,
                   n);
    }
    all_accounted = all_accounted && ok;
    return ok;
  };

  // ---- CI reliability smoke (DESIGN.md section 13) -------------------------
  // A deliberately overloaded tiny service: Poisson arrivals at 1.2 x mu,
  // one silent worker death mid-run, and a deadline only ~25 mean service
  // times wide.  Requests complete, retry, expire in queue and get
  // cancelled in flight while the supervisor recovers the dead rank's work
  // -- and every single request must still land in exactly one terminal
  // bucket.  Zero unaccounted requests or the job fails.
  if (smoke) {
    sched::PoissonArrivals proc(1.2 * mu);
    util::Prng trace_rng(91);
    const auto trace = sched::arrival_times(proc, trace_rng, n);
    const double offered = static_cast<double>(n) / trace.back();
    const double deadline = 25.0 * mean_service;
    sched::VectorJobSource inner(workload);
    sched::StreamJobSource stream(inner, trace);
    sched::InMemoryReportSink sink;
    sched::Session session(
        stream, sink,
        sched::SessionOptions()
            .with_supervision(
                sched::SupervisorOptions().with_heartbeat(0.01).with_miss_budget(20, 2.0))
            .with_fault_plan(mp::FaultPlan().kill(2, n / 6))
            .with_reliability(sched::ReliabilityOptions()
                                  .with_deadline(deadline)
                                  .with_attempts(2, 0.001)
                                  .with_jitter_seed(7)));
    const auto stats = session.serve(ranks);
    const bool ok = account("reliability_smoke", stats);
    const auto& svc = stats.service;
    const auto& rel = stats.reliability;
    std::printf("offered %.0f req/s (1.2 x mu), deadline %.2f ms, rank 2 dies after %zu jobs\n",
                offered, deadline * 1e3, n / 6);
    std::printf("  completed %zu  expired %zu (cancelled in flight %zu)  retried %zu  "
                "quarantined %zu\n",
                svc.completed, svc.expired, rel.cancelled, rel.retried, svc.quarantined);
    std::printf("  deaths detected %zu, requeued %zu; sojourn p99 %.2f ms\n",
                stats.supervision.deaths_detected, stats.supervision.requeued_jobs,
                svc.sojourn.p99() * 1e3);
    std::printf("  every request accounted: %s\n", ok ? "yes" : "NO");
    JsonRow row;
    row.name = "reliability_smoke_1.2mu_death_deadline";
    row.offered_per_s = offered;
    row.achieved_per_s = static_cast<double>(svc.completed) / stats.wall_seconds;
    row.p50_ms = svc.sojourn.p50() * 1e3;
    row.p99_ms = svc.sojourn.p99() * 1e3;
    row.deadline_ms = deadline * 1e3;
    row.completed = svc.completed;
    row.expired = svc.expired;
    row.cancelled = rel.cancelled;
    row.retried = rel.retried;
    row.shed = svc.shed;
    json_rows.push_back(row);
    if (const char* json_path = std::getenv("PPH_BENCH_JSON");
        json_path != nullptr && json_path[0] != '\0') {
      write_bench_json(json_path, json_rows, tiny, all_identical, all_accounted);
    }
    return ok ? 0 : 1;
  }

  // ---- rate sweep x arrival process ----------------------------------------
  // Each serve run gets a fresh deterministic trace (seeded per row); the
  // same trace and the measured service times replay through the simulator.
  struct ProcessSpec {
    const char* name;
    // Factory: an arrival process with long-run rate `rate`.
    std::unique_ptr<sched::ArrivalProcess> (*make)(double rate);
  };
  std::vector<ProcessSpec> processes{
      {"poisson",
       +[](double rate) -> std::unique_ptr<sched::ArrivalProcess> {
         return std::make_unique<sched::PoissonArrivals>(rate);
       }},
      {"bernoulli",
       +[](double rate) -> std::unique_ptr<sched::ArrivalProcess> {
         // p = 0.25 per slot, slot sized so p/slot = rate.
         return std::make_unique<sched::BernoulliArrivals>(0.25, 0.25 / rate);
       }},
  };
  if (!tiny) {
    processes.push_back(
        {"onoff", +[](double rate) -> std::unique_ptr<sched::ArrivalProcess> {
           // Bursts at 4x the long-run rate, on 1/4 of the time; on-phases
           // hold ~20 arrivals each.
           const double burst = 4.0 * rate;
           const double mean_on = 20.0 / burst;
           return std::make_unique<sched::OnOffArrivals>(burst, mean_on, 3.0 * mean_on);
         }});
  }
  const std::vector<double> load_factors{0.5, 0.8, 1.1};

  util::Table t("solve service -- offered rate sweep (sustainable = achieved >= 95% offered)");
  t.set_header({"process", "offered/s", "achieved/s", "p50 (ms)", "p99 (ms)",
                "sim p99 (ms)", "max q", "sustainable", "identical"});
  std::uint64_t seed = 40;
  for (const auto& spec : processes) {
    for (const double f : load_factors) {
      auto proc = spec.make(f * mu);
      util::Prng trace_rng(++seed);
      const auto trace = sched::arrival_times(*proc, trace_rng, n);
      // The realized trace rate (n requests over the span actually drawn):
      // with a few hundred samples the nominal rate is ~10% noisy, and
      // "sustainable" should measure drain lag, not sampling noise.
      const double offered = static_cast<double>(n) / trace.back();

      sched::VectorJobSource inner(workload);
      sched::StreamJobSource stream(inner, trace);
      sched::InMemoryReportSink sink;
      sched::Session session(stream, sink, sched::SessionOptions());
      const auto stats = session.serve(ranks);
      const auto report = sink.report(stats);

      const bool identical = sched::identical_path_results(report, drained);
      all_identical = all_identical && identical;
      account(spec.name, stats);
      const double achieved =
          static_cast<double>(stats.service.completed) / stats.wall_seconds;
      const bool sustainable = achieved >= 0.95 * offered;
      const auto& sj = stats.service.sojourn;

      simcluster::ServiceSimOptions sim_opts;
      sim_opts.comm.dispatch_overhead = 2e-6;
      sim_opts.comm.message_latency = 1e-6;
      const auto sim = simcluster::simulate_service(service_seconds, trace, workers, sim_opts);

      char label[48];
      std::snprintf(label, sizeof label, "%s x%.1f", spec.name, f);
      t.add_row({label, util::Table::cell(offered, 0), util::Table::cell(achieved, 0),
                 util::Table::cell(sj.p50() * 1e3, 2), util::Table::cell(sj.p99() * 1e3, 2),
                 util::Table::cell(sim.service.sojourn.p99() * 1e3, 2),
                 util::Table::cell(stats.service.max_queue_depth),
                 sustainable ? "yes" : "no", identical ? "yes" : "NO"});
      char name[64];
      std::snprintf(name, sizeof name, "serve_%s_load%.1f", spec.name, f);
      json_rows.push_back({name, offered, achieved, sj.p50() * 1e3, sj.p99() * 1e3,
                           sim.service.sojourn.p99() * 1e3, sustainable});
    }
  }
  std::cout << t.to_string();
  std::printf("  streamed result sets identical to the drained run everywhere: %s\n",
              all_identical ? "yes" : "NO");

  // ---- supervised recovery cost (DESIGN.md section 11) ---------------------
  // The same Poisson trace served twice with supervision on: once healthy,
  // once with rank 2 dying silently mid-run (no kTagDead -- only the
  // heartbeat-miss verdict recovers its work).  Both runs must drain with
  // zero loss and bit-identical results; the delta between the rows is the
  // cost of one uncooperative death in achieved rate and tail latency.
  {
    sched::PoissonArrivals proc(0.8 * mu);
    util::Prng trace_rng(++seed);
    const auto trace = sched::arrival_times(proc, trace_rng, n);
    const double offered = static_cast<double>(n) / trace.back();
    const auto supervisor =
        sched::SupervisorOptions().with_heartbeat(0.01).with_miss_budget(20, 2.0);

    util::Table ft("solve service -- one silent worker death at 0.8 x mu (supervised)");
    ft.set_header({"run", "offered/s", "achieved/s", "p50 (ms)", "p99 (ms)", "deaths",
                   "requeued", "identical"});
    double healthy_achieved = 0.0, healthy_p99 = 0.0;
    for (const bool faulted : {false, true}) {
      sched::VectorJobSource inner(workload);
      sched::StreamJobSource stream(inner, trace);
      sched::InMemoryReportSink sink;
      auto opts = sched::SessionOptions().with_supervision(supervisor);
      if (faulted) {
        opts.with_fault_plan(mp::FaultPlan().kill(2, n / 6));
      }
      sched::Session session(stream, sink, opts);
      const auto stats = session.serve(ranks);
      const auto report = sink.report(stats);
      const bool identical = sched::identical_path_results(report, drained);
      all_identical = all_identical && identical && stats.service.drained();
      account(faulted ? "supervised_faulted" : "supervised_healthy", stats);
      const double achieved =
          static_cast<double>(stats.service.completed) / stats.wall_seconds;
      const auto& sj = stats.service.sojourn;
      if (!faulted) {
        healthy_achieved = achieved;
        healthy_p99 = sj.p99() * 1e3;
      }
      ft.add_row({faulted ? "rank 2 dies silently" : "healthy",
                  util::Table::cell(offered, 0), util::Table::cell(achieved, 0),
                  util::Table::cell(sj.p50() * 1e3, 2), util::Table::cell(sj.p99() * 1e3, 2),
                  util::Table::cell(stats.supervision.deaths_detected),
                  util::Table::cell(stats.supervision.requeued_jobs),
                  identical ? "yes" : "NO"});
      json_rows.push_back({faulted ? "serve_poisson_faulted" : "serve_poisson_supervised",
                           offered, achieved, sj.p50() * 1e3, sj.p99() * 1e3,
                           /*sim_p99_ms=*/0.0, achieved >= 0.95 * offered});
      if (faulted) {
        std::cout << ft.to_string();
        std::printf("  degradation from one silent death: achieved %.0f -> %.0f req/s, "
                    "p99 %.2f -> %.2f ms\n",
                    healthy_achieved, achieved, healthy_p99, sj.p99() * 1e3);
      }
    }
  }

  // ---- p99 vs per-request deadline (DESIGN.md section 13) ------------------
  // The same Poisson trace at 0.9 x mu served with tightening per-request
  // deadlines.  The first pass (no deadline) anchors the sweep -- its p99
  // sojourn defines "healthy" and its results must stay bit-identical to
  // the drained run even with the reliability layer (retry budget 2)
  // attached.  Each tighter pass sheds more of the tail as expiries and
  // mid-flight cancellations; the conservation identity audits every row.
  {
    sched::PoissonArrivals proc(0.9 * mu);
    util::Prng trace_rng(++seed);
    const auto trace = sched::arrival_times(proc, trace_rng, n);
    const double offered = static_cast<double>(n) / trace.back();
    util::Table dt("solve service -- sojourn p99 vs per-request deadline at 0.9 x mu");
    dt.set_header({"deadline (ms)", "completed", "expired", "cancelled", "retried",
                   "p50 (ms)", "p99 (ms)", "accounted"});
    double healthy_p99 = 0.0;  // seconds; set by the first (deadline-free) pass
    for (const double frac : {-1.0, 4.0, 1.0, 0.25}) {
      std::optional<double> deadline;
      if (frac > 0.0) deadline = frac * healthy_p99;
      sched::VectorJobSource inner(workload);
      sched::StreamJobSource stream(inner, trace);
      sched::InMemoryReportSink sink;
      auto rel = sched::ReliabilityOptions().with_attempts(2, 0.001).with_jitter_seed(5);
      if (deadline.has_value()) rel.with_deadline(*deadline);
      sched::Session session(stream, sink,
                             sched::SessionOptions().with_reliability(rel));
      const auto stats = session.serve(ranks);
      char label[48];
      std::snprintf(label, sizeof label, "deadline_%s",
                    deadline.has_value() ? util::Table::cell(*deadline * 1e3, 2).c_str()
                                         : "none");
      const bool ok = account(label, stats);
      if (!deadline.has_value()) {
        healthy_p99 = stats.service.sojourn.p99();
        const bool identical =
            sched::identical_path_results(sink.report(stats), drained);
        all_identical = all_identical && identical;
      }
      const auto& sj = stats.service.sojourn;
      dt.add_row({deadline.has_value() ? util::Table::cell(*deadline * 1e3, 2) : "none",
                  util::Table::cell(stats.service.completed),
                  util::Table::cell(stats.service.expired),
                  util::Table::cell(stats.reliability.cancelled),
                  util::Table::cell(stats.reliability.retried),
                  util::Table::cell(sj.p50() * 1e3, 2), util::Table::cell(sj.p99() * 1e3, 2),
                  ok ? "yes" : "NO"});
      JsonRow row;
      char name[64];
      std::snprintf(name, sizeof name, "serve_deadline_%s",
                    frac < 0.0 ? "none" : util::Table::cell(frac, 2).c_str());
      row.name = name;
      row.offered_per_s = offered;
      row.achieved_per_s = static_cast<double>(stats.service.completed) / stats.wall_seconds;
      row.p50_ms = sj.p50() * 1e3;
      row.p99_ms = sj.p99() * 1e3;
      row.deadline_ms = deadline.has_value() ? *deadline * 1e3 : -1.0;
      row.completed = stats.service.completed;
      row.expired = stats.service.expired;
      row.cancelled = stats.reliability.cancelled;
      row.retried = stats.reliability.retried;
      row.shed = stats.service.shed;
      json_rows.push_back(row);
    }
    std::cout << dt.to_string();
  }

  // ---- overload brownout on a burst (DESIGN.md section 13) -----------------
  // The whole pool lands at t=0 through depth watermarks at n/8, n/4 and
  // n/2: the controller must walk 0->1->2->3 during admission, shed the
  // rest of the burst at the door, and walk back down as the queue drains.
  {
    const std::vector<double> burst(n, 0.0);
    const auto overload = sched::OverloadOptions()
                              .with_depths(n / 8, n / 4, n / 2)
                              .with_hysteresis(0.5, 0.0);
    sched::VectorJobSource inner(workload);
    sched::StreamJobSource stream(inner, burst);
    sched::DiscardSink sink;
    sched::Session session(stream, sink,
                           sched::SessionOptions().with_reliability(
                               sched::ReliabilityOptions().with_overload(overload)));
    const auto stats = session.serve(ranks);
    const bool ok = account("brownout_burst", stats);
    util::Table bt("solve service -- brownout burst (watermarks n/8, n/4, n/2)");
    bt.set_header({"admitted", "door shed", "completed", "transitions", "max level",
                   "accounted"});
    bt.add_row({util::Table::cell(stats.service.admitted),
                util::Table::cell(stats.reliability.brownout_shed),
                util::Table::cell(stats.service.completed),
                util::Table::cell(stats.reliability.brownout_transitions),
                util::Table::cell(stats.reliability.max_brownout_level),
                ok ? "yes" : "NO"});
    std::cout << bt.to_string();
    JsonRow row;
    row.name = "serve_brownout_burst";
    row.achieved_per_s = static_cast<double>(stats.service.completed) / stats.wall_seconds;
    row.p50_ms = stats.service.sojourn.p50() * 1e3;
    row.p99_ms = stats.service.sojourn.p99() * 1e3;
    row.completed = stats.service.completed;
    row.shed = stats.service.shed;
    row.brownout_transitions = stats.reliability.brownout_transitions;
    json_rows.push_back(row);
  }

  std::printf("  every request accounted for in every run: %s\n",
              all_accounted ? "yes" : "NO");
  if (const char* json_path = std::getenv("PPH_BENCH_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    write_bench_json(json_path, json_rows, tiny, all_identical, all_accounted);
  }
  return (all_identical && all_accounted) ? 0 : 1;
}
