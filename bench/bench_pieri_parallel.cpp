// The parallel Pieri homotopy end to end (paper section III-D, Fig 6):
// the master/slave tree scheduler on the message-passing runtime, plus the
// tree-structure observations of section III-C.
//
//  - runs the Table III instance (m=3, p=2, q=1; 252 jobs) on 2..5 ranks
//    and checks the solution set is complete on every width;
//  - reports the per-level available parallelism (the tree is narrow near
//    the root -- "at the start only very few processors are active");
//  - reports the master's peak number of simultaneously active instances,
//    the memory argument for trees over posets;
//  - projects the measured per-job durations through a level-synchronous
//    schedule to estimate the parallel efficiency at larger CPU counts.
//
// Protocol notes in DESIGN.md section 2; paper-vs-measured in EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "sched/pieri_scheduler.hpp"
#include "util/table.hpp"

int main() {
  using namespace pph;
  const schubert::PieriProblem pb{3, 2, 1};
  util::Prng rng(2004);
  const auto input = schubert::random_pieri_input(pb, rng);

  // ---- parallel runs on the thread runtime -----------------------------------
  util::Table t("parallel Pieri on the message-passing runtime, m=3 p=2 q=1 (252 jobs)");
  t.set_header({"ranks", "solutions", "complete", "jobs", "peak instances", "wall (s)"});
  for (const int ranks : {2, 3, 5}) {
    const auto report = sched::run_parallel_pieri(input, ranks);
    t.add_row({util::Table::cell(static_cast<std::size_t>(ranks)),
               util::Table::cell(report.solutions.size()),
               report.complete() ? "yes" : "NO",
               util::Table::cell(static_cast<std::size_t>(report.total_jobs)),
               util::Table::cell(report.peak_active_instances),
               util::Table::cell(report.wall_seconds, 2)});
  }
  std::cout << t.to_string() << "\n";

  // ---- tree shape: available parallelism per level ---------------------------
  schubert::PatternPoset poset(pb);
  const auto jobs = poset.jobs_per_level();
  std::printf("available parallelism per level (jobs that can run concurrently):\n  ");
  for (const auto j : jobs) std::printf("%llu ", static_cast<unsigned long long>(j));
  std::printf("\n  -> few processors active near the root; the width saturates at d=55.\n\n");

  // ---- level-synchronous projection -----------------------------------------
  // With per-level job counts J_l and per-job cost c_l, P processors need
  // sum_l c_l * ceil(J_l / P); measure c_l from a sequential run.
  const auto seq = schubert::solve_pieri(input);
  std::vector<double> level_cost(seq.levels.size());
  for (std::size_t i = 0; i < seq.levels.size(); ++i) {
    level_cost[i] = seq.levels[i].seconds / static_cast<double>(seq.levels[i].jobs);
  }
  util::Table proj("level-synchronous projection (measured per-level job costs)");
  proj.set_header({"CPUs", "time (s)", "speedup", "efficiency"});
  double t1 = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) t1 += level_cost[i] * static_cast<double>(jobs[i]);
  for (const std::size_t cpus : {1u, 2u, 4u, 8u, 16u, 32u, 55u}) {
    double tp = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto waves = (jobs[i] + cpus - 1) / cpus;
      tp += level_cost[i] * static_cast<double>(waves);
    }
    proj.add_row({util::Table::cell(cpus), util::Table::cell(tp, 2),
                  util::Table::cell(t1 / tp, 1),
                  util::Table::cell(100.0 * t1 / tp / static_cast<double>(cpus), 0) + "%"});
  }
  std::cout << proj.to_string();
  std::printf("\nthe tree width (max 55) caps the useful processor count for this instance;\n"
              "larger (m,p,q) widen exponentially (Table IV), which is the paper's point.\n");
  return 0;
}
