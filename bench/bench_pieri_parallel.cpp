// The parallel Pieri homotopy end to end (paper section III-D, Fig 6):
// the master/slave tree scheduler on the message-passing runtime, plus the
// tree-structure observations of section III-C, plus the compiled Pieri
// edge tape A/B (DESIGN.md section 8).
//
//  - per-edge micro-benchmark: the same tree solved through the interpreted
//    bordered-determinant walk and the compiled tape, reporting mean
//    per-edge track time and whole-tree wall time for each (the tentpole
//    claim: compiled >= 2x interpreted per edge), and verifying the two
//    solution sets agree — any disagreement (or incomplete solve) makes
//    the binary exit non-zero, which the CI smoke job relies on;
//  - runs the Table III instance (m=3, p=2, q=1; 252 jobs) on 2..5 ranks
//    and checks the solution set is complete on every width;
//  - reports the per-level available parallelism (the tree is narrow near
//    the root -- "at the start only very few processors are active");
//  - reports the master's peak number of simultaneously active instances,
//    the memory argument for trees over posets;
//  - projects the measured per-job durations through a level-synchronous
//    schedule to estimate the parallel efficiency at larger CPU counts.
//
// Set PPH_BENCH_PIERI_TINY=1 for a seconds-scale run (CI smoke): the
// instance drops to (m,p,q)=(2,2,1) and the rank sweep shrinks.  Set
// PPH_BENCH_JSON=<path> to also write the measured rows as JSON (the
// perf-trajectory format committed under docs/bench/).
//
// Protocol notes in DESIGN.md section 2; paper-vs-measured in EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sched/pieri_scheduler.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

bool tiny_mode() {
  const char* v = std::getenv("PPH_BENCH_PIERI_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// One measured row of the JSON perf trajectory.
struct JsonRow {
  std::string name;
  double wall_seconds = 0.0;
  double per_edge_microseconds = 0.0;
  double throughput = 0.0;  // edges per second
};

void write_bench_json(const std::string& path, const std::vector<JsonRow>& rows, bool tiny,
                      double edge_speedup, bool solution_sets_agree) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "PPH_BENCH_JSON: cannot open %s\n", path.c_str());
    return;
  }
  char stamp[32] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&now));
  out << "{\n  \"context\": {\n"
      << "    \"bench\": \"bench_pieri_parallel\",\n"
      << "    \"date\": \"" << stamp << "\",\n"
      << "    \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "    \"compiled_edge_speedup\": " << edge_speedup << ",\n"
      << "    \"compiled_vs_interpreted_solutions_agree\": "
      << (solution_sets_agree ? "true" : "false") << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_seconds\": " << r.wall_seconds
        << ", \"per_edge_microseconds\": " << r.per_edge_microseconds
        << ", \"edges_per_second\": " << r.throughput << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote JSON trajectory point: %s\n", path.c_str());
}

double mean_seconds(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return xs.empty() ? 0.0 : total / static_cast<double>(xs.size());
}

}  // namespace

int main() {
  using namespace pph;
  const bool tiny = tiny_mode();
  if (tiny) std::printf("(tiny mode: PPH_BENCH_PIERI_TINY set)\n\n");
  const schubert::PieriProblem pb = tiny ? schubert::PieriProblem{2, 2, 1}
                                         : schubert::PieriProblem{3, 2, 1};
  util::Prng rng(2004);
  const auto input = schubert::random_pieri_input(pb, rng);
  bool ok = true;
  std::vector<JsonRow> json_rows;

  // ---- interpreted vs compiled edge tracking (DESIGN.md section 8) -----------
  // The same tree, the same deformations, solved sequentially through both
  // evaluation paths: per-edge mean time is the micro-benchmark, the total
  // is the whole-tree wall time.  The endpoints must describe the same
  // solution set (paired within the tracking tolerance after canonical
  // ordering) — the analogue of ablation 5's identical-results guard.
  schubert::PieriSolveSummary summaries[2];
  double edge_us[2] = {0.0, 0.0};
  {
    util::Table t("compiled Pieri edge tape vs interpreted determinant walk "
                  "(sequential whole tree)");
    t.set_header({"evaluation", "edges", "per-edge (us)", "tree wall (s)", "complete"});
    const char* names[2] = {"interpreted", "compiled"};
    for (int mode = 0; mode < 2; ++mode) {
      schubert::PieriSolverOptions opts;
      opts.compiled_eval = mode == 1;
      util::WallTimer timer;
      summaries[mode] = schubert::solve_pieri(input, opts);
      const double wall = timer.seconds();
      edge_us[mode] = mean_seconds(summaries[mode].job_seconds) * 1e6;
      ok = ok && summaries[mode].complete();
      t.add_row({names[mode],
                 util::Table::cell(static_cast<std::size_t>(summaries[mode].total_jobs)),
                 util::Table::cell(edge_us[mode], 1), util::Table::cell(wall, 2),
                 summaries[mode].complete() ? "yes" : "NO"});
      json_rows.push_back({std::string("pieri_edge_") + names[mode], wall, edge_us[mode],
                           static_cast<double>(summaries[mode].total_jobs) / wall});
    }
    std::cout << t.to_string();
  }
  const double edge_speedup = edge_us[1] > 0.0 ? edge_us[0] / edge_us[1] : 0.0;
  bool solutions_agree =
      summaries[0].solutions.size() == summaries[1].solutions.size();
  if (solutions_agree) {
    const auto ka = sched::canonical_solution_set(summaries[0].solutions);
    const auto kb = sched::canonical_solution_set(summaries[1].solutions);
    for (std::size_t i = 0; i < ka.size() && solutions_agree; ++i) {
      for (std::size_t c = 0; c < ka[i].size(); ++c) {
        if (std::abs(ka[i][c] - kb[i][c]) > 1e-6) {
          solutions_agree = false;
          break;
        }
      }
    }
  }
  ok = ok && solutions_agree;
  std::printf("  per-edge speedup: %.1fx (tentpole claim: >= 2x)\n", edge_speedup);
  std::printf("  compiled and interpreted solution sets agree: %s\n\n",
              solutions_agree ? "yes" : "NO");

  // ---- parallel runs on the thread runtime -----------------------------------
  char title[96];
  std::snprintf(title, sizeof title,
                "parallel Pieri on the message-passing runtime, m=%zu p=%zu q=%zu (%zu jobs)",
                pb.m, pb.p, pb.q, static_cast<std::size_t>(summaries[1].total_jobs));
  util::Table t(title);
  t.set_header({"ranks", "solutions", "complete", "jobs", "peak instances", "wall (s)"});
  const std::vector<int> widths = tiny ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 5};
  for (const int ranks : widths) {
    const auto report = sched::run_pieri(input, ranks);
    ok = ok && report.complete();
    t.add_row({util::Table::cell(static_cast<std::size_t>(ranks)),
               util::Table::cell(report.solutions.size()),
               report.complete() ? "yes" : "NO",
               util::Table::cell(static_cast<std::size_t>(report.total_jobs)),
               util::Table::cell(report.peak_active_instances),
               util::Table::cell(report.wall_seconds, 2)});
    if (ranks == widths.back()) {
      json_rows.push_back({"pieri_parallel_compiled", report.wall_seconds, 0.0,
                           static_cast<double>(report.total_jobs) / report.wall_seconds});
    }
  }
  std::cout << t.to_string() << "\n";

  // ---- tree shape: available parallelism per level ---------------------------
  schubert::PatternPoset poset(pb);
  const auto jobs = poset.jobs_per_level();
  std::printf("available parallelism per level (jobs that can run concurrently):\n  ");
  for (const auto j : jobs) std::printf("%llu ", static_cast<unsigned long long>(j));
  const std::uint64_t width_cap = *std::max_element(jobs.begin(), jobs.end());
  std::printf("\n  -> few processors active near the root; the width saturates at d=%llu.\n\n",
              static_cast<unsigned long long>(width_cap));

  // ---- level-synchronous projection -----------------------------------------
  // With per-level job counts J_l and per-job cost c_l, P processors need
  // sum_l c_l * ceil(J_l / P); measure c_l from the sequential compiled run.
  const auto& seq = summaries[1];
  std::vector<double> level_cost(seq.levels.size());
  for (std::size_t i = 0; i < seq.levels.size(); ++i) {
    level_cost[i] = seq.levels[i].seconds / static_cast<double>(seq.levels[i].jobs);
  }
  util::Table proj("level-synchronous projection (measured per-level job costs, compiled)");
  proj.set_header({"CPUs", "time (s)", "speedup", "efficiency"});
  double t1 = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) t1 += level_cost[i] * static_cast<double>(jobs[i]);
  for (const std::size_t cpus : {1u, 2u, 4u, 8u, 16u, 32u, 55u}) {
    double tp = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto waves = (jobs[i] + cpus - 1) / cpus;
      tp += level_cost[i] * static_cast<double>(waves);
    }
    proj.add_row({util::Table::cell(cpus), util::Table::cell(tp, 2),
                  util::Table::cell(t1 / tp, 1),
                  util::Table::cell(100.0 * t1 / tp / static_cast<double>(cpus), 0) + "%"});
  }
  std::cout << proj.to_string();
  std::printf("\nthe tree width (max %llu) caps the useful processor count for this instance;\n"
              "larger (m,p,q) widen exponentially (Table IV), which is the paper's point.\n",
              static_cast<unsigned long long>(width_cap));

  if (const char* json_path = std::getenv("PPH_BENCH_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    write_bench_json(json_path, json_rows, tiny, edge_speedup, solutions_agree);
  }
  std::printf("\ncompiled/interpreted agreement and completeness everywhere: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
