// pph_store: query a JSONL result store (or a sharded set of them) from
// the command line.  A thin shell over store::StoreReader + the
// store::analytics library -- the CLI parses arguments and formats; every
// number comes from the library so tests and CI pin the same code path.
//
//   pph_store summary   STORE...   status/effort totals + per-shard state
//   pph_store dedup     STORE...   global solution identity across shards
//   pph_store failures  STORE...   per-tree-level failure / rescue rates
//   pph_store residuals STORE...   decade histograms: residuals, |x|_inf
//
// STORE arguments may contain '*' in the filename (expanded internally,
// sorted), so a sharded run reads as one logical store:
//   pph_store dedup '/tmp/run/store-*.jsonl'
//
// Options:
//   --json               machine-readable output (one JSON object)
//   --threads N          scan worker threads (default: hardware)
//   --tol X              dedup geometric tolerance (default 1e-8)
//   --expect-records N   fail (exit 1) unless exactly N unique records
//   --expect-distinct N  fail (exit 1) unless exactly N distinct solutions
//
// Exit codes: 0 ok; 1 an --expect-* check failed; 2 usage error;
// 3 no readable store behind the arguments.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "store/analytics.hpp"
#include "store/store_reader.hpp"
#include "util/table.hpp"

namespace {

using namespace pph;

struct Options {
  std::string command;
  std::vector<std::string> stores;
  bool json = false;
  int threads = 0;
  double tol = 1e-8;
  long long expect_records = -1;
  long long expect_distinct = -1;
};

int usage() {
  std::fprintf(stderr,
               "usage: pph_store <summary|dedup|failures|residuals> STORE...\n"
               "       [--json] [--threads N] [--tol X]\n"
               "       [--expect-records N] [--expect-distinct N]\n"
               "STORE may contain '*' in the filename (sharded stores).\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  if (argc < 3) return false;
  opt.command = argv[1];
  if (opt.command != "summary" && opt.command != "dedup" &&
      opt.command != "failures" && opt.command != "residuals") {
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.threads = std::atoi(v);
    } else if (arg == "--tol") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.tol = std::atof(v);
    } else if (arg == "--expect-records") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.expect_records = std::atoll(v);
    } else if (arg == "--expect-distinct") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.expect_distinct = std::atoll(v);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.stores.push_back(arg);
    }
  }
  return !opt.stores.empty();
}

/// Shard state table shared by the text modes.
void print_shards(const store::MultiStoreReader& multi) {
  util::Table table("shards");
  table.set_header({"path", "v", "records", "indexed", "truncated", "dupes"});
  for (std::size_t k = 0; k < multi.shard_count(); ++k) {
    const store::StoreReader& s = multi.shard(k);
    table.add_row({s.path(), std::to_string(s.version()), util::Table::cell(s.size()),
                   s.indexed() ? "yes" : "no", s.truncated() ? "yes" : "no",
                   util::Table::cell(s.duplicates_dropped())});
  }
  table.print(std::cout);
}

void append_shards_json(std::string& out, const store::MultiStoreReader& multi) {
  out += "\"shards\":[";
  for (std::size_t k = 0; k < multi.shard_count(); ++k) {
    const store::StoreReader& s = multi.shard(k);
    if (k != 0) out += ',';
    out += "{\"path\":\"" + s.path() + "\",\"version\":" + std::to_string(s.version()) +
           ",\"records\":" + std::to_string(s.size()) +
           ",\"indexed\":" + (s.indexed() ? "true" : "false") +
           ",\"truncated\":" + (s.truncated() ? "true" : "false") + "}";
  }
  out += ']';
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

int run_summary(const store::MultiStoreReader& multi, const Options& opt) {
  const auto s = store::analytics::summarize(multi, opt.threads);
  if (opt.json) {
    std::string out = "{";
    append_shards_json(out, multi);
    out += ",\"records\":" + std::to_string(s.records) +
           ",\"converged\":" + std::to_string(s.converged) +
           ",\"diverged\":" + std::to_string(s.diverged) +
           ",\"failed\":" + std::to_string(s.failed) +
           ",\"rescued\":" + std::to_string(s.rescued) +
           ",\"rescue_attempts\":" + std::to_string(s.rescue_attempts) +
           ",\"steps\":" + std::to_string(s.steps) +
           ",\"rejections\":" + std::to_string(s.rejections) +
           ",\"newton_iterations\":" + std::to_string(s.newton_iterations) +
           ",\"track_seconds\":" + fmt_double(s.track_seconds) +
           ",\"max_converged_residual\":" + fmt_double(s.max_converged_residual) + "}";
    std::cout << out << "\n";
  } else {
    print_shards(multi);
    util::Table table("summary");
    table.set_header({"records", "converged", "diverged", "failed", "rescued",
                      "steps", "newton", "track s", "max res"});
    table.add_row({util::Table::cell(s.records), util::Table::cell(s.converged),
                   util::Table::cell(s.diverged), util::Table::cell(s.failed),
                   util::Table::cell(s.rescued), util::Table::cell(std::size_t(s.steps)),
                   util::Table::cell(std::size_t(s.newton_iterations)),
                   fmt_double(s.track_seconds), fmt_double(s.max_converged_residual)});
    table.print(std::cout);
  }
  if (opt.expect_records >= 0 &&
      s.records != static_cast<std::size_t>(opt.expect_records)) {
    std::fprintf(stderr, "pph_store: expected %lld records, found %zu\n",
                 opt.expect_records, s.records);
    return 1;
  }
  return 0;
}

int run_dedup(const store::MultiStoreReader& multi, const Options& opt) {
  const auto d = store::analytics::dedup(multi, opt.tol, opt.threads);
  if (opt.json) {
    // The "counts" object is the CI comparison key: a killed-and-resumed
    // sharded run must produce counts bit-identical to an uninterrupted one.
    std::string out = "{";
    append_shards_json(out, multi);
    out += ",\"tol\":" + fmt_double(d.tol) +
           ",\"counts\":{\"records\":" + std::to_string(d.records) +
           ",\"unique_ids\":" + std::to_string(d.unique_ids) +
           ",\"duplicate_ids\":" + std::to_string(d.duplicate_ids) +
           ",\"converged\":" + std::to_string(d.converged) +
           ",\"distinct_solutions\":" + std::to_string(d.distinct_solutions) + "}}";
    std::cout << out << "\n";
  } else {
    print_shards(multi);
    util::Table table("global dedup (tol " + fmt_double(d.tol) + ")");
    table.set_header(
        {"records", "unique ids", "dup ids", "converged", "distinct"});
    table.add_row({util::Table::cell(d.records), util::Table::cell(d.unique_ids),
                   util::Table::cell(d.duplicate_ids), util::Table::cell(d.converged),
                   util::Table::cell(d.distinct_solutions)});
    table.print(std::cout);
  }
  if (opt.expect_records >= 0 &&
      d.unique_ids != static_cast<std::size_t>(opt.expect_records)) {
    std::fprintf(stderr, "pph_store: expected %lld unique records, found %zu\n",
                 opt.expect_records, d.unique_ids);
    return 1;
  }
  if (opt.expect_distinct >= 0 &&
      d.distinct_solutions != static_cast<std::size_t>(opt.expect_distinct)) {
    std::fprintf(stderr, "pph_store: expected %lld distinct solutions, found %zu\n",
                 opt.expect_distinct, d.distinct_solutions);
    return 1;
  }
  return 0;
}

int run_failures(const store::MultiStoreReader& multi, const Options& opt) {
  const auto t = store::analytics::level_table(multi, opt.threads);
  if (opt.json) {
    std::string out = "{";
    append_shards_json(out, multi);
    out += ",\"levels\":[";
    bool first = true;
    for (const auto& [level, row] : t.rows) {
      if (!first) out += ',';
      first = false;
      out += "{\"level\":" + std::to_string(level) +
             ",\"records\":" + std::to_string(row.records) +
             ",\"converged\":" + std::to_string(row.converged) +
             ",\"diverged\":" + std::to_string(row.diverged) +
             ",\"failed\":" + std::to_string(row.failed) +
             ",\"rescued\":" + std::to_string(row.rescued) +
             ",\"failure_rate\":" + fmt_double(row.failure_rate()) +
             ",\"rescue_rate\":" + fmt_double(row.rescue_rate()) + "}";
    }
    out += "]}";
    std::cout << out << "\n";
  } else {
    print_shards(multi);
    util::Table table("per-level failure / rescue rates");
    table.set_header({"level", "records", "converged", "diverged", "failed",
                      "rescued", "fail rate", "rescue rate"});
    for (const auto& [level, row] : t.rows) {
      table.add_row({std::to_string(level), util::Table::cell(row.records),
                     util::Table::cell(row.converged), util::Table::cell(row.diverged),
                     util::Table::cell(row.failed), util::Table::cell(row.rescued),
                     util::Table::cell_ratio(row.failure_rate(), 4),
                     util::Table::cell_ratio(row.rescue_rate(), 4)});
    }
    table.print(std::cout);
  }
  return 0;
}

void append_histogram_json(std::string& out, const char* name,
                           const store::analytics::DecadeHistogram& h) {
  out += '"';
  out += name;
  out += "\":{\"total\":" + std::to_string(h.total) +
         ",\"zeros\":" + std::to_string(h.zeros) +
         ",\"nonfinite\":" + std::to_string(h.nonfinite) + ",\"decades\":[";
  bool first = true;
  for (int e = store::analytics::DecadeHistogram::kMinExp;
       e <= store::analytics::DecadeHistogram::kMaxExp; ++e) {
    if (h.bucket(e) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "[" + std::to_string(e) + "," + std::to_string(h.bucket(e)) + "]";
  }
  out += "]}";
}

void print_histogram(const char* title, const store::analytics::DecadeHistogram& h) {
  util::Table table(title);
  table.set_header({"decade", "count"});
  if (h.zeros > 0) table.add_row({"0", util::Table::cell(std::size_t(h.zeros))});
  for (int e = store::analytics::DecadeHistogram::kMinExp;
       e <= store::analytics::DecadeHistogram::kMaxExp; ++e) {
    if (h.bucket(e) == 0) continue;
    table.add_row({"1e" + std::to_string(e), util::Table::cell(std::size_t(h.bucket(e)))});
  }
  if (h.nonfinite > 0) {
    table.add_row({"nan/inf", util::Table::cell(std::size_t(h.nonfinite))});
  }
  table.print(std::cout);
}

int run_residuals(const store::MultiStoreReader& multi, const Options& opt) {
  const auto h = store::analytics::histograms(multi, opt.threads);
  if (opt.json) {
    std::string out = "{";
    append_shards_json(out, multi);
    out += ',';
    append_histogram_json(out, "residual", h.residual);
    out += ',';
    append_histogram_json(out, "endpoint_norm", h.endpoint_norm);
    out += '}';
    std::cout << out << "\n";
  } else {
    print_shards(multi);
    print_histogram("converged residuals (decades)", h.residual);
    print_histogram("endpoint |x|_inf (decades)", h.endpoint_norm);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();

  const std::vector<std::string> paths = store::expand_store_paths(opt.stores);
  if (paths.empty()) {
    std::fprintf(stderr, "pph_store: no store matches the given arguments\n");
    return 3;
  }
  try {
    const store::MultiStoreReader multi(paths, {});
    bool any = false;
    for (std::size_t k = 0; k < multi.shard_count(); ++k) {
      any = any || multi.shard(k).exists();
    }
    if (!any) {
      std::fprintf(stderr, "pph_store: no readable store behind the arguments\n");
      return 3;
    }
    if (opt.command == "summary") return run_summary(multi, opt);
    if (opt.command == "dedup") return run_dedup(multi, opt);
    if (opt.command == "failures") return run_failures(multi, opt);
    return run_residuals(multi, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pph_store: %s\n", e.what());
    return 3;
  }
}
