// Integration tests: the Pieri homotopy solver end-to-end on random
// instances (solution counts must equal the combinatorial root counts, all
// solutions verified and distinct) and the pole placement application.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "schubert/pieri_solver.hpp"
#include "schubert/pole_placement.hpp"

namespace {

using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::schubert::Pattern;
using pph::schubert::PatternChart;
using pph::schubert::PieriProblem;
using pph::util::Prng;

struct SolveCase {
  std::size_t m, p, q;
  std::uint64_t expected;
};

class PieriSolves : public ::testing::TestWithParam<SolveCase> {};

TEST_P(PieriSolves, FindsAllSolutionsVerifiedAndDistinct) {
  const auto& c = GetParam();
  const auto summary =
      pph::schubert::solve_random_pieri(PieriProblem{c.m, c.p, c.q}, /*seed=*/17);
  EXPECT_EQ(summary.expected_count, c.expected);
  EXPECT_EQ(summary.solutions.size(), c.expected);
  EXPECT_EQ(summary.failures, 0u);
  EXPECT_EQ(summary.verified, summary.solutions.size());
  EXPECT_EQ(summary.distinct, summary.solutions.size());
  EXPECT_LT(summary.max_residual, 1e-8);
  EXPECT_TRUE(summary.complete());
}

// (2,2,2) rides along since the compiled edge tape (DESIGN.md section 8)
// made per-edge tracking ~25x cheaper; it stays well inside the CTest
// timeout even on the ~25x-slower sanitizer legs.
INSTANTIATE_TEST_SUITE_P(SmallGrid, PieriSolves,
                         ::testing::Values(SolveCase{2, 2, 0, 2}, SolveCase{3, 2, 0, 5},
                                           SolveCase{2, 3, 0, 5}, SolveCase{2, 2, 1, 8},
                                           SolveCase{3, 3, 0, 42}, SolveCase{3, 2, 1, 55},
                                           SolveCase{2, 2, 2, 32}));

TEST(PieriSolver, JobCountsMatchPosetPrediction) {
  const PieriProblem pb{2, 2, 1};
  const auto summary = pph::schubert::solve_random_pieri(pb, 3);
  pph::schubert::PatternPoset poset(pb);
  ASSERT_EQ(summary.levels.size(), pb.condition_count());
  const auto expected_jobs = poset.jobs_per_level();
  for (std::size_t i = 0; i < summary.levels.size(); ++i) {
    EXPECT_EQ(summary.levels[i].jobs, expected_jobs[i]) << "level " << i + 1;
  }
  EXPECT_EQ(summary.total_jobs, poset.total_jobs());
  EXPECT_EQ(summary.job_seconds.size(), summary.total_jobs);
}

TEST(PieriSolver, DifferentSeedsSameCount) {
  const PieriProblem pb{2, 2, 1};
  const auto a = pph::schubert::solve_random_pieri(pb, 5);
  const auto b = pph::schubert::solve_random_pieri(pb, 6);
  EXPECT_EQ(a.solutions.size(), b.solutions.size());
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
}

TEST(PieriSolver, RejectsWrongConditionCount) {
  Prng rng(1);
  auto input = pph::schubert::random_pieri_input(PieriProblem{2, 2, 0}, rng);
  input.conditions.pop_back();
  EXPECT_THROW(pph::schubert::solve_pieri(input), std::invalid_argument);
}

TEST(PieriEdgeHomotopy, StartResidualSmallForChildSolution) {
  // Walk one level by hand: the trivial solution of the minimal pattern,
  // embedded into a level-1 pattern, must satisfy the homotopy at t = 0.
  Prng rng(2);
  const PieriProblem pb{2, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const Pattern minimal = Pattern::minimal(pb);
  const auto parents = minimal.parents();
  ASSERT_FALSE(parents.empty());
  PatternChart chart(parents[0]);
  const CVector start = chart.embed_child(PatternChart(minimal), CVector{});
  pph::schubert::PieriEdgeHomotopy h(chart, {}, input.conditions[0], rng.unit_complex());
  const auto h0 = h.evaluate(start, 0.0);
  EXPECT_LT(pph::linalg::norm2(h0), 1e-12);
}

TEST(PieriEdgeHomotopy, DerivativeTMatchesFiniteDifference) {
  Prng rng(3);
  const PieriProblem pb{2, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const Pattern root = Pattern::root(pb);
  PatternChart chart(root);
  std::vector<pph::schubert::PlaneCondition> fixed(input.conditions.begin(),
                                                   input.conditions.end() - 1);
  pph::schubert::PieriEdgeHomotopy h(chart, fixed, input.conditions.back(), rng.unit_complex());
  CVector x(chart.dimension());
  for (auto& v : x) v = rng.normal_complex();
  const double t = 0.4, eps = 1e-7;
  const auto d = h.derivative_t(x, t);
  const auto hp = h.evaluate(x, t + eps);
  const auto hm = h.evaluate(x, t - eps);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Complex fd = (hp[i] - hm[i]) / (2 * eps);
    EXPECT_NEAR(std::abs(d[i] - fd), 0.0, 1e-5 * (1.0 + std::abs(fd)));
  }
}

TEST(PieriEdgeHomotopy, JacobianMatchesFiniteDifference) {
  Prng rng(4);
  const PieriProblem pb{2, 3, 0};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const Pattern root = Pattern::root(pb);
  PatternChart chart(root);
  std::vector<pph::schubert::PlaneCondition> fixed(
      input.conditions.begin(), input.conditions.begin() + (chart.dimension() - 1));
  pph::schubert::PieriEdgeHomotopy h(chart, fixed, input.conditions[chart.dimension() - 1],
                                     rng.unit_complex());
  CVector x(chart.dimension());
  for (auto& v : x) v = rng.normal_complex();
  const double t = 0.6, eps = 1e-7;
  const auto [value, jac] = h.evaluate_with_jacobian(x, t);
  for (std::size_t k = 0; k < x.size(); ++k) {
    CVector bumped = x;
    bumped[k] += Complex{eps, 0};
    const auto v2 = h.evaluate(bumped, t);
    for (std::size_t i = 0; i < value.size(); ++i) {
      const Complex fd = (v2[i] - value[i]) / eps;
      EXPECT_NEAR(std::abs(jac(i, k) - fd), 0.0, 1e-5 * (1.0 + std::abs(fd)));
    }
  }
}

// ---- pole placement --------------------------------------------------------

std::vector<Complex> prescribed_poles(std::size_t n, Prng& rng) {
  // Conjugate-closed, strictly stable pole set: pairs -a +/- bi and, if n is
  // odd, one extra real pole.
  std::vector<Complex> poles;
  while (poles.size() + 2 <= n) {
    const double a = 0.5 + 2.0 * rng.uniform();
    const double b = 0.3 + 1.5 * rng.uniform();
    poles.push_back(Complex{-a, b});
    poles.push_back(Complex{-a, -b});
  }
  if (poles.size() < n) poles.push_back(Complex{-1.0 - rng.uniform(), 0.0});
  return poles;
}

TEST(PolePlacement, StaticOutputFeedback22) {
  // m = p = 2, q = 0: 4 poles, d = 2 feedback laws (the classical result
  // that 4 general 2-planes in C^4 are met by exactly 2 2-planes).
  Prng rng(11);
  const PieriProblem pb{2, 2, 0};
  const auto plant = pph::schubert::random_plant(pb, rng);
  EXPECT_EQ(plant.states(), 4u);
  const auto poles = prescribed_poles(pb.condition_count(), rng);
  const auto input = pph::schubert::pole_placement_input(pb, plant, poles);
  const auto summary = pph::schubert::solve_pieri(input);
  ASSERT_TRUE(summary.complete());
  ASSERT_EQ(summary.solutions.size(), 2u);
  for (const auto& sol : summary.solutions) {
    const auto check = pph::schubert::verify_pole_placement(sol, plant, poles);
    EXPECT_LT(check.max_condition_residual, 1e-8);
    EXPECT_EQ(check.char_poly_degree, pb.condition_count());
    EXPECT_LT(check.max_pole_residual, 1e-7);
  }
}

TEST(PolePlacement, DynamicFeedback221) {
  // m = p = 2, q = 1: a degree-one compensator; 8 poles, 8 feedback laws.
  Prng rng(12);
  const PieriProblem pb{2, 2, 1};
  const auto plant = pph::schubert::random_plant(pb, rng);
  EXPECT_EQ(plant.states(), 7u);
  const auto poles = prescribed_poles(pb.condition_count(), rng);
  const auto input = pph::schubert::pole_placement_input(pb, plant, poles);
  const auto summary = pph::schubert::solve_pieri(input);
  ASSERT_TRUE(summary.complete());
  ASSERT_EQ(summary.solutions.size(), 8u);
  for (const auto& sol : summary.solutions) {
    const auto check = pph::schubert::verify_pole_placement(sol, plant, poles);
    EXPECT_EQ(check.char_poly_degree, pb.condition_count());
    EXPECT_LT(check.max_pole_residual, 1e-7);
  }
}

TEST(PolePlacement, CompensatorFeedbackClosesLoopAtPole) {
  // At a prescribed pole, det(Z(s) - G(s) Y(s)) must vanish: the compensator
  // F = Y Z^{-1} makes s a closed-loop pole.
  Prng rng(13);
  const PieriProblem pb{2, 2, 0};
  const auto plant = pph::schubert::random_plant(pb, rng);
  const auto poles = prescribed_poles(pb.condition_count(), rng);
  const auto input = pph::schubert::pole_placement_input(pb, plant, poles);
  const auto summary = pph::schubert::solve_pieri(input);
  ASSERT_FALSE(summary.solutions.empty());
  const auto comp = pph::schubert::extract_compensator(summary.solutions[0]);
  for (const Complex s : poles) {
    const CMatrix g = plant.transfer(s);
    const CMatrix closing = comp.z(s) - g * comp.y(s);
    const Complex det = pph::linalg::determinant(closing);
    // Relative to the matrix scale.
    EXPECT_LT(std::abs(det), 1e-7 * std::pow(1.0 + pph::linalg::norm_frobenius(closing), 2.0));
  }
}

TEST(PolePlacement, PlantTransferMatchesDefinition) {
  Prng rng(14);
  const PieriProblem pb{2, 2, 0};
  const auto plant = pph::schubert::random_plant(pb, rng);
  const Complex s{0.7, 1.1};
  const CMatrix g = plant.transfer(s);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.cols(), 2u);
  // char_poly at an eigenvalue-free point is nonzero.
  EXPECT_GT(std::abs(plant.char_poly(s)), 0.0);
}

TEST(PolePlacement, InputValidation) {
  Prng rng(15);
  const PieriProblem pb{2, 2, 0};
  const auto plant = pph::schubert::random_plant(pb, rng);
  EXPECT_THROW(pph::schubert::pole_placement_input(pb, plant, {Complex{1, 0}}),
               std::invalid_argument);
}

}  // namespace
