// The endgame/rescue tier and root-count certification (DESIGN.md section
// 9): double-double utilities, the tracker's final-stretch policy, suspect
// diagnostics, rescue targeting and tracker ladders, the solver-level
// fresh-gamma rescue on a deterministic singular-deformation fixture,
// certification property tests (dropped / duplicated / perturbed solutions
// must be rejected), Pieri solves certified against the exact chain count,
// rescue fault injection under a killed slave, and the env-gated (2,2,4)
// seed sweep that replays the historically path-losing instances.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "homotopy/certify.hpp"
#include "homotopy/solver.hpp"
#include "sched/pieri_scheduler.hpp"
#include "schubert/pieri_solver.hpp"
#include "util/dd.hpp"
#include "util/prng.hpp"

namespace {

using pph::homotopy::CertificateReport;
using pph::homotopy::CertifyOptions;
using pph::homotopy::ConvexHomotopy;
using pph::homotopy::PathResult;
using pph::homotopy::PathStatus;
using pph::homotopy::SolveOptions;
using pph::homotopy::TrackerOptions;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::Monomial;
using pph::poly::Polynomial;
using pph::poly::PolySystem;
using pph::schubert::PieriProblem;
using pph::schubert::PieriSolverOptions;
using pph::util::Prng;

/// Univariate x^2 - c as a 1x1 system.
PolySystem quadratic_system(Complex c) {
  Monomial sq(1);
  sq.set_exponent(0, 2);
  return PolySystem(1, {Polynomial(1, {{Complex{1, 0}, sq}, {-c, Monomial(1)}})});
}

// ---- double-double utilities ------------------------------------------------

TEST(DoubleDouble, TwoSumCapturesTheLostBit) {
  // 1 + 2^-60 rounds to 1 in double; the error term holds the remainder.
  const auto r = pph::util::two_sum(1.0, std::ldexp(1.0, -60));
  EXPECT_EQ(r.s, 1.0);
  EXPECT_EQ(r.e, std::ldexp(1.0, -60));
}

TEST(DoubleDouble, TwoProdCapturesTheRoundedProduct) {
  // (1 + 2^-30)(1 - 2^-30) = 1 - 2^-60: the product rounds to 1.
  const double a = 1.0 + std::ldexp(1.0, -30);
  const double b = 1.0 - std::ldexp(1.0, -30);
  const auto r = pph::util::two_prod(a, b);
  EXPECT_EQ(r.s, 1.0);
  EXPECT_EQ(r.e, -std::ldexp(1.0, -60));
}

TEST(DoubleDouble, AddSubRecoversWhatDoubleLoses) {
  const pph::util::DD one{1.0};
  const pph::util::DD tiny{std::ldexp(1.0, -60)};
  const auto d = pph::util::dd_sub(pph::util::dd_add(one, tiny), one);
  EXPECT_EQ(d.to_double(), std::ldexp(1.0, -60));
  // The same computation collapses to zero in plain double.
  EXPECT_EQ((1.0 + std::ldexp(1.0, -60)) - 1.0, 0.0);
}

TEST(DoubleDouble, CompensatedFmaBeatsNaiveAccumulation) {
  // (1e8+1)^2 - 1e8*1e8 - 2e8*1 = 1 exactly; the first product needs 54
  // bits, so naive double accumulation lands on 2.
  const double x = 1e8 + 1.0;
  double naive = x * x;
  naive += -1e8 * 1e8;
  naive += -2e8 * 1.0;
  EXPECT_NE(naive, 1.0);

  pph::util::DDComplex acc;
  pph::util::ddc_fma(acc, Complex{x, 0}, Complex{x, 0});
  pph::util::ddc_fma(acc, Complex{-1e8, 0}, Complex{1e8, 0});
  pph::util::ddc_fma(acc, Complex{-2e8, 0}, Complex{1, 0});
  EXPECT_EQ(acc.to_complex().real(), 1.0);
  EXPECT_EQ(acc.to_complex().imag(), 0.0);
}

TEST(DoubleDouble, RefinedCorrectorConverges) {
  const PolySystem f = quadratic_system(Complex{4, 0});
  ConvexHomotopy h(f, f, Complex{1, 0});
  CVector x{Complex{2.02, -0.01}};
  pph::homotopy::CorrectorOptions opts;
  opts.dd_refine = true;
  const auto r = pph::homotopy::correct(h, x, 1.0, opts);
  EXPECT_EQ(r.status, pph::homotopy::CorrectorStatus::kConverged);
  EXPECT_NEAR(std::abs(x[0] - Complex{2, 0}), 0.0, 1e-12);
}

// ---- the tracker endgame ----------------------------------------------------

TEST(Endgame, GeometricApproachAddsFinalStretchSteps) {
  Prng rng(21);
  const PolySystem f = quadratic_system(Complex{3, 1});
  pph::homotopy::TotalDegreeStart start(f, rng);
  ConvexHomotopy h(start.system(), f, rng.unit_complex());

  TrackerOptions off;
  off.endgame.enabled = false;
  TrackerOptions on;
  on.endgame.enabled = true;
  // Threshold below 1 - max_step so the tracker cannot hop over the whole
  // endgame window in one step.
  on.endgame.threshold = 0.8;

  const auto a = pph::homotopy::track_path(h, start.solution(0), off);
  const auto b = pph::homotopy::track_path(h, start.solution(0), on);
  ASSERT_TRUE(a.converged());
  ASSERT_TRUE(b.converged());
  // Same root either way; the endgame halves the remaining gap per step, so
  // it spends ~log2((1-threshold)/min_gap) extra steps on the final stretch.
  EXPECT_NEAR(std::abs(a.x[0] - b.x[0]), 0.0, 1e-8);
  EXPECT_GT(b.steps, a.steps);
}

TEST(Endgame, DiagnosticsPopulatedOnConvergedPaths) {
  Prng rng(22);
  const PolySystem f = quadratic_system(Complex{2, 2});
  pph::homotopy::TotalDegreeStart start(f, rng);
  ConvexHomotopy h(start.system(), f, rng.unit_complex());
  const auto r = pph::homotopy::track_path(h, start.solution(0));
  ASSERT_TRUE(r.converged());
  EXPECT_GT(r.last_step, 0.0);
  EXPECT_EQ(r.rescue_attempts, 0u);
  EXPECT_FALSE(r.rescued);
}

TEST(Endgame, SuspectPredicateFlagsHighResidualConvergence) {
  PathResult r;
  r.status = PathStatus::kConverged;
  r.residual = 1e-5;
  EXPECT_TRUE(pph::homotopy::suspect_path(r, 1e-7));
  r.residual = 1e-9;
  EXPECT_FALSE(pph::homotopy::suspect_path(r, 1e-7));
  r.status = PathStatus::kFailed;
  r.residual = 1.0;
  EXPECT_FALSE(pph::homotopy::suspect_path(r, 1e-7));  // failed, not suspect
}

// ---- rescue targeting and tracker ladders -----------------------------------

PathResult make_result(PathStatus status, double residual, Complex endpoint) {
  PathResult r;
  r.status = status;
  r.residual = residual;
  r.x = {endpoint};
  return r;
}

TEST(Rescue, TargetsFailedSuspectAndCollidingPaths) {
  PieriSolverOptions opts;
  std::vector<PathResult> results;
  results.push_back(make_result(PathStatus::kConverged, 1e-12, Complex{10, 0}));  // clean
  results.push_back(make_result(PathStatus::kFailed, 1.0, Complex{0, 0}));        // failed
  results.push_back(make_result(PathStatus::kConverged, 1e-3, Complex{1, 0}));    // suspect
  results.push_back(make_result(PathStatus::kConverged, 1e-12, Complex{5, 0}));   // collides...
  results.push_back(
      make_result(PathStatus::kConverged, 1e-12, Complex{5 + 1e-9, 0}));          // ...with this
  const auto targets = pph::schubert::rescue_targets(results, opts);
  EXPECT_EQ(targets, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(Rescue, CleanResultsProduceNoTargets) {
  PieriSolverOptions opts;
  std::vector<PathResult> results;
  results.push_back(make_result(PathStatus::kConverged, 1e-12, Complex{1, 0}));
  results.push_back(make_result(PathStatus::kConverged, 1e-12, Complex{2, 0}));
  EXPECT_TRUE(pph::schubert::rescue_targets(results, opts).empty());
}

TEST(Rescue, AttemptTrackerLadderShrinksStepsAndArmsTheEndgame) {
  PieriSolverOptions opts;
  const TrackerOptions base = opts.tracker;

  const auto retry = pph::schubert::attempt_tracker(opts, 1);
  EXPECT_LT(retry.initial_step, base.initial_step);
  EXPECT_LT(retry.max_step, base.max_step);
  EXPECT_GT(retry.corrector.max_iterations, base.corrector.max_iterations);

  const auto r1 = pph::schubert::attempt_tracker(opts, 0, 1);
  EXPECT_LT(r1.initial_step, base.initial_step);
  EXPECT_TRUE(r1.endgame.enabled);
  EXPECT_TRUE(r1.endgame.dd_refine);
  EXPECT_DOUBLE_EQ(r1.endgame.threshold, 0.9);
  // Tightened but clamped above the double rounding floor: an unreachable
  // corrector tolerance rejects every step and kills the re-track.
  EXPECT_GE(r1.corrector.residual_tolerance, 1e-12);

  const auto r3 = pph::schubert::attempt_tracker(opts, 0, 3);
  EXPECT_GE(r3.corrector.residual_tolerance, 1e-12);
  EXPECT_TRUE(r3.corrector.dd_refine);
  EXPECT_GT(r3.corrector.stagnation_tolerance, 0.0);
  EXPECT_LT(r3.corrector.stagnation_tolerance, opts.suspect_residual);
  EXPECT_LE(r3.min_step, 1e-12);
  EXPECT_LT(r3.initial_step, r1.initial_step);
}

// ---- solver-level rescue on a deterministic singular deformation ------------

// With gamma = 1 the straight-line homotopy from x^2 - 1 to x^2 + 1/9 has
// coefficient line a(t) = 1 - (10/9)t, which crosses ZERO at t* = 0.9: both
// paths x(t) = +/-sqrt(a(t)) hit a genuine singularity mid-path and no step
// size survives.  A fresh random gamma bends the line away from the origin,
// so the rescue tier's fresh-deformation re-track recovers both roots
// +/-i/3.  This is the unit-size replica of the (2,2,4) Pieri losses.
class SingularDeformation : public ::testing::Test {
 protected:
  SingularDeformation()
      : start_(quadratic_system(Complex{1, 0})),
        target_(quadratic_system(Complex{-1.0 / 9.0, 0})),
        h_(start_, target_, Complex{1, 0}),
        starts_{{Complex{1, 0}}, {Complex{-1, 0}}} {}

  pph::homotopy::RescueFamily family() {
    return [this](std::size_t attempt) -> std::unique_ptr<pph::homotopy::Homotopy> {
      Prng rng(1234 + attempt);
      return std::make_unique<ConvexHomotopy>(start_, target_, rng.unit_complex());
    };
  }

  PolySystem start_;
  PolySystem target_;
  ConvexHomotopy h_;
  std::vector<CVector> starts_;
};

TEST_F(SingularDeformation, FailsWithDiagnosticsWhenRescueIsOff) {
  SolveOptions opts;
  opts.rescue.enabled = false;
  const auto s = pph::homotopy::track_and_summarize(h_, starts_, target_, opts, family());
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.converged, 0u);
  EXPECT_EQ(s.rescue_retracks, 0u);
  for (const auto& p : s.paths) {
    EXPECT_EQ(p.status, PathStatus::kFailed);
    // The suspect-path diagnostics: stuck at the singular t* with the
    // underflowed step recorded.
    EXPECT_NEAR(p.t_reached, 0.9, 1e-3);
    EXPECT_GT(p.last_step, 0.0);
    EXPECT_LT(p.last_step, opts.tracker.min_step * 2);
  }
  // Certification turns the silent loss into a machine-readable failure.
  const auto cert = pph::homotopy::certify(target_, s.solutions, 2);
  EXPECT_FALSE(cert.ok());
  EXPECT_FALSE(cert.count_ok());
}

TEST_F(SingularDeformation, FreshGammaRescueRecoversBothRoots) {
  SolveOptions opts;
  const auto s = pph::homotopy::track_and_summarize(h_, starts_, target_, opts, family());
  EXPECT_EQ(s.converged, 2u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.rescued_paths, 2u);
  EXPECT_GE(s.rescue_retracks, 2u);
  EXPECT_GE(s.rescue_seconds, 0.0);
  ASSERT_EQ(s.solutions.size(), 2u);
  for (const auto& p : s.paths) {
    EXPECT_TRUE(p.rescued);
    EXPECT_GE(p.rescue_attempts, 1u);
    EXPECT_NEAR(std::abs(p.x[0] - Complex{0, p.x[0].imag() > 0 ? 1.0 / 3.0 : -1.0 / 3.0}), 0.0,
                1e-9);
  }
  const auto cert = pph::homotopy::certify(target_, s.solutions, 2);
  EXPECT_TRUE(cert.ok()) << cert.summary();
}

// ---- certification properties -----------------------------------------------

std::vector<CVector> separated_points(std::size_t n) {
  std::vector<CVector> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back({Complex{double(i), -double(i)}});
  return pts;
}

TEST(Certify, AcceptsACleanSet) {
  const auto pts = separated_points(4);
  const std::vector<double> res(4, 1e-12);
  const auto cert = pph::homotopy::certify_solution_set(pts, res, 4);
  EXPECT_TRUE(cert.ok());
  EXPECT_TRUE(cert.count_ok());
  EXPECT_TRUE(cert.residuals_ok());
  EXPECT_TRUE(cert.distinct_ok());
  EXPECT_EQ(cert.residual_ok, 4u);
  EXPECT_TRUE(std::isinf(cert.min_pairwise_distance));
  EXPECT_NE(cert.summary().find("certified"), std::string::npos);
  EXPECT_NE(cert.to_json().find("\"ok\":true"), std::string::npos);
}

TEST(Certify, RejectsADroppedSolution) {
  const auto pts = separated_points(3);
  const std::vector<double> res(3, 1e-12);
  const auto cert = pph::homotopy::certify_solution_set(pts, res, 4);
  EXPECT_FALSE(cert.count_ok());
  EXPECT_FALSE(cert.ok());
  EXPECT_NE(cert.summary().find("FAILED"), std::string::npos);
  EXPECT_NE(cert.to_json().find("\"ok\":false"), std::string::npos);
}

TEST(Certify, RejectsADuplicatedSolution) {
  auto pts = separated_points(4);
  pts.push_back({pts[2][0] + Complex{1e-9, 0}});
  const std::vector<double> res(5, 1e-12);
  // Count matches the (wrong) expectation of 5, so ONLY distinctness trips.
  const auto cert = pph::homotopy::certify_solution_set(pts, res, 5);
  EXPECT_TRUE(cert.count_ok());
  ASSERT_EQ(cert.duplicates.size(), 1u);
  EXPECT_EQ(cert.duplicates[0].a, 2u);
  EXPECT_EQ(cert.duplicates[0].b, 4u);
  EXPECT_FALSE(cert.distinct_ok());
  EXPECT_FALSE(cert.ok());
}

TEST(Certify, RejectsAPerturbedSolution) {
  const auto pts = separated_points(4);
  std::vector<double> res(4, 1e-12);
  res[1] = 1e-3;  // a perturbed/garbage endpoint shows up as residual
  const auto cert = pph::homotopy::certify_solution_set(pts, res, 4);
  EXPECT_TRUE(cert.count_ok());
  EXPECT_FALSE(cert.residuals_ok());
  EXPECT_FALSE(cert.ok());
  ASSERT_EQ(cert.residual_failures.size(), 1u);
  EXPECT_EQ(cert.residual_failures[0], 1u);
  EXPECT_DOUBLE_EQ(cert.max_residual, 1e-3);
}

TEST(Certify, ReportsNearDuplicatesWithoutFailing) {
  auto pts = separated_points(4);
  pts.push_back({pts[0][0] + Complex{5e-6, 0}});  // inside the 10x band
  const std::vector<double> res(5, 1e-12);
  const auto cert = pph::homotopy::certify_solution_set(pts, res, 5);
  EXPECT_TRUE(cert.ok());
  EXPECT_TRUE(cert.duplicates.empty());
  ASSERT_EQ(cert.near_duplicates.size(), 1u);
  EXPECT_NEAR(cert.near_duplicates[0].distance, 5e-6, 1e-9);
  EXPECT_NEAR(cert.min_pairwise_distance, 5e-6, 1e-9);
}

TEST(Certify, RequiresOneResidualPerSolution) {
  const auto pts = separated_points(3);
  const std::vector<double> res(2, 1e-12);
  EXPECT_THROW(pph::homotopy::certify_solution_set(pts, res, 3), std::invalid_argument);
}

TEST(Certify, ComputesResidualsAgainstTheTarget) {
  const PolySystem f = quadratic_system(Complex{4, 0});
  const std::vector<CVector> roots{{Complex{2, 0}}, {Complex{-2, 0}}};
  EXPECT_TRUE(pph::homotopy::certify(f, roots, 2).ok());
  const std::vector<CVector> wrong{{Complex{2, 0}}, {Complex{3, 0}}};
  const auto cert = pph::homotopy::certify(f, wrong, 2);
  EXPECT_FALSE(cert.ok());
  EXPECT_FALSE(cert.residuals_ok());
}

// ---- Pieri solves certified against the exact chain count -------------------

TEST(PieriCertify, RandomInstancesCertifyAgainstChainCount) {
  for (std::uint64_t seed : {1, 2, 3}) {
    Prng rng(seed);
    const auto input =
        pph::schubert::random_pieri_input(PieriProblem{2, 2, 2}, rng);
    const auto summary = pph::schubert::solve_pieri(input);
    EXPECT_TRUE(summary.complete()) << "seed " << seed;
    const auto cert = pph::schubert::certify_pieri(input, summary);
    EXPECT_TRUE(cert.ok()) << "seed " << seed << ": " << cert.summary();
    EXPECT_EQ(cert.expected_count, 32u);
  }
}

TEST(PieriCertify, ForcedRescueKeepsTheSolutionSetComplete) {
  // suspect_residual = 0 marks every converged path suspect, forcing the
  // targeted re-track machinery through its full budget on every instance;
  // the solve must still certify and carry rescue provenance.
  Prng rng(7);
  const auto input = pph::schubert::random_pieri_input(PieriProblem{2, 2, 1}, rng);
  PieriSolverOptions opts;
  opts.suspect_residual = 0.0;
  const auto summary = pph::schubert::solve_pieri(input, opts);
  EXPECT_TRUE(summary.complete());
  EXPECT_TRUE(pph::schubert::certify_pieri(input, summary).ok());
  EXPECT_GT(summary.rescue_retracks, 0u);
  EXPECT_GT(summary.suspect_paths, 0u);
  EXPECT_GT(summary.rescued_instances, 0u);
}

// ---- fault injection: rescue re-tracks are scheduling-invariant -------------

TEST(PieriRescueFaultInjection, KilledSlaveLeavesRescueBitIdentical) {
  Prng rng(42);
  const auto input = pph::schubert::random_pieri_input(PieriProblem{2, 2, 1}, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.solver.suspect_residual = 0.0;  // force rescue rounds on every instance
  const auto healthy = pph::sched::run_pieri(input, 4, opts);
  ASSERT_TRUE(healthy.complete());
  EXPECT_GT(healthy.rescue_retracks, 0u);
  EXPECT_GT(healthy.rescued_instances, 0u);
  EXPECT_GT(healthy.suspect_paths, 0u);

  pph::sched::ParallelPieriOptions kill = opts;
  kill.kill_slave_rank = 2;
  kill.kill_slave_after_jobs = 3;
  const auto wounded = pph::sched::run_pieri(input, 4, kill);
  EXPECT_TRUE(wounded.complete());
  // The re-queued rescue re-tracks are deterministic, so the canonical
  // solution set and the rescue ledger both survive the death untouched.
  EXPECT_EQ(wounded.rescue_retracks, healthy.rescue_retracks);
  EXPECT_EQ(wounded.rescued_instances, healthy.rescued_instances);
  const auto a = pph::sched::canonical_solution_set(healthy.solutions);
  const auto b = pph::sched::canonical_solution_set(wounded.solutions);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      EXPECT_EQ(a[i][k].real(), b[i][k].real());
      EXPECT_EQ(a[i][k].imag(), b[i][k].imag());
    }
  }
}

TEST(PieriRescueFaultInjection, SequentialAndParallelAgreeOnTheRootCount) {
  Prng rng(11);
  const auto input = pph::schubert::random_pieri_input(PieriProblem{2, 2, 1}, rng);
  const auto sequential = pph::schubert::solve_pieri(input);
  const auto parallel = pph::sched::run_pieri(input, 3);
  EXPECT_TRUE(sequential.complete());
  EXPECT_TRUE(parallel.complete());
  EXPECT_EQ(parallel.solutions.size(), sequential.solutions.size());
}

// ---- the (2,2,4) seed sweep (the paper-scale known-loss replay) -------------

// Seeds 1..6 of the (2,2,4) problem historically lost 16-72 paths each to
// mid-path jumps and interior near-singular points (EXPERIMENTS.md Table
// IV).  With the rescue tier on, every seed must reach the full certified
// 512.  ~80s in Release, so the deep sweep only runs when PPH_ENDGAME_DEEP
// is set (the Release CI leg); the suites above cover the machinery at
// unit scale on every leg.
TEST(EndgameDeep, HistoricallyLossySeedsCertifyComplete) {
  if (std::getenv("PPH_ENDGAME_DEEP") == nullptr) {
    GTEST_SKIP() << "set PPH_ENDGAME_DEEP=1 to run the (2,2,4) seed sweep";
  }
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng rng(seed);
    const auto input =
        pph::schubert::random_pieri_input(PieriProblem{2, 2, 4}, rng);
    const auto summary = pph::schubert::solve_pieri(input);
    EXPECT_TRUE(summary.complete()) << "seed " << seed;
    EXPECT_EQ(summary.solutions.size(), 512u) << "seed " << seed;
    const auto cert = pph::schubert::certify_pieri(input, summary);
    EXPECT_TRUE(cert.ok()) << "seed " << seed << ": " << cert.summary();
  }
}

}  // namespace
