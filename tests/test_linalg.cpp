// Unit and property tests for src/linalg: matrix algebra identities, LU
// (solve/det/inverse/rcond) and QR (orthogonality, least squares, rank)
// over randomly generated complex matrices.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "util/prng.hpp"

namespace {

using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::linalg::LU;
using pph::linalg::QR;
using pph::util::Prng;

CMatrix random_matrix(Prng& rng, std::size_t rows, std::size_t cols) {
  CMatrix a(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.normal_complex();
  return a;
}

CVector random_vector(Prng& rng, std::size_t n) {
  CVector v(n);
  for (auto& x : v) x = rng.normal_complex();
  return v;
}

TEST(Matrix, InitializerListAndAccess) {
  CMatrix a{{Complex{1, 0}, Complex{2, 0}}, {Complex{3, 0}, Complex{4, 0}}};
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 2u);
  EXPECT_EQ(a(1, 0), (Complex{3, 0}));
}

TEST(Matrix, RaggedInitializerThrows) {
  auto make = [] {
    CMatrix a{{Complex{1, 0}}, {Complex{1, 0}, Complex{2, 0}}};
    return a;
  };
  EXPECT_THROW(make(), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  Prng rng(1);
  const CMatrix a = random_matrix(rng, 4, 4);
  const CMatrix i4 = CMatrix::identity(4);
  const CMatrix left = i4 * a;
  const CMatrix right = a * i4;
  EXPECT_NEAR(pph::linalg::norm_frobenius(left - a), 0.0, 1e-14);
  EXPECT_NEAR(pph::linalg::norm_frobenius(right - a), 0.0, 1e-14);
}

TEST(Matrix, TransposeOfTransposeIsIdentity) {
  Prng rng(2);
  const CMatrix a = random_matrix(rng, 3, 5);
  EXPECT_NEAR(pph::linalg::norm_frobenius(a.transpose().transpose() - a), 0.0, 0.0);
}

TEST(Matrix, AdjointConjugates) {
  CMatrix a{{Complex{1, 2}}};
  EXPECT_EQ(a.adjoint()(0, 0), (Complex{1, -2}));
}

TEST(Matrix, HcatVcatShapes) {
  Prng rng(3);
  const CMatrix a = random_matrix(rng, 3, 2);
  const CMatrix b = random_matrix(rng, 3, 4);
  const CMatrix h = CMatrix::hcat(a, b);
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 6u);
  EXPECT_EQ(h(2, 1), a(2, 1));
  EXPECT_EQ(h(2, 3), b(2, 1));

  const CMatrix c = random_matrix(rng, 2, 2);
  const CMatrix v = CMatrix::vcat(a, c);
  EXPECT_EQ(v.rows(), 5u);
  EXPECT_EQ(v(4, 1), c(1, 1));
}

TEST(Matrix, HcatRowMismatchThrows) {
  CMatrix a(2, 2), b(3, 2);
  EXPECT_THROW(CMatrix::hcat(a, b), std::invalid_argument);
}

TEST(Matrix, SelectRowsReorders) {
  Prng rng(4);
  const CMatrix a = random_matrix(rng, 4, 3);
  const CMatrix s = a.select_rows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 1), a(2, 1));
  EXPECT_EQ(s(1, 2), a(0, 2));
}

TEST(Matrix, ApplyMatchesManualProduct) {
  Prng rng(5);
  const CMatrix a = random_matrix(rng, 3, 3);
  const CVector x = random_vector(rng, 3);
  const CVector y = a.apply(x);
  for (std::size_t r = 0; r < 3; ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < 3; ++c) acc += a(r, c) * x[c];
    EXPECT_NEAR(std::abs(y[r] - acc), 0.0, 1e-14);
  }
}

TEST(Matrix, MultiplicationAssociativity) {
  Prng rng(6);
  const CMatrix a = random_matrix(rng, 3, 4);
  const CMatrix b = random_matrix(rng, 4, 2);
  const CMatrix c = random_matrix(rng, 2, 5);
  const CMatrix lhs = (a * b) * c;
  const CMatrix rhs = a * (b * c);
  EXPECT_NEAR(pph::linalg::norm_frobenius(lhs - rhs), 0.0, 1e-12);
}

TEST(VectorOps, NormsAndDot) {
  CVector x{Complex{3, 0}, Complex{0, 4}};
  EXPECT_DOUBLE_EQ(pph::linalg::norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(pph::linalg::norm_inf(x), 4.0);
  CVector y{Complex{1, 0}, Complex{0, 1}};
  // dot = conj(3)*1 + conj(4i)*i = 3 + 4.
  EXPECT_NEAR(std::abs(pph::linalg::dot(x, y) - Complex{7.0, 0.0}), 0.0, 1e-14);
}

// ---- LU -------------------------------------------------------------------

class LUSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LUSizes, SolveResidualSmall) {
  Prng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const CMatrix a = random_matrix(rng, n, n);
  const CVector b = random_vector(rng, n);
  LU lu(a);
  ASSERT_FALSE(lu.singular());
  const auto x = lu.solve(b);
  ASSERT_TRUE(x.has_value());
  const CVector r = a.apply(*x);
  double res = 0.0;
  for (std::size_t i = 0; i < n; ++i) res += std::norm(r[i] - b[i]);
  EXPECT_LT(std::sqrt(res), 1e-9 * (1.0 + pph::linalg::norm2(b)));
}

TEST_P(LUSizes, InverseTimesSelfIsIdentity) {
  Prng rng(200 + GetParam());
  const std::size_t n = GetParam();
  const CMatrix a = random_matrix(rng, n, n);
  const auto inv = LU(a).inverse();
  ASSERT_TRUE(inv.has_value());
  const CMatrix prod = a * (*inv);
  EXPECT_NEAR(pph::linalg::norm_frobenius(prod - CMatrix::identity(n)), 0.0, 1e-8);
}

TEST_P(LUSizes, DeterminantMultiplicative) {
  Prng rng(300 + GetParam());
  const std::size_t n = GetParam();
  const CMatrix a = random_matrix(rng, n, n);
  const CMatrix b = random_matrix(rng, n, n);
  const Complex da = pph::linalg::determinant(a);
  const Complex db = pph::linalg::determinant(b);
  const Complex dab = pph::linalg::determinant(a * b);
  EXPECT_NEAR(std::abs(dab - da * db) / (1.0 + std::abs(dab)), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LUSizes, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(LU, Determinant2x2Exact) {
  CMatrix a{{Complex{1, 0}, Complex{2, 0}}, {Complex{3, 0}, Complex{4, 0}}};
  EXPECT_NEAR(std::abs(pph::linalg::determinant(a) - Complex{-2.0, 0.0}), 0.0, 1e-14);
}

TEST(LU, SingularMatrixDetected) {
  CMatrix a{{Complex{1, 0}, Complex{2, 0}}, {Complex{2, 0}, Complex{4, 0}}};
  LU lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(lu.determinant(), (Complex{0, 0}));
  EXPECT_FALSE(lu.solve(CVector{Complex{1, 0}, Complex{0, 0}}).has_value());
  EXPECT_EQ(lu.rcond_estimate(), 0.0);
}

TEST(LU, PermutationSignCorrect) {
  // Row-swapped identity has determinant -1.
  CMatrix a{{Complex{0, 0}, Complex{1, 0}}, {Complex{1, 0}, Complex{0, 0}}};
  EXPECT_NEAR(std::abs(pph::linalg::determinant(a) - Complex{-1.0, 0.0}), 0.0, 1e-14);
}

TEST(LU, RcondSmallForIllConditioned) {
  CMatrix a{{Complex{1, 0}, Complex{0, 0}}, {Complex{0, 0}, Complex{1e-12, 0}}};
  LU lu(a);
  EXPECT_LT(lu.rcond_estimate(), 1e-10);
  CMatrix b = CMatrix::identity(2);
  EXPECT_GT(LU(b).rcond_estimate(), 0.1);
}

TEST(LU, MinPivotMagnitudeSignalsDegeneracy) {
  CMatrix good = CMatrix::identity(3);
  EXPECT_NEAR(LU(good).min_pivot_magnitude(), 1.0, 1e-14);
  CMatrix bad = CMatrix::identity(3);
  bad(2, 2) = Complex{1e-14, 0};
  EXPECT_LT(LU(bad).min_pivot_magnitude(), 1e-13);
}

TEST(LU, NonSquareThrows) {
  CMatrix a(2, 3);
  EXPECT_THROW(LU{a}, std::invalid_argument);
}

TEST(LU, SolveMatrixRhs) {
  Prng rng(7);
  const CMatrix a = random_matrix(rng, 4, 4);
  const CMatrix b = random_matrix(rng, 4, 2);
  const auto x = LU(a).solve(b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(pph::linalg::norm_frobenius(a * (*x) - b), 0.0, 1e-9);
}

// ---- QR -------------------------------------------------------------------

class QRShapes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QRShapes, ThinQHasOrthonormalColumns) {
  auto [m, n] = GetParam();
  Prng rng(400 + m * 10 + n);
  const CMatrix a = random_matrix(rng, m, n);
  const CMatrix q = QR(a).thin_q();
  const CMatrix gram = q.adjoint() * q;
  EXPECT_NEAR(pph::linalg::norm_frobenius(gram - CMatrix::identity(std::min(m, n))), 0.0, 1e-10);
}

TEST_P(QRShapes, QTimesRReconstructsPermutedColumns) {
  auto [m, n] = GetParam();
  Prng rng(500 + m * 10 + n);
  const CMatrix a = random_matrix(rng, m, n);
  QR qr(a);
  const CMatrix qa = qr.thin_q() * qr.thin_r();
  // Q R equals A with columns permuted by the pivoting: column j of QR is
  // column perm()[j] of A.
  CMatrix ap(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t r = 0; r < m; ++r) ap(r, j) = a(r, qr.perm()[j]);
  EXPECT_NEAR(pph::linalg::norm_frobenius(qa - ap), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QRShapes,
                         ::testing::Values(std::make_pair<std::size_t, std::size_t>(3, 3),
                                           std::make_pair<std::size_t, std::size_t>(5, 3),
                                           std::make_pair<std::size_t, std::size_t>(8, 2),
                                           std::make_pair<std::size_t, std::size_t>(10, 7),
                                           std::make_pair<std::size_t, std::size_t>(4, 6)));

TEST(QR, LeastSquaresMatchesExactForSquare) {
  Prng rng(8);
  const CMatrix a = random_matrix(rng, 5, 5);
  const CVector b = random_vector(rng, 5);
  const auto x_qr = QR(a).solve_least_squares(b);
  const auto x_lu = LU(a).solve(b);
  ASSERT_TRUE(x_qr.has_value());
  ASSERT_TRUE(x_lu.has_value());
  EXPECT_LT(pph::linalg::distance2(*x_qr, *x_lu), 1e-8);
}

TEST(QR, LeastSquaresResidualOrthogonal) {
  Prng rng(9);
  const CMatrix a = random_matrix(rng, 8, 3);
  const CVector b = random_vector(rng, 8);
  const auto x = QR(a).solve_least_squares(b);
  ASSERT_TRUE(x.has_value());
  // Residual must be orthogonal to the column span: A^H (Ax - b) = 0.
  CVector r = a.apply(*x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  const CVector atr = a.adjoint().apply(r);
  EXPECT_LT(pph::linalg::norm2(atr), 1e-9);
}

TEST(QR, RankDetectsDeficiency) {
  Prng rng(10);
  CMatrix a = random_matrix(rng, 6, 3);
  // Make column 2 a copy of column 0.
  for (std::size_t r = 0; r < 6; ++r) a(r, 2) = a(r, 0);
  EXPECT_EQ(QR(a).rank(), 2u);
  const CMatrix full = random_matrix(rng, 6, 3);
  EXPECT_EQ(QR(full).rank(), 3u);
}

TEST(QR, OrthonormalizeColumnsSpansInput) {
  Prng rng(11);
  const CMatrix a = random_matrix(rng, 7, 3);
  const CMatrix q = pph::linalg::orthonormalize_columns(a);
  // Projection of A onto span(Q) must reproduce A.
  const CMatrix proj = q * (q.adjoint() * a);
  EXPECT_NEAR(pph::linalg::norm_frobenius(proj - a), 0.0, 1e-9);
}

TEST(QR, ZeroColumnHandled) {
  CMatrix a(3, 2);
  a(0, 1) = Complex{2, 0};
  QR qr(a);  // first column identically zero
  EXPECT_EQ(qr.rank(), 1u);
}

}  // namespace
