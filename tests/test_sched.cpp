// Tests for the parallel schedulers: static and dynamic runs must track
// every path exactly once and agree with the sequential baseline; the two
// policies must produce *identical* PathResult sets (the scheduler-
// independence invariant every new policy, including run_batch, must also
// satisfy); the dynamic protocol must survive worker death (failure
// injection); the parallel Pieri scheduler must reproduce the sequential
// solver's solution set on multiple worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/pieri_scheduler.hpp"
#include "sched/session.hpp"
#include "scheduler_fixture.hpp"

namespace {

namespace sched = pph::sched;
using pph::linalg::Complex;
using pph::schubert::PieriProblem;
using pph::testing::SchedulerTest;
using pph::util::Prng;

TEST_F(SchedulerTest, StaticCyclicMatchesSequential) {
  const auto report = sched::run_paths(workload_, 4, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  expect_matches_baseline(report);
  EXPECT_EQ(report.converged + report.diverged + report.failed, starts_.size());
}

TEST_F(SchedulerTest, StaticBlockMatchesSequential) {
  const auto report =
      sched::run_paths(workload_, 3,
                       sched::SessionOptions()
                           .with_policy(sched::Policy::kStatic)
                           .with_assignment(sched::StaticAssignment::kBlock));
  expect_matches_baseline(report);
}

TEST_F(SchedulerTest, StaticSingleRankDegeneratesToSequential) {
  const auto report = sched::run_paths(workload_, 1, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  expect_matches_baseline(report);
  EXPECT_GT(report.rank_busy_seconds[0], 0.0);
}

TEST_F(SchedulerTest, DynamicMatchesSequential) {
  const auto report = sched::run_paths(workload_, 4);
  expect_matches_baseline(report);
}

TEST_F(SchedulerTest, DynamicManyWorkers) {
  const auto report = sched::run_paths(workload_, 9);
  expect_matches_baseline(report);
  // Master does not track.
  EXPECT_EQ(report.rank_busy_seconds[0], 0.0);
}

TEST_F(SchedulerTest, DynamicRequiresTwoRanks) {
  EXPECT_THROW(sched::run_paths(workload_, 1), std::invalid_argument);
}

TEST_F(SchedulerTest, DynamicRejectsKillingTheMaster) {
  // The master can never be the kill target.
  const auto opts = sched::SessionOptions().with_kill_after(1, /*rank=*/0);
  EXPECT_THROW(sched::run_paths(workload_, 4, opts), std::invalid_argument);
}

TEST_F(SchedulerTest, DynamicRejectsOutOfRangeKillRank) {
  // Only ranks 1..3 exist.
  const auto opts = sched::SessionOptions().with_kill_after(1, /*rank=*/7);
  EXPECT_THROW(sched::run_paths(workload_, 4, opts), std::invalid_argument);
}

TEST_F(SchedulerTest, DynamicSurvivesWorkerDeath) {
  // Rank 2 dies on its 4th job.
  const auto opts = sched::SessionOptions().with_kill_after(3, /*rank=*/2);
  const auto report = sched::run_paths(workload_, 4, opts);
  // All paths still tracked exactly once, by the surviving workers.
  expect_matches_baseline(report);
  std::set<int> workers;
  for (const auto& tp : report.paths) workers.insert(tp.worker);
  EXPECT_TRUE(workers.count(1) == 1 && workers.count(3) == 1);
}

TEST_F(SchedulerTest, StatusTalliesAgreeAcrossSchedulers) {
  const auto st = sched::run_paths(workload_, 5, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  const auto dy = sched::run_paths(workload_, 5);
  EXPECT_EQ(status_multiset(st), status_multiset(dy));
  EXPECT_EQ(st.converged, dy.converged);
  EXPECT_EQ(st.diverged, dy.diverged);
}

TEST_F(SchedulerTest, StaticAndDynamicProduceIdenticalPathResults) {
  // The scheduler-independence invariant: policy changes who tracks a path
  // and when, never the numerics, so the PathResult sets must be identical
  // bit for bit (status, step counts, endpoints).
  const auto st = sched::run_paths(workload_, 4, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  const auto dy = sched::run_paths(workload_, 4);
  expect_identical_results(st, dy);
}

TEST_F(SchedulerTest, BusyTimesCoverAllRanks) {
  const auto report = sched::run_paths(workload_, 4, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  ASSERT_EQ(report.rank_busy_seconds.size(), 4u);
  for (const double b : report.rank_busy_seconds) EXPECT_GE(b, 0.0);
}

// ---- parallel Pieri --------------------------------------------------------

TEST(ParallelPieri, MatchesSequentialSolutionSet221) {
  const PieriProblem pb{2, 2, 1};
  pph::util::Prng rng(42);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto sequential = pph::schubert::solve_pieri(input);
  ASSERT_TRUE(sequential.complete());

  const auto parallel = sched::run_pieri(input, 4);
  EXPECT_TRUE(parallel.complete());
  ASSERT_EQ(parallel.solutions.size(), sequential.solutions.size());
  // Match solution sets within tolerance.
  for (const auto& ps : parallel.solutions) {
    double best = 1e18;
    for (const auto& ss : sequential.solutions) {
      best = std::min(best, pph::linalg::distance2(ps.coords(), ss.coords()));
    }
    EXPECT_LT(best, 1e-6);
  }
}

TEST(ParallelPieri, WorkerCountInvariance) {
  const PieriProblem pb{2, 2, 1};
  pph::util::Prng rng(43);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto two = sched::run_pieri(input, 2);
  const auto five = sched::run_pieri(input, 5);
  EXPECT_TRUE(two.complete());
  EXPECT_TRUE(five.complete());
  EXPECT_EQ(two.solutions.size(), five.solutions.size());
  EXPECT_EQ(two.total_jobs, five.total_jobs);
}

TEST(ParallelPieri, JobsPerLevelMatchPoset) {
  const PieriProblem pb{3, 2, 1};  // the Table III instance
  pph::util::Prng rng(44);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto report = sched::run_pieri(input, 3);
  EXPECT_TRUE(report.complete());
  pph::schubert::PatternPoset poset(pb);
  const auto expected = poset.jobs_per_level();
  ASSERT_EQ(report.jobs_per_level.size(), expected.size());
  // Retries can only add jobs; a clean run matches exactly.
  if (report.failures == 0 && report.total_jobs == poset.total_jobs()) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(report.jobs_per_level[i], expected[i]) << "level " << i + 1;
    }
  }
  EXPECT_EQ(report.solutions.size(), 55u);
}

TEST(ParallelPieri, PeakActiveInstancesBounded) {
  // The Pieri-tree memory argument (paper section III-C): the master never
  // holds more than a couple of poset levels' worth of instances.
  const PieriProblem pb{2, 2, 1};
  pph::util::Prng rng(45);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto report = sched::run_pieri(input, 3);
  pph::schubert::PatternPoset poset(pb);
  EXPECT_LE(report.peak_active_instances, poset.pattern_count());
  EXPECT_GT(report.peak_active_instances, 0u);
}

TEST(ParallelPieri, RequiresTwoRanks) {
  const PieriProblem pb{2, 2, 0};
  pph::util::Prng rng(46);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  EXPECT_THROW(sched::run_pieri(input, 1), std::invalid_argument);
}

TEST(ParallelPieri, DeformationDeterministic) {
  const std::vector<std::size_t> pivots{4, 7};
  const auto a = pph::sched::instance_deformation(7, pivots, 0);
  const auto b = pph::sched::instance_deformation(7, pivots, 0);
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.detour_s, b.detour_s);
  const auto c = pph::sched::instance_deformation(7, pivots, 1);
  EXPECT_NE(a.gamma, c.gamma);
  const auto d = pph::sched::instance_deformation(8, pivots, 0);
  EXPECT_NE(a.gamma, d.gamma);
}

}  // namespace
