// Tests for src/poly: monomial and polynomial arithmetic identities,
// canonical forms, differentiation, evaluation and Jacobians.

#include <gtest/gtest.h>

#include <cmath>

#include "poly/system.hpp"
#include "util/prng.hpp"

namespace {

using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::Monomial;
using pph::poly::Polynomial;
using pph::poly::PolySystem;
using pph::util::Prng;

CVector random_point(Prng& rng, std::size_t n) {
  CVector x(n);
  for (auto& v : x) v = rng.normal_complex();
  return x;
}

Polynomial random_polynomial(Prng& rng, std::size_t nvars, std::size_t nterms,
                             std::uint32_t max_deg) {
  std::vector<pph::poly::Term> terms;
  for (std::size_t t = 0; t < nterms; ++t) {
    Monomial m(nvars);
    for (std::size_t v = 0; v < nvars; ++v) {
      m.set_exponent(v, static_cast<std::uint32_t>(rng.uniform_index(max_deg + 1)));
    }
    terms.push_back({rng.normal_complex(), std::move(m)});
  }
  return Polynomial(nvars, std::move(terms));
}

TEST(Monomial, DegreeAndEvaluate) {
  Monomial m(3);
  m.set_exponent(0, 2);
  m.set_exponent(2, 1);
  EXPECT_EQ(m.degree(), 3u);
  CVector x{Complex{2, 0}, Complex{5, 0}, Complex{3, 0}};
  EXPECT_NEAR(std::abs(m.evaluate(x) - Complex{12.0, 0.0}), 0.0, 1e-14);
}

TEST(Monomial, ProductAddsExponents) {
  Monomial a = Monomial::variable(2, 0);
  Monomial b = Monomial::variable(2, 0);
  const Monomial c = a * b;
  EXPECT_EQ(c.exponent(0), 2u);
  EXPECT_EQ(c.exponent(1), 0u);
}

TEST(Monomial, DerivativeDropsPower) {
  Monomial m(2);
  m.set_exponent(0, 3);
  auto [mult, reduced] = m.derivative(0);
  EXPECT_EQ(mult, 3u);
  EXPECT_EQ(reduced.exponent(0), 2u);
  auto [zero_mult, same] = m.derivative(1);
  EXPECT_EQ(zero_mult, 0u);
  (void)same;
}

TEST(Monomial, ToStringReadable) {
  Monomial m(4);
  m.set_exponent(0, 2);
  m.set_exponent(3, 1);
  EXPECT_EQ(m.to_string(), "x0^2*x3");
  EXPECT_EQ(Monomial(2).to_string(), "1");
}

TEST(Polynomial, CombinesLikeTermsAndDropsZeros) {
  const std::size_t n = 2;
  Monomial x0 = Monomial::variable(n, 0);
  Polynomial p(n, {{Complex{1, 0}, x0}, {Complex{2, 0}, x0}, {Complex{0, 0}, Monomial(n)}});
  EXPECT_EQ(p.term_count(), 1u);
  EXPECT_EQ(p.terms()[0].coefficient, (Complex{3, 0}));
}

TEST(Polynomial, AdditionCancellation) {
  const std::size_t n = 1;
  Polynomial x = Polynomial::variable(n, 0);
  Polynomial zero = x - x;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.degree(), 0u);
}

TEST(Polynomial, ProductDegreeAdds) {
  Prng rng(1);
  const Polynomial a = random_polynomial(rng, 3, 4, 2);
  const Polynomial b = random_polynomial(rng, 3, 4, 3);
  if (!a.is_zero() && !b.is_zero()) {
    EXPECT_LE((a * b).degree(), a.degree() + b.degree());
  }
}

TEST(Polynomial, RingIdentitiesAtRandomPoints) {
  Prng rng(2);
  const std::size_t n = 3;
  const Polynomial a = random_polynomial(rng, n, 5, 3);
  const Polynomial b = random_polynomial(rng, n, 5, 3);
  const Polynomial c = random_polynomial(rng, n, 5, 3);
  for (int trial = 0; trial < 5; ++trial) {
    const CVector x = random_point(rng, n);
    const Complex lhs = ((a + b) * c).evaluate(x);
    const Complex rhs = (a * c + b * c).evaluate(x);
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
    const Complex comm = (a * b - b * a).evaluate(x);
    EXPECT_NEAR(std::abs(comm), 0.0, 1e-10);
  }
}

TEST(Polynomial, EvaluationMatchesHandComputation) {
  // p = (1+i) x0^2 x1 - 3.
  const std::size_t n = 2;
  Monomial m(n);
  m.set_exponent(0, 2);
  m.set_exponent(1, 1);
  Polynomial p(n, {{Complex{1, 1}, m}, {Complex{-3, 0}, Monomial(n)}});
  CVector x{Complex{2, 0}, Complex{0, 1}};
  // (1+i)*4*i - 3 = 4i + 4i^2 - 3 = -7 + 4i.
  EXPECT_NEAR(std::abs(p.evaluate(x) - Complex{-7, 4}), 0.0, 1e-13);
}

TEST(Polynomial, DerivativeLeibnizRule) {
  Prng rng(3);
  const std::size_t n = 2;
  const Polynomial a = random_polynomial(rng, n, 4, 2);
  const Polynomial b = random_polynomial(rng, n, 4, 2);
  for (std::size_t v = 0; v < n; ++v) {
    const Polynomial lhs = (a * b).derivative(v);
    const Polynomial rhs = a.derivative(v) * b + a * b.derivative(v);
    const CVector x = random_point(rng, n);
    EXPECT_NEAR(std::abs(lhs.evaluate(x) - rhs.evaluate(x)), 0.0,
                1e-9 * (1.0 + std::abs(lhs.evaluate(x))));
  }
}

TEST(Polynomial, GradientMatchesDerivativePolynomials) {
  Prng rng(4);
  const std::size_t n = 4;
  const Polynomial p = random_polynomial(rng, n, 8, 3);
  const CVector x = random_point(rng, n);
  const auto [value, grad] = p.evaluate_with_gradient(x);
  EXPECT_NEAR(std::abs(value - p.evaluate(x)), 0.0, 1e-10);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(std::abs(grad[v] - p.derivative(v).evaluate(x)), 0.0, 1e-9);
  }
}

TEST(Polynomial, GradientAtZeroCoordinate) {
  // Gradient path with x_v = 0 exercises the division-free branch.
  const std::size_t n = 2;
  Monomial m(n);
  m.set_exponent(0, 2);
  m.set_exponent(1, 1);
  Polynomial p(n, {{Complex{1, 0}, m}});
  CVector x{Complex{0, 0}, Complex{5, 0}};
  const auto [value, grad] = p.evaluate_with_gradient(x);
  EXPECT_EQ(value, (Complex{0, 0}));
  EXPECT_NEAR(std::abs(grad[0]), 0.0, 1e-14);          // 2*x0*x1 = 0
  EXPECT_NEAR(std::abs(grad[1] - Complex{0, 0}), 0.0, 1e-14);  // x0^2 = 0
}

TEST(PolySystem, DegreesAndTotalDegree) {
  const std::size_t n = 3;
  PolySystem sys(n);
  sys.add_equation(random_polynomial(*std::make_unique<Prng>(5), n, 3, 2));
  Monomial cubic(n);
  cubic.set_exponent(1, 3);
  sys.add_equation(Polynomial(n, {{Complex{1, 0}, cubic}}));
  sys.add_equation(Polynomial::variable(n, 2) - Polynomial::constant(n, Complex{1, 0}));
  const auto d = sys.degrees();
  EXPECT_EQ(d[1], 3u);
  EXPECT_EQ(d[2], 1u);
  EXPECT_EQ(sys.total_degree(), static_cast<unsigned long long>(d[0]) * 3ULL * 1ULL);
}

TEST(PolySystem, JacobianMatchesFiniteDifferences) {
  Prng rng(6);
  const std::size_t n = 3;
  PolySystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.add_equation(random_polynomial(rng, n, 6, 3));
  const CVector x = random_point(rng, n);
  const auto jac = sys.jacobian(x);
  const double h = 1e-7;
  for (std::size_t v = 0; v < n; ++v) {
    CVector xp = x;
    xp[v] += Complex{h, 0};
    const CVector fp = sys.evaluate(xp);
    const CVector f0 = sys.evaluate(x);
    for (std::size_t i = 0; i < n; ++i) {
      const Complex fd = (fp[i] - f0[i]) / h;
      EXPECT_NEAR(std::abs(jac(i, v) - fd), 0.0, 1e-4 * (1.0 + std::abs(fd)));
    }
  }
}

TEST(PolySystem, EvaluateWithJacobianConsistent) {
  Prng rng(7);
  const std::size_t n = 4;
  PolySystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.add_equation(random_polynomial(rng, n, 5, 2));
  const CVector x = random_point(rng, n);
  const auto [v, j] = sys.evaluate_with_jacobian(x);
  const CVector v2 = sys.evaluate(x);
  const auto j2 = sys.jacobian(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(v[i] - v2[i]), 0.0, 1e-12);
  EXPECT_NEAR(pph::linalg::norm_frobenius(j - j2), 0.0, 1e-12);
}

TEST(PolySystem, ResidualZeroAtConstructedRoot) {
  // System with the known root (1, 2): x0 - 1, x1 - 2.
  const std::size_t n = 2;
  PolySystem sys(n);
  sys.add_equation(Polynomial::variable(n, 0) - Polynomial::constant(n, Complex{1, 0}));
  sys.add_equation(Polynomial::variable(n, 1) - Polynomial::constant(n, Complex{2, 0}));
  EXPECT_NEAR(sys.residual({Complex{1, 0}, Complex{2, 0}}), 0.0, 1e-15);
  EXPECT_GT(sys.residual({Complex{0, 0}, Complex{0, 0}}), 1.0);
}

TEST(Deduplicate, MergesNearbyPoints) {
  std::vector<CVector> pts{{Complex{1, 0}}, {Complex{1 + 1e-9, 0}}, {Complex{2, 0}}};
  const auto reps = pph::poly::deduplicate_solutions(pts, 1e-6);
  EXPECT_EQ(reps.size(), 2u);
}

TEST(Deduplicate, KeepsDistinctPoints) {
  std::vector<CVector> pts{{Complex{1, 0}}, {Complex{1, 1e-3}}};
  EXPECT_EQ(pph::poly::deduplicate_solutions(pts, 1e-6).size(), 2u);
}

}  // namespace
