// Tests for the cluster simulator: conservation and bound invariants of
// both policies, the qualitative relationships the paper reports (dynamic
// beats static under high variance; the gap vanishes for uniform
// workloads), and the speedup-study table generation.

#include <gtest/gtest.h>

#include <numeric>

#include "simcluster/speedup.hpp"
#include "util/stats.hpp"

namespace {

using pph::simcluster::CommModel;
using pph::simcluster::SimAssignment;
using pph::simcluster::simulate_dynamic;
using pph::simcluster::simulate_static;
using pph::simcluster::WorkloadModel;
using pph::util::Prng;

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

TEST(Workload, SynthesizeSizeAndPositivity) {
  WorkloadModel m;
  m.jobs = 1000;
  m.divergent_fraction = 0.1;
  m.tail_mu = std::log(10.0);
  Prng rng(1);
  const auto d = pph::simcluster::synthesize(m, rng);
  EXPECT_EQ(d.size(), 1000u);
  for (const double x : d) EXPECT_GT(x, 0.0);
}

TEST(Workload, DivergentTailRaisesVariance) {
  WorkloadModel uniform;
  uniform.jobs = 5000;
  WorkloadModel tailed = uniform;
  tailed.divergent_fraction = 0.03;
  tailed.tail_mu = std::log(30.0);
  Prng r1(2), r2(2);
  const auto du = pph::simcluster::synthesize(uniform, r1);
  const auto dt = pph::simcluster::synthesize(tailed, r2);
  EXPECT_GT(pph::util::coefficient_of_variation(dt),
            2.0 * pph::util::coefficient_of_variation(du));
}

TEST(Workload, BootstrapScalesAndResamples) {
  Prng rng(3);
  const std::vector<double> measured{1.0, 2.0, 3.0};
  const auto d = pph::simcluster::bootstrap(measured, 1000, 10.0, rng);
  EXPECT_EQ(d.size(), 1000u);
  for (const double x : d) {
    EXPECT_TRUE(x == 10.0 || x == 20.0 || x == 30.0);
  }
}

TEST(Workload, PaperModelsMatchHeadlineNumbers) {
  Prng rng(4);
  const auto cyclic = pph::simcluster::cyclic10_model();
  EXPECT_EQ(cyclic.jobs, 35940u);
  const auto d = pph::simcluster::synthesize(cyclic, rng);
  // Sequential time should be in the ballpark of the paper's 480 CPU
  // minutes (28,800 s); the model is a calibration, so allow 25%.
  EXPECT_NEAR(total(d), 28800.0, 7200.0);

  const auto rps = pph::simcluster::rps_model();
  EXPECT_EQ(rps.jobs, 9216u);
  Prng rng2(5);
  const auto dr = pph::simcluster::synthesize(rps, rng2);
  // Paper extrapolates 3,111 CPU minutes (186,672 s).
  EXPECT_NEAR(total(dr), 186672.0, 46668.0);
}

// ---- invariants -------------------------------------------------------------

TEST(ScheduleSim, MakespanLowerBound) {
  Prng rng(6);
  WorkloadModel m;
  m.jobs = 2000;
  m.divergent_fraction = 0.05;
  m.tail_mu = std::log(20.0);
  const auto d = pph::simcluster::synthesize(m, rng);
  const double t1 = total(d);
  const double longest = *std::max_element(d.begin(), d.end());
  for (const std::size_t cpus : {2u, 8u, 32u}) {
    const auto st = simulate_static(d, cpus);
    const auto dy = simulate_dynamic(d, cpus);
    EXPECT_GE(st.makespan, t1 / cpus - 1e-9);
    EXPECT_GE(st.makespan, longest);
    EXPECT_GE(dy.makespan, t1 / cpus - 1e-9);  // conservative (master idle)
    EXPECT_GE(dy.makespan, longest);
  }
}

TEST(ScheduleSim, SingleCpuIsSequential) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(simulate_static(d, 1).makespan, 6.0);
  EXPECT_DOUBLE_EQ(simulate_dynamic(d, 1).makespan, 6.0);
}

TEST(ScheduleSim, DynamicNeverWorseThanStaticWithoutComm) {
  // With zero communication cost, list scheduling (dynamic) beats any
  // fixed pre-assignment up to the final-job boundary effect; compare with
  // a tolerance of one max-job.
  Prng rng(7);
  WorkloadModel m;
  m.jobs = 3000;
  m.divergent_fraction = 0.04;
  m.tail_mu = std::log(25.0);
  const auto d = pph::simcluster::synthesize(m, rng);
  const double longest = *std::max_element(d.begin(), d.end());
  for (const std::size_t cpus : {4u, 16u, 64u}) {
    const auto st = simulate_static(d, cpus);
    const auto dy = simulate_dynamic(d, cpus);  // same worker count
    EXPECT_LE(dy.makespan, st.makespan + longest);
  }
}

TEST(ScheduleSim, DispatchOverheadCapsDynamicScaling) {
  const std::vector<double> d(1000, 1.0);
  CommModel free, costly;
  costly.dispatch_overhead = 0.5;  // the master can serve at most 2 jobs/s
  const auto fast = simulate_dynamic(d, 64, free);
  const auto slow = simulate_dynamic(d, 64, costly);
  EXPECT_GT(slow.makespan, fast.makespan);
  EXPECT_GE(slow.makespan, 1000 * 0.5 - 1e-9);  // master serialization bound
}

TEST(ScheduleSim, CyclicAssignmentBeatsBlockOnClusteredTail) {
  // Divergent paths arrive in contiguous runs, so block assignment dumps
  // whole clusters on single CPUs while cyclic interleaving spreads them.
  Prng rng(8);
  WorkloadModel m;
  m.jobs = 8000;
  m.divergent_fraction = 0.05;
  m.tail_mu = std::log(30.0);
  m.cluster_size = 64;
  const auto d = pph::simcluster::synthesize(m, rng);
  const auto block = simulate_static(d, 32, SimAssignment::kBlock);
  const auto cyclic = simulate_static(d, 32, SimAssignment::kCyclic);
  EXPECT_LT(cyclic.makespan, block.makespan);
}

TEST(ScheduleSim, IdleFractionGrowsWithImbalance) {
  Prng rng(9);
  WorkloadModel skewed;
  skewed.jobs = 1000;
  skewed.divergent_fraction = 0.02;
  skewed.tail_mu = std::log(100.0);
  const auto d = pph::simcluster::synthesize(skewed, rng);
  const auto st = simulate_static(d, 32, SimAssignment::kBlock);
  const auto dy = simulate_dynamic(d, 32);
  EXPECT_GT(st.idle_fraction, dy.idle_fraction);
}

// ---- paper-shape relationships ----------------------------------------------

TEST(SpeedupStudy, HighVarianceFavoursDynamicIncreasinglyWithCpus) {
  Prng rng(10);
  const auto d = pph::simcluster::synthesize(pph::simcluster::cyclic10_model(), rng);
  CommModel comm;
  comm.dispatch_overhead = 0.004;
  comm.message_latency = 0.002;
  const auto study =
      pph::simcluster::run_speedup_study(d, {8, 16, 32, 64, 128}, comm, SimAssignment::kBlock);
  // Dynamic wins everywhere, and the improvement grows with the CPU count
  // (paper: 11.75% at 8 CPUs up to 35.11% at 128).
  for (const auto& row : study.rows) EXPECT_GT(row.improvement_pct, 0.0) << row.cpus;
  EXPECT_GT(study.rows.back().improvement_pct, study.rows.front().improvement_pct);
}

TEST(SpeedupStudy, UniformDivergentWorkloadShowsSmallImprovement) {
  Prng rng(11);
  const auto d = pph::simcluster::synthesize(pph::simcluster::rps_model(), rng);
  CommModel comm;
  comm.dispatch_overhead = 0.004;
  comm.message_latency = 0.002;
  const auto study =
      pph::simcluster::run_speedup_study(d, {8, 16, 32, 64, 128}, comm, SimAssignment::kBlock);
  // Low variance: improvement stays in single digits (paper: -1.5%..12%).
  for (const auto& row : study.rows) {
    EXPECT_LT(std::abs(row.improvement_pct), 15.0) << row.cpus;
  }
}

TEST(ScheduleSim, GuidedBetweenStaticAndDynamic) {
  Prng rng(21);
  WorkloadModel m;
  m.jobs = 5000;
  m.divergent_fraction = 0.03;
  m.tail_mu = std::log(25.0);
  m.cluster_size = 8;
  const auto d = pph::simcluster::synthesize(m, rng);
  CommModel comm;
  const auto st = simulate_static(d, 64, SimAssignment::kBlock);
  const auto g = pph::simcluster::simulate_guided(d, 64, comm);
  const auto dy = simulate_dynamic(d, 64, comm);
  // With zero comm cost: dynamic <= guided (finer grain balances better)
  // and guided <= static block within a one-max-job boundary.
  const double longest = *std::max_element(d.begin(), d.end());
  EXPECT_LE(dy.makespan, g.makespan + longest);
  EXPECT_LE(g.makespan, st.makespan + longest);
}

TEST(ScheduleSim, GuidedFewerDispatchesThanDynamic) {
  const std::vector<double> d(2000, 1.0);
  CommModel comm;
  comm.dispatch_overhead = 0.001;
  const auto g = pph::simcluster::simulate_guided(d, 16, comm);
  const auto dy = simulate_dynamic(d, 16, comm);
  EXPECT_LT(g.master_busy, dy.master_busy);
}

TEST(ScheduleSim, GuidedSingleCpuSequential) {
  const std::vector<double> d{1.0, 2.0};
  EXPECT_DOUBLE_EQ(pph::simcluster::simulate_guided(d, 1).makespan, 3.0);
}

// ---- batched dispatch with work stealing ------------------------------------

TEST(ScheduleSim, BatchStealSingleCpuSequential) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pph::simcluster::simulate_batch_steal(d, 1).makespan, 6.0);
}

TEST(ScheduleSim, BatchStealRespectsBounds) {
  Prng rng(22);
  WorkloadModel m;
  m.jobs = 3000;
  m.divergent_fraction = 0.04;
  m.tail_mu = std::log(25.0);
  const auto d = pph::simcluster::synthesize(m, rng);
  const double t1 = total(d);
  const double longest = *std::max_element(d.begin(), d.end());
  for (const std::size_t cpus : {4u, 16u, 64u}) {
    const auto out = pph::simcluster::simulate_batch_steal(d, cpus);
    EXPECT_GE(out.makespan, t1 / static_cast<double>(cpus) - 1e-9);
    EXPECT_GE(out.makespan, longest);
  }
}

TEST(ScheduleSim, BatchStealForcedByHugeFirstChunk) {
  // min_chunk larger than jobs/cpus concentrates the pool on the first
  // workers; the rest can only refill by stealing.
  const std::vector<double> d(16, 1.0);
  CommModel comm;
  const auto out = pph::simcluster::simulate_batch_steal(d, 3, comm, 2.0, 8);
  EXPECT_GE(out.steals, 1u);
  EXPECT_EQ(out.dispatches, 2u);  // 8 + 8 jobs hand the whole pool to two workers
  EXPECT_GT(out.makespan, 0.0);
}

TEST(ScheduleSim, BatchStealBeatsPerJobDynamicAtHighLatency) {
  // The tentpole claim, in the simulator: at 1 ms+ per message, per-job
  // round trips serialize on the master while batches amortize them.
  const std::vector<double> d(2000, 0.01);
  CommModel comm;
  comm.dispatch_overhead = 0.0005;
  comm.message_latency = 0.001;
  const auto dy = simulate_dynamic(d, 16, comm);
  const auto bs = pph::simcluster::simulate_batch_steal(d, 16, comm);
  EXPECT_LT(bs.makespan, dy.makespan);
  EXPECT_LT(bs.dispatches, dy.dispatches);
}

TEST(ScheduleSim, BatchStealNearDynamicWithFreeComm) {
  // With free communication, per-job dynamic is the balance optimum; batch
  // stealing must stay within a boundary effect of it on a heavy tail.
  Prng rng(23);
  WorkloadModel m;
  m.jobs = 4000;
  m.divergent_fraction = 0.03;
  m.tail_mu = std::log(25.0);
  const auto d = pph::simcluster::synthesize(m, rng);
  const double longest = *std::max_element(d.begin(), d.end());
  const auto dy = simulate_dynamic(d, 32);
  const auto bs = pph::simcluster::simulate_batch_steal(d, 32);
  EXPECT_LE(bs.makespan, dy.makespan + 2.0 * longest);
}

TEST(SpeedupStudy, TableRendering) {
  Prng rng(12);
  WorkloadModel m;
  m.jobs = 500;
  const auto d = pph::simcluster::synthesize(m, rng);
  const auto study = pph::simcluster::run_speedup_study(d, {2, 4});
  const auto table = pph::simcluster::to_table(study, "demo");
  const std::string s = table.to_string();
  EXPECT_NE(s.find("#CPUs"), std::string::npos);
  EXPECT_NE(s.find("improvement"), std::string::npos);
  const std::string fig = pph::simcluster::to_figure_series(study, "fig");
  EXPECT_NE(fig.find("optimal"), std::string::npos);
}

TEST(ScheduleSim, PolicyEnumSelectsTheMatchingSimulator) {
  // The unified entry point (DESIGN.md section 7): the sched::Policy enum
  // selects the same simulation the per-policy functions run, so a real
  // session and its simulated projection are keyed by one type.
  Prng rng(21);
  WorkloadModel m;
  m.jobs = 2000;
  m.divergent_fraction = 0.05;
  const auto d = pph::simcluster::synthesize(m, rng);
  CommModel comm;
  comm.dispatch_overhead = 0.001;
  comm.message_latency = 0.002;
  pph::simcluster::SimPolicyOptions opts;
  opts.assignment = SimAssignment::kCyclic;
  opts.factor = 3.0;

  const auto st = pph::simcluster::simulate(pph::sched::Policy::kStatic, d, 16, comm, opts);
  EXPECT_EQ(st.makespan, simulate_static(d, 16, SimAssignment::kCyclic).makespan);
  const auto dy = pph::simcluster::simulate(pph::sched::Policy::kFCFS, d, 16, comm, opts);
  EXPECT_EQ(dy.makespan, simulate_dynamic(d, 16, comm).makespan);
  EXPECT_EQ(dy.dispatches, d.size());
  const auto bs =
      pph::simcluster::simulate(pph::sched::Policy::kBatchSteal, d, 16, comm, opts);
  EXPECT_EQ(bs.makespan,
            pph::simcluster::simulate_batch_steal(d, 16, comm, 3.0, 1).makespan);
}

TEST(SpeedupStudy, SpeedupMonotoneInCpus) {
  Prng rng(13);
  WorkloadModel m;
  m.jobs = 10000;
  m.divergent_fraction = 0.02;
  m.tail_mu = std::log(15.0);
  const auto d = pph::simcluster::synthesize(m, rng);
  const auto study = pph::simcluster::run_speedup_study(d, {1, 2, 4, 8, 16, 32});
  for (std::size_t i = 1; i < study.rows.size(); ++i) {
    EXPECT_GE(study.rows[i].dynamic_speedup, study.rows[i - 1].dynamic_speedup * 0.95);
  }
}

}  // namespace
