// Tests for the unified scheduler sessions (sched/session.hpp): the
// JobSource x Policy x ResultSink composition must reproduce the legacy
// entry points bit for bit (the legacy-equivalence tests below deliberately
// call the deprecated wrappers; the pragma scopes the opt-out), the Pieri tree source must ride both dispatch
// policies with one solution set, the kill-switch fail injection must cover
// the Pieri scheduler (death re-queue), and the checkpoint control
// (stop_after_results) must stop a session early without losing results.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/batch_scheduler.hpp"
#include "sched/dynamic_scheduler.hpp"
#include "sched/pieri_scheduler.hpp"
#include "sched/static_scheduler.hpp"
#include "scheduler_fixture.hpp"

namespace {

using pph::linalg::Complex;
using pph::schubert::PieriProblem;
using pph::sched::Policy;
using pph::sched::SessionOptions;
using pph::testing::SchedulerTest;
using pph::util::Prng;

// ---- the facade vs the legacy wrappers --------------------------------------
// The wrappers are deprecated; these equivalence tests are the one place
// that still calls them ON PURPOSE, to pin the facade to the legacy
// behavior bit for bit.  The pragma scopes the opt-out to exactly here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST_F(SchedulerTest, RunPathsFcfsMatchesLegacyDynamic) {
  SessionOptions opts;
  opts.policy = Policy::kFCFS;
  const auto session = pph::sched::run_paths(workload_, 4, opts);
  const auto legacy = pph::sched::run_dynamic(workload_, 4);
  expect_identical_results(session, legacy);
}

TEST_F(SchedulerTest, RunPathsStaticMatchesLegacyStatic) {
  SessionOptions opts;
  opts.policy = Policy::kStatic;
  opts.assignment = pph::sched::StaticAssignment::kBlock;
  const auto session = pph::sched::run_paths(workload_, 3, opts);
  const auto legacy = pph::sched::run_static(workload_, 3, pph::sched::StaticAssignment::kBlock);
  expect_identical_results(session, legacy);
}

TEST_F(SchedulerTest, RunPathsBatchStealMatchesLegacyBatch) {
  SessionOptions opts;
  opts.policy = Policy::kBatchSteal;
  const auto session = pph::sched::run_paths(workload_, 4, opts);
  const auto legacy = pph::sched::run_batch(workload_, 4);
  expect_identical_results(session, legacy);
}

#pragma GCC diagnostic pop

TEST_F(SchedulerTest, FcfsHonorsInitialJobsPerSlave) {
  SessionOptions opts;
  opts.policy = Policy::kFCFS;
  opts.initial_jobs_per_slave = 3;
  const auto report = pph::sched::run_paths(workload_, 4, opts);
  expect_matches_baseline(report);
}

// ---- checkpoint control -----------------------------------------------------

TEST_F(SchedulerTest, StopAfterResultsStopsEarly) {
  pph::sched::VectorJobSource source(workload_);
  pph::sched::InMemoryReportSink sink;
  SessionOptions opts;
  opts.stop_after_results = 10;
  pph::sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_GE(stats.accepted, 10u);
  EXPECT_LT(stats.accepted, starts_.size());
  const auto report = sink.report(stats);
  // Every accepted result is a real, correctly tracked path.
  for (const auto& tp : report.paths) {
    EXPECT_EQ(static_cast<int>(tp.result.status),
              static_cast<int>(baseline_[tp.index].status));
  }
}

TEST_F(SchedulerTest, StaticPolicyRejectsEarlyStop) {
  SessionOptions opts;
  opts.policy = Policy::kStatic;
  opts.stop_after_results = 10;
  EXPECT_THROW(pph::sched::run_paths(workload_, 3, opts), std::invalid_argument);
}

// ---- the Pieri tree on both policies ---------------------------------------

// Two runs must produce equal canonical solution keys -- tracking is
// deterministic per edge, so the policies must agree to the bit.  The key
// comes from the shared sched::canonical_solution_set (the same helper the
// ablation bench's CI guard uses, so the checks cannot drift).
using pph::sched::canonical_solution_set;

TEST(ParallelPieriSession, BatchStealMatchesFcfsSolutionSet) {
  const PieriProblem pb{2, 2, 1};
  Prng rng(42);
  const auto input = pph::schubert::random_pieri_input(pb, rng);

  const auto fcfs = pph::sched::run_pieri(input, 4);
  ASSERT_TRUE(fcfs.complete());

  pph::sched::ParallelPieriOptions opts;
  opts.policy = Policy::kBatchSteal;
  const auto batch = pph::sched::run_pieri(input, 4, opts);
  EXPECT_TRUE(batch.complete());
  EXPECT_EQ(batch.total_jobs, fcfs.total_jobs);
  EXPECT_EQ(batch.jobs_per_level, fcfs.jobs_per_level);
  // Per-job FCFS dispatches every job exactly once (the baseline the
  // (3,2,1) batching test below measures against).
  EXPECT_EQ(fcfs.dispatches, fcfs.total_jobs);

  // Identical solution sets, bit for bit.
  const auto a = canonical_solution_set(fcfs.solutions);
  const auto b = canonical_solution_set(batch.solutions);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      EXPECT_EQ(a[i][k].real(), b[i][k].real());
      EXPECT_EQ(a[i][k].imag(), b[i][k].imag());
    }
  }
}

TEST(ParallelPieriSession, BatchStealBatchesDispatches) {
  // Level batches: the batch policy must hand out fewer, larger messages
  // than per-job FCFS on the same tree.  A clean FCFS run dispatches every
  // job exactly once (dispatches == total_jobs, and job counts are
  // policy-invariant -- asserted on the smaller tree above), so the
  // per-job baseline is total_jobs: no second full solve needed, which
  // keeps this suite inside the sanitizer-leg time budget.
  const PieriProblem pb{3, 2, 1};  // 252 jobs
  Prng rng(44);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.policy = Policy::kBatchSteal;
  const auto batch = pph::sched::run_pieri(input, 4, opts);
  ASSERT_TRUE(batch.complete());
  EXPECT_LT(batch.dispatches, (batch.total_jobs * 2) / 3);
}

TEST(ParallelPieriSession, RejectsStaticPolicy) {
  const PieriProblem pb{2, 2, 0};
  Prng rng(46);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.policy = Policy::kStatic;
  EXPECT_THROW(pph::sched::run_pieri(input, 3, opts), std::invalid_argument);
}

// ---- Pieri fail injection (the satellite: the Pieri path was the only
// scheduler without failure coverage) ----------------------------------------

TEST(ParallelPieriSession, SurvivesWorkerDeathUnderFcfs) {
  const PieriProblem pb{2, 2, 1};
  Prng rng(42);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto healthy = pph::sched::run_pieri(input, 4);
  ASSERT_TRUE(healthy.complete());

  pph::sched::ParallelPieriOptions opts;
  opts.kill_slave_rank = 2;
  opts.kill_slave_after_jobs = 3;  // rank 2 dies on its 4th edge
  const auto report = pph::sched::run_pieri(input, 4, opts);
  // The master re-queues the dead slave's edges; the survivors finish the
  // tree with the full solution set.
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.solutions.size(), healthy.solutions.size());
  const auto a = canonical_solution_set(healthy.solutions);
  const auto b = canonical_solution_set(report.solutions);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ParallelPieriSession, SurvivesWorkerDeathUnderBatchSteal) {
  const PieriProblem pb{2, 2, 1};
  Prng rng(43);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.policy = Policy::kBatchSteal;
  opts.kill_slave_rank = 1;
  opts.kill_slave_after_jobs = 2;
  const auto report = pph::sched::run_pieri(input, 4, opts);
  EXPECT_TRUE(report.complete());
}

TEST(ParallelPieriSession, RejectsKillingTheMaster) {
  const PieriProblem pb{2, 2, 0};
  Prng rng(46);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.kill_slave_rank = 0;
  opts.kill_slave_after_jobs = 1;
  EXPECT_THROW(pph::sched::run_pieri(input, 4, opts), std::invalid_argument);
}

TEST(ParallelPieriSession, RejectsOutOfRangeKillRank) {
  const PieriProblem pb{2, 2, 0};
  Prng rng(46);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions opts;
  opts.kill_slave_rank = 9;
  opts.kill_slave_after_jobs = 1;
  EXPECT_THROW(pph::sched::run_pieri(input, 4, opts), std::invalid_argument);
}

}  // namespace
