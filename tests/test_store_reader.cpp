// Tests for the result-store query subsystem (src/store/): the shared
// line codec (v1-v3 headers, lazy RecordView decode), the mmap-indexed
// StoreReader (footer O(1) access, streaming-scan fallback with exactly
// the legacy loader's tolerance contract), sharded MultiStoreReader,
// store::scan determinism across thread counts, and the analytics
// (summary, per-level rates, decade histograms, global dedup).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "sched/pieri_scheduler.hpp"
#include "sched/result_store.hpp"
#include "store/analytics.hpp"
#include "store/parallel_scan.hpp"
#include "store/store_reader.hpp"

namespace {

using pph::homotopy::PathStatus;
using pph::sched::JsonlStoreSink;
using pph::sched::TrackedPath;
using pph::store::MultiStoreReader;
using pph::store::ReaderOptions;
using pph::store::StoreMeta;
using pph::store::StoreReader;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TrackedPath sample_record(std::size_t id, PathStatus status) {
  TrackedPath tp;
  tp.index = id;
  tp.worker = static_cast<int>(id % 5) + 1;
  tp.seconds = 0.001 * static_cast<double>(id + 1);
  tp.level = static_cast<std::uint32_t>(id % 3);
  tp.result.status = status;
  tp.result.t_reached = status == PathStatus::kConverged ? 1.0 : 0.75;
  tp.result.residual = 1e-12 * static_cast<double>(id + 1);
  tp.result.last_step = 0.01;
  tp.result.steps = 100 + id;
  tp.result.rejections = id % 7;
  tp.result.newton_iterations = 300 + id;
  tp.result.rescued = id % 4 == 0;
  tp.result.rescue_attempts = id % 4 == 0 ? 1 : 0;
  tp.result.x = {{1.0 + static_cast<double>(id), -2.0}, {0.5, 1e-3}};
  return tp;
}

/// Write a clean store with `n` records (footer iff finish).
void write_store(const std::string& path, std::size_t n, bool finish,
                 StoreMeta meta = {}) {
  std::remove(path.c_str());
  JsonlStoreSink sink(path, /*resume=*/false, std::move(meta));
  for (std::size_t i = 0; i < n; ++i) {
    sink.accept(sample_record(i, i % 3 == 2 ? PathStatus::kDiverged
                                            : PathStatus::kConverged));
  }
  if (finish) sink.finish();
}

// ---- open-state edge cases --------------------------------------------------

TEST(StoreReader, MissingFileIsEmptyAndClean) {
  const StoreReader reader(temp_path("reader_missing.jsonl"));
  EXPECT_FALSE(reader.exists());
  EXPECT_EQ(reader.version(), 0);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_FALSE(reader.indexed());
  EXPECT_EQ(reader.append_offset(), 0u);
}

TEST(StoreReader, ZeroLengthFileIsEmptyAndClean) {
  const std::string path = temp_path("reader_zero.jsonl");
  { std::ofstream out(path, std::ios::binary); }
  const StoreReader reader(path);
  EXPECT_TRUE(reader.exists());
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.append_offset(), 0u);
}

TEST(StoreReader, GarbageHeaderIsEmptyTruncated) {
  const std::string path = temp_path("reader_garbage.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a store\n";
  }
  const StoreReader reader(path);
  EXPECT_EQ(reader.version(), 0);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.append_offset(), 0u);
}

TEST(StoreReader, HeaderOnlyStoreIsEmptyAndClean) {
  const std::string path = temp_path("reader_headeronly.jsonl");
  write_store(path, 0, /*finish=*/false);
  const StoreReader reader(path);
  EXPECT_EQ(reader.version(), pph::store::kFormatVersion);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_GT(reader.append_offset(), 0u);
}

// ---- footer-indexed path ----------------------------------------------------

TEST(StoreReader, FooterIndexedRandomAccess) {
  const std::string path = temp_path("reader_indexed.jsonl");
  StoreMeta meta;
  meta.policy = "fcfs";
  meta.ranks = 4;
  meta.seed = 1234;
  write_store(path, 20, /*finish=*/true, meta);

  const StoreReader reader(path);
  EXPECT_TRUE(reader.indexed());
  EXPECT_TRUE(reader.footer_seen());
  EXPECT_FALSE(reader.truncated());
  ASSERT_EQ(reader.size(), 20u);
  EXPECT_EQ(reader.min_id(), 0u);
  EXPECT_EQ(reader.max_id(), 19u);
  EXPECT_EQ(reader.meta().policy, "fcfs");
  EXPECT_EQ(reader.meta().ranks, 4);
  EXPECT_EQ(reader.meta().seed, 1234u);

  // O(1) access: any i, in any order, without touching other records.
  for (const std::size_t i : {std::size_t{19}, std::size_t{0}, std::size_t{7}}) {
    EXPECT_EQ(reader.id_at(i), i);
    EXPECT_EQ(reader.record(i).id(), i);
    const TrackedPath expect = sample_record(i, i % 3 == 2 ? PathStatus::kDiverged
                                                           : PathStatus::kConverged);
    const TrackedPath got = reader.load(i);
    EXPECT_EQ(got.index, expect.index);
    EXPECT_EQ(got.level, expect.level);
    EXPECT_TRUE(same_bits(got.result.residual, expect.result.residual));
    ASSERT_EQ(got.result.x.size(), expect.result.x.size());
  }
  EXPECT_EQ(reader.find(13).value_or(999), 13u);
  EXPECT_FALSE(reader.find(555).has_value());
}

TEST(StoreReader, ScanFallbackMatchesIndexedView) {
  const std::string indexed = temp_path("reader_fscan_a.jsonl");
  const std::string scanned = temp_path("reader_fscan_b.jsonl");
  write_store(indexed, 12, /*finish=*/true);
  write_store(scanned, 12, /*finish=*/false);  // killed before the footer

  const StoreReader a(indexed);
  const StoreReader b(scanned);
  EXPECT_TRUE(a.indexed());
  EXPECT_FALSE(b.indexed());
  EXPECT_FALSE(b.footer_seen());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(i).line(), b.record(i).line()) << "record " << i;
  }
}

// ---- streaming-scan tolerance contract --------------------------------------

TEST(StoreReader, PartialTailDroppedLikeLegacyLoader) {
  const std::string path = temp_path("reader_partial.jsonl");
  write_store(path, 5, /*finish=*/false);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::string partial =
        pph::sched::store_record_line(sample_record(99, PathStatus::kFailed));
    out << partial.substr(0, partial.size() / 2);
  }
  const StoreReader reader(path);
  EXPECT_TRUE(reader.truncated());
  ASSERT_EQ(reader.size(), 5u);

  // Same verdict and append offset as the legacy loader contract.
  const auto load = pph::sched::load_result_store(path);
  EXPECT_TRUE(load.truncated);
  EXPECT_EQ(load.records.size(), 5u);
  EXPECT_EQ(load.append_offset, reader.append_offset());
}

TEST(StoreReader, GarbageMidFileStopsTheScan) {
  const std::string path = temp_path("reader_midgarbage.jsonl");
  write_store(path, 3, /*finish=*/false);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"i\":99,\"w\":garbage}\n";
    const std::string tail =
        pph::sched::store_record_line(sample_record(50, PathStatus::kConverged));
    out << tail << "\n";
  }
  const StoreReader reader(path);
  EXPECT_TRUE(reader.truncated());
  // Records after the corrupt line are unreachable -- exactly the legacy
  // loader's behavior (a resuming writer truncates there and re-tracks).
  ASSERT_EQ(reader.size(), 3u);
  const auto load = pph::sched::load_result_store(path);
  EXPECT_EQ(load.records.size(), 3u);
  EXPECT_EQ(load.append_offset, reader.append_offset());
}

TEST(StoreReader, CorruptFooterFallsBackToScan) {
  const std::string path = temp_path("reader_badfooter.jsonl");
  write_store(path, 4, /*finish=*/false);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"footer\":{\"records\":4,\"offsets\":[[0,1]]}}\n";  // count mismatch
  }
  const StoreReader reader(path);
  EXPECT_FALSE(reader.indexed());
  EXPECT_TRUE(reader.footer_seen());  // a footer line exists, it just lies
  ASSERT_EQ(reader.size(), 4u);
}

TEST(StoreReader, DuplicateIdsFirstOccurrenceWins) {
  const std::string path = temp_path("reader_dupes.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    TrackedPath first = sample_record(7, PathStatus::kConverged);
    first.worker = 1;
    sink.accept(first);
    TrackedPath repeat = sample_record(7, PathStatus::kConverged);
    repeat.worker = 2;
    sink.accept(repeat);
    sink.finish();
  }
  for (const bool use_mmap : {true, false}) {
    const StoreReader reader(path, ReaderOptions{use_mmap});
    ASSERT_EQ(reader.size(), 1u);
    EXPECT_EQ(reader.duplicates_dropped(), 1u);
    EXPECT_EQ(reader.load(0).worker, 1);
  }
}

// ---- lazy decode ------------------------------------------------------------

TEST(StoreReader, NanRoundTripsBitExactThroughLazyDecode) {
  const std::string path = temp_path("reader_nan.jsonl");
  std::remove(path.c_str());
  TrackedPath tp = sample_record(3, PathStatus::kDiverged);
  tp.result.residual = std::numeric_limits<double>::quiet_NaN();
  tp.result.x = {{std::nan("0x5"), std::numeric_limits<double>::infinity()},
                 {-0.0, std::numeric_limits<double>::denorm_min()}};
  {
    JsonlStoreSink sink(path);
    sink.accept(tp);
    sink.finish();
  }
  const StoreReader reader(path);
  ASSERT_EQ(reader.size(), 1u);
  const auto view = reader.record(0);
  // Scalar prefix decodes without touching the endpoint...
  EXPECT_TRUE(same_bits(view.fields().residual, tp.result.residual));
  // ...and the endpoint decodes bit-exactly on demand.
  ASSERT_EQ(view.endpoint_dim(), 2u);
  const auto x = view.endpoint();
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_TRUE(same_bits(x[k].real(), tp.result.x[k].real()));
    EXPECT_TRUE(same_bits(x[k].imag(), tp.result.x[k].imag()));
  }
}

TEST(StoreReader, MmapAndBufferedPathsAgree) {
  const std::string path = temp_path("reader_paths.jsonl");
  write_store(path, 9, /*finish=*/true);
  const StoreReader mapped(path, ReaderOptions{true});
  const StoreReader buffered(path, ReaderOptions{false});
  ASSERT_EQ(mapped.size(), buffered.size());
  EXPECT_EQ(mapped.indexed(), buffered.indexed());
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    EXPECT_EQ(mapped.record(i).line(), buffered.record(i).line());
  }
}

// ---- format versions --------------------------------------------------------

TEST(StoreCodec, HeaderMetaRoundTrips) {
  StoreMeta meta;
  meta.policy = "batch-steal";
  meta.ranks = 16;
  meta.seed = 987654321;
  const auto parsed = pph::store::parse_header(pph::store::header_line(meta));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, pph::store::kFormatVersion);
  EXPECT_EQ(parsed->meta.policy, "batch-steal");
  EXPECT_EQ(parsed->meta.ranks, 16);
  EXPECT_EQ(parsed->meta.seed, 987654321u);
}

TEST(StoreCodec, AcceptsBareV1AndV2Headers) {
  const auto v1 = pph::store::parse_header("{\"pph_result_store\":{\"version\":1}}");
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->version, 1);
  const auto v2 = pph::store::parse_header("{\"pph_result_store\":{\"version\":2}}");
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->version, 2);
  EXPECT_FALSE(pph::store::parse_header("{\"pph_result_store\":{\"version\":4}}"));
  EXPECT_FALSE(pph::store::parse_header("{\"pph_result_store\":{\"version\":0}}"));
}

TEST(StoreCodec, FooterCarriesRecordCountAndIdRange) {
  const std::vector<std::pair<pph::store::JobId, std::uint64_t>> offsets = {
      {5, 40}, {2, 80}, {9, 120}};
  const auto parsed = pph::store::parse_footer(pph::store::footer_line(offsets));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records, 3u);
  EXPECT_TRUE(parsed->has_id_range);
  EXPECT_EQ(parsed->min_id, 2u);
  EXPECT_EQ(parsed->max_id, 9u);
  ASSERT_EQ(parsed->offsets.size(), 3u);

  // The v2 footer form (no id range) still parses.
  const auto legacy = pph::store::parse_footer(
      "{\"footer\":{\"records\":1,\"offsets\":[[0,40]]}}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_FALSE(legacy->has_id_range);
}

TEST(StoreReader, ReadsOlderFormatVersions) {
  for (const int version : {1, 2}) {
    const std::string path =
        temp_path("reader_v" + std::to_string(version) + ".jsonl");
    TrackedPath tp = sample_record(11, PathStatus::kConverged);
    tp.level = 0;
    if (version == 1) {
      tp.result.last_step = 0.0;
      tp.result.rescue_attempts = 0;
      tp.result.rescued = false;
    }
    {
      std::ofstream out(path, std::ios::binary);
      out << "{\"pph_result_store\":{\"version\":" << version << "}}\n";
      std::string line;
      pph::store::append_record_line(line, tp, version);
      out << line << "\n";
    }
    const StoreReader reader(path);
    EXPECT_EQ(reader.version(), version);
    ASSERT_EQ(reader.size(), 1u) << "version " << version;
    const TrackedPath got = reader.load(0);
    EXPECT_EQ(got.index, 11u);
    EXPECT_EQ(got.level, 0u);
    EXPECT_TRUE(same_bits(got.result.residual, tp.result.residual));
    if (version >= 2) {
      EXPECT_TRUE(same_bits(got.result.last_step, tp.result.last_step));
    }
  }
}

TEST(StoreCodec, OldVersionsCannotCarryNewFields) {
  TrackedPath leveled = sample_record(1, PathStatus::kConverged);
  leveled.level = 3;
  std::string line;
  EXPECT_THROW(pph::store::append_record_line(line, leveled, 2), std::invalid_argument);
  TrackedPath rescued = sample_record(1, PathStatus::kConverged);
  rescued.level = 0;
  rescued.result.rescued = true;
  EXPECT_THROW(pph::store::append_record_line(line, rescued, 1), std::invalid_argument);
}

// ---- sharded stores ---------------------------------------------------------

TEST(MultiStore, GlobPatternExpandsSorted) {
  const std::string dir = temp_path("multi_glob/");
  std::filesystem::create_directories(dir);
  write_store(dir + "store-1.jsonl", 2, true);
  write_store(dir + "store-0.jsonl", 3, true);
  write_store(dir + "other.jsonl", 1, true);
  const auto paths = pph::store::expand_store_paths({dir + "store-*.jsonl"});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("store-0"), std::string::npos);
  EXPECT_NE(paths[1].find("store-1"), std::string::npos);
}

TEST(MultiStore, ShardsReadAsOneLogicalStore) {
  const std::string dir = temp_path("multi_logical/");
  std::filesystem::create_directories(dir);
  const std::string a = dir + "store-0.jsonl";
  const std::string b = dir + "store-1.jsonl";
  std::remove(a.c_str());
  std::remove(b.c_str());
  {
    JsonlStoreSink sink(a);
    for (std::size_t i = 0; i < 4; ++i) sink.accept(sample_record(i, PathStatus::kConverged));
    sink.finish();
  }
  {
    JsonlStoreSink sink(b);
    for (std::size_t i = 4; i < 10; ++i) sink.accept(sample_record(i, PathStatus::kConverged));
    sink.finish();
  }
  const MultiStoreReader multi(pph::store::expand_store_paths({dir + "store-*.jsonl"}));
  EXPECT_EQ(multi.shard_count(), 2u);
  ASSERT_EQ(multi.size(), 10u);
  for (std::size_t g = 0; g < 10; ++g) {
    EXPECT_EQ(multi.record(g).id(), g) << "global " << g;
  }
  const auto [shard, local] = multi.locate(7);
  EXPECT_EQ(shard, 1u);
  EXPECT_EQ(local, 3u);

  std::size_t visited = 0;
  multi.for_each_in(2, 8, [&](const pph::store::RecordView& r, std::size_t g) {
    EXPECT_EQ(r.id(), g);
    ++visited;
  });
  EXPECT_EQ(visited, 6u);
}

// ---- parallel scan ----------------------------------------------------------

TEST(ParallelScan, DeterministicAcrossThreadCounts) {
  const std::string path = temp_path("scan_threads.jsonl");
  write_store(path, 101, /*finish=*/true);
  const StoreReader reader(path);
  const auto baseline = pph::store::analytics::summarize(reader, 1);
  for (const int threads : {2, 3, 8}) {
    const auto s = pph::store::analytics::summarize(reader, threads);
    // Integer tallies are exact, so they cannot depend on the chunking.
    EXPECT_EQ(s.records, baseline.records);
    EXPECT_EQ(s.converged, baseline.converged);
    EXPECT_EQ(s.diverged, baseline.diverged);
    EXPECT_EQ(s.steps, baseline.steps);
    EXPECT_TRUE(same_bits(s.max_converged_residual, baseline.max_converged_residual));
    // The float sum regroups across chunks (addition is not associative),
    // so across thread counts it is only near-equal; for a FIXED thread
    // count the chunking is deterministic and so are the bits.
    EXPECT_NEAR(s.track_seconds, baseline.track_seconds,
                1e-12 * std::abs(baseline.track_seconds));
    const auto again = pph::store::analytics::summarize(reader, threads);
    EXPECT_TRUE(same_bits(again.track_seconds, s.track_seconds));
  }
}

TEST(ParallelScan, RangeClampsAndOrdersIndices) {
  const std::string path = temp_path("scan_range.jsonl");
  write_store(path, 10, /*finish=*/true);
  const StoreReader reader(path);
  const auto ids = pph::store::scan(
      reader, pph::store::ScanRange{3, 9999}, std::vector<std::size_t>{},
      [](std::vector<std::size_t>& acc, const pph::store::RecordView& r, std::size_t) {
        acc.push_back(static_cast<std::size_t>(r.id()));
      },
      [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& other) {
        acc.insert(acc.end(), other.begin(), other.end());
      },
      4);
  ASSERT_EQ(ids.size(), 7u);
  for (std::size_t k = 0; k < ids.size(); ++k) EXPECT_EQ(ids[k], k + 3);
}

// ---- analytics --------------------------------------------------------------

TEST(Analytics, SummaryAndLevelsCountWhatWasWritten) {
  const std::string path = temp_path("analytics_counts.jsonl");
  write_store(path, 30, /*finish=*/true);  // i%3==2 diverged, rest converged
  const StoreReader reader(path);
  const auto s = pph::store::analytics::summarize(reader);
  EXPECT_EQ(s.records, 30u);
  EXPECT_EQ(s.converged, 20u);
  EXPECT_EQ(s.diverged, 10u);
  EXPECT_EQ(s.failed, 0u);

  const auto levels = pph::store::analytics::level_table(reader);
  ASSERT_EQ(levels.rows.size(), 3u);  // sample_record stamps level = id % 3
  EXPECT_EQ(levels.rows.at(0).records, 10u);
  EXPECT_EQ(levels.rows.at(2).records, 10u);
  // level 2 holds exactly the diverged records (id % 3 == 2).
  EXPECT_DOUBLE_EQ(levels.rows.at(2).failure_rate(), 1.0);
  EXPECT_DOUBLE_EQ(levels.rows.at(0).failure_rate(), 0.0);
}

TEST(Analytics, HistogramsBucketByDecade) {
  pph::store::analytics::DecadeHistogram h;
  h.add(3.5e-13);
  h.add(1e-12);
  h.add(0.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total, 4u);
  EXPECT_EQ(h.zeros, 1u);
  EXPECT_EQ(h.nonfinite, 1u);
  EXPECT_EQ(h.bucket(-13), 1u);
  EXPECT_EQ(h.bucket(-12), 1u);
  EXPECT_EQ(h.at_or_above(-12), 1u);
}

TEST(Analytics, DedupMergesCrossShardDuplicates) {
  const std::string dir = temp_path("analytics_dedup/");
  std::filesystem::create_directories(dir);
  const std::string a = dir + "store-0.jsonl";
  const std::string b = dir + "store-1.jsonl";
  std::remove(a.c_str());
  std::remove(b.c_str());
  {
    JsonlStoreSink sink(a);
    for (std::size_t i = 0; i < 6; ++i) sink.accept(sample_record(i, PathStatus::kConverged));
    sink.finish();
  }
  {
    // The resumed shard repeats ids 4 and 5 (same bits -- deterministic
    // re-tracking), then adds 6..9.
    JsonlStoreSink sink(b);
    for (std::size_t i = 4; i < 10; ++i) sink.accept(sample_record(i, PathStatus::kConverged));
    sink.finish();
  }
  const MultiStoreReader multi({a, b});
  for (const int threads : {1, 4}) {
    const auto d = pph::store::analytics::dedup(multi, 1e-8, threads);
    EXPECT_EQ(d.records, 12u);
    EXPECT_EQ(d.unique_ids, 10u);
    EXPECT_EQ(d.duplicate_ids, 2u);
    EXPECT_EQ(d.converged, 10u);
    // sample_record endpoints differ per id, so all 10 roots are distinct.
    EXPECT_EQ(d.distinct_solutions, 10u);
  }
}

// ---- a real session: Pieri levels land in the store -------------------------

TEST(StoreSession, PieriTreeStampsLevelsIntoRecords) {
  const std::string path = temp_path("store_pieri_levels.jsonl");
  std::remove(path.c_str());
  pph::util::Prng rng(1234);
  const auto input =
      pph::schubert::random_pieri_input(pph::schubert::PieriProblem{2, 2, 1}, rng);
  {
    pph::sched::PieriTreeJobSource source(input, {});
    JsonlStoreSink sink(path);
    pph::sched::Session session(source, sink, {});
    session.run(3);
    sink.finish();
  }
  const StoreReader reader(path);
  ASSERT_GT(reader.size(), 0u);
  const auto levels = pph::store::analytics::level_table(reader);
  // The (2,2,1) tree has jobs on more than one level, and the level field
  // reached the store through consume()'s master-side stamp.
  EXPECT_GT(levels.rows.size(), 1u);
  EXPECT_GT(levels.rows.rbegin()->first, 0u);
}

}  // namespace
