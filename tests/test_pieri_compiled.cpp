// Tests for the compiled Pieri edge tape (eval::CompiledPieriHomotopy and
// its PieriEdgeHomotopy fast path): golden equivalence against the
// interpreted bordered-determinant walk on H, dH/dx, and dH/dt across
// random charts, levels, and detours; finite differences for dH/dt
// (including the t(1-t) detour terms); the degenerate corners (t = 0,
// t = 1, zero coordinates, level-1 charts); bit-exact workspace reuse
// across instances of different sizes; an allocation-free steady-state
// predictor/corrector loop; and solution-set identity — compiled vs
// interpreted within tracking tolerance, and bit-identical across the
// FCFS and BatchSteal scheduler policies with the engine on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "homotopy/corrector.hpp"
#include "homotopy/predictor.hpp"
#include "sched/pieri_scheduler.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "schubert/pieri_solver.hpp"
#include "schubert/poset.hpp"
#include "util/prng.hpp"

// ---- global allocation counter --------------------------------------------
//
// Same scheme as test_eval: malloc-backed replacements so the no-allocation
// test observes every operator-new in the process and composes with ASan.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::schubert::Pattern;
using pph::schubert::PatternChart;
using pph::schubert::PieriEdgeHomotopy;
using pph::schubert::PieriEvalWorkspace;
using pph::schubert::PieriProblem;
using pph::schubert::PlaneCondition;
using pph::util::Prng;

double rel_err(Complex got, Complex want) {
  return std::abs(got - want) / (1.0 + std::abs(want));
}

CVector random_point(Prng& rng, std::size_t n) {
  CVector x(n);
  for (auto& v : x) v = rng.normal_complex();
  return x;
}

/// An edge homotopy into a pattern at `level` of `pb` (first pattern of the
/// level), with random gamma and point-path detours.
PieriEdgeHomotopy make_edge_homotopy(const PieriProblem& pb, std::size_t level, Prng& rng,
                                     const pph::schubert::PieriInput& input) {
  pph::schubert::PatternPoset poset(pb);
  const auto& patterns = poset.patterns_at_level(level);
  const Pattern& pattern = patterns[rng.uniform_index(patterns.size())];
  PatternChart chart(pattern);
  const std::vector<PlaneCondition> fixed(input.conditions.begin(),
                                          input.conditions.begin() + (level - 1));
  return PieriEdgeHomotopy(chart, fixed, input.conditions[level - 1], rng.unit_complex(),
                           0.7 * rng.unit_complex(), 0.7 * rng.unit_complex());
}

// ---- golden equivalence vs the interpreted path ---------------------------

TEST(CompiledPieri, MatchesInterpretedAcrossChartsLevelsAndDetours) {
  Prng rng(301);
  const PieriProblem problems[] = {{2, 2, 1}, {3, 2, 1}, {2, 3, 0}, {3, 3, 0}};
  for (const auto& pb : problems) {
    const auto input = pph::schubert::random_pieri_input(pb, rng);
    const std::size_t n = pb.condition_count();
    for (const std::size_t level : {std::size_t{1}, (n + 1) / 2, n}) {
      const auto h = make_edge_homotopy(pb, level, rng, input);
      auto ws = h.make_workspace();
      ASSERT_NE(ws, nullptr);
      CVector hv, ht;
      CMatrix jac;
      for (const double t : {0.0, 0.31, 0.77, 1.0}) {
        const CVector x = random_point(rng, h.dimension());
        h.evaluate_fused(x, t, ws.get(), hv, jac, ht);
        const CVector want_h = h.evaluate(x, t);          // interpreted reference
        const CMatrix want_j = h.jacobian_x(x, t);
        const CVector want_t = h.derivative_t(x, t);
        for (std::size_t i = 0; i < h.dimension(); ++i) {
          EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12)
              << "H, (m,p,q)=(" << pb.m << "," << pb.p << "," << pb.q << ") level " << level
              << " t=" << t << " row " << i;
          EXPECT_LT(rel_err(ht[i], want_t[i]), 1e-12) << "dH/dt row " << i << " t=" << t;
          for (std::size_t c = 0; c < h.dimension(); ++c) {
            EXPECT_LT(rel_err(jac(i, c), want_j(i, c)), 1e-12)
                << "dH/dx(" << i << "," << c << ") t=" << t;
          }
        }
      }
    }
  }
}

TEST(CompiledPieri, FastPathVirtualsMatchGoldenReference) {
  // The Homotopy-level entry points the tracker actually calls, with the
  // homotopy's own workspace and with nullptr (interpreted fallback).
  Prng rng(302);
  const PieriProblem pb{3, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto h = make_edge_homotopy(pb, pb.condition_count(), rng, input);
  const CVector x = random_point(rng, h.dimension());
  const double t = 0.43;
  const CVector want_h = h.evaluate(x, t);
  const CMatrix want_j = h.jacobian_x(x, t);

  auto ws = h.make_workspace();
  ASSERT_NE(dynamic_cast<PieriEvalWorkspace*>(ws.get()), nullptr);
  CVector hv;
  CMatrix jac;
  for (pph::homotopy::HomotopyWorkspace* w :
       {ws.get(), static_cast<pph::homotopy::HomotopyWorkspace*>(nullptr)}) {
    h.evaluate_with_jacobian_into(x, t, w, hv, jac);
    for (std::size_t i = 0; i < h.dimension(); ++i) {
      EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
      for (std::size_t c = 0; c < h.dimension(); ++c) {
        EXPECT_LT(rel_err(jac(i, c), want_j(i, c)), 1e-12);
      }
    }
    h.evaluate_into(x, t, w, hv);
    for (std::size_t i = 0; i < h.dimension(); ++i) {
      EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
    }
  }

  // With the engine disabled the homotopy advertises no fast path.
  auto h2 = make_edge_homotopy(pb, pb.condition_count(), rng, input);
  h2.set_compiled(false);
  EXPECT_EQ(h2.make_workspace(), nullptr);
}

// ---- finite differences ----------------------------------------------------

TEST(CompiledPieri, DerivativeTMatchesFiniteDifferencesWithDetours) {
  // Nonzero detour constants: dH/dt must carry the t(1-t) bump terms, which
  // vanish at t = 1/2 in value but not in slope — probe away from 1/2 too.
  Prng rng(303);
  const PieriProblem pb{2, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto h = make_edge_homotopy(pb, pb.condition_count(), rng, input);
  auto ws = h.make_workspace();
  CVector hv, ht, hp, hm;
  CMatrix jac;
  const CVector x = random_point(rng, h.dimension());
  const double eps = 1e-7;
  for (const double t : {0.2, 0.5, 0.9}) {
    h.evaluate_fused(x, t, ws.get(), hv, jac, ht);
    h.evaluate_into(x, t + eps, ws.get(), hp);
    h.evaluate_into(x, t - eps, ws.get(), hm);
    for (std::size_t i = 0; i < h.dimension(); ++i) {
      const Complex fd = (hp[i] - hm[i]) / (2.0 * eps);
      EXPECT_NEAR(std::abs(ht[i] - fd), 0.0, 1e-5 * (1.0 + std::abs(fd)))
          << "row " << i << " t=" << t;
    }
  }
}

TEST(CompiledPieri, JacobianMatchesFiniteDifferences) {
  Prng rng(304);
  const PieriProblem pb{2, 3, 0};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto h = make_edge_homotopy(pb, pb.condition_count(), rng, input);
  auto ws = h.make_workspace();
  CVector hv, vp, vm;
  CMatrix jac;
  const CVector x = random_point(rng, h.dimension());
  const double t = 0.6, eps = 1e-6;
  h.evaluate_with_jacobian_into(x, t, ws.get(), hv, jac);
  for (std::size_t v = 0; v < x.size(); ++v) {
    CVector xp = x, xm = x;
    xp[v] += eps;
    xm[v] -= eps;
    h.evaluate_into(xp, t, ws.get(), vp);
    h.evaluate_into(xm, t, ws.get(), vm);
    for (std::size_t i = 0; i < hv.size(); ++i) {
      const Complex fd = (vp[i] - vm[i]) / (2.0 * eps);
      EXPECT_NEAR(std::abs(jac(i, v) - fd), 0.0, 1e-5 * (1.0 + std::abs(fd)))
          << "row " << i << " var " << v;
    }
  }
}

// ---- degenerate corners ----------------------------------------------------

TEST(CompiledPieri, StartResidualZeroAtTZeroForChildSolution) {
  // At t = 0 the homotopy vanishes on the embedded child solution (the
  // tracker's start point); the compiled tape must reproduce that exactly
  // enough for the start residual check, including u(0) = 0 powers.
  Prng rng(305);
  const PieriProblem pb{2, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const Pattern minimal = Pattern::minimal(pb);
  const auto parents = minimal.parents();
  ASSERT_FALSE(parents.empty());
  PatternChart chart(parents[0]);
  const CVector start = chart.embed_child(PatternChart(minimal), CVector{});
  PieriEdgeHomotopy h(chart, {}, input.conditions[0], rng.unit_complex(),
                      0.7 * rng.unit_complex(), 0.7 * rng.unit_complex());
  auto ws = h.make_workspace();
  CVector hv;
  h.evaluate_into(start, 0.0, ws.get(), hv);
  EXPECT_LT(pph::linalg::norm2(hv), 1e-12);
}

TEST(CompiledPieri, ZeroCoordinatesAndLevelOne) {
  Prng rng(306);
  const PieriProblem pb{3, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  // Level 1: a single equation, no fixed conditions.
  {
    const auto h = make_edge_homotopy(pb, 1, rng, input);
    ASSERT_EQ(h.dimension(), 1u);
    auto ws = h.make_workspace();
    CVector hv, ht;
    CMatrix jac;
    for (const double t : {0.0, 0.5, 1.0}) {
      const CVector x = random_point(rng, 1);
      h.evaluate_fused(x, t, ws.get(), hv, jac, ht);
      EXPECT_LT(rel_err(hv[0], h.evaluate(x, t)[0]), 1e-12);
      EXPECT_LT(rel_err(jac(0, 0), h.jacobian_x(x, t)(0, 0)), 1e-12);
      EXPECT_LT(rel_err(ht[0], h.derivative_t(x, t)[0]), 1e-12);
    }
  }
  // All-zero coordinates at the full level (the freshly opened star cells
  // of every embedded start are zero, so this is the common case).
  {
    const auto h = make_edge_homotopy(pb, pb.condition_count(), rng, input);
    auto ws = h.make_workspace();
    const CVector x(h.dimension(), Complex{});
    CVector hv, ht;
    CMatrix jac;
    for (const double t : {0.0, 0.37, 1.0}) {
      h.evaluate_fused(x, t, ws.get(), hv, jac, ht);
      const CVector want_h = h.evaluate(x, t);
      const CMatrix want_j = h.jacobian_x(x, t);
      const CVector want_t = h.derivative_t(x, t);
      for (std::size_t i = 0; i < h.dimension(); ++i) {
        EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
        EXPECT_LT(rel_err(ht[i], want_t[i]), 1e-12);
        for (std::size_t c = 0; c < h.dimension(); ++c) {
          EXPECT_LT(rel_err(jac(i, c), want_j(i, c)), 1e-12);
        }
      }
    }
  }
}

// ---- workspace reuse across instances -------------------------------------

TEST(CompiledPieri, WorkspaceReusedAcrossInstancesIsBitExact) {
  // A slave's family workspace serves edges of different patterns, levels,
  // and deformations in sequence.  Results must not depend on what the
  // workspace evaluated before (the owner-id cache key): compare against a
  // fresh workspace bit for bit.
  Prng rng(307);
  const PieriProblem pb{3, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto ha = make_edge_homotopy(pb, 3, rng, input);
  const auto hb = make_edge_homotopy(pb, pb.condition_count(), rng, input);

  PieriEvalWorkspace shared;  // family workspace, reused A -> B
  PieriEvalWorkspace fresh;   // B only
  CVector h_shared, t_shared, h_fresh, t_fresh, scratch_h, scratch_t;
  CMatrix j_shared, j_fresh, scratch_j;

  const CVector xa = random_point(rng, ha.dimension());
  const CVector xb = random_point(rng, hb.dimension());
  ha.evaluate_fused(xa, 0.63, &shared, scratch_h, scratch_j, scratch_t);  // warm A
  hb.evaluate_fused(xb, 0.29, &shared, h_shared, j_shared, t_shared);
  hb.evaluate_fused(xb, 0.29, &fresh, h_fresh, j_fresh, t_fresh);
  ASSERT_EQ(h_shared.size(), h_fresh.size());
  for (std::size_t i = 0; i < h_fresh.size(); ++i) {
    EXPECT_EQ(h_shared[i], h_fresh[i]);
    EXPECT_EQ(t_shared[i], t_fresh[i]);
    for (std::size_t c = 0; c < h_fresh.size(); ++c) {
      EXPECT_EQ(j_shared(i, c), j_fresh(i, c));
    }
  }
}

// ---- allocation-free steady state ------------------------------------------

TEST(PieriAllocation, SteadyStateTrackLoopAllocatesNothing) {
  // The Pieri track loop the scheduler slaves run: tangent prediction plus
  // Newton correction through the compiled tape, with the workspace made
  // once per slave.  After warm-up, zero heap allocations.
  Prng rng(308);
  const PieriProblem pb{3, 2, 1};
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  const auto h = make_edge_homotopy(pb, pb.condition_count(), rng, input);
  pph::homotopy::TrackerWorkspace ws(h);
  ASSERT_NE(dynamic_cast<PieriEvalWorkspace*>(ws.hws.get()), nullptr);

  pph::homotopy::CorrectorOptions opts;
  opts.max_iterations = 4;
  opts.residual_tolerance = 1e-300;  // force full Newton iterations incl. LU
  const CVector x0 = random_point(rng, h.dimension());
  CVector x = x0;
  CVector predicted(h.dimension());

  // Warm-up sizes every buffer (powers, minors, coefficients, LU pair).
  for (int i = 0; i < 3; ++i) {
    x = x0;
    pph::homotopy::predict_tangent(h, x, 0.02 * (i + 1), 0.01, ws, predicted);
    pph::homotopy::correct(h, x, 0.02 * (i + 1), opts, ws);
  }

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) {
    x = x0;  // same-size copy-assign, no allocation
    const double t = 0.01 * (i % 40);  // t moves: per-t refresh must not allocate
    pph::homotopy::predict_tangent(h, x, t, 0.01, ws, predicted);
    pph::homotopy::correct(h, x, t, opts, ws);
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state Pieri track loop allocated " << (after - before)
                           << " times";
}

// ---- solution-set identity -------------------------------------------------

TEST(CompiledPieri, SolveMatchesInterpretedSolutionSet) {
  const PieriProblem pb{2, 2, 1};
  pph::schubert::PieriSolverOptions interp;
  interp.compiled_eval = false;
  pph::schubert::PieriSolverOptions comp;
  comp.compiled_eval = true;
  const auto a = pph::schubert::solve_random_pieri(pb, /*seed=*/21, interp);
  const auto b = pph::schubert::solve_random_pieri(pb, /*seed=*/21, comp);
  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  // Same deformations, same start points: the endpoints pair up within the
  // tracking tolerance after canonical ordering.
  const auto ka = pph::sched::canonical_solution_set(a.solutions);
  const auto kb = pph::sched::canonical_solution_set(b.solutions);
  for (std::size_t i = 0; i < ka.size(); ++i) {
    double dist = 0.0;
    for (std::size_t c = 0; c < ka[i].size(); ++c) {
      dist = std::max(dist, std::abs(ka[i][c] - kb[i][c]));
    }
    EXPECT_LT(dist, 1e-6) << "solution " << i;
  }
}

TEST(CompiledPieri, PoliciesBitIdenticalWithEngineOn) {
  // The cross-policy invariant with the compiled engine on: FCFS and
  // BatchSteal sessions over the same tree produce EQUAL canonical keys
  // (same kernel on every rank, deterministic per-edge math).
  const PieriProblem pb{2, 2, 1};
  Prng rng(309);
  const auto input = pph::schubert::random_pieri_input(pb, rng);
  pph::sched::ParallelPieriOptions fcfs;
  fcfs.policy = pph::sched::Policy::kFCFS;
  pph::sched::ParallelPieriOptions steal;
  steal.policy = pph::sched::Policy::kBatchSteal;
  const auto ra = pph::sched::run_pieri(input, 3, fcfs);
  const auto rb = pph::sched::run_pieri(input, 3, steal);
  ASSERT_TRUE(ra.complete());
  ASSERT_TRUE(rb.complete());
  EXPECT_EQ(pph::sched::canonical_solution_set(ra.solutions),
            pph::sched::canonical_solution_set(rb.solutions));
}

}  // namespace
