#pragma once
// Shared fixture for the parallel path-scheduler tests (test_sched.cpp,
// test_batch_sched.cpp): the cyclic-5 workload (120 paths, 70 finite
// roots) plus the sequential baseline every scheduler must reproduce.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "homotopy/start_total_degree.hpp"
#include "sched/job_pool.hpp"
#include "systems/cyclic.hpp"
#include "util/prng.hpp"

namespace pph::testing {

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<util::Prng>(1234);
    target_ = systems::cyclic(5);
    start_ = std::make_unique<homotopy::TotalDegreeStart>(target_, *rng_);
    homotopy_ =
        std::make_unique<homotopy::ConvexHomotopy>(start_->system(), target_, rng_->unit_complex());
    starts_ = start_->all_solutions();
    workload_.homotopy = homotopy_.get();
    workload_.starts = &starts_;
    baseline_ = homotopy::track_all(*homotopy_, starts_, workload_.tracker);
  }

  static std::multiset<int> status_multiset(const sched::ParallelRunReport& report) {
    std::multiset<int> s;
    for (const auto& tp : report.paths) s.insert(static_cast<int>(tp.result.status));
    return s;
  }

  void expect_matches_baseline(const sched::ParallelRunReport& report) {
    ASSERT_EQ(report.paths.size(), starts_.size());
    // Every index exactly once (report is sorted by tally()).
    for (std::size_t i = 0; i < report.paths.size(); ++i) {
      EXPECT_EQ(report.paths[i].index, i);
    }
    // Identical results to the sequential run (the tracker is
    // deterministic given the same homotopy and start).
    for (std::size_t i = 0; i < report.paths.size(); ++i) {
      EXPECT_EQ(static_cast<int>(report.paths[i].result.status),
                static_cast<int>(baseline_[i].status))
          << "path " << i;
      if (baseline_[i].status == homotopy::PathStatus::kConverged) {
        EXPECT_LT(linalg::distance2(report.paths[i].result.x, baseline_[i].x), 1e-8);
      }
    }
  }

  /// Scheduler-independence invariant: two runs must produce *identical*
  /// PathResult sets -- same status, step counts, and endpoint bits --
  /// because scheduling only changes who tracks a path, never the numerics.
  /// The verdict comes from the shared sched::identical_path_results (the
  /// same predicate the ablation bench's CI guard uses); the per-field
  /// EXPECTs below only localize a failure.
  static void expect_identical_results(const sched::ParallelRunReport& a,
                                       const sched::ParallelRunReport& b) {
    EXPECT_TRUE(sched::identical_path_results(a, b));
    ASSERT_EQ(a.paths.size(), b.paths.size());
    for (std::size_t i = 0; i < a.paths.size(); ++i) {
      const auto& ra = a.paths[i].result;
      const auto& rb = b.paths[i].result;
      ASSERT_EQ(a.paths[i].index, b.paths[i].index);
      EXPECT_EQ(static_cast<int>(ra.status), static_cast<int>(rb.status)) << "path " << i;
      EXPECT_EQ(ra.steps, rb.steps) << "path " << i;
      EXPECT_EQ(ra.rejections, rb.rejections) << "path " << i;
      EXPECT_EQ(ra.newton_iterations, rb.newton_iterations) << "path " << i;
      EXPECT_EQ(ra.t_reached, rb.t_reached) << "path " << i;
      EXPECT_EQ(ra.residual, rb.residual) << "path " << i;
      ASSERT_EQ(ra.x.size(), rb.x.size()) << "path " << i;
      for (std::size_t k = 0; k < ra.x.size(); ++k) {
        EXPECT_EQ(ra.x[k].real(), rb.x[k].real()) << "path " << i << " coord " << k;
        EXPECT_EQ(ra.x[k].imag(), rb.x[k].imag()) << "path " << i << " coord " << k;
      }
    }
  }

  std::unique_ptr<util::Prng> rng_;
  poly::PolySystem target_;
  std::unique_ptr<homotopy::TotalDegreeStart> start_;
  std::unique_ptr<homotopy::ConvexHomotopy> homotopy_;
  std::vector<linalg::CVector> starts_;
  sched::PathWorkload workload_;
  std::vector<homotopy::PathResult> baseline_;
};

}  // namespace pph::testing
