// Tests for the batched work-stealing scheduler (DESIGN.md section 2,
// "Batched work stealing"): adaptive batch sizing, result identity with the
// sequential baseline and the other schedulers, forced steals, the
// kill-a-slave fail-injection hook, and option validation.

#include <gtest/gtest.h>

#include <set>

#include "sched/session.hpp"
#include "scheduler_fixture.hpp"

namespace {

namespace sched = pph::sched;
using pph::sched::guided_chunk_size;
using pph::testing::SchedulerTest;

/// Batch-steal session options shared by every test below.
sched::SessionOptions batch_opts() {
  return sched::SessionOptions().with_policy(sched::Policy::kBatchSteal);
}

// ---- adaptive batch sizing -------------------------------------------------

TEST(GuidedChunkSize, ShrinksAsThePoolDrains) {
  const std::size_t workers = 4;
  std::size_t last = guided_chunk_size(1000, workers, 2.0, 1);
  EXPECT_EQ(last, 125u);  // 1000 / (2 * 4)
  for (std::size_t remaining = 500; remaining > 0; remaining /= 2) {
    const std::size_t chunk = guided_chunk_size(remaining, workers, 2.0, 1);
    EXPECT_LE(chunk, last);
    last = chunk;
  }
}

TEST(GuidedChunkSize, RespectsFloorAndRemaining) {
  EXPECT_EQ(guided_chunk_size(1000, 4, 2.0, 200), 200u);  // floor wins
  EXPECT_EQ(guided_chunk_size(3, 4, 2.0, 8), 3u);         // never beyond the pool
  EXPECT_EQ(guided_chunk_size(0, 4, 2.0, 1), 0u);         // empty pool
  EXPECT_EQ(guided_chunk_size(7, 64, 2.0, 1), 1u);        // tail degenerates to per-job
  EXPECT_EQ(guided_chunk_size(100, 4, 2.0, 0), 12u);      // min_chunk 0 treated as 1
}

TEST(GuidedChunkSize, RejectsBadArguments) {
  EXPECT_THROW(guided_chunk_size(10, 0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(guided_chunk_size(10, 4, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(guided_chunk_size(10, 4, -1.0, 1), std::invalid_argument);
}

// ---- correctness against the baseline --------------------------------------

TEST_F(SchedulerTest, BatchMatchesSequential) {
  const auto report = sched::run_paths(workload_, 4, batch_opts());
  expect_matches_baseline(report);
  EXPECT_EQ(report.converged + report.diverged + report.failed, starts_.size());
  // Master does not track.
  EXPECT_EQ(report.rank_busy_seconds[0], 0.0);
  // Batching must beat per-job dispatch on message count: 120 paths on 3
  // slaves with factor 2 takes far fewer than 120 hand-outs.
  EXPECT_LT(report.dispatches, starts_.size() / 2);
}

TEST_F(SchedulerTest, BatchManyWorkers) {
  const auto report = sched::run_paths(workload_, 9, batch_opts());
  expect_matches_baseline(report);
}

TEST_F(SchedulerTest, BatchSingleSlaveDegeneratesToSequential) {
  const auto report = sched::run_paths(workload_, 2, batch_opts());
  expect_matches_baseline(report);
  EXPECT_EQ(report.steals, 0u);  // nobody to steal from
}

TEST_F(SchedulerTest, BatchProducesIdenticalResultsToStaticAndDynamic) {
  // The scheduler-independence invariant extended to the batch policy.
  const auto st = sched::run_paths(workload_, 4, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  const auto dy = sched::run_paths(workload_, 4);
  const auto ba = sched::run_paths(workload_, 4, batch_opts());
  expect_identical_results(st, ba);
  expect_identical_results(dy, ba);
}

// ---- work stealing ----------------------------------------------------------

TEST_F(SchedulerTest, SkewedSeedForcesSteals) {
  // factor << 1 makes the first hand-out grab (nearly) the whole pool, so
  // the remaining slaves can only refill by stealing.
  const auto opts = batch_opts().with_batch(/*shrink_factor=*/0.1);
  const auto report = sched::run_paths(workload_, 4, opts);
  expect_matches_baseline(report);
  EXPECT_GE(report.steals, 1u);
}

TEST_F(SchedulerTest, StealsRebalanceAcrossWorkers) {
  const auto opts = batch_opts().with_batch(/*shrink_factor=*/0.1);
  const auto report = sched::run_paths(workload_, 4, opts);
  // With stealing, no single slave tracks everything.
  std::set<int> workers;
  for (const auto& tp : report.paths) workers.insert(tp.worker);
  EXPECT_GE(workers.size(), 2u);
}

// ---- failure injection -------------------------------------------------------

TEST_F(SchedulerTest, BatchSurvivesWorkerDeath) {
  // Rank 2 dies on its 4th path.
  const auto opts = batch_opts().with_kill_after(3, /*rank=*/2);
  const auto report = sched::run_paths(workload_, 4, opts);
  // All paths still tracked, by the surviving workers; the master
  // re-queues the dead slave's batch (including unreported results).
  expect_matches_baseline(report);
  std::set<int> workers;
  for (const auto& tp : report.paths) workers.insert(tp.worker);
  EXPECT_TRUE(workers.count(1) == 1 && workers.count(3) == 1);
  EXPECT_EQ(report.rank_busy_seconds[2], 0.0);  // died before reporting
}

TEST_F(SchedulerTest, BatchDeathUnderStealPressure) {
  // Death and stealing interact: the skewed seed concentrates the pool on
  // one slave, the kill hook removes another mid-run.
  const auto opts =
      batch_opts().with_batch(/*shrink_factor=*/0.1).with_kill_after(2, /*rank=*/1);
  const auto report = sched::run_paths(workload_, 4, opts);
  expect_matches_baseline(report);
}

// ---- validation --------------------------------------------------------------

TEST_F(SchedulerTest, BatchRequiresTwoRanks) {
  EXPECT_THROW(sched::run_paths(workload_, 1, batch_opts()), std::invalid_argument);
}

TEST_F(SchedulerTest, BatchRejectsKillingTheMaster) {
  const auto opts = batch_opts().with_kill_after(1, /*rank=*/0);
  EXPECT_THROW(sched::run_paths(workload_, 4, opts), std::invalid_argument);
}

TEST_F(SchedulerTest, BatchRejectsOutOfRangeKillRank) {
  const auto opts = batch_opts().with_kill_after(1, /*rank=*/9);
  EXPECT_THROW(sched::run_paths(workload_, 4, opts), std::invalid_argument);
}

TEST_F(SchedulerTest, BatchRejectsNonPositiveFactor) {
  const auto opts = batch_opts().with_batch(/*shrink_factor=*/0.0);
  EXPECT_THROW(sched::run_paths(workload_, 4, opts), std::invalid_argument);
}

// ---- latency robustness ------------------------------------------------------

TEST_F(SchedulerTest, BatchWithInjectedLatencyStillMatches) {
  const auto opts = batch_opts().with_latency(0.002);
  const auto report = sched::run_paths(workload_, 4, opts);
  expect_matches_baseline(report);
}

}  // namespace
