// Tests for src/systems: generator structure checks and end-to-end solves
// of the small instances with known root counts (cyclic-5's 70 roots is the
// integration anchor for the whole homotopy kernel).

#include <gtest/gtest.h>

#include "homotopy/solver.hpp"
#include "systems/cyclic.hpp"
#include "systems/katsura.hpp"
#include "systems/noon.hpp"
#include "systems/rps_synthetic.hpp"

namespace {

using pph::homotopy::SolveOptions;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::PolySystem;
using pph::util::Prng;

TEST(Cyclic, StructureAndDegrees) {
  const auto sys = pph::systems::cyclic(5);
  EXPECT_EQ(sys.nvars(), 5u);
  EXPECT_EQ(sys.size(), 5u);
  const auto d = sys.degrees();
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(d[k], k + 1);
  EXPECT_EQ(sys.total_degree(), 120u);
}

TEST(Cyclic, FirstEquationIsSumOfVariables) {
  const auto sys = pph::systems::cyclic(4);
  // f_1 = x0 + x1 + x2 + x3.
  EXPECT_EQ(sys.equation(0).term_count(), 4u);
  EXPECT_EQ(sys.equation(0).degree(), 1u);
  const CVector ones(4, Complex{1, 0});
  EXPECT_NEAR(std::abs(sys.equation(0).evaluate(ones) - Complex{4, 0}), 0.0, 1e-14);
}

TEST(Cyclic, KnownSolutionSatisfiesCyclic3) {
  // For n=3 the point (1, w, w^2) with w a primitive cube root of unity is a
  // cyclic root: sum = 0, pairwise sums = 0, product = w^3 = 1.
  const auto sys = pph::systems::cyclic(3);
  const Complex w{-0.5, std::sqrt(3.0) / 2.0};
  const CVector x{Complex{1, 0}, w, w * w};
  EXPECT_LT(sys.residual(x), 1e-12);
}

TEST(Cyclic, RejectsTinyN) {
  EXPECT_THROW(pph::systems::cyclic(1), std::invalid_argument);
}

TEST(CyclicSolve, Cyclic3HasSixRoots) {
  const auto sys = pph::systems::cyclic(3);
  const auto summary = pph::homotopy::solve_total_degree(sys);
  EXPECT_EQ(summary.path_count, 6u);
  EXPECT_EQ(summary.solutions.size(), 6u);
}

// The integration anchor: cyclic-5 has exactly 70 finite roots out of 120
// total-degree paths; the remaining 50 diverge to infinity.  This exercises
// divergence classification at scale.
TEST(CyclicSolve, Cyclic5HasSeventyRoots) {
  const auto sys = pph::systems::cyclic(5);
  SolveOptions opts;
  const auto summary = pph::homotopy::solve_total_degree(sys, opts);
  EXPECT_EQ(summary.path_count, 120u);
  EXPECT_EQ(summary.solutions.size(), 70u);
  EXPECT_EQ(summary.converged, 70u);
  EXPECT_EQ(summary.diverged + summary.failed, 50u);
}

TEST(Katsura, StructureAndBezout) {
  const auto sys = pph::systems::katsura(3);
  EXPECT_EQ(sys.nvars(), 4u);
  EXPECT_EQ(sys.size(), 4u);
  const auto d = sys.degrees();
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[3], 1u);  // normalization is linear
  EXPECT_EQ(sys.total_degree(), 8u);
}

TEST(KatsuraSolve, Katsura3HasEightRoots) {
  const auto sys = pph::systems::katsura(3);
  const auto summary = pph::homotopy::solve_total_degree(sys);
  EXPECT_EQ(summary.path_count, 8u);
  EXPECT_EQ(summary.solutions.size(), 8u);
}

TEST(Noon, StructureCorrect) {
  const auto sys = pph::systems::noon(3);
  EXPECT_EQ(sys.nvars(), 3u);
  for (const auto& d : sys.degrees()) EXPECT_EQ(d, 3u);
}

TEST(NoonSolve, Noon2RootCountStable) {
  // noon(2) is small enough to solve exactly; its root count must match the
  // deduplicated converged endpoints and be invariant across seeds.
  const auto sys = pph::systems::noon(2);
  SolveOptions a, b;
  a.seed = 31;
  b.seed = 77;
  const auto sa = pph::homotopy::solve_total_degree(sys, a);
  const auto sb = pph::homotopy::solve_total_degree(sys, b);
  EXPECT_EQ(sa.solutions.size(), sb.solutions.size());
  EXPECT_GT(sa.solutions.size(), 0u);
}

TEST(RpsSynthetic, PaperScaleCombinatorics) {
  const auto ps = pph::systems::rps_like_structure(pph::systems::kRpsPaperSize);
  EXPECT_EQ(ps.size(), 10u);
  EXPECT_EQ(ps.combination_count(), pph::systems::kRpsPaperPaths);
  Prng rng(1);
  const auto target = pph::systems::rps_like_target(pph::systems::kRpsPaperSize, rng);
  EXPECT_EQ(target.total_degree(), pph::systems::kRpsPaperMixedVolume);
}

TEST(RpsSynthetic, SmallInstanceMostPathsDiverge) {
  // k=3: structure (2,6,6) = 72 paths; quadratic target has Bezout 8.
  Prng rng(2);
  const auto target = pph::systems::rps_like_target(3, rng);
  const auto ps = pph::systems::rps_like_structure(3);
  EXPECT_EQ(ps.combination_count(), 72u);
  const auto summary = pph::homotopy::solve_linear_product(target, ps);
  EXPECT_LE(summary.solutions.size(), 8u);
  EXPECT_GT(summary.solutions.size(), 0u);
  // The defining property of the RPS regime: divergent paths dominate.
  EXPECT_GT(summary.diverged, summary.converged);
}

TEST(RpsSynthetic, TargetResidualLargeAtRandomPoint) {
  Prng rng(3);
  const auto target = pph::systems::rps_like_target(4, rng);
  const CVector x(4, Complex{0.5, 0.5});
  EXPECT_GT(target.residual(x), 0.0);
}

}  // namespace
