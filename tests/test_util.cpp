// Unit and property tests for src/util: PRNG determinism and distribution
// sanity, statistics accumulators, table formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using pph::util::Prng;
using pph::util::RunningStats;
using pph::util::Table;

TEST(Prng, DeterministicForEqualSeeds) {
  Prng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Prng, ReseedRestartsSequence) {
  Prng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, UniformRangeRespectsBounds) {
  Prng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Prng, UniformIndexCoversRange) {
  Prng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto k = rng.uniform_index(10);
    EXPECT_LT(k, 10u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, NormalMomentsApproximatelyStandard) {
  Prng rng(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Prng, UnitComplexOnCircle) {
  Prng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(std::abs(rng.unit_complex()), 1.0, 1e-12);
  }
}

TEST(Prng, LognormalPositive) {
  Prng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  Prng rng(11);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.25);
  EXPECT_EQ(s.variance(), 0.0);
}

// Property test: merge() must be indistinguishable from having pooled the
// samples into one accumulator -- for every queryable statistic, across
// random splits including empty sides and single-sample accumulators.
TEST(PercentileAccumulator, MergeEqualsPooledAccumulation) {
  using pph::util::PercentileAccumulator;
  Prng rng(17);
  const auto expect_equal = [](PercentileAccumulator& merged,
                               PercentileAccumulator& pooled) {
    EXPECT_EQ(merged.count(), pooled.count());
    // Identical sample multisets imply identical order statistics; compare
    // the sorted samples bit for bit, then spot-check the query surface.
    auto a = merged.samples();
    auto b = pooled.samples();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
    EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
    EXPECT_DOUBLE_EQ(merged.mean(), pooled.mean());
    for (const double pct : {0.0, 25.0, 50.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(merged.percentile(pct), pooled.percentile(pct)) << "pct " << pct;
    }
  };
  for (int trial = 0; trial < 24; ++trial) {
    // Sizes 0..11: empty-side and single-sample merges occur by design.
    const std::size_t na = rng.uniform_index(12);
    const std::size_t nb = rng.uniform_index(12);
    PercentileAccumulator lhs, rhs, pooled;
    for (std::size_t i = 0; i < na; ++i) {
      const double x = rng.lognormal(0.0, 1.0);
      lhs.add(x);
      pooled.add(x);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      const double x = rng.lognormal(0.0, 1.0);
      rhs.add(x);
      pooled.add(x);
    }
    lhs.merge(rhs);
    SCOPED_TRACE("trial " + std::to_string(trial) + " sizes " + std::to_string(na) +
                 "+" + std::to_string(nb));
    expect_equal(lhs, pooled);
  }
  // The degenerate corners, explicitly: empty.merge(empty) stays the
  // all-zeros empty query surface...
  PercentileAccumulator empty_a, empty_b;
  empty_a.merge(empty_b);
  EXPECT_EQ(empty_a.count(), 0u);
  EXPECT_DOUBLE_EQ(empty_a.percentile(50.0), 0.0);
  // ...a single sample merged into empty (and vice versa) IS that sample...
  PercentileAccumulator one;
  one.add(3.5);
  PercentileAccumulator into_empty;
  into_empty.merge(one);
  EXPECT_EQ(into_empty.count(), 1u);
  EXPECT_DOUBLE_EQ(into_empty.p50(), 3.5);
  EXPECT_DOUBLE_EQ(into_empty.min(), 3.5);
  EXPECT_DOUBLE_EQ(into_empty.max(), 3.5);
  PercentileAccumulator empty_rhs;
  one.merge(empty_rhs);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.p99(), 3.5);
  // ...and two singletons merge into an interpolating pair.
  PercentileAccumulator x, y;
  x.add(1.0);
  y.add(2.0);
  x.merge(y);
  EXPECT_EQ(x.count(), 2u);
  EXPECT_DOUBLE_EQ(x.p50(), 1.5);
}

TEST(BatchStats, PercentileInterpolation) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(pph::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(pph::util::percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(pph::util::median(xs), 2.5);
}

TEST(BatchStats, CoefficientOfVariation) {
  std::vector<double> uniform{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pph::util::coefficient_of_variation(uniform), 0.0);
  std::vector<double> spread{1.0, 9.0};
  EXPECT_GT(pph::util::coefficient_of_variation(spread), 0.5);
}

TEST(TableFormat, AlignsColumnsAndHeader) {
  Table t("Demo");
  t.set_header({"#CPUs", "time", "speedup"});
  t.add_row({"8", "75.5", "6.4"});
  t.add_row({"128", "6.6", "73.3"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("#CPUs"), std::string::npos);
  EXPECT_NE(s.find("128"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TableFormat, RejectsRaggedRows) {
  Table t;
  t.add_row({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFormat, NumericCells) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::cell_ratio(2.0, 1), "2.0x");
  EXPECT_EQ(Table::na(), "N/A");
}

TEST(Timers, WallTimerAdvances) {
  pph::util::WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timers, CpuTimerAdvancesUnderWork) {
  pph::util::CpuTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 5000000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

}  // namespace
