// Tests for the combinatorial layer of src/schubert: localization patterns
// (paper Fig 3), the pattern poset and root counts (Fig 4, Table IV), the
// Pieri tree (Fig 5, Table III), the special plane determinant identity,
// chart embeddings, and condition evaluation gradients.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "linalg/lu.hpp"
#include "schubert/conditions.hpp"
#include "schubert/pieri_tree.hpp"
#include "schubert/planes.hpp"
#include "schubert/poset.hpp"
#include "util/prng.hpp"

namespace {

using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::schubert::Pattern;
using pph::schubert::PatternChart;
using pph::schubert::PatternPoset;
using pph::schubert::PieriProblem;
using pph::schubert::PieriTree;
using pph::util::Prng;

// ---- problem sizes ---------------------------------------------------------

TEST(PieriProblem, DimensionsMatchPaperFormulas) {
  PieriProblem pb{2, 2, 1};
  EXPECT_EQ(pb.condition_count(), 8u);  // mp + q(m+p) = 4 + 4
  EXPECT_EQ(pb.concat_rows(), 8u);      // Fig 3: concatenated 8 x 2
  EXPECT_EQ(pb.column_height(0), 4u);   // first column limited to degree 0
  EXPECT_EQ(pb.column_height(1), 8u);   // second column may use degree 1
}

TEST(PieriProblem, HeightsForEvenDegree) {
  PieriProblem pb{3, 2, 2};  // q = 1*p + 0: all columns height (a+1)(m+p)
  EXPECT_EQ(pb.concat_rows(), 10u);
  EXPECT_EQ(pb.column_height(0), 10u);
  EXPECT_EQ(pb.column_height(1), 10u);
}

// ---- patterns --------------------------------------------------------------

TEST(Pattern, Fig3RootPattern) {
  // Paper Fig 3/4: for m=2, p=2, q=1 the full problem localizes at [4 7].
  PieriProblem pb{2, 2, 1};
  const Pattern root = Pattern::root(pb);
  EXPECT_EQ(root.pivots(), (std::vector<std::size_t>{4, 7}));
  EXPECT_EQ(root.level(), 8u);
  EXPECT_TRUE(root.valid());
}

TEST(Pattern, RootFor231) {
  PieriProblem pb{2, 3, 1};
  const Pattern root = Pattern::root(pb);
  EXPECT_EQ(root.level(), pb.condition_count());
  EXPECT_EQ(root.pivots(), (std::vector<std::size_t>{4, 5, 8}));
}

TEST(Pattern, MinimalPatternLevelZero) {
  PieriProblem pb{3, 3, 1};
  const Pattern min = Pattern::minimal(pb);
  EXPECT_EQ(min.level(), 0u);
  EXPECT_TRUE(min.valid());
  EXPECT_TRUE(min.children().empty());
  EXPECT_TRUE(PatternChart(min).cells().empty());
}

TEST(Pattern, ValidityRejectsSpreadViolation) {
  // Rule 3: pivots may not differ by m+p or more: [1 5] invalid for m=p=2.
  PieriProblem pb{2, 2, 1};
  EXPECT_FALSE(Pattern(pb, {1, 5}).valid());
  EXPECT_TRUE(Pattern(pb, {1, 4}).valid());
  EXPECT_TRUE(Pattern(pb, {2, 4}).valid());
}

TEST(Pattern, ValidityRejectsNonIncreasing) {
  PieriProblem pb{2, 2, 0};
  EXPECT_FALSE(Pattern(pb, {3, 3}).valid());
  EXPECT_FALSE(Pattern(pb, {3, 2}).valid());
}

TEST(Pattern, ValidityRejectsHeightViolation) {
  PieriProblem pb{2, 2, 1};
  EXPECT_FALSE(Pattern(pb, {5, 6}).valid());  // column 0 limited to height 4
}

TEST(Pattern, StarAndFreeCells) {
  PieriProblem pb{2, 2, 1};
  const Pattern root = Pattern::root(pb);  // [4 7]
  // Stars: column 0 rows 1..4, column 1 rows 2..7 -> 4 + 6 = 10 cells; minus
  // the two normalized top pivots leaves level() = 8 free cells.
  EXPECT_EQ(root.star_cells().size(), 10u);
  EXPECT_EQ(root.free_cells().size(), 8u);
  EXPECT_EQ(root.free_cells().size(), root.level());
}

TEST(Pattern, ColumnDegreesAndResidues) {
  PieriProblem pb{2, 2, 1};
  const Pattern root = Pattern::root(pb);  // [4 7]
  EXPECT_EQ(root.column_degree(0), 0u);
  EXPECT_EQ(root.column_degree(1), 1u);  // pivot 7 sits in the second block
  EXPECT_EQ(root.pivot_residue(0), 4u);
  EXPECT_EQ(root.pivot_residue(1), 3u);
}

TEST(Pattern, ChildrenMatchFig5Structure) {
  // Fig 5 (m=2, p=2, q=1): [1 3]'s parents (upward covers) are [1 4], [2 3];
  // [1 4]'s only parent is [2 4] ([1 5] violates the spread rule).
  PieriProblem pb{2, 2, 1};
  auto parents_of = [&pb](std::vector<std::size_t> piv) {
    std::set<std::string> out;
    for (const auto& par : Pattern(pb, std::move(piv)).parents()) out.insert(par.to_string());
    return out;
  };
  EXPECT_EQ(parents_of({1, 3}), (std::set<std::string>{"[1 4]", "[2 3]"}));
  EXPECT_EQ(parents_of({1, 4}), (std::set<std::string>{"[2 4]"}));
  EXPECT_EQ(parents_of({4, 6}), (std::set<std::string>{"[4 7]"}));
}

TEST(Pattern, ChildColumnDetection) {
  PieriProblem pb{2, 2, 1};
  const Pattern parent(pb, {2, 4});
  const Pattern child(pb, {1, 4});
  EXPECT_EQ(parent.child_column(child), 0u);
  const Pattern other(pb, {2, 3});
  EXPECT_EQ(parent.child_column(other), 1u);
  EXPECT_EQ(parent.child_column(parent), pb.p);  // not a child
}

// ---- poset and root counts (Table IV) --------------------------------------

struct RootCountCase {
  std::size_t m, p, q;
  std::uint64_t expected;
};

class RootCounts : public ::testing::TestWithParam<RootCountCase> {};

TEST_P(RootCounts, MatchesPaperTableIV) {
  const auto& c = GetParam();
  PatternPoset poset(PieriProblem{c.m, c.p, c.q});
  EXPECT_EQ(poset.root_count(), c.expected);
}

// All root counts of the paper's Table IV.  Note: the paper's printed value
// for (3,3,2) reads "17462"; the chain count (and the quantum Grassmannian
// degree) is 174,762 -- every other cell matches exactly, so we record the
// printed value as a typo (see EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(
    TableIV, RootCounts,
    ::testing::Values(RootCountCase{2, 2, 0, 2}, RootCountCase{2, 2, 1, 8},
                      RootCountCase{2, 2, 2, 32}, RootCountCase{2, 2, 3, 128},
                      RootCountCase{3, 2, 0, 5}, RootCountCase{3, 2, 1, 55},
                      RootCountCase{3, 2, 2, 610}, RootCountCase{3, 2, 3, 6765},
                      RootCountCase{3, 3, 0, 42}, RootCountCase{3, 3, 1, 2730},
                      RootCountCase{3, 3, 2, 174762}, RootCountCase{4, 3, 0, 462},
                      RootCountCase{4, 3, 1, 135660}, RootCountCase{4, 4, 0, 24024}));

TEST(PatternPoset, SymmetricInMAndP) {
  for (std::size_t q = 0; q <= 2; ++q) {
    PatternPoset a(PieriProblem{2, 3, q});
    PatternPoset b(PieriProblem{3, 2, q});
    EXPECT_EQ(a.root_count(), b.root_count()) << "q=" << q;
  }
}

TEST(PatternPoset, QZeroMatchesGrassmannianDegree) {
  for (std::size_t m = 2; m <= 4; ++m) {
    for (std::size_t p = 2; p <= 4; ++p) {
      PatternPoset poset(PieriProblem{m, p, 0});
      EXPECT_EQ(poset.root_count(), pph::schubert::grassmannian_degree(m, p))
          << "m=" << m << " p=" << p;
    }
  }
}

TEST(PatternPoset, FibonacciFamily) {
  // d(3,2,q) = F_{5(q+1)} (5, 55, 610, 6765, ...).
  auto fib = [](std::size_t k) {
    std::uint64_t a = 0, b = 1;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t t = a + b;
      a = b;
      b = t;
    }
    return a;
  };
  for (std::size_t q = 0; q <= 3; ++q) {
    PatternPoset poset(PieriProblem{3, 2, q});
    EXPECT_EQ(poset.root_count(), fib(5 * (q + 1))) << "q=" << q;
  }
}

TEST(PatternPoset, LevelsAndMinimalLevelWidths) {
  PatternPoset poset(PieriProblem{2, 2, 1});
  EXPECT_EQ(poset.levels(), 9u);  // levels 0..8
  EXPECT_EQ(poset.patterns_at_level(0).size(), 1u);
  EXPECT_EQ(poset.patterns_at_level(8).size(), 1u);  // unique root
}

TEST(PatternPoset, JobsPerLevelMatchesTableIII) {
  // Table III: (m=3, p=2, q=1) -- 252 paths over 11 levels.
  PatternPoset poset(PieriProblem{3, 2, 1});
  const auto jobs = poset.jobs_per_level();
  const std::vector<std::uint64_t> expected{1, 2, 3, 5, 8, 13, 21, 34, 55, 55, 55};
  EXPECT_EQ(jobs, expected);
  EXPECT_EQ(poset.total_jobs(), 252u);
}

TEST(PatternPoset, ChainCountOfMinimalIsOne) {
  PatternPoset poset(PieriProblem{2, 2, 1});
  EXPECT_EQ(poset.chain_count(Pattern::minimal(PieriProblem{2, 2, 1})), 1u);
}

// ---- Pieri tree (Fig 5) ----------------------------------------------------

TEST(PieriTreeTest, Fig5LeafAndNodeCounts) {
  PieriTree tree(PieriProblem{2, 2, 1});
  EXPECT_EQ(tree.leaf_count(), 8u);  // == root count
  // Edges per depth must match the poset job counts.
  PatternPoset poset(PieriProblem{2, 2, 1});
  const auto jobs = poset.jobs_per_level();
  for (std::size_t d = 1; d < tree.depth_count(); ++d) {
    EXPECT_EQ(tree.nodes_at_depth(d).size(), jobs[d - 1]) << "depth " << d;
  }
  EXPECT_EQ(tree.edge_count(), poset.total_jobs());
}

TEST(PieriTreeTest, EveryLeafPatternIsRoot) {
  PieriTree tree(PieriProblem{2, 2, 1});
  const Pattern root = Pattern::root(PieriProblem{2, 2, 1});
  for (const auto idx : tree.nodes_at_depth(tree.depth_count() - 1)) {
    EXPECT_TRUE(tree.nodes()[idx].pattern == root);
  }
}

TEST(PieriTreeTest, ParentChildDepthsConsistent) {
  PieriTree tree(PieriProblem{2, 3, 1});
  for (std::size_t i = 1; i < tree.node_count(); ++i) {
    const auto& node = tree.nodes()[i];
    EXPECT_EQ(tree.nodes()[node.parent].depth + 1, node.depth);
    EXPECT_EQ(tree.nodes()[node.parent].pattern.child_column(node.pattern),
              tree.nodes()[node.parent].pattern.problem().p)
        << "parent must be the node's child pattern, not vice versa";
  }
}

TEST(PieriTreeTest, NodeBudgetEnforced) {
  EXPECT_THROW(PieriTree(PieriProblem{4, 3, 1}, 1000), std::length_error);
}

// ---- special plane ---------------------------------------------------------

TEST(SpecialPlane, DeterminantIsPivotProduct) {
  // Property test of the K_F identity: det([X(1,0) | K_F]) = sign * prod of
  // bottom-pivot entries, over random patterns and random coordinates.
  Prng rng(99);
  const std::vector<PieriProblem> problems{{2, 2, 1}, {2, 3, 1}, {3, 2, 1}, {3, 3, 0}, {2, 2, 3}};
  for (const auto& pb : problems) {
    PatternPoset poset(pb);
    for (std::size_t level = 1; level <= pb.condition_count(); ++level) {
      const auto& pats = poset.patterns_at_level(level);
      const Pattern& pattern = pats[rng.uniform_index(pats.size())];
      PatternChart chart(pattern);
      CVector coords(chart.dimension());
      for (auto& v : coords) v = rng.normal_complex();
      const CMatrix kf = pph::schubert::special_plane(pattern);
      const auto eval = pph::schubert::evaluate_condition(chart, coords, kf, Complex{1.0, 0.0},
                                                          Complex{0.0, 0.0});
      // Product of the bottom-pivot entries of the concatenated matrix.
      Complex prod{1.0, 0.0};
      const CMatrix xhat = chart.concatenated(coords);
      for (std::size_t j = 0; j < pb.p; ++j) prod *= xhat(pattern.pivot(j) - 1, j);
      prod *= static_cast<double>(pph::schubert::special_plane_sign(pattern));
      EXPECT_NEAR(std::abs(eval.value - prod), 0.0, 1e-10 * (1.0 + std::abs(prod)))
          << pattern.to_string();
    }
  }
}

TEST(SpecialPlane, ColumnsAreUnitVectors) {
  PieriProblem pb{2, 3, 1};
  const Pattern root = Pattern::root(pb);
  const CMatrix kf = pph::schubert::special_plane(root);
  EXPECT_EQ(kf.rows(), pb.space_dim());
  EXPECT_EQ(kf.cols(), pb.m);
  for (std::size_t c = 0; c < kf.cols(); ++c) {
    double colsum = 0.0;
    for (std::size_t r = 0; r < kf.rows(); ++r) colsum += std::abs(kf(r, c));
    EXPECT_NEAR(colsum, 1.0, 1e-15);
  }
}

// ---- charts and conditions -------------------------------------------------

TEST(PatternChart, EmbedChildInsertsZeroAtNewCell) {
  PieriProblem pb{2, 2, 1};
  const Pattern parent(pb, {3, 5});
  const Pattern child(pb, {3, 4});
  PatternChart pc(parent), cc(child);
  Prng rng(5);
  CVector child_coords(cc.dimension());
  for (auto& v : child_coords) v = rng.normal_complex();
  const CVector embedded = pc.embed_child(cc, child_coords);
  EXPECT_EQ(embedded.size(), child_coords.size() + 1);
  // The maps agree at any (s, u=1) because the new cell is zero.
  const Complex s{0.3, 0.7};
  const CMatrix a_child = cc.evaluate_map(child_coords, s, Complex{1, 0});
  const CMatrix a_parent = pc.evaluate_map(embedded, s, Complex{1, 0});
  EXPECT_NEAR(pph::linalg::norm_frobenius(a_child - a_parent), 0.0, 1e-13);
}

TEST(PatternChart, ConcatenatedHasTopPivotOnes) {
  PieriProblem pb{2, 3, 1};
  const Pattern root = Pattern::root(pb);
  PatternChart chart(root);
  const CVector coords(chart.dimension(), Complex{0.5, -0.5});
  const CMatrix xhat = chart.concatenated(coords);
  for (std::size_t j = 0; j < pb.p; ++j) EXPECT_EQ(xhat(j, j), (Complex{1, 0}));
}

TEST(Conditions, GradientMatchesFiniteDifference) {
  Prng rng(7);
  PieriProblem pb{2, 2, 1};
  const Pattern root = Pattern::root(pb);
  PatternChart chart(root);
  CVector coords(chart.dimension());
  for (auto& v : coords) v = rng.normal_complex();
  CMatrix plane(pb.space_dim(), pb.m);
  for (std::size_t r = 0; r < plane.rows(); ++r)
    for (std::size_t c = 0; c < plane.cols(); ++c) plane(r, c) = rng.normal_complex();
  const Complex s{0.4, 0.2}, u{1.0, 0.0};
  const auto eval = pph::schubert::evaluate_condition(chart, coords, plane, s, u);
  const double h = 1e-7;
  for (std::size_t k = 0; k < coords.size(); ++k) {
    CVector bumped = coords;
    bumped[k] += Complex{h, 0};
    const auto ev2 = pph::schubert::evaluate_condition(chart, bumped, plane, s, u);
    const Complex fd = (ev2.value - eval.value) / h;
    EXPECT_NEAR(std::abs(eval.gradient[k] - fd), 0.0, 1e-5 * (1.0 + std::abs(fd))) << "k=" << k;
  }
}

TEST(Conditions, CofactorMatrixMatchesInverseScaling) {
  // For invertible B: cof = det(B) * inv(B)^T.
  Prng rng(8);
  CMatrix b(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) b(r, c) = rng.normal_complex();
  pph::linalg::LU lu(b);
  const auto inv = lu.inverse();
  ASSERT_TRUE(inv.has_value());
  const Complex det = lu.determinant();
  const CMatrix cof = pph::schubert::cofactor_matrix(b);
  const CMatrix expected = inv->transpose() * det;
  EXPECT_NEAR(pph::linalg::norm_frobenius(cof - expected), 0.0, 1e-8 * std::abs(det));
}

TEST(Conditions, ResidualSmallOnConstructedIntersection) {
  // Build a plane that contains X(s0) * e1 so the condition holds exactly.
  Prng rng(9);
  PieriProblem pb{2, 2, 0};
  const Pattern root = Pattern::root(pb);
  PatternChart chart(root);
  CVector coords(chart.dimension());
  for (auto& v : coords) v = rng.normal_complex();
  const Complex s0{0.3, -0.4};
  const CMatrix x = chart.evaluate_map(coords, s0, Complex{1, 0});
  // Plane spanned by X(s0) e_1 and a random vector: meets the column span.
  CMatrix plane(pb.space_dim(), pb.m);
  for (std::size_t r = 0; r < plane.rows(); ++r) {
    plane(r, 0) = x(r, 0);
    plane(r, 1) = rng.normal_complex();
  }
  const double res = pph::schubert::condition_residual(chart, coords,
                                                       pph::schubert::PlaneCondition{plane, s0});
  EXPECT_LT(res, 1e-12);
}

TEST(Conditions, ResidualLargeOnGenericPlane) {
  Prng rng(10);
  PieriProblem pb{2, 2, 0};
  PatternChart chart(Pattern::root(pb));
  CVector coords(chart.dimension());
  for (auto& v : coords) v = rng.normal_complex();
  CMatrix plane(pb.space_dim(), pb.m);
  for (std::size_t r = 0; r < plane.rows(); ++r)
    for (std::size_t c = 0; c < plane.cols(); ++c) plane(r, c) = rng.normal_complex();
  EXPECT_GT(pph::schubert::condition_residual(chart, coords,
                                              pph::schubert::PlaneCondition{plane, Complex{0.1, 0.2}}),
            1e-6);
}

}  // namespace
