// Tests for the solve service (DESIGN.md section 10): arrival-process
// determinism, streamed-vs-drained bit-identity (admission timing must
// never change the numerics), backpressure (drop and block), graceful
// deadline shutdown with zero loss, runtime-vs-simulator agreement on a
// fixed trace, the LatencySink / tee(...) sink combinators, and the fluent
// SessionOptions front door.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sched/arrival.hpp"
#include "sched/session.hpp"
#include "sched/stream_source.hpp"
#include "scheduler_fixture.hpp"
#include "simcluster/service_sim.hpp"

namespace {

namespace sched = pph::sched;
namespace simcluster = pph::simcluster;
using pph::testing::SchedulerTest;
using pph::util::Prng;

// ---- arrival processes ------------------------------------------------------

TEST(ArrivalProcess, PoissonTraceIsSeedDeterministic) {
  sched::PoissonArrivals a(100.0), b(100.0);
  Prng ra(7), rb(7), rc(8);
  const auto ta = sched::arrival_times(a, ra, 50);
  const auto tb = sched::arrival_times(b, rb, 50);
  EXPECT_EQ(ta, tb);  // same seed -> bitwise-equal trace
  sched::PoissonArrivals c(100.0);
  const auto tc = sched::arrival_times(c, rc, 50);
  EXPECT_NE(ta, tc);
  EXPECT_TRUE(std::is_sorted(ta.begin(), ta.end()));
}

TEST(ArrivalProcess, PoissonMeanInterarrivalNearInverseRate) {
  sched::PoissonArrivals p(200.0);
  Prng rng(11);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += p.next_interarrival(rng);
  EXPECT_NEAR(sum / n, 1.0 / 200.0, 0.001);  // CLT: ~4 sigma margin
}

TEST(ArrivalProcess, BernoulliGapsAreSlotMultiples) {
  const double slot = 0.001;
  sched::BernoulliArrivals b(0.25, slot);
  EXPECT_NEAR(b.rate(), 250.0, 1e-9);
  Prng rng(12);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double g = b.next_interarrival(rng);
    EXPECT_GE(g, slot * 0.999);
    EXPECT_NEAR(std::round(g / slot) * slot, g, 1e-12) << "gap not a slot multiple";
    sum += g;
  }
  // Geometric(p) mean slot count = 1/p = 4 slots.
  EXPECT_NEAR(sum / n, slot / 0.25, 4e-4);
}

TEST(ArrivalProcess, OnOffLongRunRateBetweenSilenceAndBurst) {
  sched::OnOffArrivals oo(/*burst_rate=*/1000.0, /*mean_on=*/0.01, /*mean_off=*/0.03);
  EXPECT_NEAR(oo.rate(), 250.0, 1e-9);
  Prng rng(13);
  const auto t = sched::arrival_times(oo, rng, 3000);
  const double measured = 3000.0 / t.back();
  EXPECT_GT(measured, 100.0);   // far below the burst rate (off phases)...
  EXPECT_LT(measured, 1000.0);  // ...but clearly not silent
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
}

TEST(ArrivalProcess, RejectsBadParameters) {
  EXPECT_THROW(sched::PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(sched::BernoulliArrivals(0.0, 0.001), std::invalid_argument);
  EXPECT_THROW(sched::BernoulliArrivals(1.5, 0.001), std::invalid_argument);
  EXPECT_THROW(sched::OnOffArrivals(100.0, 0.0, 0.01), std::invalid_argument);
}

// ---- percentile accumulator (util/stats surface the service relies on) ------

TEST(PercentileAccumulator, PercentilesAndMerge) {
  pph::util::PercentileAccumulator acc;
  for (int i = 100; i >= 1; --i) acc.add(static_cast<double>(i));
  EXPECT_EQ(acc.count(), 100u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 100.0);
  EXPECT_NEAR(acc.p50(), 50.5, 1e-9);
  EXPECT_NEAR(acc.p99(), 99.01, 1e-9);
  pph::util::PercentileAccumulator other;
  other.add(1000.0);
  acc.merge(other);
  EXPECT_EQ(acc.count(), 101u);
  EXPECT_DOUBLE_EQ(acc.max(), 1000.0);
  pph::util::PercentileAccumulator empty;
  EXPECT_EQ(empty.percentile(50.0), 0.0);
}

// ---- streamed == drained bit-identity ---------------------------------------

TEST_F(SchedulerTest, StreamedFcfsServeMatchesDrainedRun) {
  // A fast Poisson trace: arrivals interleave with tracking, yet the
  // result set must be bit-identical to a batch drain of the same pool.
  sched::PoissonArrivals proc(4000.0);
  Prng rng(21);
  const auto trace = sched::arrival_times(proc, rng, starts_.size());

  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, trace);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink, sched::SessionOptions());
  const auto stats = session.serve(4);

  EXPECT_EQ(stats.service.arrivals, starts_.size());
  EXPECT_EQ(stats.service.admitted, starts_.size());
  EXPECT_EQ(stats.service.dropped, 0u);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.service.sojourn.count(), starts_.size());
  const auto streamed = sink.report(stats);
  const auto drained = sched::run_paths(workload_, 4);
  expect_identical_results(streamed, drained);
}

TEST_F(SchedulerTest, StreamedBatchStealServeMatchesDrainedRun) {
  sched::PoissonArrivals proc(4000.0);
  Prng rng(22);
  const auto trace = sched::arrival_times(proc, rng, starts_.size());

  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, trace);
  sched::InMemoryReportSink sink;
  sched::Session session(
      stream, sink, sched::SessionOptions().with_policy(sched::Policy::kBatchSteal));
  const auto stats = session.serve(4);

  EXPECT_TRUE(stats.service.drained());
  const auto streamed = sink.report(stats);
  const auto drained = sched::run_paths(
      workload_, 4, sched::SessionOptions().with_policy(sched::Policy::kBatchSteal));
  expect_identical_results(streamed, drained);
}

// ---- backpressure -----------------------------------------------------------

TEST_F(SchedulerTest, BurstDropsOverflowDeterministically) {
  // Every request arrives at t=0; a 30-deep queue with kDrop must admit
  // exactly the first 30 and reject the other 90 -- deterministically,
  // because poll() runs to completion before any dispatch.
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(
      inner, burst,
      sched::StreamOptions().with_capacity(30, sched::AdmissionPolicy::kDrop));
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink, sched::SessionOptions());
  const auto stats = session.serve(4);

  EXPECT_EQ(stats.service.arrivals, 120u);
  EXPECT_EQ(stats.service.admitted, 30u);
  EXPECT_EQ(stats.service.dropped, 90u);
  EXPECT_EQ(stats.service.completed, 30u);
  EXPECT_EQ(stats.service.max_queue_depth, 30u);
  EXPECT_TRUE(stats.service.drained());
  // The first 30 requests in pool order survive, tracked bit-identically.
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    EXPECT_EQ(static_cast<int>(report.paths[i].result.status),
              static_cast<int>(baseline_[i].status));
  }
}

TEST_F(SchedulerTest, BlockingDoorAdmitsEverythingWithinCapacity) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(
      inner, burst,
      sched::StreamOptions().with_capacity(8, sched::AdmissionPolicy::kBlock));
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink, sched::SessionOptions());
  const auto stats = session.serve(4);

  EXPECT_EQ(stats.service.admitted, 120u);  // flow control, no loss
  EXPECT_EQ(stats.service.dropped, 0u);
  EXPECT_LE(stats.service.max_queue_depth, 8u);
  EXPECT_TRUE(stats.service.drained());
  expect_matches_baseline(sink.report(stats));
}

// ---- graceful shutdown ------------------------------------------------------

TEST_F(SchedulerTest, DeadlineShedsUnarrivedAndDrainsInFlight) {
  // 40 requests arrive immediately; the rest are scheduled far past the
  // deadline and must be shed, while everything admitted drains.
  std::vector<double> trace(starts_.size(), 100.0);
  for (std::size_t i = 0; i < 40; ++i) trace[i] = 0.0;
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, trace);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions().with_serve_deadline(0.25));
  const auto stats = session.serve(4);

  EXPECT_EQ(stats.service.arrivals, 40u);
  EXPECT_EQ(stats.service.admitted, 40u);
  EXPECT_EQ(stats.service.shed, 80u);
  EXPECT_EQ(stats.service.completed, 40u);
  EXPECT_TRUE(stats.service.drained());  // zero-loss drain
  EXPECT_GE(stats.wall_seconds, 0.25);
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(report.paths[i].index, i);
}

// ---- fail injection under serve ---------------------------------------------

TEST_F(SchedulerTest, ServeSurvivesWorkerDeathWithZeroLoss) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions().with_kill_after(3, /*rank=*/2));
  const auto stats = session.serve(4);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.service.completed, 120u);
  expect_matches_baseline(sink.report(stats));
}

// ---- runtime vs simulator on a fixed trace ----------------------------------

TEST_F(SchedulerTest, SimulatorAgreesWithRuntimeOnBurstTrace) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(
      inner, burst,
      sched::StreamOptions().with_capacity(30, sched::AdmissionPolicy::kDrop));
  sched::DiscardSink sink;
  sched::Session session(stream, sink, sched::SessionOptions());
  const auto real = session.serve(4);

  // Same trace, same queue bound, 3 workers; service times are irrelevant
  // to the admission counters on a burst.
  simcluster::ServiceSimOptions opts;
  opts.queue_capacity = 30;
  opts.on_full = sched::AdmissionPolicy::kDrop;
  const std::vector<double> durations(starts_.size(), 1e-3);
  const auto sim = simcluster::simulate_service(durations, burst, 3, opts);

  EXPECT_EQ(sim.service.arrivals, real.service.arrivals);
  EXPECT_EQ(sim.service.admitted, real.service.admitted);
  EXPECT_EQ(sim.service.dropped, real.service.dropped);
  EXPECT_EQ(sim.service.shed, real.service.shed);
  EXPECT_EQ(sim.service.completed, real.service.completed);
  EXPECT_EQ(sim.service.max_queue_depth, real.service.max_queue_depth);
  EXPECT_EQ(sim.dispatches, 30u);
}

TEST(ServiceSim, QueueDrainsAndMeasuresSojourn) {
  // 4 unit jobs on 1 worker arriving together: sojourns 1,2,3,4.
  const std::vector<double> durations(4, 1.0);
  const std::vector<double> arrivals(4, 0.0);
  const auto out = simcluster::simulate_service(durations, arrivals, 1);
  EXPECT_EQ(out.service.completed, 4u);
  EXPECT_EQ(out.service.max_queue_depth, 4u);
  EXPECT_DOUBLE_EQ(out.makespan, 4.0);
  EXPECT_EQ(out.service.sojourn.count(), 4u);
  EXPECT_DOUBLE_EQ(out.service.sojourn.min(), 1.0);
  EXPECT_DOUBLE_EQ(out.service.sojourn.max(), 4.0);
  EXPECT_EQ(out.dispatches, 4u);
}

TEST(ServiceSim, DeadlineShedsLateArrivals) {
  const std::vector<double> durations(3, 0.5);
  const std::vector<double> arrivals{0.0, 0.0, 10.0};
  simcluster::ServiceSimOptions opts;
  opts.deadline_seconds = 1.0;
  const auto out = simcluster::simulate_service(durations, arrivals, 2, opts);
  EXPECT_EQ(out.service.arrivals, 2u);
  EXPECT_EQ(out.service.shed, 1u);
  EXPECT_EQ(out.service.completed, 2u);
  EXPECT_TRUE(out.service.drained());
}

// ---- request reliability (DESIGN.md section 13) -----------------------------

using pph::homotopy::PathStatus;

TEST_F(SchedulerTest, ReliabilityIsServeOnly) {
  // Budgets attach at the stream's admission gate; a drain run has none.
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  sched::Session session(source, sink,
                         sched::SessionOptions().with_reliability(
                             sched::ReliabilityOptions().with_deadline(1.0)));
  EXPECT_THROW(session.run(4), std::invalid_argument);
}

TEST_F(SchedulerTest, ReliabilityOptionsAreValidated) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::DiscardSink sink;
  const auto serve_with = [&](sched::ReliabilityOptions ro) {
    sched::VectorJobSource inner(workload_);
    sched::StreamJobSource stream(inner, burst);
    sched::Session session(stream, sink, sched::SessionOptions().with_reliability(ro));
    session.serve(4);
  };
  sched::ReliabilityOptions zero_attempts;
  zero_attempts.budget.max_attempts = 0;
  EXPECT_THROW(serve_with(zero_attempts), std::invalid_argument);
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_attempts(2, -0.5)),
               std::invalid_argument);
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_attempts(2, 0.1, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_attempts(2, 0.1, 2.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_deadline(-1.0)),
               std::invalid_argument);
  // Brownout watermarks must be ordered: shedding may not trip before the
  // shallower degradations.
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_overload(
                   sched::OverloadOptions().with_depths(30, 20, 10))),
               std::invalid_argument);
  EXPECT_THROW(serve_with(sched::ReliabilityOptions().with_overload(
                   sched::OverloadOptions().with_depths(5, 10, 20).with_hysteresis(0.0, 0.0))),
               std::invalid_argument);
}

TEST_F(SchedulerTest, GenerousBudgetLeavesResultsBitIdentical) {
  // A cancellable frame threads a cancel poll into every tracker call; the
  // poll must never change the numerics.  With a deadline no request can
  // miss, the served results are bit-identical to a drained run without
  // the layer.
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions().with_reliability(
                             sched::ReliabilityOptions().with_deadline(1000.0)));
  const auto stats = session.serve(4);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.service.completed, starts_.size());
  EXPECT_EQ(stats.service.expired, 0u);
  EXPECT_EQ(stats.reliability.cancelled, 0u);
  EXPECT_EQ(stats.reliability.retried, 0u);
  EXPECT_EQ(stats.service.terminal_requests(), starts_.size());
  const auto drained = sched::run_paths(workload_, 4);
  expect_identical_results(sink.report(stats), drained);
}

TEST_F(SchedulerTest, DeadlineZeroExpiresEveryRequestAtAdmission) {
  // A zero budget is due the instant on_admit stamps it: the sweep right
  // after the first poll() expires the whole burst before any dispatch,
  // and the sink sees one synthesized kDeadlineExpired record per request.
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions().with_reliability(
                             sched::ReliabilityOptions().with_deadline(0.0)));
  const auto stats = session.serve(4);
  EXPECT_EQ(stats.service.arrivals, starts_.size());
  EXPECT_EQ(stats.service.admitted, starts_.size());
  EXPECT_EQ(stats.service.expired, starts_.size());
  EXPECT_EQ(stats.service.completed, 0u);
  EXPECT_EQ(stats.reliability.cancelled, 0u);  // nothing ever dispatched
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.service.terminal_requests(), starts_.size());
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), starts_.size());
  EXPECT_EQ(report.expired, starts_.size());
  for (std::size_t i = 0; i < report.paths.size(); ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    EXPECT_EQ(report.paths[i].result.status, PathStatus::kDeadlineExpired);
    EXPECT_EQ(report.paths[i].worker, -1);
  }
  // The simulator twin on the same trace: every counter bit-equal.
  simcluster::ServiceSimOptions sopts;
  sopts.reliability = sched::ReliabilityOptions().with_deadline(0.0);
  const std::vector<double> durations(starts_.size(), 1e-3);
  const auto sim = simcluster::simulate_service(durations, burst, 3, sopts);
  EXPECT_EQ(sim.service.admitted, stats.service.admitted);
  EXPECT_EQ(sim.service.expired, stats.service.expired);
  EXPECT_EQ(sim.service.completed, stats.service.completed);
  EXPECT_EQ(sim.service.terminal_requests(), stats.service.terminal_requests());
  EXPECT_EQ(sim.reliability.cancelled, stats.reliability.cancelled);
  EXPECT_EQ(sim.dispatches, 0u);
}

TEST_F(SchedulerTest, InFlightCancelStopsTheTrackerMidPath) {
  // One slave, two requests, and a microscopic step cap that makes each
  // track take effectively forever: request 0 expires IN FLIGHT (the
  // cancel poll stops the tracker within one step and the slave's stub is
  // dropped by the ownerless-result path -- exactly once), request 1
  // expires in queue before any worker saw it.
  std::vector<pph::linalg::CVector> two(starts_.begin(), starts_.begin() + 2);
  sched::PathWorkload slow = workload_;
  slow.starts = &two;
  slow.tracker.initial_step = 1e-7;
  slow.tracker.max_step = 1e-7;
  slow.tracker.max_steps = 100000000;  // hours of work: the deadline always wins
  sched::VectorJobSource inner(slow);
  sched::StreamJobSource stream(inner, std::vector<double>(2, 0.0));
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions().with_initial_jobs(1).with_reliability(
                             sched::ReliabilityOptions().with_deadline(0.05)));
  const auto stats = session.serve(2);
  EXPECT_EQ(stats.service.admitted, 2u);
  EXPECT_EQ(stats.service.expired, 2u);
  EXPECT_EQ(stats.service.completed, 0u);
  EXPECT_EQ(stats.reliability.cancelled, 1u);  // only request 0 was dispatched
  EXPECT_TRUE(stats.service.drained());
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), 2u);  // the cancelled stub was not double-counted
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    EXPECT_EQ(report.paths[i].result.status, PathStatus::kDeadlineExpired);
    EXPECT_EQ(report.paths[i].worker, -1);
  }
  // Twin: 1 worker, service times far past the deadline -> same counters
  // (one mid-flight cancellation, two expiries).
  simcluster::ServiceSimOptions sopts;
  sopts.reliability = sched::ReliabilityOptions().with_deadline(0.05);
  const auto sim = simcluster::simulate_service(std::vector<double>(2, 10.0),
                                                std::vector<double>(2, 0.0), 1, sopts);
  EXPECT_EQ(sim.reliability.cancelled, stats.reliability.cancelled);
  EXPECT_EQ(sim.service.expired, stats.service.expired);
  EXPECT_EQ(sim.service.completed, stats.service.completed);
  EXPECT_EQ(sim.service.terminal_requests(), stats.service.terminal_requests());
}

TEST_F(SchedulerTest, FailedRequestsRetryWithBackoffThenDeliver) {
  // A one-step budget makes every track fail instantly and
  // deterministically.  Each request burns its 3 attempts (2 retries with
  // deterministic jittered backoff), then the exhausted attempt delivers
  // its genuine kFailed result -- completed, never expired.  The simulator
  // twin scripts the same failures and must draw bit-identical backoffs.
  sched::PathWorkload failing = workload_;
  failing.tracker.max_steps = 1;
  sched::VectorJobSource inner(failing);
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  const auto rel = sched::ReliabilityOptions()
                       .with_attempts(3, 0.002, 2.0, 0.25)
                       .with_jitter_seed(42);
  sched::Session session(stream, sink, sched::SessionOptions().with_reliability(rel));
  const auto stats = session.serve(4);
  const std::size_t n = starts_.size();
  EXPECT_EQ(stats.service.completed, n);
  EXPECT_EQ(stats.service.expired, 0u);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.reliability.retried, 2 * n);
  EXPECT_EQ(stats.reliability.backoff_wait.count(), 2 * n);
  // Jittered exponential backoff: attempt 1 in [1.5, 2.5] ms, attempt 2
  // doubled -- every draw inside the jitter envelope.
  EXPECT_GE(stats.reliability.backoff_wait.min(), 0.002 * 0.75);
  EXPECT_LE(stats.reliability.backoff_wait.max(), 0.004 * 1.25);
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    EXPECT_EQ(report.paths[i].result.status, PathStatus::kFailed);
  }

  simcluster::ServiceSimOptions sopts;
  sopts.reliability = rel;
  sopts.fails.assign(n, 3);  // every attempt fails; the budget caps at 3
  const std::vector<double> durations(n, 1e-4);
  const auto sim = simcluster::simulate_service(durations, burst, 3, sopts);
  EXPECT_EQ(sim.reliability.retried, stats.reliability.retried);
  EXPECT_EQ(sim.service.completed, stats.service.completed);
  EXPECT_EQ(sim.service.expired, stats.service.expired);
  // The backoff draws depend only on (seed, id, attempt): the sample
  // multisets must match bit for bit, runtime vs simulator.
  auto a = stats.reliability.backoff_wait.samples();
  auto b = sim.reliability.backoff_wait.samples();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(SchedulerTest, SimulatorMatchesRuntimeBrownoutTransitions) {
  // A 120-request burst through watermarks 5/10/20 with time-free
  // hysteresis (dwell 0): admission escalates 0->1->2->3 at depths 5, 10,
  // 20, the 100 requests still at the door are shed, and the drain
  // de-escalates 3->2->1->0 as the queue empties.  The runtime and the
  // twin drive the SAME OverloadController through the same depth
  // sequence, so every brownout counter is bit-equal.
  const auto rel = sched::ReliabilityOptions().with_overload(
      sched::OverloadOptions().with_depths(5, 10, 20).with_hysteresis(0.5, 0.0));
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::DiscardSink sink;
  sched::Session session(stream, sink, sched::SessionOptions().with_reliability(rel));
  const auto stats = session.serve(3);

  EXPECT_EQ(stats.service.admitted, 20u);
  EXPECT_EQ(stats.service.shed, 100u);
  EXPECT_EQ(stats.reliability.brownout_shed, 100u);
  EXPECT_EQ(stats.service.completed, 20u);
  EXPECT_EQ(stats.reliability.max_brownout_level, 3u);
  EXPECT_EQ(stats.reliability.brownout_transitions, 6u);  // 3 up + 3 down
  EXPECT_EQ(stats.service.terminal_requests(), starts_.size());

  simcluster::ServiceSimOptions sopts;
  sopts.reliability = rel;
  const std::vector<double> durations(starts_.size(), 1e-3);
  const auto sim = simcluster::simulate_service(durations, burst, 2, sopts);
  EXPECT_EQ(sim.service.admitted, stats.service.admitted);
  EXPECT_EQ(sim.service.shed, stats.service.shed);
  EXPECT_EQ(sim.reliability.brownout_shed, stats.reliability.brownout_shed);
  EXPECT_EQ(sim.service.completed, stats.service.completed);
  EXPECT_EQ(sim.reliability.max_brownout_level, stats.reliability.max_brownout_level);
  EXPECT_EQ(sim.reliability.brownout_transitions, stats.reliability.brownout_transitions);
  EXPECT_EQ(sim.service.terminal_requests(), stats.service.terminal_requests());
}

TEST(StatsJson, RendersSingleLineObjects) {
  sched::ServiceStats svc;
  svc.arrivals = 7;
  svc.completed = 5;
  svc.expired = 2;
  const auto sj = sched::to_json(svc);
  EXPECT_NE(sj.find("\"arrivals\":7"), std::string::npos);
  EXPECT_NE(sj.find("\"expired\":2"), std::string::npos);
  EXPECT_NE(sj.find("\"terminal_requests\":7"), std::string::npos);
  EXPECT_EQ(sj.find('\n'), std::string::npos);

  sched::ReliabilityStats rel;
  rel.cancelled = 3;
  rel.backoff_wait.add(0.25);
  const auto rj = sched::to_json(rel);
  EXPECT_NE(rj.find("\"cancelled\":3"), std::string::npos);
  EXPECT_NE(rj.find("\"backoff_wait_count\":1"), std::string::npos);
  EXPECT_EQ(rj.find('\n'), std::string::npos);

  sched::SupervisionStats sup;
  sup.quarantined = 1;
  const auto pj = sched::to_json(sup);
  EXPECT_NE(pj.find("\"quarantined\":1"), std::string::npos);
  EXPECT_EQ(pj.find('\n'), std::string::npos);
}

// ---- sink combinators -------------------------------------------------------

TEST_F(SchedulerTest, TeeFansOutToEverySink) {
  sched::InMemoryReportSink a, b;
  auto fan = sched::tee(a, b);
  const sched::TrackedPath tp{/*index=*/3, /*worker=*/1, /*seconds=*/0.0,
                              /*level=*/0, baseline_[3]};
  fan.accept(tp);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 1u);
}

TEST_F(SchedulerTest, LatencySinkMeasuresAdmitToReport) {
  sched::PoissonArrivals proc(4000.0);
  Prng rng(31);
  const auto trace = sched::arrival_times(proc, rng, starts_.size());
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, trace);
  sched::InMemoryReportSink mem;
  sched::LatencySink lat(mem);
  stream.set_admit_observer([&](sched::JobId id) { lat.admit(id); });
  sched::Session session(stream, lat, sched::SessionOptions());
  const auto stats = session.serve(4);

  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(lat.latencies().count(), starts_.size());
  EXPECT_GT(lat.latencies().p50(), 0.0);
  EXPECT_LE(lat.latencies().p50(), lat.latencies().p99());
  expect_matches_baseline(mem.report(stats));
}

// ---- front-door validation --------------------------------------------------

TEST_F(SchedulerTest, FluentOptionsSetEveryField) {
  const auto opts = sched::SessionOptions()
                        .with_policy(sched::Policy::kBatchSteal)
                        .with_assignment(sched::StaticAssignment::kBlock)
                        .with_initial_jobs(2)
                        .with_batch(3.0, 4)
                        .with_latency(0.001)
                        .with_kill_after(5, 2)
                        .with_stop_after(7)
                        .with_serve_deadline(1.5)
                        .with_supervision(pph::sched::SupervisorOptions()
                                              .with_heartbeat(0.05)
                                              .with_miss_budget(10, 3.0)
                                              .with_hang_factor(8.0)
                                              .with_speculation(4.0, 6)
                                              .with_max_attempts(2)
                                              .with_ewma_alpha(0.5))
                        .with_fault_plan(pph::mp::FaultPlan().kill(2, 5).straggle(1, 0, 0.01))
                        .with_name("fluent-test");
  EXPECT_EQ(opts.policy, sched::Policy::kBatchSteal);
  EXPECT_EQ(opts.assignment, sched::StaticAssignment::kBlock);
  EXPECT_EQ(opts.initial_jobs_per_slave, 2u);
  EXPECT_DOUBLE_EQ(opts.factor, 3.0);
  EXPECT_EQ(opts.min_batch, 4u);
  EXPECT_DOUBLE_EQ(opts.injected_latency, 0.001);
  EXPECT_EQ(opts.kill_slave_after_jobs, std::optional<std::size_t>(5));
  EXPECT_EQ(opts.kill_slave_rank, 2);
  EXPECT_EQ(opts.stop_after_results, std::optional<std::size_t>(7));
  EXPECT_EQ(opts.serve_deadline_seconds, std::optional<double>(1.5));
  EXPECT_TRUE(opts.supervisor.enabled);  // with_supervision is the opt-in
  EXPECT_DOUBLE_EQ(opts.supervisor.heartbeat_seconds, 0.05);
  EXPECT_EQ(opts.supervisor.miss_budget, 10u);
  EXPECT_DOUBLE_EQ(opts.supervisor.death_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(opts.supervisor.hang_factor, 8.0);
  EXPECT_TRUE(opts.supervisor.speculate);
  EXPECT_DOUBLE_EQ(opts.supervisor.speculation_factor, 4.0);
  EXPECT_EQ(opts.supervisor.speculation_min_samples, 6u);
  EXPECT_EQ(opts.supervisor.max_attempts, 2u);
  EXPECT_DOUBLE_EQ(opts.supervisor.ewma_alpha, 0.5);
  ASSERT_EQ(opts.fault_plan.actions().size(), 2u);
  EXPECT_EQ(opts.fault_plan.actions()[0].kind, pph::mp::FaultKind::kDieSilently);
  EXPECT_EQ(opts.fault_plan.actions()[1].kind, pph::mp::FaultKind::kStraggle);
  EXPECT_FALSE(pph::sched::SessionOptions().supervisor.enabled);  // default off
  EXPECT_STREQ(opts.who, "fluent-test");
}

TEST_F(SchedulerTest, ServeValidatesSourceAndPolicy) {
  // serve() requires a StreamJobSource...
  sched::VectorJobSource plain(workload_);
  sched::DiscardSink sink;
  sched::Session wrong_source(plain, sink, sched::SessionOptions());
  EXPECT_THROW(wrong_source.serve(4), std::invalid_argument);

  // ...rejects the static policy (unarrived jobs cannot be pre-assigned)...
  sched::VectorJobSource inner(workload_);
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::StreamJobSource stream(inner, burst);
  sched::Session wrong_policy(
      stream, sink, sched::SessionOptions().with_policy(sched::Policy::kStatic));
  EXPECT_THROW(wrong_policy.serve(4), std::invalid_argument);

  // ...and needs a master plus at least one slave.
  sched::VectorJobSource inner2(workload_);
  sched::StreamJobSource stream2(inner2, burst);
  sched::Session too_small(stream2, sink, sched::SessionOptions());
  EXPECT_THROW(too_small.serve(1), std::invalid_argument);
}

TEST_F(SchedulerTest, StreamRejectsShortOrUnsortedTrace) {
  sched::VectorJobSource inner(workload_);
  EXPECT_THROW(sched::StreamJobSource(inner, std::vector<double>(10, 0.0)),
               std::invalid_argument);
  sched::VectorJobSource inner2(workload_);
  std::vector<double> unsorted(starts_.size(), 0.0);
  unsorted[5] = 1.0;  // decreasing after index 5
  EXPECT_THROW(sched::StreamJobSource(inner2, unsorted), std::invalid_argument);
}

}  // namespace
