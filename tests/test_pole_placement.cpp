// Tests for the pole placement application layer: polynomial root finding,
// matrix polynomials, the coordinate-randomized driver on structured
// plants, compensator reality, and closed-loop pole recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "poly/roots.hpp"
#include "schubert/pole_placement.hpp"

namespace {

using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::schubert::MatrixPolynomial;
using pph::schubert::PieriProblem;
using pph::schubert::Plant;
using pph::util::Prng;

// ---- univariate roots --------------------------------------------------------

TEST(PolynomialRoots, QuadraticExact) {
  // (s-2)(s+3) = s^2 + s - 6.
  const auto roots = pph::poly::polynomial_roots({{-6, 0}, {1, 0}, {1, 0}});
  ASSERT_EQ(roots.size(), 2u);
  double best2 = 1e9, bestm3 = 1e9;
  for (const auto r : roots) {
    best2 = std::min(best2, std::abs(r - Complex{2, 0}));
    bestm3 = std::min(bestm3, std::abs(r - Complex{-3, 0}));
  }
  EXPECT_LT(best2, 1e-10);
  EXPECT_LT(bestm3, 1e-10);
}

TEST(PolynomialRoots, RandomPolynomialResidualsSmall) {
  Prng rng(1);
  for (std::size_t deg = 1; deg <= 8; ++deg) {
    std::vector<Complex> c(deg + 1);
    for (auto& x : c) x = rng.normal_complex();
    const auto roots = pph::poly::polynomial_roots(c);
    ASSERT_EQ(roots.size(), deg);
    for (const auto r : roots) {
      EXPECT_LT(std::abs(pph::poly::polynomial_value(c, r)), 1e-8 * (1.0 + std::abs(r)))
          << "degree " << deg;
    }
  }
}

TEST(PolynomialRoots, TrimsLeadingZeros) {
  // s - 1 plus a numerically-zero s^3 coefficient.
  const auto roots = pph::poly::polynomial_roots({{-1, 0}, {1, 0}, {0, 0}, {1e-18, 0}});
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_LT(std::abs(roots[0] - Complex{1, 0}), 1e-10);
}

TEST(PolynomialRoots, ZeroPolynomialThrows) {
  EXPECT_THROW(pph::poly::polynomial_roots({{0, 0}, {0, 0}}), std::invalid_argument);
}

TEST(PolynomialRoots, ConstantHasNoRoots) {
  EXPECT_TRUE(pph::poly::polynomial_roots({{5, 0}}).empty());
}

// ---- matrix polynomials ------------------------------------------------------

TEST(MatrixPolynomialTest, EvaluateHorner) {
  MatrixPolynomial x;
  x.coeffs.push_back(CMatrix::identity(2));
  CMatrix lin(2, 2);
  lin(0, 1) = Complex{1, 0};
  x.coeffs.push_back(lin);
  const CMatrix at2 = x.evaluate(Complex{2, 0});
  EXPECT_EQ(at2(0, 0), (Complex{1, 0}));
  EXPECT_EQ(at2(0, 1), (Complex{2, 0}));
}

TEST(MatrixPolynomialTest, TransformedMultipliesCoefficients) {
  Prng rng(2);
  MatrixPolynomial x;
  CMatrix c0(3, 1);
  for (std::size_t r = 0; r < 3; ++r) c0(r, 0) = rng.normal_complex();
  x.coeffs.push_back(c0);
  CMatrix u(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) u(r, c) = rng.normal_complex();
  const auto y = x.transformed(u);
  EXPECT_NEAR(pph::linalg::norm_frobenius(y.coeffs[0] - u * c0), 0.0, 1e-13);
}

TEST(MatrixPolynomialTest, IsRealDetectsComplex) {
  MatrixPolynomial x;
  x.coeffs.push_back(CMatrix::identity(2));
  EXPECT_TRUE(x.is_real());
  x.coeffs[0](0, 0) = Complex{1, 0.5};
  EXPECT_FALSE(x.is_real());
}

// ---- structured-plant pole placement -----------------------------------------

Plant asymmetric_satellite() {
  Plant plant;
  plant.a = CMatrix(4, 4);
  plant.a(0, 1) = Complex{1.0, 0.0};
  plant.a(2, 3) = Complex{1.0, 0.0};
  plant.a(1, 2) = Complex{0.15, 0.0};
  plant.a(3, 0) = Complex{-0.23, 0.0};
  plant.b = CMatrix(4, 2);
  plant.b(1, 0) = Complex{1.0, 0.0};
  plant.b(3, 1) = Complex{0.85, 0.0};
  plant.c = CMatrix(2, 4);
  plant.c(0, 0) = Complex{1.0, 0.0};
  plant.c(0, 1) = Complex{0.5, 0.0};
  plant.c(1, 2) = Complex{1.0, 0.0};
  plant.c(1, 3) = Complex{0.35, 0.0};
  return plant;
}

TEST(ClosedLoopPoles, MatchCharacteristicPolynomial) {
  const Plant plant = asymmetric_satellite();
  CMatrix f(2, 2);
  f(0, 0) = Complex{-1.0, 0.0};
  f(1, 1) = Complex{-2.0, 0.0};
  const auto poles = pph::schubert::closed_loop_poles_static(plant, f);
  ASSERT_EQ(poles.size(), 4u);
  // Each pole must be an eigenvalue: det(sI - A - BFC) = 0.
  const CMatrix closed = plant.a + plant.b * (f * plant.c);
  for (const auto s : poles) {
    CMatrix si_m = CMatrix::identity(4) * s - closed;
    EXPECT_LT(std::abs(pph::linalg::determinant(si_m)), 1e-8);
  }
}

TEST(SolvePolePlacement, RecoversReferenceGainOnStructuredPlant) {
  // The end-to-end driver must handle the flag-aligned plant planes via the
  // coordinate randomization (an un-rotated solve fails on this data).
  const Plant plant = asymmetric_satellite();
  CMatrix f0(2, 2);
  f0(0, 0) = Complex{-2.0, 0.0};
  f0(0, 1) = Complex{0.3, 0.0};
  f0(1, 0) = Complex{-0.4, 0.0};
  f0(1, 1) = Complex{-1.5, 0.0};
  const auto poles = pph::schubert::closed_loop_poles_static(plant, f0);
  const auto summary =
      pph::schubert::solve_pole_placement(PieriProblem{2, 2, 0}, plant, poles);
  ASSERT_TRUE(summary.complete());
  ASSERT_EQ(summary.laws.size(), 2u);
  // One law recovers F0.
  double best = 1e9;
  for (const auto& law : summary.laws) {
    const auto comp = pph::schubert::extract_compensator(law, 2);
    const CMatrix f = comp.feedback(Complex{0, 0});
    best = std::min(best, pph::linalg::norm_frobenius(f - f0));
  }
  EXPECT_LT(best, 1e-7);
  // Both laws are real (real data, conjugate-closed poles, 2 real points).
  for (const auto& law : summary.laws) {
    const auto check = pph::schubert::verify_pole_placement(law, plant, poles);
    EXPECT_TRUE(check.real_feedback);
    EXPECT_LT(check.max_pole_residual, 1e-8);
    EXPECT_EQ(check.char_poly_degree, 4u);
  }
}

TEST(SolvePolePlacement, RandomPlantDynamicFeedback) {
  Prng rng(33);
  const PieriProblem pb{2, 2, 1};
  const Plant plant = pph::schubert::random_plant(pb, rng);
  std::vector<Complex> poles;
  while (poles.size() + 2 <= pb.condition_count()) {
    const double a = 0.5 + rng.uniform(), b = 0.4 + rng.uniform();
    poles.push_back(Complex{-a, b});
    poles.push_back(Complex{-a, -b});
  }
  const auto summary = pph::schubert::solve_pole_placement(pb, plant, poles);
  EXPECT_TRUE(summary.complete());
  EXPECT_EQ(summary.laws.size(), 8u);
  EXPECT_LT(summary.max_residual, 1e-8);
  // Complex laws come in conjugate pairs, so the real count is even.
  std::size_t real_laws = 0;
  for (const auto& law : summary.laws) {
    if (pph::schubert::compensator_is_real(pph::schubert::extract_compensator(law, 2))) {
      ++real_laws;
    }
  }
  EXPECT_EQ(real_laws % 2, 0u);
}

TEST(SolvePolePlacement, RotationOffStillWorksOnGenericPlant) {
  Prng rng(34);
  const PieriProblem pb{2, 2, 0};
  const Plant plant = pph::schubert::random_plant(pb, rng);
  std::vector<Complex> poles{{-1.0, 0.8}, {-1.0, -0.8}, {-2.0, 0.3}, {-2.0, -0.3}};
  pph::schubert::PolePlacementOptions opts;
  opts.randomize_coordinates = false;
  const auto summary = pph::schubert::solve_pole_placement(pb, plant, poles, opts);
  EXPECT_TRUE(summary.complete());
  EXPECT_EQ(summary.laws.size(), 2u);
}

}  // namespace
