// Cross-cutting property sweeps (parameterized gtest) tying the layers
// together: known root counts across benchmark families, tracker invariance
// under predictor choice and gamma re-randomization, Pieri completeness
// across seeds, and combinatorial identities of the localization poset.

#include <gtest/gtest.h>

#include <cmath>

#include "homotopy/solver.hpp"
#include "homotopy/start_multihomogeneous.hpp"
#include "schubert/pieri_solver.hpp"
#include "systems/katsura.hpp"
#include "systems/noon.hpp"

namespace {

using pph::homotopy::SolveOptions;
using pph::schubert::PatternPoset;
using pph::schubert::PieriProblem;

// ---- katsura family: 2^n roots ------------------------------------------------

class KatsuraSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KatsuraSweep, FindsTwoToTheNRoots) {
  const std::size_t n = GetParam();
  const auto sys = pph::systems::katsura(n);
  const auto summary = pph::homotopy::solve_total_degree(sys);
  EXPECT_EQ(summary.solutions.size(), 1ull << n);
  EXPECT_EQ(summary.failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Family, KatsuraSweep, ::testing::Values(2, 3, 4));

// ---- tracker invariances -------------------------------------------------------

class PredictorKinds
    : public ::testing::TestWithParam<pph::homotopy::PredictorKind> {};

TEST_P(PredictorKinds, SameSolutionSetOnNoon2) {
  const auto sys = pph::systems::noon(2);
  SolveOptions opts;
  opts.tracker.predictor = GetParam();
  const auto summary = pph::homotopy::solve_total_degree(sys, opts);
  // The reference run with the default tangent predictor.
  const auto reference = pph::homotopy::solve_total_degree(sys);
  EXPECT_EQ(summary.solutions.size(), reference.solutions.size());
  for (const auto& s : reference.solutions) {
    double best = 1e18;
    for (const auto& t : summary.solutions) {
      best = std::min(best, pph::linalg::distance2(s, t));
    }
    EXPECT_LT(best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PredictorKinds,
                         ::testing::Values(pph::homotopy::PredictorKind::kTangent,
                                           pph::homotopy::PredictorKind::kSecant,
                                           pph::homotopy::PredictorKind::kZeroOrder));

class GammaSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaSeeds, RootCountIndependentOfGamma) {
  const auto sys = pph::systems::noon(2);
  SolveOptions opts;
  opts.seed = GetParam();
  const auto summary = pph::homotopy::solve_total_degree(sys, opts);
  // noon(2) root count is an invariant of the system, not of the homotopy.
  const auto reference = pph::homotopy::solve_total_degree(sys);
  EXPECT_EQ(summary.solutions.size(), reference.solutions.size()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaSeeds, ::testing::Values(11, 222, 3333, 44444));

// ---- Pieri completeness across seeds -------------------------------------------

class PieriSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PieriSeeds, CompleteOn221) {
  const auto summary =
      pph::schubert::solve_random_pieri(PieriProblem{2, 2, 1}, GetParam());
  EXPECT_TRUE(summary.complete()) << "seed " << GetParam();
  EXPECT_EQ(summary.solutions.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PieriSeeds, ::testing::Values(1, 2, 3, 4, 5));

// ---- poset identities -----------------------------------------------------------

class PosetGrid : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(PosetGrid, PieriRecursionHoldsEverywhere) {
  // count(P) = sum over children of count(child), for every non-minimal
  // pattern -- the identity that makes the tree job structure correct.
  const auto [m, p, q] = GetParam();
  PatternPoset poset(PieriProblem{m, p, q});
  for (std::size_t level = 1; level < poset.levels(); ++level) {
    for (const auto& pattern : poset.patterns_at_level(level)) {
      std::uint64_t sum = 0;
      for (const auto& child : pattern.children()) sum += poset.chain_count(child);
      EXPECT_EQ(poset.chain_count(pattern), sum) << pattern.to_string();
    }
  }
}

TEST_P(PosetGrid, LevelWidthsAreUnimodalEnds) {
  // Exactly one minimal and one maximal pattern.
  const auto [m, p, q] = GetParam();
  PatternPoset poset(PieriProblem{m, p, q});
  EXPECT_EQ(poset.patterns_at_level(0).size(), 1u);
  EXPECT_EQ(poset.patterns_at_level(poset.levels() - 1).size(), 1u);
}

TEST_P(PosetGrid, JobsPerLevelEndsAtRootCount) {
  // The last levels of the tree have exactly d jobs each once the width
  // saturates; in particular the final level always has d jobs.
  const auto [m, p, q] = GetParam();
  PatternPoset poset(PieriProblem{m, p, q});
  EXPECT_EQ(poset.jobs_per_level().back(), poset.root_count());
}

INSTANTIATE_TEST_SUITE_P(Grid, PosetGrid,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(2, 3),
                                            ::testing::Values(0, 1)));

// ---- multi-homogeneous bounds ---------------------------------------------------

TEST(MultihomBound, AnyPartitionBoundsTheRootCount) {
  // A multi-homogeneous Bezout number depends on the partition and can
  // EXCEED the total degree for an unfavorable grouping, but every
  // partition still bounds the number of isolated finite roots.
  for (std::size_t n = 2; n <= 3; ++n) {
    const auto kat = pph::systems::katsura(n);
    const auto roots = pph::homotopy::solve_total_degree(kat).solutions.size();
    // Single group: equals the total degree.
    EXPECT_EQ(pph::homotopy::multihomogeneous_bezout(
                  kat, pph::homotopy::VariablePartition(kat.nvars(), 0)),
              kat.total_degree());
    // An unfavorable split still bounds the root count.
    pph::homotopy::VariablePartition part(kat.nvars(), 0);
    part[0] = 1;
    EXPECT_GE(pph::homotopy::multihomogeneous_bezout(kat, part), roots);
  }
}

}  // namespace
