// Tests for the streaming JSONL result store (sched/result_store.hpp):
// bit-exact round-trips of every PathStatus (including NaN/Inf payloads of
// diverged paths), footer write/load, truncated-file recovery, and the
// checkpoint/resume protocol -- a killed-then-resumed session re-tracks
// exactly the un-stored indices and reports bit-identically to an
// uninterrupted run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "sched/result_store.hpp"
#include "scheduler_fixture.hpp"
#include "store/store_reader.hpp"

namespace {

using pph::sched::JsonlStoreSink;
using pph::sched::load_result_store;
using pph::sched::parse_store_record;
using pph::sched::store_record_line;
using pph::sched::TrackedPath;
using pph::homotopy::PathStatus;
using pph::testing::SchedulerTest;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_record_equal(const TrackedPath& a, const TrackedPath& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_EQ(a.level, b.level);
  EXPECT_TRUE(same_bits(a.seconds, b.seconds));
  EXPECT_EQ(static_cast<int>(a.result.status), static_cast<int>(b.result.status));
  EXPECT_TRUE(same_bits(a.result.t_reached, b.result.t_reached));
  EXPECT_TRUE(same_bits(a.result.residual, b.result.residual));
  EXPECT_TRUE(same_bits(a.result.last_step, b.result.last_step));
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.result.rejections, b.result.rejections);
  EXPECT_EQ(a.result.newton_iterations, b.result.newton_iterations);
  EXPECT_EQ(a.result.rescue_attempts, b.result.rescue_attempts);
  EXPECT_EQ(a.result.rescued, b.result.rescued);
  ASSERT_EQ(a.result.x.size(), b.result.x.size());
  for (std::size_t k = 0; k < a.result.x.size(); ++k) {
    EXPECT_TRUE(same_bits(a.result.x[k].real(), b.result.x[k].real()));
    EXPECT_TRUE(same_bits(a.result.x[k].imag(), b.result.x[k].imag()));
  }
}

TrackedPath sample_record(PathStatus status) {
  TrackedPath tp;
  tp.index = 42;
  tp.worker = 3;
  tp.level = 2;
  tp.seconds = 0.00123;
  tp.result.status = status;
  tp.result.t_reached = status == PathStatus::kConverged ? 1.0 : 0.875;
  tp.result.residual = 3.5e-13;
  tp.result.last_step = 0.0375;
  tp.result.steps = 158;
  tp.result.rejections = 7;
  tp.result.newton_iterations = 391;
  tp.result.rescue_attempts = 2;
  tp.result.rescued = status == PathStatus::kConverged;
  tp.result.x = {{1.25, -2.5}, {0.0, -0.0}, {1e300, 1e-300}};
  return tp;
}

// ---- record round-trips -----------------------------------------------------

TEST(ResultStoreRecord, RoundTripsEveryPathStatus) {
  for (const auto status :
       {PathStatus::kConverged, PathStatus::kDiverged, PathStatus::kFailed}) {
    const TrackedPath tp = sample_record(status);
    expect_record_equal(parse_store_record(store_record_line(tp)), tp);
  }
}

TEST(ResultStoreRecord, RoundTripsNanAndInfinityBits) {
  // A diverged path legitimately carries NaN/Inf in endpoint and residual;
  // "identical" means identical bits, which decimal formatting cannot give.
  TrackedPath tp = sample_record(PathStatus::kDiverged);
  tp.result.residual = std::numeric_limits<double>::quiet_NaN();
  tp.result.t_reached = -std::numeric_limits<double>::infinity();
  tp.result.x = {{std::nan("0x5"), std::numeric_limits<double>::infinity()},
                 {-0.0, std::numeric_limits<double>::denorm_min()}};
  expect_record_equal(parse_store_record(store_record_line(tp)), tp);
}

TEST(ResultStoreRecord, RoundTripsEmptyEndpoint) {
  TrackedPath tp = sample_record(PathStatus::kFailed);
  tp.result.x.clear();
  expect_record_equal(parse_store_record(store_record_line(tp)), tp);
}

TEST(ResultStoreRecord, RejectsMalformedLines) {
  const std::string good = store_record_line(sample_record(PathStatus::kConverged));
  EXPECT_THROW(parse_store_record(good.substr(0, good.size() / 2)), std::invalid_argument);
  EXPECT_THROW(parse_store_record(good + "x"), std::invalid_argument);
  EXPECT_THROW(parse_store_record("{\"footer\":{}}"), std::invalid_argument);
  EXPECT_THROW(parse_store_record(""), std::invalid_argument);
}

// ---- store files ------------------------------------------------------------

TEST(ResultStoreFile, WriteFinishLoadWithFooter) {
  const std::string path = temp_path("store_footer.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    for (std::size_t i = 0; i < 5; ++i) {
      TrackedPath tp = sample_record(PathStatus::kConverged);
      tp.index = i;
      sink.accept(tp);
    }
    sink.finish();
  }
  const auto load = load_result_store(path);
  EXPECT_TRUE(load.had_footer);
  EXPECT_FALSE(load.truncated);
  ASSERT_EQ(load.records.size(), 5u);
  ASSERT_EQ(load.offsets.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(load.records[i].index, i);

  // The footer offsets point at real record line starts.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  for (const auto& [id, off] : load.offsets) {
    const auto end = content.find('\n', off);
    ASSERT_NE(end, std::string::npos);
    const TrackedPath tp = parse_store_record(content.substr(off, end - off));
    EXPECT_EQ(tp.index, id);
  }
}

TEST(ResultStoreFile, KilledWriterWithoutFooterStillLoads) {
  const std::string path = temp_path("store_nofooter.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    TrackedPath tp = sample_record(PathStatus::kDiverged);
    sink.accept(tp);
    // no finish(): models a killed process; the flush-per-record property
    // means the record is already durable
  }
  const auto load = load_result_store(path);
  EXPECT_FALSE(load.had_footer);
  EXPECT_FALSE(load.truncated);
  ASSERT_EQ(load.records.size(), 1u);
}

TEST(ResultStoreFile, TruncatedTailIsDroppedAndRecovered) {
  const std::string path = temp_path("store_truncated.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    for (std::size_t i = 0; i < 3; ++i) {
      TrackedPath tp = sample_record(PathStatus::kConverged);
      tp.index = i;
      sink.accept(tp);
    }
  }
  // Simulate a crash mid-write: append half a record line.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::string partial = store_record_line(sample_record(PathStatus::kFailed));
    out << partial.substr(0, partial.size() / 2);
  }
  const auto load = load_result_store(path);
  EXPECT_TRUE(load.truncated);
  ASSERT_EQ(load.records.size(), 3u);

  // A resuming writer cuts the partial tail and appends cleanly.
  {
    JsonlStoreSink sink(path, /*resume=*/true);
    EXPECT_EQ(sink.restored().size(), 3u);
    TrackedPath tp = sample_record(PathStatus::kConverged);
    tp.index = 9;
    sink.accept(tp);
    sink.finish();
  }
  const auto reloaded = load_result_store(path);
  EXPECT_TRUE(reloaded.had_footer);
  EXPECT_FALSE(reloaded.truncated);
  ASSERT_EQ(reloaded.records.size(), 4u);
  EXPECT_EQ(reloaded.records.back().index, 9u);
}

TEST(ResultStoreFile, FooterKilledMidWriteCountsAsTruncatedNotClean) {
  const std::string path = temp_path("store_halffooter.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    TrackedPath tp = sample_record(PathStatus::kConverged);
    sink.accept(tp);
    sink.finish();
  }
  // Cut the file mid-footer (no trailing newline survives).
  const auto clean = load_result_store(path);
  ASSERT_TRUE(clean.had_footer);
  std::filesystem::resize_file(path, clean.append_offset + 12);
  const auto cut = load_result_store(path);
  EXPECT_FALSE(cut.had_footer);
  EXPECT_TRUE(cut.truncated);
  ASSERT_EQ(cut.records.size(), 1u);
  EXPECT_EQ(cut.append_offset, clean.append_offset);
}

TEST(ResultStoreFile, GarbageFileStartsOver) {
  const std::string path = temp_path("store_garbage.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a store\n";
  }
  const auto load = load_result_store(path);
  EXPECT_TRUE(load.truncated);
  EXPECT_TRUE(load.records.empty());
  JsonlStoreSink sink(path, /*resume=*/true);
  EXPECT_TRUE(sink.restored().empty());
  sink.finish();
  EXPECT_TRUE(load_result_store(path).had_footer);
}

// ---- format versions (v1-v3 compatibility) ----------------------------------

TEST(ResultStoreFormat, FreshStoreWritesVersion3WithMeta) {
  const std::string path = temp_path("store_v3_meta.jsonl");
  std::remove(path.c_str());
  pph::store::StoreMeta meta;
  meta.policy = "fcfs";
  meta.ranks = 4;
  meta.seed = 42;
  {
    JsonlStoreSink sink(path, /*resume=*/false, meta);
    EXPECT_EQ(sink.version(), pph::store::kFormatVersion);
    sink.accept(sample_record(PathStatus::kConverged));
    sink.finish();
  }
  const auto load = load_result_store(path);
  EXPECT_EQ(load.version, pph::store::kFormatVersion);
  EXPECT_EQ(load.meta.policy, "fcfs");
  EXPECT_EQ(load.meta.ranks, 4);
  EXPECT_EQ(load.meta.seed, 42u);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].level, 2u);  // sample_record's level round-trips
}

TEST(ResultStoreFormat, ResumeKeepsTheOnDiskVersion) {
  // A v2 store (pre-level format) written by hand; resuming must append v2
  // records -- mixing schemas inside one file would corrupt it.
  const std::string path = temp_path("store_v2_resume.jsonl");
  TrackedPath old = sample_record(PathStatus::kConverged);
  old.index = 0;
  old.level = 0;  // v2 cannot carry levels
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"pph_result_store\":{\"version\":2}}\n";
    std::string line;
    pph::store::append_record_line(line, old, 2);
    out << line << "\n";
  }
  {
    JsonlStoreSink sink(path, /*resume=*/true);
    EXPECT_EQ(sink.version(), 2);
    ASSERT_EQ(sink.restored().size(), 1u);
    TrackedPath next = sample_record(PathStatus::kDiverged);
    next.index = 1;
    next.level = 0;
    sink.accept(next);
    sink.finish();
  }
  const auto load = load_result_store(path);
  EXPECT_EQ(load.version, 2);
  EXPECT_TRUE(load.had_footer);
  ASSERT_EQ(load.records.size(), 2u);
}

TEST(ResultStoreFormat, V1StoreRestartsFreshOnResume) {
  const std::string path = temp_path("store_v1_resume.jsonl");
  TrackedPath old = sample_record(PathStatus::kConverged);
  old.index = 0;
  old.level = 0;
  old.result.last_step = 0.0;
  old.result.rescue_attempts = 0;
  old.result.rescued = false;
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"pph_result_store\":{\"version\":1}}\n";
    std::string line;
    pph::store::append_record_line(line, old, 1);
    out << line << "\n";
  }
  // Reading works (the codec accepts v1)...
  const auto load = load_result_store(path);
  EXPECT_EQ(load.version, 1);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].result.last_step, 0.0);
  // ...but resuming restarts: v1 records cannot carry rescue provenance.
  JsonlStoreSink sink(path, /*resume=*/true);
  EXPECT_TRUE(sink.restored().empty());
  EXPECT_EQ(sink.version(), pph::store::kFormatVersion);
}

TEST(ResultStoreFormat, LoaderIsAThinWrapperOverTheReader) {
  const std::string path = temp_path("store_wrapper_eq.jsonl");
  std::remove(path.c_str());
  {
    JsonlStoreSink sink(path);
    for (std::size_t i = 0; i < 7; ++i) {
      TrackedPath tp = sample_record(i % 2 == 0 ? PathStatus::kConverged
                                                : PathStatus::kFailed);
      tp.index = i;
      sink.accept(tp);
    }
    sink.finish();
  }
  const auto load = load_result_store(path);
  const pph::store::StoreReader reader(path);
  EXPECT_EQ(load.had_footer, reader.footer_seen());
  EXPECT_EQ(load.truncated, reader.truncated());
  EXPECT_EQ(load.append_offset, reader.append_offset());
  EXPECT_EQ(load.version, reader.version());
  ASSERT_EQ(load.records.size(), reader.size());
  for (std::size_t i = 0; i < reader.size(); ++i) {
    expect_record_equal(load.records[i], reader.load(i));
    EXPECT_EQ(load.offsets[i].first, reader.id_at(i));
    EXPECT_EQ(load.offsets[i].second, reader.offset_at(i));
  }
}

// ---- checkpoint + resume over a real workload ------------------------------

TEST_F(SchedulerTest, StoreSessionMatchesStraightRun) {
  const std::string path = temp_path("store_straight.jsonl");
  std::remove(path.c_str());
  const auto out = pph::sched::run_with_store(workload_, 4, path);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.restored, 0u);
  expect_matches_baseline(out.report);
  // The store holds every path, reloadable bit for bit.
  const auto load = load_result_store(path);
  EXPECT_TRUE(load.had_footer);
  EXPECT_EQ(load.records.size(), starts_.size());
}

TEST_F(SchedulerTest, KilledThenResumedSessionIsBitIdentical) {
  const std::string straight_path = temp_path("store_run_a.jsonl");
  const std::string resumed_path = temp_path("store_run_b.jsonl");
  std::remove(straight_path.c_str());
  std::remove(resumed_path.c_str());

  const auto straight = pph::sched::run_with_store(workload_, 4, straight_path);
  ASSERT_TRUE(straight.completed);

  // Checkpoint-stop mid-run: the master aborts after 37 accepted results
  // (in-flight and unreported-but-completed work still reaches the store).
  pph::sched::SessionOptions kill_opts;
  kill_opts.stop_after_results = 37;
  const auto killed = pph::sched::run_with_store(workload_, 4, resumed_path, kill_opts);
  EXPECT_TRUE(killed.stats.stopped_early);
  EXPECT_FALSE(killed.completed);
  EXPECT_GE(killed.stats.accepted, 37u);
  EXPECT_LT(killed.stats.accepted, starts_.size());

  // Resume: only the un-stored indices are tracked...
  const auto resumed = pph::sched::run_with_store(workload_, 4, resumed_path);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.restored, killed.stats.accepted);
  EXPECT_EQ(resumed.stats.accepted + resumed.restored, starts_.size());

  // ...and the assembled report is bit-identical to the uninterrupted run.
  EXPECT_TRUE(pph::sched::identical_path_results(straight.report, resumed.report));
  expect_identical_results(straight.report, resumed.report);
}

TEST_F(SchedulerTest, ResumingACompleteStoreTracksNothing) {
  const std::string path = temp_path("store_complete.jsonl");
  std::remove(path.c_str());
  const auto first = pph::sched::run_with_store(workload_, 4, path);
  ASSERT_TRUE(first.completed);
  const auto again = pph::sched::run_with_store(workload_, 4, path);
  EXPECT_TRUE(again.completed);
  EXPECT_EQ(again.restored, starts_.size());
  EXPECT_EQ(again.stats.accepted, 0u);
  expect_identical_results(first.report, again.report);
}

TEST_F(SchedulerTest, StoreResumeWorksUnderBatchStealPolicy) {
  const std::string path = temp_path("store_batch.jsonl");
  std::remove(path.c_str());
  pph::sched::SessionOptions opts;
  opts.policy = pph::sched::Policy::kBatchSteal;
  opts.stop_after_results = 25;
  const auto killed = pph::sched::run_with_store(workload_, 4, path, opts);
  EXPECT_TRUE(killed.stats.stopped_early);

  pph::sched::SessionOptions resume_opts;
  resume_opts.policy = pph::sched::Policy::kBatchSteal;
  const auto resumed = pph::sched::run_with_store(workload_, 4, path, resume_opts);
  EXPECT_TRUE(resumed.completed);
  expect_matches_baseline(resumed.report);
}

}  // namespace
