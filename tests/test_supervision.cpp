// Tests for the supervision layer (DESIGN.md section 11) and its
// deterministic chaos harness (mp/fault.hpp): seeded fault plans, heartbeat
// liveness tracking, silent-death and hang detection (kTagDead never sent),
// speculative re-dispatch of stragglers, poison-job quarantine, the
// all-workers-lost failsafe, and a seeded chaos matrix sweeping fault plans
// across FCFS/BatchSteal x drain/serve that asserts zero lost jobs and
// bit-identical solution sets against a fault-free run.
//
// Every fault below is injected from a declarative seeded plan, so each
// test replays the same failure on every run -- no sleeps hoping a race
// shows up.  Supervision windows are sized for sanitizer builds: the
// heartbeat is 10 ms and a death verdict takes ~0.4 s of silence.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mp/fault.hpp"
#include "sched/session.hpp"
#include "sched/stream_source.hpp"
#include "scheduler_fixture.hpp"

namespace {

namespace sched = pph::sched;
namespace mp = pph::mp;
using pph::testing::SchedulerTest;

// Supervision knobs used throughout: 10 ms heartbeats, suspect after 0.2 s
// of silence, dead at 0.4 s.  Large enough that sanitizer-slow slaves never
// trip it while healthy, small enough to keep the suite fast.
sched::SupervisorOptions test_supervisor() {
  return sched::SupervisorOptions().with_heartbeat(0.01).with_miss_budget(20, 2.0);
}

// ---- seeded fault plans -----------------------------------------------------

void expect_same_actions(const mp::FaultPlan& a, const mp::FaultPlan& b) {
  ASSERT_EQ(a.actions().size(), b.actions().size());
  for (std::size_t i = 0; i < a.actions().size(); ++i) {
    const auto& x = a.actions()[i];
    const auto& y = b.actions()[i];
    EXPECT_EQ(x.rank, y.rank);
    EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    EXPECT_EQ(x.after_jobs, y.after_jobs);
    EXPECT_EQ(x.on_job, y.on_job);
    EXPECT_DOUBLE_EQ(x.seconds, y.seconds);
  }
}

TEST(FaultPlan, RandomIsSeedDeterministic) {
  const auto a = mp::FaultPlan::random(99, 4);
  const auto b = mp::FaultPlan::random(99, 4);
  expect_same_actions(a, b);
  EXPECT_FALSE(a.empty());
  const auto c = mp::FaultPlan::random(100, 4);
  // Different seed, different plan (fixed seeds: deterministic check).
  bool differs = a.actions().size() != c.actions().size();
  for (std::size_t i = 0; !differs && i < a.actions().size(); ++i) {
    differs = a.actions()[i].rank != c.actions()[i].rank ||
              a.actions()[i].kind != c.actions()[i].kind ||
              a.actions()[i].after_jobs != c.actions()[i].after_jobs ||
              a.actions()[i].seconds != c.actions()[i].seconds;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomAlwaysLeavesASurvivor) {
  mp::ChaosOptions greedy;
  greedy.max_terminal = 10;  // far more than the world has slaves
  const auto plan = mp::FaultPlan::random(5, 4, greedy);
  std::size_t terminal = 0;
  for (const auto& a : plan.actions()) {
    if (mp::fault_is_terminal(a.kind)) ++terminal;
    EXPECT_GE(a.rank, 1);  // rank 0 (the master) is never targeted
    EXPECT_LT(a.rank, 4);
  }
  EXPECT_LE(terminal, 2u);  // 3 slaves -> at most 2 terminal faults
  // A world too small for a surviving slave gets an empty plan.
  EXPECT_TRUE(mp::FaultPlan::random(5, 2).empty());
}

TEST(FaultPlan, InjectorFiresAtJobBoundaries) {
  mp::FaultPlan plan;
  plan.kill(2, 3).straggle(1, 0, 0.25).poison(17, mp::FaultKind::kDieSilently);
  mp::FaultInjector inj(plan, 4);
  EXPECT_TRUE(inj.active());
  // Rank 2 survives jobs 0..2, dies at its 4th job boundary.
  EXPECT_FALSE(inj.on_job_start(2, 0, 100).has_value());
  EXPECT_FALSE(inj.on_job_start(2, 2, 101).has_value());
  const auto f = inj.on_job_start(2, 3, 102);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, mp::FaultKind::kDieSilently);
  // The straggler arms its sleep on the first boundary and keeps it.
  EXPECT_DOUBLE_EQ(inj.straggle_seconds(1), 0.0);
  EXPECT_FALSE(inj.on_job_start(1, 0, 200).has_value());
  EXPECT_DOUBLE_EQ(inj.straggle_seconds(1), 0.25);
  // The poison job kills every rank that picks it up, repeatedly.
  EXPECT_TRUE(inj.on_job_start(3, 5, 17).has_value());
  EXPECT_TRUE(inj.on_job_start(1, 9, 17).has_value());
  EXPECT_FALSE(inj.on_job_start(3, 6, 18).has_value());
}

// ---- uncooperative death and hang, drain mode -------------------------------
// The victim never sends kTagDead: the only way the session can finish with
// a full result set is the heartbeat-miss verdict.  Speculation is off so
// recovery must go through the death re-queue (the speculation test below
// exercises the other path).

TEST_F(SchedulerTest, FcfsSurvivesSilentDeathByHeartbeatMiss) {
  const auto opts = sched::SessionOptions()
                        .with_fault_plan(mp::FaultPlan().kill(2, 3))
                        .with_supervision(test_supervisor().without_speculation());
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  EXPECT_GE(stats.supervision.suspects, 1u);
  EXPECT_GE(stats.supervision.requeued_jobs, 1u);
  EXPECT_EQ(stats.supervision.quarantined, 0u);
  EXPECT_GT(stats.supervision.heartbeats, 0u);
  expect_matches_baseline(sink.report(stats));
}

TEST_F(SchedulerTest, FcfsSurvivesHangByHeartbeatMiss) {
  // A hung slave keeps its thread parked on the mailbox (the world must
  // still join) but goes completely silent; the supervisor must tell the
  // difference between "slow" and "gone" by the silence window alone.
  const auto opts = sched::SessionOptions()
                        .with_fault_plan(mp::FaultPlan().hang(1, 2))
                        .with_supervision(test_supervisor().without_speculation());
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  EXPECT_GE(stats.supervision.requeued_jobs, 1u);
  expect_matches_baseline(sink.report(stats));
}

TEST_F(SchedulerTest, BatchStealSurvivesSilentDeathByHeartbeatMiss) {
  // The batch victim dies holding most of its first guided batch, so the
  // re-queue recovers a whole chunk, and any thief pointed at the corpse
  // must be refilled by the death cleanup instead of waiting forever.
  const auto opts = sched::SessionOptions()
                        .with_policy(sched::Policy::kBatchSteal)
                        .with_fault_plan(mp::FaultPlan().kill(1, 2))
                        .with_supervision(test_supervisor().without_speculation());
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  EXPECT_GE(stats.supervision.requeued_jobs, 1u);
  expect_matches_baseline(sink.report(stats));
}

TEST_F(SchedulerTest, BatchStealSurvivesHangByHeartbeatMiss) {
  const auto opts = sched::SessionOptions()
                        .with_policy(sched::Policy::kBatchSteal)
                        .with_fault_plan(mp::FaultPlan().hang(3, 1))
                        .with_supervision(test_supervisor().without_speculation());
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  expect_matches_baseline(sink.report(stats));
}

// ---- uncooperative death under serve ----------------------------------------

TEST_F(SchedulerTest, ServeSurvivesSilentDeathWithZeroLoss) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions()
                             .with_fault_plan(mp::FaultPlan().kill(2, 3))
                             .with_supervision(test_supervisor().without_speculation()));
  const auto stats = session.serve(4);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.service.completed, starts_.size());
  EXPECT_EQ(stats.service.quarantined, 0u);
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  expect_matches_baseline(sink.report(stats));
}

TEST_F(SchedulerTest, ServeBatchStealSurvivesHangWithZeroLoss) {
  const std::vector<double> burst(starts_.size(), 0.0);
  sched::VectorJobSource inner(workload_);
  sched::StreamJobSource stream(inner, burst);
  sched::InMemoryReportSink sink;
  sched::Session session(stream, sink,
                         sched::SessionOptions()
                             .with_policy(sched::Policy::kBatchSteal)
                             .with_fault_plan(mp::FaultPlan().hang(1, 2))
                             .with_supervision(test_supervisor().without_speculation()));
  const auto stats = session.serve(4);
  EXPECT_TRUE(stats.service.drained());
  EXPECT_EQ(stats.supervision.deaths_detected, 1u);
  EXPECT_EQ(stats.supervision.deaths_announced, 0u);
  expect_matches_baseline(sink.report(stats));
}

// ---- the legacy kill switch is a fault-plan wrapper -------------------------

TEST_F(SchedulerTest, LegacyKillSwitchCountsAsAnnouncedDeath) {
  // with_kill_after folds into the plan as one kDieAnnounced action: the
  // cooperative kTagDead arrives, no silence verdict is ever needed.
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink,
                         sched::SessionOptions()
                             .with_kill_after(3, /*rank=*/2)
                             .with_supervision(test_supervisor()));
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_announced, 1u);
  EXPECT_EQ(stats.supervision.deaths_detected, 0u);
  expect_matches_baseline(sink.report(stats));
}

TEST_F(SchedulerTest, AnnouncedDeathNeedsNoSupervisor) {
  // A cooperative death is visible without supervision (as the legacy kill
  // switch always was), and the announced-death counter still tallies it.
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(
      source, sink,
      sched::SessionOptions().with_fault_plan(mp::FaultPlan().kill_announced(2, 3)));
  const auto stats = session.run(4);
  EXPECT_EQ(stats.supervision.deaths_announced, 1u);
  EXPECT_EQ(stats.supervision.heartbeats, 0u);
  expect_matches_baseline(sink.report(stats));
}

// ---- speculative re-dispatch ------------------------------------------------

TEST_F(SchedulerTest, SpeculationOutrunsAStraggler) {
  // Rank 2 sleeps 0.5 s before every job.  Once the pool drains and the
  // EWMA is seeded, its in-flight job goes over-age and a copy is handed to
  // an idle slave, whose result lands first (the straggler is still
  // asleep).  The loser's duplicate is dropped, so the bits cannot depend
  // on who won -- which expect_matches_baseline then proves.
  const auto opts =
      sched::SessionOptions()
          .with_fault_plan(mp::FaultPlan().straggle(2, 0, 0.5))
          .with_supervision(sched::SupervisorOptions()
                                .with_heartbeat(0.02)
                                .with_miss_budget(50, 2.0)  // 1 s: outlasts the sleep
                                .with_speculation(/*factor=*/1.5, /*min_samples=*/4));
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(4);
  EXPECT_GE(stats.supervision.speculative_dispatches, 1u);
  EXPECT_GE(stats.supervision.speculation_wins, 1u);
  EXPECT_EQ(stats.supervision.deaths_detected, 0u);  // slow is not dead
  EXPECT_EQ(stats.supervision.quarantined, 0u);
  EXPECT_GT(stats.supervision.ewma_job_seconds, 0.0);
  expect_matches_baseline(sink.report(stats));
}

// ---- poison-job quarantine --------------------------------------------------

TEST_F(SchedulerTest, PoisonJobIsQuarantinedAfterMaxAttempts) {
  // Job 7 kills whichever slave executes it.  Two victims die (both by
  // silence); the attempt ledger then fails the job as a quarantined
  // PathResult instead of feeding it a third slave, and every other path is
  // tracked bit-identically.
  const auto opts =
      sched::SessionOptions()
          .with_fault_plan(mp::FaultPlan().poison(7, mp::FaultKind::kDieSilently))
          .with_supervision(
              test_supervisor().without_speculation().with_max_attempts(2));
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(5);
  EXPECT_EQ(stats.supervision.deaths_detected, 2u);
  EXPECT_EQ(stats.supervision.quarantined, 1u);
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), starts_.size());  // zero lost jobs
  for (std::size_t i = 0; i < report.paths.size(); ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    if (i == 7) {
      EXPECT_EQ(report.paths[i].result.status, pph::homotopy::PathStatus::kFailed);
      EXPECT_EQ(report.paths[i].worker, -1);  // synthesized on the master
    } else {
      EXPECT_EQ(static_cast<int>(report.paths[i].result.status),
                static_cast<int>(baseline_[i].status));
    }
  }
}

TEST_F(SchedulerTest, AllWorkersLostFailsafeFailsRemainingJobs) {
  // With only two slaves and a generous attempt budget, the poison job
  // outlives the whole pool.  The failsafe must fail everything left in the
  // ready queue instead of spinning forever, and the report still accounts
  // for all 120 jobs.
  const auto opts =
      sched::SessionOptions()
          .with_fault_plan(mp::FaultPlan().poison(7, mp::FaultKind::kDieSilently))
          .with_supervision(
              test_supervisor().without_speculation().with_max_attempts(10));
  sched::VectorJobSource source(workload_);
  sched::InMemoryReportSink sink;
  sched::Session session(source, sink, opts);
  const auto stats = session.run(3);
  EXPECT_EQ(stats.supervision.deaths_detected, 2u);
  EXPECT_GE(stats.supervision.quarantined, 1u);
  const auto report = sink.report(stats);
  ASSERT_EQ(report.paths.size(), starts_.size());
  std::size_t failed_by_quarantine = 0;
  for (std::size_t i = 0; i < report.paths.size(); ++i) {
    EXPECT_EQ(report.paths[i].index, i);
    if (report.paths[i].worker == -1) ++failed_by_quarantine;
  }
  EXPECT_EQ(failed_by_quarantine, stats.supervision.quarantined);
}

// ---- the chaos matrix -------------------------------------------------------
// Seeded random fault plans (one terminal fault, one straggler, one
// send-delayer) swept across policy x mode.  Zero lost jobs and bit-identity
// with a fault-free run, every time: with one death per plan the attempt
// ledger never reaches the quarantine threshold, so the full solution set
// must come back exactly.

mp::ChaosOptions chaos_options() {
  mp::ChaosOptions opts;
  opts.max_terminal = 1;
  opts.max_jobs_before_fault = 6;
  return opts;
}

/// One JSONL row per chaos run when PPH_CHAOS_REPORT names a file (the CI
/// chaos-smoke step collects it as an artifact).  The stat structs render
/// through their to_json() functions (sched/api.hpp), so a chaos row and a
/// bench row carry the same nested objects.
void append_chaos_report(const char* policy, const char* mode, std::uint64_t seed,
                         const sched::SessionStats& stats,
                         std::optional<double> deadline = std::nullopt) {
  const char* path = std::getenv("PPH_CHAOS_REPORT");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  out << "{\"policy\":\"" << policy << "\",\"mode\":\"" << mode << "\",\"seed\":" << seed
      << ",\"deadline_seconds\":";
  if (deadline.has_value()) {
    out << *deadline;
  } else {
    out << "null";
  }
  out << ",\"wall_seconds\":" << stats.wall_seconds
      << ",\"service\":" << sched::to_json(stats.service)
      << ",\"supervision\":" << sched::to_json(stats.supervision)
      << ",\"reliability\":" << sched::to_json(stats.reliability) << "}\n";
}

class ChaosMatrix : public SchedulerTest {
 protected:
  sched::SessionOptions chaos_session(sched::Policy policy, std::uint64_t seed) {
    return sched::SessionOptions()
        .with_policy(policy)
        .with_fault_plan(mp::FaultPlan::random(seed, 4, chaos_options()))
        .with_supervision(test_supervisor());
  }

  void expect_recovered(const sched::SessionStats& stats,
                        const sched::ParallelRunReport& report) {
    // Exactly one terminal fault per plan, never announced: the death (or
    // hang) must have been detected by heartbeat miss, and the job ledger
    // must never have reached quarantine.
    EXPECT_EQ(stats.supervision.deaths_detected, 1u);
    EXPECT_EQ(stats.supervision.deaths_announced, 0u);
    EXPECT_EQ(stats.supervision.quarantined, 0u);
    // Zero lost jobs, bit-identical to the fault-free baseline run.
    expect_matches_baseline(report);
    expect_identical_results(report, *healthy_);
  }

  void SetUp() override {
    SchedulerTest::SetUp();
    healthy_ = std::make_unique<sched::ParallelRunReport>(sched::run_paths(workload_, 4));
  }

  std::unique_ptr<sched::ParallelRunReport> healthy_;
};

TEST_F(ChaosMatrix, FcfsDrainSurvivesSeededChaos) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    sched::VectorJobSource source(workload_);
    sched::InMemoryReportSink sink;
    sched::Session session(source, sink, chaos_session(sched::Policy::kFCFS, seed));
    const auto stats = session.run(4);
    append_chaos_report("fcfs", "drain", seed, stats);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_recovered(stats, sink.report(stats));
  }
}

TEST_F(ChaosMatrix, BatchStealDrainSurvivesSeededChaos) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    sched::VectorJobSource source(workload_);
    sched::InMemoryReportSink sink;
    sched::Session session(source, sink, chaos_session(sched::Policy::kBatchSteal, seed));
    const auto stats = session.run(4);
    append_chaos_report("batchsteal", "drain", seed, stats);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_recovered(stats, sink.report(stats));
  }
}

TEST_F(ChaosMatrix, FcfsServeSurvivesSeededChaos) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<double> burst(starts_.size(), 0.0);
    sched::VectorJobSource inner(workload_);
    sched::StreamJobSource stream(inner, burst);
    sched::InMemoryReportSink sink;
    sched::Session session(stream, sink, chaos_session(sched::Policy::kFCFS, seed));
    const auto stats = session.serve(4);
    append_chaos_report("fcfs", "serve", seed, stats);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(stats.service.drained());
    expect_recovered(stats, sink.report(stats));
  }
}

TEST_F(ChaosMatrix, BatchStealServeSurvivesSeededChaos) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<double> burst(starts_.size(), 0.0);
    sched::VectorJobSource inner(workload_);
    sched::StreamJobSource stream(inner, burst);
    sched::InMemoryReportSink sink;
    sched::Session session(stream, sink, chaos_session(sched::Policy::kBatchSteal, seed));
    const auto stats = session.serve(4);
    append_chaos_report("batchsteal", "serve", seed, stats);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(stats.service.drained());
    expect_recovered(stats, sink.report(stats));
  }
}

// ---- the chaos x deadline matrix (DESIGN.md section 13) ---------------------
// Seeded random fault plans crossed with per-request deadlines: a mid
// deadline that splits the pool into completed and expired, and a tight
// deadline that cancels nearly everything in flight.  Whatever the fault
// and the budget do to an individual request, the conservation identity
// must hold exactly: every request ends in exactly one terminal bucket
// (completed / expired / shed / dropped / quarantined), none lost, none
// double-counted, and no request retried past its attempt budget.

class ChaosDeadlineMatrix : public SchedulerTest {
 protected:
  sched::SessionOptions chaos_session(sched::Policy policy, std::uint64_t seed,
                                      std::optional<double> deadline) {
    mp::ChaosOptions chaos;
    chaos.max_terminal = 1;
    chaos.max_jobs_before_fault = 6;
    auto rel = sched::ReliabilityOptions()
                   .with_attempts(2, 0.001, 2.0, 0.2)
                   .with_jitter_seed(seed);
    if (deadline.has_value()) rel.with_deadline(*deadline);
    return sched::SessionOptions()
        .with_policy(policy)
        .with_fault_plan(mp::FaultPlan::random(seed, 4, chaos))
        .with_supervision(test_supervisor())
        .with_reliability(rel);
  }

  void run_cell(sched::Policy policy, const char* policy_name, std::uint64_t seed,
                std::optional<double> deadline) {
    SCOPED_TRACE(std::string(policy_name) + " seed " + std::to_string(seed) +
                 " deadline " + (deadline ? std::to_string(*deadline) : "none"));
    const std::vector<double> burst(starts_.size(), 0.0);
    sched::VectorJobSource inner(workload_);
    sched::StreamJobSource stream(inner, burst);
    sched::InMemoryReportSink sink;
    sched::Session session(stream, sink, chaos_session(policy, seed, deadline));
    const auto stats = session.serve(4);
    append_chaos_report(policy_name, "serve-deadline", seed, stats, deadline);
    // The conservation identity, exact under chaos: every request terminal
    // exactly once (with a burst trace nothing is shed at the door here,
    // so the terminal buckets must sum to the request count).
    EXPECT_EQ(stats.service.arrivals, starts_.size());
    EXPECT_EQ(stats.service.terminal_requests(), starts_.size());
    EXPECT_TRUE(stats.service.drained());
    // Budget cap: at most one retry per request (max_attempts = 2).
    EXPECT_LE(stats.reliability.retried, starts_.size());
    // The sink saw each surviving request exactly once.
    const auto report = sink.report(stats);
    EXPECT_EQ(report.paths.size(),
              stats.service.completed + stats.service.expired + stats.service.quarantined);
    std::size_t expired_records = 0;
    for (std::size_t i = 1; i < report.paths.size(); ++i) {
      EXPECT_LT(report.paths[i - 1].index, report.paths[i].index) << "duplicate terminal";
    }
    for (const auto& tp : report.paths) {
      if (tp.result.status == pph::homotopy::PathStatus::kDeadlineExpired) {
        ++expired_records;
        EXPECT_EQ(tp.worker, -1);  // synthesized on the master, never a stub
      }
    }
    EXPECT_EQ(expired_records, stats.service.expired);
  }
};

TEST_F(ChaosDeadlineMatrix, FcfsConservesEveryRequestUnderMidDeadline) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    run_cell(sched::Policy::kFCFS, "fcfs", seed, 0.25);
  }
}

TEST_F(ChaosDeadlineMatrix, FcfsConservesEveryRequestUnderTightDeadline) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    run_cell(sched::Policy::kFCFS, "fcfs", seed, 0.002);
  }
}

TEST_F(ChaosDeadlineMatrix, BatchStealConservesEveryRequestUnderDeadlines) {
  run_cell(sched::Policy::kBatchSteal, "batchsteal", 11, 0.25);
  run_cell(sched::Policy::kBatchSteal, "batchsteal", 11, 0.002);
}

// ---- front-door validation --------------------------------------------------

TEST_F(SchedulerTest, UncooperativeFaultsRequireSupervision) {
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  sched::Session silent(
      source, sink, sched::SessionOptions().with_fault_plan(mp::FaultPlan().kill(2, 3)));
  EXPECT_THROW(silent.run(4), std::invalid_argument);
  sched::VectorJobSource source2(workload_);
  sched::Session hung(
      source2, sink, sched::SessionOptions().with_fault_plan(mp::FaultPlan().hang(1, 0)));
  EXPECT_THROW(hung.run(4), std::invalid_argument);
}

TEST_F(SchedulerTest, FaultPlanMustLeaveASlaveAlive) {
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  sched::Session session(source, sink,
                         sched::SessionOptions()
                             .with_fault_plan(mp::FaultPlan().kill(1, 0).kill(2, 0).kill(3, 0))
                             .with_supervision(test_supervisor()));
  EXPECT_THROW(session.run(4), std::invalid_argument);
}

TEST_F(SchedulerTest, FaultPlanRejectsMasterAndOutOfRangeRanks) {
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  sched::Session master(
      source, sink,
      sched::SessionOptions().with_fault_plan(mp::FaultPlan().kill_announced(0, 1)));
  EXPECT_THROW(master.run(4), std::invalid_argument);
  sched::VectorJobSource source2(workload_);
  sched::Session oob(
      source2, sink,
      sched::SessionOptions().with_fault_plan(mp::FaultPlan().kill_announced(9, 1)));
  EXPECT_THROW(oob.run(4), std::invalid_argument);
  // An any-rank action without an on_job trigger is underspecified.
  sched::VectorJobSource source3(workload_);
  mp::FaultPlan bad;
  bad.add({mp::kAnyFaultRank, mp::FaultKind::kDieSilently, 0, std::nullopt, 0.0});
  sched::Session anyrank(source3, sink,
                         sched::SessionOptions()
                             .with_fault_plan(bad)
                             .with_supervision(test_supervisor()));
  EXPECT_THROW(anyrank.run(4), std::invalid_argument);
}

TEST_F(SchedulerTest, StaticPolicyRejectsSupervisionAndFaults) {
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  sched::Session supervised(source, sink,
                            sched::SessionOptions()
                                .with_policy(sched::Policy::kStatic)
                                .with_supervision(test_supervisor()));
  EXPECT_THROW(supervised.run(3), std::invalid_argument);
  sched::VectorJobSource source2(workload_);
  sched::Session faulted(
      source2, sink,
      sched::SessionOptions()
          .with_policy(sched::Policy::kStatic)
          .with_fault_plan(mp::FaultPlan().kill_announced(1, 0)));
  EXPECT_THROW(faulted.run(3), std::invalid_argument);
}

TEST_F(SchedulerTest, SupervisorKnobsAreValidated) {
  sched::VectorJobSource source(workload_);
  sched::DiscardSink sink;
  const auto run_with = [&](sched::SupervisorOptions so) {
    sched::Session session(source, sink, sched::SessionOptions().with_supervision(so));
    session.run(4);
  };
  EXPECT_THROW(run_with(sched::SupervisorOptions().with_heartbeat(0.0)),
               std::invalid_argument);
  EXPECT_THROW(run_with(sched::SupervisorOptions().with_miss_budget(0)),
               std::invalid_argument);
  EXPECT_THROW(run_with(sched::SupervisorOptions().with_miss_budget(10, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(run_with(sched::SupervisorOptions().with_ewma_alpha(0.0)),
               std::invalid_argument);
  EXPECT_THROW(run_with(sched::SupervisorOptions().with_max_attempts(0)),
               std::invalid_argument);
}

}  // namespace
