// Tests for m-homogeneous Bezout numbers, start structures, and the
// end-to-end multi-homogeneous solver, including the classical eigenvalue
// demonstration (2-homogeneous count n against total degree 2^n) and the
// polynomial parser used to build the test systems.

#include <gtest/gtest.h>

#include <cmath>

#include "homotopy/solver.hpp"
#include "homotopy/start_multihomogeneous.hpp"
#include "poly/parse.hpp"
#include "systems/cyclic.hpp"

namespace {

using pph::homotopy::multihomogeneous_bezout;
using pph::homotopy::multihomogeneous_degrees;
using pph::homotopy::multihomogeneous_structure;
using pph::homotopy::VariablePartition;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::parse_polynomial;
using pph::poly::parse_system;
using pph::poly::Polynomial;
using pph::poly::PolySystem;
using pph::util::Prng;

// ---- parser ------------------------------------------------------------------

TEST(Parse, SimpleMonomial) {
  const auto p = parse_polynomial("x0^2*x1", 2);
  EXPECT_EQ(p.term_count(), 1u);
  EXPECT_EQ(p.degree(), 3u);
  const CVector x{Complex{2, 0}, Complex{3, 0}};
  EXPECT_NEAR(std::abs(p.evaluate(x) - Complex{12, 0}), 0.0, 1e-14);
}

TEST(Parse, SignsAndConstants) {
  const auto p = parse_polynomial("-x0 + 2.5 - 1", 1);
  const CVector x{Complex{4, 0}};
  EXPECT_NEAR(std::abs(p.evaluate(x) - Complex{-2.5, 0}), 0.0, 1e-14);
}

TEST(Parse, ImaginaryLiterals) {
  const auto p = parse_polynomial("2i*x0 + i", 1);
  const CVector x{Complex{1, 0}};
  EXPECT_NEAR(std::abs(p.evaluate(x) - Complex{0, 3}), 0.0, 1e-14);
}

TEST(Parse, ParenthesizedPowers) {
  const auto p = parse_polynomial("(x0 + x1)^2", 2);
  const auto q = parse_polynomial("x0^2 + 2*x0*x1 + x1^2", 2);
  EXPECT_TRUE(p == q);
}

TEST(Parse, ErrorsAreInformative) {
  EXPECT_THROW(parse_polynomial("x9", 2), std::invalid_argument);
  EXPECT_THROW(parse_polynomial("x0 +", 1), std::invalid_argument);
  EXPECT_THROW(parse_polynomial("(x0", 1), std::invalid_argument);
  EXPECT_THROW(parse_polynomial("x0 ^ -2", 1), std::invalid_argument);
  EXPECT_THROW(parse_polynomial("x0 x1", 2), std::invalid_argument);
}

TEST(Parse, SystemBySemicolons) {
  const auto sys = parse_system("x0^2 - 1; x0*x1 - 2", 2);
  EXPECT_EQ(sys.size(), 2u);
  EXPECT_EQ(sys.total_degree(), 4u);
}

TEST(Parse, RoundTripThroughEvaluation) {
  Prng rng(1);
  const auto p = parse_polynomial("3*x0^3 - 0.5*x1^2*x2 + x2 - 7", 3);
  for (int trial = 0; trial < 4; ++trial) {
    CVector x(3);
    for (auto& v : x) v = rng.normal_complex();
    const Complex direct = 3.0 * x[0] * x[0] * x[0] - 0.5 * x[1] * x[1] * x[2] + x[2] -
                           Complex{7, 0};
    EXPECT_NEAR(std::abs(p.evaluate(x) - direct), 0.0, 1e-12 * (1.0 + std::abs(direct)));
  }
}

// ---- m-homogeneous counts ------------------------------------------------------

TEST(Multihomogeneous, SingleGroupReducesToTotalDegree) {
  const auto sys = pph::systems::cyclic(5);
  const VariablePartition one_group(5, 0);
  EXPECT_EQ(multihomogeneous_bezout(sys, one_group), sys.total_degree());
}

TEST(Multihomogeneous, DegreesTableSeparatesGroups) {
  // f = x0^2 * x1 with partition {x0}, {x1}: degrees (2, 1).
  const auto sys = parse_system("x0^2*x1", 2);
  const auto d = multihomogeneous_degrees(sys, {0, 1});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], (std::vector<std::uint32_t>{2, 1}));
}

TEST(Multihomogeneous, KnownTwoHomogeneousCount) {
  // Two equations of bidegree (1,1) in groups of size 1 and 1:
  // coefficient of z0*z1 in (z0+z1)^2 = 2.
  const auto sys = parse_system("x0*x1 - 1; x0*x1 + x0 - 2", 2);
  EXPECT_EQ(multihomogeneous_bezout(sys, {0, 1}), 2u);
  // Against the (coarser) total degree 4.
  EXPECT_EQ(sys.total_degree(), 4u);
}

PolySystem eigenproblem(std::size_t n, Prng& rng, pph::linalg::CMatrix* a_out = nullptr) {
  // Eigenvalue problem as a polynomial system: variables (lambda, x_1..x_n),
  //   A x = lambda x   (n bilinear equations)
  //   c^T x = 1        (random normalization, kills the scaling freedom)
  const std::size_t nvars = n + 1;  // variable 0 is lambda
  pph::linalg::CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal_complex();
  if (a_out) *a_out = a;
  PolySystem sys(nvars);
  for (std::size_t r = 0; r < n; ++r) {
    Polynomial p(nvars);
    for (std::size_t c = 0; c < n; ++c) {
      p += Polynomial::variable(nvars, c + 1) * a(r, c);
    }
    // minus lambda * x_r.
    pph::poly::Monomial lx(nvars);
    lx.set_exponent(0, 1);
    lx.set_exponent(r + 1, 1);
    p -= Polynomial(nvars, {{Complex{1, 0}, lx}});
    sys.add_equation(std::move(p));
  }
  Polynomial norm(nvars);
  for (std::size_t c = 0; c < n; ++c) {
    norm += Polynomial::variable(nvars, c + 1) * rng.unit_complex();
  }
  norm -= Polynomial::constant(nvars, Complex{1, 0});
  sys.add_equation(std::move(norm));
  return sys;
}

TEST(Multihomogeneous, EigenproblemCountIsNNotTwoToN) {
  Prng rng(2);
  const std::size_t n = 4;
  const auto sys = eigenproblem(n, rng);
  // Partition: {lambda} | {x}.
  VariablePartition partition(n + 1, 1);
  partition[0] = 0;
  EXPECT_EQ(multihomogeneous_bezout(sys, partition), n);
  EXPECT_EQ(sys.total_degree(), (1ull << n));  // 2^n, exponentially coarser
}

TEST(Multihomogeneous, StructureFactorCountsMatchDegrees) {
  Prng rng(3);
  const auto sys = eigenproblem(3, rng);
  VariablePartition partition(4, 1);
  partition[0] = 0;
  const auto ps = multihomogeneous_structure(sys, partition);
  ASSERT_EQ(ps.size(), 4u);
  // Bilinear equations: one lambda-factor + one x-factor; normalization:
  // one x-factor.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(ps.equations[i].size(), 2u);
  EXPECT_EQ(ps.equations[3].size(), 1u);
}

TEST(Multihomogeneous, SolvesEigenproblemWithNPaths) {
  Prng rng(4);
  const std::size_t n = 4;
  pph::linalg::CMatrix a;
  const auto sys = eigenproblem(n, rng, &a);
  VariablePartition partition(n + 1, 1);
  partition[0] = 0;
  const auto summary = pph::homotopy::solve_multihomogeneous(sys, partition);
  // All n eigenpairs found from only n start combinations (the structure
  // has 2^3 * 1 = 8 combinations but only n = 4 are solvable).
  EXPECT_EQ(summary.solutions.size(), n);
  EXPECT_EQ(summary.converged, n);
  for (const auto& sol : summary.solutions) {
    // Verify the eigenvalue equation A x = lambda x.
    const Complex lambda = sol[0];
    CVector x(sol.begin() + 1, sol.end());
    const CVector ax = a.apply(x);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_LT(std::abs(ax[r] - lambda * x[r]), 1e-7 * (1.0 + std::abs(lambda)));
    }
  }
}

TEST(Multihomogeneous, AgreesWithTotalDegreeSolve) {
  // Both homotopies must find the same finite solution set.
  Prng rng(5);
  const auto sys = parse_system("x0*x1 - 2; x0 + x1 - 3", 2);
  const auto td = pph::homotopy::solve_total_degree(sys);
  const auto mh = pph::homotopy::solve_multihomogeneous(sys, {0, 1});
  EXPECT_EQ(td.solutions.size(), 2u);
  EXPECT_EQ(mh.solutions.size(), 2u);
  for (const auto& s : td.solutions) {
    double best = 1e18;
    for (const auto& t : mh.solutions) best = std::min(best, pph::linalg::distance2(s, t));
    EXPECT_LT(best, 1e-7);
  }
}

TEST(Multihomogeneous, PartitionSizeValidated) {
  const auto sys = parse_system("x0 - 1", 1);
  EXPECT_THROW(multihomogeneous_degrees(sys, {0, 1}), std::invalid_argument);
}

}  // namespace
