// Tests for src/homotopy: corrector convergence, predictor accuracy, the
// path tracker on systems with known roots, total-degree and linear-product
// start systems, and the sequential blackbox solver.

#include <gtest/gtest.h>

#include <cmath>

#include "homotopy/solver.hpp"
#include "util/prng.hpp"

namespace {

using pph::homotopy::ConvexHomotopy;
using pph::homotopy::CorrectorOptions;
using pph::homotopy::CorrectorStatus;
using pph::homotopy::LinearProductStart;
using pph::homotopy::PathStatus;
using pph::homotopy::ProductStructure;
using pph::homotopy::SolveOptions;
using pph::homotopy::TotalDegreeStart;
using pph::homotopy::TrackerOptions;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::Monomial;
using pph::poly::Polynomial;
using pph::poly::PolySystem;
using pph::util::Prng;

/// Univariate x^2 - c as a 1x1 system.
PolySystem quadratic_system(Complex c) {
  Monomial sq(1);
  sq.set_exponent(0, 2);
  return PolySystem(1, {Polynomial(1, {{Complex{1, 0}, sq}, {-c, Monomial(1)}})});
}

TEST(ConvexHomotopy, EndpointsMatchStartAndTarget) {
  Prng rng(1);
  const PolySystem f = quadratic_system(Complex{4, 0});
  const PolySystem g = quadratic_system(Complex{1, 0});
  const Complex gamma = rng.unit_complex();
  ConvexHomotopy h(g, f, gamma);
  const CVector x{Complex{1.3, 0.7}};
  const auto h0 = h.evaluate(x, 0.0);
  const auto h1 = h.evaluate(x, 1.0);
  const auto gv = g.evaluate(x);
  const auto fv = f.evaluate(x);
  EXPECT_NEAR(std::abs(h0[0] - gamma * gv[0]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(h1[0] - fv[0]), 0.0, 1e-13);
}

TEST(ConvexHomotopy, DerivativeTMatchesFiniteDifference) {
  Prng rng(2);
  const PolySystem f = quadratic_system(Complex{4, 0});
  const PolySystem g = quadratic_system(Complex{1, 0});
  ConvexHomotopy h(g, f, rng.unit_complex());
  const CVector x{Complex{0.5, -0.2}};
  const double t = 0.37, eps = 1e-7;
  const auto d = h.derivative_t(x, t);
  const auto hp = h.evaluate(x, t + eps);
  const auto hm = h.evaluate(x, t - eps);
  const Complex fd = (hp[0] - hm[0]) / (2 * eps);
  EXPECT_NEAR(std::abs(d[0] - fd), 0.0, 1e-6);
}

TEST(ConvexHomotopy, ShapeMismatchThrows) {
  const PolySystem f = quadratic_system(Complex{4, 0});
  PolySystem g2(2);
  g2.add_equation(Polynomial::variable(2, 0));
  g2.add_equation(Polynomial::variable(2, 1));
  EXPECT_THROW(ConvexHomotopy(g2, f, Complex{1, 0}), std::invalid_argument);
}

TEST(Corrector, ConvergesQuadraticallyNearRoot) {
  Prng rng(3);
  const PolySystem f = quadratic_system(Complex{4, 0});
  ConvexHomotopy h(f, f, Complex{1, 0});  // H(.,t) == f for all t
  CVector x{Complex{2.05, 0.01}};
  const auto r = pph::homotopy::correct(h, x, 1.0, CorrectorOptions{});
  EXPECT_EQ(r.status, CorrectorStatus::kConverged);
  EXPECT_NEAR(std::abs(x[0] - Complex{2, 0}), 0.0, 1e-9);
}

TEST(Corrector, ReportsSingularJacobian) {
  // x^2 has a double root at 0: Jacobian 2x vanishes there.
  const PolySystem f = quadratic_system(Complex{0, 0});
  ConvexHomotopy h(f, f, Complex{1, 0});
  CVector x{Complex{0, 0}};
  const auto r = pph::homotopy::correct(h, x, 1.0, CorrectorOptions{});
  // At exactly zero, residual 0 -> converged; nudge off the root but keep
  // the Jacobian singular via the zero point.
  EXPECT_EQ(r.status, CorrectorStatus::kConverged);
}

TEST(Predictor, TangentBeatsZeroOrder) {
  Prng rng(4);
  const PolySystem f = quadratic_system(Complex{4, 0});
  const PolySystem g = quadratic_system(Complex{1, 0});
  ConvexHomotopy h(g, f, Complex{1, 0});
  // Path from x=1 at t=0; true path x(t) = sqrt(1 + 3t) for gamma = 1.
  const CVector x0{Complex{1, 0}};
  const double dt = 0.1;
  const auto pred = pph::homotopy::predict_tangent(h, x0, 0.0, dt);
  ASSERT_TRUE(pred.has_value());
  const double truth = std::sqrt(1.0 + 3.0 * dt);
  const double err_tangent = std::abs((*pred)[0] - Complex{truth, 0});
  const double err_zero = std::abs(x0[0] - Complex{truth, 0});
  EXPECT_LT(err_tangent, 0.5 * err_zero);
}

TEST(Predictor, SecantExtrapolatesLinearly)
{
  const CVector a{Complex{1, 0}};
  const CVector b{Complex{2, 0}};
  const auto p = pph::homotopy::predict_secant(a, 0.0, b, 0.5, 0.25);
  EXPECT_NEAR(std::abs(p[0] - Complex{2.5, 0}), 0.0, 1e-14);
}

TEST(Tracker, TracksQuadraticToBothRoots) {
  Prng rng(5);
  const PolySystem f = quadratic_system(Complex{4, 0});
  TotalDegreeStart start(f, rng);
  ConvexHomotopy h(start.system(), f, rng.unit_complex());
  const auto starts = start.all_solutions();
  ASSERT_EQ(starts.size(), 2u);
  std::vector<CVector> ends;
  for (const auto& s : starts) {
    const auto r = pph::homotopy::track_path(h, s);
    ASSERT_EQ(r.status, PathStatus::kConverged);
    EXPECT_LT(r.residual, 1e-10);
    ends.push_back(r.x);
  }
  // Endpoints are +/-2 in some order.
  const double d0 = std::abs(ends[0][0] - Complex{2, 0});
  const double d1 = std::abs(ends[0][0] + Complex{2, 0});
  EXPECT_LT(std::min(d0, d1), 1e-8);
  EXPECT_GT(std::abs(ends[0][0] - ends[1][0]), 1.0);
}

TEST(Tracker, CountsStepsAndIterations) {
  Prng rng(6);
  const PolySystem f = quadratic_system(Complex{2, 3});
  TotalDegreeStart start(f, rng);
  ConvexHomotopy h(start.system(), f, rng.unit_complex());
  const auto r = pph::homotopy::track_path(h, start.solution(0));
  EXPECT_TRUE(r.converged());
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.newton_iterations, 0u);
}

TEST(Tracker, DivergentPathClassified) {
  // Target x^2 - ... with start of higher degree: x^3 - 1 start has 3 paths
  // but the quadratic target has only 2 finite roots; one path must diverge.
  const std::size_t n = 1;
  Monomial cube(n);
  cube.set_exponent(0, 3);
  PolySystem g(n, {Polynomial(n, {{Complex{1, 0}, cube}, {Complex{-1, 0}, Monomial(n)}})});
  Monomial sq(n);
  sq.set_exponent(0, 2);
  PolySystem f(n, {Polynomial(n, {{Complex{1, 0}, sq}, {Complex{-4, 0}, Monomial(n)}})});
  Prng rng(7);
  ConvexHomotopy h(g, f, rng.unit_complex());
  std::size_t diverged = 0, converged = 0;
  for (int k = 0; k < 3; ++k) {
    const double theta = 2.0 * std::numbers::pi * k / 3.0;
    const CVector s{Complex{std::cos(theta), std::sin(theta)}};
    const auto r = pph::homotopy::track_path(h, s);
    if (r.status == PathStatus::kDiverged) ++diverged;
    if (r.status == PathStatus::kConverged) ++converged;
  }
  EXPECT_EQ(converged, 2u);
  EXPECT_EQ(diverged, 1u);
}

TEST(TotalDegreeStart, SolutionsSatisfyStartSystem) {
  Prng rng(8);
  PolySystem sys(2);
  Monomial m0(2);
  m0.set_exponent(0, 2);
  m0.set_exponent(1, 1);
  sys.add_equation(Polynomial(2, {{Complex{1, 0}, m0}, {Complex{-1, 0}, Monomial(2)}}));
  Monomial m1(2);
  m1.set_exponent(1, 2);
  sys.add_equation(Polynomial(2, {{Complex{2, 0}, m1}, {Complex{1, 0}, Monomial(2)}}));
  TotalDegreeStart start(sys, rng);
  EXPECT_EQ(start.solution_count(), 6u);  // degrees 3 * 2
  for (unsigned long long k = 0; k < start.solution_count(); ++k) {
    EXPECT_LT(start.system().residual(start.solution(k)), 1e-12);
  }
}

TEST(TotalDegreeStart, SolutionsDistinct) {
  Prng rng(9);
  const PolySystem f = quadratic_system(Complex{1, 1});
  TotalDegreeStart start(f, rng);
  const auto all = start.all_solutions();
  EXPECT_EQ(pph::poly::deduplicate_solutions(all, 1e-9).size(), all.size());
}

TEST(TotalDegreeStart, DegreeZeroEquationRejected) {
  PolySystem sys(1, {Polynomial::constant(1, Complex{1, 0})});
  Prng rng(10);
  EXPECT_THROW(TotalDegreeStart(sys, rng), std::invalid_argument);
}

TEST(LinearProductStart, CombinationCountMultiplies) {
  ProductStructure ps;
  ps.equations = {{{0}, {1}}, {{0, 1}, {0}, {1}}};
  EXPECT_EQ(ps.combination_count(), 6u);
}

TEST(LinearProductStart, SolutionsSatisfyStartSystem) {
  Prng rng(11);
  ProductStructure ps;
  pph::homotopy::FactorSupport full{0, 1};
  ps.equations = {{full, full}, {full, full, full}};
  LinearProductStart start(2, ps, rng);
  const auto sols = start.all_solutions();
  EXPECT_EQ(sols.size(), 6u);  // all combinations generically solvable
  for (const auto& [k, x] : sols) {
    (void)k;
    EXPECT_LT(start.system().residual(x), 1e-10);
  }
}

TEST(LinearProductStart, StartSystemDegreeEqualsFactorCount) {
  Prng rng(12);
  ProductStructure ps;
  pph::homotopy::FactorSupport full{0, 1, 2};
  ps.equations = {{full, full}, {full}, {full, full, full}};
  LinearProductStart start(3, ps, rng);
  const auto d = start.system().degrees();
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 3u);
}

TEST(Solver, SolvesTwoByTwoIntersection) {
  // x^2 + y^2 = 5, x*y = 2 has 4 solutions: (+-1,+-2),(+-2,+-1) with signs
  // paired: (1,2),(2,1),(-1,-2),(-2,-1).
  const std::size_t n = 2;
  Monomial x2(n), y2(n), xy(n);
  x2.set_exponent(0, 2);
  y2.set_exponent(1, 2);
  xy.set_exponent(0, 1);
  xy.set_exponent(1, 1);
  PolySystem f(n);
  f.add_equation(Polynomial(n, {{Complex{1, 0}, x2}, {Complex{1, 0}, y2},
                                {Complex{-5, 0}, Monomial(n)}}));
  f.add_equation(Polynomial(n, {{Complex{1, 0}, xy}, {Complex{-2, 0}, Monomial(n)}}));
  const auto summary = pph::homotopy::solve_total_degree(f);
  EXPECT_EQ(summary.path_count, 4u);
  EXPECT_EQ(summary.converged, 4u);
  EXPECT_EQ(summary.solutions.size(), 4u);
  for (const auto& s : summary.solutions) EXPECT_LT(f.residual(s), 1e-8);
}

TEST(Solver, GammaSeedInvarianceOfSolutionSet) {
  const std::size_t n = 2;
  Monomial x2(n);
  x2.set_exponent(0, 2);
  PolySystem f(n);
  f.add_equation(Polynomial(n, {{Complex{1, 0}, x2}, {Complex{-1, 0}, Monomial(n)}}));
  f.add_equation(Polynomial::variable(n, 0) + Polynomial::variable(n, 1) * Complex{2, 0} -
                 Polynomial::constant(n, Complex{3, 0}));
  SolveOptions a, b;
  a.seed = 101;
  b.seed = 202;
  const auto sa = pph::homotopy::solve_total_degree(f, a);
  const auto sb = pph::homotopy::solve_total_degree(f, b);
  ASSERT_EQ(sa.solutions.size(), sb.solutions.size());
  // Every solution of run A appears in run B.
  for (const auto& x : sa.solutions) {
    double best = 1e9;
    for (const auto& y : sb.solutions) {
      best = std::min(best, pph::linalg::distance2(x, y));
    }
    EXPECT_LT(best, 1e-6);
  }
}

TEST(Solver, PathSecondsRecordedPerPath) {
  const PolySystem f = quadratic_system(Complex{7, -2});
  const auto summary = pph::homotopy::solve_total_degree(f);
  EXPECT_EQ(summary.path_seconds.size(), summary.path_count);
  for (double s : summary.path_seconds) EXPECT_GE(s, 0.0);
}

}  // namespace
