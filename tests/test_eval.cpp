// Tests for src/eval: the compiled straight-line evaluation engine must be
// numerically indistinguishable from the interpreted Polynomial walk it
// replaces (golden equivalence on randomized systems), agree with finite
// differences, survive the degenerate corners (zero/constant polynomials,
// zero coordinates, degree 0), and — the point of the exercise — run the
// steady-state Newton loop without a single heap allocation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "eval/compiled_homotopy.hpp"
#include "eval/compiled_system.hpp"
#include "homotopy/solver.hpp"
#include "systems/cyclic.hpp"
#include "util/prng.hpp"

// ---- global allocation counter --------------------------------------------
//
// Replacing the global allocation functions lets the no-allocation test
// observe every operator-new in the process.  The replacements stay trivial
// (malloc + counter) so they compose with ASan's malloc interposition.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using pph::eval::CompiledHomotopy;
using pph::eval::CompiledSystem;
using pph::eval::EvalWorkspace;
using pph::homotopy::ConvexHomotopy;
using pph::homotopy::CorrectorOptions;
using pph::homotopy::TotalDegreeStart;
using pph::homotopy::TrackerWorkspace;
using pph::linalg::CMatrix;
using pph::linalg::Complex;
using pph::linalg::CVector;
using pph::poly::Monomial;
using pph::poly::Polynomial;
using pph::poly::PolySystem;
using pph::poly::Term;
using pph::util::Prng;

CVector random_point(Prng& rng, std::size_t n) {
  CVector x(n);
  for (auto& v : x) v = rng.normal_complex();
  return x;
}

/// Random sparse polynomial: up to `max_terms` terms, per-variable degree up
/// to `max_deg`.
Polynomial random_polynomial(Prng& rng, std::size_t nvars, std::size_t max_terms,
                             std::uint32_t max_deg) {
  std::vector<Term> terms;
  const std::size_t nterms = 1 + rng.uniform_index(max_terms);
  for (std::size_t k = 0; k < nterms; ++k) {
    Monomial m(nvars);
    for (std::size_t v = 0; v < nvars; ++v) {
      m.set_exponent(v, static_cast<std::uint32_t>(rng.uniform_index(max_deg + 1)));
    }
    terms.push_back({rng.normal_complex(), m});
  }
  return Polynomial(nvars, std::move(terms));
}

PolySystem random_system(Prng& rng, std::size_t nvars) {
  PolySystem sys(nvars);
  for (std::size_t i = 0; i < nvars; ++i) {
    sys.add_equation(random_polynomial(rng, nvars, 8, 4));
  }
  return sys;
}

double rel_err(Complex got, Complex want) {
  return std::abs(got - want) / (1.0 + std::abs(want));
}

// ---- golden equivalence vs the interpreted path ---------------------------

TEST(CompiledSystem, MatchesInterpretedOnRandomSystems) {
  Prng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nvars = 1 + rng.uniform_index(6);
    const PolySystem sys = random_system(rng, nvars);
    const CompiledSystem compiled(sys);
    EvalWorkspace ws;
    CVector values;
    CMatrix jac;
    for (int pt = 0; pt < 4; ++pt) {
      const CVector x = random_point(rng, nvars);
      compiled.evaluate_with_jacobian(x, ws, values, jac);
      for (std::size_t i = 0; i < sys.size(); ++i) {
        const auto [want_v, want_g] = sys.equation(i).evaluate_with_gradient(x);
        EXPECT_LT(rel_err(values[i], want_v), 1e-12);
        for (std::size_t c = 0; c < nvars; ++c) {
          EXPECT_LT(rel_err(jac(i, c), want_g[c]), 1e-12);
        }
      }
      // Value-only entry point agrees with the fused pass.
      CVector values_only;
      compiled.evaluate(x, ws, values_only);
      for (std::size_t i = 0; i < sys.size(); ++i) {
        EXPECT_EQ(values_only[i], values[i]);
      }
    }
  }
}

TEST(CompiledSystem, SharesCommonMonomialsAcrossEquations) {
  // eq0 = x0*x1 + x0^2, eq1 = 3*x0*x1 - x1: the x0*x1 monomial appears in
  // both equations and must occupy a single pool slot.
  Monomial xy(2), xx(2), y(2);
  xy.set_exponent(0, 1);
  xy.set_exponent(1, 1);
  xx.set_exponent(0, 2);
  y.set_exponent(1, 1);
  PolySystem sys(2);
  sys.add_equation(Polynomial(2, {{Complex{1, 0}, xy}, {Complex{1, 0}, xx}}));
  sys.add_equation(Polynomial(2, {{Complex{3, 0}, xy}, {Complex{-1, 0}, y}}));
  const CompiledSystem compiled(sys);
  EXPECT_EQ(compiled.term_count(), 4u);
  EXPECT_EQ(compiled.monomial_count(), 3u);

  // The stacked start/target tape of a convex homotopy pools the constant
  // monomial shared by every total-degree start equation.
  Prng rng(108);
  const PolySystem target = pph::systems::cyclic(5);
  TotalDegreeStart start(target, rng);
  PolySystem stacked(target.nvars());
  for (const auto& p : start.system().equations()) stacked.add_equation(p);
  for (const auto& p : target.equations()) stacked.add_equation(p);
  const CompiledSystem ctape(stacked);
  std::size_t total_terms = 0;
  for (const auto& p : stacked.equations()) total_terms += p.term_count();
  EXPECT_EQ(ctape.term_count(), total_terms);
  EXPECT_LT(ctape.monomial_count(), total_terms);
}

TEST(CompiledSystem, MatchesAtZeroCoordinates) {
  // Gradient at points with zero coordinates: the interpreted path switches
  // to re-evaluating the reduced monomial; the compiled prefix/suffix pass
  // must agree without any special casing.
  Prng rng(102);
  const std::size_t nvars = 3;
  const PolySystem sys = random_system(rng, nvars);
  const CompiledSystem compiled(sys);
  EvalWorkspace ws;
  CVector values;
  CMatrix jac;
  CVector x = random_point(rng, nvars);
  x[1] = Complex{};  // exact zero coordinate
  compiled.evaluate_with_jacobian(x, ws, values, jac);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto [want_v, want_g] = sys.equation(i).evaluate_with_gradient(x);
    EXPECT_LT(rel_err(values[i], want_v), 1e-12);
    for (std::size_t c = 0; c < nvars; ++c) {
      EXPECT_LT(rel_err(jac(i, c), want_g[c]), 1e-12);
    }
  }
}

TEST(CompiledSystem, DegenerateCases) {
  EvalWorkspace ws;
  CVector values;
  CMatrix jac;

  // Zero polynomial and constant polynomial (degree 0).
  PolySystem sys(2);
  sys.add_equation(Polynomial::zero(2));
  sys.add_equation(Polynomial::constant(2, Complex{3.0, -1.0}));
  const CompiledSystem compiled(sys);
  const CVector x = {Complex{1.5, 0.5}, Complex{-2.0, 1.0}};
  compiled.evaluate_with_jacobian(x, ws, values, jac);
  EXPECT_EQ(values[0], Complex{});
  EXPECT_EQ(values[1], (Complex{3.0, -1.0}));
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(jac(0, c), Complex{});
    EXPECT_EQ(jac(1, c), Complex{});
  }

  // Single variable, x^3.
  Monomial cube(1);
  cube.set_exponent(0, 3);
  PolySystem single(1, {Polynomial(1, {{Complex{1.0, 0.0}, cube}})});
  const CompiledSystem csingle(single);
  const CVector y = {Complex{2.0, 0.0}};
  csingle.evaluate_with_jacobian(y, ws, values, jac);
  EXPECT_LT(rel_err(values[0], Complex{8.0, 0.0}), 1e-14);
  EXPECT_LT(rel_err(jac(0, 0), Complex{12.0, 0.0}), 1e-14);

  // Empty system (no equations).
  const CompiledSystem cempty{PolySystem(2)};
  cempty.evaluate_with_jacobian(x, ws, values, jac);
  EXPECT_EQ(values.size(), 0u);
  EXPECT_EQ(jac.rows(), 0u);
}

// ---- compiled homotopy vs interpreted ConvexHomotopy ----------------------

TEST(CompiledHomotopy, MatchesInterpretedConvexHomotopy) {
  Prng rng(103);
  const PolySystem target = pph::systems::cyclic(5);
  TotalDegreeStart start(target, rng);
  const Complex gamma = rng.unit_complex();
  const ConvexHomotopy h(start.system(), target, gamma);

  CompiledHomotopy::Workspace ws;
  CVector hv, ht;
  CMatrix jac;
  for (double t : {0.0, 0.25, 0.62, 1.0}) {
    const CVector x = random_point(rng, target.nvars());
    h.compiled().evaluate_fused(x, t, ws, hv, jac, ht);
    const CVector want_h = h.evaluate(x, t);           // interpreted reference
    const CMatrix want_j = h.jacobian_x(x, t);
    const CVector want_ht = h.derivative_t(x, t);
    for (std::size_t i = 0; i < target.nvars(); ++i) {
      EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
      EXPECT_LT(rel_err(ht[i], want_ht[i]), 1e-12);
      for (std::size_t c = 0; c < target.nvars(); ++c) {
        EXPECT_LT(rel_err(jac(i, c), want_j(i, c)), 1e-12);
      }
    }
  }
}

TEST(CompiledHomotopy, FastPathVirtualsMatchGoldenReference) {
  // The Homotopy-level entry points the tracker actually calls, exercised
  // both with the homotopy's own workspace and with nullptr (fallback).
  Prng rng(104);
  const PolySystem target = pph::systems::cyclic(4);
  TotalDegreeStart start(target, rng);
  const ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const CVector x = random_point(rng, target.nvars());
  const double t = 0.41;

  const CVector want_h = h.evaluate(x, t);
  const CMatrix want_j = h.jacobian_x(x, t);

  auto ws = h.make_workspace();
  ASSERT_NE(ws, nullptr);
  CVector hv;
  CMatrix jac;
  for (pph::homotopy::HomotopyWorkspace* w : {ws.get(), (pph::homotopy::HomotopyWorkspace*)nullptr}) {
    h.evaluate_with_jacobian_into(x, t, w, hv, jac);
    for (std::size_t i = 0; i < target.nvars(); ++i) {
      EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
      for (std::size_t c = 0; c < target.nvars(); ++c) {
        EXPECT_LT(rel_err(jac(i, c), want_j(i, c)), 1e-12);
      }
    }
    h.evaluate_into(x, t, w, hv);
    for (std::size_t i = 0; i < target.nvars(); ++i) {
      EXPECT_LT(rel_err(hv[i], want_h[i]), 1e-12);
    }
  }
}

// ---- finite-difference gradient check -------------------------------------

TEST(CompiledSystem, JacobianMatchesFiniteDifferences) {
  Prng rng(105);
  const std::size_t nvars = 4;
  const PolySystem sys = random_system(rng, nvars);
  const CompiledSystem compiled(sys);
  EvalWorkspace ws;
  CVector values, vp, vm;
  CMatrix jac;
  const CVector x = random_point(rng, nvars);
  compiled.evaluate_with_jacobian(x, ws, values, jac);
  const double eps = 1e-6;
  for (std::size_t v = 0; v < nvars; ++v) {
    CVector xp = x, xm = x;
    xp[v] += eps;
    xm[v] -= eps;
    compiled.evaluate(xp, ws, vp);
    compiled.evaluate(xm, ws, vm);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const Complex fd = (vp[i] - vm[i]) / (2.0 * eps);
      EXPECT_LT(std::abs(fd - jac(i, v)) / (1.0 + std::abs(fd)), 1e-5)
          << "equation " << i << " variable " << v;
    }
  }
}

// ---- allocation-free steady state -----------------------------------------

TEST(EvalAllocation, SteadyStateNewtonLoopAllocatesNothing) {
  Prng rng(106);
  const PolySystem target = pph::systems::cyclic(5);
  TotalDegreeStart start(target, rng);
  const ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const CVector x0 = start.solution(3);

  TrackerWorkspace ws(h);
  CorrectorOptions opts;
  opts.max_iterations = 4;
  opts.residual_tolerance = 1e-300;  // force full Newton iterations incl. LU
  CVector x = x0;

  // Warm-up: sizes every buffer (including the LU's swap pair).
  for (int i = 0; i < 3; ++i) {
    x = x0;
    pph::homotopy::correct(h, x, 0.02, opts, ws);
  }

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) {
    x = x0;  // same-size copy-assign, no allocation
    pph::homotopy::correct(h, x, 0.02, opts, ws);
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state Newton loop allocated " << (after - before)
                           << " times";
}

TEST(EvalAllocation, SteadyStateFusedEvaluationAllocatesNothing) {
  Prng rng(107);
  const PolySystem target = pph::systems::cyclic(6);
  TotalDegreeStart start(target, rng);
  const ConvexHomotopy h(start.system(), target, rng.unit_complex());
  const CVector x = random_point(rng, target.nvars());

  auto ws = h.make_workspace();
  CVector hv, ht;
  CMatrix jac;
  h.evaluate_fused(x, 0.5, ws.get(), hv, jac, ht);  // warm-up
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    h.evaluate_fused(x, 0.5, ws.get(), hv, jac, ht);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before);
}

// ---- end-to-end: tracked paths stay correct with the engine on ------------

TEST(CompiledTracking, SolvesCyclic5ToKnownRootCount) {
  const PolySystem target = pph::systems::cyclic(5);
  const auto summary = pph::homotopy::solve_total_degree(target);
  EXPECT_EQ(summary.solutions.size(), pph::systems::cyclic_known_root_count(5));
}

}  // namespace
