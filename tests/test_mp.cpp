// Tests for the in-process message-passing runtime: serialization
// round-trips, mailbox semantics (filtering, per-sender ordering, timed
// receives), world lifecycle, barrier, poisoning (one rank's exception must
// unblock every sibling so the join completes), and stress under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <numeric>
#include <thread>

#include "mp/comm.hpp"

namespace {

using pph::mp::Comm;
using pph::mp::kAnySource;
using pph::mp::kAnyTag;
using pph::mp::Mailbox;
using pph::mp::Message;
using pph::mp::Packer;
using pph::mp::Unpacker;
using pph::mp::World;

TEST(Serialize, PodRoundTrip) {
  Packer p;
  p.write(42);
  p.write(3.5);
  p.write(std::complex<double>{1.0, -2.0});
  Unpacker u(p.bytes());
  EXPECT_EQ(u.read<int>(), 42);
  EXPECT_DOUBLE_EQ(u.read<double>(), 3.5);
  EXPECT_EQ(u.read<std::complex<double>>(), (std::complex<double>{1.0, -2.0}));
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, StringAndVectorRoundTrip) {
  Packer p;
  p.write_string("pieri");
  std::vector<std::complex<double>> v{{1, 2}, {3, 4}};
  p.write_vector(v);
  Unpacker u(p.bytes());
  EXPECT_EQ(u.read_string(), "pieri");
  EXPECT_EQ(u.read_vector<std::complex<double>>(), v);
}

TEST(Serialize, UnderrunThrows) {
  Packer p;
  p.write(1);
  Unpacker u(p.bytes());
  u.read<int>();
  EXPECT_THROW(u.read<double>(), std::out_of_range);
}

TEST(MailboxTest, FifoPerSender) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) box.push(Message{0, 7, {std::byte(i)}});
  for (int i = 0; i < 5; ++i) {
    const Message m = box.recv(0, 7);
    EXPECT_EQ(m.payload[0], std::byte(i));
  }
}

TEST(MailboxTest, TagFilterSkipsNonMatching) {
  Mailbox box;
  box.push(Message{0, 1, {}});
  box.push(Message{0, 2, {}});
  const Message m = box.recv(kAnySource, 2);
  EXPECT_EQ(m.tag, 2);
  EXPECT_EQ(box.size(), 1u);
}

TEST(MailboxTest, SourceFilter) {
  Mailbox box;
  box.push(Message{3, 0, {}});
  box.push(Message{1, 0, {}});
  EXPECT_EQ(box.recv(1).source, 1);
  EXPECT_FALSE(box.try_recv(2).has_value());
  EXPECT_TRUE(box.try_recv(3).has_value());
}

TEST(MailboxTest, ProbeDoesNotConsume) {
  Mailbox box;
  box.push(Message{2, 9, {}});
  const auto probed = box.probe();
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->first, 2);
  EXPECT_EQ(probed->second, 9);
  EXPECT_EQ(box.size(), 1u);
}

// ---- timed receives ---------------------------------------------------------

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

TEST(MailboxTest, RecvForZeroOrNegativeDegeneratesToTryRecv) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.recv_for(0.0).has_value());
  EXPECT_FALSE(box.recv_for(-1.0).has_value());
  EXPECT_LT(seconds_since(t0), 1.0);  // no wait at all
  box.push(Message{1, 4, {}});
  const auto m = box.recv_for(0.0, kAnySource, 4);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 4);
}

TEST(MailboxTest, RecvForTimesOutEmptyHanded) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.recv_for(0.05).has_value());
  EXPECT_GE(seconds_since(t0), 0.04);  // waited (almost) the full budget
}

TEST(MailboxTest, NonMatchingArrivalsDoNotShortenTheWait) {
  // Spurious wakeups: pushes that fail the filter must send the receiver
  // back to sleep until the original deadline, not end the wait early.
  Mailbox box;
  std::thread producer([&box] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      box.push(Message{0, /*tag=*/1, {}});
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.recv_for(0.15, kAnySource, /*tag=*/2).has_value());
  EXPECT_GE(seconds_since(t0), 0.12);
  producer.join();
  EXPECT_EQ(box.size(), 3u);  // the mismatches stayed queued
}

TEST(MailboxTest, RecvForWakesOnMatchingConcurrentPush) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(Message{3, /*tag=*/1, {}});  // decoy first...
    box.push(Message{3, /*tag=*/2, {}});  // ...then the match
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto m = box.recv_for(30.0, kAnySource, /*tag=*/2);
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 2);
  EXPECT_LT(seconds_since(t0), 10.0);  // long before the deadline
}

TEST(MailboxTest, FilteredRecvForDrainsOnlyMatchesUnderContention) {
  Mailbox box;
  constexpr int kEach = 50;
  std::thread producer([&box] {
    for (int i = 0; i < kEach; ++i) {
      box.push(Message{1, /*tag=*/1, {}});
      box.push(Message{1, /*tag=*/2, {std::byte(i)}});
    }
  });
  for (int i = 0; i < kEach; ++i) {
    const auto m = box.recv_for(30.0, kAnySource, /*tag=*/2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, 2);
    EXPECT_EQ(m->payload[0], std::byte(i));  // per-sender FIFO within the tag
  }
  producer.join();
  EXPECT_EQ(box.size(), static_cast<std::size_t>(kEach));  // tag-1 leftovers
}

// ---- poisoning --------------------------------------------------------------

TEST(MailboxTest, PoisonDrainsQueuedMessagesBeforeThrowing) {
  Mailbox box;
  box.push(Message{1, 7, {}});
  box.poison();
  EXPECT_EQ(box.recv(1, 7).tag, 7);  // queued traffic still delivered
  EXPECT_THROW(box.recv(), pph::mp::WorldAborted);
  EXPECT_THROW(box.recv_for(10.0), pph::mp::WorldAborted);
  EXPECT_FALSE(box.try_recv().has_value());  // non-blocking calls unaffected
  EXPECT_FALSE(box.probe().has_value());
}

TEST(WorldTest, RankAndSizeVisible) {
  std::atomic<int> sum{0};
  World::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(WorldTest, PingPong) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Packer p;
      p.write(123);
      comm.send(1, 5, p);
      const Message reply = comm.recv(1, 6);
      Unpacker u(reply.payload);
      EXPECT_EQ(u.read<int>(), 124);
    } else {
      const Message m = comm.recv(0, 5);
      Unpacker u(m.payload);
      Packer p;
      p.write(u.read<int>() + 1);
      comm.send(0, 6, p);
    }
  });
}

TEST(WorldTest, AllToRootGather) {
  constexpr int kRanks = 6;
  std::vector<int> received;
  World::run(kRanks, [&received](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < kRanks; ++i) {
        const Message m = comm.recv();
        Unpacker u(m.payload);
        received.push_back(u.read<int>());
      }
    } else {
      Packer p;
      p.write(comm.rank() * 10);
      comm.send(0, 0, p);
    }
  });
  EXPECT_EQ(received.size(), kRanks - 1u);
  EXPECT_EQ(std::accumulate(received.begin(), received.end(), 0), 10 + 20 + 30 + 40 + 50);
}

TEST(WorldTest, BarrierSynchronizes) {
  constexpr int kRanks = 5;
  std::atomic<int> before{0}, after_min_check{0};
  World::run(kRanks, [&](Comm& comm) {
    ++before;
    comm.barrier();
    // After the barrier every rank must observe all arrivals.
    if (before.load() == kRanks) ++after_min_check;
    comm.barrier();
  });
  EXPECT_EQ(after_min_check.load(), kRanks);
}

TEST(WorldTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            if (comm.rank() == 1) throw std::runtime_error("rank died");
                            // Other ranks finish normally.
                          }),
               std::runtime_error);
}

// One rank's exception must not leave its siblings blocked: the world is
// poisoned, every parked recv/recv_for/barrier throws WorldAborted, the
// join completes, and the ORIGINAL exception (std::logic_error here, which
// WorldAborted -- a runtime_error -- can never satisfy) is what the caller
// sees.  Before poisoning, each of these tests deadlocked.

TEST(WorldTest, ExceptionUnblocksSiblingBlockedInRecv) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            if (comm.rank() == 1) throw std::logic_error("boom");
                            if (comm.rank() == 2) comm.recv();  // nobody will send
                          }),
               std::logic_error);
}

TEST(WorldTest, ExceptionUnblocksSiblingBlockedInTimedRecv) {
  EXPECT_THROW(World::run(2,
                          [](Comm& comm) {
                            if (comm.rank() == 1) throw std::logic_error("boom");
                            while (!comm.recv_for(60.0).has_value()) {
                            }
                          }),
               std::logic_error);
}

TEST(WorldTest, ExceptionUnblocksSiblingsParkedOnBarrier) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            if (comm.rank() == 1) throw std::logic_error("boom");
                            comm.barrier();  // rank 1 never arrives
                          }),
               std::logic_error);
}

TEST(WorldTest, CompletedBarrierWinsOverConcurrentPoison) {
  // All ranks arrive at the barrier, THEN one throws: the completed barrier
  // must have released everyone (no spurious WorldAborted for survivors).
  std::atomic<int> released{0};
  EXPECT_THROW(World::run(4,
                          [&](Comm& comm) {
                            comm.barrier();
                            ++released;
                            if (comm.rank() == 2) throw std::logic_error("late");
                          }),
               std::logic_error);
  EXPECT_EQ(released.load(), 4);
}

TEST(WorldTest, StressManyMessages) {
  constexpr int kRanks = 4;
  constexpr int kPerRank = 500;
  std::atomic<long> total{0};
  World::run(kRanks, [&](Comm& comm) {
    if (comm.rank() == 0) {
      long sum = 0;
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        const Message m = comm.recv();
        Unpacker u(m.payload);
        sum += u.read<int>();
      }
      total = sum;
    } else {
      for (int i = 0; i < kPerRank; ++i) {
        Packer p;
        p.write(i);
        comm.send(0, 0, p);
      }
    }
  });
  const long expected = static_cast<long>(kRanks - 1) * (kPerRank * (kPerRank - 1) / 2);
  EXPECT_EQ(total.load(), expected);
}

TEST(WorldTest, InvalidDestinationThrows) {
  EXPECT_THROW(World::run(1, [](Comm& comm) { comm.send(5, 0, std::vector<std::byte>{}); }), std::out_of_range);
}

}  // namespace
