// Tests for the in-process message-passing runtime: serialization
// round-trips, mailbox semantics (filtering, per-sender ordering), world
// lifecycle, barrier, and stress under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <numeric>

#include "mp/comm.hpp"

namespace {

using pph::mp::Comm;
using pph::mp::kAnySource;
using pph::mp::kAnyTag;
using pph::mp::Mailbox;
using pph::mp::Message;
using pph::mp::Packer;
using pph::mp::Unpacker;
using pph::mp::World;

TEST(Serialize, PodRoundTrip) {
  Packer p;
  p.write(42);
  p.write(3.5);
  p.write(std::complex<double>{1.0, -2.0});
  Unpacker u(p.bytes());
  EXPECT_EQ(u.read<int>(), 42);
  EXPECT_DOUBLE_EQ(u.read<double>(), 3.5);
  EXPECT_EQ(u.read<std::complex<double>>(), (std::complex<double>{1.0, -2.0}));
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, StringAndVectorRoundTrip) {
  Packer p;
  p.write_string("pieri");
  std::vector<std::complex<double>> v{{1, 2}, {3, 4}};
  p.write_vector(v);
  Unpacker u(p.bytes());
  EXPECT_EQ(u.read_string(), "pieri");
  EXPECT_EQ(u.read_vector<std::complex<double>>(), v);
}

TEST(Serialize, UnderrunThrows) {
  Packer p;
  p.write(1);
  Unpacker u(p.bytes());
  u.read<int>();
  EXPECT_THROW(u.read<double>(), std::out_of_range);
}

TEST(MailboxTest, FifoPerSender) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) box.push(Message{0, 7, {std::byte(i)}});
  for (int i = 0; i < 5; ++i) {
    const Message m = box.recv(0, 7);
    EXPECT_EQ(m.payload[0], std::byte(i));
  }
}

TEST(MailboxTest, TagFilterSkipsNonMatching) {
  Mailbox box;
  box.push(Message{0, 1, {}});
  box.push(Message{0, 2, {}});
  const Message m = box.recv(kAnySource, 2);
  EXPECT_EQ(m.tag, 2);
  EXPECT_EQ(box.size(), 1u);
}

TEST(MailboxTest, SourceFilter) {
  Mailbox box;
  box.push(Message{3, 0, {}});
  box.push(Message{1, 0, {}});
  EXPECT_EQ(box.recv(1).source, 1);
  EXPECT_FALSE(box.try_recv(2).has_value());
  EXPECT_TRUE(box.try_recv(3).has_value());
}

TEST(MailboxTest, ProbeDoesNotConsume) {
  Mailbox box;
  box.push(Message{2, 9, {}});
  const auto probed = box.probe();
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->first, 2);
  EXPECT_EQ(probed->second, 9);
  EXPECT_EQ(box.size(), 1u);
}

TEST(WorldTest, RankAndSizeVisible) {
  std::atomic<int> sum{0};
  World::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(WorldTest, PingPong) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Packer p;
      p.write(123);
      comm.send(1, 5, p);
      const Message reply = comm.recv(1, 6);
      Unpacker u(reply.payload);
      EXPECT_EQ(u.read<int>(), 124);
    } else {
      const Message m = comm.recv(0, 5);
      Unpacker u(m.payload);
      Packer p;
      p.write(u.read<int>() + 1);
      comm.send(0, 6, p);
    }
  });
}

TEST(WorldTest, AllToRootGather) {
  constexpr int kRanks = 6;
  std::vector<int> received;
  World::run(kRanks, [&received](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 1; i < kRanks; ++i) {
        const Message m = comm.recv();
        Unpacker u(m.payload);
        received.push_back(u.read<int>());
      }
    } else {
      Packer p;
      p.write(comm.rank() * 10);
      comm.send(0, 0, p);
    }
  });
  EXPECT_EQ(received.size(), kRanks - 1u);
  EXPECT_EQ(std::accumulate(received.begin(), received.end(), 0), 10 + 20 + 30 + 40 + 50);
}

TEST(WorldTest, BarrierSynchronizes) {
  constexpr int kRanks = 5;
  std::atomic<int> before{0}, after_min_check{0};
  World::run(kRanks, [&](Comm& comm) {
    ++before;
    comm.barrier();
    // After the barrier every rank must observe all arrivals.
    if (before.load() == kRanks) ++after_min_check;
    comm.barrier();
  });
  EXPECT_EQ(after_min_check.load(), kRanks);
}

TEST(WorldTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            if (comm.rank() == 1) throw std::runtime_error("rank died");
                            // Other ranks finish normally.
                          }),
               std::runtime_error);
}

TEST(WorldTest, StressManyMessages) {
  constexpr int kRanks = 4;
  constexpr int kPerRank = 500;
  std::atomic<long> total{0};
  World::run(kRanks, [&](Comm& comm) {
    if (comm.rank() == 0) {
      long sum = 0;
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        const Message m = comm.recv();
        Unpacker u(m.payload);
        sum += u.read<int>();
      }
      total = sum;
    } else {
      for (int i = 0; i < kPerRank; ++i) {
        Packer p;
        p.write(i);
        comm.send(0, 0, p);
      }
    }
  });
  const long expected = static_cast<long>(kRanks - 1) * (kPerRank * (kPerRank - 1) / 2);
  EXPECT_EQ(total.load(), expected);
}

TEST(WorldTest, InvalidDestinationThrows) {
  EXPECT_THROW(World::run(1, [](Comm& comm) { comm.send(5, 0, std::vector<std::byte>{}); }), std::out_of_range);
}

}  // namespace
