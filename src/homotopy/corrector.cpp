#include "homotopy/corrector.hpp"

namespace pph::homotopy {

CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts,
                        TrackerWorkspace& ws) {
  CorrectorResult result;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    h.evaluate_with_jacobian_into(x, t, ws.hws.get(), ws.h_val, ws.jac);
    result.residual = linalg::norm2(ws.h_val);
    if (result.residual < opts.residual_tolerance) {
      result.status = CorrectorStatus::kConverged;
      result.iterations = it;
      return result;
    }
    for (auto& v : ws.h_val) v = -v;
    ws.lu.factor(ws.jac);
    if (!ws.lu.solve_into(ws.h_val, ws.dx)) {
      result.status = CorrectorStatus::kSingular;
      result.iterations = it;
      return result;
    }
    const double step = linalg::norm2(ws.dx);
    result.last_step_norm = step;
    if (step > opts.divergence_threshold) {
      result.status = CorrectorStatus::kDiverged;
      result.iterations = it;
      return result;
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += ws.dx[i];
    ++result.iterations;
    if (step < opts.step_tolerance * (1.0 + linalg::norm2(x))) {
      h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
      result.residual = linalg::norm2(ws.h_val);
      result.status = CorrectorStatus::kConverged;
      return result;
    }
  }
  // Accept late convergence when the last residual check passes, or when
  // the residual has stagnated below the soft bound (rounding floor of
  // large-magnitude endpoints).
  h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
  result.residual = linalg::norm2(ws.h_val);
  if (result.residual < opts.residual_tolerance ||
      (opts.stagnation_tolerance > 0.0 && result.residual < opts.stagnation_tolerance)) {
    result.status = CorrectorStatus::kConverged;
  } else {
    result.status = CorrectorStatus::kMaxIterations;
  }
  return result;
}

CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts) {
  TrackerWorkspace ws(h);
  return correct(h, x, t, opts, ws);
}

}  // namespace pph::homotopy
