#include "homotopy/corrector.hpp"

#include "util/dd.hpp"

namespace pph::homotopy {

namespace {

/// Mixed-precision iterative refinement of the Newton update.  On entry
/// ws.h_val holds -H (the solved right-hand side) and ws.dx the computed
/// update; the defect r = J*dx + H is accumulated in double-double, then
/// one extra back-substitution with the already-factored LU corrects dx.
void refine_newton_update(TrackerWorkspace& ws) {
  const std::size_t n = ws.dx.size();
  ws.refine_r.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::DDComplex acc;  // J(i,:)*dx - (-H_i), compensated
    for (std::size_t j = 0; j < n; ++j) util::ddc_fma(acc, ws.refine_jac(i, j), ws.dx[j]);
    acc = util::ddc_add(acc, util::DDComplex(-ws.h_val[i]));
    // Right-hand side of the correction system J*e = -r.
    ws.refine_r[i] = -acc.to_complex();
  }
  if (!ws.lu.solve_into(ws.refine_r, ws.refine_e)) return;
  for (std::size_t i = 0; i < n; ++i) ws.dx[i] += ws.refine_e[i];
}

}  // namespace

CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts,
                        TrackerWorkspace& ws) {
  CorrectorResult result;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    h.evaluate_with_jacobian_into(x, t, ws.hws.get(), ws.h_val, ws.jac);
    result.residual = linalg::norm2(ws.h_val);
    if (result.residual < opts.residual_tolerance) {
      result.status = CorrectorStatus::kConverged;
      result.iterations = it;
      return result;
    }
    for (auto& v : ws.h_val) v = -v;
    if (opts.dd_refine) ws.refine_jac = ws.jac;  // factor() steals jac's storage
    ws.lu.factor(ws.jac);
    if (!ws.lu.solve_into(ws.h_val, ws.dx)) {
      result.status = CorrectorStatus::kSingular;
      result.iterations = it;
      return result;
    }
    if (opts.dd_refine) refine_newton_update(ws);
    const double step = linalg::norm2(ws.dx);
    result.last_step_norm = step;
    if (step > opts.divergence_threshold) {
      result.status = CorrectorStatus::kDiverged;
      result.iterations = it;
      return result;
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += ws.dx[i];
    ++result.iterations;
    if (step < opts.step_tolerance * (1.0 + linalg::norm2(x))) {
      h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
      result.residual = linalg::norm2(ws.h_val);
      result.status = CorrectorStatus::kConverged;
      return result;
    }
  }
  // Accept late convergence when the last residual check passes, or when
  // the residual has stagnated below the soft bound (rounding floor of
  // large-magnitude endpoints).
  h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
  result.residual = linalg::norm2(ws.h_val);
  if (result.residual < opts.residual_tolerance ||
      (opts.stagnation_tolerance > 0.0 && result.residual < opts.stagnation_tolerance)) {
    result.status = CorrectorStatus::kConverged;
  } else {
    result.status = CorrectorStatus::kMaxIterations;
  }
  return result;
}

CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts) {
  TrackerWorkspace ws(h);
  return correct(h, x, t, opts, ws);
}

}  // namespace pph::homotopy
