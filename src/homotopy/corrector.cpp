#include "homotopy/corrector.hpp"

#include "linalg/lu.hpp"

namespace pph::homotopy {

CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts) {
  CorrectorResult result;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    auto [value, jac] = h.evaluate_with_jacobian(x, t);
    result.residual = linalg::norm2(value);
    if (result.residual < opts.residual_tolerance) {
      result.status = CorrectorStatus::kConverged;
      result.iterations = it;
      return result;
    }
    for (auto& v : value) v = -v;
    linalg::LU lu(jac);
    const auto dx = lu.solve(value);
    if (!dx) {
      result.status = CorrectorStatus::kSingular;
      result.iterations = it;
      return result;
    }
    const double step = linalg::norm2(*dx);
    result.last_step_norm = step;
    if (step > opts.divergence_threshold) {
      result.status = CorrectorStatus::kDiverged;
      result.iterations = it;
      return result;
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += (*dx)[i];
    ++result.iterations;
    if (step < opts.step_tolerance * (1.0 + linalg::norm2(x))) {
      result.residual = linalg::norm2(h.evaluate(x, t));
      result.status = CorrectorStatus::kConverged;
      return result;
    }
  }
  // Accept late convergence when the last residual check passes, or when
  // the residual has stagnated below the soft bound (rounding floor of
  // large-magnitude endpoints).
  result.residual = linalg::norm2(h.evaluate(x, t));
  if (result.residual < opts.residual_tolerance ||
      (opts.stagnation_tolerance > 0.0 && result.residual < opts.stagnation_tolerance)) {
    result.status = CorrectorStatus::kConverged;
  } else {
    result.status = CorrectorStatus::kMaxIterations;
  }
  return result;
}

}  // namespace pph::homotopy
