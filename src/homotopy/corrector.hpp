#pragma once
// Newton corrector: refine a predicted point back onto the solution path
// H(x, t) = 0 at fixed t.

#include "homotopy/homotopy.hpp"
#include "linalg/lu.hpp"

namespace pph::homotopy {

/// Reusable per-path scratch for the predictor-corrector hot loop: the
/// homotopy's own workspace plus every vector/matrix/LU buffer the Newton
/// iteration touches.  Construct once per path (or once per worker thread
/// and reuse across paths); after the first step the loop performs zero
/// heap allocations.
struct TrackerWorkspace {
  TrackerWorkspace() = default;
  explicit TrackerWorkspace(const Homotopy& h) : hws(h.make_workspace()) {}

  /// Re-bind to a (possibly different) homotopy, keeping sized buffers.
  void bind(const Homotopy& h) { hws = h.make_workspace(); }

  std::unique_ptr<HomotopyWorkspace> hws;
  CVector h_val;    // H(x,t) / negated Newton right-hand side
  CVector ht;       // dH/dt
  CVector dx;       // Newton update / predictor tangent
  CVector x_pred;   // predicted point
  CVector x_corr;   // corrector iterate
  CVector x_prev;   // previous accepted point (secant predictor)
  CVector refine_r; // compensated linear-system residual (dd_refine)
  CVector refine_e; // refinement correction to dx (dd_refine)
  linalg::CMatrix jac;
  /// Copy of the Jacobian taken before LU::factor steals jac's storage;
  /// the compensated defect J*dx + H needs the original entries.
  linalg::CMatrix refine_jac;
  linalg::LU lu;
};

struct CorrectorOptions {
  /// Maximum Newton iterations per correction.
  std::size_t max_iterations = 4;
  /// Success when the residual ||H(x,t)|| falls below this...
  double residual_tolerance = 1e-10;
  /// ...or the update ||dx|| (relative to 1 + ||x||) falls below this.
  double step_tolerance = 1e-12;
  /// Abort when the update exceeds this (prediction left the basin).
  double divergence_threshold = 1e8;
  /// Soft acceptance when the iteration budget runs out: endpoints of large
  /// magnitude have a rounding floor above an absolute residual tolerance
  /// (det-style equations scale like ||x||^p), so a residual that stagnates
  /// below this bound still counts as converged.  0 disables.
  double stagnation_tolerance = 0.0;
  /// Mixed-precision iterative refinement of each Newton update: the
  /// linear-system residual r = J*dx + H is accumulated in double-double
  /// (util/dd.hpp) and one extra back-substitution with the cached LU
  /// corrects dx.  Recovers the digits a near-singular endgame Jacobian
  /// destroys, at the cost of one compensated matvec per iteration.
  bool dd_refine = false;
};

enum class CorrectorStatus {
  kConverged,
  kMaxIterations,   // no convergence within the iteration budget
  kSingular,        // Jacobian numerically singular
  kDiverged,        // update norm exploded
};

struct CorrectorResult {
  CorrectorStatus status = CorrectorStatus::kMaxIterations;
  std::size_t iterations = 0;
  double residual = 0.0;       // final ||H(x,t)||
  double last_step_norm = 0.0; // final ||dx||
};

/// Run Newton iterations on H(.,t) starting from x (updated in place),
/// reusing the workspace's buffers: allocation-free in steady state.
CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts,
                        TrackerWorkspace& ws);

/// Convenience overload that builds a transient workspace.
CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts);

}  // namespace pph::homotopy
