#pragma once
// Newton corrector: refine a predicted point back onto the solution path
// H(x, t) = 0 at fixed t.

#include "homotopy/homotopy.hpp"

namespace pph::homotopy {

struct CorrectorOptions {
  /// Maximum Newton iterations per correction.
  std::size_t max_iterations = 4;
  /// Success when the residual ||H(x,t)|| falls below this...
  double residual_tolerance = 1e-10;
  /// ...or the update ||dx|| (relative to 1 + ||x||) falls below this.
  double step_tolerance = 1e-12;
  /// Abort when the update exceeds this (prediction left the basin).
  double divergence_threshold = 1e8;
  /// Soft acceptance when the iteration budget runs out: endpoints of large
  /// magnitude have a rounding floor above an absolute residual tolerance
  /// (det-style equations scale like ||x||^p), so a residual that stagnates
  /// below this bound still counts as converged.  0 disables.
  double stagnation_tolerance = 0.0;
};

enum class CorrectorStatus {
  kConverged,
  kMaxIterations,   // no convergence within the iteration budget
  kSingular,        // Jacobian numerically singular
  kDiverged,        // update norm exploded
};

struct CorrectorResult {
  CorrectorStatus status = CorrectorStatus::kMaxIterations;
  std::size_t iterations = 0;
  double residual = 0.0;       // final ||H(x,t)||
  double last_step_norm = 0.0; // final ||dx||
};

/// Run Newton iterations on H(.,t) starting from x (updated in place).
CorrectorResult correct(const Homotopy& h, CVector& x, double t, const CorrectorOptions& opts);

}  // namespace pph::homotopy
