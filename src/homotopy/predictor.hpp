#pragma once
// Predictors: extrapolate the current path point to the next t value.
//
// The tangent (Euler) predictor solves  (dH/dx) dx/dt = -dH/dt  at the
// current point; the secant predictor reuses the two most recent accepted
// points.  The tracker uses the tangent by default and falls back to secant
// when the Jacobian solve fails.

#include <optional>

#include "homotopy/corrector.hpp"
#include "homotopy/homotopy.hpp"

namespace pph::homotopy {

enum class PredictorKind { kTangent, kSecant, kZeroOrder };

/// Tangent prediction from (x, t) to t + dt into `out`, reusing the
/// workspace's fused evaluation and LU buffers (allocation-free in steady
/// state).  Returns false when the Jacobian is singular at the current
/// point; `out` is untouched then.
bool predict_tangent(const Homotopy& h, const CVector& x, double t, double dt,
                     TrackerWorkspace& ws, CVector& out);

/// Tangent prediction from (x, t) to t + dt.  Returns nullopt when the
/// Jacobian is singular at the current point.
std::optional<CVector> predict_tangent(const Homotopy& h, const CVector& x, double t, double dt);

/// Secant prediction through (x_prev, t_prev) and (x, t) to t + dt into
/// `out` (which may not alias x or x_prev).
void predict_secant_into(const CVector& x_prev, double t_prev, const CVector& x, double t,
                         double dt, CVector& out);

/// Secant prediction through (x_prev, t_prev) and (x, t) to t + dt.
CVector predict_secant(const CVector& x_prev, double t_prev, const CVector& x, double t,
                       double dt);

/// Zero-order prediction (constant extrapolation).
inline CVector predict_zero_order(const CVector& x) { return x; }

}  // namespace pph::homotopy
