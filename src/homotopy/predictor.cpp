#include "homotopy/predictor.hpp"

#include "linalg/lu.hpp"

namespace pph::homotopy {

std::optional<CVector> predict_tangent(const Homotopy& h, const CVector& x, double t, double dt) {
  const CMatrix jac = h.jacobian_x(x, t);
  CVector ht = h.derivative_t(x, t);
  for (auto& v : ht) v = -v;
  linalg::LU lu(jac);
  const auto tangent = lu.solve(ht);
  if (!tangent) return std::nullopt;
  CVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + dt * (*tangent)[i];
  return out;
}

CVector predict_secant(const CVector& x_prev, double t_prev, const CVector& x, double t,
                       double dt) {
  const double span = t - t_prev;
  if (span <= 0.0) return x;
  const double scale = dt / span;
  CVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + scale * (x[i] - x_prev[i]);
  return out;
}

}  // namespace pph::homotopy
