#include "homotopy/predictor.hpp"

#include "linalg/lu.hpp"

namespace pph::homotopy {

bool predict_tangent(const Homotopy& h, const CVector& x, double t, double dt,
                     TrackerWorkspace& ws, CVector& out) {
  // One fused pass gives dH/dx and dH/dt (the value rides along for free on
  // the compiled path); solve (dH/dx) dx/dt = -dH/dt with the reusable LU.
  h.evaluate_fused(x, t, ws.hws.get(), ws.h_val, ws.jac, ws.ht);
  for (auto& v : ws.ht) v = -v;
  ws.lu.factor(ws.jac);
  if (!ws.lu.solve_into(ws.ht, ws.dx)) return false;
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + dt * ws.dx[i];
  return true;
}

std::optional<CVector> predict_tangent(const Homotopy& h, const CVector& x, double t, double dt) {
  TrackerWorkspace ws(h);
  CVector out;
  if (!predict_tangent(h, x, t, dt, ws, out)) return std::nullopt;
  return out;
}

void predict_secant_into(const CVector& x_prev, double t_prev, const CVector& x, double t,
                         double dt, CVector& out) {
  out.resize(x.size());
  const double span = t - t_prev;
  if (span <= 0.0) {
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
    return;
  }
  const double scale = dt / span;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + scale * (x[i] - x_prev[i]);
}

CVector predict_secant(const CVector& x_prev, double t_prev, const CVector& x, double t,
                       double dt) {
  CVector out;
  predict_secant_into(x_prev, t_prev, x, t, dt, out);
  return out;
}

}  // namespace pph::homotopy
