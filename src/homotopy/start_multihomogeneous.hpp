#pragma once
// Multi-homogeneous (m-homogeneous) start systems.
//
// Partition the variables into groups Z_1,...,Z_k.  The m-homogeneous
// Bezout number -- the coefficient of prod_j z_j^{|Z_j|} in
// prod_i (sum_j d_{ij} z_j), with d_{ij} the degree of equation i in the
// variables of group j -- bounds the number of isolated roots and is often
// far smaller than the total degree (the classical example: an eigenvalue
// problem has 2-homogeneous bound n against total degree 2^n).  The start
// system realizing the bound is a product of random linear forms, d_{ij}
// factors supported on group j for equation i: a structured special case
// of the linear-product machinery.

#include "homotopy/start_linear_product.hpp"

namespace pph::homotopy {

/// A variable partition: group index for every variable (0-based groups,
/// contiguous numbering).
using VariablePartition = std::vector<std::size_t>;

/// Degree table d[i][j]: degree of equation i in the variables of group j.
std::vector<std::vector<std::uint32_t>> multihomogeneous_degrees(
    const poly::PolySystem& system, const VariablePartition& partition);

/// The m-homogeneous Bezout number for the given degree table and group
/// sizes (coefficient extraction by dynamic programming over the z
/// monomials).  Throws std::overflow_error if the count exceeds 64 bits.
std::uint64_t multihomogeneous_bezout(const std::vector<std::vector<std::uint32_t>>& degrees,
                                      const std::vector<std::size_t>& group_sizes);

/// Convenience: Bezout number of a system under a partition.
std::uint64_t multihomogeneous_bezout(const poly::PolySystem& system,
                                      const VariablePartition& partition);

/// The product structure of the m-homogeneous start system: equation i gets
/// d_{ij} linear factors supported on group j.  Feeding this to
/// LinearProductStart yields a start system whose solvable factor
/// combinations number exactly the m-homogeneous Bezout count.
/// (solve_multihomogeneous in solver.hpp runs the whole pipeline.)
ProductStructure multihomogeneous_structure(const poly::PolySystem& system,
                                            const VariablePartition& partition);

}  // namespace pph::homotopy
