#pragma once
// Sequential blackbox solver: construct a start system for a target system,
// track every path, classify and deduplicate the endpoints.  This is the
// single-CPU baseline against which the schedulers are validated and the
// speedup experiments are normalized.

#include <functional>

#include "homotopy/start_linear_product.hpp"
#include "homotopy/start_total_degree.hpp"
#include "homotopy/tracker.hpp"

namespace pph::homotopy {

/// Rescue tier: failed paths are re-tracked with shrunken step bounds (and,
/// when the caller supplies a homotopy family, a fresh random gamma -- the
/// start solutions stay valid because H(x,0) = gamma*G(x) has the same
/// roots as G for every gamma).
struct RescueOptions {
  bool enabled = true;
  /// Re-track budget per failed path.
  std::size_t max_attempts = 2;
  /// Initial/max step shrink per rescue attempt.
  double step_scale = 0.25;
  /// Compensated endgame refinement during rescue re-tracks.
  bool dd_refine = true;
};

struct SolveOptions {
  TrackerOptions tracker;
  RescueOptions rescue;
  std::uint64_t seed = 20040415;  // the paper's date, for reproducibility
  /// Residual acceptance threshold for a converged endpoint.
  double solution_residual = 1e-8;
  /// Deduplication distance between distinct roots.
  double dedup_tolerance = 1e-6;
  /// Endpoints with norm beyond this are unconditionally "at infinity".
  double at_infinity_norm = 1e6;
  /// Endpoints with norm beyond this are tested against the leading forms
  /// (slowly diverging paths sit at moderate norms at t = 1 yet their
  /// direction annihilates the top-degree part of the target system).
  double suspicious_norm = 50.0;
  /// Leading-form residual (at the normalized endpoint) below which a
  /// suspicious endpoint is classified as diverging to infinity.
  double leading_form_tolerance = 1e-6;
};

/// Endpoint classification of one tracked path against the target system.
enum class EndpointClass { kFiniteRoot, kAtInfinity, kFailure };

/// Classify a tracked endpoint: finite root (small residual, not at
/// infinity), at-infinity (large norm, or moderate norm whose direction
/// kills the target's leading forms), or failure.
EndpointClass classify_endpoint(const poly::PolySystem& target,
                                const poly::PolySystem& leading_forms, const PathResult& path,
                                const SolveOptions& opts);

struct SolveSummary {
  std::vector<CVector> solutions;          // deduplicated converged endpoints
  std::vector<PathResult> paths;           // one per start solution
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;
  unsigned long long path_count = 0;
  /// Rescue provenance: re-tracks attempted and paths whose final status
  /// came from a rescue re-track (see PathResult::rescued).
  std::size_t rescue_retracks = 0;
  std::size_t rescued_paths = 0;
  /// Wall seconds per path, in path order (feeds the cluster simulator).
  std::vector<double> path_seconds;
  /// Wall seconds spent inside the rescue tier (the measured overhead).
  double rescue_seconds = 0.0;
};

/// Solve with a total-degree start system.
SolveSummary solve_total_degree(const poly::PolySystem& target, const SolveOptions& opts = {});

/// Solve with a caller-provided linear-product structure.
SolveSummary solve_linear_product(const poly::PolySystem& target,
                                  const ProductStructure& structure,
                                  const SolveOptions& opts = {});

/// Solve with the m-homogeneous start system of the given variable
/// partition (see start_multihomogeneous.hpp); tracks the m-homogeneous
/// Bezout number of paths instead of the total degree.
SolveSummary solve_multihomogeneous(const poly::PolySystem& target,
                                    const std::vector<std::size_t>& partition,
                                    const SolveOptions& opts = {});

/// Rescue homotopy family: attempt k (1-based) returns a homotopy with the
/// same start/target systems under a fresh deformation (new gamma).  An
/// empty function re-tracks the original homotopy with shrunken steps only.
using RescueFamily = std::function<std::unique_ptr<Homotopy>(std::size_t attempt)>;

/// Track the paths of a prepared homotopy from explicit starts, collecting
/// the same summary (used by both solvers and directly by tests).  Paths
/// that end in failure are re-tracked through the rescue tier when
/// opts.rescue.enabled.
SolveSummary track_and_summarize(const Homotopy& h, const std::vector<CVector>& starts,
                                 const poly::PolySystem& target, const SolveOptions& opts,
                                 const RescueFamily& rescue_family = {});

}  // namespace pph::homotopy
