#pragma once
// Adaptive-step predictor-corrector path tracker.
//
// Tracks one solution path x(t) of H(x,t) = 0 from t = 0 to t = 1.  This is
// the unit of work the paper distributes across processors: "the solution
// paths defined by the homotopy can be tracked independently".

#include "homotopy/corrector.hpp"
#include "homotopy/predictor.hpp"

namespace pph::homotopy {

struct TrackerOptions {
  double initial_step = 0.05;
  double min_step = 1e-10;
  double max_step = 0.2;
  /// Step growth factor after `expand_after` consecutive accepted steps.
  double expand_factor = 1.5;
  std::size_t expand_after = 3;
  /// Step shrink factor after a rejected step.
  double shrink_factor = 0.5;
  /// Paths whose point norm exceeds this are classified as diverging to
  /// infinity (the paper's "paths diverging to infinity require more time").
  double divergence_threshold = 1e8;
  /// Hard cap on predictor-corrector steps (guards runaway paths).
  std::size_t max_steps = 10000;
  CorrectorOptions corrector;
  /// Tighter corrector used for the final refinement at t = 1.
  CorrectorOptions end_corrector{8, 1e-12, 1e-14, 1e8};
  PredictorKind predictor = PredictorKind::kTangent;
};

enum class PathStatus {
  kConverged,   // reached t = 1 with the end corrector converged
  kDiverged,    // point norm exceeded the divergence threshold
  kFailed,      // step size underflowed or step budget exhausted
};

struct PathResult {
  PathStatus status = PathStatus::kFailed;
  CVector x;                  // endpoint (valid for kConverged; last point otherwise)
  double t_reached = 0.0;
  double residual = 0.0;      // ||H(x, t_reached)||
  std::size_t steps = 0;      // accepted steps
  std::size_t rejections = 0; // rejected (shrunk) steps
  std::size_t newton_iterations = 0;
  /// ||x||_inf sampled the first time t crosses 1 - 10^{-k}, k = 1, 2, ...
  /// A slowly escaping path (|x| ~ (1-t)^{-alpha}) shows steady geometric
  /// growth across these samples; the tracker's endgame classifier uses
  /// this to label step-size underflow as divergence (see tracker.cpp).
  std::vector<double> endgame_norms;
  bool converged() const { return status == PathStatus::kConverged; }
};

/// Track a single path from the start solution x0 (which must satisfy
/// H(x0, 0) ~ 0), reusing the workspace's buffers across steps — the
/// steady-state predictor-corrector loop allocates nothing.  Workers that
/// track many paths construct one workspace and pass it to every call.
PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts,
                      TrackerWorkspace& ws);

/// Convenience overload that builds a transient workspace.
PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts = {});

/// Track all paths sequentially; convenience for tests and the sequential
/// baseline of the schedulers.
std::vector<PathResult> track_all(const Homotopy& h, const std::vector<CVector>& starts,
                                  const TrackerOptions& opts = {});

}  // namespace pph::homotopy
