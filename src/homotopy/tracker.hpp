#pragma once
// Adaptive-step predictor-corrector path tracker.
//
// Tracks one solution path x(t) of H(x,t) = 0 from t = 0 to t = 1.  This is
// the unit of work the paper distributes across processors: "the solution
// paths defined by the homotopy can be tracked independently".

#include <cstdint>
#include <functional>

#include "homotopy/corrector.hpp"
#include "homotopy/predictor.hpp"

namespace pph::homotopy {

/// Final-stretch policy.  Once t crosses `threshold` the tracker switches
/// to a geometric approach of t = 1 -- each step covers at most
/// `step_fraction` of the remaining gap -- with a tightened corrector.
/// Path jumps happen when a coarse step near t = 1 lands the predictor in
/// the basin of a clustered neighbour; halving the gap per step keeps the
/// prediction error proportional to the shrinking inter-path distance at a
/// cost of ~log2((1-threshold)/min_gap) extra steps per path.
struct EndgameOptions {
  bool enabled = true;
  /// t beyond which the endgame engages.
  double threshold = 0.99;
  /// Fraction of the remaining gap 1-t covered per endgame step.
  double step_fraction = 0.5;
  /// Once 1-t falls below this the tracker steps straight to t = 1 (the
  /// end corrector owns the last refinement anyway).
  double min_gap = 1e-8;
  /// Scale applied to the corrector residual tolerance inside the endgame.
  double residual_scale = 0.1;
  /// Extra Newton iterations granted inside the endgame and at t = 1.
  std::size_t extra_iterations = 2;
  /// Compensated (double-double) refinement of each Newton update during
  /// the endgame and the final refinement; see CorrectorOptions::dd_refine.
  bool dd_refine = false;
};

struct TrackerOptions {
  double initial_step = 0.05;
  double min_step = 1e-10;
  double max_step = 0.2;
  /// Step growth factor after `expand_after` consecutive accepted steps.
  double expand_factor = 1.5;
  std::size_t expand_after = 3;
  /// Step shrink factor after a rejected step.
  double shrink_factor = 0.5;
  /// Paths whose point norm exceeds this are classified as diverging to
  /// infinity (the paper's "paths diverging to infinity require more time").
  double divergence_threshold = 1e8;
  /// Hard cap on predictor-corrector steps (guards runaway paths).
  std::size_t max_steps = 10000;
  /// Cooperative cancellation (DESIGN.md section 13): polled once at the
  /// top of every predictor-corrector step; returning true stops the track
  /// with PathStatus::kCancelled within one step of the poll flipping.
  /// Empty (the default) is never polled, so the hot loop stays untouched.
  std::function<bool()> cancel_poll;
  CorrectorOptions corrector;
  /// Tighter corrector used for the final refinement at t = 1.
  CorrectorOptions end_corrector{8, 1e-12, 1e-14, 1e8};
  PredictorKind predictor = PredictorKind::kTangent;
  EndgameOptions endgame;
};

enum class PathStatus {
  kConverged,        // reached t = 1 with the end corrector converged
  kDiverged,         // point norm exceeded the divergence threshold
  kFailed,           // step size underflowed or step budget exhausted
  // Request-reliability outcomes (DESIGN.md section 13).  Values append
  // after kFailed so the store wire format of the legacy statuses is
  // unchanged.
  kDeadlineExpired,  // request budget expired; synthesized on the master
  kCancelled,        // cancel_poll stopped the track mid-path
};

struct PathResult {
  PathStatus status = PathStatus::kFailed;
  CVector x;                  // endpoint (valid for kConverged; last point otherwise)
  double t_reached = 0.0;
  double residual = 0.0;      // ||H(x, t_reached)||
  /// Adaptive step size when the path ended (converged, diverged or
  /// failed); together with t_reached and residual this is the diagnostic
  /// the rescue tier uses to target "suspect" paths.
  double last_step = 0.0;
  std::size_t steps = 0;      // accepted steps
  std::size_t rejections = 0; // rejected (shrunk) steps
  std::size_t newton_iterations = 0;
  /// Rescue provenance: how many rescue re-tracks this result consumed
  /// (0 = first attempt) and whether the final status came from a rescue.
  std::uint32_t rescue_attempts = 0;
  bool rescued = false;
  /// ||x||_inf sampled the first time t crosses 1 - 10^{-k}, k = 1, 2, ...
  /// A slowly escaping path (|x| ~ (1-t)^{-alpha}) shows steady geometric
  /// growth across these samples; the tracker's endgame classifier uses
  /// this to label step-size underflow as divergence (see tracker.cpp).
  std::vector<double> endgame_norms;
  bool converged() const { return status == PathStatus::kConverged; }
};

/// A converged result whose residual sits well above the tracker's
/// tolerances signals a near-singular endpoint accepted through the
/// step-tolerance/stagnation exits -- exactly where path jumps hide.  The
/// rescue tiers re-track these alongside the hard failures.
inline bool suspect_path(const PathResult& r, double suspect_residual) {
  return r.converged() && r.residual > suspect_residual;
}

/// Track a single path from the start solution x0 (which must satisfy
/// H(x0, 0) ~ 0), reusing the workspace's buffers across steps — the
/// steady-state predictor-corrector loop allocates nothing.  Workers that
/// track many paths construct one workspace and pass it to every call.
PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts,
                      TrackerWorkspace& ws);

/// Convenience overload that builds a transient workspace.
PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts = {});

/// Track all paths sequentially; convenience for tests and the sequential
/// baseline of the schedulers.
std::vector<PathResult> track_all(const Homotopy& h, const std::vector<CVector>& starts,
                                  const TrackerOptions& opts = {});

}  // namespace pph::homotopy
