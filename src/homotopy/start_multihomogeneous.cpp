#include "homotopy/start_multihomogeneous.hpp"

#include <map>
#include <stdexcept>

namespace pph::homotopy {

namespace {

std::size_t group_count(const VariablePartition& partition) {
  std::size_t k = 0;
  for (const std::size_t g : partition) k = std::max(k, g + 1);
  return k;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> multihomogeneous_degrees(
    const poly::PolySystem& system, const VariablePartition& partition) {
  if (partition.size() != system.nvars()) {
    throw std::invalid_argument("multihomogeneous_degrees: partition size mismatch");
  }
  const std::size_t k = group_count(partition);
  std::vector<std::vector<std::uint32_t>> degrees(system.size(),
                                                  std::vector<std::uint32_t>(k, 0));
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (const auto& term : system.equation(i).terms()) {
      std::vector<std::uint32_t> by_group(k, 0);
      for (std::size_t v = 0; v < partition.size(); ++v) {
        by_group[partition[v]] += term.monomial.exponent(v);
      }
      for (std::size_t g = 0; g < k; ++g) {
        degrees[i][g] = std::max(degrees[i][g], by_group[g]);
      }
    }
  }
  return degrees;
}

std::uint64_t multihomogeneous_bezout(const std::vector<std::vector<std::uint32_t>>& degrees,
                                      const std::vector<std::size_t>& group_sizes) {
  // Coefficient of prod_j z_j^{n_j} in prod_i (sum_j d_{ij} z_j), computed
  // by dynamic programming over the exponent vectors (capped at n_j, since
  // anything above can never contribute).
  const std::size_t k = group_sizes.size();
  std::map<std::vector<std::size_t>, std::uint64_t> coeff;
  coeff[std::vector<std::size_t>(k, 0)] = 1;
  for (const auto& row : degrees) {
    if (row.size() != k) throw std::invalid_argument("multihomogeneous_bezout: row width");
    std::map<std::vector<std::size_t>, std::uint64_t> next;
    for (const auto& [expo, c] : coeff) {
      for (std::size_t g = 0; g < k; ++g) {
        if (row[g] == 0) continue;
        if (expo[g] + 1 > group_sizes[g]) continue;  // overshoots z_g^{n_g}
        std::vector<std::size_t> e = expo;
        ++e[g];
        auto [it, inserted] = next.try_emplace(std::move(e), 0);
        (void)inserted;
        const std::uint64_t add = c * row[g];
        if (add / row[g] != c || it->second > ~std::uint64_t{0} - add) {
          throw std::overflow_error("multihomogeneous_bezout: overflow");
        }
        it->second += add;
      }
    }
    coeff = std::move(next);
  }
  std::vector<std::size_t> full(group_sizes.begin(), group_sizes.end());
  const auto it = coeff.find(full);
  return it == coeff.end() ? 0 : it->second;
}

std::uint64_t multihomogeneous_bezout(const poly::PolySystem& system,
                                      const VariablePartition& partition) {
  const std::size_t k = group_count(partition);
  std::vector<std::size_t> sizes(k, 0);
  for (const std::size_t g : partition) ++sizes[g];
  return multihomogeneous_bezout(multihomogeneous_degrees(system, partition), sizes);
}

ProductStructure multihomogeneous_structure(const poly::PolySystem& system,
                                            const VariablePartition& partition) {
  const auto degrees = multihomogeneous_degrees(system, partition);
  const std::size_t k = group_count(partition);
  std::vector<FactorSupport> group_vars(k);
  for (std::size_t v = 0; v < partition.size(); ++v) {
    group_vars[partition[v]].push_back(v);
  }
  ProductStructure ps;
  for (const auto& row : degrees) {
    std::vector<FactorSupport> factors;
    for (std::size_t g = 0; g < k; ++g) {
      for (std::uint32_t d = 0; d < row[g]; ++d) factors.push_back(group_vars[g]);
    }
    if (factors.empty()) {
      throw std::invalid_argument("multihomogeneous_structure: constant equation");
    }
    ps.equations.push_back(std::move(factors));
  }
  return ps;
}

}  // namespace pph::homotopy
