#include "homotopy/homotopy.hpp"

#include <stdexcept>

namespace pph::homotopy {

namespace {

/// Concrete workspace behind ConvexHomotopy's fast path.
struct ConvexWorkspace final : HomotopyWorkspace {
  eval::CompiledHomotopy::Workspace w;
};

/// The tracker always passes back the workspace this homotopy created, but
/// a caller mixing homotopies with one workspace (or passing nullptr) must
/// still get correct results: fall back to a transient workspace then.
eval::CompiledHomotopy::Workspace* unwrap(HomotopyWorkspace* ws,
                                          eval::CompiledHomotopy::Workspace& transient) {
  if (auto* cw = dynamic_cast<ConvexWorkspace*>(ws)) return &cw->w;
  return &transient;
}

}  // namespace

ConvexHomotopy::ConvexHomotopy(poly::PolySystem start, poly::PolySystem target, Complex gamma)
    : start_(std::move(start)), target_(std::move(target)), gamma_(gamma) {
  if (start_.nvars() != target_.nvars() || start_.size() != target_.size()) {
    throw std::invalid_argument("ConvexHomotopy: shape mismatch between start and target");
  }
  if (!target_.square()) {
    throw std::invalid_argument("ConvexHomotopy: system must be square");
  }
  compiled_ = eval::CompiledHomotopy(start_, target_, gamma_);
}

std::unique_ptr<HomotopyWorkspace> ConvexHomotopy::make_workspace() const {
  auto ws = std::make_unique<ConvexWorkspace>();
  compiled_.tape().prepare(ws->w.eval);
  return ws;
}

void ConvexHomotopy::evaluate_into(const CVector& x, double t, HomotopyWorkspace* ws,
                                   CVector& h) const {
  eval::CompiledHomotopy::Workspace transient;
  compiled_.evaluate(x, t, *unwrap(ws, transient), h);
}

void ConvexHomotopy::evaluate_with_jacobian_into(const CVector& x, double t, HomotopyWorkspace* ws,
                                                 CVector& h, CMatrix& jx) const {
  eval::CompiledHomotopy::Workspace transient;
  compiled_.evaluate_with_jacobian(x, t, *unwrap(ws, transient), h, jx);
}

void ConvexHomotopy::evaluate_fused(const CVector& x, double t, HomotopyWorkspace* ws, CVector& h,
                                    CMatrix& jx, CVector& ht) const {
  eval::CompiledHomotopy::Workspace transient;
  compiled_.evaluate_fused(x, t, *unwrap(ws, transient), h, jx, ht);
}

CVector ConvexHomotopy::evaluate(const CVector& x, double t) const {
  const CVector g = start_.evaluate(x);
  const CVector f = target_.evaluate(x);
  const Complex a = gamma_ * (1.0 - t);
  CVector h(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) h[i] = a * g[i] + t * f[i];
  return h;
}

CMatrix ConvexHomotopy::jacobian_x(const CVector& x, double t) const {
  CMatrix jg = start_.jacobian(x);
  const CMatrix jf = target_.jacobian(x);
  const Complex a = gamma_ * (1.0 - t);
  jg *= a;
  CMatrix out = jf;
  out *= Complex{t, 0.0};
  out += jg;
  return out;
}

CVector ConvexHomotopy::derivative_t(const CVector& x, double /*t*/) const {
  // dH/dt = -gamma*G(x) + F(x), independent of t for the convex combination.
  const CVector g = start_.evaluate(x);
  const CVector f = target_.evaluate(x);
  CVector d(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) d[i] = f[i] - gamma_ * g[i];
  return d;
}

std::pair<CVector, CMatrix> ConvexHomotopy::evaluate_with_jacobian(const CVector& x,
                                                                   double t) const {
  auto [g, jg] = start_.evaluate_with_jacobian(x);
  auto [f, jf] = target_.evaluate_with_jacobian(x);
  const Complex a = gamma_ * (1.0 - t);
  CVector h(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) h[i] = a * g[i] + t * f[i];
  jg *= a;
  jf *= Complex{t, 0.0};
  jf += jg;
  return {std::move(h), std::move(jf)};
}

}  // namespace pph::homotopy
