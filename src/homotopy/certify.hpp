#pragma once
// Root-count certification: validate a computed solution set against the
// exact combinatorial count (Pieri chain count, Bezout number,
// multihomogeneous bound) plus residual and pairwise-distinctness checks.
//
// A homotopy solve that silently loses a path serves a wrong answer; the
// certificate turns that into a machine-readable verdict that benches and
// CI convert into a non-zero exit (DESIGN.md section 9).  Where
// deduplicate_solutions silently merges close endpoints, the certificate
// reports the offending pairs.

#include <cstdint>
#include <string>
#include <vector>

#include "poly/system.hpp"

namespace pph::homotopy {

using linalg::CVector;

struct CertifyOptions {
  /// A solution whose residual exceeds this fails the residual check.
  double residual_tolerance = 1e-7;
  /// Pairs closer than this count as duplicates (the same constant
  /// deduplicate_solutions merges with -- hoisted, not re-invented).
  double distinct_tolerance = 1e-6;
  /// Pairs within near_duplicate_factor * distinct_tolerance are reported
  /// as near-duplicates: not merged, not fatal, but exactly where a path
  /// jump would hide.
  double near_duplicate_factor = 10.0;
};

/// One suspicious pair in the certified set (indices into the solution
/// list, a < b, max-norm distance).
struct CertifyPair {
  std::size_t a = 0;
  std::size_t b = 0;
  double distance = 0.0;
};

/// Machine-readable certification verdict.
struct CertificateReport {
  std::uint64_t expected_count = 0;  // exact combinatorial root count
  std::size_t found = 0;             // solutions presented
  std::size_t residual_ok = 0;       // solutions passing the residual check
  double max_residual = 0.0;
  std::vector<std::size_t> residual_failures;  // indices of the offenders
  /// Pairs closer than distinct_tolerance: would-be merges, each one a
  /// missing root somewhere else.
  std::vector<CertifyPair> duplicates;
  /// Pairs inside the near-duplicate band: reported, not fatal.
  std::vector<CertifyPair> near_duplicates;
  /// Smallest pairwise distance among the reported pairs (infinity when
  /// the set is cleanly separated).
  double min_pairwise_distance = 0.0;

  bool count_ok() const { return found == expected_count; }
  bool residuals_ok() const { return residual_failures.empty(); }
  bool distinct_ok() const { return duplicates.empty(); }
  /// The certificate: count, residuals and distinctness all agree.
  bool ok() const { return count_ok() && residuals_ok() && distinct_ok(); }

  /// One-line human verdict ("certified: 512 roots ..." / "FAILED: ...").
  std::string summary() const;
  /// Full verdict as a single JSON object (benches embed it in artifacts).
  std::string to_json() const;
};

/// Certify a solution set given per-solution residuals (any scale-aware
/// residual the caller trusts) and the exact expected count.
CertificateReport certify_solution_set(const std::vector<CVector>& solutions,
                                       const std::vector<double>& residuals,
                                       std::uint64_t expected_count,
                                       const CertifyOptions& opts = {});

/// Certify against a polynomial target system: residuals are computed as
/// target.residual at each point.
CertificateReport certify(const poly::PolySystem& target, const std::vector<CVector>& solutions,
                          std::uint64_t expected_count, const CertifyOptions& opts = {});

}  // namespace pph::homotopy
