#include "homotopy/solver.hpp"

#include "homotopy/start_multihomogeneous.hpp"
#include "util/timer.hpp"

namespace pph::homotopy {

EndpointClass classify_endpoint(const poly::PolySystem& target,
                                const poly::PolySystem& leading_forms, const PathResult& path,
                                const SolveOptions& opts) {
  const double xnorm = linalg::norm_inf(path.x);
  if (path.status == PathStatus::kDiverged) return EndpointClass::kAtInfinity;
  if (xnorm > opts.at_infinity_norm) return EndpointClass::kAtInfinity;
  if (xnorm > opts.suspicious_norm) {
    // Normalize and test the top-degree part.  Slowly diverging paths (for
    // example the excess paths of a linear-product homotopy, which grow like
    // (1-t)^(-1/k)) reach t = 1 at moderate norm but their direction lies on
    // the variety of the leading forms; genuine large roots do not.
    const double scale = linalg::norm2(path.x);
    CVector u = path.x;
    for (auto& v : u) v /= scale;
    if (leading_forms.residual(u) < opts.leading_form_tolerance) {
      return EndpointClass::kAtInfinity;
    }
  }
  if (path.status == PathStatus::kConverged &&
      target.residual(path.x) < opts.solution_residual) {
    return EndpointClass::kFiniteRoot;
  }
  return EndpointClass::kFailure;
}

namespace {

/// Tracker options for rescue attempt k (1-based): progressively shrunken
/// step bounds, a roomier corrector and the compensated endgame.
TrackerOptions rescue_tracker(const TrackerOptions& base, const RescueOptions& rescue,
                              std::size_t attempt) {
  TrackerOptions t = base;
  for (std::size_t k = 0; k < attempt; ++k) {
    t.initial_step *= rescue.step_scale;
    t.max_step *= rescue.step_scale;
    t.corrector.max_iterations += 2;
  }
  t.endgame.enabled = true;
  t.endgame.dd_refine = t.endgame.dd_refine || rescue.dd_refine;
  return t;
}

}  // namespace

SolveSummary track_and_summarize(const Homotopy& h, const std::vector<CVector>& starts,
                                 const poly::PolySystem& target, const SolveOptions& opts,
                                 const RescueFamily& rescue_family) {
  SolveSummary summary;
  summary.path_count = starts.size();
  summary.paths.reserve(starts.size());
  summary.path_seconds.reserve(starts.size());
  const poly::PolySystem leading = target.leading_forms();

  std::vector<EndpointClass> classes;
  classes.reserve(starts.size());
  TrackerWorkspace ws(h);
  for (const auto& x0 : starts) {
    util::WallTimer timer;
    PathResult r = track_path(h, x0, opts.tracker, ws);
    summary.path_seconds.push_back(timer.seconds());
    classes.push_back(classify_endpoint(target, leading, r, opts));
    summary.paths.push_back(std::move(r));
  }

  // Rescue tier: re-track every failure with shrunken steps (and a fresh
  // deformation when the caller provides the homotopy family).  Divergent
  // endpoints are genuine in the generic case and stay untouched.
  if (opts.rescue.enabled) {
    for (std::size_t i = 0; i < summary.paths.size(); ++i) {
      if (classes[i] != EndpointClass::kFailure) continue;
      util::WallTimer rescue_timer;
      for (std::size_t attempt = 1; attempt <= opts.rescue.max_attempts; ++attempt) {
        const std::unique_ptr<Homotopy> fresh = rescue_family ? rescue_family(attempt) : nullptr;
        const Homotopy& hr = fresh ? *fresh : h;
        TrackerWorkspace rescue_ws(hr);
        PathResult r = track_path(hr, starts[i], rescue_tracker(opts.tracker, opts.rescue, attempt),
                                  rescue_ws);
        ++summary.rescue_retracks;
        r.rescue_attempts = static_cast<std::uint32_t>(attempt);
        const EndpointClass cls = classify_endpoint(target, leading, r, opts);
        if (cls == EndpointClass::kFailure && attempt < opts.rescue.max_attempts) continue;
        // Adopt the rescue result: either it resolved the path (root or a
        // clean at-infinity diagnosis) or the budget ran out and the last
        // attempt carries the provenance.
        r.rescued = cls == EndpointClass::kFiniteRoot;
        summary.rescued_paths += r.rescued ? 1 : 0;
        classes[i] = cls;
        summary.paths[i] = std::move(r);
        break;
      }
      summary.rescue_seconds += rescue_timer.seconds();
    }
  }

  std::vector<CVector> raw_solutions;
  for (std::size_t i = 0; i < summary.paths.size(); ++i) {
    PathResult& r = summary.paths[i];
    switch (classes[i]) {
      case EndpointClass::kFiniteRoot:
        ++summary.converged;
        raw_solutions.push_back(r.x);
        break;
      case EndpointClass::kAtInfinity:
        ++summary.diverged;
        r.status = PathStatus::kDiverged;
        break;
      case EndpointClass::kFailure:
        ++summary.failed;
        r.status = PathStatus::kFailed;
        break;
    }
  }
  summary.solutions = poly::deduplicate_solutions(raw_solutions, opts.dedup_tolerance);
  return summary;
}

SolveSummary solve_total_degree(const poly::PolySystem& target, const SolveOptions& opts) {
  util::Prng rng(opts.seed);
  TotalDegreeStart start(target, rng);
  ConvexHomotopy h(start.system(), target, rng.unit_complex());
  // Fresh-gamma family for the rescue tier: the start system's roots do not
  // depend on gamma, so failed paths re-track from the same starts.
  const auto family = [&](std::size_t attempt) {
    util::Prng gamma_rng(opts.seed ^ (0x7265736375655fULL + attempt));
    return std::make_unique<ConvexHomotopy>(start.system(), target, gamma_rng.unit_complex());
  };
  return track_and_summarize(h, start.all_solutions(), target, opts, family);
}

SolveSummary solve_linear_product(const poly::PolySystem& target,
                                  const ProductStructure& structure, const SolveOptions& opts) {
  util::Prng rng(opts.seed);
  LinearProductStart start(target.nvars(), structure, rng);
  ConvexHomotopy h(start.system(), target, rng.unit_complex());
  std::vector<CVector> starts;
  for (auto& [index, x] : start.all_solutions()) {
    (void)index;
    starts.push_back(std::move(x));
  }
  const auto family = [&](std::size_t attempt) {
    util::Prng gamma_rng(opts.seed ^ (0x7265736375655fULL + attempt));
    return std::make_unique<ConvexHomotopy>(start.system(), target, gamma_rng.unit_complex());
  };
  return track_and_summarize(h, starts, target, opts, family);
}

SolveSummary solve_multihomogeneous(const poly::PolySystem& target,
                                    const std::vector<std::size_t>& partition,
                                    const SolveOptions& opts) {
  return solve_linear_product(target, multihomogeneous_structure(target, partition), opts);
}

}  // namespace pph::homotopy
