#include "homotopy/solver.hpp"

#include "homotopy/start_multihomogeneous.hpp"
#include "util/timer.hpp"

namespace pph::homotopy {

EndpointClass classify_endpoint(const poly::PolySystem& target,
                                const poly::PolySystem& leading_forms, const PathResult& path,
                                const SolveOptions& opts) {
  const double xnorm = linalg::norm_inf(path.x);
  if (path.status == PathStatus::kDiverged) return EndpointClass::kAtInfinity;
  if (xnorm > opts.at_infinity_norm) return EndpointClass::kAtInfinity;
  if (xnorm > opts.suspicious_norm) {
    // Normalize and test the top-degree part.  Slowly diverging paths (for
    // example the excess paths of a linear-product homotopy, which grow like
    // (1-t)^(-1/k)) reach t = 1 at moderate norm but their direction lies on
    // the variety of the leading forms; genuine large roots do not.
    const double scale = linalg::norm2(path.x);
    CVector u = path.x;
    for (auto& v : u) v /= scale;
    if (leading_forms.residual(u) < opts.leading_form_tolerance) {
      return EndpointClass::kAtInfinity;
    }
  }
  if (path.status == PathStatus::kConverged &&
      target.residual(path.x) < opts.solution_residual) {
    return EndpointClass::kFiniteRoot;
  }
  return EndpointClass::kFailure;
}

SolveSummary track_and_summarize(const Homotopy& h, const std::vector<CVector>& starts,
                                 const poly::PolySystem& target, const SolveOptions& opts) {
  SolveSummary summary;
  summary.path_count = starts.size();
  summary.paths.reserve(starts.size());
  summary.path_seconds.reserve(starts.size());
  const poly::PolySystem leading = target.leading_forms();

  std::vector<CVector> raw_solutions;
  TrackerWorkspace ws(h);
  for (const auto& x0 : starts) {
    util::WallTimer timer;
    PathResult r = track_path(h, x0, opts.tracker, ws);
    summary.path_seconds.push_back(timer.seconds());
    switch (classify_endpoint(target, leading, r, opts)) {
      case EndpointClass::kFiniteRoot:
        ++summary.converged;
        raw_solutions.push_back(r.x);
        break;
      case EndpointClass::kAtInfinity:
        ++summary.diverged;
        r.status = PathStatus::kDiverged;
        break;
      case EndpointClass::kFailure:
        ++summary.failed;
        r.status = PathStatus::kFailed;
        break;
    }
    summary.paths.push_back(std::move(r));
  }
  summary.solutions = poly::deduplicate_solutions(raw_solutions, opts.dedup_tolerance);
  return summary;
}

SolveSummary solve_total_degree(const poly::PolySystem& target, const SolveOptions& opts) {
  util::Prng rng(opts.seed);
  TotalDegreeStart start(target, rng);
  ConvexHomotopy h(start.system(), target, rng.unit_complex());
  return track_and_summarize(h, start.all_solutions(), target, opts);
}

SolveSummary solve_linear_product(const poly::PolySystem& target,
                                  const ProductStructure& structure, const SolveOptions& opts) {
  util::Prng rng(opts.seed);
  LinearProductStart start(target.nvars(), structure, rng);
  ConvexHomotopy h(start.system(), target, rng.unit_complex());
  std::vector<CVector> starts;
  for (auto& [index, x] : start.all_solutions()) {
    (void)index;
    starts.push_back(std::move(x));
  }
  return track_and_summarize(h, starts, target, opts);
}

SolveSummary solve_multihomogeneous(const poly::PolySystem& target,
                                    const std::vector<std::size_t>& partition,
                                    const SolveOptions& opts) {
  return solve_linear_product(target, multihomogeneous_structure(target, partition), opts);
}

}  // namespace pph::homotopy
