#pragma once
// Homotopy interface and the convex-linear ("gamma trick") homotopy
//   H(x,t) = gamma * (1-t) * G(x) + t * F(x)
// of equation (1) of the paper, connecting a solved start system G to the
// target system F as t runs from 0 to 1.

#include <memory>

#include "poly/system.hpp"

namespace pph::homotopy {

using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

/// Abstract homotopy H : C^n x [0,1] -> C^n.  Implementations provide the
/// value, the Jacobian with respect to x, and the derivative with respect
/// to t (used by the tangent predictor).
class Homotopy {
 public:
  virtual ~Homotopy() = default;

  /// Number of equations == number of unknowns.
  virtual std::size_t dimension() const = 0;

  virtual CVector evaluate(const CVector& x, double t) const = 0;
  virtual CMatrix jacobian_x(const CVector& x, double t) const = 0;
  virtual CVector derivative_t(const CVector& x, double t) const = 0;

  /// Value and Jacobian together; default composes the two virtuals, and
  /// implementations override when a shared evaluation is cheaper.
  virtual std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const {
    return {evaluate(x, t), jacobian_x(x, t)};
  }
};

/// H(x,t) = gamma*(1-t)*G(x) + t*F(x).  Start and target must be square
/// systems of the same shape.  With gamma drawn uniformly from the unit
/// circle, all paths are regular for almost all gamma (the gamma trick).
class ConvexHomotopy final : public Homotopy {
 public:
  ConvexHomotopy(poly::PolySystem start, poly::PolySystem target, Complex gamma);

  std::size_t dimension() const override { return target_.nvars(); }
  CVector evaluate(const CVector& x, double t) const override;
  CMatrix jacobian_x(const CVector& x, double t) const override;
  CVector derivative_t(const CVector& x, double t) const override;
  std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const override;

  const poly::PolySystem& start() const { return start_; }
  const poly::PolySystem& target() const { return target_; }
  Complex gamma() const { return gamma_; }

 private:
  poly::PolySystem start_;
  poly::PolySystem target_;
  Complex gamma_;
};

}  // namespace pph::homotopy
