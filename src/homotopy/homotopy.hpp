#pragma once
// Homotopy interface and the convex-linear ("gamma trick") homotopy
//   H(x,t) = gamma * (1-t) * G(x) + t * F(x)
// of equation (1) of the paper, connecting a solved start system G to the
// target system F as t runs from 0 to 1.

#include <memory>

#include "eval/compiled_homotopy.hpp"
#include "poly/system.hpp"

namespace pph::homotopy {

using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

/// Opaque per-path/per-thread scratch for a homotopy's evaluation fast
/// path.  Implementations that support allocation-free evaluation return a
/// concrete workspace from Homotopy::make_workspace; the buffer-filling
/// entry points accept it back (nullptr is always legal and falls back to
/// the allocating virtuals).
class HomotopyWorkspace {
 public:
  virtual ~HomotopyWorkspace() = default;
};

/// Abstract homotopy H : C^n x [0,1] -> C^n.  Implementations provide the
/// value, the Jacobian with respect to x, and the derivative with respect
/// to t (used by the tangent predictor).
class Homotopy {
 public:
  virtual ~Homotopy() = default;

  /// Number of equations == number of unknowns.
  virtual std::size_t dimension() const = 0;

  virtual CVector evaluate(const CVector& x, double t) const = 0;
  virtual CMatrix jacobian_x(const CVector& x, double t) const = 0;
  virtual CVector derivative_t(const CVector& x, double t) const = 0;

  /// Value and Jacobian together; default composes the two virtuals, and
  /// implementations override when a shared evaluation is cheaper.
  virtual std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const {
    return {evaluate(x, t), jacobian_x(x, t)};
  }

  // ---- allocation-free fast path ----------------------------------------
  //
  // The tracker's hot loop calls these buffer-filling variants with a
  // workspace obtained once per path (or per worker thread).  The defaults
  // delegate to the allocating virtuals so every Homotopy works unchanged;
  // ConvexHomotopy overrides them with its compiled straight-line form.

  /// Scratch for the fast path, or nullptr when the implementation has no
  /// accelerated form (the defaults then simply ignore the workspace).
  virtual std::unique_ptr<HomotopyWorkspace> make_workspace() const { return nullptr; }

  /// h <- H(x,t).
  virtual void evaluate_into(const CVector& x, double t, HomotopyWorkspace* /*ws*/,
                             CVector& h) const {
    h = evaluate(x, t);
  }

  /// h <- H(x,t), jx <- dH/dx(x,t).
  virtual void evaluate_with_jacobian_into(const CVector& x, double t, HomotopyWorkspace* /*ws*/,
                                           CVector& h, CMatrix& jx) const {
    auto [value, jac] = evaluate_with_jacobian(x, t);
    h = std::move(value);
    jx = std::move(jac);
  }

  /// h <- H, jx <- dH/dx, ht <- dH/dt in one call.
  virtual void evaluate_fused(const CVector& x, double t, HomotopyWorkspace* ws, CVector& h,
                              CMatrix& jx, CVector& ht) const {
    evaluate_with_jacobian_into(x, t, ws, h, jx);
    ht = derivative_t(x, t);
  }
};

/// H(x,t) = gamma*(1-t)*G(x) + t*F(x).  Start and target must be square
/// systems of the same shape.  With gamma drawn uniformly from the unit
/// circle, all paths are regular for almost all gamma (the gamma trick).
class ConvexHomotopy final : public Homotopy {
 public:
  ConvexHomotopy(poly::PolySystem start, poly::PolySystem target, Complex gamma);

  std::size_t dimension() const override { return target_.nvars(); }

  // Interpreted path (walks the Polynomial term lists); kept as the golden
  // reference the compiled engine is validated against in test_eval.
  CVector evaluate(const CVector& x, double t) const override;
  CMatrix jacobian_x(const CVector& x, double t) const override;
  CVector derivative_t(const CVector& x, double t) const override;
  std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const override;

  // Compiled fast path: one fused pass over the shared start/target tape,
  // allocation-free given a workspace from make_workspace().
  std::unique_ptr<HomotopyWorkspace> make_workspace() const override;
  void evaluate_into(const CVector& x, double t, HomotopyWorkspace* ws, CVector& h) const override;
  void evaluate_with_jacobian_into(const CVector& x, double t, HomotopyWorkspace* ws, CVector& h,
                                   CMatrix& jx) const override;
  void evaluate_fused(const CVector& x, double t, HomotopyWorkspace* ws, CVector& h, CMatrix& jx,
                      CVector& ht) const override;

  const poly::PolySystem& start() const { return start_; }
  const poly::PolySystem& target() const { return target_; }
  const eval::CompiledHomotopy& compiled() const { return compiled_; }
  Complex gamma() const { return gamma_; }

 private:
  poly::PolySystem start_;
  poly::PolySystem target_;
  Complex gamma_;
  eval::CompiledHomotopy compiled_;
};

}  // namespace pph::homotopy
