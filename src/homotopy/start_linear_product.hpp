#pragma once
// Linear-product start systems (Su/McCarthy/Watson style, used by the
// paper's RPS mechanism-design benchmark): each start equation is a product
// of random linear forms over prescribed variable groups,
//   G_i(x) = prod_k L_{i,k}(x),   L_{i,k} linear in the variables of its group.
//
// A start solution picks one factor per equation and solves the resulting
// square linear system; the number of admissible picks is the generalized
// Bezout number of the product structure, which for the RPS problem (9,216)
// exceeds the mixed volume (1,024) -- the source of the paper's >8,000
// diverging paths.

#include <optional>

#include "homotopy/homotopy.hpp"
#include "util/prng.hpp"

namespace pph::homotopy {

/// Variable-group structure of one linear factor: indices of the variables
/// that appear with nonzero coefficient (a constant term is always present).
using FactorSupport = std::vector<std::size_t>;

/// Per-equation product structure: a list of factor supports.
struct ProductStructure {
  std::vector<std::vector<FactorSupport>> equations;

  std::size_t size() const { return equations.size(); }
  /// Product of factor counts: the path count of the linear-product homotopy.
  unsigned long long combination_count() const;
};

/// Start system built from a product structure with random coefficients.
class LinearProductStart {
 public:
  LinearProductStart(std::size_t nvars, ProductStructure structure, util::Prng& rng);

  const poly::PolySystem& system() const { return system_; }
  const ProductStructure& structure() const { return structure_; }

  /// Number of factor combinations (== path count; some may be degenerate).
  unsigned long long combination_count() const { return structure_.combination_count(); }

  /// Solve the linear system of combination k (mixed-radix over factor
  /// counts).  Returns nullopt when the selected forms are linearly
  /// dependent (a degenerate combination, skipped by the solver).
  std::optional<CVector> solution(unsigned long long k) const;

  /// All non-degenerate start solutions with their combination indices.
  std::vector<std::pair<unsigned long long, CVector>> all_solutions() const;

 private:
  /// Dense coefficient row of factor (i,k): nvars coefficients + constant.
  struct Factor {
    CVector coefficients;  // size nvars (zero outside the support)
    Complex constant;
  };

  std::size_t nvars_ = 0;
  ProductStructure structure_;
  std::vector<std::vector<Factor>> factors_;
  poly::PolySystem system_;
};

}  // namespace pph::homotopy
