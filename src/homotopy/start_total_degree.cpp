#include "homotopy/start_total_degree.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pph::homotopy {

TotalDegreeStart::TotalDegreeStart(const poly::PolySystem& target, util::Prng& rng) {
  if (!target.square()) throw std::invalid_argument("TotalDegreeStart: system must be square");
  const std::size_t n = target.nvars();
  degrees_ = target.degrees();
  poly::PolySystem g(n);
  radius_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (degrees_[i] == 0) {
      throw std::invalid_argument("TotalDegreeStart: equation of degree zero");
    }
    // c * x_i^d - b with |c| = |b| = 1 random phases.
    const Complex c = rng.unit_complex();
    const Complex b = rng.unit_complex();
    poly::Monomial mono(n);
    mono.set_exponent(i, degrees_[i]);
    poly::Polynomial p(n, {{c, mono}, {-b, poly::Monomial(n)}});
    g.add_equation(std::move(p));
    // Principal d-th root of b/c; the other roots differ by phase factors.
    const Complex ratio = b / c;
    const double mag = std::pow(std::abs(ratio), 1.0 / degrees_[i]);
    const double arg = std::arg(ratio) / degrees_[i];
    radius_.push_back(Complex{mag * std::cos(arg), mag * std::sin(arg)});

    const unsigned long long d = degrees_[i];
    if (count_ > (~0ULL) / d) throw std::overflow_error("TotalDegreeStart: count overflow");
    count_ *= d;
  }
  system_ = std::move(g);
}

CVector TotalDegreeStart::solution(unsigned long long k) const {
  if (k >= count_) throw std::out_of_range("TotalDegreeStart::solution: index");
  const std::size_t n = degrees_.size();
  CVector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned long long d = degrees_[i];
    const unsigned long long j = k % d;
    k /= d;
    const double theta = 2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(d);
    x[i] = radius_[i] * Complex{std::cos(theta), std::sin(theta)};
  }
  return x;
}

std::vector<CVector> TotalDegreeStart::all_solutions() const {
  std::vector<CVector> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (unsigned long long k = 0; k < count_; ++k) out.push_back(solution(k));
  return out;
}

}  // namespace pph::homotopy
