#pragma once
// Total-degree start system: G_i(x) = c_i * x_i^{d_i} - b_i with random
// nonzero constants.  Its d_1 * ... * d_n solutions are scaled roots of
// unity, enumerated lazily so that 35,940-path problems (cyclic 10-roots)
// never materialize all starts at once.

#include "homotopy/homotopy.hpp"
#include "util/prng.hpp"

namespace pph::homotopy {

/// Start system paired with an indexed enumeration of its solutions.
class TotalDegreeStart {
 public:
  /// Build for a target system; degrees are read from `target`.
  TotalDegreeStart(const poly::PolySystem& target, util::Prng& rng);

  const poly::PolySystem& system() const { return system_; }

  /// Number of start solutions == product of the degrees (Bezout number).
  unsigned long long solution_count() const { return count_; }

  /// The k-th start solution (mixed-radix decoding of k over the degrees).
  CVector solution(unsigned long long k) const;

  /// All solutions; only call for small counts.
  std::vector<CVector> all_solutions() const;

 private:
  poly::PolySystem system_;
  std::vector<std::uint32_t> degrees_;
  std::vector<Complex> radius_;  // d_i-th root of b_i / c_i
  unsigned long long count_ = 1;
};

}  // namespace pph::homotopy
