#include "homotopy/start_linear_product.hpp"

#include <stdexcept>

#include "linalg/lu.hpp"

namespace pph::homotopy {

unsigned long long ProductStructure::combination_count() const {
  unsigned long long prod = 1;
  for (const auto& eq : equations) {
    const unsigned long long f = eq.size();
    if (f == 0) throw std::invalid_argument("ProductStructure: equation with no factors");
    if (prod > (~0ULL) / f) throw std::overflow_error("ProductStructure: count overflow");
    prod *= f;
  }
  return prod;
}

LinearProductStart::LinearProductStart(std::size_t nvars, ProductStructure structure,
                                       util::Prng& rng)
    : nvars_(nvars), structure_(std::move(structure)) {
  if (structure_.size() != nvars_) {
    throw std::invalid_argument("LinearProductStart: must be square (one equation per variable)");
  }
  factors_.resize(structure_.size());
  poly::PolySystem g(nvars_);
  for (std::size_t i = 0; i < structure_.size(); ++i) {
    const auto& supports = structure_.equations[i];
    poly::Polynomial prod = poly::Polynomial::constant(nvars_, Complex{1.0, 0.0});
    for (const auto& support : supports) {
      Factor f;
      f.coefficients.assign(nvars_, Complex{});
      for (std::size_t v : support) {
        if (v >= nvars_) throw std::out_of_range("LinearProductStart: variable index");
        f.coefficients[v] = rng.unit_complex();
      }
      f.constant = rng.unit_complex();
      // Polynomial form of the factor, built as one term list (bulk
      // normalize) instead of a += chain.
      std::vector<poly::Term> lin_terms;
      lin_terms.reserve(support.size() + 1);
      lin_terms.push_back({f.constant, poly::Monomial(nvars_)});
      for (std::size_t v : support) {
        lin_terms.push_back({f.coefficients[v], poly::Monomial::variable(nvars_, v)});
      }
      prod *= poly::Polynomial(nvars_, std::move(lin_terms));
      factors_[i].push_back(std::move(f));
    }
    g.add_equation(std::move(prod));
  }
  system_ = std::move(g);
}

std::optional<CVector> LinearProductStart::solution(unsigned long long k) const {
  if (k >= combination_count()) throw std::out_of_range("LinearProductStart::solution");
  linalg::CMatrix a(nvars_, nvars_);
  CVector b(nvars_);
  for (std::size_t i = 0; i < nvars_; ++i) {
    const unsigned long long nf = factors_[i].size();
    const std::size_t pick = static_cast<std::size_t>(k % nf);
    k /= nf;
    const Factor& f = factors_[i][pick];
    for (std::size_t v = 0; v < nvars_; ++v) a(i, v) = f.coefficients[v];
    b[i] = -f.constant;
  }
  linalg::LU lu(a);
  if (lu.singular() || lu.rcond_estimate() < 1e-14) return std::nullopt;
  return lu.solve(b);
}

std::vector<std::pair<unsigned long long, CVector>> LinearProductStart::all_solutions() const {
  std::vector<std::pair<unsigned long long, CVector>> out;
  const unsigned long long total = combination_count();
  for (unsigned long long k = 0; k < total; ++k) {
    auto s = solution(k);
    if (s) out.emplace_back(k, std::move(*s));
  }
  return out;
}

}  // namespace pph::homotopy
