#include "homotopy/certify.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pph::homotopy {

namespace {

void append_pairs(std::string& out, const char* name, const std::vector<CertifyPair>& pairs) {
  out += "\"";
  out += name;
  out += "\":[";
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    if (k != 0) out += ',';
    out += "{\"a\":" + std::to_string(pairs[k].a) + ",\"b\":" + std::to_string(pairs[k].b) +
           ",\"d\":" + std::to_string(pairs[k].distance) + "}";
  }
  out += "]";
}

}  // namespace

std::string CertificateReport::summary() const {
  std::string s = ok() ? "certified: " : "certification FAILED: ";
  s += std::to_string(found) + "/" + std::to_string(expected_count) + " roots, ";
  s += std::to_string(residual_ok) + " residual-ok (max " + std::to_string(max_residual) + "), ";
  s += std::to_string(duplicates.size()) + " duplicate pairs, ";
  s += std::to_string(near_duplicates.size()) + " near-duplicate pairs";
  return s;
}

std::string CertificateReport::to_json() const {
  std::string out = "{\"ok\":";
  out += ok() ? "true" : "false";
  out += ",\"expected\":" + std::to_string(expected_count);
  out += ",\"found\":" + std::to_string(found);
  out += ",\"residual_ok\":" + std::to_string(residual_ok);
  out += ",\"max_residual\":" + std::to_string(max_residual);
  out += ",\"residual_failures\":[";
  for (std::size_t k = 0; k < residual_failures.size(); ++k) {
    if (k != 0) out += ',';
    out += std::to_string(residual_failures[k]);
  }
  out += "],";
  append_pairs(out, "duplicates", duplicates);
  out += ",";
  append_pairs(out, "near_duplicates", near_duplicates);
  out += ",\"min_pairwise_distance\":" + std::to_string(min_pairwise_distance);
  out += "}";
  return out;
}

CertificateReport certify_solution_set(const std::vector<CVector>& solutions,
                                       const std::vector<double>& residuals,
                                       std::uint64_t expected_count,
                                       const CertifyOptions& opts) {
  if (residuals.size() != solutions.size()) {
    throw std::invalid_argument("certify_solution_set: one residual per solution required");
  }
  CertificateReport report;
  report.expected_count = expected_count;
  report.found = solutions.size();
  report.min_pairwise_distance = std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < residuals.size(); ++i) {
    report.max_residual = std::max(report.max_residual, residuals[i]);
    if (residuals[i] <= opts.residual_tolerance) {
      ++report.residual_ok;
    } else {
      report.residual_failures.push_back(i);
    }
  }

  // One scan at the widened radius covers both bands: a pair below the
  // dedup tolerance is a duplicate, one inside the band is a near-miss.
  const double radius = opts.distinct_tolerance * std::max(opts.near_duplicate_factor, 1.0);
  for (const poly::ClosePair& p : poly::duplicate_pairs(solutions, radius)) {
    const CertifyPair pair{p.a, p.b, p.distance};
    report.min_pairwise_distance = std::min(report.min_pairwise_distance, p.distance);
    if (p.distance < opts.distinct_tolerance) {
      report.duplicates.push_back(pair);
    } else {
      report.near_duplicates.push_back(pair);
    }
  }
  return report;
}

CertificateReport certify(const poly::PolySystem& target, const std::vector<CVector>& solutions,
                          std::uint64_t expected_count, const CertifyOptions& opts) {
  std::vector<double> residuals;
  residuals.reserve(solutions.size());
  for (const auto& x : solutions) residuals.push_back(target.residual(x));
  return certify_solution_set(solutions, residuals, expected_count, opts);
}

}  // namespace pph::homotopy
