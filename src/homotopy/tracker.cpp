#include "homotopy/tracker.hpp"

#include <algorithm>
#include <cmath>

namespace pph::homotopy {

namespace {

/// Endgame growth test: a path escaping to infinity like (1-t)^{-alpha}
/// multiplies its norm by 10^alpha every decade of 1-t, so monotone growth
/// across the last few decade samples identifies divergence even when the
/// norm itself is still moderate when the step size underflows.
bool endgame_diverging(const std::vector<double>& decade_norms, double current_norm) {
  if (current_norm < 10.0) return false;
  const std::size_t m = decade_norms.size();
  if (m < 3) return false;
  const bool monotone =
      decade_norms[m - 1] > decade_norms[m - 2] && decade_norms[m - 2] > decade_norms[m - 3];
  const double total_growth = decade_norms[m - 1] / std::max(decade_norms[m - 3], 1e-300);
  return monotone && total_growth > 1.5;
}

}  // namespace

PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts,
                      TrackerWorkspace& ws) {
  PathResult result;
  CVector x = x0;
  ws.x_prev = x0;
  double t = 0.0;
  double t_prev = 0.0;
  double step = opts.initial_step;
  std::size_t successes = 0;
  bool have_prev = false;
  std::size_t next_decade = 1;
  constexpr std::size_t kMaxDecade = 14;

  const EndgameOptions& eg = opts.endgame;
  // Tightened corrector for the final stretch, derived once.
  CorrectorOptions endgame_corrector = opts.corrector;
  endgame_corrector.max_iterations += eg.extra_iterations;
  endgame_corrector.residual_tolerance *= eg.residual_scale;
  endgame_corrector.dd_refine = endgame_corrector.dd_refine || eg.dd_refine;

  while (t < 1.0) {
    if (opts.cancel_poll && opts.cancel_poll()) {
      result.status = PathStatus::kCancelled;
      result.x = x;
      result.t_reached = t;
      result.last_step = step;
      h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
      result.residual = linalg::norm2(ws.h_val);
      return result;
    }
    if (result.steps + result.rejections >= opts.max_steps) {
      result.status = PathStatus::kFailed;
      break;
    }
    const bool in_endgame = eg.enabled && t >= eg.threshold;
    double dt = std::min(step, 1.0 - t);
    if (in_endgame && 1.0 - t > eg.min_gap) {
      // Geometric approach: cover at most step_fraction of the remaining
      // gap, never less than min_gap (the last hop lands exactly on 1).
      dt = std::min(dt, std::max(eg.step_fraction * (1.0 - t), eg.min_gap));
    }
    const double t_next = t + dt;

    // Predict into the reusable buffer.
    if (opts.predictor == PredictorKind::kTangent) {
      if (!predict_tangent(h, x, t, dt, ws, ws.x_pred)) {
        if (have_prev) {
          predict_secant_into(ws.x_prev, t_prev, x, t, dt, ws.x_pred);
        } else {
          ws.x_pred = x;
        }
      }
    } else if (opts.predictor == PredictorKind::kSecant && have_prev) {
      predict_secant_into(ws.x_prev, t_prev, x, t, dt, ws.x_pred);
    } else {
      ws.x_pred = x;
    }

    // Correct.
    ws.x_corr = ws.x_pred;
    const CorrectorResult corr =
        correct(h, ws.x_corr, t_next, in_endgame ? endgame_corrector : opts.corrector, ws);
    result.newton_iterations += corr.iterations;

    if (corr.status == CorrectorStatus::kConverged) {
      ws.x_prev = x;
      t_prev = t;
      have_prev = true;
      x = ws.x_corr;
      t = t_next;
      ++result.steps;
      ++successes;
      while (next_decade <= kMaxDecade && t >= 1.0 - std::pow(10.0, -static_cast<double>(next_decade))) {
        result.endgame_norms.push_back(linalg::norm_inf(x));
        ++next_decade;
      }
      if (successes >= opts.expand_after) {
        step = std::min(step * opts.expand_factor, opts.max_step);
        successes = 0;
      }
      // Divergence check on the accepted point.
      if (linalg::norm_inf(x) > opts.divergence_threshold) {
        result.status = PathStatus::kDiverged;
        result.x = x;
        result.t_reached = t;
        result.residual = corr.residual;
        result.last_step = step;
        return result;
      }
    } else {
      ++result.rejections;
      successes = 0;
      step *= opts.shrink_factor;
      if (step < opts.min_step) {
        // A step-size underflow is a divergence in disguise when the point
        // is either already huge or has been growing steadily across the
        // endgame decades (slow escape to infinity).
        const double xnorm = linalg::norm_inf(x);
        const bool diverging = xnorm > 1.0 / opts.min_step ||
                               endgame_diverging(result.endgame_norms, xnorm);
        result.status = diverging ? PathStatus::kDiverged : PathStatus::kFailed;
        result.x = x;
        result.t_reached = t;
        result.last_step = step;
        h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
        result.residual = linalg::norm2(ws.h_val);
        return result;
      }
    }
  }

  result.last_step = step;
  if (t >= 1.0) {
    // Final refinement at the target.
    CorrectorOptions end_opts = opts.end_corrector;
    if (eg.enabled) {
      end_opts.max_iterations += eg.extra_iterations;
      end_opts.dd_refine = end_opts.dd_refine || eg.dd_refine;
    }
    const CorrectorResult end = correct(h, x, 1.0, end_opts, ws);
    result.newton_iterations += end.iterations;
    result.residual = end.residual;
    result.t_reached = 1.0;
    result.x = x;
    if (end.status == CorrectorStatus::kConverged &&
        linalg::norm_inf(x) <= opts.divergence_threshold) {
      result.status = PathStatus::kConverged;
    } else if (linalg::norm_inf(x) > opts.divergence_threshold) {
      result.status = PathStatus::kDiverged;
    } else {
      result.status = PathStatus::kFailed;
    }
  } else {
    result.x = x;
    result.t_reached = t;
    h.evaluate_into(x, t, ws.hws.get(), ws.h_val);
    result.residual = linalg::norm2(ws.h_val);
  }
  return result;
}

PathResult track_path(const Homotopy& h, const CVector& x0, const TrackerOptions& opts) {
  TrackerWorkspace ws(h);
  return track_path(h, x0, opts, ws);
}

std::vector<PathResult> track_all(const Homotopy& h, const std::vector<CVector>& starts,
                                  const TrackerOptions& opts) {
  std::vector<PathResult> results;
  results.reserve(starts.size());
  TrackerWorkspace ws(h);
  for (const auto& x0 : starts) results.push_back(track_path(h, x0, opts, ws));
  return results;
}

}  // namespace pph::homotopy
