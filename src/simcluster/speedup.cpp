#include "simcluster/speedup.hpp"

#include <numeric>
#include <sstream>

namespace pph::simcluster {

SpeedupStudy run_speedup_study(const std::vector<double>& durations,
                               const std::vector<std::size_t>& cpu_counts,
                               const CommModel& comm, SimAssignment static_assignment) {
  SpeedupStudy study;
  const double total_seconds = std::accumulate(durations.begin(), durations.end(), 0.0);
  study.sequential_minutes = total_seconds / 60.0;
  for (const std::size_t cpus : cpu_counts) {
    SpeedupRow row;
    row.cpus = cpus;
    const SimOutcome st = simulate_static(durations, cpus, static_assignment);
    const SimOutcome dy = simulate_dynamic(durations, cpus, comm);
    row.static_minutes = st.makespan / 60.0;
    row.dynamic_minutes = dy.makespan / 60.0;
    row.static_speedup = total_seconds / st.makespan;
    row.dynamic_speedup = total_seconds / dy.makespan;
    row.improvement_pct = 100.0 * (st.makespan - dy.makespan) / st.makespan;
    study.rows.push_back(row);
  }
  return study;
}

util::Table to_table(const SpeedupStudy& study, const std::string& title) {
  util::Table t(title);
  t.set_header({"#CPUs", "static time", "static speedup", "dynamic time", "dynamic speedup",
                "improvement"});
  for (const auto& row : study.rows) {
    t.add_row({util::Table::cell(row.cpus), util::Table::cell(row.static_minutes, 1),
               util::Table::cell(row.static_speedup, 1),
               util::Table::cell(row.dynamic_minutes, 1),
               util::Table::cell(row.dynamic_speedup, 1),
               util::Table::cell(row.improvement_pct, 2) + "%"});
  }
  return t;
}

std::string to_figure_series(const SpeedupStudy& study, const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << "# cpus  static_speedup  dynamic_speedup  optimal\n";
  for (const auto& row : study.rows) {
    os << row.cpus << "  " << row.static_speedup << "  " << row.dynamic_speedup << "  "
       << row.cpus << "\n";
  }
  return os.str();
}

}  // namespace pph::simcluster
