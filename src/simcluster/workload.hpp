#pragma once
// Workload models for the cluster simulator: multisets of per-path job
// durations, either synthesized from a parametric model of the path cost
// distribution or bootstrapped from measured per-path times of real runs.
//
// The paper's two regimes:
//  - cyclic 10-roots (Table I): 35,940 paths, about 1,000 diverge; the
//    divergent tail is much slower and has high variance, so static
//    assignment suffers and dynamic balancing wins more as CPUs grow.
//  - RPS (Table II): 9,216 paths, more than 8,000 diverge and "each of the
//    diverging paths spend almost the same time", so the variance is low
//    and dynamic balancing gains little.
//
// Model rationale and calibration: DESIGN.md section 4, EXPERIMENTS.md.

#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace pph::simcluster {

/// Parametric job-cost model: a lognormal body plus a (lognormal) divergent
/// tail with its own scale.
struct WorkloadModel {
  std::size_t jobs = 0;
  /// Fraction of paths that diverge to infinity.
  double divergent_fraction = 0.0;
  /// Lognormal parameters of the regular paths (of the log, in seconds).
  double body_mu = 0.0;
  double body_sigma = 0.3;
  /// Lognormal parameters of the divergent paths.
  double tail_mu = 0.0;
  double tail_sigma = 0.1;
  /// Divergent paths are placed in contiguous runs of this length in the
  /// start-index order (1 = scattered).  Clustered tails punish block-static
  /// assignment; see bench_sched_ablation.
  std::size_t cluster_size = 1;
};

/// Draw a full duration multiset from the model.
std::vector<double> synthesize(const WorkloadModel& model, util::Prng& rng);

/// Bootstrap `jobs` durations by resampling measured per-path seconds,
/// scaled by `scale` (e.g. to translate laptop path costs to 1 GHz CPU
/// costs).  Used to drive the Table I/II simulations from real runs of the
/// tracker on the same problem family.
std::vector<double> bootstrap(const std::vector<double>& measured, std::size_t jobs,
                              double scale, util::Prng& rng);

/// Model calibrated to the paper's cyclic 10-roots run: 35,940 paths, 480
/// user CPU minutes sequential, ~2.8% slow divergent tail.
WorkloadModel cyclic10_model();

/// Model calibrated to the paper's RPS run: 9,216 paths dominated by
/// >8,000 near-identical divergent paths.
WorkloadModel rps_model();

}  // namespace pph::simcluster
