#pragma once
// Discrete-event twin of the solve service (DESIGN.md section 10): replay
// an arrival trace and a per-request service-time list through a simulated
// FCFS master/worker cluster with the same bounded admission queue the
// thread runtime uses (sched::StreamJobSource), producing the SAME
// sched::ServiceStats struct -- a modeled and a measured service are
// compared field by field on a fixed trace, exactly as schedule_sim.hpp
// pairs with the batch runtime.
//
// Event ordering mirrors the runtime's serve loop: every arrival sharing a
// timestamp is admitted (or dropped) BEFORE any dispatch at that time, the
// way StreamJobSource::poll() runs to completion before the master wakes
// parked slaves.  This makes {arrivals, admitted, dropped, shed, completed,
// max_queue_depth} on a burst trace deterministic and bit-equal between
// simulator and runtime.

#include <optional>

#include "sched/api.hpp"
#include "simcluster/schedule_sim.hpp"

namespace pph::simcluster {

struct ServiceSimOptions {
  /// Admission queue bound and overflow behavior (sched::StreamOptions).
  std::size_t queue_capacity = 0;  // 0 = unbounded
  sched::AdmissionPolicy on_full = sched::AdmissionPolicy::kDrop;
  /// Dispatch/latency cost model shared with the batch simulators.
  CommModel comm;
  /// Close the stream at this time: later arrivals (and anything still
  /// blocked at the door) are shed, admitted work drains.
  std::optional<double> deadline_seconds;
  /// Request-reliability twin (DESIGN.md section 13): the SAME options
  /// struct the runtime takes.  Deadlines expire on the simulated clock
  /// (cancelling in-flight work, shedding queued work), failed attempts
  /// retry after the SAME deterministic backoff (sched::backoff_seconds
  /// with the same seed), and the brownout controller is the REAL
  /// sched::OverloadController fed the same depth-change sequence -- so on
  /// a fixed trace the reliability counters are bit-equal to the runtime's.
  /// Note: brownout hysteresis dwell uses the simulated clock, so parity
  /// traces run with min_dwell_seconds = 0 (time-free transitions).
  sched::ReliabilityOptions reliability;
  /// Scripted attempt failures: request i FAILS its first fails[i]
  /// attempts (missing entries never fail); each retry re-costs
  /// service_seconds[i].  This is the twin of a workload whose tracker
  /// deterministically fails (e.g. an impossible max_steps budget).
  std::vector<std::size_t> fails;
};

struct ServiceSimOutcome {
  /// Queueing metrics, same struct the thread runtime fills.
  sched::ServiceStats service;
  /// Reliability counters, same struct the thread runtime fills.
  sched::ReliabilityStats reliability;
  double makespan = 0.0;          // last result arrives at the master
  std::size_t dispatches = 0;     // one per admitted job (FCFS)
  std::vector<double> busy;       // per-worker service time
  double idle_fraction = 0.0;     // relative to the makespan
};

/// Simulate an FCFS solve service on `cpus` workers: request i arrives at
/// arrival_seconds[i] and needs service_seconds[i] of worker time.  The
/// two vectors must have equal length; arrivals must be non-decreasing.
ServiceSimOutcome simulate_service(const std::vector<double>& service_seconds,
                                   const std::vector<double>& arrival_seconds,
                                   std::size_t cpus,
                                   const ServiceSimOptions& opts = {});

}  // namespace pph::simcluster
