#pragma once
// Replay of the paper's two load-balancing policies over a job-duration
// multiset (paper section II-A), with an explicit communication model.
// Reproduces the wall time a cluster of `cpus` processors would need, from
// which the speedup tables and figures are generated.  The simulator and
// its communication model are described in DESIGN.md section 4.

#include "sched/session.hpp"
#include "simcluster/event_sim.hpp"
#include "simcluster/workload.hpp"

namespace pph::simcluster {

/// Communication cost model.
struct CommModel {
  /// Master CPU time consumed per job dispatch (dynamic only): the master
  /// serializes job handout, which caps dynamic scalability.
  double dispatch_overhead = 0.0;
  /// One-way message latency added to each job round trip (dynamic only).
  double message_latency = 0.0;
};

/// Index pre-assignment of the static policy.
enum class SimAssignment { kBlock, kCyclic };

struct SimOutcome {
  double makespan = 0.0;         // seconds
  double idle_fraction = 0.0;    // mean idle share across CPUs
  double master_busy = 0.0;      // dynamic only: dispatch time consumed
  std::size_t dispatches = 0;    // master job/chunk hand-outs
  std::size_t steals = 0;        // batch+steal only: worker-to-worker steals
};

/// Static balancing: jobs pre-assigned, no communication during the run.
SimOutcome simulate_static(const std::vector<double>& durations, std::size_t cpus,
                           SimAssignment assignment = SimAssignment::kBlock);

/// Dynamic master/slave balancing, first-come-first-served.  With one CPU
/// the run degenerates to sequential execution.  All CPUs track paths; the
/// master's dispatching is overlapped with computation (the paper uses
/// non-blocking MPI sends/receives for exactly this), so it costs
/// dispatch_overhead serialization per job rather than a dedicated CPU.
SimOutcome simulate_dynamic(const std::vector<double>& durations, std::size_t cpus,
                            const CommModel& comm = {});

/// Guided dynamic balancing (OpenMP schedule(guided) style): the master
/// hands out chunks of remaining/(factor*cpus) jobs instead of single jobs,
/// trading balance quality against dispatch traffic.  factor = remaining
/// jobs per chunk shrink rate; chunk size never falls below min_chunk.
SimOutcome simulate_guided(const std::vector<double>& durations, std::size_t cpus,
                           const CommModel& comm = {}, double factor = 2.0,
                           std::size_t min_chunk = 1);

/// Batched dispatch with work stealing (the thread runtime's run_batch,
/// DESIGN.md section 2): the master hands out guided-size batches; a worker
/// that drains its batch while the master pool is empty steals half of the
/// most loaded worker's unstarted jobs, paying steal latency (one brokerage
/// hop plus the worker-to-worker reply) instead of a master dispatch per
/// job.  Chunk sizing is shared with the thread scheduler
/// (sched::guided_chunk_size).
SimOutcome simulate_batch_steal(const std::vector<double>& durations, std::size_t cpus,
                                const CommModel& comm = {}, double factor = 2.0,
                                std::size_t min_chunk = 1);

/// Knobs of the policy-selected entry point below; the subset of
/// sched::SessionOptions the simulator models.  Defaults mirror
/// SessionOptions so simulate(policy, ...) projects the schedule
/// run_paths(..., {.policy = policy}) actually executes -- in particular
/// cyclic static assignment (the library default), unlike the speedup
/// studies, which pass kBlock explicitly to match the paper's tables.
struct SimPolicyOptions {
  SimAssignment assignment = SimAssignment::kCyclic;  // static only
  double factor = 2.0;                                // batch+steal only
  std::size_t min_chunk = 1;                          // batch+steal only
};

/// Unified entry point keyed by the scheduler sessions' Policy enum
/// (sched/session.hpp): the simulated and the real run of one experiment
/// are selected by the same type --
///   sched::Policy::kStatic     -> simulate_static
///   sched::Policy::kFCFS       -> simulate_dynamic
///   sched::Policy::kBatchSteal -> simulate_batch_steal
SimOutcome simulate(sched::Policy policy, const std::vector<double>& durations,
                    std::size_t cpus, const CommModel& comm = {},
                    const SimPolicyOptions& opts = {});

}  // namespace pph::simcluster
