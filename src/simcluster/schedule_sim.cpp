#include "simcluster/schedule_sim.hpp"

#include <numeric>
#include <stdexcept>

namespace pph::simcluster {

SimOutcome simulate_static(const std::vector<double>& durations, std::size_t cpus,
                           SimAssignment assignment) {
  if (cpus == 0) throw std::invalid_argument("simulate_static: need cpus > 0");
  Timeline timeline(cpus);
  const std::size_t n = durations.size();
  if (assignment == SimAssignment::kCyclic) {
    std::vector<double> clock(cpus, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cpu = i % cpus;
      timeline.record(cpu, clock[cpu], durations[i]);
      clock[cpu] += durations[i];
    }
  } else {
    const std::size_t base = n / cpus;
    const std::size_t extra = n % cpus;
    std::size_t next = 0;
    for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
      const std::size_t count = base + (cpu < extra ? 1 : 0);
      double clock = 0.0;
      for (std::size_t k = 0; k < count; ++k) {
        timeline.record(cpu, clock, durations[next]);
        clock += durations[next];
        ++next;
      }
    }
  }
  SimOutcome out;
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate_dynamic(const std::vector<double>& durations, std::size_t cpus,
                            const CommModel& comm) {
  if (cpus == 0) throw std::invalid_argument("simulate_dynamic: need cpus > 0");
  SimOutcome out;
  if (cpus == 1) {
    out.makespan = std::accumulate(durations.begin(), durations.end(), 0.0);
    return out;
  }
  // All CPUs track paths: the paper overlaps the master's dispatching with
  // computation via non-blocking MPI, so the master does not consume a
  // whole processor; its serialization shows up as dispatch_overhead.
  const std::size_t workers = cpus;
  Timeline timeline(workers);
  EventQueue ready;  // (time a worker asks for its next job, worker id)
  for (std::size_t w = 0; w < workers; ++w) ready.push(0.0, w);

  double master_free = 0.0;
  std::size_t next_job = 0;
  const std::size_t n = durations.size();
  while (!ready.empty() && next_job < n) {
    const auto [ask_time, worker] = ready.pop();
    // The master serializes dispatches: it serves requests in arrival order
    // and spends dispatch_overhead CPU time per job.
    const double dispatch_done = std::max(master_free, ask_time) + comm.dispatch_overhead;
    master_free = dispatch_done;
    out.master_busy += comm.dispatch_overhead;
    const double start = dispatch_done + comm.message_latency;
    const double duration = durations[next_job++];
    timeline.record(worker, start, duration);
    // The result travels back before the worker can ask again.
    ready.push(start + duration + comm.message_latency, worker);
  }
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate_guided(const std::vector<double>& durations, std::size_t cpus,
                           const CommModel& comm, double factor, std::size_t min_chunk) {
  if (cpus == 0) throw std::invalid_argument("simulate_guided: need cpus > 0");
  if (factor <= 0.0) throw std::invalid_argument("simulate_guided: factor must be positive");
  SimOutcome out;
  if (cpus == 1) {
    out.makespan = std::accumulate(durations.begin(), durations.end(), 0.0);
    return out;
  }
  Timeline timeline(cpus);
  EventQueue ready;
  for (std::size_t w = 0; w < cpus; ++w) ready.push(0.0, w);

  double master_free = 0.0;
  std::size_t next_job = 0;
  const std::size_t n = durations.size();
  while (!ready.empty() && next_job < n) {
    const auto [ask_time, worker] = ready.pop();
    const double dispatch_done = std::max(master_free, ask_time) + comm.dispatch_overhead;
    master_free = dispatch_done;
    out.master_busy += comm.dispatch_overhead;
    // Guided chunk: a share of the remaining work, decaying geometrically.
    const std::size_t remaining = n - next_job;
    std::size_t chunk = static_cast<std::size_t>(
        static_cast<double>(remaining) / (factor * static_cast<double>(cpus)));
    chunk = std::max(chunk, min_chunk);
    chunk = std::min(chunk, remaining);
    double start = dispatch_done + comm.message_latency;
    for (std::size_t k = 0; k < chunk; ++k) {
      const double duration = durations[next_job++];
      timeline.record(worker, start, duration);
      start += duration;
    }
    ready.push(start + comm.message_latency, worker);
  }
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

}  // namespace pph::simcluster
