#include "simcluster/schedule_sim.hpp"

#include <deque>
#include <numeric>
#include <stdexcept>

#include "sched/job_pool.hpp"

namespace pph::simcluster {

SimOutcome simulate_static(const std::vector<double>& durations, std::size_t cpus,
                           SimAssignment assignment) {
  if (cpus == 0) throw std::invalid_argument("simulate_static: need cpus > 0");
  Timeline timeline(cpus);
  const std::size_t n = durations.size();
  if (assignment == SimAssignment::kCyclic) {
    std::vector<double> clock(cpus, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cpu = i % cpus;
      timeline.record(cpu, clock[cpu], durations[i]);
      clock[cpu] += durations[i];
    }
  } else {
    const std::size_t base = n / cpus;
    const std::size_t extra = n % cpus;
    std::size_t next = 0;
    for (std::size_t cpu = 0; cpu < cpus; ++cpu) {
      const std::size_t count = base + (cpu < extra ? 1 : 0);
      double clock = 0.0;
      for (std::size_t k = 0; k < count; ++k) {
        timeline.record(cpu, clock, durations[next]);
        clock += durations[next];
        ++next;
      }
    }
  }
  SimOutcome out;
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate_dynamic(const std::vector<double>& durations, std::size_t cpus,
                            const CommModel& comm) {
  if (cpus == 0) throw std::invalid_argument("simulate_dynamic: need cpus > 0");
  SimOutcome out;
  if (cpus == 1) {
    out.makespan = std::accumulate(durations.begin(), durations.end(), 0.0);
    return out;
  }
  // All CPUs track paths: the paper overlaps the master's dispatching with
  // computation via non-blocking MPI, so the master does not consume a
  // whole processor; its serialization shows up as dispatch_overhead.
  const std::size_t workers = cpus;
  Timeline timeline(workers);
  EventQueue ready;  // (time a worker asks for its next job, worker id)
  for (std::size_t w = 0; w < workers; ++w) ready.push(0.0, w);

  double master_free = 0.0;
  std::size_t next_job = 0;
  const std::size_t n = durations.size();
  while (!ready.empty() && next_job < n) {
    const auto [ask_time, worker] = ready.pop();
    // The master serializes dispatches: it serves requests in arrival order
    // and spends dispatch_overhead CPU time per job.
    const double dispatch_done = std::max(master_free, ask_time) + comm.dispatch_overhead;
    master_free = dispatch_done;
    out.master_busy += comm.dispatch_overhead;
    ++out.dispatches;
    const double start = dispatch_done + comm.message_latency;
    const double duration = durations[next_job++];
    timeline.record(worker, start, duration);
    // The result travels back before the worker can ask again.
    ready.push(start + duration + comm.message_latency, worker);
  }
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate_guided(const std::vector<double>& durations, std::size_t cpus,
                           const CommModel& comm, double factor, std::size_t min_chunk) {
  if (cpus == 0) throw std::invalid_argument("simulate_guided: need cpus > 0");
  if (factor <= 0.0) throw std::invalid_argument("simulate_guided: factor must be positive");
  SimOutcome out;
  if (cpus == 1) {
    out.makespan = std::accumulate(durations.begin(), durations.end(), 0.0);
    return out;
  }
  Timeline timeline(cpus);
  EventQueue ready;
  for (std::size_t w = 0; w < cpus; ++w) ready.push(0.0, w);

  double master_free = 0.0;
  std::size_t next_job = 0;
  const std::size_t n = durations.size();
  while (!ready.empty() && next_job < n) {
    const auto [ask_time, worker] = ready.pop();
    const double dispatch_done = std::max(master_free, ask_time) + comm.dispatch_overhead;
    master_free = dispatch_done;
    out.master_busy += comm.dispatch_overhead;
    ++out.dispatches;
    // Guided chunk: a share of the remaining work, decaying geometrically
    // (sizing shared with the thread schedulers).
    const std::size_t chunk = sched::guided_chunk_size(n - next_job, cpus, factor, min_chunk);
    double start = dispatch_done + comm.message_latency;
    for (std::size_t k = 0; k < chunk; ++k) {
      const double duration = durations[next_job++];
      timeline.record(worker, start, duration);
      start += duration;
    }
    ready.push(start + comm.message_latency, worker);
  }
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate_batch_steal(const std::vector<double>& durations, std::size_t cpus,
                                const CommModel& comm, double factor, std::size_t min_chunk) {
  if (cpus == 0) throw std::invalid_argument("simulate_batch_steal: need cpus > 0");
  if (factor <= 0.0) {
    throw std::invalid_argument("simulate_batch_steal: factor must be positive");
  }
  SimOutcome out;
  if (cpus == 1) {
    out.makespan = std::accumulate(durations.begin(), durations.end(), 0.0);
    return out;
  }
  // Per-worker queues of unstarted jobs; events fire once per job so a
  // victim's remaining batch is visible at steal time.
  Timeline timeline(cpus);
  EventQueue ready;
  std::vector<std::deque<std::size_t>> local(cpus);
  for (std::size_t w = 0; w < cpus; ++w) ready.push(0.0, w);

  double master_free = 0.0;
  std::size_t next_job = 0;
  const std::size_t n = durations.size();
  while (!ready.empty()) {
    const auto [t, worker] = ready.pop();
    if (!local[worker].empty()) {
      const std::size_t job = local[worker].front();
      local[worker].pop_front();
      timeline.record(worker, t, durations[job]);
      ready.push(t + durations[job], worker);
      continue;
    }
    if (next_job < n) {
      // Refill from the master: request hop, serialized dispatch, batch hop.
      const double dispatch_done =
          std::max(master_free, t + comm.message_latency) + comm.dispatch_overhead;
      master_free = dispatch_done;
      out.master_busy += comm.dispatch_overhead;
      ++out.dispatches;
      const std::size_t chunk = sched::guided_chunk_size(n - next_job, cpus, factor, min_chunk);
      for (std::size_t k = 0; k < chunk; ++k) local[worker].push_back(next_job++);
      ready.push(dispatch_done + comm.message_latency, worker);
      continue;
    }
    // Master pool drained: steal half of the most loaded worker's unstarted
    // jobs.  Cost is one small brokerage hop plus the worker-to-worker bulk
    // reply -- no serialized master dispatch.
    std::size_t victim = worker, best = 0;
    for (std::size_t v = 0; v < cpus; ++v) {
      if (v != worker && local[v].size() > best) {
        best = local[v].size();
        victim = v;
      }
    }
    if (best == 0) continue;  // nothing left anywhere: this worker retires
    // ceil(best/2) here equals the runtime's floor(mine/2): a busy victim's
    // `mine` includes the path it runs next, which this model holds
    // in-flight outside `local` (mine == local + 1, and a victim whose only
    // path is in flight refuses in both: best == 0 here, donate 0 there).
    for (std::size_t k = (best + 1) / 2; k > 0; --k) {
      local[worker].push_back(local[victim].back());
      local[victim].pop_back();
    }
    ++out.steals;
    // The thief starts its first stolen job immediately (exactly like the
    // thread runtime, where a slave tracks the moment the reply lands).
    // This also makes every steal productive, so idle workers can never
    // livelock passing an unstarted job around the pool.
    const double start = t + 2.0 * comm.message_latency;
    const std::size_t job = local[worker].front();
    local[worker].pop_front();
    timeline.record(worker, start, durations[job]);
    ready.push(start + durations[job], worker);
  }
  out.makespan = timeline.makespan();
  out.idle_fraction = timeline.idle_fraction();
  return out;
}

SimOutcome simulate(sched::Policy policy, const std::vector<double>& durations,
                    std::size_t cpus, const CommModel& comm, const SimPolicyOptions& opts) {
  switch (policy) {
    case sched::Policy::kStatic:
      return simulate_static(durations, cpus, opts.assignment);
    case sched::Policy::kFCFS:
      return simulate_dynamic(durations, cpus, comm);
    case sched::Policy::kBatchSteal:
      return simulate_batch_steal(durations, cpus, comm, opts.factor, opts.min_chunk);
  }
  throw std::invalid_argument("simulate: unknown policy");
}

}  // namespace pph::simcluster
