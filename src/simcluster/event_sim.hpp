#pragma once
// Minimal discrete-event machinery for the scheduler simulations (DESIGN.md
// section 4): a min-heap of (time, actor) events and a per-CPU timeline
// recorder.

#include <cstdint>
#include <queue>
#include <vector>

namespace pph::simcluster {

/// Min-heap of (ready time, actor id).
class EventQueue {
 public:
  void push(double time, std::size_t actor) { heap_.push({time, actor}); }
  bool empty() const { return heap_.empty(); }
  std::pair<double, std::size_t> pop() {
    auto top = heap_.top();
    heap_.pop();
    return {top.time, top.actor};
  }

 private:
  struct Event {
    double time;
    std::size_t actor;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
};

/// Accumulates per-CPU busy time and the overall makespan.
class Timeline {
 public:
  explicit Timeline(std::size_t cpus) : busy_(cpus, 0.0), finish_(cpus, 0.0) {}

  void record(std::size_t cpu, double start, double duration) {
    busy_[cpu] += duration;
    if (start + duration > finish_[cpu]) finish_[cpu] = start + duration;
  }

  double makespan() const {
    double m = 0.0;
    for (const double f : finish_) m = std::max(m, f);
    return m;
  }

  const std::vector<double>& busy() const { return busy_; }

  /// Mean idle fraction relative to the makespan (load-balance quality).
  double idle_fraction() const {
    const double m = makespan();
    if (m <= 0.0 || busy_.empty()) return 0.0;
    double idle = 0.0;
    for (const double b : busy_) idle += (m - b) / m;
    return idle / static_cast<double>(busy_.size());
  }

 private:
  std::vector<double> busy_;
  std::vector<double> finish_;
};

}  // namespace pph::simcluster
