// event_sim is header-only; this translation unit pins the module into the
// pph_simcluster library and provides a home for future out-of-line code.
#include "simcluster/event_sim.hpp"
