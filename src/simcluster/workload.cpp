#include "simcluster/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pph::simcluster {

std::vector<double> synthesize(const WorkloadModel& model, util::Prng& rng) {
  if (model.jobs == 0) throw std::invalid_argument("synthesize: empty workload");
  std::vector<double> durations;
  durations.reserve(model.jobs);
  const auto divergent =
      static_cast<std::size_t>(std::llround(model.divergent_fraction *
                                            static_cast<double>(model.jobs)));
  // Divergent paths are clustered in start-index order: roots of a start
  // system are enumerated in structured order, so expensive paths arrive in
  // runs rather than uniformly -- which is what makes block-static
  // assignment suffer (see bench_sched_ablation).
  for (std::size_t i = 0; i < model.jobs; ++i) {
    durations.push_back(rng.lognormal(model.body_mu, model.body_sigma));
  }
  if (divergent > 0) {
    // One run per equal segment of the index space: clusters never overlap,
    // so the divergent count is exact.
    const std::size_t run_length = std::max<std::size_t>(1, model.cluster_size);
    const std::size_t clusters =
        std::min(std::max<std::size_t>(1, divergent / run_length), divergent);
    const std::size_t segment = model.jobs / clusters;
    std::size_t placed = 0;
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::size_t run =
          std::min((divergent - placed + (clusters - c - 1)) / (clusters - c), segment);
      const std::size_t seg_begin = c * segment;
      const std::size_t slack = segment - run;
      const std::size_t start = seg_begin + (slack ? rng.uniform_index(slack + 1) : 0);
      for (std::size_t k = 0; k < run; ++k) {
        durations[start + k] = rng.lognormal(model.tail_mu, model.tail_sigma);
      }
      placed += run;
    }
  }
  return durations;
}

std::vector<double> bootstrap(const std::vector<double>& measured, std::size_t jobs,
                              double scale, util::Prng& rng) {
  if (measured.empty()) throw std::invalid_argument("bootstrap: no measured durations");
  std::vector<double> durations;
  durations.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    durations.push_back(scale * measured[rng.uniform_index(measured.size())]);
  }
  return durations;
}

WorkloadModel cyclic10_model() {
  // Calibration (DESIGN.md section 4; constants table in EXPERIMENTS.md):
  // 35,940 paths, 480 user CPU
  // minutes sequential on the 1 GHz Platinum nodes, about 1,000 divergent
  // paths carrying a slow, high-variance tail.
  WorkloadModel m;
  m.jobs = 35940;
  m.divergent_fraction = 1000.0 / 35940.0;
  // Body mean ~0.29 s (log mean adjusted for sigma), tail mean ~18.5 s.
  m.body_mu = std::log(0.29) - 0.5 * 0.35 * 0.35;
  m.body_sigma = 0.35;
  m.tail_mu = std::log(18.5) - 0.5 * 0.35 * 0.35;
  m.tail_sigma = 0.35;
  // Mild clustering: roots of unity are enumerated in structured order, so
  // divergent paths come in short runs.
  m.cluster_size = 4;
  return m;
}

WorkloadModel rps_model() {
  // 9,216 paths; >8,000 divergent, "each of the diverging paths spend
  // almost the same time"; extrapolated sequential time 3,111 CPU minutes.
  WorkloadModel m;
  m.jobs = 9216;
  m.divergent_fraction = 8192.0 / 9216.0;
  // The 1,024 finite paths are fast; the >8,000 divergent paths dominate
  // the total time and all cost nearly the same.
  m.body_mu = std::log(2.0) - 0.5 * 0.40 * 0.40;
  m.body_sigma = 0.40;
  m.tail_mu = std::log(22.5) - 0.5 * 0.06 * 0.06;
  m.tail_sigma = 0.06;
  return m;
}

}  // namespace pph::simcluster
