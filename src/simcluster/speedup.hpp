#pragma once
// Speedup tables and figure series in the format of the paper's Tables I/II
// and Figures 1/2.  Paper-vs-reproduced numbers are recorded in
// EXPERIMENTS.md.

#include <string>

#include "simcluster/schedule_sim.hpp"
#include "util/table.hpp"

namespace pph::simcluster {

struct SpeedupRow {
  std::size_t cpus = 0;
  double static_minutes = 0.0;
  double static_speedup = 0.0;
  double dynamic_minutes = 0.0;
  double dynamic_speedup = 0.0;
  /// (static - dynamic) / static, the paper's "Improvement dynamic/static".
  double improvement_pct = 0.0;
};

struct SpeedupStudy {
  double sequential_minutes = 0.0;
  std::vector<SpeedupRow> rows;
};

/// Run both policies for every CPU count.  `durations` are seconds; table
/// times are reported in minutes like the paper's.
SpeedupStudy run_speedup_study(const std::vector<double>& durations,
                               const std::vector<std::size_t>& cpu_counts,
                               const CommModel& comm = {},
                               SimAssignment static_assignment = SimAssignment::kBlock);

/// Render in the layout of the paper's tables.
util::Table to_table(const SpeedupStudy& study, const std::string& title);

/// Render the figure series (CPUs vs speedup for static / dynamic /
/// optimal), one line per sample point, gnuplot-ready.
std::string to_figure_series(const SpeedupStudy& study, const std::string& title);

}  // namespace pph::simcluster
