#include "simcluster/service_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sched/reliability.hpp"

namespace pph::simcluster {

namespace {

struct Completion {
  double time;
  std::size_t worker;
  std::size_t job;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

ServiceSimOutcome simulate_service(const std::vector<double>& service_seconds,
                                   const std::vector<double>& arrival_seconds,
                                   std::size_t cpus, const ServiceSimOptions& opts) {
  if (cpus == 0) throw std::invalid_argument("simulate_service: need at least one worker");
  if (service_seconds.size() != arrival_seconds.size())
    throw std::invalid_argument(
        "simulate_service: one service time per arrival required");
  if (!std::is_sorted(arrival_seconds.begin(), arrival_seconds.end()))
    throw std::invalid_argument("simulate_service: arrivals must be non-decreasing");
  sched::validate_reliability(opts.reliability, "simulate_service");

  const std::size_t n = arrival_seconds.size();
  ServiceSimOutcome out;
  out.busy.assign(cpus, 0.0);

  std::deque<std::size_t> door;    // arrived, blocked by a full queue (kBlock)
  std::deque<std::size_t> ready;   // admitted, awaiting dispatch
  std::vector<double> admit_time(n, 0.0);
  std::vector<std::size_t> idle;   // free workers (LIFO: reuse the hot one)
  for (std::size_t w = cpus; w > 0; --w) idle.push_back(w - 1);
  std::priority_queue<Completion, std::vector<Completion>, std::greater<Completion>>
      completions;

  // Reliability twin state (DESIGN.md section 13): the SAME deadline/retry
  // bookkeeping and brownout controller classes the runtime uses, fed the
  // same event sequence, so the counters agree bit-for-bit on fixed traces.
  const bool rel_on = opts.reliability.enabled;
  std::optional<sched::ReliabilityState> rel;
  std::optional<sched::OverloadController> controller;
  if (rel_on) {
    rel.emplace(opts.reliability);
    if (opts.reliability.overload.enabled) controller.emplace(opts.reliability.overload);
  }
  std::vector<std::size_t> attempts(rel_on ? n : 0, 0);
  std::unordered_map<std::size_t, std::size_t> in_flight;  // job -> worker
  std::unordered_set<std::size_t> voided;  // cancelled mid-flight: skip completion

  double master_free = 0.0;        // dispatch serialization point
  double queue_area = 0.0;
  double last_event = 0.0;
  double makespan = 0.0;
  std::size_t next_arrival = 0;

  const bool bounded = opts.queue_capacity > 0;
  const auto& deadline = opts.deadline_seconds;
  const auto closed_at = [&](double t) {
    return deadline.has_value() && t >= *deadline;
  };

  const auto note_queue_change = [&](double t) {
    queue_area += static_cast<double>(ready.size()) * (t - last_event);
    last_event = t;
  };
  const auto observe_depth = [&](double t) {
    if (controller.has_value()) controller->observe(t, ready.size());
  };
  const auto shedding = [&] {
    return controller.has_value() &&
           controller->at_least(sched::BrownoutLevel::kShedding);
  };
  const auto admit = [&](std::size_t job, double t) {
    note_queue_change(t);
    ready.push_back(job);
    ++out.service.admitted;
    out.service.max_queue_depth = std::max(out.service.max_queue_depth, ready.size());
    admit_time[job] = t;
    if (rel.has_value()) rel->on_admit(job, t);
    observe_depth(t);
  };
  const auto dispatch_all = [&](double t) {
    while (!idle.empty() && !ready.empty()) {
      const std::size_t w = idle.back();
      idle.pop_back();
      const std::size_t job = ready.front();
      ready.pop_front();
      note_queue_change(t);
      observe_depth(t);
      // The master serializes hand-outs (dispatch_overhead each) and each
      // leg of the round trip pays message_latency -- the CommModel the
      // batch simulators use.
      const double handed = std::max(t, master_free) + opts.comm.dispatch_overhead;
      master_free = handed;
      const double start = handed + opts.comm.message_latency;
      const double finish = start + service_seconds[job] + opts.comm.message_latency;
      out.busy[w] += service_seconds[job];
      ++out.dispatches;
      in_flight[job] = w;
      completions.push({finish, w, job});
    }
  };
  // A terminal genuine result (converged, or an attempt budget exhausted):
  // the runtime's consume() path -- completed, a sojourn sample, and the
  // sojourn EWMA feeding the brownout controller.
  const auto complete = [&](std::size_t job, double t) {
    ++out.service.completed;
    const double sojourn = t - admit_time[job];
    out.service.sojourn.add(sojourn);
    if (controller.has_value()) controller->note_sojourn(sojourn);
    if (rel.has_value()) rel->on_terminal(job);
  };
  // The runtime's reliability_sweep: re-admit due retries, then expire due
  // deadlines (cancelling in-flight work, dropping queued work, discarding
  // pending retries), counting each expiry exactly once.
  const auto sweep = [&](double t) {
    if (!rel.has_value()) return;
    while (const auto due = rel->pop_due_retry(t)) {
      note_queue_change(t);
      ready.push_back(*due);
      out.service.max_queue_depth = std::max(out.service.max_queue_depth, ready.size());
      observe_depth(t);
    }
    while (const auto due = rel->pop_due_deadline(t)) {
      const std::size_t job = *due;
      if (const auto fl = in_flight.find(job); fl != in_flight.end()) {
        // Cancelled mid-flight: the worker is freed now (the runtime's
        // tracker stops within one step of the poll) and its original
        // completion event is voided.
        idle.push_back(fl->second);
        voided.insert(job);
        in_flight.erase(fl);
        ++out.reliability.cancelled;
      } else if (const auto q = std::find(ready.begin(), ready.end(), job);
                 q != ready.end()) {
        note_queue_change(t);
        ready.erase(q);
        observe_depth(t);
      } else if (!rel->cancel_retry(job)) {
        continue;  // went terminal between heap push and pop
      }
      ++out.service.expired;
      rel->on_terminal(job);
    }
  };
  const auto fails_of = [&](std::size_t job) {
    return job < opts.fails.size() ? opts.fails[job] : std::size_t{0};
  };

  for (;;) {
    // Next event: the earliest of the next arrival (while the stream is
    // open), the next reliability timer (deadline expiry or retry
    // eligibility), and the next completion.  Arrivals win ties so that
    // every arrival sharing a timestamp is admitted before dispatch, the
    // way the runtime's poll() runs to completion first; the reliability
    // sweep beats completions at the same instant, the way the runtime
    // sweeps before draining its mailbox.
    const bool have_arrival =
        next_arrival < n && !closed_at(arrival_seconds[next_arrival]);
    const bool have_completion = !completions.empty();
    // Absolute time of the next timer (all sim times are >= 0, so asking
    // "seconds past t=0" yields the event's clock time; stale heap tops only
    // wake the loop early for a no-op sweep, never late).
    const double tr = rel.has_value() ? rel->seconds_until_next_event(0.0)
                                      : std::numeric_limits<double>::infinity();
    const bool have_rel = std::isfinite(tr);
    if (!have_arrival && !have_completion && !have_rel) break;
    const double ta = have_arrival ? arrival_seconds[next_arrival]
                                   : std::numeric_limits<double>::infinity();
    const double tc = have_completion ? completions.top().time
                                      : std::numeric_limits<double>::infinity();
    if (ta <= tc && ta <= tr) {
      // Admit the whole same-timestamp batch, then shed/drop/hold the
      // overflow: brownout shedding outranks the capacity bound, exactly as
      // StreamJobSource::poll() sheds the door before the kDrop overflow
      // check.  Each admit feeds the controller, so shedding can trip
      // mid-batch.
      const double t = ta;
      while (next_arrival < n && arrival_seconds[next_arrival] == t) {
        const std::size_t job = next_arrival++;
        ++out.service.arrivals;
        if (shedding()) {
          ++out.service.shed;
          ++out.reliability.brownout_shed;
        } else if (bounded && ready.size() >= opts.queue_capacity) {
          if (opts.on_full == sched::AdmissionPolicy::kDrop) {
            ++out.service.dropped;
          } else {
            door.push_back(job);
          }
        } else {
          admit(job, t);
        }
      }
      sweep(t);  // deadline-0 budgets expire AT admission, before dispatch
      dispatch_all(t);
    } else if (tr <= tc) {
      sweep(tr);          // expiries free workers, retries refill the queue...
      dispatch_all(tr);   // ...and freed capacity dispatches immediately
    } else {
      const Completion c = completions.top();
      completions.pop();
      if (voided.erase(c.job) > 0) continue;  // cancelled; worker already freed
      in_flight.erase(c.job);
      idle.push_back(c.worker);
      makespan = std::max(makespan, c.time);
      bool terminal = true;
      if (rel_on && attempts[c.job] < fails_of(c.job)) {
        // This attempt failed.  With budget left (and the deadline still
        // ahead) the runtime withholds the result and re-admits after the
        // deterministic backoff; the exhausted attempt delivers its genuine
        // kFailed result, which counts as completed.
        const std::size_t used = ++attempts[c.job];
        const auto& budget = opts.reliability.budget;
        const auto dl = rel->deadline_of(c.job);
        if (used < budget.max_attempts && (!dl.has_value() || c.time < *dl)) {
          const double wait = sched::backoff_seconds(budget, opts.reliability.jitter_seed,
                                                     c.job, used);
          rel->schedule_retry(c.job, c.time + wait);
          ++out.reliability.retried;
          out.reliability.backoff_wait.add(wait);
          terminal = false;
        }
      }
      if (terminal) complete(c.job, c.time);
      // A free queue slot lets the door drain -- unless the deadline has
      // closed the stream.
      while (!door.empty() && !closed_at(c.time) && !shedding() &&
             (!bounded || ready.size() < opts.queue_capacity)) {
        admit(door.front(), c.time);
        door.pop_front();
      }
      dispatch_all(c.time);
    }
  }

  // Shed everything the deadline kept out: arrivals never reached plus
  // requests still blocked at the door.
  out.service.shed += (n - next_arrival) + door.size();

  if (controller.has_value()) {
    out.reliability.brownout_transitions = controller->transitions().size();
    out.reliability.max_brownout_level = controller->max_level_reached();
  }

  out.makespan = makespan;
  const double horizon = std::max(makespan, last_event);
  out.service.avg_queue_depth = horizon > 0.0 ? queue_area / horizon : 0.0;
  if (makespan > 0.0) {
    double idle_share = 0.0;
    for (const double b : out.busy) idle_share += (makespan - b) / makespan;
    out.idle_fraction = idle_share / static_cast<double>(cpus);
  }
  return out;
}

}  // namespace pph::simcluster
