#include "simcluster/service_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace pph::simcluster {

namespace {

struct Completion {
  double time;
  std::size_t worker;
  std::size_t job;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

ServiceSimOutcome simulate_service(const std::vector<double>& service_seconds,
                                   const std::vector<double>& arrival_seconds,
                                   std::size_t cpus, const ServiceSimOptions& opts) {
  if (cpus == 0) throw std::invalid_argument("simulate_service: need at least one worker");
  if (service_seconds.size() != arrival_seconds.size())
    throw std::invalid_argument(
        "simulate_service: one service time per arrival required");
  if (!std::is_sorted(arrival_seconds.begin(), arrival_seconds.end()))
    throw std::invalid_argument("simulate_service: arrivals must be non-decreasing");

  const std::size_t n = arrival_seconds.size();
  ServiceSimOutcome out;
  out.busy.assign(cpus, 0.0);

  std::deque<std::size_t> door;    // arrived, blocked by a full queue (kBlock)
  std::deque<std::size_t> ready;   // admitted, awaiting dispatch
  std::vector<double> admit_time(n, 0.0);
  std::vector<std::size_t> idle;   // free workers (LIFO: reuse the hot one)
  for (std::size_t w = cpus; w > 0; --w) idle.push_back(w - 1);
  std::priority_queue<Completion, std::vector<Completion>, std::greater<Completion>>
      completions;

  double master_free = 0.0;        // dispatch serialization point
  double queue_area = 0.0;
  double last_event = 0.0;
  double makespan = 0.0;
  std::size_t next_arrival = 0;

  const bool bounded = opts.queue_capacity > 0;
  const auto& deadline = opts.deadline_seconds;
  const auto closed_at = [&](double t) {
    return deadline.has_value() && t >= *deadline;
  };

  const auto note_queue_change = [&](double t) {
    queue_area += static_cast<double>(ready.size()) * (t - last_event);
    last_event = t;
  };
  const auto admit = [&](std::size_t job, double t) {
    note_queue_change(t);
    ready.push_back(job);
    ++out.service.admitted;
    out.service.max_queue_depth = std::max(out.service.max_queue_depth, ready.size());
    admit_time[job] = t;
  };
  const auto dispatch_all = [&](double t) {
    while (!idle.empty() && !ready.empty()) {
      const std::size_t w = idle.back();
      idle.pop_back();
      const std::size_t job = ready.front();
      ready.pop_front();
      note_queue_change(t);
      // The master serializes hand-outs (dispatch_overhead each) and each
      // leg of the round trip pays message_latency -- the CommModel the
      // batch simulators use.
      const double handed = std::max(t, master_free) + opts.comm.dispatch_overhead;
      master_free = handed;
      const double start = handed + opts.comm.message_latency;
      const double finish = start + service_seconds[job] + opts.comm.message_latency;
      out.busy[w] += service_seconds[job];
      ++out.dispatches;
      completions.push({finish, w, job});
    }
  };

  for (;;) {
    // Next event: the earlier of the next arrival (while the stream is
    // open) and the next completion.  Arrivals win ties so that every
    // arrival sharing a timestamp is admitted before dispatch, the way the
    // runtime's poll() runs to completion first.
    const bool have_arrival =
        next_arrival < n && !closed_at(arrival_seconds[next_arrival]);
    const bool have_completion = !completions.empty();
    if (!have_arrival && !have_completion) break;
    const double ta = have_arrival ? arrival_seconds[next_arrival]
                                   : std::numeric_limits<double>::infinity();
    const double tc = have_completion ? completions.top().time
                                      : std::numeric_limits<double>::infinity();
    if (ta <= tc) {
      // Admit the whole same-timestamp batch, then drop/hold the overflow.
      const double t = ta;
      while (next_arrival < n && arrival_seconds[next_arrival] == t) {
        const std::size_t job = next_arrival++;
        ++out.service.arrivals;
        if (bounded && ready.size() >= opts.queue_capacity) {
          if (opts.on_full == sched::AdmissionPolicy::kDrop) {
            ++out.service.dropped;
          } else {
            door.push_back(job);
          }
        } else {
          admit(job, t);
        }
      }
      dispatch_all(t);
    } else {
      const Completion c = completions.top();
      completions.pop();
      ++out.service.completed;
      out.service.sojourn.add(c.time - admit_time[c.job]);
      makespan = std::max(makespan, c.time);
      idle.push_back(c.worker);
      // A free queue slot lets the door drain -- unless the deadline has
      // closed the stream.
      while (!door.empty() && !closed_at(c.time) &&
             (!bounded || ready.size() < opts.queue_capacity)) {
        admit(door.front(), c.time);
        door.pop_front();
      }
      dispatch_all(c.time);
    }
  }

  // Shed everything the deadline kept out: arrivals never reached plus
  // requests still blocked at the door.
  out.service.shed += (n - next_arrival) + door.size();

  out.makespan = makespan;
  const double horizon = std::max(makespan, last_event);
  out.service.avg_queue_depth = horizon > 0.0 ? queue_area / horizon : 0.0;
  if (makespan > 0.0) {
    double idle_share = 0.0;
    for (const double b : out.busy) idle_share += (makespan - b) / makespan;
    out.idle_fraction = idle_share / static_cast<double>(cpus);
  }
  return out;
}

}  // namespace pph::simcluster
