#pragma once
// Double-double ("compensated") arithmetic: an unevaluated sum hi + lo of
// two doubles carrying ~32 significant decimal digits.  The endgame
// corrector uses it for mixed-precision iterative refinement of the Newton
// update: the linear-system residual r = J*dx + H is accumulated in
// double-double, then one extra back-substitution with the already-factored
// LU recovers the digits a near-singular Jacobian destroys (see
// corrector.cpp and DESIGN.md section 9).
//
// The error-free transformations are the classical ones (Dekker 1971,
// Knuth TAOCP 2); two_prod uses FMA, which every targeted toolchain
// provides in hardware.

#include <cmath>
#include <complex>

namespace pph::util {

/// Error-free sum: a + b = s + e exactly, s = fl(a + b).
struct TwoSum {
  double s, e;
};

inline TwoSum two_sum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  const double e = (a - (s - bb)) + (b - bb);
  return {s, e};
}

/// Error-free sum under |a| >= |b| (one flop cheaper); caller guarantees
/// the magnitude ordering.
inline TwoSum quick_two_sum(double a, double b) {
  const double s = a + b;
  const double e = b - (s - a);
  return {s, e};
}

/// Error-free product: a * b = p + e exactly, p = fl(a * b).
inline TwoSum two_prod(double a, double b) {
  const double p = a * b;
  const double e = std::fma(a, b, -p);
  return {p, e};
}

/// Unevaluated sum hi + lo with |lo| <= ulp(hi)/2.
struct DD {
  double hi = 0.0;
  double lo = 0.0;

  DD() = default;
  DD(double h) : hi(h) {}
  DD(double h, double l) : hi(h), lo(l) {}

  double to_double() const { return hi + lo; }
};

inline DD dd_add(const DD& a, const DD& b) {
  TwoSum s = two_sum(a.hi, b.hi);
  const TwoSum t = two_sum(a.lo, b.lo);
  s.e += t.s;
  s = quick_two_sum(s.s, s.e);
  s.e += t.e;
  s = quick_two_sum(s.s, s.e);
  return {s.s, s.e};
}

inline DD dd_add(const DD& a, double b) {
  TwoSum s = two_sum(a.hi, b);
  s.e += a.lo;
  s = quick_two_sum(s.s, s.e);
  return {s.s, s.e};
}

inline DD dd_sub(const DD& a, const DD& b) { return dd_add(a, DD{-b.hi, -b.lo}); }

inline DD dd_mul(const DD& a, const DD& b) {
  TwoSum p = two_prod(a.hi, b.hi);
  p.e += a.hi * b.lo + a.lo * b.hi;
  p = quick_two_sum(p.s, p.e);
  return {p.s, p.e};
}

inline DD dd_mul(double a, double b) {
  const TwoSum p = two_prod(a, b);
  return {p.s, p.e};
}

/// Complex double-double: real and imaginary parts carried separately.
struct DDComplex {
  DD re, im;

  DDComplex() = default;
  DDComplex(const std::complex<double>& z) : re(z.real()), im(z.imag()) {}
  DDComplex(DD r, DD i) : re(r), im(i) {}

  std::complex<double> to_complex() const { return {re.to_double(), im.to_double()}; }
};

inline DDComplex ddc_add(const DDComplex& a, const DDComplex& b) {
  return {dd_add(a.re, b.re), dd_add(a.im, b.im)};
}

/// acc += a * b with both factors plain complex doubles; every partial
/// product is error-free, so the accumulation carries ~2x the significand.
inline void ddc_fma(DDComplex& acc, const std::complex<double>& a,
                    const std::complex<double>& b) {
  // (ar + ai i)(br + bi i) = (ar*br - ai*bi) + (ar*bi + ai*br) i
  acc.re = dd_add(acc.re, dd_mul(a.real(), b.real()));
  acc.re = dd_sub(acc.re, dd_mul(a.imag(), b.imag()));
  acc.im = dd_add(acc.im, dd_mul(a.real(), b.imag()));
  acc.im = dd_add(acc.im, dd_mul(a.imag(), b.real()));
}

}  // namespace pph::util
