#pragma once
// Wall-clock and CPU timers.  The paper reports "user CPU minutes"; the
// CpuTimer reads the per-process CPU clock so the benches can report the
// same unit.

#include <chrono>
#include <ctime>

namespace pph::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-process CPU-time stopwatch (sums time over all threads).
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}
  void reset() { start_ = now(); }
  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace pph::util
