#pragma once
// Minimal leveled logger.  Quiet by default so test and bench output stays
// clean; verbosity is raised through set_level or the PPH_LOG environment
// variable (error|warn|info|debug).

#include <sstream>
#include <string>

namespace pph::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Initialize the level from the PPH_LOG environment variable (idempotent).
void init_logging_from_env();

/// Emit one line to stderr with a level prefix (thread-safe).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pph::util

#define PPH_LOG(level)                                        \
  if (static_cast<int>(level) > static_cast<int>(::pph::util::log_level())) \
    ;                                                         \
  else                                                        \
    ::pph::util::detail::LogStream(level)

#define PPH_LOG_INFO PPH_LOG(::pph::util::LogLevel::kInfo)
#define PPH_LOG_WARN PPH_LOG(::pph::util::LogLevel::kWarn)
#define PPH_LOG_ERROR PPH_LOG(::pph::util::LogLevel::kError)
#define PPH_LOG_DEBUG PPH_LOG(::pph::util::LogLevel::kDebug)
