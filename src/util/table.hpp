#pragma once
// ASCII table printing for the benchmark harnesses.  Every bench binary
// regenerating a table of the paper prints through this formatter so the
// output layout matches across experiments.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pph::util {

/// Column-aligned ASCII table with an optional title and column headers.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row.  Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; the cell count must match the header (if set) or the
  /// first row added.
  void add_row(std::vector<std::string> row);

  /// Convenience: format helpers for numeric cells.
  static std::string cell(double value, int precision = 2);
  static std::string cell(std::size_t value);
  static std::string cell_ratio(double value, int precision = 2);
  /// "N/A" placeholder used where the paper marks intractable entries.
  static std::string na();

  /// Render with single-space-padded columns and a separator under the header.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pph::util
