#include "util/prng.hpp"

#include <cmath>
#include <numbers>

namespace pph::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Prng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // A state of all zeros is invalid for xoshiro; splitmix64 cannot produce
  // four consecutive zeros, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  have_cached_normal_ = false;
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Prng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Prng::uniform_index(std::uint64_t n) {
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Prng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Prng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

std::complex<double> Prng::unit_complex() {
  const double theta = 2.0 * std::numbers::pi * uniform();
  return {std::cos(theta), std::sin(theta)};
}

std::complex<double> Prng::normal_complex() {
  const double re = normal();
  const double im = normal();
  return {re, im};
}

std::vector<std::complex<double>> Prng::unit_complex_vector(std::size_t n) {
  std::vector<std::complex<double>> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(unit_complex());
  return v;
}

}  // namespace pph::util
