#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pph::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error("Table: set_header after add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  const std::size_t expected =
      !header_.empty() ? header_.size() : (rows_.empty() ? row.size() : rows_.front().size());
  if (row.size() != expected) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }

std::string Table::cell_ratio(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

std::string Table::na() { return "N/A"; }

std::string Table::to_string() const {
  std::vector<std::size_t> width;
  auto absorb = [&width](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&os, &width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i) total += width[i] + (i ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace pph::util
