#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace pph::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "[error] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kDebug: return "[debug] ";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void init_logging_from_env() {
  const char* env = std::getenv("PPH_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
}

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << prefix(level) << message << "\n";
}

}  // namespace pph::util
