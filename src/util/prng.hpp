#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Prng so that tests and
// benchmarks are bit-reproducible across runs.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so that any
// 64-bit seed yields a well-mixed state.

#include <complex>
#include <cstdint>
#include <vector>

namespace pph::util {

/// xoshiro256** generator with convenience samplers used across the library.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (uses two uniforms per pair, cached).
  double normal();

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Complex number uniform on the unit circle.  The "gamma trick" constant
  /// of homotopy continuation is drawn from this distribution.
  std::complex<double> unit_complex();

  /// Complex number with independent standard normal real/imaginary parts.
  std::complex<double> normal_complex();

  /// Vector of unit-circle complex numbers.
  std::vector<std::complex<double>> unit_complex_vector(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pph::util
