#pragma once
// Streaming and batch statistics used by the benchmark harnesses and the
// cluster simulator (job-duration distributions, speedup summaries).

#include <cstddef>
#include <vector>

namespace pph::util {

/// Streaming accumulator: count, mean, variance (Welford), min, max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile accumulator: collects samples and answers percentile
/// queries with linear interpolation (the batch `percentile` below over a
/// retained sample set, sorted lazily).  Used for the solve-service latency
/// metrics (DESIGN.md section 10): per-job sojourn times stream in through
/// add(), the p50/p99 headline numbers come out of percentile().
class PercentileAccumulator {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = xs_.size() < 2;
  }
  void merge(const PercentileAccumulator& other);

  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double min() const;  // 0 when empty, like percentile()
  double max() const;
  /// Percentile in [0,100] with linear interpolation; 0 when empty.
  double percentile(double pct) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  const std::vector<double>& samples() const { return xs_; }

 private:
  void ensure_sorted() const;
  // Sorting is deferred to the first query after an add; queries keep the
  // logical state const.
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Batch helpers over a sample vector.
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Percentile in [0,100] with linear interpolation; sorts a copy.
double percentile(std::vector<double> xs, double pct);
double median(const std::vector<double>& xs);

/// Coefficient of variation (stddev/mean); 0 for empty or zero-mean samples.
double coefficient_of_variation(const std::vector<double>& xs);

}  // namespace pph::util
