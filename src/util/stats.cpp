#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pph::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void PercentileAccumulator::merge(const PercentileAccumulator& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = xs_.size() < 2;
}

void PercentileAccumulator::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double PercentileAccumulator::mean() const { return pph::util::mean(xs_); }

double PercentileAccumulator::min() const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  return xs_.front();
}

double PercentileAccumulator::max() const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  return xs_.back();
}

double PercentileAccumulator::percentile(double pct) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  if (pct <= 0.0) return xs_.front();
  if (pct >= 100.0) return xs_.back();
  const double rank = pct / 100.0 * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (pct <= 0.0) return xs.front();
  if (pct >= 100.0) return xs.back();
  const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double coefficient_of_variation(const std::vector<double>& xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

}  // namespace pph::util
