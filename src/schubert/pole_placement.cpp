#include "schubert/pole_placement.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "poly/roots.hpp"

namespace pph::schubert {

CMatrix Plant::transfer(Complex s) const {
  const std::size_t n = states();
  CMatrix si_a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t cc = 0; cc < n; ++cc) si_a(r, cc) = (r == cc ? s : Complex{}) - a(r, cc);
  linalg::LU lu(si_a);
  const auto x = lu.solve(b);
  if (!x) throw std::runtime_error("Plant::transfer: s is an eigenvalue of A");
  return c * (*x);
}

Complex Plant::char_poly(Complex s) const {
  const std::size_t n = states();
  CMatrix si_a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t cc = 0; cc < n; ++cc) si_a(r, cc) = (r == cc ? s : Complex{}) - a(r, cc);
  return linalg::LU(si_a).determinant();
}

Plant random_plant(const PieriProblem& problem, util::Prng& rng) {
  const std::size_t n = problem.condition_count();
  if (n < problem.q) throw std::invalid_argument("random_plant: inconsistent sizes");
  const std::size_t states = n - problem.q;
  Plant plant;
  plant.a = CMatrix(states, states);
  plant.b = CMatrix(states, problem.m);
  plant.c = CMatrix(problem.p, states);
  for (std::size_t r = 0; r < states; ++r)
    for (std::size_t cc = 0; cc < states; ++cc) plant.a(r, cc) = Complex{rng.normal(), 0.0};
  for (std::size_t r = 0; r < states; ++r)
    for (std::size_t cc = 0; cc < problem.m; ++cc) plant.b(r, cc) = Complex{rng.normal(), 0.0};
  for (std::size_t r = 0; r < problem.p; ++r)
    for (std::size_t cc = 0; cc < states; ++cc) plant.c(r, cc) = Complex{rng.normal(), 0.0};
  return plant;
}

CMatrix plant_plane(const Plant& plant, Complex s) {
  const std::size_t m = plant.inputs();
  const CMatrix g = plant.transfer(s);
  CMatrix raw(m + plant.outputs(), m);
  for (std::size_t c = 0; c < m; ++c) raw(c, c) = Complex{1.0, 0.0};
  for (std::size_t r = 0; r < plant.outputs(); ++r)
    for (std::size_t c = 0; c < m; ++c) raw(m + r, c) = g(r, c);
  return linalg::orthonormalize_columns(raw);
}

PieriInput pole_placement_input(const PieriProblem& problem, const Plant& plant,
                                const std::vector<Complex>& poles) {
  if (plant.inputs() != problem.m || plant.outputs() != problem.p) {
    throw std::invalid_argument("pole_placement_input: plant shape mismatch");
  }
  if (poles.size() != problem.condition_count()) {
    throw std::invalid_argument("pole_placement_input: need n = mp + q(m+p) poles");
  }
  PieriInput input;
  input.problem = problem;
  input.conditions.reserve(poles.size());
  for (const Complex s : poles) {
    input.conditions.push_back(PlaneCondition{plant_plane(plant, s), s});
  }
  return input;
}

namespace {

CMatrix evaluate_coeffs(const std::vector<CMatrix>& coeffs, Complex s) {
  if (coeffs.empty()) throw std::logic_error("evaluate_coeffs: empty");
  CMatrix out = coeffs.back();
  for (std::size_t d = coeffs.size() - 1; d-- > 0;) {
    out = out * s;
    out += coeffs[d];
  }
  return out;
}

}  // namespace

CMatrix Compensator::y(Complex s) const { return evaluate_coeffs(y_coeffs, s); }
CMatrix Compensator::z(Complex s) const { return evaluate_coeffs(z_coeffs, s); }

CMatrix Compensator::feedback(Complex s) const {
  linalg::LU lu(z(s));
  const auto zinv = lu.inverse();
  if (!zinv) throw std::runtime_error("Compensator::feedback: Z(s) singular");
  return y(s) * (*zinv);
}

Compensator extract_compensator(const MatrixPolynomial& x, std::size_t m) {
  if (x.coeffs.empty()) throw std::invalid_argument("extract_compensator: empty map");
  const std::size_t rows = x.coeffs.front().rows();
  const std::size_t p = x.coeffs.front().cols();
  if (rows != m + p) throw std::invalid_argument("extract_compensator: shape mismatch");
  Compensator comp;
  for (const auto& coeff : x.coeffs) {
    // Convention: X = [Y; Z] with Y the top m x p block (numerator acting
    // on the input side) and Z the bottom p x p block.
    comp.y_coeffs.push_back(coeff.block(0, m, 0, p));
    comp.z_coeffs.push_back(coeff.block(m, m + p, 0, p));
  }
  return comp;
}

Compensator extract_compensator(const PieriMap& map) {
  return extract_compensator(map.to_matrix_polynomial(), map.problem().m);
}

bool compensator_is_real(const Compensator& comp, double tol) {
  // Evaluate F at a few fixed real points (skipping any where Z is
  // numerically singular) and inspect the imaginary parts.
  const double samples[] = {0.0, 0.731, -1.279, 2.417};
  std::size_t used = 0;
  for (const double s : samples) {
    const CMatrix z = comp.z(Complex{s, 0.0});
    linalg::LU lu(z);
    if (lu.singular() || lu.rcond_estimate() < 1e-10) continue;
    const CMatrix f = comp.y(Complex{s, 0.0}) * *lu.inverse();
    ++used;
    for (std::size_t r = 0; r < f.rows(); ++r) {
      for (std::size_t c = 0; c < f.cols(); ++c) {
        if (std::abs(f(r, c).imag()) > tol * (1.0 + std::abs(f(r, c)))) return false;
      }
    }
  }
  return used > 0;
}

std::vector<Complex> closed_loop_char_poly(const MatrixPolynomial& xpoly, const Plant& plant) {
  const std::size_t p = xpoly.coeffs.front().cols();
  const std::size_t m = xpoly.coeffs.front().rows() - p;
  PieriProblem pb{m, p, 0};  // only space_dim / m / p are used below
  // Degree bound of phi(s) = det([X(s) | d(s)I ; C adj B]): each X column
  // contributes at most the map degree, each plane column the plant order.
  std::size_t bound = pb.m * plant.states() + p * xpoly.degree();

  // Interpolate phi at bound+1 points on a circle (radius chosen away from
  // the plant eigenvalues with probability one).
  const std::size_t npts = bound + 1;
  const double radius = 1.37;
  std::vector<Complex> pts(npts), vals(npts);
  for (std::size_t k = 0; k < npts; ++k) {
    const double theta = 2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(npts);
    const Complex s{radius * std::cos(theta), radius * std::sin(theta)};
    pts[k] = s;
    const Complex d = plant.char_poly(s);
    const CMatrix g = plant.transfer(s);
    CMatrix kp(pb.space_dim(), pb.m);
    for (std::size_t c = 0; c < pb.m; ++c) kp(c, c) = d;
    for (std::size_t r = 0; r < pb.p; ++r)
      for (std::size_t c = 0; c < pb.m; ++c) kp(pb.m + r, c) = d * g(r, c);
    const CMatrix x = xpoly.evaluate(s);
    vals[k] = linalg::LU(CMatrix::hcat(x, kp)).determinant();
    // The bordered determinant carries m-1 spurious copies of the open-loop
    // characteristic polynomial (each plane column was cleared of poles by a
    // factor d(s); only one factor belongs to the closed loop).  Deflate
    // pointwise so the interpolated polynomial is the closed-loop
    // characteristic polynomial chi_cl of degree n = poles.size().
    for (std::size_t c = 1; c < pb.m; ++c) vals[k] /= d;
  }

  // Vandermonde solve for the coefficients.
  CMatrix vand(npts, npts);
  for (std::size_t r = 0; r < npts; ++r) {
    Complex pw{1.0, 0.0};
    for (std::size_t c = 0; c < npts; ++c) {
      vand(r, c) = pw;
      pw *= pts[r];
    }
  }
  const auto coeffs = linalg::LU(vand).solve(vals);
  if (!coeffs) throw std::runtime_error("closed_loop_char_poly: interpolation failed");

  // Trim numerically-zero leading coefficients.
  std::vector<Complex> out = *coeffs;
  double scale = 0.0;
  for (const auto& c : out) scale = std::max(scale, std::abs(c));
  while (out.size() > 1 && std::abs(out.back()) < 1e-9 * scale) out.pop_back();
  return out;
}

std::vector<Complex> closed_loop_char_poly(const PieriMap& map, const Plant& plant) {
  return closed_loop_char_poly(map.to_matrix_polynomial(), plant);
}

PolePlacementCheck verify_pole_placement(const MatrixPolynomial& x, const Plant& plant,
                                         const std::vector<Complex>& poles) {
  PolePlacementCheck check;
  // Condition residuals at the prescribed poles.
  for (const Complex s : poles) {
    PlaneCondition cond{plant_plane(plant, s), s};
    check.max_condition_residual = std::max(check.max_condition_residual, x.residual(cond));
  }
  // Characteristic polynomial: degree must equal the pole count, and it
  // must (relatively) vanish at every prescribed pole.
  const auto phi = closed_loop_char_poly(x, plant);
  check.char_poly_degree = phi.size() - 1;
  double phi_scale = 0.0;
  for (const auto& c : phi) phi_scale = std::max(phi_scale, std::abs(c));
  for (const Complex s : poles) {
    Complex v{};
    Complex pw{1.0, 0.0};
    double point_scale = 0.0;
    for (const auto& c : phi) {
      v += c * pw;
      point_scale += std::abs(c) * std::abs(pw);
      pw *= s;
    }
    (void)phi_scale;
    check.max_pole_residual =
        std::max(check.max_pole_residual, std::abs(v) / std::max(point_scale, 1e-300));
  }
  // Reality through the GL(p)-invariant compensator, not the coefficient
  // representative (which may carry complex column scalings).
  const std::size_t p = x.coeffs.front().cols();
  const std::size_t m = x.coeffs.front().rows() - p;
  check.real_feedback = compensator_is_real(extract_compensator(x, m));
  return check;
}

PolePlacementCheck verify_pole_placement(const PieriMap& map, const Plant& plant,
                                         const std::vector<Complex>& poles) {
  return verify_pole_placement(map.to_matrix_polynomial(), plant, poles);
}

PolePlacementSummary solve_pole_placement(const PieriProblem& problem, const Plant& plant,
                                          const std::vector<Complex>& poles,
                                          const PolePlacementOptions& opts) {
  PieriInput input = pole_placement_input(problem, plant, poles);

  // Random unitary change of coordinates on C^{m+p}.  The intrinsic
  // intersection problem is GL-equivariant: solving with planes U K_i and
  // pulling solutions back through U^H solves the original problem, but the
  // rotated data is in general position with respect to the standard flag
  // that defines the localization patterns.
  CMatrix u = CMatrix::identity(problem.space_dim());
  if (opts.randomize_coordinates) {
    util::Prng rng(opts.rotation_seed);
    CMatrix raw(problem.space_dim(), problem.space_dim());
    for (std::size_t r = 0; r < raw.rows(); ++r)
      for (std::size_t c = 0; c < raw.cols(); ++c) raw(r, c) = rng.normal_complex();
    u = linalg::orthonormalize_columns(raw);
    for (auto& cond : input.conditions) cond.plane = u * cond.plane;
  }

  PolePlacementSummary summary;
  summary.pieri = solve_pieri(input, opts.solver);
  const CMatrix u_back = u.adjoint();
  for (const auto& sol : summary.pieri.solutions) {
    summary.laws.push_back(sol.to_matrix_polynomial().transformed(u_back));
  }

  // Verify in the ORIGINAL coordinates against the plant planes.
  std::vector<PlaneCondition> original;
  original.reserve(poles.size());
  for (const Complex s : poles) original.push_back(PlaneCondition{plant_plane(plant, s), s});
  for (const auto& law : summary.laws) {
    const double res = law.max_residual(original);
    summary.max_residual = std::max(summary.max_residual, res);
    if (res < opts.solver.verify_tolerance) ++summary.verified;
  }
  return summary;
}

std::vector<Complex> closed_loop_poles_static(const Plant& plant, const CMatrix& f) {
  const std::size_t n = plant.states();
  const CMatrix closed = plant.a + plant.b * (f * plant.c);
  // Interpolate det(sI - closed) at n+1 circle points, then find the roots.
  const std::size_t npts = n + 1;
  const double radius = 2.31;
  std::vector<Complex> pts(npts), vals(npts);
  for (std::size_t k = 0; k < npts; ++k) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(npts);
    const Complex s{radius * std::cos(theta), radius * std::sin(theta)};
    pts[k] = s;
    CMatrix si_m(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) si_m(r, c) = (r == c ? s : Complex{}) - closed(r, c);
    vals[k] = linalg::LU(si_m).determinant();
  }
  CMatrix vand(npts, npts);
  for (std::size_t r = 0; r < npts; ++r) {
    Complex pw{1.0, 0.0};
    for (std::size_t c = 0; c < npts; ++c) {
      vand(r, c) = pw;
      pw *= pts[r];
    }
  }
  const auto coeffs = linalg::LU(vand).solve(vals);
  if (!coeffs) throw std::runtime_error("closed_loop_poles_static: interpolation failed");
  return poly::polynomial_roots(*coeffs);
}

}  // namespace pph::schubert
