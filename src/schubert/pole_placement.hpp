#pragma once
// The control application (paper sections I and III-A): computing all
// dynamic output feedback laws of McMillan degree q that place the
// closed-loop poles of an m-input, p-output plant at prescribed locations.
//
// Geometry (Brockett-Byrnes, Ravi-Rosenthal-Wang): s is a closed-loop pole
// of the plant (A,B,C) with compensator F(s) = Y(s) Z(s)^{-1} exactly when
// the p-plane spanned by X(s) = [Y(s); Z(s)] meets the m-plane
// K(s) = span[I_m; G(s)], G(s) = C (sI - A)^{-1} B.  Prescribing the n =
// mp + q(m+p) closed-loop poles s_1..s_n therefore gives n intersection
// conditions det([X(s_i) | K(s_i)]) = 0 -- a Pieri problem whose inputs are
// the plant planes at the desired poles.

#include "schubert/pieri_solver.hpp"

namespace pph::schubert {

/// State-space plant x' = Ax + Bu, y = Cx.
struct Plant {
  CMatrix a;  // states x states
  CMatrix b;  // states x m
  CMatrix c;  // p x states

  std::size_t states() const { return a.rows(); }
  std::size_t inputs() const { return b.cols(); }
  std::size_t outputs() const { return c.rows(); }

  /// Transfer function G(s) = C (sI - A)^{-1} B (throws on eigenvalue hits).
  CMatrix transfer(Complex s) const;
  /// Open-loop characteristic value det(sI - A).
  Complex char_poly(Complex s) const;
};

/// Random plant for an (m, p, q) problem: the closed loop has n = mp +
/// q(m+p) poles, of which q live in the compensator, so the plant carries
/// n - q states.  Entries are Gaussian; the plant is generic with
/// probability one.
Plant random_plant(const PieriProblem& problem, util::Prng& rng);

/// The m-plane of the pole condition at s: orthonormalized span[I_m; G(s)].
CMatrix plant_plane(const Plant& plant, Complex s);

/// Assemble the Pieri input for prescribed closed-loop poles (must be n
/// distinct non-eigenvalue points).
PieriInput pole_placement_input(const PieriProblem& problem, const Plant& plant,
                                const std::vector<Complex>& poles);

/// Dynamic compensator extracted from a solution map X = [Y; Z]:
/// u = F(s) y with F(s) = Y(s) Z(s)^{-1} of McMillan degree q.
struct Compensator {
  std::vector<CMatrix> y_coeffs;  // m x p coefficient matrices of Y(s)
  std::vector<CMatrix> z_coeffs;  // p x p coefficient matrices of Z(s)

  CMatrix y(Complex s) const;
  CMatrix z(Complex s) const;
  /// F(s) = Y(s) Z(s)^{-1}; throws when Z(s) is singular.
  CMatrix feedback(Complex s) const;
};

Compensator extract_compensator(const MatrixPolynomial& x, std::size_t m);
Compensator extract_compensator(const PieriMap& map);

/// A feedback law is real exactly when F(s) = Y(s) Z(s)^{-1} is real at
/// real s -- F is invariant under the right GL(p) action on X, so this is
/// well defined even when the coefficient representative is complex (for
/// example after the coordinate randomization of solve_pole_placement).
bool compensator_is_real(const Compensator& comp, double tol = 1e-7);

/// Closed-loop characteristic polynomial
///   phi(s) = det([X(s) | d(s) I_m ; C adj(sI-A) B]) / d(s)^{m-1}
/// recovered by interpolation (the deflation removes the m-1 spurious
/// open-loop factors of the bordered determinant).  Returns the coefficient
/// vector (low to high) after trimming numerically-zero leading terms.
std::vector<Complex> closed_loop_char_poly(const MatrixPolynomial& x, const Plant& plant);
std::vector<Complex> closed_loop_char_poly(const PieriMap& map, const Plant& plant);

/// Verification report for one feedback law.
struct PolePlacementCheck {
  double max_condition_residual = 0.0;  // worst det([X(s_i)|K(s_i)]) residual
  std::size_t char_poly_degree = 0;     // must equal n
  double max_pole_residual = 0.0;       // worst |phi(s_i)| / ||phi||
  bool real_feedback = false;
};

PolePlacementCheck verify_pole_placement(const MatrixPolynomial& x, const Plant& plant,
                                         const std::vector<Complex>& poles);
PolePlacementCheck verify_pole_placement(const PieriMap& map, const Plant& plant,
                                         const std::vector<Complex>& poles);

// ---- end-to-end driver ------------------------------------------------------

struct PolePlacementOptions {
  PieriSolverOptions solver;
  /// Solve in randomly rotated coordinates (a random unitary U applied to
  /// every plane, undone on the solutions).  Structured plants -- sparse
  /// state-space models whose planes [I_m; G(s)] align with the standard
  /// coordinate flag -- make the localization charts degenerate; a common
  /// rotation leaves the intrinsic intersection problem untouched while
  /// putting it in general position with respect to the flag.
  bool randomize_coordinates = true;
  std::uint64_t rotation_seed = 97;
};

struct PolePlacementSummary {
  /// All feedback maps, in the ORIGINAL plant coordinates.
  std::vector<MatrixPolynomial> laws;
  /// Statistics of the underlying Pieri solve (in rotated coordinates).
  PieriSolveSummary pieri;
  std::size_t verified = 0;     // laws passing the original-condition check
  double max_residual = 0.0;

  bool complete() const {
    return pieri.failures == 0 && laws.size() == pieri.expected_count &&
           verified == laws.size();
  }
};

/// Compute every feedback law placing the prescribed closed-loop poles.
PolePlacementSummary solve_pole_placement(const PieriProblem& problem, const Plant& plant,
                                          const std::vector<Complex>& poles,
                                          const PolePlacementOptions& opts = {});

/// Closed-loop poles of the plant under constant output feedback u = F y:
/// the eigenvalues of A + B F C, via the interpolated characteristic
/// polynomial and Durand-Kerner iteration.  Useful for building pole sets
/// that are known to be reachable (see examples/satellite.cpp).
std::vector<Complex> closed_loop_poles_static(const Plant& plant, const CMatrix& f);

}  // namespace pph::schubert
