#pragma once
// Sequential Pieri solver: walk the localization poset level by level from
// the trivial map, tracking one Pieri homotopy per (solution, cover) edge,
// until all solutions at the root pattern are found (paper sections
// III-B/C).  The per-level job counts and timings this produces are the
// data of the paper's Table III; the parallel scheduler (src/sched)
// produces the same jobs from the virtual Pieri tree.

#include "homotopy/tracker.hpp"
#include "schubert/map.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "schubert/poset.hpp"

namespace pph::schubert {

struct PieriSolverOptions {
  homotopy::TrackerOptions tracker = default_tracker();
  std::uint64_t gamma_seed = 20040415;
  /// Relative residual bound for a verified solution.
  double verify_tolerance = 1e-7;
  /// Failed edges are retried with progressively tighter tracking.
  std::size_t max_retries = 2;
  /// Minimal pairwise chart distance for solutions to count as distinct.
  double distinct_tolerance = 1e-6;
  /// Track edges through the compiled Pieri tape (eval::CompiledPieriHomotopy).
  /// Off = the interpreted bordered-determinant walk, kept as the golden
  /// reference; the benches and the CI guard flip this for the A/B.
  bool compiled_eval = true;

  static homotopy::TrackerOptions default_tracker();
};

/// Per-level accounting (the rows of the paper's Table III).
struct PieriLevelStats {
  std::size_t level = 0;
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  std::uint64_t newton_iterations = 0;
};

struct PieriSolveSummary {
  /// Solutions in the root pattern's chart.
  std::vector<PieriMap> solutions;
  std::vector<PieriLevelStats> levels;
  std::uint64_t total_jobs = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  /// Exact combinatorial root count (poset chain count).
  std::uint64_t expected_count = 0;
  /// Solutions whose worst relative condition residual passes verification.
  std::size_t verified = 0;
  double max_residual = 0.0;
  /// Number of pairwise-distinct solutions.
  std::size_t distinct = 0;
  /// Wall seconds of every individual tracking job, in execution order;
  /// this is the workload sample fed to the cluster simulator.
  std::vector<double> job_seconds;

  bool complete() const {
    return failures == 0 && solutions.size() == expected_count &&
           verified == solutions.size() && distinct == solutions.size();
  }
};

/// Solve a Pieri problem instance sequentially.
PieriSolveSummary solve_pieri(const PieriInput& input, const PieriSolverOptions& opts = {});

/// Convenience: random instance for the given sizes.
PieriSolveSummary solve_random_pieri(const PieriProblem& problem, std::uint64_t seed = 1,
                                     const PieriSolverOptions& opts = {});

}  // namespace pph::schubert
