#pragma once
// Sequential Pieri solver: walk the localization poset level by level from
// the trivial map, tracking one Pieri homotopy per (solution, cover) edge,
// until all solutions at the root pattern are found (paper sections
// III-B/C).  The per-level job counts and timings this produces are the
// data of the paper's Table III; the parallel scheduler (src/sched)
// produces the same jobs from the virtual Pieri tree.

#include "homotopy/certify.hpp"
#include "homotopy/tracker.hpp"
#include "schubert/map.hpp"
#include "schubert/pieri_homotopy.hpp"
#include "schubert/poset.hpp"

namespace pph::schubert {

struct PieriSolverOptions {
  homotopy::TrackerOptions tracker = default_tracker();
  std::uint64_t gamma_seed = 20040415;
  /// Relative residual bound for a verified solution.
  double verify_tolerance = 1e-7;
  /// Failed edges are retried with progressively tighter tracking.
  std::size_t max_retries = 2;
  /// Rescue tier (DESIGN.md section 9): after an instance tracks all its
  /// edges, the failed, colliding and suspect paths are re-tracked
  /// individually under the SAME deformation with progressively harsher
  /// tracking (shrunken steps, tighter corrector residual, early
  /// compensated endgame).  Same gamma is essential: the start-to-root
  /// correspondence depends on the deformation, so only a same-gamma
  /// re-track can recover the root its path actually leads to.  Fresh-gamma
  /// whole-instance retries (max_retries) remain the fallback.
  bool rescue = true;
  /// Targeted re-track rounds per instance attempt.
  std::size_t rescue_attempts = 3;
  /// Converged endpoints with tracker residual above this are suspects.
  double suspect_residual = 1e-7;
  /// Minimal pairwise chart distance for solutions to count as distinct.
  double distinct_tolerance = 1e-6;
  /// Track edges through the compiled Pieri tape (eval::CompiledPieriHomotopy).
  /// Off = the interpreted bordered-determinant walk, kept as the golden
  /// reference; the benches and the CI guard flip this for the A/B.
  bool compiled_eval = true;

  static homotopy::TrackerOptions default_tracker();
};

/// Tracker options for instance attempt `attempt` (0 = first try) at
/// rescue round `rescue` (0 = the regular sweep).  Retries shrink steps
/// and grant Newton iterations; rescue rounds additionally tighten the
/// corrector residual and engage the compensated endgame early -- a path
/// jump is a predictor landing in a clustered neighbour's basin, so the
/// decisive knob is the step bound.
homotopy::TrackerOptions attempt_tracker(const PieriSolverOptions& opts, std::size_t attempt,
                                         std::size_t rescue = 0);

/// Indices (into `results`) of the paths a rescue round must re-track:
/// hard failures, suspects (see suspect_residual) and both members of
/// every endpoint pair closer than distinct_tolerance.
std::vector<std::size_t> rescue_targets(const std::vector<homotopy::PathResult>& results,
                                        const PieriSolverOptions& opts);

/// Per-level accounting (the rows of the paper's Table III).
struct PieriLevelStats {
  std::size_t level = 0;
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  std::uint64_t newton_iterations = 0;
};

struct PieriSolveSummary {
  /// Solutions in the root pattern's chart.
  std::vector<PieriMap> solutions;
  std::vector<PieriLevelStats> levels;
  std::uint64_t total_jobs = 0;
  std::uint64_t failures = 0;
  double seconds = 0.0;
  /// Exact combinatorial root count (poset chain count).
  std::uint64_t expected_count = 0;
  /// Solutions whose worst relative condition residual passes verification.
  std::size_t verified = 0;
  double max_residual = 0.0;
  /// Number of pairwise-distinct solutions.
  std::size_t distinct = 0;
  /// Rescue provenance: single paths re-tracked by the rescue tier,
  /// instances that passed quality control with rescue help, and rescue
  /// targets observed (failed + suspect + colliding path sightings).
  std::uint64_t rescue_retracks = 0;
  std::uint64_t rescued_instances = 0;
  std::uint64_t suspect_paths = 0;
  /// Wall seconds of every individual tracking job, in execution order;
  /// this is the workload sample fed to the cluster simulator.
  std::vector<double> job_seconds;

  bool complete() const {
    return failures == 0 && solutions.size() == expected_count &&
           verified == solutions.size() && distinct == solutions.size();
  }
};

/// Solve a Pieri problem instance sequentially.
PieriSolveSummary solve_pieri(const PieriInput& input, const PieriSolverOptions& opts = {});

/// Certify a Pieri solve against the exact combinatorial root count: the
/// per-solution residual is the scale-aware max condition residual,
/// distinctness is measured in root-chart coordinates.
homotopy::CertificateReport certify_pieri(const PieriInput& input,
                                          const PieriSolveSummary& summary,
                                          const homotopy::CertifyOptions& opts = {});

/// Convenience: random instance for the given sizes.
PieriSolveSummary solve_random_pieri(const PieriProblem& problem, std::uint64_t seed = 1,
                                     const PieriSolverOptions& opts = {});

}  // namespace pph::schubert
