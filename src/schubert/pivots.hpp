#pragma once
// Localization patterns for degree-q maps into the Grassmannian G(p, m+p)
// (paper section III-B, Fig 3).
//
// A map X(s) of degree q producing p-planes in C^{m+p} is represented in
// concatenated form: the coefficient matrices X^(0), ..., X^(d) are stacked
// into an M x p matrix Xhat, M = (a+1)(m+p) if b = 0 else (a+2)(m+p) where
// q = a*p + b, 0 <= b < p.  Column j may use degrees up to h_j/(m+p) - 1
// where the column height h_j is (a+1)(m+p) for j <= p-b and (a+2)(m+p)
// otherwise.
//
// A localization pattern fixes which entries of Xhat may be nonzero: column
// j has contiguous "stars" from its top pivot (row j, fixed to [1..p] in
// this implementation, as in the paper's preliminary parallel version) down
// to its bottom pivot B_j.  Validity (paper's three rules):
//   1. column heights as above,
//   2. top and bottom pivots strictly increasing with the column index,
//   3. no two bottom pivots differ by m+p or more.
//
// The entry at each top pivot is normalized to one, so a pattern at level
// sum_j (B_j - j) has exactly `level` free coefficients and can satisfy
// `level` intersection conditions.

#include <cstdint>
#include <string>
#include <vector>

namespace pph::schubert {

/// Problem size of a Pieri / pole placement instance.
struct PieriProblem {
  std::size_t m = 0;  // inputs  (codimension of the output planes)
  std::size_t p = 0;  // outputs (dimension of the output planes)
  std::size_t q = 0;  // degree of the maps == internal states of the compensator

  std::size_t space_dim() const { return m + p; }
  /// Number of intersection conditions == dimension of the solution space:
  /// n = m*p + q*(m+p).
  std::size_t condition_count() const { return m * p + q * (m + p); }
  /// Rows of the concatenated coefficient matrix.
  std::size_t concat_rows() const;
  /// Height (maximal bottom pivot) of column j (0-based).
  std::size_t column_height(std::size_t j) const;
};

/// A bottom-pivot localization pattern.  Pivots are stored 1-based to match
/// the paper's figures ([4 7] etc.).
class Pattern {
 public:
  Pattern() = default;
  Pattern(PieriProblem problem, std::vector<std::size_t> bottom_pivots);

  const PieriProblem& problem() const { return problem_; }
  const std::vector<std::size_t>& pivots() const { return pivots_; }
  std::size_t pivot(std::size_t j) const { return pivots_[j]; }

  /// Number of free coefficients == number of conditions this pattern meets.
  std::size_t level() const;

  bool valid() const;

  /// Degree of column j: the block index of its bottom pivot.
  std::size_t column_degree(std::size_t j) const {
    return (pivots_[j] - 1) / problem_.space_dim();
  }
  /// Residue of the bottom pivot of column j within its block (1-based row
  /// in C^{m+p}); distinct across columns by validity rule 3.
  std::size_t pivot_residue(std::size_t j) const {
    return (pivots_[j] - 1) % problem_.space_dim() + 1;
  }

  /// Star cells (concat_row, column), both 0-based, in column-major order,
  /// including the normalized top-pivot cells (row j, column j).
  std::vector<std::pair<std::size_t, std::size_t>> star_cells() const;

  /// Free cells: star cells minus the normalized top pivots.  Their count
  /// equals level(); this is the coordinate chart used by the homotopies.
  std::vector<std::pair<std::size_t, std::size_t>> free_cells() const;

  /// Patterns one level down: decrement one bottom pivot (the Pieri
  /// recursion's "bottom children", paper Fig 4).
  std::vector<Pattern> children() const;

  /// Patterns one level up: increment one bottom pivot.
  std::vector<Pattern> parents() const;

  /// Which column differs (by one) between this pattern and a child.
  /// Returns p if `child` is not a child of this pattern.
  std::size_t child_column(const Pattern& child) const;

  /// The minimal pattern [1, 2, ..., p] (level 0, trivial solution).
  static Pattern minimal(const PieriProblem& problem);

  /// The unique maximal valid pattern (level == condition_count()).
  static Pattern root(const PieriProblem& problem);

  bool operator==(const Pattern& other) const { return pivots_ == other.pivots_; }
  bool operator<(const Pattern& other) const { return pivots_ < other.pivots_; }

  /// Shorthand notation of the paper: "[4 7]".
  std::string to_string() const;

 private:
  PieriProblem problem_;
  std::vector<std::size_t> pivots_;
};

}  // namespace pph::schubert
