#include "schubert/pieri_homotopy.hpp"

#include <stdexcept>

namespace pph::schubert {

PieriEdgeHomotopy::PieriEdgeHomotopy(PatternChart chart, std::vector<PlaneCondition> fixed,
                                     PlaneCondition target, Complex gamma, Complex detour_s,
                                     Complex detour_u)
    : chart_(std::move(chart)),
      fixed_(std::move(fixed)),
      target_(std::move(target)),
      gamma_(gamma),
      detour_s_(detour_s),
      detour_u_(detour_u),
      special_(special_plane(chart_.pattern())) {
  if (fixed_.size() + 1 != chart_.dimension()) {
    throw std::invalid_argument(
        "PieriEdgeHomotopy: need level-1 fixed conditions plus one target");
  }
  plane_dot_ = target_.plane - special_ * gamma_;
}

PieriEdgeHomotopy::~PieriEdgeHomotopy() = default;

// ---------------------------------------------------------------------------
// Compiled fast path
// ---------------------------------------------------------------------------

const eval::CompiledPieriHomotopy* PieriEdgeHomotopy::ensure_compiled() const {
  std::call_once(compile_once_, [this] {
    compiled_ = std::make_unique<eval::CompiledPieriHomotopy>(chart_, fixed_, target_, gamma_,
                                                              detour_s_, detour_u_);
  });
  return compiled_.get();
}

std::unique_ptr<homotopy::HomotopyWorkspace> PieriEdgeHomotopy::make_workspace() const {
  if (!compiled_enabled_) return nullptr;
  auto ws = std::make_unique<PieriEvalWorkspace>();
  ensure_compiled()->prepare(ws->w);
  return ws;
}

void PieriEdgeHomotopy::evaluate_into(const CVector& x, double t,
                                      homotopy::HomotopyWorkspace* ws, CVector& h) const {
  if (auto* pw = dynamic_cast<PieriEvalWorkspace*>(ws); pw != nullptr && compiled_enabled_) {
    ensure_compiled()->evaluate(x, t, pw->w, h);
    return;
  }
  Homotopy::evaluate_into(x, t, ws, h);
}

void PieriEdgeHomotopy::evaluate_with_jacobian_into(const CVector& x, double t,
                                                    homotopy::HomotopyWorkspace* ws, CVector& h,
                                                    CMatrix& jx) const {
  if (auto* pw = dynamic_cast<PieriEvalWorkspace*>(ws); pw != nullptr && compiled_enabled_) {
    ensure_compiled()->evaluate_with_jacobian(x, t, pw->w, h, jx);
    return;
  }
  Homotopy::evaluate_with_jacobian_into(x, t, ws, h, jx);
}

void PieriEdgeHomotopy::evaluate_fused(const CVector& x, double t,
                                       homotopy::HomotopyWorkspace* ws, CVector& h, CMatrix& jx,
                                       CVector& ht) const {
  if (auto* pw = dynamic_cast<PieriEvalWorkspace*>(ws); pw != nullptr && compiled_enabled_) {
    ensure_compiled()->evaluate_fused(x, t, pw->w, h, jx, ht);
    return;
  }
  Homotopy::evaluate_fused(x, t, ws, h, jx, ht);
}

CMatrix PieriEdgeHomotopy::moving_plane(double t) const {
  CMatrix k = special_ * (gamma_ * (1.0 - t));
  k += target_.plane * Complex{t, 0.0};
  return k;
}

std::pair<Complex, Complex> PieriEdgeHomotopy::moving_point(double t) const {
  const double bump = t * (1.0 - t);
  const Complex s = Complex{1.0, 0.0} + Complex{t, 0.0} * (target_.point - Complex{1.0, 0.0}) +
                    bump * detour_s_;
  const Complex u = Complex{t, 0.0} + bump * detour_u_;
  return {s, u};
}

std::pair<Complex, Complex> PieriEdgeHomotopy::moving_point_dt(double t) const {
  const double dbump = 1.0 - 2.0 * t;
  const Complex sdot = (target_.point - Complex{1.0, 0.0}) + dbump * detour_s_;
  const Complex udot = Complex{1.0, 0.0} + dbump * detour_u_;
  return {sdot, udot};
}

CVector PieriEdgeHomotopy::evaluate(const CVector& x, double t) const {
  const std::size_t n = dimension();
  CVector h(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = evaluate_condition(chart_, x, fixed_[i].plane, fixed_[i].point, Complex{1.0, 0.0})
               .value;
  }
  const auto [s, u] = moving_point(t);
  h[n - 1] = evaluate_condition(chart_, x, moving_plane(t), s, u).value;
  return h;
}

CMatrix PieriEdgeHomotopy::jacobian_x(const CVector& x, double t) const {
  return evaluate_with_jacobian(x, t).second;
}

CVector PieriEdgeHomotopy::derivative_t(const CVector& x, double t) const {
  const std::size_t n = dimension();
  CVector dt(n, Complex{});
  const auto [s, u] = moving_point(t);
  const auto [sdot, udot] = moving_point_dt(t);
  const auto eval =
      evaluate_moving_condition(chart_, x, moving_plane(t), plane_dot_, s, u, sdot, udot);
  dt[n - 1] = eval.dt;
  return dt;
}

std::pair<CVector, CMatrix> PieriEdgeHomotopy::evaluate_with_jacobian(const CVector& x,
                                                                      double t) const {
  const std::size_t n = dimension();
  CVector h(n);
  CMatrix jac(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto eval =
        evaluate_condition(chart_, x, fixed_[i].plane, fixed_[i].point, Complex{1.0, 0.0});
    h[i] = eval.value;
    for (std::size_t c = 0; c < n; ++c) jac(i, c) = eval.gradient[c];
  }
  const auto [s, u] = moving_point(t);
  const auto eval = evaluate_condition(chart_, x, moving_plane(t), s, u);
  h[n - 1] = eval.value;
  for (std::size_t c = 0; c < n; ++c) jac(n - 1, c) = eval.gradient[c];
  return {std::move(h), std::move(jac)};
}

}  // namespace pph::schubert
