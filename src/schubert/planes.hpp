#pragma once
// Input planes and interpolation points for Pieri problems, and the special
// plane K_F of the Pieri homotopy.
//
// An intersection condition (paper eq. (2)) is a pair (K_i, s_i): the map
// X must satisfy det([X(s_i) | K_i]) = 0, i.e. the p-plane produced at the
// interpolation point s_i meets the given m-plane K_i nontrivially.

#include "linalg/matrix.hpp"
#include "schubert/pivots.hpp"
#include "util/prng.hpp"

namespace pph::schubert {

using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

/// One intersection condition: an m-plane in C^{m+p} (generator columns)
/// and the interpolation point at which the map must meet it.
struct PlaneCondition {
  CMatrix plane;   // (m+p) x m generator matrix
  Complex point;   // interpolation point s_i
};

/// A full Pieri problem instance: n = condition_count() conditions.
struct PieriInput {
  PieriProblem problem;
  std::vector<PlaneCondition> conditions;
};

/// Random instance: orthonormalized Gaussian planes, interpolation points
/// spread on a circle with random phases (generic with probability one).
PieriInput random_pieri_input(const PieriProblem& problem, util::Prng& rng);

/// The special m-plane K_F of the Pieri homotopy (paper section III-B):
/// columns are the unit vectors e_i for the residues i in {1..m+p} NOT hit
/// by the bottom pivots of the pattern.  With the map homogenized per
/// column, det([X(1,0) | K_F]) equals (up to sign) the product of the
/// bottom-pivot entries of Xhat, so the determinant vanishes exactly when a
/// bottom-pivot entry is zero -- which is how child solutions become start
/// solutions.
CMatrix special_plane(const Pattern& pattern);

/// Sign and row selection of the identity det([X(1,0)|K_F]) = +/- prod of
/// pivot entries: returns the permutation sign such that
/// det([X(1,0)|K_F]) = sign * prod_j Xhat[B_j, j].
int special_plane_sign(const Pattern& pattern);

}  // namespace pph::schubert
