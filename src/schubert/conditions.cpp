#include "schubert/conditions.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace pph::schubert {

namespace {

Complex ipow(Complex base, std::size_t e) {
  Complex v{1.0, 0.0};
  while (e) {
    if (e & 1u) v *= base;
    base *= base;
    e >>= 1u;
  }
  return v;
}

}  // namespace

PatternChart::PatternChart(Pattern pattern) : pattern_(std::move(pattern)) {
  if (!pattern_.valid()) throw std::invalid_argument("PatternChart: invalid pattern");
  cells_ = pattern_.free_cells();
  const std::size_t rows = pattern_.problem().space_dim();
  cell_block_.reserve(cells_.size());
  for (const auto& [r, c] : cells_) {
    (void)c;
    cell_block_.push_back(r / rows);
  }
  col_degree_.reserve(pattern_.problem().p);
  for (std::size_t j = 0; j < pattern_.problem().p; ++j) {
    col_degree_.push_back(pattern_.column_degree(j));
  }
}

CMatrix PatternChart::concatenated(const CVector& coords) const {
  if (coords.size() != cells_.size()) {
    throw std::invalid_argument("PatternChart::concatenated: coordinate count");
  }
  const PieriProblem& pb = pattern_.problem();
  CMatrix xhat(pb.concat_rows(), pb.p);
  for (std::size_t j = 0; j < pb.p; ++j) xhat(j, j) = Complex{1.0, 0.0};  // top pivots
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    xhat(cells_[k].first, cells_[k].second) = coords[k];
  }
  return xhat;
}

CMatrix PatternChart::evaluate_map(const CVector& coords, Complex s, Complex u) const {
  const PieriProblem& pb = pattern_.problem();
  const std::size_t rows = pb.space_dim();
  CMatrix a(rows, pb.p);
  // Top pivot of column j sits in block 0, row j: factor u^{deg_j}.
  for (std::size_t j = 0; j < pb.p; ++j) {
    a(j, j) = ipow(u, col_degree_[j]);
  }
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    const auto [concat_row, j] = cells_[k];
    const std::size_t d = cell_block_[k];
    const std::size_t r = concat_row % rows;
    a(r, j) += coords[k] * ipow(s, d) * ipow(u, col_degree_[j] - d);
  }
  return a;
}

Complex PatternChart::cell_factor(std::size_t k, Complex s, Complex u) const {
  const std::size_t d = cell_block_[k];
  const std::size_t j = cells_[k].second;
  return ipow(s, d) * ipow(u, col_degree_[j] - d);
}

Complex PatternChart::cell_factor_dt(std::size_t k, Complex s, Complex u, Complex sdot,
                                     Complex udot) const {
  const std::size_t d = cell_block_[k];
  const std::size_t e = col_degree_[cells_[k].second] - d;
  Complex out{};
  if (d > 0) out += static_cast<double>(d) * ipow(s, d - 1) * sdot * ipow(u, e);
  if (e > 0) out += ipow(s, d) * static_cast<double>(e) * ipow(u, e - 1) * udot;
  return out;
}

CVector PatternChart::embed_child(const PatternChart& child, const CVector& child_coords) const {
  if (child_coords.size() + 1 != cells_.size()) {
    throw std::invalid_argument("PatternChart::embed_child: level mismatch");
  }
  CVector out(cells_.size());
  std::size_t ci = 0;
  const auto& child_cells = child.cells();
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    if (ci < child_cells.size() && child_cells[ci] == cells_[k]) {
      out[k] = child_coords[ci];
      ++ci;
    } else {
      out[k] = Complex{};  // the freshly opened star cell starts at zero
    }
  }
  if (ci != child_cells.size()) {
    throw std::invalid_argument("PatternChart::embed_child: charts do not nest");
  }
  return out;
}

CMatrix cofactor_matrix(const CMatrix& b) {
  const std::size_t n = b.rows();
  if (n != b.cols()) throw std::invalid_argument("cofactor_matrix: not square");
  CMatrix cof(n, n);
  if (n == 1) {
    cof(0, 0) = Complex{1.0, 0.0};
    return cof;
  }
  CMatrix minor(n - 1, n - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t i = 0, mi = 0; i < n; ++i) {
        if (i == r) continue;
        for (std::size_t j = 0, mj = 0; j < n; ++j) {
          if (j == c) continue;
          minor(mi, mj) = b(i, j);
          ++mj;
        }
        ++mi;
      }
      const Complex d = linalg::LU(minor).determinant();
      cof(r, c) = ((r + c) % 2 == 0) ? d : -d;
    }
  }
  return cof;
}

ConditionEval evaluate_condition(const PatternChart& chart, const CVector& coords,
                                 const CMatrix& plane, Complex s, Complex u) {
  const CMatrix a = chart.evaluate_map(coords, s, u);
  const CMatrix b = CMatrix::hcat(a, plane);
  const CMatrix cof = cofactor_matrix(b);
  ConditionEval out;
  // det via the cofactor expansion along the first column (consistent with
  // the cofactors used for the gradient).
  Complex det{};
  for (std::size_t r = 0; r < b.rows(); ++r) det += b(r, 0) * cof(r, 0);
  out.value = det;
  const std::size_t rows = chart.pattern().problem().space_dim();
  out.gradient.assign(chart.dimension(), Complex{});
  for (std::size_t k = 0; k < chart.dimension(); ++k) {
    const auto [concat_row, j] = chart.cells()[k];
    const std::size_t r = concat_row % rows;
    out.gradient[k] = cof(r, j) * chart.cell_factor(k, s, u);
  }
  return out;
}

MovingConditionEval evaluate_moving_condition(const PatternChart& chart, const CVector& coords,
                                              const CMatrix& plane, const CMatrix& plane_dot,
                                              Complex s, Complex u, Complex sdot, Complex udot) {
  const CMatrix a = chart.evaluate_map(coords, s, u);
  const CMatrix b = CMatrix::hcat(a, plane);
  const CMatrix cof = cofactor_matrix(b);
  MovingConditionEval out;
  Complex det{};
  for (std::size_t r = 0; r < b.rows(); ++r) det += b(r, 0) * cof(r, 0);
  out.value = det;

  const PieriProblem& pb = chart.pattern().problem();
  const std::size_t rows = pb.space_dim();
  out.gradient.assign(chart.dimension(), Complex{});
  for (std::size_t k = 0; k < chart.dimension(); ++k) {
    const auto [concat_row, j] = chart.cells()[k];
    const std::size_t r = concat_row % rows;
    out.gradient[k] = cof(r, j) * chart.cell_factor(k, s, u);
  }

  // Total t-derivative: sum over all entries of dB/dt * cofactor.
  // Map columns: dA/dt from the moving (s,u); the top pivots contribute the
  // derivative of u^{deg_j}; the free cells the derivative of their factor.
  Complex dt{};
  for (std::size_t j = 0; j < pb.p; ++j) {
    const std::size_t deg = chart.pattern().column_degree(j);
    if (deg > 0) {
      dt += cof(j, j) * static_cast<double>(deg) * ipow(u, deg - 1) * udot;
    }
  }
  for (std::size_t k = 0; k < chart.dimension(); ++k) {
    const auto [concat_row, j] = chart.cells()[k];
    const std::size_t r = concat_row % rows;
    dt += cof(r, j) * coords[k] * chart.cell_factor_dt(k, s, u, sdot, udot);
  }
  // Plane columns move too.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < pb.m; ++c) {
      dt += cof(r, pb.p + c) * plane_dot(r, c);
    }
  }
  out.dt = dt;
  return out;
}

double condition_residual(const PatternChart& chart, const CVector& coords,
                          const PlaneCondition& condition) {
  const CMatrix a = chart.evaluate_map(coords, condition.point, Complex{1.0, 0.0});
  const CMatrix b = CMatrix::hcat(a, condition.plane);
  double scale = 1.0;
  for (std::size_t c = 0; c < b.cols(); ++c) {
    double colnorm = 0.0;
    for (std::size_t r = 0; r < b.rows(); ++r) colnorm += std::norm(b(r, c));
    scale *= std::sqrt(std::max(colnorm, 1e-300));
  }
  const Complex det = linalg::LU(b).determinant();
  return std::abs(det) / scale;
}

}  // namespace pph::schubert
