#pragma once
// The localization poset (paper section III-C, Fig 4) and the combinatorial
// root count.
//
// Nodes are the valid bottom-pivot patterns, graded by level; covers
// increment one pivot by one.  The number of solution maps fitting a
// pattern P and meeting level(P) general planes equals the number of
// saturated chains from the minimal pattern to P; at the root pattern this
// is the total root count d(m,p,q) of the pole placement problem (135,660
// for m=4, p=3, q=1, Table IV).

#include <cstdint>
#include <map>
#include <vector>

#include "schubert/pivots.hpp"

namespace pph::schubert {

/// Fully enumerated pattern poset with chain counts.
class PatternPoset {
 public:
  explicit PatternPoset(const PieriProblem& problem);

  const PieriProblem& problem() const { return problem_; }

  /// Patterns at a given level (0 .. condition_count()).
  const std::vector<Pattern>& patterns_at_level(std::size_t level) const;

  /// Number of levels == condition_count() + 1.
  std::size_t levels() const { return by_level_.size(); }

  /// Total number of valid patterns.
  std::size_t pattern_count() const;

  /// Chains from the minimal pattern to P ("solutions fitting P").
  /// Throws std::overflow_error if the count exceeds 64 bits.
  std::uint64_t chain_count(const Pattern& p) const;

  /// The root count d(m,p,q) == chain_count(root pattern).
  std::uint64_t root_count() const;

  /// Number of path-tracking jobs at each level 1..n when the problem is
  /// solved along the Pieri tree: level ell has sum_{P at level ell}
  /// chain_count(P) jobs (paper Table III).
  std::vector<std::uint64_t> jobs_per_level() const;

  /// Total jobs == total edges of the Pieri tree.
  std::uint64_t total_jobs() const;

 private:
  PieriProblem problem_;
  std::vector<std::vector<Pattern>> by_level_;
  std::map<std::vector<std::size_t>, std::uint64_t> counts_;
};

/// Closed form for q = 0: the degree of the Grassmannian G(p, m+p),
///   (mp)! * prod_{i=0}^{p-1} i! / (m+i)!.
/// Used as an independent cross-check of the poset DP.
std::uint64_t grassmannian_degree(std::size_t m, std::size_t p);

}  // namespace pph::schubert
