#include "schubert/map.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "linalg/lu.hpp"

namespace pph::schubert {

CMatrix MatrixPolynomial::evaluate(Complex s) const {
  if (coeffs.empty()) return {};
  CMatrix out = coeffs.back();
  for (std::size_t d = coeffs.size() - 1; d-- > 0;) {
    out = out * s;
    out += coeffs[d];
  }
  return out;
}

double MatrixPolynomial::residual(const PlaneCondition& condition) const {
  const CMatrix x = evaluate(condition.point);
  const CMatrix b = CMatrix::hcat(x, condition.plane);
  double scale = 1.0;
  for (std::size_t c = 0; c < b.cols(); ++c) {
    double colnorm = 0.0;
    for (std::size_t r = 0; r < b.rows(); ++r) colnorm += std::norm(b(r, c));
    scale *= std::sqrt(std::max(colnorm, 1e-300));
  }
  return std::abs(linalg::LU(b).determinant()) / scale;
}

double MatrixPolynomial::max_residual(const std::vector<PlaneCondition>& conditions) const {
  double worst = 0.0;
  for (const auto& c : conditions) worst = std::max(worst, residual(c));
  return worst;
}

bool MatrixPolynomial::is_real(double tol) const {
  for (const auto& coeff : coeffs) {
    for (std::size_t r = 0; r < coeff.rows(); ++r) {
      for (std::size_t c = 0; c < coeff.cols(); ++c) {
        if (std::abs(coeff(r, c).imag()) > tol * (1.0 + std::abs(coeff(r, c).real()))) {
          return false;
        }
      }
    }
  }
  return true;
}

MatrixPolynomial MatrixPolynomial::transformed(const CMatrix& u) const {
  MatrixPolynomial out;
  out.coeffs.reserve(coeffs.size());
  for (const auto& coeff : coeffs) out.coeffs.push_back(u * coeff);
  return out;
}

PieriMap::PieriMap(PatternChart chart, CVector coords)
    : chart_(std::move(chart)), coords_(std::move(coords)) {
  if (coords_.size() != chart_.dimension()) {
    throw std::invalid_argument("PieriMap: coordinate count mismatch");
  }
}

CMatrix PieriMap::evaluate(Complex s) const {
  return chart_.evaluate_map(coords_, s, Complex{1.0, 0.0});
}

CMatrix PieriMap::coefficient(std::size_t d) const {
  const PieriProblem& pb = problem();
  const std::size_t rows = pb.space_dim();
  CMatrix out(rows, pb.p);
  const CMatrix xhat = chart_.concatenated(coords_);
  if ((d + 1) * rows <= xhat.rows()) {
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < pb.p; ++c) out(r, c) = xhat(d * rows + r, c);
  }
  return out;
}

std::size_t PieriMap::degree() const {
  std::size_t deg = 0;
  for (std::size_t j = 0; j < problem().p; ++j) {
    deg = std::max(deg, chart_.pattern().column_degree(j));
  }
  return deg;
}

double PieriMap::residual(const PlaneCondition& condition) const {
  return condition_residual(chart_, coords_, condition);
}

double PieriMap::max_residual(const std::vector<PlaneCondition>& conditions) const {
  double worst = 0.0;
  for (const auto& c : conditions) worst = std::max(worst, residual(c));
  return worst;
}

bool PieriMap::is_real(double tol) const {
  for (const auto& v : coords_) {
    if (std::abs(v.imag()) > tol * (1.0 + std::abs(v.real()))) return false;
  }
  return true;
}

MatrixPolynomial PieriMap::to_matrix_polynomial() const {
  MatrixPolynomial out;
  for (std::size_t d = 0; d <= degree(); ++d) out.coeffs.push_back(coefficient(d));
  return out;
}

std::string PieriMap::to_string(int precision) const {
  const PieriProblem& pb = problem();
  const std::size_t rows = pb.space_dim();
  std::ostringstream os;
  os << std::setprecision(precision);
  const std::size_t deg = degree();
  for (std::size_t r = 0; r < rows; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < pb.p; ++c) {
      bool printed = false;
      std::ostringstream entry;
      for (std::size_t d = 0; d <= deg; ++d) {
        const Complex v = coefficient(d)(r, c);
        if (std::abs(v) < 1e-12) continue;
        if (printed) entry << " + ";
        entry << "(" << v.real() << (v.imag() < 0 ? "" : "+") << v.imag() << "i)";
        if (d == 1) entry << "*s";
        if (d > 1) entry << "*s^" << d;
        printed = true;
      }
      os << (printed ? entry.str() : "0");
      if (c + 1 < pb.p) os << ",  ";
    }
    os << (r + 1 == rows ? "]\n" : "\n");
  }
  return os.str();
}

}  // namespace pph::schubert
