#include "schubert/planes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/qr.hpp"

namespace pph::schubert {

PieriInput random_pieri_input(const PieriProblem& problem, util::Prng& rng) {
  PieriInput input;
  input.problem = problem;
  const std::size_t n = problem.condition_count();
  const std::size_t rows = problem.space_dim();
  input.conditions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CMatrix raw(rows, problem.m);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < problem.m; ++c) raw(r, c) = rng.normal_complex();
    PlaneCondition cond;
    cond.plane = linalg::orthonormalize_columns(raw);
    // Interpolation points on a ring of radius ~1 with random phase and a
    // small radial jitter: distinct and away from 0 and infinity.
    const double theta = 2.0 * std::numbers::pi * (static_cast<double>(i) + rng.uniform()) /
                         static_cast<double>(n);
    const double radius = 0.8 + 0.4 * rng.uniform();
    cond.point = Complex{radius * std::cos(theta), radius * std::sin(theta)};
    input.conditions.push_back(std::move(cond));
  }
  return input;
}

CMatrix special_plane(const Pattern& pattern) {
  const PieriProblem& pb = pattern.problem();
  const std::size_t rows = pb.space_dim();
  std::vector<bool> hit(rows + 1, false);
  for (std::size_t j = 0; j < pb.p; ++j) hit[pattern.pivot_residue(j)] = true;
  CMatrix k(rows, pb.m);
  std::size_t col = 0;
  for (std::size_t r = 1; r <= rows; ++r) {
    if (hit[r]) continue;
    k(r - 1, col) = Complex{1.0, 0.0};
    ++col;
  }
  return k;
}

int special_plane_sign(const Pattern& pattern) {
  // With all bottom-pivot entries set to 1 and every other star zero, the
  // homogenized map evaluated at (s,u) = (1,0) has columns e_{r_j}, so
  // [X(1,0) | K_F] is a permutation matrix; its determinant is the parity
  // of the permutation sending column j to row r_j and the K_F columns to
  // the complement rows in increasing order.
  const PieriProblem& pb = pattern.problem();
  const std::size_t rows = pb.space_dim();
  std::vector<std::size_t> image;  // image[row of column c] per column c
  image.reserve(rows);
  std::vector<bool> hit(rows + 1, false);
  for (std::size_t j = 0; j < pb.p; ++j) {
    image.push_back(pattern.pivot_residue(j) - 1);
    hit[pattern.pivot_residue(j)] = true;
  }
  for (std::size_t r = 1; r <= rows; ++r) {
    if (!hit[r]) image.push_back(r - 1);
  }
  // Parity by counting inversions (rows is tiny).
  int sign = 1;
  for (std::size_t i = 0; i < image.size(); ++i)
    for (std::size_t j = i + 1; j < image.size(); ++j)
      if (image[i] > image[j]) sign = -sign;
  return sign;
}

}  // namespace pph::schubert
