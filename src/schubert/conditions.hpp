#pragma once
// Coordinate charts on localization patterns and evaluation of the bordered
// intersection determinants det([X(s,u) | K]) with gradients.
//
// A pattern at level ell fixes a chart: the free star cells of the
// concatenated matrix Xhat (top-pivot entries normalized to one).  The
// Pieri homotopy is a square system of ell such determinants in the ell
// chart coordinates; every evaluation needs the determinant value and its
// gradient with respect to the chart, which comes from the cofactors of the
// bordered matrix (d det / d B_{rc} = cofactor_{rc}).

#include "schubert/planes.hpp"

namespace pph::schubert {

/// Chart on a pattern: packing of the free star cells into a coordinate
/// vector, and evaluation of the represented map.
class PatternChart {
 public:
  explicit PatternChart(Pattern pattern);

  const Pattern& pattern() const { return pattern_; }
  /// Number of chart coordinates == pattern level.
  std::size_t dimension() const { return cells_.size(); }
  /// Free cells (concat_row, column), in chart order.
  const std::vector<std::pair<std::size_t, std::size_t>>& cells() const { return cells_; }

  /// Expand chart coordinates into the full concatenated matrix (M x p),
  /// with ones at the top pivots and zeros off-pattern.
  CMatrix concatenated(const CVector& coords) const;

  /// Evaluate the map at (s, u) with the per-column homogenization degrees
  /// of the pattern: column j = sum_d s^d u^{deg_j - d} Xhat_block_d[:, j].
  /// With u = 1 this is the plain evaluation X(s).
  CMatrix evaluate_map(const CVector& coords, Complex s, Complex u) const;

  /// Coefficient multiplying chart coordinate `k` inside evaluate_map
  /// (the monomial s^d u^{deg_j - d} of its cell): the chain-rule factor of
  /// the determinant gradients.
  Complex cell_factor(std::size_t k, Complex s, Complex u) const;

  /// d/dt of cell_factor for s = s(t), u = u(t) with derivatives sdot/udot.
  Complex cell_factor_dt(std::size_t k, Complex s, Complex u, Complex sdot, Complex udot) const;

  /// Embed coordinates from a child chart (this pattern with one pivot
  /// decremented): the new cell gets value zero.  Chart orders agree on the
  /// shared cells.
  CVector embed_child(const PatternChart& child, const CVector& child_coords) const;

 private:
  Pattern pattern_;
  std::vector<std::pair<std::size_t, std::size_t>> cells_;
  std::vector<std::size_t> cell_block_;   // degree block of each cell
  std::vector<std::size_t> col_degree_;   // homogenization degree per column
};

/// Value and chart-gradient of det([X(s,u) | K]).
struct ConditionEval {
  Complex value;
  CVector gradient;  // with respect to the chart coordinates
};

/// Evaluate one bordered intersection determinant at the chart point.
ConditionEval evaluate_condition(const PatternChart& chart, const CVector& coords,
                                 const CMatrix& plane, Complex s, Complex u);

/// As above plus the total t-derivative for moving data: s(t), u(t) with
/// derivatives sdot, udot, and plane(t) with entrywise derivative
/// plane_dot.  Used by the tangent predictor of the Pieri homotopy.
struct MovingConditionEval {
  Complex value;
  CVector gradient;
  Complex dt;
};
MovingConditionEval evaluate_moving_condition(const PatternChart& chart, const CVector& coords,
                                              const CMatrix& plane, const CMatrix& plane_dot,
                                              Complex s, Complex u, Complex sdot, Complex udot);

/// Cofactor matrix of a square matrix (adjugate transpose):
/// cof(r,c) = (-1)^{r+c} det(minor_{rc}).  Computed by explicit minors; the
/// bordered matrices are at most (m+p) x (m+p) so this is cheap and it
/// stays accurate when det(B) ~ 0 (which is the whole point: we solve
/// det = 0).
CMatrix cofactor_matrix(const CMatrix& b);

/// Relative residual of a condition at a solution: |det([X(s,1)|K])|
/// divided by the product of the column norms (Hadamard scale).
double condition_residual(const PatternChart& chart, const CVector& coords,
                          const PlaneCondition& condition);

}  // namespace pph::schubert
