#include "schubert/poset.hpp"

#include <stdexcept>

namespace pph::schubert {

namespace {

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  if (a > ~std::uint64_t{0} - b) throw std::overflow_error("PatternPoset: count overflow");
  return a + b;
}

}  // namespace

PatternPoset::PatternPoset(const PieriProblem& problem) : problem_(problem) {
  const std::size_t n = problem_.condition_count();
  by_level_.resize(n + 1);
  const Pattern min_pattern = Pattern::minimal(problem_);
  by_level_[0].push_back(min_pattern);
  counts_[min_pattern.pivots()] = 1;

  // Breadth-first generation level by level; counts accumulate along covers.
  for (std::size_t level = 0; level < n; ++level) {
    std::map<std::vector<std::size_t>, std::uint64_t> next_counts;
    std::vector<Pattern> next_patterns;
    for (const Pattern& p : by_level_[level]) {
      const std::uint64_t c = counts_.at(p.pivots());
      for (const Pattern& up : p.parents()) {
        auto [it, inserted] = next_counts.try_emplace(up.pivots(), 0);
        if (inserted) next_patterns.push_back(up);
        it->second = checked_add(it->second, c);
      }
    }
    for (auto& [pivots, c] : next_counts) counts_[pivots] = c;
    by_level_[level + 1] = std::move(next_patterns);
  }

  if (by_level_[n].size() != 1) {
    throw std::logic_error("PatternPoset: top level is not a single root pattern");
  }
}

const std::vector<Pattern>& PatternPoset::patterns_at_level(std::size_t level) const {
  if (level >= by_level_.size()) throw std::out_of_range("PatternPoset::patterns_at_level");
  return by_level_[level];
}

std::size_t PatternPoset::pattern_count() const {
  std::size_t total = 0;
  for (const auto& lvl : by_level_) total += lvl.size();
  return total;
}

std::uint64_t PatternPoset::chain_count(const Pattern& p) const {
  const auto it = counts_.find(p.pivots());
  if (it == counts_.end()) throw std::invalid_argument("PatternPoset::chain_count: unknown pattern");
  return it->second;
}

std::uint64_t PatternPoset::root_count() const {
  return counts_.at(by_level_.back().front().pivots());
}

std::vector<std::uint64_t> PatternPoset::jobs_per_level() const {
  std::vector<std::uint64_t> jobs;
  jobs.reserve(by_level_.size() - 1);
  for (std::size_t level = 1; level < by_level_.size(); ++level) {
    std::uint64_t total = 0;
    for (const Pattern& p : by_level_[level]) {
      total = checked_add(total, counts_.at(p.pivots()));
    }
    jobs.push_back(total);
  }
  return jobs;
}

std::uint64_t PatternPoset::total_jobs() const {
  std::uint64_t total = 0;
  for (const auto j : jobs_per_level()) total = checked_add(total, j);
  return total;
}

std::uint64_t grassmannian_degree(std::size_t m, std::size_t p) {
  // Hook length formula on the p x m rectangle: the degree of G(p, m+p) in
  // the Pluecker embedding is (mp)! divided by the product of the hook
  // lengths (p - i) + (m - j) - 1 for each cell (i, j), 0-based.  Evaluated
  // exactly with a 128-bit accumulator and greedy division.
  std::vector<std::uint64_t> hooks;
  hooks.reserve(m * p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < m; ++j) hooks.push_back((p - i) + (m - j) - 1);
  }
  unsigned __int128 acc = 1;
  for (std::size_t k = 1; k <= m * p; ++k) {
    acc *= k;
    for (auto& d : hooks) {
      if (d != 1 && acc % d == 0) {
        acc /= d;
        d = 1;
      }
    }
    if (acc > (static_cast<unsigned __int128>(1) << 120)) {
      throw std::overflow_error("grassmannian_degree: overflow");
    }
  }
  for (const auto& d : hooks) {
    if (d != 1) acc /= d;
  }
  return static_cast<std::uint64_t>(acc);
}

}  // namespace pph::schubert
