#pragma once
// Solution maps X(s): the output of the Pieri solver as polynomial matrices
// producing p-planes, with evaluation and pretty-printing.

#include <string>

#include "schubert/conditions.hpp"

namespace pph::schubert {

/// A chart-free matrix polynomial X(s) = sum_d coeffs[d] s^d.  Solutions
/// leave the localization chart in this form when the problem was solved in
/// rotated coordinates (see pole_placement.hpp).
struct MatrixPolynomial {
  std::vector<CMatrix> coeffs;  // (m+p) x p each, low degree first

  CMatrix evaluate(Complex s) const;
  std::size_t degree() const { return coeffs.empty() ? 0 : coeffs.size() - 1; }

  /// Relative residual of det([X(s)|K]) (Hadamard-scaled).
  double residual(const PlaneCondition& condition) const;
  double max_residual(const std::vector<PlaneCondition>& conditions) const;

  /// All coefficients numerically real?
  bool is_real(double tol = 1e-8) const;

  /// Left-multiply every coefficient by U.
  MatrixPolynomial transformed(const CMatrix& u) const;
};

/// A degree-q polynomial map X : C -> C^{(m+p) x p} represented by a
/// pattern chart and its coordinates (the concatenated coefficients).
class PieriMap {
 public:
  PieriMap(PatternChart chart, CVector coords);

  const PatternChart& chart() const { return chart_; }
  const CVector& coords() const { return coords_; }
  const PieriProblem& problem() const { return chart_.pattern().problem(); }

  /// Evaluate X(s) (affine chart u = 1): an (m+p) x p matrix whose column
  /// span is the output plane at s.
  CMatrix evaluate(Complex s) const;

  /// Coefficient matrix of s^d (an (m+p) x p matrix; zero above the degree).
  CMatrix coefficient(std::size_t d) const;

  /// Maximal per-column degree.
  std::size_t degree() const;

  /// Relative residual of one intersection condition at this map.
  double residual(const PlaneCondition& condition) const;
  /// Largest relative residual over a full condition set.
  double max_residual(const std::vector<PlaneCondition>& conditions) const;

  /// True when all concatenated coefficients have (numerically) zero
  /// imaginary part, i.e. the feedback law is realizable over the reals.
  bool is_real(double tol = 1e-8) const;

  /// Human-readable matrix of polynomials in s.
  std::string to_string(int precision = 4) const;

  /// Chart-free form (all coefficient matrices, low degree first).
  MatrixPolynomial to_matrix_polynomial() const;

 private:
  PatternChart chart_;
  CVector coords_;
};

}  // namespace pph::schubert
