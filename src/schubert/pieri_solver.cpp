#include "schubert/pieri_solver.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace pph::schubert {

homotopy::TrackerOptions PieriSolverOptions::default_tracker() {
  homotopy::TrackerOptions t;
  // Pieri paths are short and well conditioned (no path diverges in
  // theory); moderately small steps with a roomy rejection budget are
  // robust across the (m,p,q) grid.
  t.initial_step = 0.04;
  t.max_step = 0.15;
  t.corrector.max_iterations = 4;
  t.corrector.residual_tolerance = 1e-11;
  t.end_corrector.residual_tolerance = 1e-13;
  // The determinant equations scale like ||x||^p, so endpoints of larger
  // magnitude bottom out above the hard tolerance; solution quality is
  // ultimately judged by the scale-aware condition_residual.
  t.end_corrector.stagnation_tolerance = 1e-9;
  return t;
}

homotopy::TrackerOptions attempt_tracker(const PieriSolverOptions& opts, std::size_t attempt,
                                         std::size_t rescue) {
  homotopy::TrackerOptions t = opts.tracker;
  for (std::size_t k = 0; k < attempt; ++k) {
    t.initial_step *= 0.25;
    t.max_step *= 0.5;
    t.corrector.max_iterations += 2;
  }
  for (std::size_t k = 0; k < rescue; ++k) {
    t.initial_step *= 0.2;
    t.max_step *= 0.2;
    t.corrector.max_iterations += 2;
    // Tighten the corrector residual, but never below the double rounding
    // floor -- an unreachable tolerance rejects every step and the re-track
    // dies of step underflow instead of rescuing anything.
    t.corrector.residual_tolerance = std::max(t.corrector.residual_tolerance * 0.1, 1e-12);
  }
  if (rescue > 0) {
    t.endgame.enabled = true;
    t.endgame.threshold = 0.9;
    t.endgame.dd_refine = true;
  }
  if (rescue >= 2) {
    // Last-resort rounds: compensated Newton on EVERY step (not just the
    // endgame), an earlier endgame engagement, and stagnation acceptance in
    // the mid-path corrector.  A path skirting the discriminant locus hits
    // an interior near-singular point whose conditioning caps the
    // attainable residual above the hard tolerance; without a stagnation
    // floor every step there is rejected until the step size underflows.
    // The floor sits below suspect_residual, so accepted points still face
    // the suspect/collision quality control.
    t.corrector.dd_refine = true;
    t.corrector.stagnation_tolerance = std::max(t.corrector.stagnation_tolerance, 1e-8);
    t.endgame.threshold = 0.8;
    t.min_step = std::min(t.min_step, 1e-12);
  }
  return t;
}

std::vector<std::size_t> rescue_targets(const std::vector<homotopy::PathResult>& results,
                                        const PieriSolverOptions& opts) {
  std::vector<std::size_t> targets;
  std::vector<char> flagged(results.size(), 0);
  std::vector<CVector> endpoints;
  std::vector<std::size_t> endpoint_owner;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].converged() || homotopy::suspect_path(results[i], opts.suspect_residual)) {
      flagged[i] = 1;
    }
    if (results[i].converged()) {
      endpoints.push_back(results[i].x);
      endpoint_owner.push_back(i);
    }
  }
  // Both members of a colliding pair re-track: the jumped path is not
  // identifiable from the endpoints alone.
  for (const poly::ClosePair& p : poly::duplicate_pairs(endpoints, opts.distinct_tolerance)) {
    flagged[endpoint_owner[p.a]] = 1;
    flagged[endpoint_owner[p.b]] = 1;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (flagged[i]) targets.push_back(i);
  }
  return targets;
}

PieriSolveSummary solve_pieri(const PieriInput& input, const PieriSolverOptions& opts) {
  const PieriProblem& pb = input.problem;
  const std::size_t n = pb.condition_count();
  if (input.conditions.size() != n) {
    throw std::invalid_argument("solve_pieri: wrong number of conditions");
  }

  util::WallTimer total_timer;
  util::Prng gamma_rng(opts.gamma_seed);
  PatternPoset poset(pb);

  PieriSolveSummary summary;
  summary.expected_count = poset.root_count();

  // Solutions per pattern at the current level, keyed by pivot tuple.
  std::map<std::vector<std::size_t>, std::vector<CVector>> current;
  current[Pattern::minimal(pb).pivots()] = {CVector{}};

  for (std::size_t level = 1; level <= n; ++level) {
    util::WallTimer level_timer;
    PieriLevelStats stats;
    stats.level = level;

    std::map<std::vector<std::size_t>, std::vector<CVector>> next;
    // Conditions 1..level-1 are enforced, condition `level` is the target.
    const std::vector<PlaneCondition> fixed(input.conditions.begin(),
                                            input.conditions.begin() + (level - 1));
    const PlaneCondition& target = input.conditions[level - 1];

    for (const Pattern& parent : poset.patterns_at_level(level)) {
      PatternChart chart(parent);

      // Collect the start solutions: every solution of every child pattern,
      // embedded with the freshly opened star cell at zero.
      std::vector<CVector> starts;
      for (const Pattern& child : parent.children()) {
        const auto it = current.find(child.pivots());
        if (it == current.end()) continue;
        PatternChart child_chart(child);
        for (const CVector& child_coords : it->second) {
          starts.push_back(chart.embed_child(child_chart, child_coords));
        }
      }
      if (starts.empty()) continue;

      // Instance-level quality control.  All sibling edges into this
      // (pattern, level) instance must ride the SAME deformation (same
      // gamma); otherwise start solutions from different children can
      // converge to the same endpoint and solutions are lost.  A retry
      // therefore redoes the whole instance: fresh gamma, tighter tracker.
      // Retries trigger on any edge failure and on endpoint collisions
      // (path jumping between close paths).
      std::vector<CVector> endpoints;
      std::vector<double> edge_seconds;
      std::size_t lost = 0;
      bool accepted = false;
      bool used_rescue = false;
      for (std::size_t attempt = 0; attempt <= opts.max_retries && !accepted; ++attempt) {
        endpoints.clear();
        edge_seconds.clear();
        const Complex gamma = gamma_rng.unit_complex();
        // Random detour of the interpolation-point path: structured inputs
        // (real plants, conjugate pole sets) can make the straight path
        // non-generic for every gamma.
        const Complex detour_s = 0.7 * gamma_rng.unit_complex();
        const Complex detour_u = 0.7 * gamma_rng.unit_complex();
        PieriEdgeHomotopy h(chart, fixed, target, gamma, detour_s, detour_u);
        h.set_compiled(opts.compiled_eval);
        const auto topts = attempt_tracker(opts, attempt);
        homotopy::TrackerWorkspace ws(h);
        std::vector<homotopy::PathResult> results;
        results.reserve(starts.size());
        for (const CVector& start : starts) {
          util::WallTimer job_timer;
          auto r = homotopy::track_path(h, start, topts, ws);
          r.rescue_attempts = static_cast<std::uint32_t>(attempt);
          edge_seconds.push_back(job_timer.seconds());
          stats.newton_iterations += r.newton_iterations;
          results.push_back(std::move(r));
        }
        // Targeted rescue rounds: re-track the failed, suspect and
        // colliding paths under the SAME deformation with harsher
        // tracking.  The start-to-root correspondence is fixed by gamma,
        // so the re-track recovers exactly the root its path leads to --
        // a fresh gamma could legitimately send two rescued starts to the
        // same endpoint.
        for (std::size_t round = 1; opts.rescue && round <= opts.rescue_attempts; ++round) {
          const auto targets = rescue_targets(results, opts);
          if (targets.empty()) break;
          summary.suspect_paths += targets.size();
          const auto ropts = attempt_tracker(opts, attempt, round);
          for (const std::size_t i : targets) {
            auto r = homotopy::track_path(h, starts[i], ropts, ws);
            r.rescue_attempts = static_cast<std::uint32_t>(attempt + round);
            r.rescued = r.converged();
            stats.newton_iterations += r.newton_iterations;
            ++summary.rescue_retracks;
            used_rescue = true;
            results[i] = std::move(r);
          }
        }
        lost = 0;
        for (const auto& r : results) {
          if (r.converged()) {
            endpoints.push_back(r.x);
          } else {
            ++lost;
          }
        }
        const bool distinct =
            poly::deduplicate_solutions(endpoints, opts.distinct_tolerance).size() ==
            endpoints.size();
        accepted = lost == 0 && distinct;
        if (!accepted && attempt == opts.max_retries) {
          // Count a collision pair as one lost path on top of the tracking
          // losses, so `failures` reflects missing solutions downstream.
          lost += endpoints.size() -
                  poly::deduplicate_solutions(endpoints, opts.distinct_tolerance).size();
          PPH_LOG_WARN << "Pieri instance failed at level " << level << " pattern "
                       << parent.to_string() << " (" << lost << " paths lost)";
          for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            if (r.converged()) continue;
            PPH_LOG_WARN << "  lost path " << i << ": status="
                         << (r.status == homotopy::PathStatus::kDiverged ? "diverged" : "failed")
                         << " t=" << r.t_reached << " residual=" << r.residual
                         << " last_step=" << r.last_step << " rescue=" << r.rescue_attempts;
          }
        }
      }
      if (accepted && used_rescue) ++summary.rescued_instances;
      if (!accepted) stats.failures += lost;
      stats.jobs += starts.size();
      summary.job_seconds.insert(summary.job_seconds.end(), edge_seconds.begin(),
                                 edge_seconds.end());
      next[parent.pivots()] = std::move(endpoints);
    }

    stats.seconds = level_timer.seconds();
    summary.total_jobs += stats.jobs;
    summary.failures += stats.failures;
    summary.levels.push_back(stats);
    current = std::move(next);
  }

  // The root level has exactly one pattern carrying all solutions.
  const Pattern root = Pattern::root(pb);
  PatternChart root_chart(root);
  const auto it = current.find(root.pivots());
  if (it != current.end()) {
    for (const CVector& coords : it->second) {
      summary.solutions.emplace_back(root_chart, coords);
    }
  }

  // Verification: relative residual of every condition at every solution.
  for (const auto& sol : summary.solutions) {
    const double res = sol.max_residual(input.conditions);
    summary.max_residual = std::max(summary.max_residual, res);
    if (res < opts.verify_tolerance) ++summary.verified;
  }
  // Distinctness in chart coordinates.
  std::vector<CVector> coord_list;
  coord_list.reserve(summary.solutions.size());
  for (const auto& sol : summary.solutions) coord_list.push_back(sol.coords());
  summary.distinct = poly::deduplicate_solutions(coord_list, opts.distinct_tolerance).size();

  summary.seconds = total_timer.seconds();
  return summary;
}

homotopy::CertificateReport certify_pieri(const PieriInput& input,
                                          const PieriSolveSummary& summary,
                                          const homotopy::CertifyOptions& opts) {
  std::vector<CVector> coords;
  std::vector<double> residuals;
  coords.reserve(summary.solutions.size());
  residuals.reserve(summary.solutions.size());
  for (const auto& sol : summary.solutions) {
    coords.push_back(sol.coords());
    residuals.push_back(sol.max_residual(input.conditions));
  }
  return homotopy::certify_solution_set(coords, residuals, summary.expected_count, opts);
}

PieriSolveSummary solve_random_pieri(const PieriProblem& problem, std::uint64_t seed,
                                     const PieriSolverOptions& opts) {
  util::Prng rng(seed);
  const PieriInput input = random_pieri_input(problem, rng);
  return solve_pieri(input, opts);
}

}  // namespace pph::schubert
