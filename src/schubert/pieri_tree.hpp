#pragma once
// The Pieri tree (paper section III-C, Fig 5): the pattern poset unrolled
// into a tree whose nodes are saturated chains from the minimal pattern.
// Each edge is one path-tracking job; two jobs are independent once their
// common ancestor's solution is known, which is what makes the tree the
// right job structure for parallel machines (and keeps memory local: a
// node is dead once its at-most-p child jobs have finished).

#include <cstdint>

#include "schubert/poset.hpp"

namespace pph::schubert {

/// Explicitly enumerated Pieri tree; suitable for small problems (tests and
/// the Table III instance).  Larger problems use the virtual expansion of
/// the parallel scheduler.
class PieriTree {
 public:
  struct Node {
    Pattern pattern;
    std::size_t parent = kNoParent;  // index into nodes(); root has none
    std::size_t depth = 0;
  };
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  explicit PieriTree(const PieriProblem& problem, std::size_t max_nodes = 2'000'000);

  const PieriProblem& problem() const { return problem_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t node_count() const { return nodes_.size(); }
  /// Edges == jobs == node_count() - 1 (every non-root node has one edge).
  std::size_t edge_count() const { return nodes_.size() - 1; }

  /// Node indices at a given depth (depth 0 is the single root).
  const std::vector<std::size_t>& nodes_at_depth(std::size_t depth) const;
  std::size_t depth_count() const { return by_depth_.size(); }

  /// Leaves sit at the maximal depth n and correspond one-to-one to the
  /// solutions of the Pieri problem.
  std::size_t leaf_count() const;

 private:
  PieriProblem problem_;
  std::vector<Node> nodes_;
  std::vector<std::vector<std::size_t>> by_depth_;
};

}  // namespace pph::schubert
