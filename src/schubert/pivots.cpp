#include "schubert/pivots.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pph::schubert {

std::size_t PieriProblem::concat_rows() const {
  const std::size_t a = q / p;
  const std::size_t b = q % p;
  return (b == 0 ? a + 1 : a + 2) * space_dim();
}

std::size_t PieriProblem::column_height(std::size_t j) const {
  if (j >= p) throw std::out_of_range("PieriProblem::column_height");
  const std::size_t a = q / p;
  const std::size_t b = q % p;
  // Columns are 0-based here; the first p-b columns have the lower height.
  return (j < p - b ? a + 1 : a + 2) * space_dim();
}

Pattern::Pattern(PieriProblem problem, std::vector<std::size_t> bottom_pivots)
    : problem_(problem), pivots_(std::move(bottom_pivots)) {
  if (problem_.m == 0 || problem_.p == 0) {
    throw std::invalid_argument("Pattern: m and p must be positive");
  }
  if (pivots_.size() != problem_.p) {
    throw std::invalid_argument("Pattern: need one bottom pivot per column");
  }
}

std::size_t Pattern::level() const {
  std::size_t lvl = 0;
  for (std::size_t j = 0; j < pivots_.size(); ++j) lvl += pivots_[j] - (j + 1);
  return lvl;
}

bool Pattern::valid() const {
  const std::size_t spread = problem_.space_dim();
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    if (pivots_[j] < j + 1) return false;                       // below top pivot
    if (pivots_[j] > problem_.column_height(j)) return false;   // rule 1
    if (j > 0 && pivots_[j] <= pivots_[j - 1]) return false;    // rule 2
  }
  // Rule 3: no two bottom pivots differ by m+p or more.
  if (pivots_.back() - pivots_.front() >= spread) return false;
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> Pattern::star_cells() const {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    for (std::size_t row = j + 1; row <= pivots_[j]; ++row) {
      cells.emplace_back(row - 1, j);
    }
  }
  return cells;
}

std::vector<std::pair<std::size_t, std::size_t>> Pattern::free_cells() const {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    for (std::size_t row = j + 2; row <= pivots_[j]; ++row) {
      cells.emplace_back(row - 1, j);
    }
  }
  return cells;
}

std::vector<Pattern> Pattern::children() const {
  std::vector<Pattern> out;
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    if (pivots_[j] == j + 1) continue;
    Pattern child(*this);
    --child.pivots_[j];
    if (child.valid()) out.push_back(std::move(child));
  }
  return out;
}

std::vector<Pattern> Pattern::parents() const {
  std::vector<Pattern> out;
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    Pattern parent(*this);
    ++parent.pivots_[j];
    if (parent.valid()) out.push_back(std::move(parent));
  }
  return out;
}

std::size_t Pattern::child_column(const Pattern& child) const {
  std::size_t column = problem_.p;
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    if (child.pivots_[j] + 1 == pivots_[j]) {
      if (column != problem_.p) return problem_.p;  // two columns differ
      column = j;
    } else if (child.pivots_[j] != pivots_[j]) {
      return problem_.p;
    }
  }
  return column;
}

Pattern Pattern::minimal(const PieriProblem& problem) {
  std::vector<std::size_t> pivots(problem.p);
  for (std::size_t j = 0; j < problem.p; ++j) pivots[j] = j + 1;
  return Pattern(problem, std::move(pivots));
}

Pattern Pattern::root(const PieriProblem& problem) {
  // The unique valid pattern of level n = condition_count().  Build by
  // maximizing pivots from the last column down under the height and spread
  // constraints, then verify the level.
  const std::size_t spread = problem.space_dim();
  std::vector<std::size_t> pivots(problem.p);
  // First pass: heights and monotonicity from the right.
  for (std::size_t jj = problem.p; jj-- > 0;) {
    std::size_t cap = problem.column_height(jj);
    if (jj + 1 < problem.p) cap = std::min(cap, pivots[jj + 1] - 1);
    pivots[jj] = cap;
  }
  // Second pass: enforce the spread rule by lowering the top end.  The
  // first pass gives the maximal B_1; every pivot may be at most
  // B_1 + spread - 1.
  for (std::size_t j = 1; j < problem.p; ++j) {
    pivots[j] = std::min(pivots[j], pivots[0] + spread - 1);
  }
  // Re-assert monotonicity (lowering from the spread rule keeps it, but a
  // final fix-up keeps the construction honest for degenerate shapes).
  for (std::size_t j = 1; j < problem.p; ++j) {
    if (pivots[j] <= pivots[j - 1]) {
      throw std::logic_error("Pattern::root: construction failed (monotonicity)");
    }
  }
  Pattern r(problem, std::move(pivots));
  if (!r.valid() || r.level() != problem.condition_count()) {
    throw std::logic_error("Pattern::root: construction failed (level)");
  }
  return r;
}

std::string Pattern::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t j = 0; j < pivots_.size(); ++j) {
    if (j) os << " ";
    os << pivots_[j];
  }
  os << "]";
  return os.str();
}

}  // namespace pph::schubert
