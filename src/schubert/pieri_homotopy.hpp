#pragma once
// The Pieri homotopy on one edge of the Pieri tree (paper eq. (3)).
//
// Fix a pattern P at level ell.  A child solution (pattern with one bottom
// pivot decremented, meeting conditions 1..ell-1) is deformed into a
// solution fitting P and meeting conditions 1..ell by moving
//   - the m-plane K from gamma * K_F(P) (the special plane whose bordered
//     determinant is the product of P's bottom-pivot entries) to K_ell, and
//   - the interpolation point (s, u) from infinity (1, 0) to (s_ell, 1),
// while conditions 1..ell-1 stay enforced.  The continuation parameter t
// moves both; the paper notes the "double use of t" as homogenizing
// variable and continuation parameter -- here the homogenizing coordinate
// is named u and u(t) = t.

#include "homotopy/homotopy.hpp"
#include "schubert/conditions.hpp"

namespace pph::schubert {

/// Square homotopy in the chart coordinates of the parent pattern.
class PieriEdgeHomotopy final : public homotopy::Homotopy {
 public:
  /// `fixed` are conditions 1..ell-1 (already satisfied by the start
  /// solution); `target` is condition ell; `gamma` randomizes the start
  /// plane (gamma trick).  The detour constants bend the interpolation-point
  /// path (s(t), u(t)) into the complex plane away from the straight
  /// segment: with structured (for example real) input data the straight
  /// path can be non-generic for every gamma, so the solver draws random
  /// detours per instance.
  PieriEdgeHomotopy(PatternChart chart, std::vector<PlaneCondition> fixed,
                    PlaneCondition target, Complex gamma, Complex detour_s = Complex{},
                    Complex detour_u = Complex{});

  std::size_t dimension() const override { return chart_.dimension(); }
  CVector evaluate(const CVector& x, double t) const override;
  CMatrix jacobian_x(const CVector& x, double t) const override;
  CVector derivative_t(const CVector& x, double t) const override;
  std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const override;

  const PatternChart& chart() const { return chart_; }

  /// Moving plane K(t) = (1-t) gamma K_F + t K_target.
  CMatrix moving_plane(double t) const;
  /// Moving interpolation point from (1, 0) at t=0 to (s_target, 1) at t=1:
  ///   s(t) = 1 + t (s_target - 1) + t(1-t) detour_s,
  ///   u(t) = t + t(1-t) detour_u.
  std::pair<Complex, Complex> moving_point(double t) const;
  /// Derivatives (ds/dt, du/dt).
  std::pair<Complex, Complex> moving_point_dt(double t) const;

 private:
  PatternChart chart_;
  std::vector<PlaneCondition> fixed_;
  PlaneCondition target_;
  Complex gamma_;
  Complex detour_s_;
  Complex detour_u_;
  CMatrix special_;       // K_F of the chart's pattern
  CMatrix plane_dot_;     // dK/dt = K_target - gamma K_F (constant)
};

}  // namespace pph::schubert
