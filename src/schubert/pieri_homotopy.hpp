#pragma once
// The Pieri homotopy on one edge of the Pieri tree (paper eq. (3)).
//
// Fix a pattern P at level ell.  A child solution (pattern with one bottom
// pivot decremented, meeting conditions 1..ell-1) is deformed into a
// solution fitting P and meeting conditions 1..ell by moving
//   - the m-plane K from gamma * K_F(P) (the special plane whose bordered
//     determinant is the product of P's bottom-pivot entries) to K_ell, and
//   - the interpolation point (s, u) from infinity (1, 0) to (s_ell, 1),
// while conditions 1..ell-1 stay enforced.  The continuation parameter t
// moves both; the paper notes the "double use of t" as homogenizing
// variable and continuation parameter -- here the homogenizing coordinate
// is named u and u(t) = t.
//
// Two evaluation paths coexist.  The allocating virtuals walk the bordered
// determinants through schubert::evaluate_condition (full cofactor matrix
// per call) -- the golden reference.  The buffer-filling fast path lowers
// the homotopy onto an eval::CompiledPieriHomotopy tape, lazily on the
// first workspace request, and evaluates through the shared blend kernels
// with per-t cached coefficients: the route the tracker hot loop takes.

#include <memory>
#include <mutex>

#include "eval/compiled_pieri.hpp"
#include "homotopy/homotopy.hpp"
#include "schubert/conditions.hpp"

namespace pph::schubert {

/// Family-level workspace of the compiled fast path: any PieriEdgeHomotopy
/// evaluates through any instance of this type (the caches are keyed on
/// the owning tape's construction id), so a scheduler slave allocates ONE
/// of these and reuses it across every tree edge it tracks.
struct PieriEvalWorkspace final : homotopy::HomotopyWorkspace {
  eval::CompiledPieriHomotopy::Workspace w;
};

/// Square homotopy in the chart coordinates of the parent pattern.
class PieriEdgeHomotopy final : public homotopy::Homotopy {
 public:
  /// `fixed` are conditions 1..ell-1 (already satisfied by the start
  /// solution); `target` is condition ell; `gamma` randomizes the start
  /// plane (gamma trick).  The detour constants bend the interpolation-point
  /// path (s(t), u(t)) into the complex plane away from the straight
  /// segment: with structured (for example real) input data the straight
  /// path can be non-generic for every gamma, so the solver draws random
  /// detours per instance.
  PieriEdgeHomotopy(PatternChart chart, std::vector<PlaneCondition> fixed,
                    PlaneCondition target, Complex gamma, Complex detour_s = Complex{},
                    Complex detour_u = Complex{});
  ~PieriEdgeHomotopy() override;

  std::size_t dimension() const override { return chart_.dimension(); }

  // Interpreted path (re-expands the bordered determinants per call); kept
  // as fallback and as the golden reference the compiled tape is validated
  // against in test_pieri_compiled.
  CVector evaluate(const CVector& x, double t) const override;
  CMatrix jacobian_x(const CVector& x, double t) const override;
  CVector derivative_t(const CVector& x, double t) const override;
  std::pair<CVector, CMatrix> evaluate_with_jacobian(const CVector& x, double t) const override;

  // Compiled fast path: the tape is built lazily on the first workspace
  // request (or first fast-path call) and rides the shared blend kernels.
  // A foreign or null workspace falls back to the interpreted virtuals.
  std::unique_ptr<homotopy::HomotopyWorkspace> make_workspace() const override;
  void evaluate_into(const CVector& x, double t, homotopy::HomotopyWorkspace* ws,
                     CVector& h) const override;
  void evaluate_with_jacobian_into(const CVector& x, double t, homotopy::HomotopyWorkspace* ws,
                                   CVector& h, CMatrix& jx) const override;
  void evaluate_fused(const CVector& x, double t, homotopy::HomotopyWorkspace* ws, CVector& h,
                      CMatrix& jx, CVector& ht) const override;

  /// Toggle the compiled fast path (default on).  With it off,
  /// make_workspace returns nullptr and every entry point takes the
  /// interpreted route -- the A/B switch of the benches and the CI guard.
  void set_compiled(bool enabled) { compiled_enabled_ = enabled; }
  bool compiled_enabled() const { return compiled_enabled_; }

  /// The lazily built tape (compiles on first call; tests/diagnostics).
  const eval::CompiledPieriHomotopy& compiled() const { return *ensure_compiled(); }

  const PatternChart& chart() const { return chart_; }

  /// Moving plane K(t) = (1-t) gamma K_F + t K_target.
  CMatrix moving_plane(double t) const;
  /// Moving interpolation point from (1, 0) at t=0 to (s_target, 1) at t=1:
  ///   s(t) = 1 + t (s_target - 1) + t(1-t) detour_s,
  ///   u(t) = t + t(1-t) detour_u.
  std::pair<Complex, Complex> moving_point(double t) const;
  /// Derivatives (ds/dt, du/dt).
  std::pair<Complex, Complex> moving_point_dt(double t) const;

 private:
  const eval::CompiledPieriHomotopy* ensure_compiled() const;

  PatternChart chart_;
  std::vector<PlaneCondition> fixed_;
  PlaneCondition target_;
  Complex gamma_;
  Complex detour_s_;
  Complex detour_u_;
  CMatrix special_;       // K_F of the chart's pattern
  CMatrix plane_dot_;     // dK/dt = K_target - gamma K_F (constant)
  bool compiled_enabled_ = true;
  mutable std::once_flag compile_once_;
  mutable std::unique_ptr<eval::CompiledPieriHomotopy> compiled_;
};

}  // namespace pph::schubert
