#include "schubert/pieri_tree.hpp"

#include <stdexcept>

namespace pph::schubert {

PieriTree::PieriTree(const PieriProblem& problem, std::size_t max_nodes) : problem_(problem) {
  const std::size_t n = problem.condition_count();
  by_depth_.resize(n + 1);
  nodes_.push_back(Node{Pattern::minimal(problem), kNoParent, 0});
  by_depth_[0].push_back(0);
  for (std::size_t depth = 0; depth < n; ++depth) {
    for (const std::size_t idx : by_depth_[depth]) {
      // Note: take a copy of the pattern, not a reference; nodes_ reallocates.
      const Pattern pattern = nodes_[idx].pattern;
      for (Pattern& up : pattern.parents()) {
        if (nodes_.size() >= max_nodes) {
          throw std::length_error("PieriTree: node budget exceeded; use the virtual tree");
        }
        nodes_.push_back(Node{std::move(up), idx, depth + 1});
        by_depth_[depth + 1].push_back(nodes_.size() - 1);
      }
    }
  }
}

const std::vector<std::size_t>& PieriTree::nodes_at_depth(std::size_t depth) const {
  if (depth >= by_depth_.size()) throw std::out_of_range("PieriTree::nodes_at_depth");
  return by_depth_[depth];
}

std::size_t PieriTree::leaf_count() const { return by_depth_.back().size(); }

}  // namespace pph::schubert
