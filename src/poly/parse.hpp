#pragma once
// A small parser for polynomial expressions, for tests, examples and
// interactive use:
//
//   expression := term (('+'|'-') term)*
//   term       := factor ('*' factor)*
//   factor     := base ('^' integer)?
//   base       := number | number 'i' | 'i' | variable | '(' expression ')'
//   variable   := 'x' integer            (0-based index)
//
// Examples: "x0^2*x1 - 3.5", "2i*x3 + (x0 + x1)^2", "x0*x1*x2 - 1".

#include <string>

#include "poly/system.hpp"

namespace pph::poly {

/// Parse an expression over `nvars` variables.  Throws std::invalid_argument
/// with a position-annotated message on malformed input.
Polynomial parse_polynomial(const std::string& text, std::size_t nvars);

/// Parse a system: one equation per ';' or newline; blank entries ignored.
PolySystem parse_system(const std::string& text, std::size_t nvars);

}  // namespace pph::poly
