#include "poly/parse.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pph::poly {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::size_t nvars) : text_(text), nvars_(nvars) {}

  Polynomial parse() {
    Polynomial p = expression();
    skip_space();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "parse_polynomial: " << what << " at position " << pos_ << " in \"" << text_ << "\"";
    throw std::invalid_argument(os.str());
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Polynomial expression() {
    // Accumulate raw terms across the +/- chain and normalize once in the
    // final constructor (the deferred-normalize bulk path): re-sorting the
    // accumulator after every summand would make long inputs quadratic.
    std::vector<Term> acc;
    bool negative = false;
    if (consume('-')) negative = true;
    else consume('+');
    append_terms(acc, term(), negative);
    for (;;) {
      if (consume('+')) {
        append_terms(acc, term(), false);
      } else if (consume('-')) {
        append_terms(acc, term(), true);
      } else {
        return Polynomial(nvars_, std::move(acc));
      }
    }
  }

  static void append_terms(std::vector<Term>& acc, const Polynomial& p, bool negate) {
    for (const auto& t : p.terms()) {
      acc.push_back({negate ? -t.coefficient : t.coefficient, t.monomial});
    }
  }

  Polynomial term() {
    Polynomial acc = factor();
    while (consume('*')) acc *= factor();
    return acc;
  }

  Polynomial factor() {
    Polynomial base_poly = base();
    if (consume('^')) {
      const long e = integer();
      if (e < 0) fail("negative exponent");
      Polynomial out = Polynomial::constant(nvars_, Complex{1.0, 0.0});
      for (long k = 0; k < e; ++k) out *= base_poly;
      return out;
    }
    return base_poly;
  }

  Polynomial base() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      Polynomial inner = expression();
      if (!consume(')')) fail("expected ')'");
      return inner;
    }
    if (c == 'x') {
      ++pos_;
      const long idx = integer();
      if (idx < 0 || static_cast<std::size_t>(idx) >= nvars_) fail("variable index out of range");
      return Polynomial::variable(nvars_, static_cast<std::size_t>(idx));
    }
    if (c == 'i') {
      ++pos_;
      return Polynomial::constant(nvars_, Complex{0.0, 1.0});
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      const double value = number();
      // Imaginary literal: 2i.
      if (pos_ < text_.size() && text_[pos_] == 'i') {
        ++pos_;
        return Polynomial::constant(nvars_, Complex{0.0, value});
      }
      return Polynomial::constant(nvars_, Complex{value, 0.0});
    }
    fail("expected a number, variable, 'i' or '('");
  }

  long integer() {
    skip_space();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) fail("expected an integer");
    return std::strtol(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
  }

  double number() {
    skip_space();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  const std::string& text_;
  std::size_t nvars_;
  std::size_t pos_ = 0;
};

}  // namespace

Polynomial parse_polynomial(const std::string& text, std::size_t nvars) {
  return Parser(text, nvars).parse();
}

PolySystem parse_system(const std::string& text, std::size_t nvars) {
  PolySystem sys(nvars);
  std::string current;
  auto flush = [&sys, &current, nvars] {
    bool blank = true;
    for (const char c : current) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) sys.add_equation(parse_polynomial(current, nvars));
    current.clear();
  };
  for (const char c : text) {
    if (c == ';' || c == '\n') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return sys;
}

}  // namespace pph::poly
