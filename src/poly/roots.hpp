#pragma once
// Univariate polynomial root finding (Durand-Kerner / Weierstrass
// iteration).  Used by the pole placement layer to turn characteristic
// polynomials into pole locations.

#include "linalg/matrix.hpp"

namespace pph::poly {

/// All complex roots of  c[0] + c[1] s + ... + c[n] s^n  (c[n] != 0).
/// Numerically-zero leading coefficients are trimmed first; throws
/// std::invalid_argument for the zero polynomial.  Typical accuracy is
/// ~1e-12 relative for well separated roots of moderate degree.
std::vector<linalg::Complex> polynomial_roots(const std::vector<linalg::Complex>& coefficients,
                                              std::size_t max_iterations = 200,
                                              double tolerance = 1e-13);

/// Evaluate the polynomial at a point (Horner).
linalg::Complex polynomial_value(const std::vector<linalg::Complex>& coefficients,
                                 linalg::Complex s);

}  // namespace pph::poly
