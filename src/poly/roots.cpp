#include "poly/roots.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pph::poly {

using linalg::Complex;

Complex polynomial_value(const std::vector<Complex>& c, Complex s) {
  Complex v{};
  for (std::size_t i = c.size(); i-- > 0;) v = v * s + c[i];
  return v;
}

std::vector<Complex> polynomial_roots(const std::vector<Complex>& coefficients,
                                      std::size_t max_iterations, double tolerance) {
  // Trim numerically-zero leading coefficients.
  std::vector<Complex> c = coefficients;
  double scale = 0.0;
  for (const auto& x : c) scale = std::max(scale, std::abs(x));
  if (scale == 0.0) throw std::invalid_argument("polynomial_roots: zero polynomial");
  while (c.size() > 1 && std::abs(c.back()) < 1e-14 * scale) c.pop_back();
  const std::size_t n = c.size() - 1;
  if (n == 0) return {};

  // Monic normalization.
  const Complex lead = c[n];
  for (auto& x : c) x /= lead;

  // Durand-Kerner from staggered points on a circle sized by the Cauchy
  // root bound (1 + max |c_i|).
  double bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) bound = std::max(bound, std::abs(c[i]));
  const double radius = std::min(1.0 + bound, 1e6);
  std::vector<Complex> z(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n) + 0.4;
    z[k] = radius * Complex{std::cos(theta), std::sin(theta)};
  }

  for (std::size_t it = 0; it < max_iterations; ++it) {
    double worst_update = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      Complex denom{1.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (j != k) denom *= (z[k] - z[j]);
      }
      if (denom == Complex{}) {
        // Coincident iterates: nudge and continue.
        z[k] += Complex{1e-8, 1e-8};
        continue;
      }
      const Complex delta = polynomial_value(c, z[k]) / denom;
      z[k] -= delta;
      worst_update = std::max(worst_update, std::abs(delta) / (1.0 + std::abs(z[k])));
    }
    if (worst_update < tolerance) break;
  }
  return z;
}

}  // namespace pph::poly
