#pragma once
// Sparse multivariate polynomials over the complex numbers.
//
// Terms are kept sorted by monomial (lexicographic) with nonzero
// coefficients, so equality and arithmetic have canonical forms.

#include <string>
#include <vector>

#include "poly/monomial.hpp"

namespace pph::poly {

/// One coefficient-monomial pair.
struct Term {
  Complex coefficient;
  Monomial monomial;
};

/// Sparse polynomial in a fixed number of variables.
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::size_t nvars) : nvars_(nvars) {}

  /// Construct from terms; like terms are combined and zeros dropped.
  Polynomial(std::size_t nvars, std::vector<Term> terms);

  static Polynomial zero(std::size_t nvars) { return Polynomial(nvars); }
  static Polynomial constant(std::size_t nvars, Complex value);
  static Polynomial variable(std::size_t nvars, std::size_t var);

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  std::size_t term_count() const { return terms_.size(); }
  const std::vector<Term>& terms() const { return terms_; }

  /// Total degree; 0 for the zero polynomial.
  std::uint32_t degree() const;

  /// Add a term (re-normalizes).  O(k log k) per call — building a large
  /// polynomial term-by-term this way is quadratic; prefer the bulk
  /// Polynomial(nvars, terms) constructor, which sorts and merges once
  /// (the deferred-normalize path the parsers and start-system builders
  /// use).
  void add_term(Complex coefficient, Monomial monomial);

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(Complex scalar) const;
  Polynomial operator-() const;

  /// In-place add/subtract append the other side's terms and normalize once
  /// (no full-copy round trip through operator+).
  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& operator*=(const Polynomial& other) { return *this = *this * other; }

  bool operator==(const Polynomial& other) const;

  /// Partial derivative with respect to a variable.
  Polynomial derivative(std::size_t var) const;

  /// Evaluate at a point (size must equal nvars).
  Complex evaluate(const CVector& x) const;

  /// Evaluate value and full gradient in one pass.
  std::pair<Complex, CVector> evaluate_with_gradient(const CVector& x) const;

  std::string to_string() const;

 private:
  void normalize();

  std::size_t nvars_ = 0;
  std::vector<Term> terms_;
};

}  // namespace pph::poly
