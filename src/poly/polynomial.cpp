#include "poly/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pph::poly {

Polynomial::Polynomial(std::size_t nvars, std::vector<Term> terms)
    : nvars_(nvars), terms_(std::move(terms)) {
  for (const auto& t : terms_) {
    if (t.monomial.nvars() != nvars_) {
      throw std::invalid_argument("Polynomial: monomial nvars mismatch");
    }
  }
  normalize();
}

Polynomial Polynomial::constant(std::size_t nvars, Complex value) {
  Polynomial p(nvars);
  if (value != Complex{}) p.terms_.push_back({value, Monomial(nvars)});
  return p;
}

Polynomial Polynomial::variable(std::size_t nvars, std::size_t var) {
  Polynomial p(nvars);
  p.terms_.push_back({Complex{1.0, 0.0}, Monomial::variable(nvars, var)});
  return p;
}

std::uint32_t Polynomial::degree() const {
  std::uint32_t d = 0;
  for (const auto& t : terms_) d = std::max(d, t.monomial.degree());
  return d;
}

void Polynomial::add_term(Complex coefficient, Monomial monomial) {
  if (monomial.nvars() != nvars_) throw std::invalid_argument("add_term: nvars mismatch");
  terms_.push_back({coefficient, std::move(monomial)});
  normalize();
}

void Polynomial::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.monomial < b.monomial; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (auto& t : terms_) {
    if (!merged.empty() && merged.back().monomial == t.monomial) {
      merged.back().coefficient += t.coefficient;
    } else {
      merged.push_back(std::move(t));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coefficient == Complex{}; }),
               merged.end());
  terms_ = std::move(merged);
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  if (nvars_ != other.nvars_) throw std::invalid_argument("Polynomial+: nvars mismatch");
  std::vector<Term> all = terms_;
  all.insert(all.end(), other.terms_.begin(), other.terms_.end());
  return Polynomial(nvars_, std::move(all));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + (-other);
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  if (nvars_ != other.nvars_) throw std::invalid_argument("Polynomial+=: nvars mismatch");
  if (this == &other) {  // self-add: appending own range would invalidate it
    for (auto& t : terms_) t.coefficient *= 2.0;
    return *this;
  }
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  normalize();
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  if (nvars_ != other.nvars_) throw std::invalid_argument("Polynomial-=: nvars mismatch");
  if (this == &other) {
    terms_.clear();
    return *this;
  }
  terms_.reserve(terms_.size() + other.terms_.size());
  for (const auto& t : other.terms_) terms_.push_back({-t.coefficient, t.monomial});
  normalize();
  return *this;
}

Polynomial Polynomial::operator-() const {
  Polynomial out(*this);
  for (auto& t : out.terms_) t.coefficient = -t.coefficient;
  return out;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (nvars_ != other.nvars_) throw std::invalid_argument("Polynomial*: nvars mismatch");
  std::vector<Term> prod;
  prod.reserve(terms_.size() * other.terms_.size());
  for (const auto& a : terms_) {
    for (const auto& b : other.terms_) {
      prod.push_back({a.coefficient * b.coefficient, a.monomial * b.monomial});
    }
  }
  return Polynomial(nvars_, std::move(prod));
}

Polynomial Polynomial::operator*(Complex scalar) const {
  if (scalar == Complex{}) return Polynomial(nvars_);
  Polynomial out(*this);
  for (auto& t : out.terms_) t.coefficient *= scalar;
  return out;
}

bool Polynomial::operator==(const Polynomial& other) const {
  if (nvars_ != other.nvars_ || terms_.size() != other.terms_.size()) return false;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (!(terms_[i].monomial == other.terms_[i].monomial)) return false;
    if (terms_[i].coefficient != other.terms_[i].coefficient) return false;
  }
  return true;
}

Polynomial Polynomial::derivative(std::size_t var) const {
  std::vector<Term> out;
  out.reserve(terms_.size());
  for (const auto& t : terms_) {
    auto [mult, reduced] = t.monomial.derivative(var);
    if (mult == 0) continue;
    out.push_back({t.coefficient * static_cast<double>(mult), std::move(reduced)});
  }
  return Polynomial(nvars_, std::move(out));
}

Complex Polynomial::evaluate(const CVector& x) const {
  Complex v{};
  for (const auto& t : terms_) v += t.coefficient * t.monomial.evaluate(x);
  return v;
}

std::pair<Complex, CVector> Polynomial::evaluate_with_gradient(const CVector& x) const {
  Complex value{};
  CVector grad(nvars_, Complex{});
  for (const auto& t : terms_) {
    const Complex tv = t.coefficient * t.monomial.evaluate(x);
    value += tv;
    for (std::size_t v = 0; v < nvars_; ++v) {
      const std::uint32_t e = t.monomial.exponent(v);
      if (e == 0) continue;
      // d/dx_v (c * x^e) = e * c * x^e / x_v, computed without division when
      // x_v could be zero by re-evaluating the reduced monomial.
      if (x[v] != Complex{}) {
        grad[v] += static_cast<double>(e) * tv / x[v];
      } else {
        auto [mult, reduced] = t.monomial.derivative(v);
        grad[v] += t.coefficient * static_cast<double>(mult) * reduced.evaluate(x);
      }
    }
  }
  return {value, std::move(grad)};
}

std::string Polynomial::to_string() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& t : terms_) {
    if (!first) os << " + ";
    os << "(" << t.coefficient.real();
    if (t.coefficient.imag() != 0.0) {
      os << (t.coefficient.imag() < 0 ? "" : "+") << t.coefficient.imag() << "i";
    }
    os << ")";
    if (t.monomial.degree() > 0) os << "*" << t.monomial.to_string();
    first = false;
  }
  return os.str();
}

}  // namespace pph::poly
