#pragma once
// Monomials as dense exponent vectors over a fixed variable count.
//
// Polynomial systems in this library are small (tens of variables at most)
// and moderately sparse, so a dense exponent vector per term is both simple
// and fast enough; the hot path caches variable powers at the system level.

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace pph::poly {

using linalg::Complex;
using linalg::CVector;

/// Exponent vector of a monomial x_0^{e_0} * ... * x_{n-1}^{e_{n-1}}.
class Monomial {
 public:
  Monomial() = default;
  explicit Monomial(std::size_t nvars) : exps_(nvars, 0) {}
  explicit Monomial(std::vector<std::uint32_t> exps) : exps_(std::move(exps)) {}

  /// Monomial x_var (degree one in a single variable).
  static Monomial variable(std::size_t nvars, std::size_t var);

  std::size_t nvars() const { return exps_.size(); }
  std::uint32_t exponent(std::size_t var) const { return exps_[var]; }
  void set_exponent(std::size_t var, std::uint32_t e) { exps_[var] = e; }

  std::uint32_t degree() const;

  /// Product of two monomials (same nvars).
  Monomial operator*(const Monomial& other) const;

  /// Evaluate at a point.
  Complex evaluate(const CVector& x) const;

  /// Partial derivative: returns the coefficient multiplier (the exponent)
  /// and the reduced monomial.  Multiplier 0 means the derivative vanishes.
  std::pair<std::uint32_t, Monomial> derivative(std::size_t var) const;

  /// Lexicographic comparison for canonical term ordering.
  bool operator<(const Monomial& other) const { return exps_ < other.exps_; }
  bool operator==(const Monomial& other) const { return exps_ == other.exps_; }

  const std::vector<std::uint32_t>& exponents() const { return exps_; }

  /// Human-readable form, e.g. "x0^2*x3".
  std::string to_string() const;

 private:
  std::vector<std::uint32_t> exps_;
};

}  // namespace pph::poly
