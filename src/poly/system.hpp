#pragma once
// Square polynomial systems F : C^n -> C^n with cached Jacobian structure.

#include <vector>

#include "poly/polynomial.hpp"

namespace pph::poly {

/// A system of polynomials in a common variable set.  The homotopy kernel
/// assumes square systems (equations == variables) but the container allows
/// general shapes for construction-time manipulation.
class PolySystem {
 public:
  PolySystem() = default;
  explicit PolySystem(std::size_t nvars) : nvars_(nvars) {}
  PolySystem(std::size_t nvars, std::vector<Polynomial> equations);

  std::size_t nvars() const { return nvars_; }
  std::size_t size() const { return equations_.size(); }
  bool square() const { return size() == nvars_; }

  const Polynomial& equation(std::size_t i) const { return equations_[i]; }
  const std::vector<Polynomial>& equations() const { return equations_; }
  void add_equation(Polynomial p);

  /// Per-equation total degrees.
  std::vector<std::uint32_t> degrees() const;

  /// Product of the degrees: the Bezout bound on isolated roots and the
  /// path count of the total-degree homotopy.
  unsigned long long total_degree() const;

  /// Evaluate F(x).
  CVector evaluate(const CVector& x) const;

  /// Euclidean norm of F(x): the residual used throughout as the measure of
  /// solution quality.
  double residual(const CVector& x) const;

  /// Jacobian matrix dF/dx at x (size() x nvars()).
  linalg::CMatrix jacobian(const CVector& x) const;

  /// Evaluate value and Jacobian together (shares monomial evaluations).
  std::pair<CVector, linalg::CMatrix> evaluate_with_jacobian(const CVector& x) const;

  /// System of the top-degree homogeneous parts of each equation.  A path
  /// diverging to infinity ends at a point whose normalized direction nearly
  /// annihilates these leading forms; the solver uses this to separate
  /// genuine roots from endpoints "at infinity" (see solver.cpp).
  PolySystem leading_forms() const;

 private:
  std::size_t nvars_ = 0;
  std::vector<Polynomial> equations_;
};

/// Deduplicate a solution list: two points are the same root when within
/// `tol` in the max norm.  Returns representatives in first-seen order.
std::vector<CVector> deduplicate_solutions(const std::vector<CVector>& points, double tol);

/// One close pair of points (indices into the input list, a < b) with
/// their max-norm distance.
struct ClosePair {
  std::size_t a = 0;
  std::size_t b = 0;
  double distance = 0.0;
};

/// All pairs closer than `tol` in the max norm, each point paired with its
/// nearest already-seen neighbour inside the window.  Where
/// deduplicate_solutions silently merges, this reports -- the certification
/// layer uses it to list duplicates and near-duplicates instead of hiding
/// them (same key-window scan, O(n log n + n * w)).
std::vector<ClosePair> duplicate_pairs(const std::vector<CVector>& points, double tol);

}  // namespace pph::poly
