#include "poly/system.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace pph::poly {

PolySystem::PolySystem(std::size_t nvars, std::vector<Polynomial> equations)
    : nvars_(nvars), equations_(std::move(equations)) {
  for (const auto& p : equations_) {
    if (p.nvars() != nvars_) throw std::invalid_argument("PolySystem: nvars mismatch");
  }
}

void PolySystem::add_equation(Polynomial p) {
  if (p.nvars() != nvars_) throw std::invalid_argument("PolySystem::add_equation: nvars");
  equations_.push_back(std::move(p));
}

std::vector<std::uint32_t> PolySystem::degrees() const {
  std::vector<std::uint32_t> d;
  d.reserve(equations_.size());
  for (const auto& p : equations_) d.push_back(p.degree());
  return d;
}

unsigned long long PolySystem::total_degree() const {
  unsigned long long prod = 1;
  for (const auto& p : equations_) {
    const unsigned long long d = p.degree();
    if (d != 0 && prod > (~0ULL) / d) {
      throw std::overflow_error("PolySystem::total_degree: overflow");
    }
    prod *= (d == 0 ? 1 : d);
  }
  return prod;
}

CVector PolySystem::evaluate(const CVector& x) const {
  CVector v;
  v.reserve(equations_.size());
  for (const auto& p : equations_) v.push_back(p.evaluate(x));
  return v;
}

double PolySystem::residual(const CVector& x) const {
  return linalg::norm2(evaluate(x));
}

linalg::CMatrix PolySystem::jacobian(const CVector& x) const {
  linalg::CMatrix j(equations_.size(), nvars_);
  for (std::size_t i = 0; i < equations_.size(); ++i) {
    const auto [value, grad] = equations_[i].evaluate_with_gradient(x);
    (void)value;
    for (std::size_t c = 0; c < nvars_; ++c) j(i, c) = grad[c];
  }
  return j;
}

std::pair<CVector, linalg::CMatrix> PolySystem::evaluate_with_jacobian(const CVector& x) const {
  CVector v(equations_.size());
  linalg::CMatrix j(equations_.size(), nvars_);
  for (std::size_t i = 0; i < equations_.size(); ++i) {
    auto [value, grad] = equations_[i].evaluate_with_gradient(x);
    v[i] = value;
    for (std::size_t c = 0; c < nvars_; ++c) j(i, c) = grad[c];
  }
  return {std::move(v), std::move(j)};
}

PolySystem PolySystem::leading_forms() const {
  PolySystem top(nvars_);
  for (const auto& p : equations_) {
    const std::uint32_t d = p.degree();
    std::vector<Term> terms;
    for (const auto& t : p.terms()) {
      if (t.monomial.degree() == d) terms.push_back(t);
    }
    top.add_equation(Polynomial(nvars_, std::move(terms)));
  }
  return top;
}

std::vector<CVector> deduplicate_solutions(const std::vector<CVector>& points, double tol) {
  // A point within `tol` of a representative in the max norm is within
  // `tol` of it in the scalar key below, so only representatives whose key
  // lies in [key - tol, key + tol] need the full coordinate comparison.
  // The key index makes the scan O(n log n + n * w) with w the number of
  // key-window neighbours, instead of the old all-pairs O(n^2) — the
  // difference between seconds and hours on million-path result sets.
  const auto key_of = [](const CVector& p) { return p.empty() ? 0.0 : p[0].real(); };
  std::vector<CVector> reps;
  std::multimap<double, std::size_t> by_key;  // key -> index into reps
  for (const auto& p : points) {
    const double key = key_of(p);
    bool duplicate = false;
    const auto lo = by_key.lower_bound(key - tol);
    const auto hi = by_key.upper_bound(key + tol);
    for (auto it = lo; it != hi && !duplicate; ++it) {
      const auto& r = reps[it->second];
      if (p.size() != r.size()) continue;
      double maxdiff = 0.0;
      for (std::size_t i = 0; i < p.size(); ++i) {
        maxdiff = std::max(maxdiff, std::abs(p[i] - r[i]));
      }
      if (maxdiff < tol) duplicate = true;
    }
    if (!duplicate) {
      by_key.emplace(key, reps.size());
      reps.push_back(p);
    }
  }
  return reps;
}

std::vector<ClosePair> duplicate_pairs(const std::vector<CVector>& points, double tol) {
  const auto key_of = [](const CVector& p) { return p.empty() ? 0.0 : p[0].real(); };
  std::vector<ClosePair> pairs;
  std::multimap<double, std::size_t> by_key;  // key -> index into points
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CVector& p = points[i];
    const double key = key_of(p);
    // Pair with the nearest earlier point inside the window (one pair per
    // point keeps the output linear even when a whole cluster collapses).
    std::size_t best = points.size();
    double best_dist = tol;
    const auto lo = by_key.lower_bound(key - tol);
    const auto hi = by_key.upper_bound(key + tol);
    for (auto it = lo; it != hi; ++it) {
      const CVector& r = points[it->second];
      if (p.size() != r.size()) continue;
      double maxdiff = 0.0;
      for (std::size_t k = 0; k < p.size(); ++k) {
        maxdiff = std::max(maxdiff, std::abs(p[k] - r[k]));
      }
      if (maxdiff < best_dist) {
        best_dist = maxdiff;
        best = it->second;
      }
    }
    if (best != points.size()) {
      pairs.push_back(ClosePair{std::min(best, i), std::max(best, i), best_dist});
    }
    by_key.emplace(key, i);
  }
  return pairs;
}

}  // namespace pph::poly
