#include "poly/monomial.hpp"

#include <sstream>
#include <stdexcept>

namespace pph::poly {

Monomial Monomial::variable(std::size_t nvars, std::size_t var) {
  if (var >= nvars) throw std::out_of_range("Monomial::variable: index");
  Monomial m(nvars);
  m.exps_[var] = 1;
  return m;
}

std::uint32_t Monomial::degree() const {
  std::uint32_t d = 0;
  for (auto e : exps_) d += e;
  return d;
}

Monomial Monomial::operator*(const Monomial& other) const {
  if (exps_.size() != other.exps_.size()) {
    throw std::invalid_argument("Monomial*: nvars mismatch");
  }
  Monomial out(*this);
  for (std::size_t i = 0; i < exps_.size(); ++i) out.exps_[i] += other.exps_[i];
  return out;
}

Complex Monomial::evaluate(const CVector& x) const {
  if (x.size() != exps_.size()) throw std::invalid_argument("Monomial::evaluate: size");
  Complex v{1.0, 0.0};
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    std::uint32_t e = exps_[i];
    if (e == 0) continue;
    // Exponentiation by squaring on the (tiny) exponent.
    Complex base = x[i];
    while (true) {
      if (e & 1u) v *= base;
      e >>= 1u;
      if (e == 0) break;
      base *= base;
    }
  }
  return v;
}

std::pair<std::uint32_t, Monomial> Monomial::derivative(std::size_t var) const {
  if (var >= exps_.size()) throw std::out_of_range("Monomial::derivative: index");
  const std::uint32_t e = exps_[var];
  Monomial reduced(*this);
  if (e > 0) reduced.exps_[var] = e - 1;
  return {e, reduced};
}

std::string Monomial::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    if (exps_[i] == 0) continue;
    if (!first) os << "*";
    os << "x" << i;
    if (exps_[i] > 1) os << "^" << exps_[i];
    first = false;
  }
  if (first) os << "1";
  return os.str();
}

}  // namespace pph::poly
