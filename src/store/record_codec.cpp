#include "store/record_codec.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace pph::store {

namespace {

constexpr std::string_view kHeaderPrefix = "{\"pph_result_store\":{\"version\":";
constexpr std::string_view kSchemaV3 =
    "\"schema\":[\"i\",\"w\",\"sec\",\"st\",\"t\",\"res\",\"stp\",\"rej\","
    "\"nwt\",\"ls\",\"ra\",\"rs\",\"lvl\",\"x\"]";

// ---- strict positional parsing helpers ------------------------------------

void expect(std::string_view line, std::size_t& pos, std::string_view literal) {
  if (line.compare(pos, literal.size(), literal) != 0) {
    throw std::invalid_argument("result store: malformed line");
  }
  pos += literal.size();
}

std::uint64_t parse_uint(std::string_view line, std::size_t& pos) {
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') {
    throw std::invalid_argument("result store: expected digit");
  }
  std::uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  return value;
}

/// 16 lowercase hex digits -> the double with those IEEE-754 bits.
double parse_bits(std::string_view line, std::size_t& pos) {
  if (pos + 16 > line.size()) {
    throw std::invalid_argument("result store: truncated hex field");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = line[pos + i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else throw std::invalid_argument("result store: malformed hex field");
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  pos += 16;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void append_bits(std::string& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(bits >> shift) & 0xF]);
  }
}

void check_version(int version) {
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::invalid_argument("result store: unsupported format version");
  }
}

/// One positional walk over the scalar prefix of a record line; returns
/// with `pos` on the first hex digit of the "x" run.  Throws on any
/// deviation from the version's schema.
RecordFields walk_scalar_prefix(std::string_view line, int version, std::size_t& pos) {
  check_version(version);
  RecordFields f;
  pos = 0;
  expect(line, pos, "{\"i\":");
  f.id = parse_uint(line, pos);
  expect(line, pos, ",\"w\":");
  f.worker = static_cast<int>(parse_uint(line, pos));
  expect(line, pos, ",\"sec\":\"");
  f.seconds = parse_bits(line, pos);
  expect(line, pos, "\",\"st\":");
  const auto status = parse_uint(line, pos);
  // kCancelled is the last enumerator; the reliability layer (DESIGN.md
  // section 13) appends kDeadlineExpired/kCancelled after the legacy trio,
  // so every stored status value up to it is decodable.
  if (status > static_cast<std::uint64_t>(homotopy::PathStatus::kCancelled)) {
    throw std::invalid_argument("result store: unknown path status");
  }
  f.status = static_cast<homotopy::PathStatus>(status);
  expect(line, pos, ",\"t\":\"");
  f.t_reached = parse_bits(line, pos);
  expect(line, pos, "\",\"res\":\"");
  f.residual = parse_bits(line, pos);
  expect(line, pos, "\",\"stp\":");
  f.steps = parse_uint(line, pos);
  expect(line, pos, ",\"rej\":");
  f.rejections = parse_uint(line, pos);
  expect(line, pos, ",\"nwt\":");
  f.newton_iterations = parse_uint(line, pos);
  if (version >= 2) {
    expect(line, pos, ",\"ls\":\"");
    f.last_step = parse_bits(line, pos);
    expect(line, pos, "\",\"ra\":");
    f.rescue_attempts = static_cast<std::uint32_t>(parse_uint(line, pos));
    expect(line, pos, ",\"rs\":");
    const auto rescued = parse_uint(line, pos);
    if (rescued > 1) {
      throw std::invalid_argument("result store: rescued flag must be 0/1");
    }
    f.rescued = rescued == 1;
  }
  if (version >= 3) {
    expect(line, pos, ",\"lvl\":");
    f.level = static_cast<std::uint32_t>(parse_uint(line, pos));
  }
  expect(line, pos, ",\"x\":\"");
  return f;
}

/// Bounds of the endpoint hex run; validates it is well-formed (hex only,
/// whole re/im pairs) and that the line ends exactly after it.
std::pair<std::size_t, std::size_t> endpoint_span(std::string_view line,
                                                  std::size_t pos) {
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != '"') {
    const char c = line[pos];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) throw std::invalid_argument("result store: malformed hex field");
    ++pos;
  }
  const std::size_t end = pos;
  if ((end - begin) % 32 != 0) {
    throw std::invalid_argument("result store: endpoint hex not re/im pairs");
  }
  std::size_t tail = end;
  expect(line, tail, "\"}");
  if (tail != line.size()) {
    throw std::invalid_argument("result store: trailing bytes on record line");
  }
  return {begin, end};
}

}  // namespace

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

std::string header_line(const StoreMeta& meta) {
  std::string h(kHeaderPrefix);
  h += std::to_string(kFormatVersion);
  h += ',';
  h += kSchemaV3;
  h += ",\"writer\":{\"policy\":\"";
  for (const char c : meta.policy) {
    if (c != '"' && c != '\\') h.push_back(c);  // keep the header one JSON line
  }
  h += "\",\"ranks\":";
  h += std::to_string(meta.ranks);
  h += ",\"seed\":";
  h += std::to_string(meta.seed);
  h += "}}}";
  return h;
}

std::optional<HeaderInfo> parse_header(std::string_view line) {
  if (line.compare(0, kHeaderPrefix.size(), kHeaderPrefix) != 0) return std::nullopt;
  std::size_t pos = kHeaderPrefix.size();
  HeaderInfo info;
  try {
    info.version = static_cast<int>(parse_uint(line, pos));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (info.version < kMinFormatVersion || info.version > kFormatVersion) {
    return std::nullopt;  // future formats are unreadable, not tolerable
  }
  const std::string_view rest = line.substr(pos);
  if (rest == "}}") return info;  // v1/v2 (and a bare v3) header
  if (info.version < 3 || rest.empty() || rest[0] != ',') return std::nullopt;
  if (line.substr(line.size() < 2 ? 0 : line.size() - 2) != "}}") return std::nullopt;
  // v3 metadata is parsed leniently (key lookup, not position) so future
  // additive keys never invalidate old stores.
  const auto find_value = [&](std::string_view key) -> std::optional<std::size_t> {
    const std::size_t at = line.find(key);
    if (at == std::string_view::npos) return std::nullopt;
    return at + key.size();
  };
  if (const auto at = find_value("\"policy\":\"")) {
    const std::size_t end = line.find('"', *at);
    if (end == std::string_view::npos) return std::nullopt;
    info.meta.policy = std::string(line.substr(*at, end - *at));
  }
  try {
    if (auto at = find_value("\"ranks\":")) {
      info.meta.ranks = static_cast<int>(parse_uint(line, *at));
    }
    if (auto at = find_value("\"seed\":")) {
      info.meta.seed = parse_uint(line, *at);
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return info;
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

void append_record_line(std::string& out, const TrackedPath& tp, int version) {
  check_version(version);
  if (version < 2 && (tp.result.rescue_attempts != 0 || tp.result.rescued ||
                      tp.result.last_step != 0.0)) {
    throw std::invalid_argument("result store: v1 cannot carry rescue provenance");
  }
  if (version < 3 && tp.level != 0) {
    throw std::invalid_argument("result store: v" + std::to_string(version) +
                                " cannot carry tree levels");
  }
  out.reserve(out.size() + 176 + 32 * tp.result.x.size());
  out += "{\"i\":";
  out += std::to_string(tp.index);
  out += ",\"w\":";
  out += std::to_string(tp.worker);
  out += ",\"sec\":\"";
  append_bits(out, tp.seconds);
  out += "\",\"st\":";
  out += std::to_string(static_cast<int>(tp.result.status));
  out += ",\"t\":\"";
  append_bits(out, tp.result.t_reached);
  out += "\",\"res\":\"";
  append_bits(out, tp.result.residual);
  out += "\",\"stp\":";
  out += std::to_string(tp.result.steps);
  out += ",\"rej\":";
  out += std::to_string(tp.result.rejections);
  out += ",\"nwt\":";
  out += std::to_string(tp.result.newton_iterations);
  if (version >= 2) {
    out += ",\"ls\":\"";
    append_bits(out, tp.result.last_step);
    out += "\",\"ra\":";
    out += std::to_string(tp.result.rescue_attempts);
    out += ",\"rs\":";
    out += std::to_string(tp.result.rescued ? 1 : 0);
  }
  if (version >= 3) {
    out += ",\"lvl\":";
    out += std::to_string(tp.level);
  }
  out += ",\"x\":\"";
  for (const auto& c : tp.result.x) {
    append_bits(out, c.real());
    append_bits(out, c.imag());
  }
  out += "\"}";
}

JobId RecordView::id() const {
  std::size_t pos = 0;
  expect(line_, pos, "{\"i\":");
  return parse_uint(line_, pos);
}

RecordFields RecordView::fields() const {
  std::size_t pos = 0;
  return walk_scalar_prefix(line_, version_, pos);
}

std::size_t RecordView::endpoint_dim() const {
  std::size_t pos = 0;
  (void)walk_scalar_prefix(line_, version_, pos);
  const auto [begin, end] = endpoint_span(line_, pos);
  return (end - begin) / 32;
}

linalg::CVector RecordView::endpoint() const {
  std::size_t pos = 0;
  (void)walk_scalar_prefix(line_, version_, pos);
  const auto [begin, end] = endpoint_span(line_, pos);
  linalg::CVector x;
  x.reserve((end - begin) / 32);
  for (std::size_t at = begin; at < end;) {
    const double re = parse_bits(line_, at);
    const double im = parse_bits(line_, at);
    x.emplace_back(re, im);
  }
  return x;
}

double RecordView::endpoint_inf_norm() const {
  std::size_t pos = 0;
  (void)walk_scalar_prefix(line_, version_, pos);
  const auto [begin, end] = endpoint_span(line_, pos);
  double norm = 0.0;
  for (std::size_t at = begin; at < end;) {
    const double re = parse_bits(line_, at);
    const double im = parse_bits(line_, at);
    norm = std::max(norm, std::hypot(re, im));
  }
  return norm;
}

TrackedPath RecordView::full() const {
  std::size_t pos = 0;
  const RecordFields f = walk_scalar_prefix(line_, version_, pos);
  const auto [begin, end] = endpoint_span(line_, pos);
  TrackedPath tp;
  tp.index = static_cast<std::size_t>(f.id);
  tp.worker = f.worker;
  tp.seconds = f.seconds;
  tp.level = f.level;
  tp.result.status = f.status;
  tp.result.t_reached = f.t_reached;
  tp.result.residual = f.residual;
  tp.result.last_step = f.last_step;
  tp.result.steps = static_cast<std::size_t>(f.steps);
  tp.result.rejections = static_cast<std::size_t>(f.rejections);
  tp.result.newton_iterations = static_cast<std::size_t>(f.newton_iterations);
  tp.result.rescue_attempts = f.rescue_attempts;
  tp.result.rescued = f.rescued;
  tp.result.x.reserve((end - begin) / 32);
  for (std::size_t at = begin; at < end;) {
    const double re = parse_bits(line_, at);
    const double im = parse_bits(line_, at);
    tp.result.x.emplace_back(re, im);
  }
  return tp;
}

TrackedPath parse_record(std::string_view line, int version) {
  return RecordView(line, version).full();
}

bool validate_record_line(std::string_view line, int version,
                          RecordFields& fields) noexcept {
  try {
    std::size_t pos = 0;
    fields = walk_scalar_prefix(line, version, pos);
    (void)endpoint_span(line, pos);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// Footer
// ---------------------------------------------------------------------------

std::string footer_line(const std::vector<std::pair<JobId, std::uint64_t>>& offsets) {
  std::string footer(kFooterPrefix);
  footer += "{\"records\":";
  footer += std::to_string(offsets.size());
  if (!offsets.empty()) {
    JobId min_id = offsets.front().first;
    JobId max_id = offsets.front().first;
    for (const auto& [id, off] : offsets) {
      (void)off;
      min_id = std::min(min_id, id);
      max_id = std::max(max_id, id);
    }
    footer += ",\"min_id\":";
    footer += std::to_string(min_id);
    footer += ",\"max_id\":";
    footer += std::to_string(max_id);
  }
  footer += ",\"offsets\":[";
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    if (k != 0) footer += ',';
    footer += '[';
    footer += std::to_string(offsets[k].first);
    footer += ',';
    footer += std::to_string(offsets[k].second);
    footer += ']';
  }
  footer += "]}}";
  return footer;
}

std::optional<FooterInfo> parse_footer(std::string_view line) {
  if (!is_footer_line(line)) return std::nullopt;
  FooterInfo info;
  std::size_t pos = kFooterPrefix.size();
  try {
    expect(line, pos, "{\"records\":");
    info.records = parse_uint(line, pos);
    if (line.compare(pos, 10, ",\"min_id\":") == 0) {
      pos += 10;
      info.min_id = parse_uint(line, pos);
      expect(line, pos, ",\"max_id\":");
      info.max_id = parse_uint(line, pos);
      info.has_id_range = true;
    }
    expect(line, pos, ",\"offsets\":[");
    info.offsets.reserve(info.records);
    while (pos < line.size() && line[pos] != ']') {
      if (!info.offsets.empty()) expect(line, pos, ",");
      expect(line, pos, "[");
      const JobId id = parse_uint(line, pos);
      expect(line, pos, ",");
      const std::uint64_t off = parse_uint(line, pos);
      expect(line, pos, "]");
      info.offsets.emplace_back(id, off);
    }
    expect(line, pos, "]}}");
    if (pos != line.size()) return std::nullopt;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (info.offsets.size() != info.records) return std::nullopt;
  return info;
}

}  // namespace pph::store
