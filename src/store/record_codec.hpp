#pragma once
// The result-store wire format (DESIGN.md section 12): ONE codec for the
// JSONL store's header, record, and footer lines, shared by the write side
// (sched::JsonlStoreSink / load_result_store) and the read side
// (store::StoreReader).  Doubles are framed as IEEE-754 bits in hex so NaN
// endpoints of diverged paths round-trip bit for bit.
//
// Format versions:
//   v1  {"pph_result_store":{"version":1}}; records end ...,"nwt":N,"x":"..".
//   v2  adds the rescue-provenance record fields "ls"/"ra"/"rs".
//   v3  adds the per-record "lvl" field (Pieri tree level; 0 for flat path
//       pools), and the header carries the record schema plus writer
//       metadata (policy, ranks, seed).  The footer gains min_id/max_id.
//
// The reader accepts v1-v3; the writer emits v3 for fresh stores and keeps
// the on-disk version when resuming a v2 store (mixing schemas inside one
// file would corrupt it).  A v1 store is restarted on resume, as before --
// v1 records cannot carry the rescue provenance.
//
// Record line (v3):
//   {"i":ID,"w":W,"sec":"<hex>","st":S,"t":"<hex>","res":"<hex>","stp":N,
//    "rej":N,"nwt":N,"ls":"<hex>","ra":N,"rs":0|1,"lvl":L,"x":"<hex pairs>"}
//
// Parsing is strict and positional: any deviation throws
// std::invalid_argument, which the tolerant store loaders turn into
// "truncated tail" (the same contract load_result_store always had).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sched/session.hpp"

namespace pph::store {

using sched::JobId;
using sched::TrackedPath;

/// Newest format the writer emits / oldest the reader still accepts.
inline constexpr int kFormatVersion = 3;
inline constexpr int kMinFormatVersion = 1;

/// Writer provenance carried by the v3 header: which session wrote the
/// store.  Purely descriptive -- analytics report it, nothing keys on it.
struct StoreMeta {
  std::string policy;      // sched::policy_name token; "" when unknown
  int ranks = 0;           // 0 when unknown
  std::uint64_t seed = 0;  // workload seed; 0 when unknown

  bool any() const { return !policy.empty() || ranks != 0 || seed != 0; }
};

struct HeaderInfo {
  int version = 0;
  StoreMeta meta;  // v3 only; default-empty for v1/v2
};

/// Render the v3 header line (no trailing newline).
std::string header_line(const StoreMeta& meta);
/// Parse any accepted header (v1-v3).  nullopt: not a store this codec can
/// read (garbage, or a future version) -- the loaders restart such files.
std::optional<HeaderInfo> parse_header(std::string_view line);

/// Render one record line (no trailing newline) in the given format
/// version.  v1 cannot represent rescue provenance or levels; rendering a
/// record that carries either into a v1 store throws std::invalid_argument.
void append_record_line(std::string& out, const TrackedPath& tp,
                        int version = kFormatVersion);

/// Every record field except the endpoint coordinates -- what analytics
/// touch on every record, decodable without visiting the (much larger)
/// endpoint hex run.
struct RecordFields {
  JobId id = 0;
  int worker = 0;
  double seconds = 0.0;
  homotopy::PathStatus status = homotopy::PathStatus::kFailed;
  double t_reached = 0.0;
  double residual = 0.0;
  double last_step = 0.0;       // 0 in v1 stores
  std::uint64_t steps = 0;
  std::uint64_t rejections = 0;
  std::uint64_t newton_iterations = 0;
  std::uint32_t rescue_attempts = 0;  // 0 in v1 stores
  bool rescued = false;               // false in v1 stores
  std::uint32_t level = 0;            // 0 in v1/v2 stores
};

/// Zero-copy view of one record line (mmap bytes or any buffer).  All
/// accessors parse lazily from the underlying text; scalar fields stop at
/// the "x" key, so status/level/worker queries never decode endpoints.
/// Malformed lines throw std::invalid_argument from any accessor.
class RecordView {
 public:
  RecordView() = default;
  RecordView(std::string_view line, int version) : line_(line), version_(version) {}

  std::string_view line() const { return line_; }
  int version() const { return version_; }

  /// Fast path: only the leading "i" field is parsed.
  JobId id() const;
  /// One positional walk over the scalar prefix (endpoints untouched).
  RecordFields fields() const;
  /// Number of complex endpoint coordinates (counted, not decoded).
  std::size_t endpoint_dim() const;
  /// Decode the endpoint coordinates (bit-exact, NaN/Inf included).
  linalg::CVector endpoint() const;
  /// max_k |x_k| over the endpoint, decoded streaming without allocating
  /// the coordinate vector -- the histogram analytics' hot path.
  double endpoint_inf_norm() const;
  /// Full decode into the session record type.
  TrackedPath full() const;

 private:
  std::string_view line_;
  int version_ = kFormatVersion;
};

/// Full strict parse of one record line.  Throws std::invalid_argument on
/// any malformation (including trailing bytes).
TrackedPath parse_record(std::string_view line, int version = kFormatVersion);

/// Validation with exactly the acceptance set of parse_record, minus the
/// materialization: the streaming-scan loaders use it to find the first
/// corrupt line.  On success fills `fields` and returns true.
bool validate_record_line(std::string_view line, int version,
                          RecordFields& fields) noexcept;

// ---------------------------------------------------------------------------
// Footer: the offset index appended on clean close.
// ---------------------------------------------------------------------------

inline constexpr std::string_view kFooterPrefix = "{\"footer\":";

struct FooterInfo {
  std::uint64_t records = 0;
  JobId min_id = 0;  // over the indexed records; 0/0 when the store is empty
  JobId max_id = 0;
  bool has_id_range = false;  // v2 footers predate min_id/max_id
  std::vector<std::pair<JobId, std::uint64_t>> offsets;  // (id, line start)
};

/// Render the footer line (no trailing newline): record count, id range,
/// and the byte offset of every record line.
std::string footer_line(const std::vector<std::pair<JobId, std::uint64_t>>& offsets);
/// Parse a footer line; accepts both the v2 form (records + offsets) and
/// the v3 form (with min_id/max_id).  nullopt on malformation -- readers
/// fall back to the streaming scan.
std::optional<FooterInfo> parse_footer(std::string_view line);

inline bool is_footer_line(std::string_view line) {
  return line.substr(0, kFooterPrefix.size()) == kFooterPrefix;
}

}  // namespace pph::store
