#pragma once
// Read side of the JSONL result store (DESIGN.md section 12).  The write
// side (sched::JsonlStoreSink) streams millions of bit-exact path records;
// StoreReader answers questions about them without a full reparse:
//
//   - the file is mmapped (buffered fallback for exotic filesystems), so
//     record bytes are touched only when a query actually needs them;
//   - on a cleanly closed store the index/offset footer gives O(1) random
//     access to record i -- opening the store parses ONLY the header and
//     the footer line, never the records;
//   - a store with a missing, truncated, or corrupt footer (killed run)
//     falls back to a streaming scan with exactly the tolerance contract
//     of the legacy load_result_store: records up to the first partial or
//     corrupt line survive, the tail is dropped, first occurrence of a
//     JobId wins;
//   - record decode is lazy (store::RecordView): scalar fields like
//     status/worker/level parse without touching the endpoint hex run, and
//     endpoints decode bit-exactly on demand.
//
// MultiStoreReader stitches sharded / resumed runs (store-*.jsonl) into
// one logical store with global record indices; store::scan (see
// parallel_scan.hpp) runs map/reduce queries over either reader.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/record_codec.hpp"

namespace pph::store {

struct ReaderOptions {
  /// mmap the file (the default).  false reads it into a private buffer --
  /// the portability fallback, also used by tests to cover both paths.
  bool use_mmap = true;
};

class StoreReader {
 public:
  /// Open `path`.  Never throws on store-content problems: a missing file
  /// reads as empty-and-clean, garbage as an empty truncated store --
  /// exactly like the legacy loader.  Throws std::runtime_error only on
  /// genuine I/O failure (open/stat/map errors on an existing file).
  explicit StoreReader(std::string path, ReaderOptions opts = {});
  ~StoreReader();
  StoreReader(StoreReader&& other) noexcept;
  StoreReader& operator=(StoreReader&& other) noexcept;
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  const std::string& path() const { return path_; }
  /// The file existed when opened.
  bool exists() const { return exists_; }
  /// Format version from the header (0 for a missing/empty/garbage file).
  int version() const { return version_; }
  /// Writer metadata from a v3 header (empty otherwise).
  const StoreMeta& meta() const { return meta_; }

  /// Footer-indexed: record offsets came from the footer, open cost was
  /// O(footer), and no record line was touched yet.
  bool indexed() const { return indexed_; }
  /// A footer line was present (indexed(), or a corrupt footer that forced
  /// the scan fallback).  Mirrors StoreLoad::had_footer.
  bool footer_seen() const { return footer_seen_; }
  /// A partial or corrupt tail was dropped.  Mirrors StoreLoad::truncated.
  bool truncated() const { return truncated_; }
  /// Where a resuming writer continues (after the last valid record).
  std::uint64_t append_offset() const { return append_offset_; }

  /// Number of records (first occurrence of a JobId wins).
  std::size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }
  /// Later lines whose JobId was already seen (dropped from the index).
  std::size_t duplicates_dropped() const { return duplicates_dropped_; }

  /// JobId of record i straight from the index -- never touches the line.
  JobId id_at(std::size_t i) const { return refs_[i].id; }
  /// Byte offset of record i's line start (resume/footer bookkeeping).
  std::uint64_t offset_at(std::size_t i) const { return refs_[i].offset; }
  /// Smallest/largest indexed JobId (0/0 for an empty store).
  JobId min_id() const { return min_id_; }
  JobId max_id() const { return max_id_; }

  /// Lazy view of record i.  O(1): the line bounds come from the index.
  RecordView record(std::size_t i) const;
  /// Full decode of record i.
  TrackedPath load(std::size_t i) const { return record(i).full(); }
  /// Record position of a JobId, if stored.  The id->position map is built
  /// on first use (one pass over the in-memory index, no line touching).
  std::optional<std::size_t> find(JobId id) const;

  /// f(const RecordView&, std::size_t i) over [begin, end).
  template <typename F>
  void for_each_in(std::size_t begin, std::size_t end, F&& f) const {
    for (std::size_t i = begin; i < end && i < refs_.size(); ++i) f(record(i), i);
  }
  template <typename F>
  void for_each(F&& f) const {
    for_each_in(0, refs_.size(), f);
  }

 private:
  struct RecordRef {
    JobId id = 0;
    std::uint64_t offset = 0;  // line start (byte) in the file
    std::uint32_t length = 0;  // line length sans newline; 0 = locate lazily
  };

  void open(const ReaderOptions& opts);
  void scan_records(std::size_t data_start, std::size_t end);
  void unmap() noexcept;
  const char* data() const { return data_; }

  std::string path_;
  const char* data_ = nullptr;   // mmap base or buffer_.data()
  std::size_t len_ = 0;
  void* map_base_ = nullptr;     // non-null iff mmapped
  std::size_t map_len_ = 0;
  std::string buffer_;           // buffered fallback storage

  bool exists_ = false;
  int version_ = 0;
  StoreMeta meta_;
  bool indexed_ = false;
  bool footer_seen_ = false;
  bool truncated_ = false;
  std::uint64_t append_offset_ = 0;
  std::uint64_t records_end_ = 0;  // byte end of the record region
  std::size_t duplicates_dropped_ = 0;
  JobId min_id_ = 0;
  JobId max_id_ = 0;
  std::vector<RecordRef> refs_;

  mutable std::once_flag id_index_once_;
  mutable std::unordered_map<JobId, std::size_t> id_index_;
};

// ---------------------------------------------------------------------------
// Sharded / resumed runs as one logical store.
// ---------------------------------------------------------------------------

/// Expand CLI-style store arguments: a plain path stays itself (even when
/// missing -- the reader reports that); an argument whose filename contains
/// '*' matches files in its parent directory (empty when none match).  The
/// expansion of each pattern is sorted, so store-0.jsonl precedes
/// store-1.jsonl and shard order is deterministic.
std::vector<std::string> expand_store_paths(const std::vector<std::string>& args);

/// Several store files read as ONE logical store: records of shard k come
/// after every record of shard k-1, and global record indices run over the
/// concatenation.  Cross-shard JobId duplicates are retained here (a
/// resumed-into-a-new-shard run legitimately repeats nothing, but the
/// reader cannot know) -- the dedup analytics resolve them first-wins.
class MultiStoreReader {
 public:
  explicit MultiStoreReader(const std::vector<std::string>& paths,
                            ReaderOptions opts = {});

  std::size_t shard_count() const { return shards_.size(); }
  const StoreReader& shard(std::size_t k) const { return shards_[k]; }

  /// Total records over all shards.
  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// (shard, local index) of a global record index.
  std::pair<std::size_t, std::size_t> locate(std::size_t global) const;
  RecordView record(std::size_t global) const;
  TrackedPath load(std::size_t global) const { return record(global).full(); }
  /// Shard that holds global index i (for per-shard version lookups).
  const StoreReader& shard_of(std::size_t global) const {
    return shards_[locate(global).first];
  }

  /// f(const RecordView&, std::size_t global) over [begin, end), walking
  /// shards in order without per-record binary searches.
  template <typename F>
  void for_each_in(std::size_t begin, std::size_t end, F&& f) const {
    end = std::min(end, total_);
    if (begin >= end) return;
    auto [k, local] = locate(begin);
    std::size_t global = begin;
    for (; k < shards_.size() && global < end; ++k, local = 0) {
      const StoreReader& s = shards_[k];
      for (std::size_t i = local; i < s.size() && global < end; ++i, ++global) {
        f(s.record(i), global);
      }
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for_each_in(0, total_, f);
  }

 private:
  std::vector<StoreReader> shards_;
  std::vector<std::size_t> cumulative_;  // records before shard k
  std::size_t total_ = 0;
};

}  // namespace pph::store
