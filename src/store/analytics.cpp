#include "store/analytics.hpp"

#include <cmath>
#include <unordered_set>

#include "poly/system.hpp"

namespace pph::store::analytics {

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

void StoreSummary::add(const RecordFields& f) {
  ++records;
  switch (f.status) {
    case homotopy::PathStatus::kConverged:
      ++converged;
      max_converged_residual = std::max(max_converged_residual, f.residual);
      break;
    case homotopy::PathStatus::kDiverged:
      ++diverged;
      break;
    case homotopy::PathStatus::kFailed:
    case homotopy::PathStatus::kDeadlineExpired:
    case homotopy::PathStatus::kCancelled:
      // Reliability outcomes (DESIGN.md section 13) are unconverged work at
      // the analytics layer: no endpoint was certified.
      ++failed;
      break;
  }
  if (f.rescued) ++rescued;
  rescue_attempts += f.rescue_attempts;
  steps += f.steps;
  rejections += f.rejections;
  newton_iterations += f.newton_iterations;
  track_seconds += f.seconds;
}

void StoreSummary::merge(const StoreSummary& other) {
  records += other.records;
  converged += other.converged;
  diverged += other.diverged;
  failed += other.failed;
  rescued += other.rescued;
  rescue_attempts += other.rescue_attempts;
  steps += other.steps;
  rejections += other.rejections;
  newton_iterations += other.newton_iterations;
  track_seconds += other.track_seconds;
  max_converged_residual = std::max(max_converged_residual, other.max_converged_residual);
}

// ---------------------------------------------------------------------------
// Per-level table
// ---------------------------------------------------------------------------

double LevelRow::failure_rate() const {
  return records == 0 ? 0.0
                      : static_cast<double>(diverged + failed) /
                            static_cast<double>(records);
}

double LevelRow::rescue_rate() const {
  return records == 0 ? 0.0
                      : static_cast<double>(rescued) / static_cast<double>(records);
}

void LevelTable::add(const RecordFields& f) {
  LevelRow& row = rows[f.level];
  ++row.records;
  switch (f.status) {
    case homotopy::PathStatus::kConverged: ++row.converged; break;
    case homotopy::PathStatus::kDiverged: ++row.diverged; break;
    case homotopy::PathStatus::kFailed:
    case homotopy::PathStatus::kDeadlineExpired:
    case homotopy::PathStatus::kCancelled: ++row.failed; break;
  }
  if (f.rescued) ++row.rescued;
  row.rescue_attempts += f.rescue_attempts;
  row.track_seconds += f.seconds;
}

void LevelTable::merge(const LevelTable& other) {
  for (const auto& [level, b] : other.rows) {
    LevelRow& a = rows[level];
    a.records += b.records;
    a.converged += b.converged;
    a.diverged += b.diverged;
    a.failed += b.failed;
    a.rescued += b.rescued;
    a.rescue_attempts += b.rescue_attempts;
    a.track_seconds += b.track_seconds;
  }
}

// ---------------------------------------------------------------------------
// Decade histograms
// ---------------------------------------------------------------------------

void DecadeHistogram::add(double value) {
  ++total;
  if (!std::isfinite(value)) {
    ++nonfinite;
    return;
  }
  const double mag = std::fabs(value);
  if (mag == 0.0) {
    ++zeros;
    return;
  }
  int exp = static_cast<int>(std::floor(std::log10(mag)));
  exp = std::min(std::max(exp, kMinExp), kMaxExp);
  ++buckets[static_cast<std::size_t>(exp - kMinExp)];
}

void DecadeHistogram::merge(const DecadeHistogram& other) {
  for (std::size_t k = 0; k < buckets.size(); ++k) buckets[k] += other.buckets[k];
  zeros += other.zeros;
  nonfinite += other.nonfinite;
  total += other.total;
}

std::uint64_t DecadeHistogram::at_or_above(int exponent) const {
  std::uint64_t count = 0;
  for (int e = std::max(exponent, kMinExp); e <= kMaxExp; ++e) count += bucket(e);
  return count;
}

void StoreHistograms::add(const RecordView& r) {
  const RecordFields f = r.fields();
  if (f.status == homotopy::PathStatus::kConverged) residual.add(f.residual);
  endpoint_norm.add(r.endpoint_inf_norm());
}

void StoreHistograms::merge(const StoreHistograms& other) {
  residual.merge(other.residual);
  endpoint_norm.merge(other.endpoint_norm);
}

// ---------------------------------------------------------------------------
// Dedup
// ---------------------------------------------------------------------------

namespace detail {

DedupReport finish_dedup(DedupGather&& gathered, double tol) {
  DedupReport report;
  report.tol = tol;
  report.records = gathered.entries.size();

  // First occurrence of an id wins (shards are gathered in order, so a
  // resumed shard's repeats lose to the original -- and with deterministic
  // tracking the repeats are bit-identical anyway).
  std::unordered_set<JobId> seen;
  seen.reserve(gathered.entries.size());
  std::vector<linalg::CVector> points;
  for (DedupEntry& e : gathered.entries) {
    if (!seen.insert(e.id).second) continue;
    if (e.converged) points.push_back(std::move(e.x));
  }
  report.unique_ids = seen.size();
  report.duplicate_ids = report.records - report.unique_ids;
  report.converged = points.size();
  report.distinct_solutions = poly::deduplicate_solutions(points, tol).size();
  return report;
}

}  // namespace detail

}  // namespace pph::store::analytics
