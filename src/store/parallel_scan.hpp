#pragma once
// Parallel map/reduce over a result store (DESIGN.md section 12).  The
// record range is sharded into contiguous chunks across a plain thread
// pool; every worker folds its chunk into a private accumulator, and the
// accumulators merge sequentially IN CHUNK ORDER.  For a fixed thread
// count the chunking -- and therefore every reduced bit -- is
// deterministic.  Across different thread counts, exact reductions
// (counts, max-by-bits, order-preserving concatenation) are identical too;
// only floating-point SUMS may differ in the last bits, because addition
// regroups with the chunk boundaries.
//
//   StoreSummary acc = store::scan(
//       reader, store::ScanRange{}, StoreSummary{},
//       [](StoreSummary& a, const store::RecordView& r, std::size_t) {
//         a.add(r.fields());
//       },
//       [](StoreSummary& a, StoreSummary&& b) { a.merge(b); });
//
// Works over StoreReader and MultiStoreReader alike (anything with size()
// and for_each_in(begin, end, f)).  Reading is pure: RecordView decodes
// from the mmapped bytes without shared mutable state, so chunks need no
// synchronization at all.

#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace pph::store {

/// Half-open record-index range; end clamps to the store size.
struct ScanRange {
  std::size_t begin = 0;
  std::size_t end = static_cast<std::size_t>(-1);
};

/// Worker count: `threads` when positive, else the hardware concurrency
/// (at least 1).
inline int scan_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Map/reduce over `store` records in [range.begin, range.end).
///   map(Acc&, const RecordView&, std::size_t global_index)
///   reduce(Acc&, Acc&&)   -- merge a later chunk into an earlier one
/// Returns the fold of `init` over all chunks in ascending record order.
template <typename Store, typename Acc, typename MapFn, typename ReduceFn>
Acc scan(const Store& store, ScanRange range, Acc init, MapFn map, ReduceFn reduce,
         int threads = 0) {
  const std::size_t begin = std::min(range.begin, store.size());
  const std::size_t end = std::min(range.end, store.size());
  const std::size_t span = end > begin ? end - begin : 0;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(scan_threads(threads)),
                            span == 0 ? 1 : span);

  if (workers <= 1) {
    Acc acc = std::move(init);
    store.for_each_in(begin, end,
                      [&](const auto& view, std::size_t i) { map(acc, view, i); });
    return acc;
  }

  const std::size_t chunk = (span + workers - 1) / workers;
  std::vector<Acc> partial(workers, init);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    pool.emplace_back([&, w, lo, hi] {
      Acc& acc = partial[w];
      store.for_each_in(lo, hi,
                        [&](const auto& view, std::size_t i) { map(acc, view, i); });
    });
  }
  for (std::thread& t : pool) t.join();

  Acc acc = std::move(partial.front());
  for (std::size_t w = 1; w < workers; ++w) reduce(acc, std::move(partial[w]));
  return acc;
}

}  // namespace pph::store
