#pragma once
// First-class queries over result stores (DESIGN.md section 12): the
// library behind the `pph_store` CLI.  Every analytic is a map/reduce over
// store::scan, so it runs identically over one store file or a sharded
// MultiStoreReader, single- or multi-threaded, with a deterministic result
// either way.
//
//   - summarize:   status/effort totals from the scalar record prefix --
//                  the lazy fast path, endpoints are never decoded;
//   - level_table: per-tree-level counts and failure/rescue rates (v3
//                  stores carry the level; flat pools report level 0);
//   - histograms:  decade (log10-bucketed) histograms of converged
//                  residuals and endpoint inf-norms -- the same decades the
//                  endgame classifier and suspect_path thresholds reason
//                  in, so a histogram row reads directly as "paths beyond
//                  the rescue tier's suspect_residual";
//   - dedup:       global solution identity: first occurrence of a JobId
//                  wins across shards (a resumed run may repeat records),
//                  then converged endpoints collapse to geometrically
//                  distinct roots via poly::deduplicate_solutions.

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "linalg/matrix.hpp"
#include "store/parallel_scan.hpp"
#include "store/record_codec.hpp"

namespace pph::store::analytics {

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

struct StoreSummary {
  std::size_t records = 0;
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;
  std::size_t rescued = 0;          // records whose final status came from a rescue
  std::uint64_t rescue_attempts = 0;
  std::uint64_t steps = 0;
  std::uint64_t rejections = 0;
  std::uint64_t newton_iterations = 0;
  double track_seconds = 0.0;       // sum of per-record tracking time
  double max_converged_residual = 0.0;

  void add(const RecordFields& f);
  void merge(const StoreSummary& other);
};

template <typename Store>
StoreSummary summarize(const Store& store, int threads = 0) {
  return scan(
      store, ScanRange{}, StoreSummary{},
      [](StoreSummary& a, const RecordView& r, std::size_t) { a.add(r.fields()); },
      [](StoreSummary& a, StoreSummary&& b) { a.merge(b); }, threads);
}

// ---------------------------------------------------------------------------
// Per-level failure / rescue rates
// ---------------------------------------------------------------------------

struct LevelRow {
  std::size_t records = 0;
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;
  std::size_t rescued = 0;
  std::uint64_t rescue_attempts = 0;
  double track_seconds = 0.0;

  /// (diverged + failed) / records; 0 for an empty row.
  double failure_rate() const;
  /// rescued / records; 0 for an empty row.
  double rescue_rate() const;
};

/// Rows keyed by tree level (ordered, so tables print root-to-leaves).
struct LevelTable {
  std::map<std::uint32_t, LevelRow> rows;

  void add(const RecordFields& f);
  void merge(const LevelTable& other);
};

template <typename Store>
LevelTable level_table(const Store& store, int threads = 0) {
  return scan(
      store, ScanRange{}, LevelTable{},
      [](LevelTable& a, const RecordView& r, std::size_t) { a.add(r.fields()); },
      [](LevelTable& a, LevelTable&& b) { a.merge(b); }, threads);
}

// ---------------------------------------------------------------------------
// Decade histograms
// ---------------------------------------------------------------------------

/// log10-bucketed histogram: bucket k counts values in [10^k, 10^{k+1}).
/// Exactly the decades the endgame classifier samples (endgame_norms) and
/// the rescue tier thresholds (suspect_residual) reason in.
struct DecadeHistogram {
  static constexpr int kMinExp = -20;  // values below count as kMinExp
  static constexpr int kMaxExp = 12;   // values above count as kMaxExp
  std::array<std::uint64_t, static_cast<std::size_t>(kMaxExp - kMinExp + 1)> buckets{};
  std::uint64_t zeros = 0;        // exact zeros (no decade)
  std::uint64_t nonfinite = 0;    // NaN / Inf (diverged paths produce them)
  std::uint64_t total = 0;

  void add(double value);
  void merge(const DecadeHistogram& other);
  std::uint64_t bucket(int exponent) const {
    return buckets[static_cast<std::size_t>(exponent - kMinExp)];
  }
  /// Count of finite non-zero values at or above 10^exponent.
  std::uint64_t at_or_above(int exponent) const;
};

struct StoreHistograms {
  DecadeHistogram residual;       // converged records only
  DecadeHistogram endpoint_norm;  // ||x||_inf over ALL records (decoded lazily)

  void add(const RecordView& r);
  void merge(const StoreHistograms& other);
};

template <typename Store>
StoreHistograms histograms(const Store& store, int threads = 0) {
  return scan(
      store, ScanRange{}, StoreHistograms{},
      [](StoreHistograms& a, const RecordView& r, std::size_t) { a.add(r); },
      [](StoreHistograms& a, StoreHistograms&& b) { a.merge(b); }, threads);
}

// ---------------------------------------------------------------------------
// Global solution dedup
// ---------------------------------------------------------------------------

struct DedupReport {
  std::size_t records = 0;            // records scanned (all shards)
  std::size_t unique_ids = 0;         // after first-occurrence-wins id dedup
  std::size_t duplicate_ids = 0;      // records dropped by the id dedup
  std::size_t converged = 0;          // converged among the unique ids
  std::size_t distinct_solutions = 0; // geometrically distinct converged roots
  double tol = 0.0;
};

namespace detail {
/// Scan accumulator: one entry per record IN RECORD ORDER (chunk merges
/// concatenate in chunk order), so the sequential first-wins pass
/// downstream is thread-count independent.
struct DedupEntry {
  JobId id = 0;
  bool converged = false;
  linalg::CVector x;  // endpoint; decoded only for converged records
};
struct DedupGather {
  std::vector<DedupEntry> entries;
};
/// The sequential tail of dedup(): first-wins id dedup over the in-order
/// gather (the FIRST record for an id decides its status and endpoint),
/// then poly::deduplicate_solutions over the surviving endpoints.
DedupReport finish_dedup(DedupGather&& gathered, double tol);
}  // namespace detail

/// Global dedup at geometric tolerance `tol` (max-norm, the
/// poly::deduplicate_solutions contract).  Deterministic for any thread
/// count: the gather preserves record order and the collapse runs
/// sequentially.
template <typename Store>
DedupReport dedup(const Store& store, double tol, int threads = 0) {
  auto gathered = scan(
      store, ScanRange{}, detail::DedupGather{},
      [](detail::DedupGather& a, const RecordView& r, std::size_t) {
        const RecordFields f = r.fields();
        detail::DedupEntry e;
        e.id = f.id;
        e.converged = f.status == homotopy::PathStatus::kConverged;
        if (e.converged) e.x = r.endpoint();
        a.entries.push_back(std::move(e));
      },
      [](detail::DedupGather& a, detail::DedupGather&& b) {
        a.entries.insert(a.entries.end(),
                         std::make_move_iterator(b.entries.begin()),
                         std::make_move_iterator(b.entries.end()));
      },
      threads);
  return detail::finish_dedup(std::move(gathered), tol);
}

}  // namespace pph::store::analytics
