#include "store/store_reader.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define PPH_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pph::store {

namespace {

const char* find_newline(const char* data, std::size_t len) {
  return static_cast<const char*>(std::memchr(data, '\n', len));
}

/// Start of the last line in [begin, end) given that data[end] == '\n' is
/// the terminator of that line.
std::size_t last_line_start(const char* data, std::size_t begin, std::size_t end) {
  for (std::size_t i = end; i > begin; --i) {
    if (data[i - 1] == '\n') return i;
  }
  return begin;
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreReader
// ---------------------------------------------------------------------------

StoreReader::StoreReader(std::string path, ReaderOptions opts)
    : path_(std::move(path)) {
  open(opts);
}

StoreReader::~StoreReader() { unmap(); }

StoreReader::StoreReader(StoreReader&& other) noexcept { *this = std::move(other); }

StoreReader& StoreReader::operator=(StoreReader&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  path_ = std::move(other.path_);
  data_ = other.data_;
  len_ = other.len_;
  map_base_ = other.map_base_;
  map_len_ = other.map_len_;
  buffer_ = std::move(other.buffer_);
  if (map_base_ == nullptr && len_ > 0) data_ = buffer_.data();
  exists_ = other.exists_;
  version_ = other.version_;
  meta_ = std::move(other.meta_);
  indexed_ = other.indexed_;
  footer_seen_ = other.footer_seen_;
  truncated_ = other.truncated_;
  append_offset_ = other.append_offset_;
  records_end_ = other.records_end_;
  duplicates_dropped_ = other.duplicates_dropped_;
  min_id_ = other.min_id_;
  max_id_ = other.max_id_;
  refs_ = std::move(other.refs_);
  id_index_ = std::move(other.id_index_);
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.len_ = 0;
  other.refs_.clear();
  return *this;
}

void StoreReader::unmap() noexcept {
#if PPH_STORE_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
  }
#endif
}

void StoreReader::open(const ReaderOptions& opts) {
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) return;  // missing: empty, clean
  exists_ = true;

#if PPH_STORE_HAVE_MMAP
  if (opts.use_mmap) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("StoreReader: cannot open " + path_);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("StoreReader: cannot stat " + path_);
    }
    len_ = static_cast<std::size_t>(st.st_size);
    if (len_ > 0) {
      void* base = ::mmap(nullptr, len_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        ::close(fd);
        throw std::runtime_error("StoreReader: cannot mmap " + path_);
      }
      map_base_ = base;
      map_len_ = len_;
      data_ = static_cast<const char*>(base);
    }
    ::close(fd);
  } else
#else
  (void)opts;
#endif
  {
    std::ifstream in(path_, std::ios::binary);
    if (!in.is_open()) throw std::runtime_error("StoreReader: cannot open " + path_);
    buffer_.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    len_ = buffer_.size();
    data_ = buffer_.data();
  }

  if (len_ == 0) return;  // zero-length file: empty, clean (a fresh writer restarts)

  // Header: the first newline-terminated line must parse as a v1-v3 header;
  // anything else (including a file cut mid-header) restarts the store.
  const char* nl = find_newline(data_, len_);
  if (nl == nullptr) {
    truncated_ = true;
    return;
  }
  const std::size_t header_len = static_cast<std::size_t>(nl - data_);
  const auto header = parse_header(std::string_view(data_, header_len));
  if (!header) {
    truncated_ = true;
    return;
  }
  version_ = header->version;
  meta_ = header->meta;
  const std::size_t data_start = header_len + 1;
  append_offset_ = data_start;
  records_end_ = data_start;
  if (data_start >= len_) return;  // header only: empty, clean

  // Footer fast path: a cleanly closed store ends with a newline-terminated
  // footer whose offsets index every record -- open cost is O(footer), and
  // no record line is touched.
  if (data_[len_ - 1] == '\n') {
    const std::size_t lstart = last_line_start(data_, data_start, len_ - 1);
    const std::string_view last(data_ + lstart, len_ - 1 - lstart);
    if (is_footer_line(last)) {
      footer_seen_ = true;
      if (const auto footer = parse_footer(last)) {
        bool valid = true;
        std::uint64_t prev = 0;
        for (std::size_t k = 0; k < footer->offsets.size() && valid; ++k) {
          const std::uint64_t off = footer->offsets[k].second;
          valid = off >= data_start && off < lstart && (k == 0 || off > prev);
          prev = off;
        }
        if (valid) {
          indexed_ = true;
          records_end_ = lstart;
          append_offset_ = lstart;
          refs_.reserve(footer->offsets.size());
          std::unordered_set<JobId> seen;
          seen.reserve(footer->offsets.size());
          for (const auto& [id, off] : footer->offsets) {
            // First occurrence of an id wins, as in the streaming loader.
            if (seen.insert(id).second) refs_.push_back(RecordRef{id, off, 0});
            else ++duplicates_dropped_;
          }
          if (!refs_.empty()) {
            min_id_ = max_id_ = refs_.front().id;
            for (const RecordRef& ref : refs_) {
              min_id_ = std::min(min_id_, ref.id);
              max_id_ = std::max(max_id_, ref.id);
            }
          }
          return;
        }
      }
      // Corrupt footer: graceful fallback to the streaming scan, which
      // stops at the footer-prefixed line exactly like the legacy loader.
    }
  }

  scan_records(data_start, len_);
}

void StoreReader::scan_records(std::size_t data_start, std::size_t end) {
  std::unordered_set<JobId> seen;
  std::size_t pos = data_start;
  while (pos < end) {
    const char* nl = find_newline(data_ + pos, end - pos);
    if (nl == nullptr) {
      // A killed writer leaves at most one partial line at the tail --
      // possibly a half-written footer; drop it either way (a dropped
      // record's job re-tracks deterministically on resume).
      truncated_ = true;
      append_offset_ = pos;
      return;
    }
    const std::size_t line_len = static_cast<std::size_t>(nl - (data_ + pos));
    const std::string_view line(data_ + pos, line_len);
    if (is_footer_line(line)) {
      // Clean close: the footer is the last meaningful line; a resuming
      // writer overwrites it so the footer stays last.
      footer_seen_ = true;
      records_end_ = pos;
      append_offset_ = pos;
      return;
    }
    RecordFields f;
    if (!validate_record_line(line, version_, f)) {
      truncated_ = true;
      records_end_ = pos;
      append_offset_ = pos;
      return;
    }
    if (seen.insert(f.id).second) {
      if (refs_.empty()) {
        min_id_ = max_id_ = f.id;
      } else {
        min_id_ = std::min(min_id_, f.id);
        max_id_ = std::max(max_id_, f.id);
      }
      refs_.push_back(RecordRef{f.id, pos, static_cast<std::uint32_t>(line_len)});
    } else {
      ++duplicates_dropped_;
    }
    pos += line_len + 1;
    records_end_ = pos;
    append_offset_ = pos;
  }
}

RecordView StoreReader::record(std::size_t i) const {
  const RecordRef& ref = refs_.at(i);
  std::size_t length = ref.length;
  if (length == 0) {
    // Footer-indexed refs locate the newline lazily: O(line), O(1) in the
    // record count.
    const std::size_t avail = static_cast<std::size_t>(records_end_ - ref.offset);
    const char* nl = find_newline(data_ + ref.offset, avail);
    length = nl == nullptr ? avail : static_cast<std::size_t>(nl - (data_ + ref.offset));
  }
  return RecordView(std::string_view(data_ + ref.offset, length), version_);
}

std::optional<std::size_t> StoreReader::find(JobId id) const {
  std::call_once(id_index_once_, [this] {
    id_index_.reserve(refs_.size());
    for (std::size_t i = 0; i < refs_.size(); ++i) id_index_.emplace(refs_[i].id, i);
  });
  const auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// MultiStoreReader
// ---------------------------------------------------------------------------

std::vector<std::string> expand_store_paths(const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    const std::string name = p.filename().string();
    if (name.find('*') == std::string::npos) {
      out.push_back(arg);
      continue;
    }
    // Match '*' wildcards in the FILENAME against the parent directory
    // (the classic backtracking glob walk, '*' only).
    const fs::path dir = p.parent_path().empty() ? fs::path(".") : p.parent_path();
    const auto matches = [&name](const std::string& candidate) {
      std::size_t pp = 0, cp = 0;
      std::size_t star = std::string::npos, mark = 0;
      while (cp < candidate.size()) {
        if (pp < name.size() && name[pp] == '*') {
          star = pp++;
          mark = cp;
        } else if (pp < name.size() && name[pp] == candidate[cp]) {
          ++pp;
          ++cp;
        } else if (star != std::string::npos) {
          pp = star + 1;
          cp = ++mark;
        } else {
          return false;
        }
      }
      while (pp < name.size() && name[pp] == '*') ++pp;
      return pp == name.size();
    };
    std::vector<std::string> hits;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      if (matches(entry.path().filename().string())) hits.push_back(entry.path().string());
    }
    std::sort(hits.begin(), hits.end());
    out.insert(out.end(), hits.begin(), hits.end());
  }
  return out;
}

MultiStoreReader::MultiStoreReader(const std::vector<std::string>& paths,
                                   ReaderOptions opts) {
  shards_.reserve(paths.size());
  cumulative_.reserve(paths.size());
  for (const std::string& p : paths) {
    shards_.emplace_back(p, opts);
    cumulative_.push_back(total_);
    total_ += shards_.back().size();
  }
}

std::pair<std::size_t, std::size_t> MultiStoreReader::locate(std::size_t global) const {
  if (global >= total_) throw std::out_of_range("MultiStoreReader: record index");
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), global);
  const std::size_t k = static_cast<std::size_t>(it - cumulative_.begin()) - 1;
  return {k, global - cumulative_[k]};
}

RecordView MultiStoreReader::record(std::size_t global) const {
  const auto [k, local] = locate(global);
  return shards_[k].record(local);
}

}  // namespace pph::store
