#pragma once
// LU factorization with partial pivoting for dense complex matrices.
//
// This is the workhorse of the Newton corrector: every corrector step solves
// J * dx = -H(x,t) with J the Jacobian of the homotopy.  Determinants of the
// bordered matrices [X | K] in the Pieri intersection conditions also come
// from this factorization.

#include <optional>

#include "linalg/matrix.hpp"

namespace pph::linalg {

/// Factorization P*A = L*U of a square matrix.  Construction never throws on
/// singular input; `singular()` reports exact breakdown and `rcond_estimate`
/// gives a cheap conditioning signal.
///
/// The Newton loop refactors every iteration, so a default-constructed LU
/// can be re-`factor`ed in place: the incoming matrix's storage is swapped
/// into the object (no copy) and the pivot vector is reused.  After the
/// first factorization of a given size, `factor` + `solve_into` allocate
/// nothing.
class LU {
 public:
  LU() = default;
  explicit LU(const CMatrix& a);

  /// Factor `a` in place, taking over its storage.  On return `a` holds the
  /// previous factorization's buffer resized to a's shape with unspecified
  /// contents — callers that refill their matrix every iteration (the
  /// tracker workspace) never see an allocation after warm-up.
  void factor(CMatrix& a);

  std::size_t dim() const { return n_; }
  bool singular() const { return singular_; }

  /// Solve A x = b.  Returns nullopt when the factorization is singular.
  std::optional<CVector> solve(const CVector& b) const;

  /// Solve A x = b into a caller-provided vector (resized to dim()); returns
  /// false when the factorization is singular.  Allocation-free once x is at
  /// capacity.
  bool solve_into(const CVector& b, CVector& x) const;

  /// Solve A X = B column-by-column.
  std::optional<CMatrix> solve(const CMatrix& b) const;

  /// Determinant of A (product of U's diagonal with the permutation sign).
  Complex determinant() const;

  /// Inverse of A; nullopt when singular.
  std::optional<CMatrix> inverse() const;

  /// Reciprocal condition estimate in the infinity norm:
  /// 1 / (||A||_inf * ||A^-1||_inf_estimate), where ||A^-1|| is estimated by
  /// a few solves against +/-1 vectors (Hager-style, one sweep).  Returns 0
  /// for singular factorizations.
  double rcond_estimate() const;

  /// Smallest |U(i,i)| over the diagonal, a cheap pivot-based degeneracy
  /// signal used by the tracker to detect near-singular Jacobians.
  double min_pivot_magnitude() const;

 private:
  std::size_t n_ = 0;
  CMatrix lu_;                    // packed L (unit diagonal, below) and U (on/above)
  std::vector<std::size_t> piv_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
  double norm_a_inf_ = 0.0;
};

/// Convenience wrappers.
Complex determinant(const CMatrix& a);
std::optional<CVector> solve(const CMatrix& a, const CVector& b);

}  // namespace pph::linalg
