#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace pph::linalg {

LU::LU(const CMatrix& a) {
  CMatrix copy(a);
  factor(copy);
}

void LU::factor(CMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("LU: matrix not square");
  n_ = a.rows();
  std::swap(lu_, a);
  a.resize(n_, n_);  // hand the caller back a same-shaped buffer
  piv_.resize(n_);
  perm_sign_ = 1;
  singular_ = false;
  norm_a_inf_ = norm_inf(lu_);
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below row k.
    std::size_t pivot_row = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;  // leave the zero column; determinant() will report 0
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(piv_[k], piv_[pivot_row]);
      perm_sign_ = -perm_sign_;
    }
    const Complex pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const Complex factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == Complex{}) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::optional<CVector> LU::solve(const CVector& b) const {
  CVector x;
  if (!solve_into(b, x)) return std::nullopt;
  return x;
}

bool LU::solve_into(const CVector& b, CVector& x) const {
  if (b.size() != n_) throw std::invalid_argument("LU::solve: size mismatch");
  if (singular_) return false;
  x.resize(n_);  // b and x must not alias: the permuted read of b interleaves writes to x
  // Apply permutation and forward-substitute L (unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    Complex acc = b[piv_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute U.
  for (std::size_t ii = n_; ii-- > 0;) {
    Complex acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return true;
}

std::optional<CMatrix> LU::solve(const CMatrix& b) const {
  if (b.rows() != n_) throw std::invalid_argument("LU::solve: row mismatch");
  if (singular_) return std::nullopt;
  CMatrix x(n_, b.cols());
  CVector col(n_);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n_; ++r) col[r] = b(r, c);
    auto sol = solve(col);
    if (!sol) return std::nullopt;
    for (std::size_t r = 0; r < n_; ++r) x(r, c) = (*sol)[r];
  }
  return x;
}

Complex LU::determinant() const {
  if (singular_) return Complex{0.0, 0.0};
  Complex det{static_cast<double>(perm_sign_), 0.0};
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

std::optional<CMatrix> LU::inverse() const {
  return solve(CMatrix::identity(n_));
}

double LU::rcond_estimate() const {
  if (singular_ || n_ == 0) return 0.0;
  // One-sweep Hager estimate of ||A^-1||_inf via A^T-style solve is overkill
  // for our tiny systems; instead solve against the all-ones vector and a
  // +/-1 vector keyed to U's diagonal phases, take the larger growth.
  CVector ones(n_, Complex{1.0, 0.0});
  CVector alt(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const Complex d = lu_(i, i);
    const double mag = std::abs(d);
    alt[i] = (mag > 0.0) ? std::conj(d) / mag : Complex{1.0, 0.0};
  }
  double growth = 0.0;
  for (const auto& rhs : {ones, alt}) {
    auto x = solve(rhs);
    if (!x) return 0.0;
    growth = std::max(growth, norm_inf(*x) / norm_inf(rhs));
  }
  if (growth == 0.0 || norm_a_inf_ == 0.0) return 0.0;
  return 1.0 / (growth * norm_a_inf_);
}

double LU::min_pivot_magnitude() const {
  if (n_ == 0) return 0.0;
  double m = std::abs(lu_(0, 0));
  for (std::size_t i = 1; i < n_; ++i) m = std::min(m, std::abs(lu_(i, i)));
  return m;
}

Complex determinant(const CMatrix& a) { return LU(a).determinant(); }

std::optional<CVector> solve(const CMatrix& a, const CVector& b) {
  return LU(a).solve(b);
}

}  // namespace pph::linalg
