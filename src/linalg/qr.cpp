#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

namespace pph::linalg {

QR::QR(const CMatrix& a) : m_(a.rows()), n_(a.cols()), a_(a) {
  const std::size_t k = std::min(m_, n_);
  beta_.assign(k, Complex{});
  diag_.assign(k, Complex{});
  perm_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) perm_[j] = j;

  // Column norms for pivot selection, downdated as the factorization runs.
  std::vector<double> colnorm2(n_, 0.0);
  for (std::size_t c = 0; c < n_; ++c)
    for (std::size_t r = 0; r < m_; ++r) colnorm2[c] += std::norm(a_(r, c));

  auto swap_columns = [this, &colnorm2](std::size_t c1, std::size_t c2) {
    if (c1 == c2) return;
    for (std::size_t r = 0; r < m_; ++r) std::swap(a_(r, c1), a_(r, c2));
    std::swap(perm_[c1], perm_[c2]);
    std::swap(colnorm2[c1], colnorm2[c2]);
  };

  for (std::size_t j = 0; j < k; ++j) {
    // Column pivoting: bring the column with the largest remaining norm to j.
    // Recompute trailing norms exactly (matrices are tiny; no downdating
    // drift issues).
    for (std::size_t c = j; c < n_; ++c) {
      colnorm2[c] = 0.0;
      for (std::size_t r = j; r < m_; ++r) colnorm2[c] += std::norm(a_(r, c));
    }
    std::size_t pivot = j;
    for (std::size_t c = j + 1; c < n_; ++c)
      if (colnorm2[c] > colnorm2[pivot]) pivot = c;
    swap_columns(j, pivot);

    // Householder vector for column j, rows j..m-1.
    double norm_x = 0.0;
    for (std::size_t r = j; r < m_; ++r) norm_x += std::norm(a_(r, j));
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) {
      beta_[j] = Complex{};
      diag_[j] = Complex{};
      continue;
    }
    const Complex x0 = a_(j, j);
    const double ax0 = std::abs(x0);
    // alpha = -phase(x0) * ||x||, so that v = x - alpha*e1 avoids cancellation.
    const Complex phase = (ax0 > 0.0) ? x0 / ax0 : Complex{1.0, 0.0};
    const Complex alpha = -phase * norm_x;
    // v = x - alpha e1, normalized so v(0) = 1.
    const Complex v0 = x0 - alpha;
    double vnorm2 = std::norm(v0);
    for (std::size_t r = j + 1; r < m_; ++r) vnorm2 += std::norm(a_(r, j));
    if (vnorm2 == 0.0) {
      beta_[j] = Complex{};
      diag_[j] = alpha;
      continue;
    }
    beta_[j] = Complex{2.0 * std::norm(v0) / vnorm2, 0.0};
    for (std::size_t r = j + 1; r < m_; ++r) a_(r, j) /= v0;
    diag_[j] = alpha;
    a_(j, j) = Complex{1.0, 0.0};  // implicit; overwritten below for clarity

    // Apply H = I - beta v v^H to the trailing columns.
    for (std::size_t c = j + 1; c < n_; ++c) {
      Complex s = a_(j, c);
      for (std::size_t r = j + 1; r < m_; ++r) s += std::conj(a_(r, j)) * a_(r, c);
      s *= beta_[j];
      a_(j, c) -= s;
      for (std::size_t r = j + 1; r < m_; ++r) a_(r, c) -= s * a_(r, j);
    }
  }
}

CVector QR::apply_qt(const CVector& b) const {
  // y = Q^H b by applying the Householder reflectors in order.
  CVector y = b;
  const std::size_t k = std::min(m_, n_);
  for (std::size_t j = 0; j < k; ++j) {
    if (beta_[j] == Complex{}) continue;
    Complex s = y[j];
    for (std::size_t r = j + 1; r < m_; ++r) s += std::conj(a_(r, j)) * y[r];
    s *= beta_[j];
    y[j] -= s;
    for (std::size_t r = j + 1; r < m_; ++r) y[r] -= s * a_(r, j);
  }
  return y;
}

CMatrix QR::thin_q() const {
  const std::size_t k = std::min(m_, n_);
  CMatrix q(m_, k);
  // Accumulate Q by applying reflectors to the identity columns in reverse.
  for (std::size_t col = 0; col < k; ++col) {
    CVector e(m_, Complex{});
    e[col] = Complex{1.0, 0.0};
    for (std::size_t jj = k; jj-- > 0;) {
      if (beta_[jj] == Complex{}) continue;
      Complex s = e[jj];
      for (std::size_t r = jj + 1; r < m_; ++r) s += std::conj(a_(r, jj)) * e[r];
      s *= beta_[jj];
      e[jj] -= s;
      for (std::size_t r = jj + 1; r < m_; ++r) e[r] -= s * a_(r, jj);
    }
    for (std::size_t r = 0; r < m_; ++r) q(r, col) = e[r];
  }
  return q;
}

CMatrix QR::thin_r() const {
  const std::size_t k = std::min(m_, n_);
  CMatrix r(k, n_);
  for (std::size_t i = 0; i < k; ++i) {
    r(i, i) = diag_[i];
    for (std::size_t c = i + 1; c < n_; ++c) r(i, c) = a_(i, c);
  }
  return r;
}

std::optional<CVector> QR::solve_least_squares(const CVector& b) const {
  if (b.size() != m_) throw std::invalid_argument("QR::solve_least_squares: size mismatch");
  if (m_ < n_) throw std::invalid_argument("QR::solve_least_squares: underdetermined");
  const CVector y = apply_qt(b);
  CVector z(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    if (std::abs(diag_[ii]) == 0.0) return std::nullopt;
    Complex acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= a_(ii, j) * z[j];
    z[ii] = acc / diag_[ii];
  }
  // Undo the column permutation: x[perm_[j]] = z[j].
  CVector x(n_);
  for (std::size_t j = 0; j < n_; ++j) x[perm_[j]] = z[j];
  return x;
}

std::size_t QR::rank(double tol) const {
  const std::size_t k = std::min(m_, n_);
  if (k == 0) return 0;
  const double max_diag = std::abs(diag_[0]);
  if (max_diag == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (std::abs(diag_[i]) > tol * max_diag) ++r;
  }
  return r;
}

CMatrix orthonormalize_columns(const CMatrix& a) { return QR(a).thin_q(); }

}  // namespace pph::linalg
