#pragma once
// Householder QR for dense complex matrices.
//
// Used for: orthonormalizing random plane generators (so intersection
// conditions are well scaled), least-squares tangent computation when a
// Jacobian is nearly rank-deficient, and numeric rank/nullspace queries in
// the pole placement setup.

#include <optional>

#include "linalg/matrix.hpp"

namespace pph::linalg {

/// Rank-revealing QR with column pivoting: A P = Q R with Q unitary and R
/// upper trapezoidal whose diagonal magnitudes are non-increasing.
class QR {
 public:
  explicit QR(const CMatrix& a);

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Thin Q factor: first min(m,n) columns of Q (m x k, orthonormal columns).
  CMatrix thin_q() const;

  /// Upper-triangular R factor (k x n with k = min(m,n)), for A P = Q R.
  CMatrix thin_r() const;

  /// Column permutation P as an index map: column j of A*P is column
  /// perm()[j] of A.
  const std::vector<std::size_t>& perm() const { return perm_; }

  /// Least-squares solution of A x = b (m >= n, full column rank assumed);
  /// nullopt when R has a (numerically) zero diagonal.  The permutation is
  /// undone, so x corresponds to the original column order.
  std::optional<CVector> solve_least_squares(const CVector& b) const;

  /// Numeric rank: count of |R(i,i)| above tol * |R(0,0)| (valid because
  /// column pivoting makes the diagonal non-increasing in magnitude).
  std::size_t rank(double tol = 1e-12) const;

 private:
  CVector apply_qt(const CVector& b) const;

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  CMatrix a_;                      // Householder vectors below diag, R above
  CVector beta_;                   // Householder scalars
  CVector diag_;                   // diagonal of R (stored separately)
  std::vector<std::size_t> perm_;  // column pivoting permutation
};

/// Orthonormal basis of the column span of A (thin Q).
CMatrix orthonormalize_columns(const CMatrix& a);

}  // namespace pph::linalg
