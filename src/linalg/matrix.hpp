#pragma once
// Dense complex matrices and vectors.
//
// The homotopy kernel works over C throughout: Newton correction, tangent
// prediction and the Pieri intersection conditions are all complex linear
// algebra on small dense matrices (dimension <= a few dozen).  The storage
// is row-major contiguous; operations favour clarity over blocking since the
// matrices are tiny and the hot loops are the polynomial evaluations.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace pph::linalg {

using Complex = std::complex<double>;
using CVector = std::vector<Complex>;

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {}

  /// Build from nested initializer lists (rows of entries); ragged input throws.
  CMatrix(std::initializer_list<std::initializer_list<Complex>> init);

  static CMatrix identity(std::size_t n);
  static CMatrix zero(std::size_t rows, std::size_t cols) { return CMatrix(rows, cols); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Reshape to rows x cols.  Contents become unspecified when the shape
  /// changes; no reallocation when the new size fits the existing capacity
  /// (the evaluation engine relies on this for its allocation-free passes).
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Complex& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

  /// Rows [r0, r1) and columns [c0, c1) as a new matrix.
  CMatrix block(std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1) const;

  /// New matrix with the selected rows (in the given order).
  CMatrix select_rows(const std::vector<std::size_t>& row_indices) const;

  /// Horizontal concatenation [A | B]; row counts must agree.
  static CMatrix hcat(const CMatrix& a, const CMatrix& b);
  /// Vertical concatenation [A ; B]; column counts must agree.
  static CMatrix vcat(const CMatrix& a, const CMatrix& b);

  CMatrix transpose() const;
  /// Conjugate transpose.
  CMatrix adjoint() const;

  CMatrix& operator+=(const CMatrix& other);
  CMatrix& operator-=(const CMatrix& other);
  CMatrix& operator*=(Complex scalar);

  friend CMatrix operator+(CMatrix a, const CMatrix& b) { return a += b; }
  friend CMatrix operator-(CMatrix a, const CMatrix& b) { return a -= b; }
  friend CMatrix operator*(CMatrix a, Complex s) { return a *= s; }
  friend CMatrix operator*(Complex s, CMatrix a) { return a *= s; }

  /// Matrix product; inner dimensions must agree.
  friend CMatrix operator*(const CMatrix& a, const CMatrix& b);

  /// Matrix-vector product.
  CVector apply(const CVector& x) const;

  bool same_shape(const CMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVector data_;
};

// ---- vector helpers -------------------------------------------------------

/// Euclidean norm.
double norm2(const CVector& x);
/// Max-abs norm.
double norm_inf(const CVector& x);
/// Euclidean distance ||x - y||.
double distance2(const CVector& x, const CVector& y);
/// x + alpha * y (sizes must agree).
CVector axpy(const CVector& x, Complex alpha, const CVector& y);
/// Dot product sum_i conj(x_i) * y_i.
Complex dot(const CVector& x, const CVector& y);

/// Frobenius norm of a matrix.
double norm_frobenius(const CMatrix& a);
/// Max-row-sum operator norm.
double norm_inf(const CMatrix& a);

}  // namespace pph::linalg
