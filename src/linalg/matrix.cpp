#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pph::linalg {

CMatrix::CMatrix(std::initializer_list<std::initializer_list<Complex>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("CMatrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex{1.0, 0.0};
  return m;
}

CMatrix CMatrix::block(std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1) const {
  if (r1 > rows_ || c1 > cols_ || r0 > r1 || c0 > c1) {
    throw std::out_of_range("CMatrix::block: bad range");
  }
  CMatrix out(r1 - r0, c1 - c0);
  for (std::size_t r = r0; r < r1; ++r)
    for (std::size_t c = c0; c < c1; ++c) out(r - r0, c - c0) = (*this)(r, c);
  return out;
}

CMatrix CMatrix::select_rows(const std::vector<std::size_t>& row_indices) const {
  CMatrix out(row_indices.size(), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    if (row_indices[i] >= rows_) throw std::out_of_range("CMatrix::select_rows");
    for (std::size_t c = 0; c < cols_; ++c) out(i, c) = (*this)(row_indices[i], c);
  }
  return out;
}

CMatrix CMatrix::hcat(const CMatrix& a, const CMatrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("hcat: row mismatch");
  CMatrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b(r, c);
  }
  return out;
}

CMatrix CMatrix::vcat(const CMatrix& a, const CMatrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("vcat: column mismatch");
  CMatrix out(a.rows() + b.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) out(a.rows() + r, c) = b(r, c);
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

CMatrix& CMatrix::operator+=(const CMatrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("CMatrix +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator-=(const CMatrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("CMatrix -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(Complex scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

CMatrix operator*(const CMatrix& a, const CMatrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("CMatrix *: inner dim mismatch");
  CMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Complex aik = a(i, k);
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

CVector CMatrix::apply(const CVector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CMatrix::apply: size mismatch");
  CVector y(rows_, Complex{});
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

std::string CMatrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex& v = (*this)(r, c);
      os << "(" << v.real() << (v.imag() < 0 ? "" : "+") << v.imag() << "i)";
      if (c + 1 < cols_) os << " ";
    }
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

double norm2(const CVector& x) {
  double s = 0.0;
  for (const auto& v : x) s += std::norm(v);
  return std::sqrt(s);
}

double norm_inf(const CVector& x) {
  double m = 0.0;
  for (const auto& v : x) m = std::max(m, std::abs(v));
  return m;
}

double distance2(const CVector& x, const CVector& y) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += std::norm(x[i] - y[i]);
  return std::sqrt(s);
}

CVector axpy(const CVector& x, Complex alpha, const CVector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  CVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + alpha * y[i];
  return out;
}

Complex dot(const CVector& x, const CVector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  Complex s{};
  for (std::size_t i = 0; i < x.size(); ++i) s += std::conj(x[i]) * y[i];
  return s;
}

double norm_frobenius(const CMatrix& a) {
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) s += std::norm(a(r, c));
  return std::sqrt(s);
}

double norm_inf(const CMatrix& a) {
  double best = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) row += std::abs(a(r, c));
    best = std::max(best, row);
  }
  return best;
}

}  // namespace pph::linalg
