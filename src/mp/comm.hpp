#pragma once
// In-process message-passing runtime: ranks are threads, communication is
// explicit tagged messages.
//
// The paper's parallel code is C + MPI on a cluster; this runtime keeps the
// same programming model (rank/size, blocking and immediate sends, blocking
// receive, probe, a barrier) so the schedulers in src/sched read like the
// paper's pseudo-code and their protocols are tested for correctness on any
// machine.  Messaging is any-to-any: slave-to-slave traffic (the batch
// scheduler's steal replies, see serialize.hpp) rides the same per-rank
// mailboxes as master dispatch.  See DESIGN.md section 1 for the
// substitution rationale.

#include <functional>
#include <memory>

#include "mp/mailbox.hpp"
#include "mp/serialize.hpp"

namespace pph::mp {

class FaultInjector;
class World;

/// Per-rank communicator handle passed to each rank's main function.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking send (completes immediately: delivery is a queue push, which
  /// is also why isend and send coincide in this runtime).
  void send(int dest, int tag, std::vector<std::byte> payload) const;
  void send(int dest, int tag, const Packer& packer) const;

  /// Immediate send, MPI_Isend-style.  Provided for API fidelity with the
  /// paper's non-blocking overlap of communication and computation.
  void isend(int dest, int tag, std::vector<std::byte> payload) const {
    send(dest, tag, std::move(payload));
  }

  /// Blocking receive with optional source/tag filters.
  Message recv(int source = kAnySource, int tag = kAnyTag) const;
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag) const;
  /// Timed receive: block up to `seconds` for a matching message (nullopt
  /// on timeout).  MPI would spell this probe-with-timeout; the serve loop
  /// uses it to sleep until a result lands or the next arrival is due.
  std::optional<Message> recv_for(double seconds, int source = kAnySource,
                                  int tag = kAnyTag) const;
  std::optional<std::pair<int, int>> probe(int source = kAnySource, int tag = kAnyTag) const;

  /// All ranks must call; returns when every rank has arrived.
  void barrier() const;

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// A communicator world running `size` ranks, each executing `main` on its
/// own thread.  The constructor-run-join lifecycle is wrapped in run().
class World {
 public:
  using RankMain = std::function<void(Comm&)>;

  /// Spawn `size` ranks, run `main` on each, join all (exceptions from rank
  /// functions are rethrown on the caller thread, first rank wins).  When a
  /// rank's main throws, the world is poisoned: sibling ranks blocked in
  /// recv/recv_for/barrier unblock with WorldAborted instead of deadlocking,
  /// so the join always completes.
  static void run(int size, const RankMain& main);
  /// As above with a fault injector (mp/fault.hpp): Comm::send consults it
  /// for armed per-rank send delays; the rank loops consult it at job
  /// boundaries.  nullptr behaves exactly like the two-argument overload.
  static void run(int size, const RankMain& main, FaultInjector* fault);

 private:
  friend class Comm;
  explicit World(int size);

  /// Wake every blocked rank: poison all mailboxes and the barrier.
  void poison();

  int size_ = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  FaultInjector* fault_ = nullptr;

  // Barrier state.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool barrier_poisoned_ = false;
};

}  // namespace pph::mp
