#pragma once
// Per-rank mailbox: an unbounded MPSC message queue with tag/source
// filtering, the delivery substrate of the in-process message-passing
// runtime.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

namespace pph::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown by blocking receives and barriers after World::poison(): when one
/// rank's main throws, the survivors must unblock (instead of deadlocking
/// in recv) so the join completes and the original exception is rethrown on
/// the caller.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("mp::World aborted: another rank failed") {}
};

/// A delivered message: origin rank, user tag, raw payload.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Thread-safe mailbox.  Messages from one sender are delivered in send
/// order (the MPI non-overtaking guarantee per (source, tag) pair follows
/// from the single FIFO).
class Mailbox {
 public:
  /// Enqueue (never blocks; the queue is unbounded).
  void push(Message m);

  /// Blocking receive of the first message matching (source, tag); either
  /// filter may be kAnySource / kAnyTag.  Throws WorldAborted when the
  /// mailbox is poisoned and holds no matching message.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag);

  /// Timed receive: block up to `seconds` for a matching message, then give
  /// up (nullopt).  The serve loop's idle wait (DESIGN.md section 10): the
  /// master sleeps until a slave reports or the next modeled arrival is
  /// due, whichever comes first.  seconds <= 0 degenerates to try_recv.
  std::optional<Message> recv_for(double seconds, int source = kAnySource,
                                  int tag = kAnyTag);

  /// Non-blocking probe: source and tag of the first matching message.
  std::optional<std::pair<int, int>> probe(int source = kAnySource, int tag = kAnyTag) const;

  std::size_t size() const;

  /// Irreversibly mark the world as failing: wakes every blocked receiver;
  /// recv/recv_for throw WorldAborted once no matching message remains
  /// (queued messages still drain first).  try_recv/probe are unaffected.
  void poison();

 private:
  static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace pph::mp
