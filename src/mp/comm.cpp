#include "mp/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "mp/fault.hpp"

namespace pph::mp {

int Comm::size() const { return world_->size_; }

void Comm::send(int dest, int tag, std::vector<std::byte> payload) const {
  if (dest < 0 || dest >= world_->size_) throw std::out_of_range("Comm::send: bad destination");
  if (world_->fault_ != nullptr) {
    FaultInjector::sleep_for(world_->fault_->send_delay(rank_));
  }
  world_->mailboxes_[static_cast<std::size_t>(dest)]->push(
      Message{rank_, tag, std::move(payload)});
}

void Comm::send(int dest, int tag, const Packer& packer) const {
  send(dest, tag, std::vector<std::byte>(packer.bytes()));
}

Message Comm::recv(int source, int tag) const {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)]->recv(source, tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) const {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)]->try_recv(source, tag);
}

std::optional<Message> Comm::recv_for(double seconds, int source, int tag) const {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)]->recv_for(seconds, source, tag);
}

std::optional<std::pair<int, int>> Comm::probe(int source, int tag) const {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)]->probe(source, tag);
}

void Comm::barrier() const {
  std::unique_lock<std::mutex> lock(world_->barrier_mutex_);
  if (world_->barrier_poisoned_) throw WorldAborted();
  const std::uint64_t generation = world_->barrier_generation_;
  if (++world_->barrier_arrived_ == world_->size_) {
    world_->barrier_arrived_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
  } else {
    world_->barrier_cv_.wait(lock, [&] {
      return world_->barrier_generation_ != generation || world_->barrier_poisoned_;
    });
    // A completed barrier wins over a concurrent poison; an incomplete one
    // can never complete (the failed rank will not arrive).
    if (world_->barrier_generation_ == generation) throw WorldAborted();
  }
}

World::World(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("World: size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::poison() {
  for (auto& mb : mailboxes_) mb->poison();
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_poisoned_ = true;
  }
  barrier_cv_.notify_all();
}

void World::run(int size, const RankMain& main) { run(size, main, nullptr); }

void World::run(int size, const RankMain& main, FaultInjector* fault) {
  World world(size);
  world.fault_ = fault;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &main, r, &first_error, &error_mutex] {
      Comm comm(&world, r);
      try {
        main(comm);
      } catch (...) {
        {
          // The poison happens after the store, so a sibling's secondary
          // WorldAborted can never displace the original error.
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pph::mp
