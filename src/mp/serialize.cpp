#include "mp/serialize.hpp"

#include <stdexcept>

namespace pph::mp {

void Packer::write_string(const std::string& s) {
  write(static_cast<std::uint64_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
  buffer_.insert(buffer_.end(), bytes, bytes + s.size());
}

std::string Unpacker::read_string() {
  const auto n = read<std::uint64_t>();
  ensure(n);
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
  pos_ += n;
  return s;
}

void Unpacker::ensure(std::size_t n) const {
  if (pos_ + n > buffer_.size()) throw std::out_of_range("Unpacker: payload underrun");
}

std::vector<std::byte> pack_index_batch(const std::vector<std::uint64_t>& indices) {
  Packer p;
  p.write_vector(indices);
  return p.take();
}

std::vector<std::uint64_t> unpack_index_batch(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  return u.read_vector<std::uint64_t>();
}

std::vector<std::byte> pack_steal_request(const StealRequest& req) {
  Packer p;
  p.write(req.thief);
  return p.take();
}

StealRequest unpack_steal_request(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  StealRequest req;
  req.thief = u.read<int>();
  return req;
}

std::vector<std::byte> pack_steal_reply(const StealReply& reply) {
  return pack_index_batch(reply.indices);
}

StealReply unpack_steal_reply(const std::vector<std::byte>& payload) {
  return StealReply{unpack_index_batch(payload)};
}

std::vector<std::byte> pack_job_frame(const JobFrame& frame) {
  Packer p;
  p.write(frame.id);
  p.write(frame.flags);
  p.write_vector(frame.payload);
  return p.take();
}

JobFrame unpack_job_frame(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  JobFrame frame;
  frame.id = u.read<std::uint64_t>();
  frame.flags = u.read<std::uint32_t>();
  frame.payload = u.read_vector<std::byte>();
  return frame;
}

std::vector<std::byte> pack_job_frame_batch(const std::vector<JobFrame>& frames) {
  Packer p;
  p.write(static_cast<std::uint64_t>(frames.size()));
  for (const auto& frame : frames) {
    p.write(frame.id);
    p.write(frame.flags);
    p.write_vector(frame.payload);
  }
  return p.take();
}

std::vector<JobFrame> unpack_job_frame_batch(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  const auto count = static_cast<std::size_t>(u.read<std::uint64_t>());
  std::vector<JobFrame> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    JobFrame frame;
    frame.id = u.read<std::uint64_t>();
    frame.flags = u.read<std::uint32_t>();
    frame.payload = u.read_vector<std::byte>();
    frames.push_back(std::move(frame));
  }
  return frames;
}

void append_double_bits(std::string& out, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(bits >> shift) & 0xF]);
  }
}

double parse_double_bits(const std::string& line, std::size_t& pos) {
  if (pos + 16 > line.size()) {
    throw std::invalid_argument("parse_double_bits: truncated hex field");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = line[pos + i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else throw std::invalid_argument("parse_double_bits: malformed hex field");
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  pos += 16;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace pph::mp
