#include "mp/serialize.hpp"

#include <stdexcept>

namespace pph::mp {

void Packer::write_string(const std::string& s) {
  write(static_cast<std::uint64_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
  buffer_.insert(buffer_.end(), bytes, bytes + s.size());
}

std::string Unpacker::read_string() {
  const auto n = read<std::uint64_t>();
  ensure(n);
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
  pos_ += n;
  return s;
}

void Unpacker::ensure(std::size_t n) const {
  if (pos_ + n > buffer_.size()) throw std::out_of_range("Unpacker: payload underrun");
}

}  // namespace pph::mp
