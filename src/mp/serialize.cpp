#include "mp/serialize.hpp"

#include <stdexcept>

namespace pph::mp {

void Packer::write_string(const std::string& s) {
  write(static_cast<std::uint64_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
  buffer_.insert(buffer_.end(), bytes, bytes + s.size());
}

std::string Unpacker::read_string() {
  const auto n = read<std::uint64_t>();
  ensure(n);
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
  pos_ += n;
  return s;
}

void Unpacker::ensure(std::size_t n) const {
  if (pos_ + n > buffer_.size()) throw std::out_of_range("Unpacker: payload underrun");
}

std::vector<std::byte> pack_index_batch(const std::vector<std::uint64_t>& indices) {
  Packer p;
  p.write_vector(indices);
  return p.take();
}

std::vector<std::uint64_t> unpack_index_batch(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  return u.read_vector<std::uint64_t>();
}

std::vector<std::byte> pack_steal_request(const StealRequest& req) {
  Packer p;
  p.write(req.thief);
  return p.take();
}

StealRequest unpack_steal_request(const std::vector<std::byte>& payload) {
  Unpacker u(payload);
  StealRequest req;
  req.thief = u.read<int>();
  return req;
}

std::vector<std::byte> pack_steal_reply(const StealReply& reply) {
  return pack_index_batch(reply.indices);
}

StealReply unpack_steal_reply(const std::vector<std::byte>& payload) {
  return StealReply{unpack_index_batch(payload)};
}

}  // namespace pph::mp
