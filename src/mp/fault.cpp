#include "mp/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/prng.hpp"

namespace pph::mp {

FaultPlan FaultPlan::random(std::uint64_t seed, int ranks, const ChaosOptions& opts) {
  FaultPlan plan;
  if (ranks < 3) return plan;  // a terminal fault needs a surviving slave
  util::Prng rng(seed);
  std::vector<int> slaves;
  slaves.reserve(static_cast<std::size_t>(ranks - 1));
  for (int s = 1; s < ranks; ++s) slaves.push_back(s);
  rng.shuffle(slaves);

  // Victims are drawn without replacement in shuffled order: terminal
  // faults first (never all slaves), then stragglers, then send-delayers.
  std::size_t cursor = 0;
  const auto draw_jobs = [&] {
    return static_cast<std::size_t>(rng.uniform_index(opts.max_jobs_before_fault + 1));
  };
  const std::size_t terminal = std::min(opts.max_terminal, slaves.size() - 1);
  for (std::size_t i = 0; i < terminal; ++i) {
    const int r = slaves[cursor++];
    if (rng.uniform() < 0.5) {
      plan.kill(r, draw_jobs());
    } else {
      plan.hang(r, draw_jobs());
    }
  }
  for (std::size_t i = 0; i < opts.max_stragglers && cursor < slaves.size(); ++i) {
    plan.straggle(slaves[cursor++], draw_jobs(),
                  rng.uniform(opts.straggle_min_seconds, opts.straggle_max_seconds));
  }
  for (std::size_t i = 0; i < opts.max_delayed && cursor < slaves.size(); ++i) {
    plan.delay_sends(slaves[cursor++], draw_jobs(), opts.send_delay_seconds);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int ranks)
    : state_(static_cast<std::size_t>(ranks > 0 ? ranks : 0)) {
  for (const auto& a : plan.actions()) {
    if (a.rank == kAnyFaultRank) {
      any_rank_.push_back(a);
    } else if (a.rank >= 0 && a.rank < ranks) {
      state_[static_cast<std::size_t>(a.rank)].pending.push_back(a);
    }
    active_ = true;
  }
}

std::optional<FaultKind> FaultInjector::on_job_start(int rank, std::size_t completed,
                                                     std::uint64_t job_id) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= state_.size()) return std::nullopt;
  auto& st = state_[static_cast<std::size_t>(rank)];
  std::optional<FaultKind> terminal;
  const auto fire = [&](const FaultAction& a) {
    switch (a.kind) {
      case FaultKind::kStraggle:
        st.straggle = std::max(st.straggle, a.seconds);
        break;
      case FaultKind::kDelaySends:
        st.send_delay = std::max(st.send_delay, a.seconds);
        break;
      default:
        if (!terminal.has_value()) terminal = a.kind;
        break;
    }
  };
  for (auto it = st.pending.begin(); it != st.pending.end();) {
    const bool due =
        it->on_job.has_value() ? *it->on_job == job_id : completed >= it->after_jobs;
    if (due) {
      fire(*it);
      it = st.pending.erase(it);
    } else {
      ++it;
    }
  }
  // Any-rank (poison-job) actions stay armed: every rank that picks the job
  // up triggers them independently, until the supervisor quarantines it.
  for (const auto& a : any_rank_) {
    if (a.on_job.has_value() && *a.on_job == job_id) fire(a);
  }
  return terminal;
}

double FaultInjector::straggle_seconds(int rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= state_.size()) return 0.0;
  return state_[static_cast<std::size_t>(rank)].straggle;
}

double FaultInjector::send_delay(int rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= state_.size()) return 0.0;
  return state_[static_cast<std::size_t>(rank)].send_delay;
}

void FaultInjector::sleep_for(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace pph::mp
