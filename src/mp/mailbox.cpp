#include "mp/mailbox.hpp"

#include <chrono>

namespace pph::mp {

void Mailbox::push(Message m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::recv(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    if (poisoned_) throw WorldAborted();
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::recv_for(double seconds, int source, int tag) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    if (poisoned_) throw WorldAborted();
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last scan: a push between the timeout and reacquiring the lock
      // may already have delivered the message we were waiting for.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      return std::nullopt;
    }
  }
}

std::optional<std::pair<int, int>> Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, source, tag)) return std::make_pair(m.source, m.tag);
  }
  return std::nullopt;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::poison() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

}  // namespace pph::mp
