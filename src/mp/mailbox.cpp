#include "mp/mailbox.hpp"

namespace pph::mp {

void Mailbox::push(Message m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::recv(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<std::pair<int, int>> Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, source, tag)) return std::make_pair(m.source, m.tag);
  }
  return std::nullopt;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace pph::mp
