#pragma once
// Deterministic fault injection for the in-process message-passing runtime.
//
// The paper's target environment is a cluster where nodes die without
// warning, hang mid-computation, or simply run slow; a supervision layer
// (DESIGN.md section 11) is only trustworthy if those failures can be
// reproduced on demand.  A FaultPlan is a seeded, declarative list of
// fault actions -- kill rank 2 after 3 jobs, hang rank 1 on job 17, make
// rank 3 a 50 ms straggler -- compiled into a FaultInjector that the rank
// loops consult at job boundaries and Comm::send consults per message.
// The same plan replays bit-identically on every run, so chaos tests can
// assert exact recovery behaviour instead of hoping a race shows up.
//
// This is the single fault source of the runtime: the legacy cooperative
// kill switch (SessionOptions::kill_slave_after_jobs) is a thin wrapper
// that appends one kDieAnnounced action to the session's plan.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace pph::mp {

/// Target "whichever rank executes the trigger job" (poison-job modeling);
/// only valid together with FaultAction::on_job.
inline constexpr int kAnyFaultRank = -1;

enum class FaultKind : int {
  /// The rank's thread returns without sending anything -- no kTagDead, no
  /// result, no heartbeat.  Only a supervisor notices.
  kDieSilently = 0,
  /// The rank announces its death (kTagDead) before returning: the legacy
  /// cooperative kill switch.
  kDieAnnounced = 1,
  /// The rank stops working and sending (not even heartbeats) but its
  /// thread stays parked on the mailbox so the world remains joinable;
  /// only the shutdown/abort broadcast releases it.
  kHang = 2,
  /// The rank sleeps `seconds` before every job from the trigger onward: a
  /// persistent straggler.
  kStraggle = 3,
  /// Every message the rank sends from the trigger onward is delayed by
  /// `seconds` (modeled in Comm::send as a pre-send sleep).
  kDelaySends = 4,
};

/// True for kinds that end the rank's participation without telling anyone.
inline constexpr bool fault_is_uncooperative(FaultKind k) {
  return k == FaultKind::kDieSilently || k == FaultKind::kHang;
}

/// True for kinds after which the rank does no further work.
inline constexpr bool fault_is_terminal(FaultKind k) {
  return k == FaultKind::kDieSilently || k == FaultKind::kDieAnnounced ||
         k == FaultKind::kHang;
}

struct FaultAction {
  int rank = kAnyFaultRank;
  FaultKind kind = FaultKind::kDieSilently;
  /// Fires at the first job boundary where the rank has completed at least
  /// this many jobs (ignored when on_job is set).
  std::size_t after_jobs = 0;
  /// Alternative trigger: fires when the rank is about to execute this job
  /// id.  Required for rank == kAnyFaultRank.
  std::optional<std::uint64_t> on_job;
  /// Magnitude for kStraggle / kDelaySends.
  double seconds = 0.0;
};

/// Knobs for FaultPlan::random -- how much chaos a seeded plan may contain.
struct ChaosOptions {
  /// Terminal faults (silent deaths + hangs); capped so at least one slave
  /// always survives.
  std::size_t max_terminal = 1;
  std::size_t max_stragglers = 1;
  std::size_t max_delayed = 1;
  /// Triggers are drawn uniformly from [0, max_jobs_before_fault].
  std::size_t max_jobs_before_fault = 8;
  double straggle_min_seconds = 0.005;
  double straggle_max_seconds = 0.02;
  double send_delay_seconds = 0.0005;
};

/// A declarative, replayable list of fault actions.  Fluent adders mirror
/// the SessionOptions style; random() draws a bounded plan from a seed.
class FaultPlan {
 public:
  FaultPlan& add(FaultAction a) {
    actions_.push_back(a);
    return *this;
  }
  FaultPlan& kill(int rank, std::size_t after_jobs) {
    return add({rank, FaultKind::kDieSilently, after_jobs, std::nullopt, 0.0});
  }
  FaultPlan& kill_announced(int rank, std::size_t after_jobs) {
    return add({rank, FaultKind::kDieAnnounced, after_jobs, std::nullopt, 0.0});
  }
  FaultPlan& hang(int rank, std::size_t after_jobs) {
    return add({rank, FaultKind::kHang, after_jobs, std::nullopt, 0.0});
  }
  FaultPlan& straggle(int rank, std::size_t after_jobs, double seconds) {
    return add({rank, FaultKind::kStraggle, after_jobs, std::nullopt, seconds});
  }
  FaultPlan& delay_sends(int rank, std::size_t after_jobs, double seconds) {
    return add({rank, FaultKind::kDelaySends, after_jobs, std::nullopt, seconds});
  }
  /// Poison job: whichever rank starts `job_id` suffers `kind` (so the job
  /// repeatedly coincides with worker death until quarantined).
  FaultPlan& poison(std::uint64_t job_id, FaultKind kind = FaultKind::kDieSilently) {
    return add({kAnyFaultRank, kind, 0, job_id, 0.0});
  }

  /// Seeded random plan over a world of `ranks` ranks (rank 0 is never
  /// targeted).  Deterministic: the same (seed, ranks, opts) always yields
  /// the same plan.  Terminal faults hit distinct ranks and always leave at
  /// least one slave untouched.
  static FaultPlan random(std::uint64_t seed, int ranks, const ChaosOptions& opts = {});

  const std::vector<FaultAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }

 private:
  std::vector<FaultAction> actions_;
};

/// Compiled per-rank fault state.  Each rank's entry is touched only from
/// that rank's own thread (job boundaries and its own sends), so no
/// locking is needed.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int ranks);

  /// Consult at a job boundary: `completed` jobs done so far on `rank`,
  /// about to execute `job_id`.  Arms straggle/send-delay state that is due
  /// and returns the terminal fault to act on, if any.
  std::optional<FaultKind> on_job_start(int rank, std::size_t completed,
                                        std::uint64_t job_id);

  /// Armed straggler sleep for this rank (0 when healthy).
  double straggle_seconds(int rank) const;
  /// Armed per-message send delay for this rank (0 when healthy).
  double send_delay(int rank) const;

  bool active() const { return active_; }

  /// Sleep helper shared by the injection sites (no-op for seconds <= 0).
  static void sleep_for(double seconds);

 private:
  struct RankState {
    std::vector<FaultAction> pending;
    double straggle = 0.0;
    double send_delay = 0.0;
  };
  std::vector<RankState> state_;
  std::vector<FaultAction> any_rank_;  // on_job-triggered, any executing rank
  bool active_ = false;
};

}  // namespace pph::mp
