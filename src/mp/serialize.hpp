#pragma once
// Byte-level serialization for message payloads: the in-process runtime
// moves bytes exactly like MPI would, so job and result messages are packed
// and unpacked explicitly rather than sharing pointers.

#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace pph::mp {

/// Append-only byte writer.
class Packer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* bytes = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  void write_string(const std::string& s);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    if (v.empty()) return;  // data() may be null for an empty vector
    const auto* bytes = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(T));
  }

  const std::vector<std::byte>& bytes() const { return buffer_; }
  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential byte reader; throws std::out_of_range on underrun.
class Unpacker {
 public:
  explicit Unpacker(const std::vector<std::byte>& buffer) : buffer_(buffer) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    ensure(sizeof(T));
    std::memcpy(&value, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string();

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    ensure(n * sizeof(T));
    std::vector<T> v(n);
    if (n != 0) std::memcpy(v.data(), buffer_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  void ensure(std::size_t n) const;

  const std::vector<std::byte>& buffer_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Work-stealing message payloads.  These are byte-level payload shapes, not
// protocol: any scheduler can reuse them without agreeing on message tags.
// ---------------------------------------------------------------------------

/// A batch of job indices (a master batch hand-out, or the bulk half of a
/// steal reply).
std::vector<std::byte> pack_index_batch(const std::vector<std::uint64_t>& indices);
std::vector<std::uint64_t> unpack_index_batch(const std::vector<std::byte>& payload);

/// Steal request: ask a busy victim to donate part of its local queue
/// directly to rank `thief`.
struct StealRequest {
  int thief = -1;
};
std::vector<std::byte> pack_steal_request(const StealRequest& req);
StealRequest unpack_steal_request(const std::vector<std::byte>& payload);

/// Steal reply: the victim ships `indices` (possibly empty -- a refusal)
/// straight to the thief, bypassing the master for the bulk transfer.
struct StealReply {
  std::vector<std::uint64_t> indices;
};
std::vector<std::byte> pack_steal_reply(const StealReply& reply);
StealReply unpack_steal_reply(const std::vector<std::byte>& payload);

// ---------------------------------------------------------------------------
// Session job framing.  The unified scheduler sessions (sched/session.hpp)
// move *framed* jobs: an opaque per-source payload prefixed with the job id
// the master uses for ownership bookkeeping.  Like the steal shapes above,
// these are payload shapes only -- tags live in sched/job_pool.hpp.
// ---------------------------------------------------------------------------

struct JobFrame {
  std::uint64_t id = 0;
  /// Per-dispatch control bits, opaque at this layer (the scheduler's
  /// kFrame* constants live in sched/session.hpp): cooperative-cancel
  /// enablement and brownout degradation ride the frame so a slave needs
  /// no side channel to know how to run the job (DESIGN.md section 13).
  std::uint32_t flags = 0;
  std::vector<std::byte> payload;  // source-defined job description
};
std::vector<std::byte> pack_job_frame(const JobFrame& frame);
JobFrame unpack_job_frame(const std::vector<std::byte>& payload);

/// A batch of framed jobs (a master batch hand-out, or the bulk half of a
/// session steal reply, which must carry payloads -- tree-source jobs are
/// not reconstructible from an index).
std::vector<std::byte> pack_job_frame_batch(const std::vector<JobFrame>& frames);
std::vector<JobFrame> unpack_job_frame_batch(const std::vector<std::byte>& payload);

// ---------------------------------------------------------------------------
// Bit-exact text framing for the streaming result store (sched/result_store).
// Doubles are framed as the 16 lowercase hex digits of their IEEE-754 bits:
// round-trips NaN payloads and signed zeros exactly, which "%.17g" cannot
// (diverged paths legitimately carry NaN endpoints, and the store must
// reproduce them bit for bit on resume).
// ---------------------------------------------------------------------------

void append_double_bits(std::string& out, double value);
/// Parse 16 hex digits at `pos`; advances `pos` past them.  Throws
/// std::invalid_argument on malformed input.
double parse_double_bits(const std::string& line, std::size_t& pos);

}  // namespace pph::mp
