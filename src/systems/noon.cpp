#include "systems/noon.hpp"

#include <stdexcept>

namespace pph::systems {

poly::PolySystem noon(std::size_t n) {
  if (n < 2) throw std::invalid_argument("noon: n must be >= 2");
  poly::PolySystem sys(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<poly::Term> terms;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      poly::Monomial mono(n);
      mono.set_exponent(i, 1);
      mono.set_exponent(j, 2);
      terms.push_back({poly::Complex{1.0, 0.0}, std::move(mono)});
    }
    terms.push_back({poly::Complex{-1.1, 0.0}, poly::Monomial::variable(n, i)});
    terms.push_back({poly::Complex{1.0, 0.0}, poly::Monomial(n)});
    sys.add_equation(poly::Polynomial(n, std::move(terms)));
  }
  return sys;
}

}  // namespace pph::systems
