#include "systems/katsura.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pph::systems {

poly::PolySystem katsura(std::size_t n) {
  if (n < 1) throw std::invalid_argument("katsura: n must be >= 1");
  const std::size_t nvars = n + 1;
  poly::PolySystem sys(nvars);

  for (std::size_t m = 0; m < n; ++m) {
    std::vector<poly::Term> terms;
    for (long l = -static_cast<long>(n); l <= static_cast<long>(n); ++l) {
      const std::size_t a = static_cast<std::size_t>(std::labs(l));
      const long diff = static_cast<long>(m) - l;
      const std::size_t b = static_cast<std::size_t>(std::labs(diff));
      if (a > n || b > n) continue;
      poly::Monomial mono(nvars);
      mono.set_exponent(a, mono.exponent(a) + 1);
      mono.set_exponent(b, mono.exponent(b) + 1);
      terms.push_back({poly::Complex{1.0, 0.0}, std::move(mono)});
    }
    // minus u_m.
    terms.push_back({poly::Complex{-1.0, 0.0}, poly::Monomial::variable(nvars, m)});
    sys.add_equation(poly::Polynomial(nvars, std::move(terms)));
  }

  // Normalization: u_0 + 2 sum_{k>=1} u_k - 1 = 0.
  std::vector<poly::Term> norm;
  norm.push_back({poly::Complex{1.0, 0.0}, poly::Monomial::variable(nvars, 0)});
  for (std::size_t k = 1; k <= n; ++k) {
    norm.push_back({poly::Complex{2.0, 0.0}, poly::Monomial::variable(nvars, k)});
  }
  norm.push_back({poly::Complex{-1.0, 0.0}, poly::Monomial(nvars)});
  sys.add_equation(poly::Polynomial(nvars, std::move(norm)));
  return sys;
}

}  // namespace pph::systems
