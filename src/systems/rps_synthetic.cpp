#include "systems/rps_synthetic.hpp"

#include <stdexcept>

namespace pph::systems {

poly::PolySystem rps_like_target(std::size_t k, util::Prng& rng) {
  if (k < 3) throw std::invalid_argument("rps_like_target: need k >= 3");
  poly::PolySystem sys(k);
  for (std::size_t eq = 0; eq < k; ++eq) {
    std::vector<poly::Term> terms;
    // Dense generic quadric: all monomials of degree <= 2.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a; b < k; ++b) {
        poly::Monomial mono(k);
        mono.set_exponent(a, mono.exponent(a) + 1);
        mono.set_exponent(b, mono.exponent(b) + 1);
        terms.push_back({rng.normal_complex(), std::move(mono)});
      }
    }
    for (std::size_t a = 0; a < k; ++a) {
      terms.push_back({rng.normal_complex(), poly::Monomial::variable(k, a)});
    }
    terms.push_back({rng.normal_complex(), poly::Monomial(k)});
    sys.add_equation(poly::Polynomial(k, std::move(terms)));
  }
  return sys;
}

homotopy::ProductStructure rps_like_structure(std::size_t k) {
  if (k < 3) throw std::invalid_argument("rps_like_structure: need k >= 3");
  homotopy::ProductStructure ps;
  homotopy::FactorSupport full;
  for (std::size_t v = 0; v < k; ++v) full.push_back(v);
  // First k-2 equations: two full-support linear factors (a rank-1 quadric
  // start for a generic quadric target).
  for (std::size_t eq = 0; eq + 2 < k; ++eq) {
    ps.equations.push_back({full, full});
  }
  // Last two equations: six factors each.  The product structure then
  // overshoots the Bezout number of the quadratic target by a factor 9,
  // reproducing the RPS regime where most start combinations lead to
  // diverging paths.
  ps.equations.push_back({full, full, full, full, full, full});
  ps.equations.push_back({full, full, full, full, full, full});
  return ps;
}

}  // namespace pph::systems
