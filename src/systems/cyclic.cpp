#include "systems/cyclic.hpp"

#include <stdexcept>

namespace pph::systems {

poly::PolySystem cyclic(std::size_t n) {
  if (n < 2) throw std::invalid_argument("cyclic: n must be >= 2");
  poly::PolySystem sys(n);
  for (std::size_t k = 1; k < n; ++k) {
    std::vector<poly::Term> terms;
    terms.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      poly::Monomial mono(n);
      for (std::size_t j = i; j < i + k; ++j) {
        const std::size_t v = j % n;
        mono.set_exponent(v, mono.exponent(v) + 1);
      }
      terms.push_back({poly::Complex{1.0, 0.0}, std::move(mono)});
    }
    sys.add_equation(poly::Polynomial(n, std::move(terms)));
  }
  // f_n = x_0 ... x_{n-1} - 1.
  poly::Monomial all(n);
  for (std::size_t v = 0; v < n; ++v) all.set_exponent(v, 1);
  sys.add_equation(poly::Polynomial(
      n, {{poly::Complex{1.0, 0.0}, all}, {poly::Complex{-1.0, 0.0}, poly::Monomial(n)}}));
  return sys;
}

unsigned long long cyclic_known_root_count(std::size_t n) {
  switch (n) {
    case 2: return 2;
    case 3: return 6;
    case 5: return 70;
    case 6: return 156;
    case 7: return 924;
    default: return 0;  // n=4 and n=8,9 have positive-dimensional components
  }
}

}  // namespace pph::systems
