#pragma once
// Synthetic stand-in for the paper's RPS serial-chain mechanism design
// problem (Su & McCarthy): ten polynomial equations in ten unknowns, solved
// with a generalized linear-product start system of 9,216 paths of which
// only 1,024 (the mixed volume / Bezout count of the quadratic target) can
// converge -- more than 8,000 paths diverge to infinity, all at similar
// cost, which is exactly the load-balancing regime the paper studies with
// this example.
//
// The real RPS equations are not published in closed form in the paper; the
// substitution (documented in DESIGN.md section 5) keeps the three properties the
// experiment depends on: (1) the path count 9,216 from the product
// structure, (2) the finite-root bound 1,024, (3) uniform per-path cost
// dominated by divergent paths.

#include "homotopy/start_linear_product.hpp"
#include "poly/system.hpp"
#include "util/prng.hpp"

namespace pph::systems {

/// Target system: k generic dense quadratic equations in k variables
/// (Bezout number 2^k).
poly::PolySystem rps_like_target(std::size_t k, util::Prng& rng);

/// Linear-product structure with factor counts (2,...,2,6,6): for k = 10
/// this yields 2^8 * 36 = 9,216 combinations, matching the paper's path
/// count.  All factors have full support, so every combination is solvable.
homotopy::ProductStructure rps_like_structure(std::size_t k);

/// The paper-scale instance parameters.
inline constexpr std::size_t kRpsPaperSize = 10;
inline constexpr unsigned long long kRpsPaperPaths = 9216;
inline constexpr unsigned long long kRpsPaperMixedVolume = 1024;

}  // namespace pph::systems
