#pragma once
// The Katsura-n benchmark from magnetostatics, a standard academic test
// problem for homotopy software (2^n finite solutions).
//
// Variables u_0..u_n.  Equations, for m = 0..n-1:
//   sum_{l=-n}^{n} u_{|l|} u_{|m-l|} - u_m = 0      (u_k := 0 for k > n)
// and the normalization  u_0 + 2 * sum_{k=1}^{n} u_k - 1 = 0.

#include "poly/system.hpp"

namespace pph::systems {

/// Build Katsura-n: n+1 variables, n+1 equations, 2^n solutions.
poly::PolySystem katsura(std::size_t n);

}  // namespace pph::systems
