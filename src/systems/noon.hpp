#pragma once
// The Noonburg neural-network benchmark:
//   f_i(x) = x_i * sum_{j != i} x_j^2 - 1.1 * x_i + 1,   i = 0..n-1.
// A standard dense cubic test system with 5^n - ... well-known root counts
// (n=3: 21, n=4: 73); used here as an extra stressor for the tracker.

#include "poly/system.hpp"

namespace pph::systems {

/// Build the Noonburg system with n variables.
poly::PolySystem noon(std::size_t n);

}  // namespace pph::systems
