#pragma once
// The cyclic n-roots benchmark (paper section II-B.1).
//
//   f_k(x) = sum_{i=0}^{n-1} prod_{j=i}^{i+k-1} x_{j mod n},  k = 1..n-1
//   f_n(x) = x_0 * x_1 * ... * x_{n-1} - 1
//
// Total degree n!, so the path count of the total-degree homotopy grows
// factorially; the paper traces 35,940 paths for n = 10 with a dedicated
// start system.  Known finite root counts: n=5: 70, n=6: 156, n=7: 924.

#include "poly/system.hpp"

namespace pph::systems {

/// Build the cyclic n-roots system (n variables, n equations).
poly::PolySystem cyclic(std::size_t n);

/// Finite root counts for small n (0 when unknown to this table).
unsigned long long cyclic_known_root_count(std::size_t n);

/// Path count the paper reports for the cyclic 10-roots start system.
inline constexpr unsigned long long kCyclic10PaperPaths = 35940;

}  // namespace pph::systems
