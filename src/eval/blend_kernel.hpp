#pragma once
// INTERNAL header: the fused blend kernels shared by CompiledHomotopy and
// CompiledPieriHomotopy.  Included only from compiled_homotopy.cpp and
// compiled_pieri.cpp — not part of the public eval/ interface.
//
// The kernel walks a CompiledSystem term tape with per-term H coefficients
// (sc) and per-term dH/dt coefficients (dc) supplied by the caller, and
// fills H, dH/dx, and optionally dH/dt in one pass.  Each term's
// reverse-mode suffix product is seeded with its sc entry, so Jacobian
// contributions land pre-blended; common factor counts are unrolled so the
// prefix products never leave registers.
//
// Two row shapes share the body:
//   Stacked == true  — row i sums equations {i, n+i} (the convex homotopy's
//                      start/target stacking, coefficients pre-blended by t);
//   Stacked == false — row i sums equation i only (the Pieri edge tape,
//                      one bordered-determinant polynomial per row).
//
// This is the single hottest loop in the tracker, executed millions of
// times per solve.  The library builds for generic x86-64 (SSE2, no FMA),
// so the same kernel body is compiled twice — once generic, once with
// AVX2+FMA enabled — and picked once at runtime via __builtin_cpu_supports.
// Results differ from the generic kernel only by FMA contraction (|diff|
// well under the 1e-12 golden-test tolerance), and every rank of a run uses
// the same kernel, so scheduler bit-identity is preserved.

#include "eval/compiled_system.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPH_EVAL_X86_DISPATCH 1
#else
#define PPH_EVAL_X86_DISPATCH 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define PPH_EVAL_INLINE __attribute__((always_inline)) inline
#else
#define PPH_EVAL_INLINE inline
#endif

namespace pph::eval::detail {

/// Everything the kernel touches, as raw pointers: the tape (immutable),
/// the workspace scratch, and the output buffers (pre-sized by the caller).
struct BlendCtx {
  std::size_t n;                          // homotopy dimension (output rows)
  const CompiledSystem::Factor* fac;      // factor tape
  const CompiledSystem::TermRef* terms;   // term tape
  const std::uint32_t* moff;              // monomial -> factor range
  const std::uint32_t* eoff;              // equation -> term range
  const Complex* pow;                     // filled power tables
  Complex* prefix;                        // forward-product scratch
  const Complex* sc;                      // per-term H coefficients
  const Complex* dc;                      // per-term dH/dt coefficients
  Complex* h;
  Complex* jx;                            // row-major n x n
  Complex* ht;                            // nullptr when not wanted
};

/// One term whose monomial has exactly K factors, fully unrolled: the
/// prefix products live in registers instead of a scratch array, and the
/// suffix seed is the term's pre-blended coefficient.  K is a compile-time
/// constant so every loop below flattens to straight-line code.
template <int K, bool WantHt>
PPH_EVAL_INLINE void blend_term_k(const BlendCtx& c, const CompiledSystem::Factor* fs,
                                  const Complex sck, const Complex dck, Complex* jrow,
                                  Complex& acc_h, Complex& acc_t) {
  Complex pv[K];   // factor values x_v^e
  Complex pre[K];  // prefix products
  for (int j = 0; j < K; ++j) pv[j] = c.pow[fs[j].pidx + fs[j].exp];
  Complex running{1.0, 0.0};
  for (int j = 0; j < K; ++j) {
    pre[j] = running;
    running *= pv[j];
  }
  acc_h += sck * running;
  if constexpr (WantHt) acc_t += dck * running;
  Complex suffix = sck;
  for (int j = K; j-- > 0;) {
    const Complex outer = pre[j] * suffix;
    if (fs[j].exp == 1) {  // d/dx of x^1: most factors in practice
      jrow[fs[j].var] += outer;
    } else {
      jrow[fs[j].var] +=
          outer * (static_cast<double>(fs[j].exp) * c.pow[fs[j].pidx + fs[j].exp - 1]);
    }
    suffix *= pv[j];
  }
}

/// Accumulate equation `eq`'s term range into (acc_h, acc_t, jrow).
/// Force-inlined so the body is recompiled inside each dispatch target
/// (a plain call from the FMA clone would land back in generic code).
template <bool WantHt>
PPH_EVAL_INLINE void blend_equation(const BlendCtx& c, const std::size_t eq, Complex* jrow,
                                    Complex& acc_h, Complex& acc_t) {
  for (std::size_t k = c.eoff[eq]; k < c.eoff[eq + 1]; ++k) {
    const std::uint32_t m = c.terms[k].mono;
    const std::size_t lo = c.moff[m];
    const std::size_t hi = c.moff[m + 1];
    if (lo == hi) {  // constant term
      acc_h += c.sc[k];
      if constexpr (WantHt) acc_t += c.dc[k];
      continue;
    }
    const CompiledSystem::Factor* fs = c.fac + lo;
    const Complex sck = c.sc[k];
    const Complex dck = WantHt ? c.dc[k] : Complex{};
    if (hi == lo + 1) {  // single factor x_v^e
      const auto& fc = *fs;
      const Complex v = c.pow[fc.pidx + fc.exp];
      acc_h += sck * v;
      if constexpr (WantHt) acc_t += dck * v;
      if (fc.exp == 1) {
        jrow[fc.var] += sck;
      } else {
        jrow[fc.var] += sck * (static_cast<double>(fc.exp) * c.pow[fc.pidx + fc.exp - 1]);
      }
      continue;
    }
    // Reverse-mode prefix/suffix products with the scaled coefficient
    // folded into the suffix seed so every partial arrives pre-blended.
    // Common factor counts are unrolled so the prefixes never leave
    // registers; wider monomials spill to the workspace scratch.
    switch (hi - lo) {
      case 2: blend_term_k<2, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 3: blend_term_k<3, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 4: blend_term_k<4, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 5: blend_term_k<5, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 6: blend_term_k<6, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 7: blend_term_k<7, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      case 8: blend_term_k<8, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
      default: {
        Complex running{1.0, 0.0};
        for (std::size_t f = lo; f < hi; ++f) {
          c.prefix[f - lo] = running;
          running *= c.pow[c.fac[f].pidx + c.fac[f].exp];
        }
        acc_h += sck * running;
        if constexpr (WantHt) acc_t += dck * running;
        Complex suffix = sck;
        for (std::size_t f = hi; f-- > lo;) {
          const auto& fc = c.fac[f];
          const Complex outer = c.prefix[f - lo] * suffix;
          if (fc.exp == 1) {
            jrow[fc.var] += outer;
            suffix *= c.pow[fc.pidx + 1];
          } else {
            jrow[fc.var] +=
                outer * (static_cast<double>(fc.exp) * c.pow[fc.pidx + fc.exp - 1]);
            suffix *= c.pow[fc.pidx + fc.exp];
          }
        }
        break;
      }
    }
  }
}

template <bool WantHt, bool Stacked>
PPH_EVAL_INLINE void blend_rows(const BlendCtx& c) {
  for (std::size_t i = 0; i < c.n; ++i) {
    Complex* jrow = c.jx + i * c.n;
    for (std::size_t col = 0; col < c.n; ++col) jrow[col] = Complex{};
    Complex acc_h{};
    Complex acc_t{};
    if constexpr (Stacked) {
      blend_equation<WantHt>(c, i, jrow, acc_h, acc_t);
      blend_equation<WantHt>(c, c.n + i, jrow, acc_h, acc_t);
    } else {
      blend_equation<WantHt>(c, i, jrow, acc_h, acc_t);
    }
    c.h[i] = acc_h;
    if constexpr (WantHt) c.ht[i] = acc_t;
  }
}

#if PPH_EVAL_X86_DISPATCH
template <bool WantHt, bool Stacked>
__attribute__((target("avx2,fma"))) inline void blend_rows_fma(const BlendCtx& c) {
  blend_rows<WantHt, Stacked>(c);
}

inline bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

template <bool WantHt, bool Stacked>
inline void blend_dispatch(const BlendCtx& c) {
  static const bool use_fma = cpu_has_avx2_fma();
  if (use_fma) {
    blend_rows_fma<WantHt, Stacked>(c);
  } else {
    blend_rows<WantHt, Stacked>(c);
  }
}
#else
template <bool WantHt, bool Stacked>
inline void blend_dispatch(const BlendCtx& c) {
  blend_rows<WantHt, Stacked>(c);
}
#endif

}  // namespace pph::eval::detail
