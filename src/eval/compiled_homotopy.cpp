#include "eval/compiled_homotopy.hpp"

#include <atomic>
#include <stdexcept>

// The blended pass is the single hottest loop in the tracker: a few hundred
// complex multiplies per call, executed millions of times per solve.  The
// library builds for generic x86-64 (SSE2, no FMA), so on any machine from
// the last decade the scalar kernel leaves ~30% on the table.  We compile
// the same kernel body twice — once generic, once with AVX2+FMA enabled —
// and pick at runtime via __builtin_cpu_supports.  Results differ from the
// generic kernel only by FMA contraction (|diff| well under the 1e-12
// golden-test tolerance), and every rank of a run uses the same kernel, so
// scheduler bit-identity is preserved.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPH_EVAL_X86_DISPATCH 1
#else
#define PPH_EVAL_X86_DISPATCH 0
#endif

namespace pph::eval {

namespace {

/// Everything the kernel touches, as raw pointers: the tape (immutable),
/// the workspace scratch, and the output buffers (pre-sized by the caller).
struct BlendCtx {
  std::size_t n;                          // homotopy dimension
  const CompiledSystem::Factor* fac;      // factor tape
  const CompiledSystem::TermRef* terms;   // term tape
  const std::uint32_t* moff;              // monomial -> factor range
  const std::uint32_t* eoff;              // equation -> term range
  const Complex* pow;                     // filled power tables
  Complex* prefix;                        // forward-product scratch
  const Complex* sc;                      // per-term blended H coefficients
  const Complex* dc;                      // per-term dH/dt coefficients
  Complex* h;
  Complex* jx;                            // row-major n x n
  Complex* ht;                            // nullptr when not wanted
};

#if defined(__GNUC__) || defined(__clang__)
#define PPH_EVAL_INLINE __attribute__((always_inline)) inline
#else
#define PPH_EVAL_INLINE inline
#endif

/// One term whose monomial has exactly K factors, fully unrolled: the
/// prefix products live in registers instead of a scratch array, and the
/// suffix seed is the term's pre-blended coefficient.  K is a compile-time
/// constant so every loop below flattens to straight-line code.
template <int K, bool WantHt>
PPH_EVAL_INLINE void blend_term_k(const BlendCtx& c, const CompiledSystem::Factor* fs,
                                  const Complex sck, const Complex dck, Complex* jrow,
                                  Complex& acc_h, Complex& acc_t) {
  Complex pv[K];   // factor values x_v^e
  Complex pre[K];  // prefix products
  for (int j = 0; j < K; ++j) pv[j] = c.pow[fs[j].pidx + fs[j].exp];
  Complex running{1.0, 0.0};
  for (int j = 0; j < K; ++j) {
    pre[j] = running;
    running *= pv[j];
  }
  acc_h += sck * running;
  if constexpr (WantHt) acc_t += dck * running;
  Complex suffix = sck;
  for (int j = K; j-- > 0;) {
    const Complex outer = pre[j] * suffix;
    if (fs[j].exp == 1) {  // d/dx of x^1: most factors in practice
      jrow[fs[j].var] += outer;
    } else {
      jrow[fs[j].var] +=
          outer * (static_cast<double>(fs[j].exp) * c.pow[fs[j].pidx + fs[j].exp - 1]);
    }
    suffix *= pv[j];
  }
}

/// Row i of H pairs start equation i with target equation n+i.  Because the
/// gamma*(1-t) / t blend already lives in sc[], both equations accumulate
/// into the same value and the same Jacobian row — no G/F intermediates.
/// Force-inlined so the body is recompiled inside each dispatch target
/// (a plain call from the FMA clone would land back in generic code).
template <bool WantHt>
PPH_EVAL_INLINE void blend_rows(const BlendCtx& c) {
  for (std::size_t i = 0; i < c.n; ++i) {
    Complex* jrow = c.jx + i * c.n;
    for (std::size_t col = 0; col < c.n; ++col) jrow[col] = Complex{};
    Complex acc_h{};
    Complex acc_t{};
    for (const std::size_t eq : {i, c.n + i}) {
      for (std::size_t k = c.eoff[eq]; k < c.eoff[eq + 1]; ++k) {
        const std::uint32_t m = c.terms[k].mono;
        const std::size_t lo = c.moff[m];
        const std::size_t hi = c.moff[m + 1];
        if (lo == hi) {  // constant term
          acc_h += c.sc[k];
          if constexpr (WantHt) acc_t += c.dc[k];
          continue;
        }
        const CompiledSystem::Factor* fs = c.fac + lo;
        const Complex sck = c.sc[k];
        const Complex dck = WantHt ? c.dc[k] : Complex{};
        if (hi == lo + 1) {  // single factor x_v^e
          const auto& fc = *fs;
          const Complex v = c.pow[fc.pidx + fc.exp];
          acc_h += sck * v;
          if constexpr (WantHt) acc_t += dck * v;
          if (fc.exp == 1) {
            jrow[fc.var] += sck;
          } else {
            jrow[fc.var] += sck * (static_cast<double>(fc.exp) * c.pow[fc.pidx + fc.exp - 1]);
          }
          continue;
        }
        // Reverse-mode prefix/suffix products with the scaled coefficient
        // folded into the suffix seed so every partial arrives pre-blended.
        // Common factor counts are unrolled so the prefixes never leave
        // registers; wider monomials spill to the workspace scratch.
        switch (hi - lo) {
          case 2: blend_term_k<2, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 3: blend_term_k<3, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 4: blend_term_k<4, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 5: blend_term_k<5, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 6: blend_term_k<6, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 7: blend_term_k<7, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          case 8: blend_term_k<8, WantHt>(c, fs, sck, dck, jrow, acc_h, acc_t); break;
          default: {
            Complex running{1.0, 0.0};
            for (std::size_t f = lo; f < hi; ++f) {
              c.prefix[f - lo] = running;
              running *= c.pow[c.fac[f].pidx + c.fac[f].exp];
            }
            acc_h += sck * running;
            if constexpr (WantHt) acc_t += dck * running;
            Complex suffix = sck;
            for (std::size_t f = hi; f-- > lo;) {
              const auto& fc = c.fac[f];
              const Complex outer = c.prefix[f - lo] * suffix;
              if (fc.exp == 1) {
                jrow[fc.var] += outer;
                suffix *= c.pow[fc.pidx + 1];
              } else {
                jrow[fc.var] +=
                    outer * (static_cast<double>(fc.exp) * c.pow[fc.pidx + fc.exp - 1]);
                suffix *= c.pow[fc.pidx + fc.exp];
              }
            }
            break;
          }
        }
      }
    }
    c.h[i] = acc_h;
    if constexpr (WantHt) c.ht[i] = acc_t;
  }
}

#if PPH_EVAL_X86_DISPATCH
template <bool WantHt>
__attribute__((target("avx2,fma"))) void blend_rows_fma(const BlendCtx& c) {
  blend_rows<WantHt>(c);
}

bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

template <bool WantHt>
void blend_dispatch(const BlendCtx& c) {
  static const bool use_fma = cpu_has_avx2_fma();
  if (use_fma) {
    blend_rows_fma<WantHt>(c);
  } else {
    blend_rows<WantHt>(c);
  }
}
#else
template <bool WantHt>
void blend_dispatch(const BlendCtx& c) {
  blend_rows<WantHt>(c);
}
#endif

}  // namespace

CompiledHomotopy::CompiledHomotopy(const poly::PolySystem& start, const poly::PolySystem& target,
                                   Complex gamma)
    : n_(target.nvars()), gamma_(gamma) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  if (start.nvars() != target.nvars() || start.size() != target.size() || !target.square()) {
    throw std::invalid_argument("CompiledHomotopy: systems must be square and same shape");
  }
  poly::PolySystem stacked(n_);
  for (const auto& p : start.equations()) stacked.add_equation(p);
  for (const auto& p : target.equations()) stacked.add_equation(p);
  combined_ = CompiledSystem(stacked);

  // dH/dt = F - gamma*G has t-independent term coefficients.
  const std::size_t split = combined_.eq_offset_[n_];
  dcoeff_.resize(combined_.terms_.size());
  for (std::size_t k = 0; k < dcoeff_.size(); ++k) {
    dcoeff_[k] = (k < split) ? -gamma_ * combined_.terms_[k].coeff : combined_.terms_[k].coeff;
  }
}

void CompiledHomotopy::evaluate(const CVector& x, double t, Workspace& ws, CVector& h) const {
  combined_.evaluate(x, ws.eval, ws.stacked_values);
  const Complex a = gamma_ * (1.0 - t);
  const Complex* g = ws.stacked_values.data();
  const Complex* f = g + n_;
  h.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) h[i] = a * g[i] + t * f[i];
}

template <bool WantHt>
void CompiledHomotopy::blended_pass(const CVector& x, double t, Workspace& ws, CVector& h,
                                    CMatrix& jx, CVector* ht) const {
  const CompiledSystem& cs = combined_;
  cs.prepare(ws.eval);

  // Per-term blended coefficients, rebuilt only when t moves or the
  // workspace last served a different homotopy: every Newton iteration of
  // one corrector call reuses the same scaling.
  const std::size_t nterms = cs.terms_.size();
  if (ws.scaled_coeff.size() < nterms) ws.scaled_coeff.resize(nterms);
  if (ws.cached_owner != id_ || !(ws.cached_t == t)) {  // NaN-safe: fresh ws rescales
    const Complex a = gamma_ * (1.0 - t);
    const std::size_t split = cs.eq_offset_[n_];
    Complex* sc = ws.scaled_coeff.data();
    for (std::size_t k = 0; k < split; ++k) sc[k] = a * cs.terms_[k].coeff;
    for (std::size_t k = split; k < nterms; ++k) sc[k] = t * cs.terms_[k].coeff;
    ws.cached_owner = id_;
    ws.cached_t = t;
  }

  cs.fill_powers(x, ws.eval);

  h.resize(n_);
  jx.resize(n_, n_);
  if constexpr (WantHt) ht->resize(n_);

  BlendCtx c;
  c.n = n_;
  c.fac = cs.factors_.data();
  c.terms = cs.terms_.data();
  c.moff = cs.mono_offset_.data();
  c.eoff = cs.eq_offset_.data();
  c.pow = ws.eval.powers_.data();
  c.prefix = ws.eval.prefix_.data();
  c.sc = ws.scaled_coeff.data();
  c.dc = dcoeff_.data();
  c.h = h.data();
  c.jx = jx.data();
  c.ht = WantHt ? ht->data() : nullptr;
  blend_dispatch<WantHt>(c);
}

void CompiledHomotopy::evaluate_with_jacobian(const CVector& x, double t, Workspace& ws,
                                              CVector& h, CMatrix& jx) const {
  blended_pass<false>(x, t, ws, h, jx, nullptr);
}

void CompiledHomotopy::evaluate_fused(const CVector& x, double t, Workspace& ws, CVector& h,
                                      CMatrix& jx, CVector& ht) const {
  blended_pass<true>(x, t, ws, h, jx, &ht);
}

}  // namespace pph::eval
