#include "eval/compiled_homotopy.hpp"

#include <atomic>
#include <stdexcept>

// The fused blend kernels (prefix/suffix products, unrolled <=8-factor
// terms, AVX2+FMA runtime dispatch) are shared with the Pieri edge tape:
// see blend_kernel.hpp for the kernel body and the bit-identity notes.
#include "eval/blend_kernel.hpp"

namespace pph::eval {

CompiledHomotopy::CompiledHomotopy(const poly::PolySystem& start, const poly::PolySystem& target,
                                   Complex gamma)
    : n_(target.nvars()), gamma_(gamma) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  if (start.nvars() != target.nvars() || start.size() != target.size() || !target.square()) {
    throw std::invalid_argument("CompiledHomotopy: systems must be square and same shape");
  }
  poly::PolySystem stacked(n_);
  for (const auto& p : start.equations()) stacked.add_equation(p);
  for (const auto& p : target.equations()) stacked.add_equation(p);
  combined_ = CompiledSystem(stacked);

  // dH/dt = F - gamma*G has t-independent term coefficients.
  const std::size_t split = combined_.eq_offset_[n_];
  dcoeff_.resize(combined_.terms_.size());
  for (std::size_t k = 0; k < dcoeff_.size(); ++k) {
    dcoeff_[k] = (k < split) ? -gamma_ * combined_.terms_[k].coeff : combined_.terms_[k].coeff;
  }
}

void CompiledHomotopy::evaluate(const CVector& x, double t, Workspace& ws, CVector& h) const {
  combined_.evaluate(x, ws.eval, ws.stacked_values);
  const Complex a = gamma_ * (1.0 - t);
  const Complex* g = ws.stacked_values.data();
  const Complex* f = g + n_;
  h.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) h[i] = a * g[i] + t * f[i];
}

template <bool WantHt>
void CompiledHomotopy::blended_pass(const CVector& x, double t, Workspace& ws, CVector& h,
                                    CMatrix& jx, CVector* ht) const {
  const CompiledSystem& cs = combined_;
  cs.prepare(ws.eval);

  // Per-term blended coefficients, rebuilt only when t moves or the
  // workspace last served a different homotopy: every Newton iteration of
  // one corrector call reuses the same scaling.
  const std::size_t nterms = cs.terms_.size();
  if (ws.scaled_coeff.size() < nterms) ws.scaled_coeff.resize(nterms);
  if (ws.cached_owner != id_ || !(ws.cached_t == t)) {  // NaN-safe: fresh ws rescales
    const Complex a = gamma_ * (1.0 - t);
    const std::size_t split = cs.eq_offset_[n_];
    Complex* sc = ws.scaled_coeff.data();
    for (std::size_t k = 0; k < split; ++k) sc[k] = a * cs.terms_[k].coeff;
    for (std::size_t k = split; k < nterms; ++k) sc[k] = t * cs.terms_[k].coeff;
    ws.cached_owner = id_;
    ws.cached_t = t;
  }

  cs.fill_powers(x, ws.eval);

  h.resize(n_);
  jx.resize(n_, n_);
  if constexpr (WantHt) ht->resize(n_);

  detail::BlendCtx c;
  c.n = n_;
  c.fac = cs.factors_.data();
  c.terms = cs.terms_.data();
  c.moff = cs.mono_offset_.data();
  c.eoff = cs.eq_offset_.data();
  c.pow = ws.eval.powers_.data();
  c.prefix = ws.eval.prefix_.data();
  c.sc = ws.scaled_coeff.data();
  c.dc = dcoeff_.data();
  c.h = h.data();
  c.jx = jx.data();
  c.ht = WantHt ? ht->data() : nullptr;
  detail::blend_dispatch<WantHt, /*Stacked=*/true>(c);
}

void CompiledHomotopy::evaluate_with_jacobian(const CVector& x, double t, Workspace& ws,
                                              CVector& h, CMatrix& jx) const {
  blended_pass<false>(x, t, ws, h, jx, nullptr);
}

void CompiledHomotopy::evaluate_fused(const CVector& x, double t, Workspace& ws, CVector& h,
                                      CMatrix& jx, CVector& ht) const {
  blended_pass<true>(x, t, ws, h, jx, &ht);
}

}  // namespace pph::eval
