#pragma once
// Fused compiled form of the convex-linear homotopy
//   H(x,t) = gamma*(1-t)*G(x) + t*F(x).
//
// The start and target systems are lowered into ONE CompiledSystem tape
// (start equations first, target equations after), so the per-variable
// power tables are shared between G and F and the monomial pool is
// deduplicated across both.  The value-only pass exploits the pool fully
// (a shared monomial is evaluated once per point); the fused Jacobian
// pass below is deliberately term-major — it re-walks each term's factor
// list so the prefix products stay in registers, trading pool reuse for
// zero scratch traffic, which wins on the sparse systems trackers see.
//
// The fused pass never materializes the stacked 2n x n Jacobian or even
// separate G/F rows: the gamma*(1-t) / t blend is folded into per-term
// scaled coefficients (cached in the workspace and rebuilt only when t
// changes, so the Newton iterations of one corrector call rescale once),
// and each term's reverse-mode suffix product is seeded with its scaled
// coefficient, so Jacobian contributions land in the H row pre-blended.
// dH/dt = F - gamma*G has t-independent term coefficients (-gamma*c for
// start terms, c for target terms) precomputed at construction.  All
// output goes into caller-provided buffers: zero allocations after the
// workspace warms up.

#include <cstdint>
#include <limits>

#include "eval/compiled_system.hpp"

namespace pph::eval {

class CompiledHomotopy {
 public:
  /// Scratch for one evaluation stream: the tape workspace, the stacked
  /// [G; F] values of the value-only pass, and the per-term blended
  /// coefficients at the last-seen (homotopy, t) pair.  The cache is keyed
  /// on the homotopy's construction id (not its address, which a destroyed
  /// instance could vacate for a new one), so a workspace reused across
  /// homotopies never evaluates with another instance's stale
  /// coefficients; copies share the id because they share the math.
  struct Workspace {
    EvalWorkspace eval;
    CVector stacked_values;
    CVector scaled_coeff;  // gamma*(1-t)*c (start terms) / t*c (target terms)
    std::uint64_t cached_owner = 0;  // 0: never used
    double cached_t = std::numeric_limits<double>::quiet_NaN();
  };

  CompiledHomotopy() = default;
  CompiledHomotopy(const poly::PolySystem& start, const poly::PolySystem& target, Complex gamma);

  std::size_t dimension() const { return n_; }
  Complex gamma() const { return gamma_; }
  const CompiledSystem& tape() const { return combined_; }

  /// h <- H(x, t).
  void evaluate(const CVector& x, double t, Workspace& ws, CVector& h) const;

  /// h <- H(x,t), jx <- dH/dx(x,t) in one fused pass.
  void evaluate_with_jacobian(const CVector& x, double t, Workspace& ws, CVector& h,
                              CMatrix& jx) const;

  /// h <- H, jx <- dH/dx, ht <- dH/dt, all from one pass over the tape.
  void evaluate_fused(const CVector& x, double t, Workspace& ws, CVector& h, CMatrix& jx,
                      CVector& ht) const;

 private:
  template <bool WantHt>
  void blended_pass(const CVector& x, double t, Workspace& ws, CVector& h, CMatrix& jx,
                    CVector* ht) const;

  CompiledSystem combined_;  // start equations stacked above target equations
  CVector dcoeff_;           // per-term dH/dt coefficients (t-independent)
  std::size_t n_ = 0;
  Complex gamma_;
  std::uint64_t id_ = 0;  // construction id for the workspace coefficient cache
};

}  // namespace pph::eval
