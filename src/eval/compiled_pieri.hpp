#pragma once
// Compiled straight-line form of the Pieri edge homotopy (paper eq. (3)).
//
// Every equation of the edge homotopy is a bordered intersection
// determinant det([X(s,u) | K]) in the chart coordinates of one pattern.
// The interpreted path (schubert::evaluate_condition) re-expands that
// determinant from scratch on every Newton iteration: a full cofactor
// matrix of the (m+p) x (m+p) bordered matrix — (m+p)^2 LU determinants —
// per equation per call.  This class expands each determinant ONCE, at
// construction, by generalized Laplace expansion along the map columns:
//
//   det([A | K]) = sum_mu  sign_mu * s^{D_mu} u^{E_mu}
//                          * prod_{k in mu} x_k * det(K[R_mu, :])
//
// where mu ranges over the ways to pick, per map column, either its top
// pivot (factor u^{deg_j}) or one of its free cells (factor
// x_k s^{d_k} u^{deg_j - d_k}) with all chosen rows distinct, and R_mu is
// the complementary m-row set the plane block must fill.  The polynomial
// is multilinear in the chart coordinates (each x_k is one matrix entry),
// so all rows share one monomial pool on a CompiledSystem tape:
//
//   * fixed-condition rows (conditions 1..l-1: constant plane, u = 1) get
//     literal constant coefficients — their Laplace minors det(K_i[R, :])
//     are computed once here and never re-expanded per step;
//   * the moving row (plane K(t) = (1-t) gamma K_F + t K_target, point
//     (s(t), u(t)) with complex detours) keeps per-t coefficients in the
//     workspace: on a t change, the distinct minors det(K(t)[R, :]) and
//     their d/dt (constant K' = K_target - gamma K_F, one
//     column-replacement determinant per plane column) are recomputed
//     once, then every moving term's H and dH/dt coefficients follow from
//     the (s, u) power tables.  The Newton iterations of one corrector
//     call all reuse the same coefficients.
//
// The fused pass then rides the shared blend kernels of the convex
// homotopy (prefix/suffix partials, unrolled <=8-factor terms, AVX2+FMA
// runtime dispatch): one pass fills H, dH/dx, dH/dt into caller buffers
// with zero heap allocations after warm-up.  dH/dt of the fixed rows is
// exactly zero, as in the interpreted reference.
//
// A Workspace is keyed on the owning instance's construction id (the
// CompiledHomotopy scheme): one workspace serves every edge homotopy a
// slave tracks in sequence, refreshing its caches whenever the owner or t
// changes, so scheduler workers stop reallocating per edge.

#include <cstdint>
#include <limits>

#include "eval/compiled_system.hpp"
#include "schubert/conditions.hpp"

namespace pph::eval {

class CompiledPieriHomotopy {
 public:
  /// Scratch for one evaluation stream.  Reusable across instances of any
  /// chart size (buffers grow to the largest tape seen); the coefficient
  /// caches are rebuilt whenever the owning instance or t changes.
  struct Workspace {
    EvalWorkspace eval;
    CVector scaled_coeff;  // per tape term: H coefficient at cached_t
    CVector dcoeff;        // per tape term: dH/dt coefficient at cached_t
    CVector minor_val;     // per distinct minor: det(K(t)[R, :])
    CVector minor_dval;    // per distinct minor: d/dt of the above
    CVector spow;          // powers of s(t), 0..max_spow
    CVector upow;          // powers of u(t), 0..max_upow
    CVector plane;         // K(t), row-major (m+p) x m
    CVector det_scratch;   // m x m in-place elimination buffer
    std::uint64_t cached_owner = 0;  // 0: never used
    double cached_t = std::numeric_limits<double>::quiet_NaN();
  };

  CompiledPieriHomotopy() = default;
  /// Lower one edge homotopy: `chart` of the parent pattern, `fixed` are
  /// conditions 1..l-1 (enforced with u = 1), `target` is condition l,
  /// `gamma` randomizes the start plane, and the detour constants bend the
  /// interpolation-point path exactly as in PieriEdgeHomotopy (whose
  /// interpreted virtuals are the golden reference for this tape).
  CompiledPieriHomotopy(const schubert::PatternChart& chart,
                        const std::vector<schubert::PlaneCondition>& fixed,
                        const schubert::PlaneCondition& target, Complex gamma,
                        Complex detour_s, Complex detour_u);

  std::size_t dimension() const { return n_; }
  const CompiledSystem& tape() const { return tape_; }
  /// Distinct Laplace minors of the plane block (diagnostics / tests).
  std::size_t minor_count() const { return nminor_; }

  /// Size the workspace for this tape (implicit in the evaluators; exposed
  /// for allocation-counted regions).
  void prepare(Workspace& ws) const;

  /// h <- H(x, t).
  void evaluate(const CVector& x, double t, Workspace& ws, CVector& h) const;
  /// h <- H(x,t), jx <- dH/dx(x,t) in one fused pass.
  void evaluate_with_jacobian(const CVector& x, double t, Workspace& ws, CVector& h,
                              CMatrix& jx) const;
  /// h <- H, jx <- dH/dx, ht <- dH/dt, all from one pass over the tape.
  void evaluate_fused(const CVector& x, double t, Workspace& ws, CVector& h, CMatrix& jx,
                      CVector& ht) const;

 private:
  /// Per-t data of one moving-row term, aligned with the tape's term range
  /// [moving_begin_, term_count): coefficient
  ///   sign * s(t)^spow * u(t)^upow * det(K(t)[minor rows, :]).
  struct MovingTerm {
    std::uint32_t minor;
    std::uint32_t spow;
    std::uint32_t upow;
    double sign;
  };

  template <bool WantHt>
  void pass(const CVector& x, double t, Workspace& ws, CVector& h, CMatrix& jx,
            CVector* ht) const;
  void refresh_coefficients(double t, Workspace& ws) const;

  CompiledSystem tape_;        // n rows: fixed conditions, then the moving row
  std::size_t n_ = 0;          // equations == chart coordinates
  std::size_t m_ = 0;          // plane columns
  std::size_t space_ = 0;      // m + p == bordered matrix dimension
  CMatrix k_start_;            // gamma * K_F
  CMatrix k_dot_;              // K_target - gamma * K_F (constant dK/dt)
  Complex s_target_;
  Complex detour_s_;
  Complex detour_u_;
  std::vector<std::uint32_t> minor_rows_;  // minor r owns rows [r*m, (r+1)*m)
  std::size_t nminor_ = 0;
  std::vector<MovingTerm> moving_;
  std::size_t moving_begin_ = 0;  // first moving-row term on the tape
  std::uint32_t max_spow_ = 0;
  std::uint32_t max_upow_ = 0;
  std::uint64_t id_ = 0;  // construction id for the workspace caches
};

}  // namespace pph::eval
