#pragma once
// Compile-once straight-line evaluation of polynomial systems.
//
// The tracker's inner loop spends nearly all of its time evaluating the
// homotopy and its Jacobian.  The interpreted path (Polynomial::evaluate /
// evaluate_with_gradient) re-walks the term lists, re-exponentiates every
// monomial per term, and allocates fresh vectors per call.  CompiledSystem
// lowers a poly::PolySystem once into a flat instruction tape:
//
//   * shared per-variable power tables up to the max per-variable degree,
//     so x_v^e is one table lookup for every term that needs it;
//   * a deduplicated monomial pool — a monomial appearing in several terms
//     (or several equations) is evaluated exactly once per point;
//   * a fused pass that produces each monomial's value AND all of its
//     partial derivatives via prefix/suffix products (no division, so
//     points with zero coordinates need no special casing);
//   * per-equation term lists that accumulate values and Jacobian rows
//     from the shared pool.
//
// All mutable scratch lives in an EvalWorkspace owned by the caller (one
// per thread / per path); after the first evaluation sizes the workspace,
// evaluation performs zero heap allocations.  The tape itself is immutable
// and safe to share across threads.

#include "linalg/matrix.hpp"
#include "poly/system.hpp"

namespace pph::eval {

using linalg::CMatrix;
using linalg::Complex;
using linalg::CVector;

class CompiledSystem;

/// Mutable scratch for one evaluation stream.  Reusable across calls and
/// across CompiledSystem instances (buffers grow to the largest tape seen).
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

 private:
  friend class CompiledSystem;
  friend class CompiledHomotopy;
  friend class CompiledPieriHomotopy;
  CVector powers_;     // concatenated per-variable power tables
  CVector mono_val_;   // value of each pooled monomial
  CVector mono_dval_;  // partial of each pooled monomial, aligned with the factor tape
  CVector prefix_;     // forward-product scratch, sized max factors per monomial
};

/// A PolySystem lowered to a flat tape.  Construction walks the term lists
/// once; evaluation never touches poly:: types again.
class CompiledSystem {
 public:
  CompiledSystem() = default;
  explicit CompiledSystem(const poly::PolySystem& system);

  std::size_t nvars() const { return nvars_; }
  std::size_t size() const { return neqs_; }
  /// Distinct monomials in the pool (diagnostics / tests).
  std::size_t monomial_count() const { return mono_offset_.empty() ? 0 : mono_offset_.size() - 1; }
  /// Total term slots across all equations (diagnostics / tests).
  std::size_t term_count() const { return terms_.size(); }

  /// Size the workspace for this tape.  Called implicitly by the evaluators;
  /// exposed so callers can pre-size before a timed or allocation-counted
  /// region.
  void prepare(EvalWorkspace& ws) const;

  /// values <- F(x).  values is resized to size(); no allocation once the
  /// workspace and output are at capacity.
  void evaluate(const CVector& x, EvalWorkspace& ws, CVector& values) const;

  /// values <- F(x), jacobian <- dF/dx (size() x nvars()), one fused pass.
  void evaluate_with_jacobian(const CVector& x, EvalWorkspace& ws, CVector& values,
                              CMatrix& jacobian) const;

  // Tape descriptors (public so the dispatch kernels in compiled_homotopy.cpp
  // can take typed pointers; the tape vectors themselves stay private).
  //
  // One factor x_var^exp of a pooled monomial; exp >= 1 always.  pidx is
  // var's precomputed offset into the power table, so x_var^e is
  // pow[pidx + e] with no second indirection in the hot loops.
  struct Factor {
    std::uint32_t var;
    std::uint32_t exp;
    std::uint32_t pidx;
  };
  // One term of an equation: coeff * monomial[mono].
  struct TermRef {
    Complex coeff;
    std::uint32_t mono;
  };

 private:
  friend class CompiledHomotopy;       // walk the tape for their blended
  friend class CompiledPieriHomotopy;  // per-term-coefficient passes

  void fill_powers(const CVector& x, EvalWorkspace& ws) const;
  // Monomial pool passes over a prepared, power-filled workspace.
  void eval_monomials(EvalWorkspace& ws) const;
  void eval_monomials_with_partials(EvalWorkspace& ws) const;

  std::size_t nvars_ = 0;
  std::size_t neqs_ = 0;
  std::vector<std::uint32_t> pow_offset_;  // per variable, offset into the power table
  std::size_t pow_size_ = 0;               // total power-table length
  std::vector<Factor> factors_;            // factor tape, all monomials concatenated
  std::vector<std::uint32_t> mono_offset_; // monomial m owns factors_[mono_offset_[m] .. mono_offset_[m+1])
  std::vector<TermRef> terms_;             // term tape, all equations concatenated
  std::vector<std::uint32_t> eq_offset_;   // equation i owns terms_[eq_offset_[i] .. eq_offset_[i+1])
  std::size_t max_factors_ = 0;            // widest monomial (sizes the prefix scratch)
};

}  // namespace pph::eval
