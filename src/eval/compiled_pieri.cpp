#include "eval/compiled_pieri.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>

#include "eval/blend_kernel.hpp"

namespace pph::eval {

namespace {

Complex ipow(Complex base, std::size_t e) {
  Complex v{1.0, 0.0};
  while (e) {
    if (e & 1u) v *= base;
    base *= base;
    e >>= 1u;
  }
  return v;
}

/// In-place determinant of an m x m buffer by Gaussian elimination with
/// partial pivoting (destroys the buffer; never allocates).  The minors are
/// tiny (m = plane columns), so no blocking.
Complex det_inplace(Complex* a, std::size_t m) {
  Complex det{1.0, 0.0};
  for (std::size_t c = 0; c < m; ++c) {
    std::size_t piv = c;
    double best = std::abs(a[c * m + c]);
    for (std::size_t r = c + 1; r < m; ++r) {
      const double mag = std::abs(a[r * m + c]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    if (best == 0.0) return Complex{};
    if (piv != c) {
      for (std::size_t cc = 0; cc < m; ++cc) std::swap(a[c * m + cc], a[piv * m + cc]);
      det = -det;
    }
    const Complex d = a[c * m + c];
    det *= d;
    for (std::size_t r = c + 1; r < m; ++r) {
      const Complex f = a[r * m + c] / d;
      for (std::size_t cc = c + 1; cc < m; ++cc) a[r * m + cc] -= f * a[c * m + cc];
    }
  }
  return det;
}

/// det of the given rows of a (rows x m) matrix, gathered into scratch.
Complex det_of_rows(const linalg::CMatrix& k, const std::uint32_t* rows, std::size_t m,
                    Complex* scratch) {
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) scratch[a * m + b] = k(rows[a], b);
  }
  return det_inplace(scratch, m);
}

}  // namespace

CompiledPieriHomotopy::CompiledPieriHomotopy(const schubert::PatternChart& chart,
                                             const std::vector<schubert::PlaneCondition>& fixed,
                                             const schubert::PlaneCondition& target,
                                             Complex gamma, Complex detour_s, Complex detour_u)
    : n_(chart.dimension()),
      s_target_(target.point),
      detour_s_(detour_s),
      detour_u_(detour_u) {
  static std::atomic<std::uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  const schubert::Pattern& pat = chart.pattern();
  const schubert::PieriProblem& pb = pat.problem();
  space_ = pb.space_dim();
  m_ = pb.m;
  if (fixed.size() + 1 != n_) {
    throw std::invalid_argument(
        "CompiledPieriHomotopy: need level-1 fixed conditions plus one target");
  }
  if (space_ > 64) {
    throw std::invalid_argument("CompiledPieriHomotopy: m+p > 64 unsupported");
  }
  k_start_ = schubert::special_plane(pat) * gamma;
  k_dot_ = target.plane - k_start_;

  // Entry options of each map column of the bordered matrix: the normalized
  // top pivot (factor u^{deg_j}, no coordinate) and the column's free cells
  // (factor x_k s^{d} u^{deg_j - d} at the cell's row residue).  Distinct
  // degree blocks of one column can share a residue; they stay separate
  // options, exactly as they are separate summands of the matrix entry.
  struct Option {
    std::int32_t cell;  // chart coordinate index, -1 for the pivot
    std::uint32_t row, ds, du;
  };
  const std::size_t p = pb.p;
  std::vector<std::vector<Option>> opts(p);
  for (std::size_t j = 0; j < p; ++j) {
    opts[j].push_back({-1, static_cast<std::uint32_t>(j), 0u,
                       static_cast<std::uint32_t>(pat.column_degree(j))});
  }
  const auto& cells = chart.cells();
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const auto [concat_row, j] = cells[k];
    const std::uint32_t d = static_cast<std::uint32_t>(concat_row / space_);
    opts[j].push_back({static_cast<std::int32_t>(k),
                       static_cast<std::uint32_t>(concat_row % space_), d,
                       static_cast<std::uint32_t>(pat.column_degree(j)) - d});
  }

  // Generalized Laplace expansion along the map columns: one option per
  // column with all chosen rows distinct.  The plane block fills the m
  // complementary rows, contributing det(K[comp, :]) with the permutation
  // sign of [chosen rows..., comp...].  Each leaf is one multilinear
  // monomial in the chart coordinates; the cell set determines the
  // monomial uniquely (every cell is one coordinate), so leaves are
  // distinct tape terms.
  struct Mono {
    std::vector<std::uint32_t> cells;  // sorted coordinate indices
    std::uint32_t minor = 0, spow = 0, upow = 0;
    double sign = 1.0;
  };
  std::vector<Mono> monos;
  std::map<std::vector<std::uint32_t>, std::uint32_t> minor_ids;
  std::vector<std::uint32_t> sel_rows(p);
  std::vector<std::uint32_t> sel_cells;
  sel_cells.reserve(p);
  std::vector<std::uint32_t> perm(space_);
  std::vector<std::uint32_t> comp;
  comp.reserve(m_);
  std::uint64_t rowmask = 0;

  const auto leaf = [&](std::uint32_t spow, std::uint32_t upow) {
    comp.clear();
    for (std::uint32_t r = 0; r < space_; ++r) {
      if (!((rowmask >> r) & 1u)) comp.push_back(r);
    }
    const auto [it, inserted] =
        minor_ids.try_emplace(comp, static_cast<std::uint32_t>(minor_ids.size()));
    if (inserted) minor_rows_.insert(minor_rows_.end(), comp.begin(), comp.end());
    for (std::size_t j = 0; j < p; ++j) perm[j] = sel_rows[j];
    for (std::size_t c = 0; c < m_; ++c) perm[p + c] = comp[c];
    int inversions = 0;
    for (std::size_t a = 0; a < space_; ++a) {
      for (std::size_t b = a + 1; b < space_; ++b) {
        if (perm[a] > perm[b]) inversions ^= 1;
      }
    }
    Mono mo;
    mo.cells = sel_cells;
    std::sort(mo.cells.begin(), mo.cells.end());
    mo.minor = it->second;
    mo.spow = spow;
    mo.upow = upow;
    mo.sign = inversions ? -1.0 : 1.0;
    max_spow_ = std::max(max_spow_, spow);
    max_upow_ = std::max(max_upow_, upow);
    monos.push_back(std::move(mo));
  };
  const std::function<void(std::size_t, std::uint32_t, std::uint32_t)> expand =
      [&](std::size_t j, std::uint32_t spow, std::uint32_t upow) {
        if (j == p) {
          leaf(spow, upow);
          return;
        }
        for (const Option& o : opts[j]) {
          if ((rowmask >> o.row) & 1u) continue;
          rowmask |= std::uint64_t{1} << o.row;
          sel_rows[j] = o.row;
          if (o.cell >= 0) sel_cells.push_back(static_cast<std::uint32_t>(o.cell));
          expand(j + 1, spow + o.ds, upow + o.du);
          if (o.cell >= 0) sel_cells.pop_back();
          rowmask &= ~(std::uint64_t{1} << o.row);
        }
      };
  expand(0, 0, 0);
  nminor_ = minor_ids.size();

  // Lower onto one shared tape.  Fixed rows (u = 1, constant plane) get
  // their literal coefficients sign * s_i^D * det(K_i[comp, :]) — the
  // cached Laplace minors, computed once per distinct row set per
  // condition, never re-expanded during tracking.  The moving row gets
  // placeholder coefficients; its real per-t values live in the workspace.
  poly::PolySystem sys(n_);
  std::vector<Complex> row_minors(nminor_);
  std::vector<Complex> scratch(m_ * m_);
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    for (std::size_t r = 0; r < nminor_; ++r) {
      row_minors[r] =
          det_of_rows(fixed[i].plane, minor_rows_.data() + r * m_, m_, scratch.data());
    }
    std::vector<poly::Term> terms;
    terms.reserve(monos.size());
    for (const Mono& mo : monos) {
      poly::Monomial mono(n_);
      for (const std::uint32_t cell : mo.cells) mono.set_exponent(cell, 1);
      terms.push_back(
          {mo.sign * ipow(fixed[i].point, mo.spow) * row_minors[mo.minor], std::move(mono)});
    }
    sys.add_equation(poly::Polynomial(n_, std::move(terms)));
  }
  {
    std::vector<poly::Term> terms;
    terms.reserve(monos.size());
    for (const Mono& mo : monos) {
      poly::Monomial mono(n_);
      for (const std::uint32_t cell : mo.cells) mono.set_exponent(cell, 1);
      terms.push_back({Complex{1.0, 0.0}, std::move(mono)});
    }
    sys.add_equation(poly::Polynomial(n_, std::move(terms)));
  }
  tape_ = CompiledSystem(sys);
  moving_begin_ = tape_.eq_offset_[n_ - 1];

  // Polynomial normalization sorts terms, so re-associate each moving-row
  // tape term with its expansion leaf by the cell set (the factor tape
  // stores variables in ascending order, matching the sorted cells).
  std::map<std::vector<std::uint32_t>, std::uint32_t> mono_of_cells;
  for (std::size_t idx = 0; idx < monos.size(); ++idx) {
    const auto [it, inserted] =
        mono_of_cells.try_emplace(monos[idx].cells, static_cast<std::uint32_t>(idx));
    (void)it;
    if (!inserted) throw std::logic_error("CompiledPieriHomotopy: duplicate expansion leaf");
  }
  moving_.resize(tape_.terms_.size() - moving_begin_);
  std::vector<std::uint32_t> vars;
  for (std::size_t k = moving_begin_; k < tape_.terms_.size(); ++k) {
    const std::uint32_t m = tape_.terms_[k].mono;
    vars.clear();
    for (std::size_t f = tape_.mono_offset_[m]; f < tape_.mono_offset_[m + 1]; ++f) {
      vars.push_back(tape_.factors_[f].var);
    }
    const auto it = mono_of_cells.find(vars);
    if (it == mono_of_cells.end()) {
      throw std::logic_error("CompiledPieriHomotopy: moving term lost its expansion leaf");
    }
    const Mono& mo = monos[it->second];
    moving_[k - moving_begin_] = {mo.minor, mo.spow, mo.upow, mo.sign};
  }
}

void CompiledPieriHomotopy::prepare(Workspace& ws) const {
  tape_.prepare(ws.eval);
  const std::size_t nterms = tape_.terms_.size();
  if (ws.scaled_coeff.size() < nterms) ws.scaled_coeff.resize(nterms);
  if (ws.dcoeff.size() < nterms) ws.dcoeff.resize(nterms);
  if (ws.minor_val.size() < nminor_) ws.minor_val.resize(nminor_);
  if (ws.minor_dval.size() < nminor_) ws.minor_dval.resize(nminor_);
  if (ws.spow.size() < max_spow_ + 1u) ws.spow.resize(max_spow_ + 1u);
  if (ws.upow.size() < max_upow_ + 1u) ws.upow.resize(max_upow_ + 1u);
  if (ws.plane.size() < space_ * m_) ws.plane.resize(space_ * m_);
  if (ws.det_scratch.size() < m_ * m_) ws.det_scratch.resize(m_ * m_);
}

void CompiledPieriHomotopy::refresh_coefficients(double t, Workspace& ws) const {
  if (ws.cached_owner == id_ && ws.cached_t == t) return;
  Complex* sc = ws.scaled_coeff.data();
  Complex* dc = ws.dcoeff.data();
  if (ws.cached_owner != id_) {
    // Fixed rows: the tape's literal coefficients, t-independent, dH/dt 0.
    for (std::size_t k = 0; k < moving_begin_; ++k) {
      sc[k] = tape_.terms_[k].coeff;
      dc[k] = Complex{};
    }
  }

  // Moving interpolation point — the same path as the interpreted
  // PieriEdgeHomotopy::moving_point / moving_point_dt reference:
  //   s(t) = 1 + t (s_target - 1) + t(1-t) detour_s,
  //   u(t) = t + t(1-t) detour_u.
  const double bump = t * (1.0 - t);
  const double dbump = 1.0 - 2.0 * t;
  const Complex s = Complex{1.0, 0.0} + Complex{t, 0.0} * (s_target_ - Complex{1.0, 0.0}) +
                    bump * detour_s_;
  const Complex u = Complex{t, 0.0} + bump * detour_u_;
  const Complex sdot = (s_target_ - Complex{1.0, 0.0}) + dbump * detour_s_;
  const Complex udot = Complex{1.0, 0.0} + dbump * detour_u_;
  Complex* spow = ws.spow.data();
  Complex* upow = ws.upow.data();
  spow[0] = Complex{1.0, 0.0};
  for (std::uint32_t e = 1; e <= max_spow_; ++e) spow[e] = spow[e - 1] * s;
  upow[0] = Complex{1.0, 0.0};
  for (std::uint32_t e = 1; e <= max_upow_; ++e) upow[e] = upow[e - 1] * u;

  // Moving plane K(t) = gamma*(1-t) K_F + t K_target, and its distinct
  // Laplace minors with their d/dt (dK/dt is constant, so the derivative
  // is one column-replacement determinant per plane column).
  Complex* plane = ws.plane.data();
  const Complex* ks = k_start_.data();
  const Complex* kd = k_dot_.data();
  for (std::size_t i = 0; i < space_ * m_; ++i) plane[i] = ks[i] + t * kd[i];
  Complex* scratch = ws.det_scratch.data();
  for (std::size_t r = 0; r < nminor_; ++r) {
    const std::uint32_t* rows = minor_rows_.data() + r * m_;
    for (std::size_t a = 0; a < m_; ++a) {
      for (std::size_t b = 0; b < m_; ++b) scratch[a * m_ + b] = plane[rows[a] * m_ + b];
    }
    ws.minor_val[r] = det_inplace(scratch, m_);
    Complex dval{};
    for (std::size_t rc = 0; rc < m_; ++rc) {
      for (std::size_t a = 0; a < m_; ++a) {
        for (std::size_t b = 0; b < m_; ++b) {
          scratch[a * m_ + b] =
              (b == rc) ? kd[rows[a] * m_ + b] : plane[rows[a] * m_ + b];
        }
      }
      dval += det_inplace(scratch, m_);
    }
    ws.minor_dval[r] = dval;
  }

  // Per-term moving coefficients: product rule over s^D u^E and the minor.
  for (std::size_t idx = 0; idx < moving_.size(); ++idx) {
    const MovingTerm& mt = moving_[idx];
    const std::size_t k = moving_begin_ + idx;
    const Complex powf = spow[mt.spow] * upow[mt.upow];
    Complex dpow{};
    if (mt.spow > 0) {
      dpow += static_cast<double>(mt.spow) * spow[mt.spow - 1] * sdot * upow[mt.upow];
    }
    if (mt.upow > 0) {
      dpow += spow[mt.spow] * static_cast<double>(mt.upow) * upow[mt.upow - 1] * udot;
    }
    const Complex mv = ws.minor_val[mt.minor];
    sc[k] = mt.sign * powf * mv;
    dc[k] = mt.sign * (dpow * mv + powf * ws.minor_dval[mt.minor]);
  }
  ws.cached_owner = id_;
  ws.cached_t = t;
}

void CompiledPieriHomotopy::evaluate(const CVector& x, double t, Workspace& ws,
                                     CVector& h) const {
  prepare(ws);
  refresh_coefficients(t, ws);
  tape_.fill_powers(x, ws.eval);
  tape_.eval_monomials(ws.eval);
  const Complex* mval = ws.eval.mono_val_.data();
  const Complex* sc = ws.scaled_coeff.data();
  h.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    Complex acc{};
    for (std::size_t k = tape_.eq_offset_[i]; k < tape_.eq_offset_[i + 1]; ++k) {
      acc += sc[k] * mval[tape_.terms_[k].mono];
    }
    h[i] = acc;
  }
}

template <bool WantHt>
void CompiledPieriHomotopy::pass(const CVector& x, double t, Workspace& ws, CVector& h,
                                 CMatrix& jx, CVector* ht) const {
  prepare(ws);
  refresh_coefficients(t, ws);
  tape_.fill_powers(x, ws.eval);

  h.resize(n_);
  jx.resize(n_, n_);
  if constexpr (WantHt) ht->resize(n_);

  detail::BlendCtx c;
  c.n = n_;
  c.fac = tape_.factors_.data();
  c.terms = tape_.terms_.data();
  c.moff = tape_.mono_offset_.data();
  c.eoff = tape_.eq_offset_.data();
  c.pow = ws.eval.powers_.data();
  c.prefix = ws.eval.prefix_.data();
  c.sc = ws.scaled_coeff.data();
  c.dc = ws.dcoeff.data();
  c.h = h.data();
  c.jx = jx.data();
  c.ht = WantHt ? ht->data() : nullptr;
  detail::blend_dispatch<WantHt, /*Stacked=*/false>(c);
}

void CompiledPieriHomotopy::evaluate_with_jacobian(const CVector& x, double t, Workspace& ws,
                                                   CVector& h, CMatrix& jx) const {
  pass<false>(x, t, ws, h, jx, nullptr);
}

void CompiledPieriHomotopy::evaluate_fused(const CVector& x, double t, Workspace& ws, CVector& h,
                                           CMatrix& jx, CVector& ht) const {
  pass<true>(x, t, ws, h, jx, &ht);
}

}  // namespace pph::eval
