#include "eval/compiled_system.hpp"

#include <map>

namespace pph::eval {

CompiledSystem::CompiledSystem(const poly::PolySystem& system)
    : nvars_(system.nvars()), neqs_(system.size()) {
  // Pool monomials by exponent vector, first-seen order so term traversal
  // (and therefore summation order) matches the interpreted path.
  std::map<std::vector<std::uint32_t>, std::uint32_t> pool;
  std::vector<std::uint32_t> max_deg(nvars_, 0);

  eq_offset_.reserve(neqs_ + 1);
  eq_offset_.push_back(0);
  mono_offset_.push_back(0);
  for (const auto& p : system.equations()) {
    for (const auto& t : p.terms()) {
      const auto& exps = t.monomial.exponents();
      auto [it, inserted] = pool.emplace(exps, static_cast<std::uint32_t>(pool.size()));
      if (inserted) {
        std::size_t nf = 0;
        for (std::size_t v = 0; v < nvars_; ++v) {
          if (exps[v] == 0) continue;
          factors_.push_back({static_cast<std::uint32_t>(v), exps[v], 0});
          if (exps[v] > max_deg[v]) max_deg[v] = exps[v];
          ++nf;
        }
        mono_offset_.push_back(static_cast<std::uint32_t>(factors_.size()));
        if (nf > max_factors_) max_factors_ = nf;
      }
      terms_.push_back({t.coefficient, it->second});
    }
    eq_offset_.push_back(static_cast<std::uint32_t>(terms_.size()));
  }

  pow_offset_.resize(nvars_);
  for (std::size_t v = 0; v < nvars_; ++v) {
    pow_offset_[v] = static_cast<std::uint32_t>(pow_size_);
    pow_size_ += max_deg[v] + 1;  // slots for x_v^0 .. x_v^max_deg
  }
  for (auto& f : factors_) f.pidx = pow_offset_[f.var];
}

void CompiledSystem::prepare(EvalWorkspace& ws) const {
  if (ws.powers_.size() < pow_size_) ws.powers_.resize(pow_size_);
  const std::size_t nmono = monomial_count();
  if (ws.mono_val_.size() < nmono) ws.mono_val_.resize(nmono);
  if (ws.mono_dval_.size() < factors_.size()) ws.mono_dval_.resize(factors_.size());
  if (ws.prefix_.size() < max_factors_) ws.prefix_.resize(max_factors_);
}

void CompiledSystem::fill_powers(const CVector& x, EvalWorkspace& ws) const {
  Complex* pow = ws.powers_.data();
  for (std::size_t v = 0; v < nvars_; ++v) {
    const std::size_t base = pow_offset_[v];
    const std::size_t top = (v + 1 < nvars_) ? pow_offset_[v + 1] : pow_size_;
    pow[base] = Complex{1.0, 0.0};
    const Complex xv = x[v];
    for (std::size_t k = base + 1; k < top; ++k) pow[k] = pow[k - 1] * xv;
  }
}

void CompiledSystem::eval_monomials(EvalWorkspace& ws) const {
  const Complex* pow = ws.powers_.data();
  Complex* mval = ws.mono_val_.data();
  const std::size_t nmono = monomial_count();
  for (std::size_t m = 0; m < nmono; ++m) {
    const std::size_t lo = mono_offset_[m];
    const std::size_t hi = mono_offset_[m + 1];
    if (lo == hi) {
      mval[m] = Complex{1.0, 0.0};
      continue;
    }
    Complex v = pow[factors_[lo].pidx + factors_[lo].exp];
    for (std::size_t f = lo + 1; f < hi; ++f) {
      v *= pow[factors_[f].pidx + factors_[f].exp];
    }
    mval[m] = v;
  }
}

void CompiledSystem::eval_monomials_with_partials(EvalWorkspace& ws) const {
  const Complex* pow = ws.powers_.data();
  Complex* mval = ws.mono_val_.data();
  Complex* mdval = ws.mono_dval_.data();
  Complex* prefix = ws.prefix_.data();

  // Fused monomial pass: value and every partial via prefix/suffix products.
  // For m = prod_j p_j with p_j = x_{v_j}^{e_j},
  //   dm/dx_{v_j} = (prod_{k<j} p_k) * (prod_{k>j} p_k) * e_j * x_{v_j}^{e_j-1},
  // which needs no division and is exact at zero coordinates.
  const std::size_t nmono = monomial_count();
  for (std::size_t m = 0; m < nmono; ++m) {
    const std::size_t lo = mono_offset_[m];
    const std::size_t hi = mono_offset_[m + 1];
    if (hi == lo) {  // constant monomial
      mval[m] = Complex{1.0, 0.0};
      continue;
    }
    if (hi == lo + 1) {  // single factor x_v^e: no prefix/suffix machinery
      const Factor& fc = factors_[lo];
      mval[m] = pow[fc.pidx + fc.exp];
      mdval[lo] = static_cast<double>(fc.exp) * pow[fc.pidx + fc.exp - 1];
      continue;
    }
    Complex running{1.0, 0.0};
    for (std::size_t f = lo; f < hi; ++f) {
      prefix[f - lo] = running;
      running *= pow[factors_[f].pidx + factors_[f].exp];
    }
    mval[m] = running;
    Complex suffix{1.0, 0.0};
    for (std::size_t f = hi; f-- > lo;) {
      const Factor& fc = factors_[f];
      const Complex outer = prefix[f - lo] * suffix;
      if (fc.exp == 1) {  // d/dx of x^1 is 1: most factors in practice
        mdval[f] = outer;
        suffix *= pow[fc.pidx + 1];
      } else {
        mdval[f] = outer * (static_cast<double>(fc.exp) * pow[fc.pidx + fc.exp - 1]);
        suffix *= pow[fc.pidx + fc.exp];
      }
    }
  }
}

void CompiledSystem::evaluate(const CVector& x, EvalWorkspace& ws, CVector& values) const {
  prepare(ws);
  fill_powers(x, ws);
  eval_monomials(ws);
  const Complex* mval = ws.mono_val_.data();

  values.resize(neqs_);
  for (std::size_t i = 0; i < neqs_; ++i) {
    Complex acc{};
    for (std::size_t k = eq_offset_[i]; k < eq_offset_[i + 1]; ++k) {
      acc += terms_[k].coeff * mval[terms_[k].mono];
    }
    values[i] = acc;
  }
}

void CompiledSystem::evaluate_with_jacobian(const CVector& x, EvalWorkspace& ws, CVector& values,
                                            CMatrix& jacobian) const {
  prepare(ws);
  fill_powers(x, ws);
  eval_monomials_with_partials(ws);
  const Complex* mval = ws.mono_val_.data();
  const Complex* mdval = ws.mono_dval_.data();

  values.resize(neqs_);
  jacobian.resize(neqs_, nvars_);
  for (std::size_t i = 0; i < neqs_; ++i) {
    Complex acc{};
    Complex* jrow = jacobian.data() + i * nvars_;
    for (std::size_t c = 0; c < nvars_; ++c) jrow[c] = Complex{};
    for (std::size_t k = eq_offset_[i]; k < eq_offset_[i + 1]; ++k) {
      const TermRef& t = terms_[k];
      acc += t.coeff * mval[t.mono];
      for (std::size_t f = mono_offset_[t.mono]; f < mono_offset_[t.mono + 1]; ++f) {
        jrow[factors_[f].var] += t.coeff * mdval[f];
      }
    }
    values[i] = acc;
  }
}

}  // namespace pph::eval
