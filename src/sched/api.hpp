#pragma once
// The scheduler front door (DESIGN.md sections 7 and 10).  Every parallel
// run in this library is a sched::Session composed from three orthogonal
// axes -- a JobSource (where jobs come from), a Policy (how jobs reach
// slaves), and a ResultSink (where finished jobs go) -- and this header
// owns the types a caller composes a session FROM: the Policy enum, the
// fluent SessionOptions, and the SessionStats / ServiceStats a run hands
// back.  Include "sched/session.hpp" for Session itself and the built-in
// sources and sinks, "sched/stream_source.hpp" + "sched/arrival.hpp" for
// the streamed solve-service mode, "sched/result_store.hpp" for the
// on-disk store, "sched/pieri_scheduler.hpp" for the Pieri tree source.
//
//   // batch drain:
//   auto report = sched::run_paths(workload, ranks,
//       sched::SessionOptions().with_policy(sched::Policy::kBatchSteal)
//                              .with_batch(/*factor=*/2.0, /*min_batch=*/4));
//   // solve service (DESIGN.md section 10):
//   sched::StreamJobSource stream(inner, trace, stream_opts);
//   sched::Session session(stream, sink,
//       sched::SessionOptions().with_serve_deadline(10.0));
//   auto stats = session.serve(ranks);  // stats.service has the queue metrics
//
// The legacy entry points (run_static, run_dynamic, run_batch,
// run_parallel_pieri) are deprecated wrappers over these types; compose a
// Session (or call the run_paths / run_pieri / run_with_store facades).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mp/fault.hpp"
#include "util/stats.hpp"

namespace pph::sched {

/// Dispatch policy of a session.  The cluster simulator understands the
/// same enum (simcluster::simulate, simcluster::simulate_service), so a
/// simulated and a real run of one experiment are selected by one type.
enum class Policy {
  kFCFS,        // per-job master/slave dispatch (paper section II-A "dynamic")
  kStatic,      // pre-assigned shares, no dispatch (paper section II-A)
  kBatchSteal,  // guided batches + brokered stealing (DESIGN.md section 2)
};

const char* policy_name(Policy policy);

/// How the static policy pre-assigns job positions to ranks.
enum class StaticAssignment {
  kBlock,   // contiguous chunks: rank r gets [r*N/P, (r+1)*N/P)
  kCyclic,  // interleaved: rank r gets r, r+P, r+2P, ...
};

/// What a bounded admission queue does with an arrival that finds it full
/// (DESIGN.md section 10, "Backpressure").
enum class AdmissionPolicy {
  kDrop,   // reject the request (counted in ServiceStats::dropped)
  kBlock,  // hold it at the door until the queue drains (flow control)
};

const char* admission_policy_name(AdmissionPolicy policy);

/// Queueing metrics of a serve() run (DESIGN.md section 10, "Metrics").
/// The simulator twin (simcluster::simulate_service) fills the same struct
/// so a modeled and a measured service are compared field by field.
struct ServiceStats {
  std::size_t arrivals = 0;   // requests whose modeled arrival time was reached
  std::size_t admitted = 0;   // entered the admission queue
  std::size_t dropped = 0;    // rejected by AdmissionPolicy::kDrop backpressure
  std::size_t shed = 0;       // deadline/brownout shed: never arrived, or at the door
  std::size_t completed = 0;  // admitted jobs whose results reached the sink
  /// Admitted requests whose per-request deadline expired before a genuine
  /// result could be delivered: synthesized kDeadlineExpired results
  /// (DESIGN.md section 13).  Disjoint from completed.
  std::size_t expired = 0;
  /// Admission-queue depth (admitted, waiting for dispatch): high-water
  /// mark and time-weighted average over the serving window.
  std::size_t max_queue_depth = 0;
  double avg_queue_depth = 0.0;
  /// Per-job sojourn time, admission -> result accepted on the master.
  util::PercentileAccumulator sojourn;

  /// Admitted jobs reported as failed by the supervisor's attempt ledger
  /// (DESIGN.md section 11), disjoint from completed.  Zero in a healthy
  /// service.
  std::size_t quarantined = 0;

  /// Zero-loss drain invariant of a graceful shutdown: every admitted job
  /// ended in exactly one terminal bucket that reached the sink.
  bool drained() const { return completed + expired + quarantined == admitted; }

  /// Request-conservation identity (DESIGN.md section 13): every request
  /// that ever existed is in exactly one terminal bucket.  On a drained
  /// service this equals the request count (arrivals plus never-arrived
  /// requests shed at close); bench_solve_service and the CI reliability
  /// smoke exit non-zero when it does not.
  std::size_t terminal_requests() const {
    return completed + expired + shed + dropped + quarantined;
  }
};

/// Per-request budget (DESIGN.md section 13): attached to every request at
/// admission by the serve loop when ReliabilityOptions::enabled.  The
/// deadline is measured from the request's admission instant; attempts
/// count every consumed try (first dispatch, death re-queues, failure
/// retries) against ONE ledger shared with the supervisor's quarantine.
struct RequestBudget {
  /// Seconds from admission until the request is shed as a synthesized
  /// kDeadlineExpired result (0 expires at admission; nullopt = no deadline).
  std::optional<double> deadline_seconds;
  /// Total attempts a request may consume (1 = never retried).
  std::size_t max_attempts = 1;
  /// Exponential backoff before re-admitting a failed attempt:
  /// base * multiplier^(attempt-1), +/- jitter_fraction of itself (seeded,
  /// deterministic: see sched::backoff_seconds).
  double backoff_base_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.0;
};

/// Overload-brownout controller knobs (DESIGN.md section 13).  The
/// controller watches the admission-queue depth (and optionally a sojourn
/// EWMA) and walks a degradation ladder: 1 = no speculation, 2 = no
/// endgame/dd-refine on dispatched jobs, 3 = shed arrivals at the door.
/// Hysteresis: escalation at the high watermark is immediate; recovery
/// needs the depth back under low_fraction of that level's watermark AND
/// min_dwell_seconds since the last transition.
struct OverloadOptions {
  bool enabled = false;
  /// Queue-depth high watermarks of levels 1..3 (0 disables a level).
  std::size_t depth_no_speculation = 0;
  std::size_t depth_no_endgame = 0;
  std::size_t depth_shed = 0;
  /// Recovery watermark as a fraction of the escalation watermark.
  double low_fraction = 0.5;
  /// Minimum seconds between de-escalations (0 = none; the fixed-trace
  /// simulator parity tests run with 0 so transitions are time-free).
  double min_dwell_seconds = 0.0;
  /// Optional sojourn-EWMA escalation signal (seconds; infinity = off).
  double sojourn_high_seconds = std::numeric_limits<double>::infinity();
  double sojourn_ewma_alpha = 0.2;

  OverloadOptions& with_depths(std::size_t no_speculation, std::size_t no_endgame,
                               std::size_t shed) {
    enabled = true;
    depth_no_speculation = no_speculation;
    depth_no_endgame = no_endgame;
    depth_shed = shed;
    return *this;
  }
  OverloadOptions& with_hysteresis(double fraction, double dwell_seconds) {
    low_fraction = fraction;
    min_dwell_seconds = dwell_seconds;
    return *this;
  }
  OverloadOptions& with_sojourn_high(double seconds, double alpha = 0.2) {
    sojourn_high_seconds = seconds;
    sojourn_ewma_alpha = alpha;
    return *this;
  }
};

/// The request reliability layer (DESIGN.md section 13), serve() only: per
/// request deadlines + retry budgets, cooperative cancellation of expired
/// in-flight work, and overload brownout.  Off by default -- a disabled
/// layer leaves every existing suite bit-identical.
struct ReliabilityOptions {
  bool enabled = false;
  RequestBudget budget;
  /// Seed of the deterministic backoff jitter (hashed with request id and
  /// attempt number, so runtime and simulator draw identical waits).
  std::uint64_t jitter_seed = 0;
  OverloadOptions overload;

  ReliabilityOptions& with_deadline(double seconds) {
    enabled = true;
    budget.deadline_seconds = seconds;
    return *this;
  }
  ReliabilityOptions& with_attempts(std::size_t attempts, double backoff_base,
                                    double multiplier = 2.0, double jitter = 0.0) {
    enabled = true;
    budget.max_attempts = attempts;
    budget.backoff_base_seconds = backoff_base;
    budget.backoff_multiplier = multiplier;
    budget.jitter_fraction = jitter;
    return *this;
  }
  ReliabilityOptions& with_jitter_seed(std::uint64_t seed) {
    jitter_seed = seed;
    return *this;
  }
  ReliabilityOptions& with_overload(OverloadOptions options) {
    enabled = true;
    overload = options;
    overload.enabled = true;
    return *this;
  }
};

/// Reliability counters of one serve() run (DESIGN.md section 13); the
/// simulator twin fills the same struct on fixed traces.
struct ReliabilityStats {
  std::size_t cancelled = 0;            // kTagCancel sent to in-flight owners
  std::size_t retried = 0;              // failed attempts re-admitted after backoff
  std::size_t brownout_transitions = 0; // level changes recorded by the controller
  std::size_t max_brownout_level = 0;   // deepest degradation level reached
  std::size_t brownout_shed = 0;        // arrivals shed at the door by level 3
  /// Seconds each retry waited before re-admission (seeded jitter included).
  util::PercentileAccumulator backoff_wait;
};

/// Supervisor knobs (DESIGN.md section 11).  Defaults are sized for the
/// in-process runtime: heartbeats every 20 ms, a slave is suspect after 25
/// missed beats (0.5 s of silence) and dead at twice that.  All thresholds
/// scale with the measured per-job EWMA so slow (sanitizer) builds do not
/// produce false positives on busy slaves.
struct SupervisorOptions {
  /// Master-side supervision: heartbeat tracking, silent-death/hang
  /// detection, speculative re-dispatch, poison-job quarantine.  Off by
  /// default -- the classic drain loop stays blocking-recv and byte-for-byte
  /// on its hot path.
  bool enabled = false;
  /// Idle slaves beacon at this cadence; the master's supervision tick (the
  /// recv_for timeout) uses the same period.
  double heartbeat_seconds = 0.02;
  /// An idle slave silent for miss_budget * heartbeat_seconds is suspect.
  std::size_t miss_budget = 25;
  /// ... and declared dead after death_multiplier times the suspect window.
  double death_multiplier = 2.0;
  /// EWMA smoothing of the per-job service time observed at the master.
  double ewma_alpha = 0.2;
  /// A busy slave (jobs in flight) gets hang_factor * EWMA of silence
  /// before suspicion instead of the idle window, whichever is larger.
  double hang_factor = 16.0;
  /// Straggler mitigation: re-dispatch a copy of a job older than
  /// speculation_factor * EWMA to an idle slave (first result wins).
  bool speculate = true;
  double speculation_factor = 8.0;
  /// Speculation needs a trustworthy EWMA first.
  std::size_t speculation_min_samples = 8;
  /// Poison-job quarantine: a job whose owner died this many times is
  /// reported as a failed PathResult instead of being re-queued forever.
  std::size_t max_attempts = 3;

  SupervisorOptions& with_heartbeat(double seconds) {
    heartbeat_seconds = seconds;
    return *this;
  }
  SupervisorOptions& with_miss_budget(std::size_t beats, double multiplier = 2.0) {
    miss_budget = beats;
    death_multiplier = multiplier;
    return *this;
  }
  SupervisorOptions& with_hang_factor(double factor) {
    hang_factor = factor;
    return *this;
  }
  SupervisorOptions& with_speculation(double factor, std::size_t min_samples = 8) {
    speculate = true;
    speculation_factor = factor;
    speculation_min_samples = min_samples;
    return *this;
  }
  SupervisorOptions& without_speculation() {
    speculate = false;
    return *this;
  }
  SupervisorOptions& with_max_attempts(std::size_t attempts) {
    max_attempts = attempts;
    return *this;
  }
  SupervisorOptions& with_ewma_alpha(double alpha) {
    ewma_alpha = alpha;
    return *this;
  }
};

/// Supervision counters of one session run (all-zero when the supervisor
/// is disabled and no fault plan is armed).
struct SupervisionStats {
  std::size_t heartbeats = 0;             // beacons received by the master
  std::size_t suspects = 0;               // suspect transitions
  std::size_t deaths_detected = 0;        // declared dead by silence
  std::size_t deaths_announced = 0;       // cooperative kTagDead deaths
  std::size_t requeued_jobs = 0;          // re-queued off dead slaves
  std::size_t speculative_dispatches = 0; // straggler copies handed out
  std::size_t speculation_wins = 0;       // a copy's result arrived first
  std::size_t quarantined = 0;            // jobs failed by the attempt ledger
  double ewma_job_seconds = 0.0;          // final per-job EWMA on the master
};

/// Compact single-line JSON renderings used by the PPH_CHAOS_REPORT rows
/// and the bench JSON trajectories (one format, not two; stats_json.cpp).
std::string to_json(const ServiceStats& s);
std::string to_json(const SupervisionStats& s);
std::string to_json(const ReliabilityStats& s);

struct SessionStats {
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;  // tracking time per rank
  std::size_t dispatches = 0;             // master job/batch hand-outs
  std::size_t steals = 0;                 // successful slave-to-slave steals
  std::size_t accepted = 0;               // results delivered to the sink
  bool stopped_early = false;             // stop_after_results fired
  /// Filled by Session::serve() only (all-zero for batch runs).
  ServiceStats service;
  /// Supervision counters (DESIGN.md section 11).
  SupervisionStats supervision;
  /// Request-reliability counters (DESIGN.md section 13; serve() only).
  ReliabilityStats reliability;
};

struct SessionOptions {
  Policy policy = Policy::kFCFS;
  /// Static only: how pre-assigned positions interleave across ranks.
  StaticAssignment assignment = StaticAssignment::kCyclic;
  /// FCFS only: jobs handed to each slave up front (the paper uses one).
  std::size_t initial_jobs_per_slave = 1;
  /// BatchSteal only: guided shrink rate (a refill takes
  /// remaining/(factor*slaves) jobs) and the batch size floor.
  double factor = 2.0;
  std::size_t min_batch = 1;
  /// Simulated per-message latency in seconds (0 for none), charged on the
  /// sender before each send; surfaces communication overhead in-process.
  double injected_latency = 0.0;
  /// Fail-injection hook for tests: the slave at kill_slave_rank "dies"
  /// after completing this many jobs (nullopt disables); the master
  /// re-queues everything the dead slave still owned.
  std::optional<std::size_t> kill_slave_after_jobs;
  int kill_slave_rank = -1;
  /// Checkpoint control (DESIGN.md section 7 "Resume protocol"): once this
  /// many results have been accepted the master broadcasts kTagAbort,
  /// collects the slaves' completed-but-unreported results (kTagAbortFlush)
  /// into the sink, and returns early with stopped_early set.  A session
  /// whose sink is a result store can then be resumed.  nullopt runs to
  /// completion.  Not supported by the static policy (no master dispatch).
  std::optional<std::size_t> stop_after_results;
  /// serve() only: close the stream after this many seconds of serving --
  /// requests not yet arrived are shed, everything admitted or in flight
  /// drains to the sink (graceful shutdown, DESIGN.md section 10).
  /// nullopt serves until the arrival schedule is exhausted and drained.
  std::optional<double> serve_deadline_seconds;
  /// Master-side supervision (DESIGN.md section 11): heartbeat liveness
  /// tracking, suspect -> dead declaration for silent/hung slaves,
  /// speculative re-dispatch of stragglers, poison-job quarantine.
  /// Requires a master, so not supported by the static policy.
  SupervisorOptions supervisor;
  /// Request reliability (DESIGN.md section 13): per-request budgets,
  /// cooperative cancellation, retry-with-backoff, overload brownout.
  /// serve() only -- budgets attach at the stream's admission gate.
  ReliabilityOptions reliability;
  /// Deterministic fault injection (mp/fault.hpp): the plan is compiled
  /// into a FaultInjector consulted by the slave loops at job boundaries
  /// and by Comm::send.  Uncooperative faults (silent death, hang) require
  /// the supervisor -- nobody else would notice.  The legacy kill switch
  /// above is folded into this plan as one kDieAnnounced action.
  mp::FaultPlan fault_plan;
  /// Name used in validation error messages (legacy wrappers pass theirs).
  const char* who = "sched::Session";

  // Fluent setters, chainable on an rvalue:
  //   SessionOptions().with_policy(Policy::kBatchSteal).with_batch(2.0, 4)
  SessionOptions& with_policy(Policy p) {
    policy = p;
    return *this;
  }
  SessionOptions& with_assignment(StaticAssignment a) {
    assignment = a;
    return *this;
  }
  SessionOptions& with_initial_jobs(std::size_t per_slave) {
    initial_jobs_per_slave = per_slave;
    return *this;
  }
  SessionOptions& with_batch(double shrink_factor, std::size_t batch_floor = 1) {
    factor = shrink_factor;
    min_batch = batch_floor;
    return *this;
  }
  SessionOptions& with_latency(double seconds) {
    injected_latency = seconds;
    return *this;
  }
  SessionOptions& with_kill_after(std::size_t jobs, int rank) {
    kill_slave_after_jobs = jobs;
    kill_slave_rank = rank;
    return *this;
  }
  SessionOptions& with_stop_after(std::size_t results) {
    stop_after_results = results;
    return *this;
  }
  SessionOptions& with_serve_deadline(double seconds) {
    serve_deadline_seconds = seconds;
    return *this;
  }
  /// Enable supervision, optionally with tuned knobs (`enabled` is forced
  /// on -- passing options is opting in).
  SessionOptions& with_supervision(SupervisorOptions options = {}) {
    supervisor = options;
    supervisor.enabled = true;
    return *this;
  }
  /// Enable the request reliability layer (`enabled` is forced on --
  /// passing options is opting in).
  SessionOptions& with_reliability(ReliabilityOptions options) {
    reliability = options;
    reliability.enabled = true;
    return *this;
  }
  SessionOptions& with_fault_plan(mp::FaultPlan plan) {
    fault_plan = std::move(plan);
    return *this;
  }
  SessionOptions& with_name(const char* name) {
    who = name;
    return *this;
  }
};

/// Admission-queue knobs of a StreamJobSource (DESIGN.md section 10).
struct StreamOptions {
  /// Bound on the admission queue depth; 0 = unbounded (never drop/block).
  std::size_t queue_capacity = 0;
  AdmissionPolicy on_full = AdmissionPolicy::kDrop;

  StreamOptions& with_capacity(std::size_t capacity, AdmissionPolicy policy) {
    queue_capacity = capacity;
    on_full = policy;
    return *this;
  }
};

}  // namespace pph::sched
