#include "sched/result_store.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace pph::sched {

namespace {

// Version 2 added the rescue-provenance fields ("ls"/"ra"/"rs"); a v1
// store fails the header comparison and restarts cleanly, re-tracking its
// jobs deterministically.
constexpr const char kHeaderLine[] = "{\"pph_result_store\":{\"version\":2}}";
constexpr const char kFooterPrefix[] = "{\"footer\":";

// ---- strict positional parsing helpers ------------------------------------

void expect(const std::string& line, std::size_t& pos, const char* literal) {
  const std::size_t n = std::char_traits<char>::length(literal);
  if (line.compare(pos, n, literal) != 0) {
    throw std::invalid_argument("result store: malformed record line");
  }
  pos += n;
}

std::uint64_t parse_uint(const std::string& line, std::size_t& pos) {
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') {
    throw std::invalid_argument("result store: expected digit");
  }
  std::uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace

std::string store_record_line(const TrackedPath& tp) {
  std::string line;
  line.reserve(160 + 32 * tp.result.x.size());
  line += "{\"i\":";
  line += std::to_string(tp.index);
  line += ",\"w\":";
  line += std::to_string(tp.worker);
  line += ",\"sec\":\"";
  mp::append_double_bits(line, tp.seconds);
  line += "\",\"st\":";
  line += std::to_string(static_cast<int>(tp.result.status));
  line += ",\"t\":\"";
  mp::append_double_bits(line, tp.result.t_reached);
  line += "\",\"res\":\"";
  mp::append_double_bits(line, tp.result.residual);
  line += "\",\"stp\":";
  line += std::to_string(tp.result.steps);
  line += ",\"rej\":";
  line += std::to_string(tp.result.rejections);
  line += ",\"nwt\":";
  line += std::to_string(tp.result.newton_iterations);
  line += ",\"ls\":\"";
  mp::append_double_bits(line, tp.result.last_step);
  line += "\",\"ra\":";
  line += std::to_string(tp.result.rescue_attempts);
  line += ",\"rs\":";
  line += std::to_string(tp.result.rescued ? 1 : 0);
  line += ",\"x\":\"";
  for (const auto& c : tp.result.x) {
    mp::append_double_bits(line, c.real());
    mp::append_double_bits(line, c.imag());
  }
  line += "\"}";
  return line;
}

TrackedPath parse_store_record(const std::string& line) {
  TrackedPath tp;
  std::size_t pos = 0;
  expect(line, pos, "{\"i\":");
  tp.index = static_cast<std::size_t>(parse_uint(line, pos));
  expect(line, pos, ",\"w\":");
  tp.worker = static_cast<int>(parse_uint(line, pos));
  expect(line, pos, ",\"sec\":\"");
  tp.seconds = mp::parse_double_bits(line, pos);
  expect(line, pos, "\",\"st\":");
  const auto status = parse_uint(line, pos);
  if (status > static_cast<std::uint64_t>(PathStatus::kFailed)) {
    throw std::invalid_argument("result store: unknown path status");
  }
  tp.result.status = static_cast<PathStatus>(status);
  expect(line, pos, ",\"t\":\"");
  tp.result.t_reached = mp::parse_double_bits(line, pos);
  expect(line, pos, "\",\"res\":\"");
  tp.result.residual = mp::parse_double_bits(line, pos);
  expect(line, pos, "\",\"stp\":");
  tp.result.steps = static_cast<std::size_t>(parse_uint(line, pos));
  expect(line, pos, ",\"rej\":");
  tp.result.rejections = static_cast<std::size_t>(parse_uint(line, pos));
  expect(line, pos, ",\"nwt\":");
  tp.result.newton_iterations = static_cast<std::size_t>(parse_uint(line, pos));
  expect(line, pos, ",\"ls\":\"");
  tp.result.last_step = mp::parse_double_bits(line, pos);
  expect(line, pos, "\",\"ra\":");
  tp.result.rescue_attempts = static_cast<std::uint32_t>(parse_uint(line, pos));
  expect(line, pos, ",\"rs\":");
  const auto rescued = parse_uint(line, pos);
  if (rescued > 1) throw std::invalid_argument("result store: rescued flag must be 0/1");
  tp.result.rescued = rescued == 1;
  expect(line, pos, ",\"x\":\"");
  while (pos < line.size() && line[pos] != '"') {
    const double re = mp::parse_double_bits(line, pos);
    const double im = mp::parse_double_bits(line, pos);
    tp.result.x.emplace_back(re, im);
  }
  expect(line, pos, "\"}");
  if (pos != line.size()) {
    throw std::invalid_argument("result store: trailing bytes on record line");
  }
  return tp;
}

StoreLoad load_result_store(const std::string& path) {
  StoreLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return load;  // missing file: empty and clean

  std::string line;
  // Header.
  if (!std::getline(in, line) || line != kHeaderLine || in.eof()) {
    // Unreadable header (or a file cut mid-header): start the store over.
    load.truncated = in.good() || !line.empty();
    return load;
  }
  std::uint64_t offset = static_cast<std::uint64_t>(line.size()) + 1;
  load.append_offset = offset;

  std::unordered_set<JobId> seen;
  while (std::getline(in, line)) {
    const std::uint64_t line_start = offset;
    const bool newline_terminated = !in.eof();
    if (!newline_terminated) {
      // A killed writer leaves at most one partial line at the tail --
      // possibly a half-written footer; drop it either way (a dropped
      // record's job re-tracks deterministically on resume).
      load.truncated = true;
      load.append_offset = line_start;
      return load;
    }
    if (line.compare(0, std::char_traits<char>::length(kFooterPrefix), kFooterPrefix) == 0) {
      // Clean close: the footer is the last meaningful line; a resuming
      // writer overwrites it so the footer stays last.
      load.had_footer = true;
      load.append_offset = line_start;
      return load;
    }
    TrackedPath tp;
    try {
      tp = parse_store_record(line);
    } catch (const std::invalid_argument&) {
      load.truncated = true;
      load.append_offset = line_start;
      return load;
    }
    offset += static_cast<std::uint64_t>(line.size()) + 1;
    if (seen.insert(tp.index).second) {
      load.offsets.emplace_back(tp.index, line_start);
      load.records.push_back(std::move(tp));
    }
    load.append_offset = offset;
  }
  return load;
}

// ---------------------------------------------------------------------------
// JsonlStoreSink
// ---------------------------------------------------------------------------

JsonlStoreSink::JsonlStoreSink(std::string path, bool resume) : path_(std::move(path)) {
  bool fresh = true;
  if (resume) {
    StoreLoad load = load_result_store(path_);
    restored_ = std::move(load.records);
    offsets_ = std::move(load.offsets);
    offset_ = load.append_offset;
    std::error_code ec;
    if (std::filesystem::exists(path_, ec) && offset_ > 0) {
      // Cut the footer / corrupt tail so appended records keep the stream
      // well-formed (and the footer, when rewritten, stays last).
      std::filesystem::resize_file(path_, offset_, ec);
      if (ec) throw std::runtime_error("JsonlStoreSink: cannot truncate " + path_);
      fresh = false;
    }
  }
  file_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlStoreSink: cannot open " + path_);
  }
  if (fresh) {
    restored_.clear();
    offsets_.clear();
    std::fputs(kHeaderLine, file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    offset_ = std::char_traits<char>::length(kHeaderLine) + 1;
  }
}

JsonlStoreSink::~JsonlStoreSink() {
  // Close without a footer when finish() never ran (the store stays
  // resumable through the tail-scan path).
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlStoreSink::accept(const TrackedPath& tp) {
  if (file_ == nullptr) throw std::logic_error("JsonlStoreSink: accept after finish");
  const std::string line = store_record_line(tp);
  offsets_.emplace_back(tp.index, offset_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Flush per record: this is the checkpoint property -- a killed session
  // loses at most the line being written.
  std::fflush(file_);
  offset_ += static_cast<std::uint64_t>(line.size()) + 1;
  ++appended_;
}

void JsonlStoreSink::finish() {
  if (finished_ || file_ == nullptr) return;
  std::string footer = "{\"footer\":{\"records\":";
  footer += std::to_string(offsets_.size());
  footer += ",\"offsets\":[";
  for (std::size_t k = 0; k < offsets_.size(); ++k) {
    if (k != 0) footer += ',';
    footer += '[';
    footer += std::to_string(offsets_[k].first);
    footer += ',';
    footer += std::to_string(offsets_[k].second);
    footer += ']';
  }
  footer += "]}}";
  std::fwrite(footer.data(), 1, footer.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
}

std::unordered_set<JobId> JsonlStoreSink::restored_ids() const {
  std::unordered_set<JobId> ids;
  ids.reserve(restored_.size());
  for (const auto& tp : restored_) ids.insert(tp.index);
  return ids;
}

// ---------------------------------------------------------------------------
// run_with_store facade
// ---------------------------------------------------------------------------

StoreRunResult run_with_store(const PathWorkload& workload, int ranks,
                              const std::string& store_path, const SessionOptions& opts) {
  JsonlStoreSink store(store_path, /*resume=*/true);
  VectorJobSource source(workload);
  source.skip_completed(store.restored_ids());

  InMemoryReportSink mem;
  for (const auto& tp : store.restored()) mem.accept(tp);
  FanoutSink fan = tee(mem, store);

  Session session(source, fan, opts);
  StoreRunResult out;
  out.restored = store.restored().size();
  out.stats = session.run(ranks);
  out.report = mem.report(out.stats);
  out.completed = store.stored_count() >= workload.size();
  return out;
}

}  // namespace pph::sched
