#include "sched/result_store.hpp"

#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "sched/api.hpp"
#include "store/store_reader.hpp"

namespace pph::sched {

std::string store_record_line(const TrackedPath& tp) {
  std::string line;
  store::append_record_line(line, tp);
  return line;
}

TrackedPath parse_store_record(const std::string& line) {
  return store::parse_record(line);
}

StoreLoad load_result_store(const std::string& path) {
  // One parser for the whole project: materialize through the lazy reader.
  const store::StoreReader reader(path);
  StoreLoad load;
  load.version = reader.version();
  load.meta = reader.meta();
  load.append_offset = reader.append_offset();
  load.had_footer = reader.footer_seen();
  load.truncated = reader.truncated();
  load.records.reserve(reader.size());
  load.offsets.reserve(reader.size());
  reader.for_each([&](const store::RecordView& view, std::size_t i) {
    load.records.push_back(view.full());
    load.offsets.emplace_back(reader.id_at(i), reader.offset_at(i));
  });
  return load;
}

// ---------------------------------------------------------------------------
// JsonlStoreSink
// ---------------------------------------------------------------------------

JsonlStoreSink::JsonlStoreSink(std::string path, bool resume, store::StoreMeta meta)
    : path_(std::move(path)) {
  bool fresh = true;
  if (resume) {
    StoreLoad load = load_result_store(path_);
    // Keep the on-disk format version: appending v3 records to a v2 store
    // would corrupt it.  A v1 store (no rescue provenance) restarts fresh,
    // as it always has; so does a file with no readable header.
    if (load.version >= 2 && load.append_offset > 0) {
      version_ = load.version;
      restored_ = std::move(load.records);
      offsets_ = std::move(load.offsets);
      offset_ = load.append_offset;
      std::error_code ec;
      // Cut the footer / corrupt tail so appended records keep the stream
      // well-formed (and the footer, when rewritten, stays last).
      std::filesystem::resize_file(path_, offset_, ec);
      if (ec) throw std::runtime_error("JsonlStoreSink: cannot truncate " + path_);
      fresh = false;
    }
  }
  file_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlStoreSink: cannot open " + path_);
  }
  if (fresh) {
    version_ = store::kFormatVersion;
    restored_.clear();
    offsets_.clear();
    const std::string header = store::header_line(meta);
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    offset_ = static_cast<std::uint64_t>(header.size()) + 1;
  }
}

JsonlStoreSink::~JsonlStoreSink() {
  // Close without a footer when finish() never ran (the store stays
  // resumable through the tail-scan path).
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlStoreSink::accept(const TrackedPath& tp) {
  if (file_ == nullptr) throw std::logic_error("JsonlStoreSink: accept after finish");
  std::string line;
  store::append_record_line(line, tp, version_);
  offsets_.emplace_back(tp.index, offset_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Flush per record: this is the checkpoint property -- a killed session
  // loses at most the line being written.
  std::fflush(file_);
  offset_ += static_cast<std::uint64_t>(line.size()) + 1;
  ++appended_;
}

void JsonlStoreSink::finish() {
  if (finished_ || file_ == nullptr) return;
  const std::string footer = store::footer_line(offsets_);
  std::fwrite(footer.data(), 1, footer.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
}

std::unordered_set<JobId> JsonlStoreSink::restored_ids() const {
  std::unordered_set<JobId> ids;
  ids.reserve(restored_.size());
  for (const auto& tp : restored_) ids.insert(tp.index);
  return ids;
}

// ---------------------------------------------------------------------------
// run_with_store facade
// ---------------------------------------------------------------------------

StoreRunResult run_with_store(const PathWorkload& workload, int ranks,
                              const std::string& store_path, const SessionOptions& opts) {
  store::StoreMeta meta;
  meta.policy = policy_name(opts.policy);
  meta.ranks = ranks;
  JsonlStoreSink store(store_path, /*resume=*/true, meta);
  VectorJobSource source(workload);
  source.skip_completed(store.restored_ids());

  InMemoryReportSink mem;
  for (const auto& tp : store.restored()) mem.accept(tp);
  FanoutSink fan = tee(mem, store);

  Session session(source, fan, opts);
  StoreRunResult out;
  out.restored = store.restored().size();
  out.stats = session.run(ranks);
  out.report = mem.report(out.stats);
  out.completed = store.stored_count() >= workload.size();
  return out;
}

}  // namespace pph::sched
