#pragma once
// Request reliability layer (DESIGN.md section 13): the mechanisms behind
// ReliabilityOptions -- per-request deadline/retry bookkeeping for the
// serve loop, the deterministic backoff schedule shared by runtime and
// simulator, and the overload-brownout controller.
//
// The serve loop (sched/session.cpp) owns a ReliabilityState per session:
// deadlines stamp at the stream's admission gate, a min-heap orders them,
// and a retry heap holds failed requests waiting out their backoff.  Both
// heaps are lazy -- completed requests leave stale entries that pop as
// no-ops -- so every operation is O(log n) and the serve loop's sweep is
// O(events), not O(requests).
//
// The OverloadController is deliberately time-free in its level logic
// (depth watermarks; the optional dwell guard is the only clock input):
// on a fixed trace the runtime and simcluster::simulate_service observe
// the same depth sequence and therefore log bit-equal transition lists,
// which is what the twin tests pin.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/api.hpp"

namespace pph::sched {

/// Degradation ladder of the overload brownout (DESIGN.md section 13).
/// Ordered: every level includes the degradations of the ones before it.
enum class BrownoutLevel : int {
  kHealthy = 0,
  kNoSpeculation = 1,  // stop straggler re-dispatch (copies burn capacity)
  kNoEndgame = 2,      // dispatch jobs with endgame + dd-refine disabled
  kShedding = 3,       // reject arrivals at the door
};

const char* brownout_level_name(BrownoutLevel level);

/// One recorded level change.
struct BrownoutTransition {
  double seconds = 0.0;          // controller clock at the change
  BrownoutLevel from = BrownoutLevel::kHealthy;
  BrownoutLevel to = BrownoutLevel::kHealthy;
  std::size_t queue_depth = 0;   // the depth that triggered it
};

/// Hysteresis-guarded degradation ladder over the admission-queue depth
/// (and an optional sojourn EWMA).  observe() is fed every depth change
/// (admit, dispatch, re-admission) by StreamJobSource and by the simulator
/// twin at the mirrored event points.
class OverloadController {
 public:
  explicit OverloadController(OverloadOptions opts);

  BrownoutLevel level() const { return level_; }
  bool at_least(BrownoutLevel l) const {
    return static_cast<int>(level_) >= static_cast<int>(l);
  }

  /// Feed one queue-depth observation at controller-clock `now`.
  /// Escalates immediately past any high watermark the depth crosses;
  /// de-escalates one level at a time once the depth is back under
  /// low_fraction of the level's watermark and the dwell has elapsed.
  void observe(double now, std::size_t queue_depth);

  /// Feed one completed-request sojourn sample into the EWMA escalation
  /// signal (no-op when sojourn_high_seconds is infinite).
  void note_sojourn(double seconds);

  const std::vector<BrownoutTransition>& transitions() const { return transitions_; }
  std::size_t max_level_reached() const { return max_level_; }
  double sojourn_ewma() const { return ewma_; }

 private:
  std::size_t up_threshold(int level) const;
  bool wants_level(int level, std::size_t depth) const;
  void step_to(double now, int level, std::size_t depth);

  OverloadOptions opts_;
  BrownoutLevel level_ = BrownoutLevel::kHealthy;
  std::size_t max_level_ = 0;
  double ewma_ = 0.0;
  bool ewma_seeded_ = false;
  double last_change_ = 0.0;
  std::vector<BrownoutTransition> transitions_;
};

/// Deterministic backoff before re-admitting attempt `attempt + 1` of
/// request `id` (attempt counts consumed tries, so the first retry passes
/// attempt = 1): base * multiplier^(attempt-1), jittered by a fraction
/// drawn from Prng(mix(seed, id, attempt)) -- the runtime and the
/// simulator call this with identical arguments and get identical waits.
double backoff_seconds(const RequestBudget& budget, std::uint64_t seed, std::uint64_t id,
                       std::size_t attempt);

/// Per-session reliability bookkeeping, owned by the serve loop.  All
/// times are stream-clock seconds (StreamJobSource::now()).
class ReliabilityState {
 public:
  explicit ReliabilityState(const ReliabilityOptions& opts) : opts_(opts) {}

  const ReliabilityOptions& options() const { return opts_; }

  /// A request was admitted: stamp its deadline (no-op without one).
  void on_admit(std::uint64_t id, double now);

  /// A request reached a terminal bucket (completed / quarantined /
  /// expired): drop its deadline so stale heap entries pop as no-ops.
  void on_terminal(std::uint64_t id);

  /// The request's stamped deadline, if still live.
  std::optional<double> deadline_of(std::uint64_t id) const;

  /// Queue a failed request for re-admission at `eligible_at`.
  void schedule_retry(std::uint64_t id, double eligible_at);

  /// Next request whose backoff has elapsed (nullopt when none is due).
  std::optional<std::uint64_t> pop_due_retry(double now);

  /// Next request whose deadline has passed (nullopt when none is due).
  /// Terminal requests are skipped; the caller decides whether the id is
  /// in-queue, in-flight, or waiting out a backoff.
  std::optional<std::uint64_t> pop_due_deadline(double now);

  /// Remove a not-yet-due retry (its deadline expired first).  True if the
  /// request was waiting out a backoff.
  bool cancel_retry(std::uint64_t id);

  /// Requests the serve loop still owes a terminal result for but which
  /// live in neither the stream's queue nor the owner map (i.e. waiting
  /// out a backoff): they must keep the session alive.
  std::size_t pending_retries() const { return retry_pending_.size(); }

  /// Seconds until the next timed reliability event (deadline expiry or
  /// retry eligibility); +inf when none -- the serve loop folds this into
  /// its sleep bound exactly like the next modeled arrival.
  double seconds_until_next_event(double now) const;

 private:
  struct TimedId {
    double at;
    std::uint64_t id;
    bool operator>(const TimedId& other) const { return at > other.at; }
  };
  using MinHeap = std::priority_queue<TimedId, std::vector<TimedId>, std::greater<TimedId>>;

  ReliabilityOptions opts_;
  MinHeap deadlines_;
  std::unordered_map<std::uint64_t, double> deadline_of_;
  MinHeap retries_;
  std::unordered_set<std::uint64_t> retry_pending_;
};

/// Throws std::invalid_argument on nonsensical knobs (negative budgets,
/// inverted watermarks); `who` prefixes the message.
void validate_reliability(const ReliabilityOptions& opts, const std::string& who);

}  // namespace pph::sched
