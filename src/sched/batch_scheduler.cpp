#include "sched/batch_scheduler.hpp"

namespace pph::sched {

ParallelRunReport run_batch(const PathWorkload& workload, int ranks,
                            const BatchOptions& opts) {
  SessionOptions so;
  so.policy = Policy::kBatchSteal;
  so.factor = opts.factor;
  so.min_batch = opts.min_batch;
  so.injected_latency = opts.injected_latency;
  so.kill_slave_after_jobs = opts.kill_slave_after_jobs;
  so.kill_slave_rank = opts.kill_slave_rank;
  so.who = "run_batch";
  return run_paths(workload, ranks, so);
}

}  // namespace pph::sched
