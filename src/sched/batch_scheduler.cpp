#include "sched/batch_scheduler.hpp"

#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "util/timer.hpp"

namespace pph::sched {

namespace {

// Owner states for indices not currently assigned to a slave.
constexpr int kUnassigned = -1;
constexpr int kDoneOwner = -2;

}  // namespace

ParallelRunReport run_batch(const PathWorkload& workload, int ranks,
                            const BatchOptions& opts) {
  if (ranks < 2) throw std::invalid_argument("run_batch: need a master and at least one slave");
  if (opts.factor <= 0.0) throw std::invalid_argument("run_batch: factor must be positive");
  validate_kill_switch(opts.kill_slave_rank, opts.kill_slave_after_jobs.has_value(), ranks,
                       "run_batch");
  const std::size_t total = workload.size();
  ParallelRunReport report;
  report.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    if (comm.rank() == 0) {
      // ---- master: batch dispatch + steal brokerage ----
      // The master never touches path data; it moves indices.  Bulk steal
      // traffic goes slave-to-slave; the master only brokers (it is the one
      // place that knows who is loaded) and keeps the ownership map that
      // makes death re-queuing and duplicate suppression correct.
      std::deque<std::size_t> queue;
      for (std::size_t i = 0; i < total; ++i) queue.push_back(i);
      std::vector<int> owner(total, kUnassigned);
      std::vector<std::size_t> owned_count(static_cast<std::size_t>(ranks), 0);
      std::vector<bool> dead(static_cast<std::size_t>(ranks), false);
      std::vector<bool> parked(static_cast<std::size_t>(ranks), false);
      // Victims that refused a steal since the thief's last refill.
      std::vector<std::set<int>> refused(static_cast<std::size_t>(ranks));
      // Thieves awaiting a steal reply, per victim (to unblock them if the
      // victim dies between the order and the reply).
      std::map<int, std::vector<int>> awaiting;

      auto alive_slaves = [&] {
        std::size_t n = 0;
        for (int s = 1; s < ranks; ++s) {
          if (!dead[static_cast<std::size_t>(s)]) ++n;
        }
        return n;
      };

      auto dispatch_batch = [&](int s) {
        const auto su = static_cast<std::size_t>(s);
        while (!queue.empty() && owner[queue.front()] != kUnassigned) queue.pop_front();
        if (queue.empty()) return false;
        const std::size_t chunk =
            guided_chunk_size(queue.size(), alive_slaves(), opts.factor, opts.min_batch);
        std::vector<std::uint64_t> indices;
        while (indices.size() < chunk && !queue.empty()) {
          const std::size_t index = queue.front();
          queue.pop_front();
          if (owner[index] != kUnassigned) continue;  // stolen or finished elsewhere
          owner[index] = s;
          ++owned_count[su];
          indices.push_back(static_cast<std::uint64_t>(index));
        }
        if (indices.empty()) return false;
        inject_latency(opts.injected_latency);
        comm.send(s, kTagBatch, mp::pack_index_batch(indices));
        ++report.dispatches;
        refused[su].clear();
        parked[su] = false;
        return true;
      };

      auto refill = [&](int s) {
        const auto su = static_cast<std::size_t>(s);
        if (dead[su]) return;
        if (dispatch_batch(s)) return;
        // Pool drained: broker a steal from the most loaded slave.  A load
        // of one is not worth moving (it is the victim's in-flight path).
        int victim = -1;
        std::size_t best = 1;
        for (int v = 1; v < ranks; ++v) {
          const auto vu = static_cast<std::size_t>(v);
          if (v == s || dead[vu] || refused[su].count(v) != 0) continue;
          if (owned_count[vu] > best) {
            best = owned_count[vu];
            victim = v;
          }
        }
        if (victim >= 0) {
          inject_latency(opts.injected_latency);
          comm.send(victim, kTagStealOrder, mp::pack_steal_request({s}));
          awaiting[victim].push_back(s);
        } else {
          parked[su] = true;  // released by a death re-queue or the stop broadcast
        }
      };

      for (int s = 1; s < ranks; ++s) refill(s);

      std::size_t results = 0;
      while (results < total) {
        const mp::Message m = comm.recv();
        const auto src = static_cast<std::size_t>(m.source);
        if (m.tag == kTagBatchDone) {
          for (auto& tp : unpack_tracked_path_batch(m.payload)) {
            if (owner[tp.index] == kDoneOwner) continue;  // duplicate after a death re-queue
            if (owner[tp.index] >= 0) --owned_count[static_cast<std::size_t>(owner[tp.index])];
            owner[tp.index] = kDoneOwner;
            report.paths.push_back(std::move(tp));
            ++results;
          }
          refill(m.source);
        } else if (m.tag == kTagStealNotify) {
          mp::Unpacker u(m.payload);
          const int victim = u.read<int>();
          const auto indices = u.read_vector<std::uint64_t>();
          auto& waiting = awaiting[victim];
          std::erase(waiting, m.source);
          if (indices.empty()) {
            refused[src].insert(victim);
            refill(m.source);
          } else {
            for (const auto i : indices) {
              const auto index = static_cast<std::size_t>(i);
              if (owner[index] == kDoneOwner) continue;
              if (owner[index] >= 0) --owned_count[static_cast<std::size_t>(owner[index])];
              owner[index] = m.source;
              ++owned_count[src];
            }
            ++report.steals;
            refused[src].clear();
          }
        } else if (m.tag == kTagDead) {
          // Failure injection: re-queue everything the dead slave owned
          // (its unstarted batch and any completed-but-unreported results).
          dead[src] = true;
          parked[src] = false;
          owned_count[src] = 0;
          for (std::size_t i = total; i-- > 0;) {
            if (owner[i] == m.source) {
              owner[i] = kUnassigned;
              queue.push_front(i);
            }
          }
          // Unblock thieves that were waiting on the dead victim, then any
          // parked slaves, now that jobs are available again.
          std::vector<int> thieves;
          thieves.swap(awaiting[m.source]);
          for (const int t : thieves) refill(t);
          for (int s = 1; s < ranks; ++s) {
            if (!dead[static_cast<std::size_t>(s)] && parked[static_cast<std::size_t>(s)]) {
              refill(s);
            }
          }
        }
      }
      // All results in: release the slaves, then collect busy-time reports
      // (filtered receives skip any stray in-flight duplicate reports).
      for (int s = 1; s < ranks; ++s) {
        if (!dead[static_cast<std::size_t>(s)]) comm.send(s, kTagStop, std::vector<std::byte>{});
      }
      for (int s = 1; s < ranks; ++s) {
        if (dead[static_cast<std::size_t>(s)]) continue;
        const mp::Message m = comm.recv(s, kTagBusy);
        mp::Unpacker u(m.payload);
        report.rank_busy_seconds[static_cast<std::size_t>(s)] = u.read<double>();
      }
    } else {
      // ---- slave: work on the local batch, serve steals between paths ----
      std::deque<std::size_t> mine;
      std::vector<TrackedPath> pending;
      double tracking_seconds = 0.0;
      std::size_t completed = 0;
      homotopy::TrackerWorkspace ws(*workload.homotopy);  // reused across this slave's paths
      const bool killable =
          comm.rank() == opts.kill_slave_rank && opts.kill_slave_after_jobs.has_value();
      bool stopped = false;

      auto handle = [&](const mp::Message& m) {
        if (m.tag == kTagBatch) {
          for (const auto i : mp::unpack_index_batch(m.payload)) {
            mine.push_back(static_cast<std::size_t>(i));
          }
        } else if (m.tag == kTagStealOrder) {
          // Donate the back half of the local queue straight to the thief
          // (an empty reply is a refusal; the thief reports it either way).
          const auto req = mp::unpack_steal_request(m.payload);
          mp::StealReply reply;
          for (std::size_t k = mine.size() / 2; k > 0; --k) {
            reply.indices.push_back(static_cast<std::uint64_t>(mine.back()));
            mine.pop_back();
          }
          inject_latency(opts.injected_latency);
          comm.send(req.thief, kTagStealReply, mp::pack_steal_reply(reply));
        } else if (m.tag == kTagStealReply) {
          const auto reply = mp::unpack_steal_reply(m.payload);
          for (const auto i : reply.indices) mine.push_back(static_cast<std::size_t>(i));
          // One-way ownership notification so the master's map stays exact.
          mp::Packer p;
          p.write(m.source);
          p.write_vector(reply.indices);
          inject_latency(opts.injected_latency);
          comm.isend(0, kTagStealNotify, p.take());
        } else if (m.tag == kTagStop) {
          stopped = true;
        }
      };

      while (!stopped) {
        if (mine.empty()) {
          handle(comm.recv());
          continue;
        }
        // Drain control traffic (steal orders, late batches) between paths.
        while (auto m = comm.try_recv()) {
          handle(*m);
          if (stopped) break;
        }
        if (stopped || mine.empty()) continue;
        if (killable && completed >= *opts.kill_slave_after_jobs) {
          // Serve queued steal orders with refusals so no thief hangs on a
          // reply that will never come, then die silently like the dynamic
          // protocol's kill hook (no busy report).
          while (auto m = comm.try_recv(mp::kAnySource, kTagStealOrder)) {
            const auto req = mp::unpack_steal_request(m->payload);
            inject_latency(opts.injected_latency);
            comm.send(req.thief, kTagStealReply, mp::pack_steal_reply({}));
          }
          inject_latency(opts.injected_latency);
          comm.send(0, kTagDead, std::vector<std::byte>{});
          return;
        }
        const std::size_t index = mine.front();
        mine.pop_front();
        util::WallTimer job_timer;
        TrackedPath tp;
        tp.index = index;
        tp.worker = comm.rank();
        tp.result = homotopy::track_path(*workload.homotopy, (*workload.starts)[index],
                                         workload.tracker, ws);
        tp.seconds = job_timer.seconds();
        tracking_seconds += tp.seconds;
        pending.push_back(std::move(tp));
        ++completed;
        if (mine.empty()) {
          // Batch exhausted: one message carries every result plus the
          // implicit request for the next batch.
          inject_latency(opts.injected_latency);
          comm.send(0, kTagBatchDone, pack_tracked_path_batch(pending));
          pending.clear();
        }
      }
      mp::Packer p;
      p.write(tracking_seconds);
      comm.send(0, kTagBusy, p);
    }
  });

  report.wall_seconds = wall.seconds();
  report.tally();
  return report;
}

}  // namespace pph::sched
