// Single-line JSON renderings of the session stat structs (declared in
// sched/api.hpp).  One format feeds both the PPH_CHAOS_REPORT JSONL rows
// appended by the chaos tests and the bench JSON trajectories, so a chaos
// row and a bench row diff cleanly.

#include <sstream>

#include "sched/api.hpp"

namespace pph::sched {

namespace {

// Doubles render with enough digits to round-trip a metric but stay
// greppable; the JSON here is diagnostic, not a wire format.
void field(std::ostringstream& out, bool& first, const char* key, double value) {
  if (!first) out << ",";
  first = false;
  out << "\"" << key << "\":" << value;
}

void field(std::ostringstream& out, bool& first, const char* key, std::size_t value) {
  if (!first) out << ",";
  first = false;
  out << "\"" << key << "\":" << value;
}

void percentile_fields(std::ostringstream& out, bool& first, const char* prefix,
                       const util::PercentileAccumulator& acc) {
  std::ostringstream key;
  key << prefix << "_count";
  field(out, first, key.str().c_str(), acc.count());
  if (acc.count() > 0) {
    key.str(std::string());
    key << prefix << "_p50";
    field(out, first, key.str().c_str(), acc.p50());
    key.str(std::string());
    key << prefix << "_p99";
    field(out, first, key.str().c_str(), acc.p99());
    key.str(std::string());
    key << prefix << "_max";
    field(out, first, key.str().c_str(), acc.max());
  }
}

}  // namespace

std::string to_json(const ServiceStats& s) {
  std::ostringstream out;
  out.precision(12);
  bool first = true;
  out << "{";
  field(out, first, "arrivals", s.arrivals);
  field(out, first, "admitted", s.admitted);
  field(out, first, "dropped", s.dropped);
  field(out, first, "shed", s.shed);
  field(out, first, "completed", s.completed);
  field(out, first, "expired", s.expired);
  field(out, first, "quarantined", s.quarantined);
  field(out, first, "terminal_requests", s.terminal_requests());
  field(out, first, "max_queue_depth", s.max_queue_depth);
  field(out, first, "avg_queue_depth", s.avg_queue_depth);
  percentile_fields(out, first, "sojourn", s.sojourn);
  out << "}";
  return out.str();
}

std::string to_json(const SupervisionStats& s) {
  std::ostringstream out;
  out.precision(12);
  bool first = true;
  out << "{";
  field(out, first, "heartbeats", s.heartbeats);
  field(out, first, "suspects", s.suspects);
  field(out, first, "deaths_detected", s.deaths_detected);
  field(out, first, "deaths_announced", s.deaths_announced);
  field(out, first, "requeued_jobs", s.requeued_jobs);
  field(out, first, "speculative_dispatches", s.speculative_dispatches);
  field(out, first, "speculation_wins", s.speculation_wins);
  field(out, first, "quarantined", s.quarantined);
  field(out, first, "ewma_job_seconds", s.ewma_job_seconds);
  out << "}";
  return out.str();
}

std::string to_json(const ReliabilityStats& s) {
  std::ostringstream out;
  out.precision(12);
  bool first = true;
  out << "{";
  field(out, first, "cancelled", s.cancelled);
  field(out, first, "retried", s.retried);
  field(out, first, "brownout_transitions", s.brownout_transitions);
  field(out, first, "max_brownout_level", s.max_brownout_level);
  field(out, first, "brownout_shed", s.brownout_shed);
  percentile_fields(out, first, "backoff_wait", s.backoff_wait);
  out << "}";
  return out.str();
}

}  // namespace pph::sched
