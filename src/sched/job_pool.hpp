#pragma once
// Shared definitions for the parallel path-tracking schedulers: the
// workload (a homotopy plus its start solutions, replicated read-only on
// every rank exactly as each MPI process holds the system), message tags,
// serialization of path results, and the run report.  The protocols built
// on these definitions are described in DESIGN.md section 2.

#include "homotopy/tracker.hpp"
#include "mp/comm.hpp"

namespace pph::sched {

using homotopy::PathResult;
using homotopy::PathStatus;
using linalg::CVector;

/// Message tags of the scheduler protocols.
enum MessageTag : int {
  kTagJob = 1,          // master -> slave: job index (dynamic) / implicit (static)
  kTagResult = 2,       // slave -> master: tracked path result
  kTagStop = 3,         // master -> slave: terminate the busy-wait loop
  kTagBusy = 4,         // slave -> master: per-rank busy-seconds report
  kTagDead = 5,         // slave -> master: failure injection (tests): rank dies
  // Batch scheduler protocol (DESIGN.md section 2, "Batched work stealing").
  kTagBatch = 6,        // master -> slave: batch of job indices
  kTagBatchDone = 7,    // slave -> master: batched results + implicit refill request
  kTagStealOrder = 8,   // master -> victim: donate half your queue to `thief`
  kTagStealReply = 9,   // victim -> thief: stolen indices (possibly empty)
  kTagStealNotify = 10, // thief -> master: ownership transfer bookkeeping
};

/// A path-tracking workload shared by all ranks.
struct PathWorkload {
  const homotopy::Homotopy* homotopy = nullptr;
  const std::vector<CVector>* starts = nullptr;
  homotopy::TrackerOptions tracker;

  std::size_t size() const { return starts->size(); }
};

/// One tracked path with provenance.
struct TrackedPath {
  std::size_t index = 0;
  int worker = 0;
  double seconds = 0.0;
  PathResult result;
};

/// Outcome of a parallel run, assembled on rank 0.
struct ParallelRunReport {
  std::vector<TrackedPath> paths;          // sorted by path index
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;   // tracking time per rank
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;
  std::size_t dispatches = 0;              // master job/batch hand-outs
  std::size_t steals = 0;                  // successful slave-to-slave steals

  void tally();
};

/// Pack / unpack a path result message (index + worker + timing + result).
std::vector<std::byte> pack_tracked_path(const TrackedPath& tp);
TrackedPath unpack_tracked_path(const std::vector<std::byte>& payload);

/// Scheduler-independence invariant (DESIGN.md section 2): two reports over
/// the same workload must hold bit-identical PathResult sets -- status,
/// counters, t_reached, residual, and endpoint coordinates.  Shared by the
/// tests and the ablation bench's CI guard so the checks cannot drift.
bool identical_path_results(const ParallelRunReport& a, const ParallelRunReport& b);

/// Pack / unpack a batch of path results (the batch scheduler reports a
/// whole exhausted batch in one message to amortize per-message latency).
std::vector<std::byte> pack_tracked_path_batch(const std::vector<TrackedPath>& tps);
std::vector<TrackedPath> unpack_tracked_path_batch(const std::vector<std::byte>& payload);

/// Guided chunk size (OpenMP schedule(guided) style): a share of the
/// remaining jobs that shrinks as the pool drains, so early hand-outs are
/// big (few messages) and the tail stays balanced.  Shared by the batch
/// scheduler and the cluster simulator's guided/batch policies.
std::size_t guided_chunk_size(std::size_t remaining, std::size_t workers, double factor,
                              std::size_t min_chunk);

/// Validate a fail-injection kill switch (used by the dynamic and batch
/// schedulers): rank 0 is the master and can never be killed; an armed
/// switch (kill_after_jobs set) must name an existing slave and leave at
/// least one survivor.
void validate_kill_switch(int kill_rank, bool armed, int ranks, const char* who);

/// Sleep the calling rank for `seconds` (0 is a no-op): the schedulers'
/// simulated per-message cost, charged on the sender before each send.
void inject_latency(double seconds);

}  // namespace pph::sched
