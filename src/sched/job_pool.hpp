#pragma once
// Shared definitions for the parallel path-tracking schedulers: the
// workload (a homotopy plus its start solutions, replicated read-only on
// every rank exactly as each MPI process holds the system), message tags,
// serialization of path results, and the run report.  The protocols built
// on these definitions are described in DESIGN.md section 2.

#include "homotopy/tracker.hpp"
#include "mp/comm.hpp"

namespace pph::sched {

using homotopy::PathResult;
using homotopy::PathStatus;
using linalg::CVector;

/// Message tags of the scheduler protocols.
enum MessageTag : int {
  kTagJob = 1,      // master -> slave: job index (dynamic) / implicit (static)
  kTagResult = 2,   // slave -> master: tracked path result
  kTagStop = 3,     // master -> slave: terminate the busy-wait loop
  kTagBusy = 4,     // slave -> master: per-rank busy-seconds report
  kTagDead = 5,     // slave -> master: failure injection (tests): rank dies
};

/// A path-tracking workload shared by all ranks.
struct PathWorkload {
  const homotopy::Homotopy* homotopy = nullptr;
  const std::vector<CVector>* starts = nullptr;
  homotopy::TrackerOptions tracker;

  std::size_t size() const { return starts->size(); }
};

/// One tracked path with provenance.
struct TrackedPath {
  std::size_t index = 0;
  int worker = 0;
  double seconds = 0.0;
  PathResult result;
};

/// Outcome of a parallel run, assembled on rank 0.
struct ParallelRunReport {
  std::vector<TrackedPath> paths;          // sorted by path index
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;   // tracking time per rank
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;

  void tally();
};

/// Pack / unpack a path result message (index + worker + timing + result).
std::vector<std::byte> pack_tracked_path(const TrackedPath& tp);
TrackedPath unpack_tracked_path(const std::vector<std::byte>& payload);

}  // namespace pph::sched
