#pragma once
// Shared definitions for the parallel path-tracking schedulers: the
// workload (a homotopy plus its start solutions, replicated read-only on
// every rank exactly as each MPI process holds the system), message tags,
// serialization of path results, and the run report.  The protocols built
// on these definitions are described in DESIGN.md section 2.

#include <iterator>

#include "homotopy/tracker.hpp"
#include "mp/comm.hpp"

namespace pph::sched {

using homotopy::PathResult;
using homotopy::PathStatus;
using linalg::CVector;

/// Message tags of the scheduler protocols: one scoped enum so every tag
/// any policy, source, or store control message uses is defined (and
/// collision-checked) in a single place.  `mp::Comm` traffics in plain int
/// tags, so call sites use the `kTag*` constants below; new protocol
/// messages add an enumerator here and a constant beside the others.
enum class MessageTag : int {
  kJob = 1,          // master -> slave: one framed job (FCFS) / implicit (static)
  kResult = 2,       // slave -> master: tracked path result
  kStop = 3,         // master -> slave: terminate the busy-wait loop
  kBusy = 4,         // slave -> master: per-rank busy-seconds report
  kDead = 5,         // slave -> master: failure injection (tests): rank dies
  // Batch-steal protocol (DESIGN.md section 2, "Batched work stealing").
  kBatch = 6,        // master -> slave: batch of framed jobs
  kBatchDone = 7,    // slave -> master: batched results + implicit refill request
  kStealOrder = 8,   // master -> victim: donate half your queue to `thief`
  kStealReply = 9,   // victim -> thief: stolen framed jobs (possibly empty)
  kStealNotify = 10, // thief -> master: ownership transfer bookkeeping
  // Session checkpoint control (DESIGN.md section 7, "Resume protocol"):
  // used when a session with a result store is asked to stop early so the
  // run can be resumed from the store.
  kAbort = 11,       // master -> slave: checkpoint: drop unstarted work, flush
  kAbortFlush = 12,  // slave -> master: completed-but-unreported results
  // Supervision protocol (DESIGN.md section 11).
  kHeartbeat = 13,   // slave -> master: periodic liveness beacon (empty payload)
  // Request reliability (DESIGN.md section 13).
  kCancel = 14,      // master -> slave: stop tracking job id (uint64 payload)
  // Sentinel: keep last.  detail::kAllTags must list every enumerator
  // above; the static_asserts below force the list (and therefore the
  // collision check) to stay complete.
  kSentinelCount_,
};

constexpr int tag(MessageTag t) { return static_cast<int>(t); }

namespace detail {
constexpr int kAllTags[] = {
    tag(MessageTag::kJob),        tag(MessageTag::kResult),
    tag(MessageTag::kStop),       tag(MessageTag::kBusy),
    tag(MessageTag::kDead),       tag(MessageTag::kBatch),
    tag(MessageTag::kBatchDone),  tag(MessageTag::kStealOrder),
    tag(MessageTag::kStealReply), tag(MessageTag::kStealNotify),
    tag(MessageTag::kAbort),      tag(MessageTag::kAbortFlush),
    tag(MessageTag::kHeartbeat),  tag(MessageTag::kCancel),
};
constexpr bool tags_unique() {
  for (std::size_t i = 0; i < std::size(kAllTags); ++i) {
    for (std::size_t j = i + 1; j < std::size(kAllTags); ++j) {
      if (kAllTags[i] == kAllTags[j]) return false;
    }
  }
  return true;
}
constexpr bool tags_positive() {
  for (const int t : kAllTags) {
    if (t <= 0) return false;  // mp::kAnyTag is -1; 0 is reserved
  }
  return true;
}
}  // namespace detail
static_assert(std::size(detail::kAllTags) + 1 ==
                  static_cast<std::size_t>(MessageTag::kSentinelCount_),
              "a MessageTag enumerator is missing from detail::kAllTags "
              "(the collision check would silently skip it)");
static_assert(detail::tags_unique(), "MessageTag values collide");
static_assert(detail::tags_positive(), "MessageTag values must be positive");

// Legacy-style spellings used throughout the protocol code.
inline constexpr int kTagJob = tag(MessageTag::kJob);
inline constexpr int kTagResult = tag(MessageTag::kResult);
inline constexpr int kTagStop = tag(MessageTag::kStop);
inline constexpr int kTagBusy = tag(MessageTag::kBusy);
inline constexpr int kTagDead = tag(MessageTag::kDead);
inline constexpr int kTagBatch = tag(MessageTag::kBatch);
inline constexpr int kTagBatchDone = tag(MessageTag::kBatchDone);
inline constexpr int kTagStealOrder = tag(MessageTag::kStealOrder);
inline constexpr int kTagStealReply = tag(MessageTag::kStealReply);
inline constexpr int kTagStealNotify = tag(MessageTag::kStealNotify);
inline constexpr int kTagAbort = tag(MessageTag::kAbort);
inline constexpr int kTagAbortFlush = tag(MessageTag::kAbortFlush);
inline constexpr int kTagHeartbeat = tag(MessageTag::kHeartbeat);
inline constexpr int kTagCancel = tag(MessageTag::kCancel);

/// A path-tracking workload shared by all ranks.
struct PathWorkload {
  const homotopy::Homotopy* homotopy = nullptr;
  const std::vector<CVector>* starts = nullptr;
  homotopy::TrackerOptions tracker;

  std::size_t size() const { return starts->size(); }
};

/// One tracked path with provenance.
struct TrackedPath {
  std::size_t index = 0;
  int worker = 0;
  double seconds = 0.0;
  /// Tree level of the job (Pieri sources stamp it master-side in
  /// consume(), before the sink sees the record -- slaves never know it,
  /// so it is NOT part of the result wire format).  0 for flat path pools.
  std::uint32_t level = 0;
  PathResult result;
};

/// Outcome of a parallel run, assembled on rank 0.
struct ParallelRunReport {
  std::vector<TrackedPath> paths;          // sorted by path index
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;   // tracking time per rank
  std::size_t converged = 0;
  std::size_t diverged = 0;
  std::size_t failed = 0;
  std::size_t expired = 0;                 // kDeadlineExpired (synthesized)
  std::size_t cancelled = 0;               // kCancelled (cooperative stop)
  std::size_t dispatches = 0;              // master job/batch hand-outs
  std::size_t steals = 0;                  // successful slave-to-slave steals

  void tally();
};

/// Pack / unpack a path result message (index + worker + timing + result).
std::vector<std::byte> pack_tracked_path(const TrackedPath& tp);
TrackedPath unpack_tracked_path(const std::vector<std::byte>& payload);

/// Scheduler-independence invariant (DESIGN.md section 2): two reports over
/// the same workload must hold bit-identical PathResult sets -- status,
/// counters, t_reached, residual, and endpoint coordinates.  Shared by the
/// tests and the ablation bench's CI guard so the checks cannot drift.
bool identical_path_results(const ParallelRunReport& a, const ParallelRunReport& b);

/// Pack / unpack a batch of path results (the batch scheduler reports a
/// whole exhausted batch in one message to amortize per-message latency).
std::vector<std::byte> pack_tracked_path_batch(const std::vector<TrackedPath>& tps);
std::vector<TrackedPath> unpack_tracked_path_batch(const std::vector<std::byte>& payload);

/// Guided chunk size (OpenMP schedule(guided) style): a share of the
/// remaining jobs that shrinks as the pool drains, so early hand-outs are
/// big (few messages) and the tail stays balanced.  Shared by the batch
/// scheduler and the cluster simulator's guided/batch policies.
std::size_t guided_chunk_size(std::size_t remaining, std::size_t workers, double factor,
                              std::size_t min_chunk);

/// Validate a fail-injection kill switch (used by the dynamic and batch
/// schedulers): rank 0 is the master and can never be killed; an armed
/// switch (kill_after_jobs set) must name an existing slave and leave at
/// least one survivor.
void validate_kill_switch(int kill_rank, bool armed, int ranks, const char* who);

/// Sleep the calling rank for `seconds` (0 is a no-op): the schedulers'
/// simulated per-message cost, charged on the sender before each send.
void inject_latency(double seconds);

}  // namespace pph::sched
