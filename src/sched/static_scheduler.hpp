#pragma once
// Static workload balancing (paper section II-A): "the paths are
// distributed evenly to the processors once at the start".  Minimal
// communication (one result stream back to rank 0), but per-rank load
// varies with the path cost distribution -- paths diverging to infinity
// take longer, so the slowest rank gates the run.  Protocol notes in
// DESIGN.md section 2; the block-vs-cyclic default is argued in section 3.

#include "sched/job_pool.hpp"

namespace pph::sched {

/// How indices are pre-assigned to ranks.
enum class StaticAssignment {
  kBlock,   // contiguous chunks: rank r gets [r*N/P, (r+1)*N/P)
  kCyclic,  // interleaved: rank r gets r, r+P, r+2P, ...
};

/// Track all workload paths on `ranks` ranks with a static pre-assignment;
/// every rank (including 0) tracks its share and sends results to rank 0.
ParallelRunReport run_static(const PathWorkload& workload, int ranks,
                             StaticAssignment assignment = StaticAssignment::kCyclic);

}  // namespace pph::sched
