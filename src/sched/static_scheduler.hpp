#pragma once
// Static workload balancing (paper section II-A): "the paths are
// distributed evenly to the processors once at the start".  Minimal
// communication (one result stream back to rank 0), but per-rank load
// varies with the path cost distribution -- paths diverging to infinity
// take longer, so the slowest rank gates the run.  Protocol notes in
// DESIGN.md section 2; the block-vs-cyclic default is argued in section 3.
//
// LEGACY ENTRY POINT: run_static is a thin wrapper over the unified
// session API (sched/session.hpp, DESIGN.md section 7) -- equivalent to a
// Session over a VectorJobSource with Policy::kStatic and an
// InMemoryReportSink.  Kept for source compatibility; new code should
// compose a Session (or call sched::run_paths) directly.

#include "sched/session.hpp"

namespace pph::sched {

/// Track all workload paths on `ranks` ranks with a static pre-assignment;
/// every rank (including 0) tracks its share and sends results to rank 0.
[[deprecated("compose a sched::Session (or call sched::run_paths with Policy::kStatic)")]]
ParallelRunReport run_static(const PathWorkload& workload, int ranks,
                             StaticAssignment assignment = StaticAssignment::kCyclic);

}  // namespace pph::sched
